// Package manticore is a reproduction of the runtime system and NUMA-aware
// garbage collector of
//
//	Auhagen, Bergstrom, Fluet, Reppy.
//	"Garbage Collection for Multicore NUMA Machines" (PLDI SRC 2011 /
//	arXiv:1105.2554).
//
// Because Go offers no control over physical page placement or raw heap
// words, the machine is simulated: a deterministic virtual-time engine runs
// one goroutine per vproc, every memory operation is charged against an
// explicit NUMA topology model (the paper's 48-core AMD Magny-Cours and
// 32-core Intel Xeon machines are built in), and heap objects live in
// simulated regions with the paper's exact header encoding. The collector
// itself — per-vproc Appel semi-generational local heaps, a chunked global
// heap with node affinity, minor/major/global phases, object promotion,
// object proxies, and work stealing with lazy promotion — is implemented
// directly.
//
// Quick start:
//
//	cfg := manticore.Defaults(manticore.AMD48(), 8)
//	rt, _ := manticore.New(cfg)
//	elapsed := rt.Run(func(w *manticore.Worker) {
//	    a := w.AllocRaw([]uint64{42})
//	    slot := w.PushRoot(a)
//	    _ = w.Root(slot)
//	})
package manticore

import (
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mempage"
	"repro/internal/numa"
)

// Worker is a virtual processor executing simulated mutator code. All
// allocation, field access, fork/join and promotion go through it.
type Worker = core.VProc

// Env gives task closures GC-safe access to captured heap references.
type Env = core.Env

// Task is a spawned unit of work.
type Task = core.Task

// Addr is a simulated heap address.
type Addr = heap.Addr

// Config configures a runtime; see core.Config for all fields.
type Config = core.Config

// Stats aggregates per-vproc runtime statistics.
type Stats = core.VPStats

// GCEvent describes one garbage-collection phase, for tracing.
type GCEvent = core.GCEvent

// AllocStatus is the outcome of a fallible Worker.TryAlloc* / TryPromote
// attempt under a bounded heap (Config.GlobalBudgetChunks) — allocation
// failure as a status, never a panic.
type AllocStatus = core.AllocStatus

// Allocation statuses.
const (
	AllocOK     = core.AllocOK
	AllocFailed = core.AllocFailed
)

// Topology models a NUMA machine.
type Topology = numa.Topology

// Policy selects physical page placement (§4.3 of the paper).
type Policy = mempage.Policy

// Page placement policies.
const (
	// PolicyLocal allocates pages on the requesting vproc's node (the
	// paper's default; Figure 5).
	PolicyLocal = mempage.PolicyLocal
	// PolicyInterleaved balances pages across nodes (GHC-style;
	// Figure 6).
	PolicyInterleaved = mempage.PolicyInterleaved
	// PolicySingleNode places all pages on node 0 (Figure 7).
	PolicySingleNode = mempage.PolicySingleNode
)

// AMD48 returns the paper's 48-core AMD Opteron "Magny-Cours" machine
// (Appendix A.1).
func AMD48() *Topology { return numa.AMD48() }

// Intel32 returns the paper's 32-core Intel Xeon X7560 machine
// (Appendix A.2).
func Intel32() *Topology { return numa.Intel32() }

// MachinePreset returns a machine by name ("amd48" or "intel32").
func MachinePreset(name string) (*Topology, error) { return numa.Preset(name) }

// ParsePolicy converts a policy name ("local", "interleaved",
// "single-node") to a Policy.
func ParsePolicy(s string) (Policy, error) { return mempage.ParsePolicy(s) }

// Defaults returns the default configuration for a machine and vproc count.
func Defaults(topo *Topology, vprocs int) Config {
	return core.DefaultConfig(topo, vprocs)
}

// Runtime is an assembled simulated machine plus the Manticore runtime.
type Runtime struct {
	*core.Runtime
}

// New builds a runtime from a configuration.
func New(cfg Config) (*Runtime, error) {
	rt, err := core.NewRuntime(cfg)
	if err != nil {
		return nil, err
	}
	return &Runtime{Runtime: rt}, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Runtime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// RegisterRecord registers a mixed-type object layout (the analogue of the
// compiler emitting an object-descriptor table entry, §3.2) and returns its
// object ID for Worker.AllocMixed.
func (rt *Runtime) RegisterRecord(name string, sizeWords int, ptrFields []int) uint16 {
	return rt.Descs.Register(name, sizeWords, ptrFields)
}

// Run executes entry on vproc 0 and drives all vprocs until quiescence,
// returning the virtual makespan in nanoseconds.
func (rt *Runtime) Run(entry func(w *Worker)) int64 {
	return rt.Runtime.Run(entry)
}
