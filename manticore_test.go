package manticore

import (
	"testing"

	"repro/internal/heap"
)

func testRuntime(t *testing.T, vprocs int) *Runtime {
	t.Helper()
	cfg := Defaults(AMD48(), vprocs)
	cfg.LocalHeapWords = 8 << 10
	cfg.ChunkWords = 2 << 10
	cfg.Debug = true
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestQuickstartAPI(t *testing.T) {
	rt := testRuntime(t, 4)
	var got uint64
	elapsed := rt.Run(func(w *Worker) {
		a := w.AllocRaw([]uint64{41})
		slot := w.PushRoot(a)
		v := w.LoadWord(w.Root(slot), 0)
		got = v + 1
		w.PopRoots(1)
	})
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
	if elapsed <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestRegisterRecordAndAllocMixed(t *testing.T) {
	rt := testRuntime(t, 1)
	id := rt.RegisterRecord("pair", 3, []int{1, 2})
	rt.Run(func(w *Worker) {
		x := w.AllocRaw([]uint64{7})
		xs := w.PushRoot(x)
		y := w.AllocRaw([]uint64{9})
		ys := w.PushRoot(y)
		p := w.AllocMixed(id, map[int]uint64{0: 100}, map[int]int{1: xs, 2: ys})
		ps := w.PushRoot(p)
		if w.LoadWord(w.Root(ps), 0) != 100 {
			t.Error("raw field lost")
		}
		l := w.LoadPtr(w.Root(ps), 1)
		if w.LoadWord(l, 0) != 7 {
			t.Error("pointer field 1 wrong")
		}
		w.PopRoots(3)
	})
}

func TestChannelSameVProcStaysLocal(t *testing.T) {
	rt := testRuntime(t, 1)
	ch := rt.NewChannel()
	rt.Run(func(w *Worker) {
		msg := w.AllocRaw([]uint64{0xfeed})
		slot := w.PushRoot(msg)
		ch.Send(w, slot)
		got := ch.Recv(w)
		// Same-vproc rendezvous: the message must not have been
		// promoted; it is still in this vproc's local heap.
		if rt.Space.Region(got.RegionID()).Kind != heap.RegionLocal {
			t.Error("same-vproc message was promoted")
		}
		if w.LoadWord(got, 0) != 0xfeed {
			t.Error("message payload wrong")
		}
		w.PopRoots(1)
	})
}

func TestChannelCrossVProcPromotes(t *testing.T) {
	rt := testRuntime(t, 2)
	ch := rt.NewChannel()
	var payload uint64
	var wasGlobal bool
	rt.Run(func(w *Worker) {
		// The receiver runs as a task; with two vprocs and a busy
		// sender it is stolen by vproc 1.
		recv := w.Spawn(func(w2 *Worker, _ Env) {
			got := ch.Recv(w2)
			payload = w2.LoadWord(got, 0)
			r := w2.Runtime().Space.Region(got.RegionID())
			wasGlobal = r.Kind == heap.RegionChunk
		})
		msg := w.AllocRaw([]uint64{0xcafe})
		slot := w.PushRoot(msg)
		ch.Send(w, slot)
		w.Compute(1_000_000) // let vproc 1 steal the receiver
		w.Join(recv)
		w.PopRoots(1)
	})
	if payload != 0xcafe {
		t.Errorf("payload = %#x, want 0xcafe", payload)
	}
	if !wasGlobal {
		t.Error("cross-vproc message should resolve to a promoted (global) copy")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

func TestChannelMessageSurvivesSenderGC(t *testing.T) {
	// The proxy's local slot must be treated as a GC root of the owner:
	// churn between Send and Recv forces collections on the sender.
	rt := testRuntime(t, 1)
	ch := rt.NewChannel()
	rt.Run(func(w *Worker) {
		msg := w.AllocRaw([]uint64{123, 456})
		slot := w.PushRoot(msg)
		ch.Send(w, slot)
		w.PopRoots(1) // the channel proxy is now the only reference
		for i := 0; i < 2000; i++ {
			w.AllocRawN(5)
		}
		got := ch.Recv(w)
		if w.LoadWord(got, 0) != 123 || w.LoadWord(got, 1) != 456 {
			t.Error("message corrupted by sender's collections")
		}
	})
}

func TestMutableRefWriteBarrier(t *testing.T) {
	rt := testRuntime(t, 1)
	rt.Run(func(w *Worker) {
		init := w.AllocRaw([]uint64{1})
		is := w.PushRoot(init)
		ref := w.NewRef(is)
		rs := w.PushRoot(ref)

		v2 := w.AllocRaw([]uint64{2})
		vs := w.PushRoot(v2)
		w.WriteRef(w.Root(rs), vs)

		got := w.ReadRef(w.Root(rs))
		if w.LoadWord(got, 0) != 2 {
			t.Error("ref did not update")
		}
		// The write barrier must have promoted the stored value.
		if rt.Space.Region(w.Resolve(got).RegionID()).Kind != heap.RegionChunk {
			t.Error("stored value not promoted by the write barrier")
		}
		if err := rt.VerifyHeap(); err != nil {
			t.Errorf("heap invariants: %v", err)
		}
		w.PopRoots(3)
	})
}

func TestParallelRangeCoversAllIndices(t *testing.T) {
	rt := testRuntime(t, 4)
	seen := make([]bool, 1000)
	rt.Run(func(w *Worker) {
		w.ParallelRange(0, len(seen), 16, nil, func(w *Worker, lo, hi int, _ Env) {
			for i := lo; i < hi; i++ {
				if seen[i] {
					t.Errorf("index %d visited twice", i)
				}
				seen[i] = true
				w.Compute(50)
			}
		})
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d never visited", i)
		}
	}
}

func TestPolicyParsing(t *testing.T) {
	if p, err := ParsePolicy("interleaved"); err != nil || p != PolicyInterleaved {
		t.Error("ParsePolicy(interleaved) failed")
	}
	if _, err := MachinePreset("intel32"); err != nil {
		t.Error("MachinePreset(intel32) failed")
	}
}

func TestChannelSelectAndMailboxFacade(t *testing.T) {
	rt := testRuntime(t, 2)
	fast := rt.NewChannel()
	slow := rt.NewMailbox(4)
	var firstIdx int
	var sum uint64
	rt.Run(func(w *Worker) {
		a := w.AllocRaw([]uint64{5})
		as := w.PushRoot(a)
		slow.Send(w, as)
		w.PopRoots(1)

		which, m := Select(w, fast, slow)
		firstIdx = which
		sum += w.LoadWord(m, 0)

		// Continuation receive: parks a task, resumed by the later send.
		fast.RecvThen(w, nil, func(w *Worker, _ Env, msg Addr) {
			sum += w.LoadWord(msg, 0)
		})
		b := w.AllocRaw([]uint64{11})
		bs := w.PushRoot(b)
		fast.Send(w, bs)
		w.PopRoots(1)
	})
	if firstIdx != 1 {
		t.Errorf("Select chose channel %d, want 1", firstIdx)
	}
	if sum != 16 {
		t.Errorf("sum = %d, want 16", sum)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}
