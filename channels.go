package manticore

// CML-style channels (§2.1: "language-level visible threads and synchronous
// message passing, providing a parallel implementation of Concurrent ML's
// concurrency primitives").
//
// Channels are where object proxies earn their keep (§3.1 footnote 1): a
// send enqueues a *proxy* for the message rather than promoting the message
// up front. If the matching receive happens on the same vproc, the message
// never leaves the local heap; only a cross-vproc rendezvous forces the
// promotion. This is the lazy-promotion discipline applied to explicit
// concurrency.
//
// All channel state lives in the simulated global heap, traced by the
// collector: a channel is a heap record whose pending messages form a chain
// of heap queue nodes, registered as a global root, so in-flight messages
// survive minor, major and global collections. See internal/core/channel.go
// for the representation and README.md for a worked example.
//
// The API, reached through the embedded core runtime:
//
//	ch := rt.NewChannel()          // unbounded mailbox
//	mb := rt.NewMailbox(8)         // bounded: Send blocks while full
//	ch.Send(w, slot)               // publish the object in a root slot
//	st := ch.TrySend(w, slot)      // non-blocking: SendOK / SendFull / SendClosed
//	a, ok := ch.TryRecv(w)         // non-blocking receive
//	a := ch.Recv(w)                // blocking receive (parks a waiter)
//	i, a := w.Select(ch1, ch2)     // blocking receive over several channels
//	ch.RecvThen(w, env, fn)        // continuation receive (parks a task)
//	w.SelectThen(chans, env, fn)   // continuation select
//	ch.Close()                     // permanent close: close-as-status
//
// Recv and Select park the calling stack frame and service the scheduler
// while waiting; RecvThen and SelectThen park a *task* instead, which is the
// shape to use for deep request/response topologies (a parked frame that
// runs its own producer deadlocks; a parked task cannot).
//
// Close is permanent and idempotent, and closure is delivered as a status,
// never a panic: Send and TrySend report SendClosed — even for a close
// landing mid-send — parked and future receivers wake with a nil message
// (Addr 0, ok == false, which == -1), and pending undelivered messages are
// discarded. This is the recoverable-failure path the overload harness and
// fault injection build on — a server can drain a lane until Close and
// treat the nil message as the shutdown signal.

import "repro/internal/core"

// Channel is a channel carrying heap objects by proxy; state is
// heap-resident and GC-traced. Constructed by Runtime.NewChannel /
// Runtime.NewMailbox.
type Channel = core.Channel

// SendStatus is the outcome of a send attempt — close-as-status, never a
// panic.
type SendStatus = core.SendStatus

// Send statuses.
const (
	SendOK     = core.SendOK
	SendFull   = core.SendFull
	SendClosed = core.SendClosed
)

// Select receives from whichever channel first has a message; it is
// Worker.Select as a free function, for readability at call sites.
func Select(w *Worker, chans ...*Channel) (int, Addr) {
	return w.Select(chans...)
}
