package manticore

// CML-style synchronous channels (§2.1: "language-level visible threads and
// synchronous message passing, providing a parallel implementation of
// Concurrent ML's concurrency primitives").
//
// Channels are where object proxies earn their keep (§3.1 footnote 1): a
// send enqueues a *proxy* for the message rather than promoting the message
// up front. If the matching receive happens on the same vproc, the message
// never leaves the local heap; only a cross-vproc rendezvous forces the
// promotion. This is the lazy-promotion discipline applied to explicit
// concurrency.

// Channel is a synchronous rendezvous channel carrying heap objects.
type Channel struct {
	rt *Runtime
	// pending holds proxies for messages whose send has completed but
	// whose receive has not yet happened. (A buffered mailbox
	// approximates CML's acceptor queue; rendezvous cost is charged on
	// both sides.)
	pending []Addr
}

// NewChannel creates a channel.
func (rt *Runtime) NewChannel() *Channel {
	return &Channel{rt: rt}
}

// Send publishes the object held in the sender's root slot. The message is
// wrapped in a proxy: no promotion happens yet.
func (ch *Channel) Send(w *Worker, slot int) {
	proxy := w.NewProxy(slot)
	ch.pending = append(ch.pending, proxy)
}

// TryRecv receives a message if one is pending, resolving the proxy: if the
// message was sent by this vproc it stays local; otherwise it is promoted
// out of the sender's heap on demand. Returns (0, false) when empty.
func (ch *Channel) TryRecv(w *Worker) (Addr, bool) {
	if len(ch.pending) == 0 {
		return 0, false
	}
	proxy := ch.pending[0]
	ch.pending = ch.pending[1:]
	return w.ProxyDeref(proxy), true
}

// Recv blocks (in virtual time) until a message arrives. The receiving
// vproc services its scheduler obligations (steals, pending global
// collections) while waiting, so channel waits cannot deadlock the
// stop-the-world protocol.
func (ch *Channel) Recv(w *Worker) Addr {
	for {
		if a, ok := ch.TryRecv(w); ok {
			return a
		}
		w.ServiceScheduler()
	}
}

// Len reports the number of pending messages.
func (ch *Channel) Len() int { return len(ch.pending) }
