package manticore

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// The benchmarks in this file regenerate the paper's evaluation artifacts.
// Each reported metric is virtual time from the machine model, surfaced
// through testing.B custom metrics; b.N repetitions re-run the deterministic
// simulation. The full sweeps behind Figures 4-7 are produced by
// cmd/gcbench; the benchmarks here cover each figure's characteristic
// points so `go test -bench .` exercises every experiment.

// benchScale keeps `go test -bench .` affordable; cmd/gcbench uses 1.0.
const benchScale = 0.25

// runPoint executes one benchmark at one configuration point and reports
// virtual milliseconds per operation.
func runPoint(b *testing.B, topo *numa.Topology, policy mempage.Policy, threads int, name string) {
	b.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var virtualNs int64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(topo, threads)
		cfg.Policy = policy
		rt := core.MustNewRuntime(cfg)
		res := spec.Run(rt, benchScale)
		virtualNs = res.ElapsedNs
	}
	b.ReportMetric(float64(virtualNs)/1e6, "virtual-ms")
}

// --- Table 1: theoretical bandwidths -------------------------------------

func BenchmarkTable1Bandwidth(b *testing.B) {
	for _, name := range []string{"amd48", "intel32"} {
		b.Run(name, func(b *testing.B) {
			topo, _ := numa.Preset(name)
			m := numa.NewMachine(topo)
			for i := 0; i < b.N; i++ {
				_ = m.BandwidthTable()
			}
			b.ReportMetric(topo.LocalBW, "local-GB/s")
			b.ReportMetric(topo.RemoteBW, "remote-GB/s")
		})
	}
}

// --- Figures 4-7: speedup sweeps ------------------------------------------

// figurePoints are the characteristic thread counts benchmarked per figure
// (1, the knee, and the full machine).
var intelPoints = []int{1, 16, 32}
var amdPoints = []int{1, 24, 48}

func benchFigure(b *testing.B, topo *numa.Topology, policy mempage.Policy, points []int) {
	for _, name := range bench.FigureBenchmarks {
		for _, p := range points {
			b.Run(benchPointName(name, p), func(b *testing.B) {
				runPoint(b, topo, policy, p, name)
			})
		}
	}
}

func benchPointName(name string, p int) string {
	return name + "/p=" + itoa(p)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func BenchmarkFigure4IntelLocal(b *testing.B) {
	benchFigure(b, numa.Intel32(), mempage.PolicyLocal, intelPoints)
}

func BenchmarkFigure5AMDLocal(b *testing.B) {
	benchFigure(b, numa.AMD48(), mempage.PolicyLocal, amdPoints)
}

func BenchmarkFigure6AMDInterleaved(b *testing.B) {
	benchFigure(b, numa.AMD48(), mempage.PolicyInterleaved, amdPoints)
}

func BenchmarkFigure7AMDSocketZero(b *testing.B) {
	benchFigure(b, numa.AMD48(), mempage.PolicySingleNode, amdPoints)
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// ablationRun executes the synthetic churn benchmark with one design knob
// toggled and reports virtual time plus the GC counters the knob affects.
// The configuration is deliberately GC-heavy (small local heaps, low global
// trigger, large churn) so the knobs actually engage.
func ablationRun(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	spec, _ := workload.ByName("synthetic")
	var res workload.Result
	var rt *core.Runtime
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(numa.AMD48(), 16)
		cfg.LocalHeapWords = 8 << 10
		cfg.ChunkWords = 2 << 10
		cfg.GlobalTriggerWords = cfg.NumVProcs * cfg.ChunkWords
		mutate(&cfg)
		rt = core.MustNewRuntime(cfg)
		res = spec.Run(rt, 8)
	}
	s := res.Stats
	b.ReportMetric(float64(res.ElapsedNs)/1e6, "virtual-ms")
	b.ReportMetric(float64(s.MajorCopied), "major-copied-words")
	b.ReportMetric(float64(s.PromotedWords), "promoted-words")
	b.ReportMetric(float64(rt.Stats.GlobalGCs), "global-gcs")
	b.ReportMetric(float64(rt.Stats.GlobalNs)/1e6, "global-gc-ms")
	b.ReportMetric(float64(rt.Stats.CrossNodeScanned), "cross-node-scans")
	b.ReportMetric(float64(rt.Chunks.Created), "chunks-created")
	b.ReportMetric(float64(rt.Chunks.Reused), "chunks-reused")
}

func BenchmarkAblationYoungData(b *testing.B) {
	b.Run("young-partition=on", func(b *testing.B) {
		ablationRun(b, func(c *core.Config) { c.YoungPartition = true })
	})
	b.Run("young-partition=off", func(b *testing.B) {
		ablationRun(b, func(c *core.Config) { c.YoungPartition = false })
	})
}

func BenchmarkAblationChunkAffinity(b *testing.B) {
	// Run under interleaved placement, where chunk home nodes actually
	// differ and affinity-blind reuse hands out remote chunks.
	b.Run("node-affine=on", func(b *testing.B) {
		ablationRun(b, func(c *core.Config) {
			c.Policy = mempage.PolicyInterleaved
			c.NodeAffineChunks = true
		})
	})
	b.Run("node-affine=off", func(b *testing.B) {
		ablationRun(b, func(c *core.Config) {
			c.Policy = mempage.PolicyInterleaved
			c.NodeAffineChunks = false
		})
	})
}

func BenchmarkAblationNodeLocalScan(b *testing.B) {
	// Interleaved placement spreads to-space chunks across nodes, so the
	// shared-list ablation produces measurable cross-node scanning.
	b.Run("node-local-scan=on", func(b *testing.B) {
		ablationRun(b, func(c *core.Config) {
			c.Policy = mempage.PolicyInterleaved
			c.NodeLocalScan = true
		})
	})
	b.Run("node-local-scan=off", func(b *testing.B) {
		ablationRun(b, func(c *core.Config) {
			c.Policy = mempage.PolicyInterleaved
			c.NodeLocalScan = false
		})
	})
}

func BenchmarkAblationLazyPromotion(b *testing.B) {
	// Lazy promotion matters where work is stolen: use quicksort.
	run := func(b *testing.B, lazy bool) {
		spec, _ := workload.ByName("quicksort")
		var res workload.Result
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig(numa.AMD48(), 16)
			cfg.LazyPromotion = lazy
			rt := core.MustNewRuntime(cfg)
			res = spec.Run(rt, 0.25)
		}
		b.ReportMetric(float64(res.ElapsedNs)/1e6, "virtual-ms")
		b.ReportMetric(float64(res.Stats.PromotedWords), "promoted-words")
	}
	b.Run("lazy", func(b *testing.B) { run(b, true) })
	b.Run("eager", func(b *testing.B) { run(b, false) })
}

func BenchmarkAblationLocalHeapSize(b *testing.B) {
	for _, words := range []int{16 << 10, 64 << 10, 256 << 10} {
		words := words
		b.Run("words="+itoa(words), func(b *testing.B) {
			ablationRun(b, func(c *core.Config) { c.LocalHeapWords = words })
		})
	}
}
