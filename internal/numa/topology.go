// Package numa models the memory hierarchy of multicore NUMA machines.
//
// The model follows Appendix A of the paper: a machine is a set of processor
// packages, each containing one or more nodes (dies); every node has a set of
// cores and an integrated memory controller attached to a private bank of
// RAM. Nodes are connected by point-to-point links (HyperTransport on the
// AMD machine, QPI on the Intel machine) whose bandwidth is lower than the
// sum of the local memory links, which is what makes placement matter.
//
// Costs are expressed in virtual nanoseconds. The package is used from the
// deterministic virtual-time engine, which serializes all callers, so the
// contention accounting below is deliberately unsynchronized.
package numa

import "fmt"

// PathKind classifies the route taken by a memory access relative to the
// core that issues it.
type PathKind int

const (
	// PathLocal is an access to the issuing core's own node memory.
	PathLocal PathKind = iota
	// PathSamePackage is an access to the other node in the same package
	// (only meaningful on machines with multi-node packages, such as the
	// AMD Magny-Cours).
	PathSamePackage
	// PathRemote is an access to a node in a different package.
	PathRemote
)

// String returns a human-readable name for the path kind.
func (k PathKind) String() string {
	switch k {
	case PathLocal:
		return "local"
	case PathSamePackage:
		return "same-package"
	case PathRemote:
		return "remote"
	default:
		return fmt.Sprintf("PathKind(%d)", int(k))
	}
}

// Node describes one die: an integrated memory controller plus a set of
// cores.
type Node struct {
	ID      int
	Package int
	Cores   []int
}

// Topology describes the static shape of a machine.
type Topology struct {
	// Name identifies the preset (e.g. "amd48").
	Name string
	// GHz is the core clock, used only for reporting.
	GHz float64
	// Packages counts processor sockets.
	Packages int
	// NodesPerPackage counts dies per socket.
	NodesPerPackage int
	// CoresPerNode counts cores per die.
	CoresPerNode int

	// Bandwidth in bytes per nanosecond (== GB/s) for each path kind,
	// as in Table 1 of the paper.
	LocalBW, SamePkgBW, RemoteBW float64
	// Latency in nanoseconds for each path kind (model constants; the
	// paper reports only bandwidths, so these are calibrated).
	LocalLat, SamePkgLat, RemoteLat float64

	// L3Bytes is the last-level cache per node; local heaps are sized to
	// fit in it (§3.1).
	L3Bytes int
	// CacheBW and CacheLat model an L3 hit.
	CacheBW  float64
	CacheLat float64

	nodes    []Node
	coreNode []int
}

// build derives the node and core tables from the shape parameters.
func (t *Topology) build() {
	numNodes := t.Packages * t.NodesPerPackage
	t.nodes = make([]Node, numNodes)
	t.coreNode = make([]int, numNodes*t.CoresPerNode)
	core := 0
	for n := 0; n < numNodes; n++ {
		nd := Node{ID: n, Package: n / t.NodesPerPackage}
		for c := 0; c < t.CoresPerNode; c++ {
			nd.Cores = append(nd.Cores, core)
			t.coreNode[core] = n
			core++
		}
		t.nodes[n] = nd
	}
}

// NumNodes returns the number of NUMA nodes (dies) in the machine.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumCores returns the total number of cores.
func (t *Topology) NumCores() int { return len(t.coreNode) }

// NodeOfCore returns the node that owns the given core.
func (t *Topology) NodeOfCore(core int) int { return t.coreNode[core] }

// Nodes returns the node table.
func (t *Topology) Nodes() []Node { return t.nodes }

// PackageOfNode returns the package (socket) containing the node.
func (t *Topology) PackageOfNode(node int) int { return t.nodes[node].Package }

// Path classifies an access from a core to memory homed on the given node.
func (t *Topology) Path(core, memNode int) PathKind {
	cn := t.coreNode[core]
	switch {
	case cn == memNode:
		return PathLocal
	case t.nodes[cn].Package == t.nodes[memNode].Package:
		return PathSamePackage
	default:
		return PathRemote
	}
}

// Bandwidth returns the available bandwidth (bytes/ns) for a path kind, as
// reported in Table 1.
func (t *Topology) Bandwidth(k PathKind) float64 {
	switch k {
	case PathLocal:
		return t.LocalBW
	case PathSamePackage:
		return t.SamePkgBW
	default:
		return t.RemoteBW
	}
}

// Latency returns the base latency (ns) for a path kind.
func (t *Topology) Latency(k PathKind) float64 {
	switch k {
	case PathLocal:
		return t.LocalLat
	case PathSamePackage:
		return t.SamePkgLat
	default:
		return t.RemoteLat
	}
}

// SparseCoreAssignment returns n distinct cores spread as evenly as possible
// across nodes, mirroring §2.2: "when there are less vprocs than processors,
// they are assigned sparsely across the nodes to minimize contention on the
// node-shared L3 cache".
func (t *Topology) SparseCoreAssignment(n int) []int {
	if n < 0 || n > t.NumCores() {
		panic(fmt.Sprintf("numa: cannot assign %d vprocs to %d cores", n, t.NumCores()))
	}
	cores := make([]int, 0, n)
	// Round-robin over nodes, taking the next unused core of each node.
	taken := make([]int, t.NumNodes())
	for len(cores) < n {
		for nd := 0; nd < t.NumNodes() && len(cores) < n; nd++ {
			if taken[nd] < len(t.nodes[nd].Cores) {
				cores = append(cores, t.nodes[nd].Cores[taken[nd]])
				taken[nd]++
			}
		}
	}
	return cores
}

// AMD48 returns the quad-socket AMD Opteron 6172 "Magny-Cours" machine from
// Appendix A.1: 4 packages x 2 nodes x 6 cores at 2.1 GHz, with the Table 1
// bandwidths (21.3 GB/s local, 19.2 GB/s to the node in the same package via
// the intra-package HT3 links, 6.4 GB/s to nodes on other packages over an
// 8-bit HT3 link). Each node has 6 MB L3 with 1 MB reserved for cross-node
// probes, leaving 5 MB usable.
func AMD48() *Topology {
	t := &Topology{
		Name:            "amd48",
		GHz:             2.1,
		Packages:        4,
		NodesPerPackage: 2,
		CoresPerNode:    6,
		LocalBW:         21.3,
		SamePkgBW:       19.2,
		RemoteBW:        6.4,
		LocalLat:        65,
		SamePkgLat:      95,
		RemoteLat:       135,
		L3Bytes:         5 << 20,
		CacheBW:         120,
		CacheLat:        8,
	}
	t.build()
	return t
}

// Intel32 returns the quad-socket Intel Xeon X7560 machine from Appendix
// A.2: 4 packages x 1 node x 8 cores at 2.266 GHz, fully connected by
// full-width QPI links. Table 1: 17.1 GB/s local, 25.6 GB/s between nodes
// (the QPI links are faster than the local DDR3-1066 risers, which is why
// the machine has a smaller NUMA penalty). Each node has 24 MB L3 with 3 MB
// reserved, leaving 21 MB usable.
func Intel32() *Topology {
	t := &Topology{
		Name:            "intel32",
		GHz:             2.266,
		Packages:        4,
		NodesPerPackage: 1,
		CoresPerNode:    8,
		LocalBW:         17.1,
		SamePkgBW:       17.1, // no second node in a package; unused
		RemoteBW:        25.6,
		LocalLat:        70,
		SamePkgLat:      70,
		RemoteLat:       110,
		L3Bytes:         21 << 20,
		CacheBW:         120,
		CacheLat:        8,
	}
	t.build()
	return t
}

// Custom builds an arbitrary machine; intended for tests and what-if
// experiments.
func Custom(name string, packages, nodesPerPackage, coresPerNode int, localBW, samePkgBW, remoteBW float64) *Topology {
	if packages <= 0 || nodesPerPackage <= 0 || coresPerNode <= 0 {
		panic("numa: Custom requires positive shape parameters")
	}
	t := &Topology{
		Name:            name,
		GHz:             2.0,
		Packages:        packages,
		NodesPerPackage: nodesPerPackage,
		CoresPerNode:    coresPerNode,
		LocalBW:         localBW,
		SamePkgBW:       samePkgBW,
		RemoteBW:        remoteBW,
		LocalLat:        65,
		SamePkgLat:      95,
		RemoteLat:       135,
		L3Bytes:         4 << 20,
		CacheBW:         120,
		CacheLat:        8,
	}
	t.build()
	return t
}

// Preset returns a named preset topology.
func Preset(name string) (*Topology, error) {
	switch name {
	case "amd48":
		return AMD48(), nil
	case "intel32":
		return Intel32(), nil
	default:
		return nil, fmt.Errorf("numa: unknown machine preset %q (want amd48 or intel32)", name)
	}
}
