// Package numa models the memory hierarchy of multicore NUMA machines.
//
// The model follows Appendix A of the paper: a machine is a set of processor
// packages, each containing one or more nodes (dies); every node has a set of
// cores and an integrated memory controller attached to a private bank of
// RAM. Nodes are connected by point-to-point links (HyperTransport on the
// AMD machine, QPI on the Intel machine) whose bandwidth is lower than the
// sum of the local memory links, which is what makes placement matter.
//
// Costs are expressed in virtual nanoseconds. The package is used from the
// deterministic virtual-time engine, which serializes all callers, so the
// contention accounting below is deliberately unsynchronized.
package numa

import "fmt"

// PathKind classifies the route taken by a memory access relative to the
// core that issues it.
type PathKind int

const (
	// PathLocal is an access to the issuing core's own node memory.
	PathLocal PathKind = iota
	// PathSamePackage is an access to the other node in the same package
	// (only meaningful on machines with multi-node packages, such as the
	// AMD Magny-Cours).
	PathSamePackage
	// PathRemote is an access to a node in a different package.
	PathRemote
	// PathFar is an access to a node on a different board (a group of
	// packages behind a shared inter-board link) — the extra hierarchy
	// tier of rack-scale machines. Only meaningful when the topology
	// declares more than one board (PackagesPerBoard > 0); classic
	// single-board machines never classify an access as far.
	PathFar
)

// String returns a human-readable name for the path kind.
func (k PathKind) String() string {
	switch k {
	case PathLocal:
		return "local"
	case PathSamePackage:
		return "same-package"
	case PathRemote:
		return "remote"
	case PathFar:
		return "far"
	default:
		return fmt.Sprintf("PathKind(%d)", int(k))
	}
}

// Node describes one die: an integrated memory controller plus a set of
// cores.
type Node struct {
	ID      int
	Package int
	Cores   []int
}

// Topology describes the static shape of a machine.
type Topology struct {
	// Name identifies the preset (e.g. "amd48").
	Name string
	// GHz is the core clock, used only for reporting.
	GHz float64
	// Packages counts processor sockets.
	Packages int
	// NodesPerPackage counts dies per socket.
	NodesPerPackage int
	// CoresPerNode counts cores per die.
	CoresPerNode int
	// PackagesPerBoard groups packages onto boards connected by a shared
	// inter-board fabric, adding the far tier of rack-scale machines.
	// 0 (or >= Packages) means a single board: no access is ever
	// classified PathFar and the Far parameters are unused.
	PackagesPerBoard int

	// Bandwidth in bytes per nanosecond (== GB/s) for each path kind,
	// as in Table 1 of the paper. FarBW is the per-node share of the
	// inter-board fabric (boarded topologies only).
	LocalBW, SamePkgBW, RemoteBW, FarBW float64
	// Latency in nanoseconds for each path kind (model constants; the
	// paper reports only bandwidths, so these are calibrated).
	LocalLat, SamePkgLat, RemoteLat, FarLat float64

	// L3Bytes is the last-level cache per node; local heaps are sized to
	// fit in it (§3.1).
	L3Bytes int
	// CacheBW and CacheLat model an L3 hit.
	CacheBW  float64
	CacheLat float64

	nodes    []Node
	coreNode []int
}

// build derives the node and core tables from the shape parameters.
func (t *Topology) build() {
	numNodes := t.Packages * t.NodesPerPackage
	t.nodes = make([]Node, numNodes)
	t.coreNode = make([]int, numNodes*t.CoresPerNode)
	core := 0
	for n := 0; n < numNodes; n++ {
		nd := Node{ID: n, Package: n / t.NodesPerPackage}
		for c := 0; c < t.CoresPerNode; c++ {
			nd.Cores = append(nd.Cores, core)
			t.coreNode[core] = n
			core++
		}
		t.nodes[n] = nd
	}
}

// NumNodes returns the number of NUMA nodes (dies) in the machine.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumCores returns the total number of cores.
func (t *Topology) NumCores() int { return len(t.coreNode) }

// NodeOfCore returns the node that owns the given core.
func (t *Topology) NodeOfCore(core int) int { return t.coreNode[core] }

// Nodes returns the node table.
func (t *Topology) Nodes() []Node { return t.nodes }

// PackageOfNode returns the package (socket) containing the node.
func (t *Topology) PackageOfNode(node int) int { return t.nodes[node].Package }

// Boards returns the number of boards; 1 unless PackagesPerBoard groups the
// packages into more than one.
func (t *Topology) Boards() int {
	if t.PackagesPerBoard <= 0 || t.PackagesPerBoard >= t.Packages {
		return 1
	}
	return (t.Packages + t.PackagesPerBoard - 1) / t.PackagesPerBoard
}

// BoardOfNode returns the board containing the node (always 0 on
// single-board machines).
func (t *Topology) BoardOfNode(node int) int {
	if t.PackagesPerBoard <= 0 || t.PackagesPerBoard >= t.Packages {
		return 0
	}
	return t.nodes[node].Package / t.PackagesPerBoard
}

// Path classifies an access from a core to memory homed on the given node.
func (t *Topology) Path(core, memNode int) PathKind {
	cn := t.coreNode[core]
	switch {
	case cn == memNode:
		return PathLocal
	case t.nodes[cn].Package == t.nodes[memNode].Package:
		return PathSamePackage
	case t.BoardOfNode(cn) != t.BoardOfNode(memNode):
		return PathFar
	default:
		return PathRemote
	}
}

// Bandwidth returns the available bandwidth (bytes/ns) for a path kind, as
// reported in Table 1.
func (t *Topology) Bandwidth(k PathKind) float64 {
	switch k {
	case PathLocal:
		return t.LocalBW
	case PathSamePackage:
		return t.SamePkgBW
	case PathFar:
		return t.FarBW
	default:
		return t.RemoteBW
	}
}

// Latency returns the base latency (ns) for a path kind.
func (t *Topology) Latency(k PathKind) float64 {
	switch k {
	case PathLocal:
		return t.LocalLat
	case PathSamePackage:
		return t.SamePkgLat
	case PathFar:
		return t.FarLat
	default:
		return t.RemoteLat
	}
}

// SparseCoreAssignment returns n distinct cores spread as evenly as possible
// across nodes, mirroring §2.2: "when there are less vprocs than processors,
// they are assigned sparsely across the nodes to minimize contention on the
// node-shared L3 cache".
func (t *Topology) SparseCoreAssignment(n int) []int {
	if n < 0 || n > t.NumCores() {
		panic(fmt.Sprintf("numa: cannot assign %d vprocs to %d cores", n, t.NumCores()))
	}
	cores := make([]int, 0, n)
	// Round-robin over nodes, taking the next unused core of each node.
	taken := make([]int, t.NumNodes())
	for len(cores) < n {
		for nd := 0; nd < t.NumNodes() && len(cores) < n; nd++ {
			if taken[nd] < len(t.nodes[nd].Cores) {
				cores = append(cores, t.nodes[nd].Cores[taken[nd]])
				taken[nd]++
			}
		}
	}
	return cores
}

// AMD48 returns the quad-socket AMD Opteron 6172 "Magny-Cours" machine from
// Appendix A.1: 4 packages x 2 nodes x 6 cores at 2.1 GHz, with the Table 1
// bandwidths (21.3 GB/s local, 19.2 GB/s to the node in the same package via
// the intra-package HT3 links, 6.4 GB/s to nodes on other packages over an
// 8-bit HT3 link). Each node has 6 MB L3 with 1 MB reserved for cross-node
// probes, leaving 5 MB usable.
func AMD48() *Topology {
	t := &Topology{
		Name:            "amd48",
		GHz:             2.1,
		Packages:        4,
		NodesPerPackage: 2,
		CoresPerNode:    6,
		LocalBW:         21.3,
		SamePkgBW:       19.2,
		RemoteBW:        6.4,
		LocalLat:        65,
		SamePkgLat:      95,
		RemoteLat:       135,
		L3Bytes:         5 << 20,
		CacheBW:         120,
		CacheLat:        8,
	}
	t.build()
	return t
}

// Intel32 returns the quad-socket Intel Xeon X7560 machine from Appendix
// A.2: 4 packages x 1 node x 8 cores at 2.266 GHz, fully connected by
// full-width QPI links. Table 1: 17.1 GB/s local, 25.6 GB/s between nodes
// (the QPI links are faster than the local DDR3-1066 risers, which is why
// the machine has a smaller NUMA penalty). Each node has 24 MB L3 with 3 MB
// reserved, leaving 21 MB usable.
func Intel32() *Topology {
	t := &Topology{
		Name:            "intel32",
		GHz:             2.266,
		Packages:        4,
		NodesPerPackage: 1,
		CoresPerNode:    8,
		LocalBW:         17.1,
		SamePkgBW:       17.1, // no second node in a package; unused
		RemoteBW:        25.6,
		LocalLat:        70,
		SamePkgLat:      70,
		RemoteLat:       110,
		L3Bytes:         21 << 20,
		CacheBW:         120,
		CacheLat:        8,
	}
	t.build()
	return t
}

// CustomSpec describes an arbitrary machine for NewCustom. Zero-valued
// tuning fields take the calibrated defaults noted on each; shape and
// bandwidth fields are mandatory.
type CustomSpec struct {
	Name string
	// GHz is the core clock, for reporting. 0 means 2.0.
	GHz float64

	// Shape: all three are mandatory and must be positive.
	Packages, NodesPerPackage, CoresPerNode int
	// PackagesPerBoard groups packages onto boards (the far tier). 0
	// means a single board; otherwise it must divide Packages.
	PackagesPerBoard int

	// Bandwidths in GB/s. Local, same-package and remote are mandatory;
	// Far is mandatory exactly when the machine has more than one board.
	LocalBW, SamePkgBW, RemoteBW, FarBW float64
	// Latencies in ns. 0 means the calibrated defaults 65/95/135/400.
	LocalLat, SamePkgLat, RemoteLat, FarLat float64

	// L3Bytes per node; 0 means 4 MB. CacheBW/CacheLat model an L3 hit;
	// 0 means 120 GB/s / 8 ns.
	L3Bytes int
	CacheBW, CacheLat float64
}

// posParam reports whether v is a usable bandwidth/latency parameter: a
// positive finite number. Rejecting non-positive values here is what keeps
// a mistyped spec from silently modelling infinite-speed links.
func posParam(v float64) bool {
	return v > 0 && v <= 1e12
}

// NewCustom builds an arbitrary machine from a validated spec; intended for
// what-if experiments and the rack-scale presets. Every bandwidth, latency
// and cache parameter is checked after defaulting: non-positive (or
// non-finite) values are rejected rather than silently modelling
// infinite-speed links or free hits.
func NewCustom(s CustomSpec) (*Topology, error) {
	if s.Packages <= 0 || s.NodesPerPackage <= 0 || s.CoresPerNode <= 0 {
		return nil, fmt.Errorf("numa: spec %q needs positive shape, got %dx%dx%d",
			s.Name, s.Packages, s.NodesPerPackage, s.CoresPerNode)
	}
	if s.PackagesPerBoard < 0 {
		return nil, fmt.Errorf("numa: spec %q has negative PackagesPerBoard %d", s.Name, s.PackagesPerBoard)
	}
	if s.PackagesPerBoard > 0 && s.Packages%s.PackagesPerBoard != 0 {
		return nil, fmt.Errorf("numa: spec %q: PackagesPerBoard %d does not divide %d packages",
			s.Name, s.PackagesPerBoard, s.Packages)
	}
	t := &Topology{
		Name:             s.Name,
		GHz:              s.GHz,
		Packages:         s.Packages,
		NodesPerPackage:  s.NodesPerPackage,
		CoresPerNode:     s.CoresPerNode,
		PackagesPerBoard: s.PackagesPerBoard,
		LocalBW:          s.LocalBW,
		SamePkgBW:        s.SamePkgBW,
		RemoteBW:         s.RemoteBW,
		FarBW:            s.FarBW,
		LocalLat:         s.LocalLat,
		SamePkgLat:       s.SamePkgLat,
		RemoteLat:        s.RemoteLat,
		FarLat:           s.FarLat,
		L3Bytes:          s.L3Bytes,
		CacheBW:          s.CacheBW,
		CacheLat:         s.CacheLat,
	}
	if t.GHz == 0 {
		t.GHz = 2.0
	}
	if t.LocalLat == 0 {
		t.LocalLat = 65
	}
	if t.SamePkgLat == 0 {
		t.SamePkgLat = 95
	}
	if t.RemoteLat == 0 {
		t.RemoteLat = 135
	}
	if t.FarLat == 0 {
		t.FarLat = 400
	}
	if t.L3Bytes == 0 {
		t.L3Bytes = 4 << 20
	}
	if t.CacheBW == 0 {
		t.CacheBW = 120
	}
	if t.CacheLat == 0 {
		t.CacheLat = 8
	}
	check := []struct {
		name string
		v    float64
	}{
		{"GHz", t.GHz},
		{"LocalBW", t.LocalBW},
		{"SamePkgBW", t.SamePkgBW},
		{"RemoteBW", t.RemoteBW},
		{"LocalLat", t.LocalLat},
		{"SamePkgLat", t.SamePkgLat},
		{"RemoteLat", t.RemoteLat},
		{"CacheBW", t.CacheBW},
		{"CacheLat", t.CacheLat},
		{"L3Bytes", float64(t.L3Bytes)},
	}
	if t.Boards() > 1 {
		check = append(check,
			struct {
				name string
				v    float64
			}{"FarBW", t.FarBW},
			struct {
				name string
				v    float64
			}{"FarLat", t.FarLat},
		)
	}
	for _, c := range check {
		if !posParam(c.v) {
			return nil, fmt.Errorf("numa: spec %q: %s = %g must be positive and finite", s.Name, c.name, c.v)
		}
	}
	t.build()
	return t, nil
}

// Custom builds an arbitrary single-board machine with calibrated default
// latencies and cache parameters; intended for tests and what-if
// experiments. Invalid parameters panic; use NewCustom for an error return
// and access to the full spec (boards, latencies, L3).
func Custom(name string, packages, nodesPerPackage, coresPerNode int, localBW, samePkgBW, remoteBW float64) *Topology {
	t, err := NewCustom(CustomSpec{
		Name:            name,
		Packages:        packages,
		NodesPerPackage: nodesPerPackage,
		CoresPerNode:    coresPerNode,
		LocalBW:         localBW,
		SamePkgBW:       samePkgBW,
		RemoteBW:        remoteBW,
	})
	if err != nil {
		panic(err)
	}
	return t
}

// mustCustom builds a preset whose spec is known-valid.
func mustCustom(s CustomSpec) *Topology {
	t, err := NewCustom(s)
	if err != nil {
		panic(err)
	}
	return t
}

// rackSpec carries the shared interconnect parameters of the rack-scale
// presets: DDR4-class local memory behind sub-NUMA-cluster dies, a
// multi-socket fabric, and a switched inter-board link whose per-node share
// is far below any on-board path — the hierarchy tier that makes placement
// matter even more at rack scale than it does on the paper's machines.
func rackSpec(name string, packages, nodesPerPackage, coresPerNode, packagesPerBoard int) CustomSpec {
	return CustomSpec{
		Name:             name,
		GHz:              2.5,
		Packages:         packages,
		NodesPerPackage:  nodesPerPackage,
		CoresPerNode:     coresPerNode,
		PackagesPerBoard: packagesPerBoard,
		LocalBW:          80,
		SamePkgBW:        60,
		RemoteBW:         30,
		FarBW:            12,
		LocalLat:         90,
		SamePkgLat:       110,
		RemoteLat:        150,
		FarLat:           400,
		L3Bytes:          32 << 20,
		CacheBW:          200,
		CacheLat:         6,
	}
}

// Rack256 returns a 256-core two-board machine: 2 boards x 4 packages x
// 2 sub-NUMA-cluster dies x 16 cores.
func Rack256() *Topology { return mustCustom(rackSpec("rack256", 8, 2, 16, 4)) }

// Rack1024 returns a 1024-core four-board machine: 4 boards x 4 packages x
// 4 dies x 16 cores.
func Rack1024() *Topology { return mustCustom(rackSpec("rack1024", 16, 4, 16, 4)) }

// Rack4096 returns a 4096-core four-board machine: 4 boards x 8 packages x
// 4 dies x 32 cores.
func Rack4096() *Topology { return mustCustom(rackSpec("rack4096", 32, 4, 32, 8)) }

// Preset returns a named preset topology.
func Preset(name string) (*Topology, error) {
	switch name {
	case "amd48":
		return AMD48(), nil
	case "intel32":
		return Intel32(), nil
	case "rack256":
		return Rack256(), nil
	case "rack1024":
		return Rack1024(), nil
	case "rack4096":
		return Rack4096(), nil
	default:
		return nil, fmt.Errorf("numa: unknown machine preset %q (want amd48, intel32, rack256, rack1024 or rack4096)", name)
	}
}
