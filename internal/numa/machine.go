package numa

import "fmt"

// AccessKind distinguishes accesses that are likely to be served by the
// node-local cache hierarchy from ones that must go to memory.
type AccessKind int

const (
	// AccessCache marks traffic against a vproc's own local heap, which
	// is sized to fit in L3 (§3.1): when the backing pages are on the
	// issuing core's node it is charged at cache cost.
	AccessCache AccessKind = iota
	// AccessMemory marks traffic that must reach DRAM (global heap,
	// first-touch streaming, remote data).
	AccessMemory
)

// Machine couples a Topology with dynamic contention state. It charges a
// cost, in virtual nanoseconds, for every modelled memory transfer.
//
// Contention model: each node's memory controller and each node's remote
// ingress path have a byte budget per epoch (bandwidth x epoch length).
// Traffic beyond the budget stretches service time proportionally, which is
// how the model reproduces the bus saturation the paper observes when all
// nodes hammer socket zero (§4.3). Callers are serialized by the
// virtual-time engine and present non-decreasing timestamps.
//
// AccessCost is the inner loop of the whole simulation (every modelled
// transfer lands here), so the model is compiled into flat tables at
// construction time: a per-(core, node) path table, per-(path, kind) cost
// tables holding both the rounded int64 cost (the mult == 1 answer) and
// the unrounded float base (what a congestion multiplier scales), and
// per-epoch budgets. While a meter is provably under budget in the current
// epoch the multiplier is exactly 1 and the charge is a handful of loads
// and adds in an inlinable wrapper — no divisions, no float multiplier
// math. Every fast path is an exact-result optimisation, never an
// approximation: equivalence with the retained Reference implementation is
// enforced bit-for-bit by TestFastPathEquivalence.
type Machine struct {
	Topo *Topology

	// EpochNs is the contention accounting window. It is fixed at
	// construction; the per-epoch budgets and the meters' cached epoch
	// bounds are derived from it, so it must not be mutated after the
	// first charge.
	EpochNs int64

	ctrl   []meter // per-node memory-controller demand
	remote []meter // per-node ingress demand from other packages
	far    []meter // per-node ingress demand from other boards

	// --- Precomputed tables (see rebuild) ---

	nNodes  int
	nNodesU uint
	// pathTab flattens Topo.Path into one row per core:
	// pathTab[core*nNodes+memNode] is the PathKind of that access.
	pathTab []uint8
	// pathCost holds the per-path latency and bandwidth constants from
	// Table 1, indexed by PathKind.
	pathCost [4]pathParam
	// accessTab/streamTab hold, per path and word count i (flattened as
	// [path*tabWords+i]), the rounded cost of an uncontended (mult == 1)
	// transfer of i*8 bytes next to the float demand the meters
	// accumulate for it, so the whole uncontended charge reads one table
	// row. accessTabF/streamTabF hold the unrounded base the congestion
	// multiplier scales; cacheAccessTabI/cacheStreamTabI are the rounded
	// costs of the meterless own-cache path.
	accessTab       []costEntry
	streamTab       []costEntry
	accessTabF      []float64
	streamTabF      []float64
	cacheAccessTabI []int64
	cacheStreamTabI []int64
	// ctrlBudget, remoteBudget and farBudget are the per-epoch byte
	// budgets of the home memory controller, the remote ingress links,
	// and the inter-board ingress links (boarded topologies only).
	ctrlBudget   float64
	remoteBudget float64
	farBudget    float64
	// cacheLat and cacheBW model an L3 hit (the meterless path).
	cacheLat float64
	cacheBW  float64

	// Traffic accumulators. Accumulation is branch-free: every charge adds
	// its bytes and bumps its count at a single computed index — 0..3 are
	// the PathKinds, 4 (cacheIdx) is own-cache traffic — and Stats
	// assembles the public TrafficStats shape on demand. Counts are kept
	// per slot (instead of one shared counter) so back-to-back charges on
	// different paths do not serialize on one read-modify-write chain.
	bytesAcc [5]uint64
	countAcc [5]uint64
}

// pathParam is one row of the per-path cost table.
type pathParam struct {
	lat float64 // base latency, ns
	bw  float64 // bandwidth, bytes/ns
}

// costEntry pairs the rounded uncontended cost of a transfer with the
// demand the contention meters accumulate for it.
type costEntry struct {
	costI  int64
	demand float64
}

// cacheIdx is the bytesAcc slot for own-cache (meterless) traffic.
const cacheIdx = 4

// tabWords bounds the precomputed cost tables: transfers of up to
// tabWords*8 bytes with a word-multiple size — which is every GC and
// allocator charge — resolve by table lookup. Larger or unaligned
// transfers fall back to the direct computation.
const tabWords = 8192

// lineBytes is the cache-line transfer granularity used for contention
// accounting.
const lineBytes = 64

// meter tracks demand against a byte budget within the current epoch.
//
// Although the engine serializes all callers, charge timestamps are not
// globally monotone: a proc with a smaller clock can charge after one with
// a larger clock (it is scheduled precisely because its clock is smaller),
// so a charge may arrive from the epoch before the meter's current one.
// The same-epoch test must therefore bound now on both sides.
type meter struct {
	epoch int64
	// epochStart caches epoch*EpochNs so the common same-epoch charge is
	// one unsigned comparison instead of an integer division. The zero
	// value (epoch 0, start 0) is a valid fresh meter.
	epochStart int64
	bytes      float64
}

// TrafficStats aggregates modelled traffic, for reports and tests.
type TrafficStats struct {
	BytesByPath [4]uint64 // indexed by PathKind
	CacheBytes  uint64
	Accesses    uint64
}

// NewMachine wraps a topology with fresh contention state.
func NewMachine(t *Topology) *Machine {
	m := &Machine{
		Topo:    t,
		EpochNs: 50_000,
	}
	m.rebuild()
	return m
}

// rebuild derives the fast-path tables and fresh meters from Topo/EpochNs.
func (m *Machine) rebuild() {
	t := m.Topo
	m.nNodes = t.NumNodes()
	m.nNodesU = uint(m.nNodes)
	m.pathTab = make([]uint8, t.NumCores()*m.nNodes)
	for core := 0; core < t.NumCores(); core++ {
		for node := 0; node < m.nNodes; node++ {
			m.pathTab[core*m.nNodes+node] = uint8(t.Path(core, node))
		}
	}
	m.accessTab = make([]costEntry, 4*tabWords)
	m.streamTab = make([]costEntry, 4*tabWords)
	m.accessTabF = make([]float64, 4*tabWords)
	m.streamTabF = make([]float64, 4*tabWords)
	for _, p := range []PathKind{PathLocal, PathSamePackage, PathRemote, PathFar} {
		lat, bw := t.Latency(p), t.Bandwidth(p)
		m.pathCost[p] = pathParam{lat: lat, bw: bw}
		if bw <= 0 {
			// Single-board machine: PathFar is never classified, so its
			// table rows stay zero rather than dividing by zero.
			continue
		}
		for i := 1; i < tabWords; i++ {
			demand := float64(i * 8)
			if demand < lineBytes {
				demand = lineBytes
			}
			m.accessTabF[int(p)*tabWords+i] = lat + demand/bw
			m.streamTabF[int(p)*tabWords+i] = float64(i*8) / bw
			m.accessTab[int(p)*tabWords+i] = costEntry{int64(lat + demand/bw), demand}
			m.streamTab[int(p)*tabWords+i] = costEntry{int64(float64(i*8) / bw), float64(i * 8)}
		}
	}
	m.cacheAccessTabI = make([]int64, tabWords)
	m.cacheStreamTabI = make([]int64, tabWords)
	for i := 1; i < tabWords; i++ {
		m.cacheAccessTabI[i] = int64(t.CacheLat + float64(i*8)/t.CacheBW)
		m.cacheStreamTabI[i] = int64(float64(i*8) / t.CacheBW)
	}
	m.ctrlBudget = t.LocalBW * float64(m.EpochNs)
	m.remoteBudget = t.RemoteBW * float64(m.EpochNs)
	m.farBudget = t.FarBW * float64(m.EpochNs)
	m.cacheLat = t.CacheLat
	m.cacheBW = t.CacheBW
	m.ctrl = make([]meter, m.nNodes)
	m.remote = make([]meter, m.nNodes)
	m.far = make([]meter, m.nNodes)
}

// Reset clears contention state and traffic statistics.
func (m *Machine) Reset() {
	for i := range m.ctrl {
		m.ctrl[i] = meter{}
		m.remote[i] = meter{}
		m.far[i] = meter{}
	}
	m.bytesAcc = [5]uint64{}
	m.countAcc = [5]uint64{}
}

// Stats returns a copy of the accumulated traffic statistics.
func (m *Machine) Stats() TrafficStats {
	return TrafficStats{
		BytesByPath: [4]uint64{m.bytesAcc[0], m.bytesAcc[1], m.bytesAcc[2], m.bytesAcc[3]},
		CacheBytes:  m.bytesAcc[cacheIdx],
		Accesses:    m.countAcc[0] + m.countAcc[1] + m.countAcc[2] + m.countAcc[3] + m.countAcc[cacheIdx],
	}
}

// charge adds demand to a meter and returns the congestion multiplier in
// effect for this transfer: 1 when the epoch budget is unused, growing
// linearly with the demand already queued this epoch.
func (mt *meter) charge(now int64, epochNs int64, bytes, budget float64) float64 {
	if uint64(now-mt.epochStart) >= uint64(epochNs) {
		mt.roll(now, epochNs, budget)
	}
	if mt.bytes <= budget {
		mt.bytes += bytes
		return 1
	}
	mult := 1.0
	mult += (mt.bytes - budget) / budget
	mt.bytes += bytes
	return mult
}

// roll moves the meter into now's epoch. Residual overload decays by half
// for every elapsed epoch — a controller that was saturated and then sat
// idle for g epochs carries over/2^g into the new epoch, so a long idle gap
// cools it all the way down instead of halving once regardless of the gap.
// A backward roll (a charge from the epoch before the meter's current one,
// possible because engine timestamps are not globally monotone) decays by
// one halving, the same as a single elapsed epoch.
func (mt *meter) roll(now, epochNs int64, budget float64) {
	e := now / epochNs
	gap := e - mt.epoch
	mt.epoch = e
	mt.epochStart = e * epochNs
	over := mt.bytes - budget
	switch {
	case over <= 0 || gap >= 63:
		mt.bytes = 0
	case gap < 1:
		mt.bytes = over / 2
	default:
		mt.bytes = over / float64(int64(1)<<uint(gap))
	}
}

// AccessCost returns the virtual-ns cost of a transfer of the given number
// of bytes between the issuing core and memory homed on memNode, and
// accounts the traffic for contention purposes. now is the issuing vproc's
// current virtual time.
//
// The body below is the inlinable uncontended fast path: a word-multiple
// table-covered size, a memory access on a non-remote path, and a home
// controller still in its epoch and under budget — exactly the mult == 1
// conditions — resolve to a table load. Everything else (cache accesses,
// remote paths, epoch rolls, contention, odd sizes) takes the full route.
func (m *Machine) AccessCost(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	ub := uint(bytes)
	if ub&7 == 0 && ub-8 <= tabWords*8-16 && uint(memNode) < m.nNodesU {
		p := m.pathTab[uint(core)*m.nNodesU+uint(memNode)]
		if kind == AccessCache {
			if p == uint8(PathLocal) {
				m.countAcc[cacheIdx]++
				m.bytesAcc[cacheIdx] += uint64(bytes)
				return m.cacheAccessTabI[ub>>3]
			}
		} else {
			mt := &m.ctrl[memNode]
			if uint64(now-mt.epochStart) < uint64(m.EpochNs) && mt.bytes <= m.ctrlBudget {
				e := &m.accessTab[uint(p&3)*tabWords+ub>>3]
				if p < uint8(PathRemote) {
					m.countAcc[p&3]++
					m.bytesAcc[p&3] += uint64(bytes)
					mt.bytes += e.demand
					return e.costI
				}
				if p == uint8(PathRemote) {
					// Remote transfers also ride the ingress meter; the
					// fast path applies only when that one is under
					// budget too (nothing is mutated before the bail).
					rmt := &m.remote[memNode]
					if uint64(now-rmt.epochStart) < uint64(m.EpochNs) && rmt.bytes <= m.remoteBudget {
						m.countAcc[p&3]++
						m.bytesAcc[p&3] += uint64(bytes)
						mt.bytes += e.demand
						rmt.bytes += e.demand
						return e.costI
					}
				}
				// PathFar rides three meters (controller, remote ingress,
				// board ingress); it always takes the full route.
			}
		}
	}
	return m.accessCostSlow(now, core, memNode, bytes, kind)
}

// accessCostSlow is the full charge: validation, cache classification,
// epoch rolls, and both contention meters.
func (m *Machine) accessCostSlow(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	if bytes <= 0 {
		return 0
	}
	if memNode < 0 || memNode >= m.nNodes {
		panic(fmt.Sprintf("numa: access to invalid node %d", memNode))
	}
	path := PathKind(m.pathTab[core*m.nNodes+memNode])
	if kind == AccessCache && path == PathLocal {
		m.countAcc[cacheIdx]++
		m.bytesAcc[cacheIdx] += uint64(bytes)
		if bytes&7 == 0 && bytes < tabWords*8 {
			return m.cacheAccessTabI[bytes>>3]
		}
		return int64(m.cacheLat + float64(bytes)/m.cacheBW)
	}
	m.countAcc[path]++
	m.bytesAcc[path] += uint64(bytes)

	// Demand is accounted at cache-line granularity: a random 8-byte
	// load still moves a full line across the interconnect, which is
	// what saturates links under scattered shared-data access (SMVM's
	// vector, the Barnes-Hut tree).
	demand := float64(bytes)
	if demand < lineBytes {
		demand = lineBytes
	}

	// Memory-controller contention at the home node applies to every
	// DRAM access.
	mult := m.ctrl[memNode].charge(now, m.EpochNs, demand, m.ctrlBudget)

	// Remote and far transfers additionally contend for the target
	// node's ingress links, whose budget is the remote path bandwidth;
	// far transfers also cross the shared inter-board fabric and ride a
	// third meter with the (much smaller) far budget. The effective
	// multiplier is the worst queue on the route.
	if path >= PathRemote {
		if rm := m.remote[memNode].charge(now, m.EpochNs, demand, m.remoteBudget); rm > mult {
			mult = rm
		}
	}
	if path == PathFar {
		if fm := m.far[memNode].charge(now, m.EpochNs, demand, m.farBudget); fm > mult {
			mult = fm
		}
	}

	// The transfer term is line-granular and scaled by the congestion
	// multiplier; under saturation the multiplier also applies to the
	// base latency, modelling queueing at the saturated controller or
	// link. This is what makes scattered access to one node's memory
	// stop scaling (the SMVM vector, §4.2-4.3).
	if mult > 1 {
		var base float64
		if bytes&7 == 0 && bytes < tabWords*8 {
			base = m.accessTabF[int(path)*tabWords+bytes>>3]
		} else {
			pc := &m.pathCost[path]
			base = pc.lat + demand/pc.bw
		}
		return int64(base * mult)
	}
	if bytes&7 == 0 && bytes < tabWords*8 {
		return m.accessTab[int(path)*tabWords+bytes>>3].costI
	}
	pc := &m.pathCost[path]
	return int64(pc.lat + demand/pc.bw)
}

// CopyCost returns the cost of copying bytes from memory homed on srcNode to
// memory homed on dstNode, as performed by the given core (the GC copy
// loop): a read from the source plus a write to the destination.
func (m *Machine) CopyCost(now int64, core, srcNode, dstNode, bytes int, srcKind, dstKind AccessKind) int64 {
	c := m.AccessCost(now, core, srcNode, bytes, srcKind)
	c += m.AccessCost(now+c, core, dstNode, bytes, dstKind)
	return c
}

// StreamCost is AccessCost without the per-access latency: the cost model
// for the object-at-a-time copy loops of the collector, whose consecutive
// accesses are contiguous and prefetched. Contention accounting is
// identical to AccessCost except that demand is not rounded up to a cache
// line (streaming transfers move exactly their bytes). The wrapper is the
// same inlinable uncontended fast path as AccessCost's.
func (m *Machine) StreamCost(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	ub := uint(bytes)
	if ub&7 == 0 && ub-8 <= tabWords*8-16 && uint(memNode) < m.nNodesU {
		p := m.pathTab[uint(core)*m.nNodesU+uint(memNode)]
		if kind == AccessCache {
			if p == uint8(PathLocal) {
				m.countAcc[cacheIdx]++
				m.bytesAcc[cacheIdx] += uint64(bytes)
				return m.cacheStreamTabI[ub>>3]
			}
		} else {
			mt := &m.ctrl[memNode]
			if uint64(now-mt.epochStart) < uint64(m.EpochNs) && mt.bytes <= m.ctrlBudget {
				e := &m.streamTab[uint(p&3)*tabWords+ub>>3]
				if p < uint8(PathRemote) {
					m.countAcc[p&3]++
					m.bytesAcc[p&3] += uint64(bytes)
					mt.bytes += e.demand
					return e.costI
				}
				if p == uint8(PathRemote) {
					rmt := &m.remote[memNode]
					if uint64(now-rmt.epochStart) < uint64(m.EpochNs) && rmt.bytes <= m.remoteBudget {
						m.countAcc[p&3]++
						m.bytesAcc[p&3] += uint64(bytes)
						mt.bytes += e.demand
						rmt.bytes += e.demand
						return e.costI
					}
				}
			}
		}
	}
	return m.streamCostSlow(now, core, memNode, bytes, kind)
}

// streamCostSlow is the full streaming charge.
func (m *Machine) streamCostSlow(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	if bytes <= 0 {
		return 0
	}
	path := PathKind(m.pathTab[core*m.nNodes+memNode])
	if kind == AccessCache && path == PathLocal {
		m.countAcc[cacheIdx]++
		m.bytesAcc[cacheIdx] += uint64(bytes)
		if bytes&7 == 0 && bytes < tabWords*8 {
			return m.cacheStreamTabI[bytes>>3]
		}
		return int64(float64(bytes) / m.cacheBW)
	}
	m.countAcc[path]++
	m.bytesAcc[path] += uint64(bytes)
	demand := float64(bytes)
	mult := m.ctrl[memNode].charge(now, m.EpochNs, demand, m.ctrlBudget)
	if path >= PathRemote {
		if rm := m.remote[memNode].charge(now, m.EpochNs, demand, m.remoteBudget); rm > mult {
			mult = rm
		}
	}
	if path == PathFar {
		if fm := m.far[memNode].charge(now, m.EpochNs, demand, m.farBudget); fm > mult {
			mult = fm
		}
	}
	if mult > 1 {
		var base float64
		if bytes&7 == 0 && bytes < tabWords*8 {
			base = m.streamTabF[int(path)*tabWords+bytes>>3]
		} else {
			base = demand / m.pathCost[path].bw
		}
		return int64(base * mult)
	}
	if bytes&7 == 0 && bytes < tabWords*8 {
		return m.streamTab[int(path)*tabWords+bytes>>3].costI
	}
	return int64(demand / m.pathCost[path].bw)
}

// CopyStreamCost is CopyCost with streaming (latency-free) accounting on
// both sides.
func (m *Machine) CopyStreamCost(now int64, core, srcNode, dstNode, bytes int, srcKind, dstKind AccessKind) int64 {
	c := m.StreamCost(now, core, srcNode, bytes, srcKind)
	c += m.StreamCost(now+c, core, dstNode, bytes, dstKind)
	return c
}

// --- Batched charging ------------------------------------------------------

// Meterless reports whether an access by core to memNode with the given
// kind bypasses the contention meters entirely (own-cache traffic on a
// node-local path). A meterless transfer's cost depends on nothing but its
// size — not on virtual time and not on any meter state — which is what
// makes fusing a run of them into a single engine charge exact: the caller
// may accumulate CacheAccessCost/CacheStreamCost results and advance its
// clock once, with a total bit-identical to charging each transfer
// individually (each transfer keeps its own int64 truncation).
// An out-of-range memNode reports false, sending the caller to
// AccessCost/StreamCost, which validate and panic descriptively.
func (m *Machine) Meterless(core, memNode int, kind AccessKind) bool {
	return kind == AccessCache && uint(memNode) < m.nNodesU &&
		m.pathTab[uint(core)*m.nNodesU+uint(memNode)] == uint8(PathLocal)
}

// CacheAccessCost charges one meterless access: exactly AccessCost's cache
// branch, callable without a timestamp because the result is
// time-independent. The caller must have established Meterless.
func (m *Machine) CacheAccessCost(bytes int) int64 {
	ub := uint(bytes)
	if ub&7 == 0 && ub-8 <= tabWords*8-16 {
		m.countAcc[cacheIdx]++
		m.bytesAcc[cacheIdx] += uint64(bytes)
		return m.cacheAccessTabI[ub>>3]
	}
	return m.cacheAccessSlow(bytes)
}

func (m *Machine) cacheAccessSlow(bytes int) int64 {
	if bytes <= 0 {
		return 0
	}
	m.countAcc[cacheIdx]++
	m.bytesAcc[cacheIdx] += uint64(bytes)
	return int64(m.cacheLat + float64(bytes)/m.cacheBW)
}

// CacheStreamCost charges one meterless streaming access: exactly
// StreamCost's cache branch. The caller must have established Meterless.
func (m *Machine) CacheStreamCost(bytes int) int64 {
	ub := uint(bytes)
	if ub&7 == 0 && ub-8 <= tabWords*8-16 {
		m.countAcc[cacheIdx]++
		m.bytesAcc[cacheIdx] += uint64(bytes)
		return m.cacheStreamTabI[ub>>3]
	}
	return m.cacheStreamSlow(bytes)
}

func (m *Machine) cacheStreamSlow(bytes int) int64 {
	if bytes <= 0 {
		return 0
	}
	m.countAcc[cacheIdx]++
	m.bytesAcc[cacheIdx] += uint64(bytes)
	return int64(float64(bytes) / m.cacheBW)
}

// BandwidthTable formats Table 1 of the paper for this machine: the
// theoretical bandwidth available between a single node and the rest of the
// system.
func (m *Machine) BandwidthTable() string {
	t := m.Topo
	s := fmt.Sprintf("Theoretical bandwidth, machine %s (GB/s)\n", t.Name)
	s += fmt.Sprintf("  Local Memory            %5.1f\n", t.LocalBW)
	if t.NodesPerPackage > 1 {
		s += fmt.Sprintf("  Node in same package    %5.1f\n", t.SamePkgBW)
	} else {
		s += "  Node in same package      n/a\n"
	}
	s += fmt.Sprintf("  Node on another package %5.1f\n", t.RemoteBW)
	if t.Boards() > 1 {
		s += fmt.Sprintf("  Node on another board   %5.1f\n", t.FarBW)
	}
	return s
}
