package numa

import "fmt"

// AccessKind distinguishes accesses that are likely to be served by the
// node-local cache hierarchy from ones that must go to memory.
type AccessKind int

const (
	// AccessCache marks traffic against a vproc's own local heap, which
	// is sized to fit in L3 (§3.1): when the backing pages are on the
	// issuing core's node it is charged at cache cost.
	AccessCache AccessKind = iota
	// AccessMemory marks traffic that must reach DRAM (global heap,
	// first-touch streaming, remote data).
	AccessMemory
)

// Machine couples a Topology with dynamic contention state. It charges a
// cost, in virtual nanoseconds, for every modelled memory transfer.
//
// Contention model: each node's memory controller and each node's remote
// ingress path have a byte budget per epoch (bandwidth x epoch length).
// Traffic beyond the budget stretches service time proportionally, which is
// how the model reproduces the bus saturation the paper observes when all
// nodes hammer socket zero (§4.3). Callers are serialized by the
// virtual-time engine and present non-decreasing timestamps.
type Machine struct {
	Topo *Topology

	// EpochNs is the contention accounting window.
	EpochNs int64

	ctrl   []meter // per-node memory-controller demand
	remote []meter // per-node ingress demand from other packages

	stats TrafficStats
}

// lineBytes is the cache-line transfer granularity used for contention
// accounting.
const lineBytes = 64

// meter tracks demand against a byte budget within the current epoch.
type meter struct {
	epoch int64
	bytes float64
}

// TrafficStats aggregates modelled traffic, for reports and tests.
type TrafficStats struct {
	BytesByPath [3]uint64 // indexed by PathKind
	CacheBytes  uint64
	Accesses    uint64
}

// NewMachine wraps a topology with fresh contention state.
func NewMachine(t *Topology) *Machine {
	return &Machine{
		Topo:    t,
		EpochNs: 50_000,
		ctrl:    make([]meter, t.NumNodes()),
		remote:  make([]meter, t.NumNodes()),
	}
}

// Reset clears contention state and traffic statistics.
func (m *Machine) Reset() {
	for i := range m.ctrl {
		m.ctrl[i] = meter{}
		m.remote[i] = meter{}
	}
	m.stats = TrafficStats{}
}

// Stats returns a copy of the accumulated traffic statistics.
func (m *Machine) Stats() TrafficStats { return m.stats }

// charge adds demand to a meter and returns the congestion multiplier in
// effect for this transfer: 1 when the epoch budget is unused, growing
// linearly with the demand already queued this epoch.
func (mt *meter) charge(now int64, epochNs int64, bytes, budget float64) float64 {
	e := now / epochNs
	if e != mt.epoch {
		// Carry half of the residual overload into the new epoch so a
		// saturated controller does not reset to "idle" at an epoch
		// boundary mid-burst.
		over := mt.bytes - budget
		mt.epoch = e
		if over > 0 {
			mt.bytes = over / 2
		} else {
			mt.bytes = 0
		}
	}
	mult := 1.0
	if mt.bytes > budget {
		mult += (mt.bytes - budget) / budget
	}
	mt.bytes += bytes
	return mult
}

// AccessCost returns the virtual-ns cost of a transfer of the given number
// of bytes between the issuing core and memory homed on memNode, and
// accounts the traffic for contention purposes. now is the issuing vproc's
// current virtual time.
func (m *Machine) AccessCost(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	if bytes <= 0 {
		return 0
	}
	t := m.Topo
	if memNode < 0 || memNode >= t.NumNodes() {
		panic(fmt.Sprintf("numa: access to invalid node %d", memNode))
	}
	m.stats.Accesses++
	path := t.Path(core, memNode)

	if kind == AccessCache && path == PathLocal {
		m.stats.CacheBytes += uint64(bytes)
		return int64(t.CacheLat + float64(bytes)/t.CacheBW)
	}
	m.stats.BytesByPath[path] += uint64(bytes)

	bw := t.Bandwidth(path)
	lat := t.Latency(path)
	budget := t.LocalBW * float64(m.EpochNs)

	// Demand is accounted at cache-line granularity: a random 8-byte
	// load still moves a full line across the interconnect, which is
	// what saturates links under scattered shared-data access (SMVM's
	// vector, the Barnes-Hut tree).
	demand := float64(bytes)
	if demand < lineBytes {
		demand = lineBytes
	}

	// Memory-controller contention at the home node applies to every
	// DRAM access.
	mult := m.ctrl[memNode].charge(now, m.EpochNs, demand, budget)

	// Remote transfers additionally contend for the target node's
	// ingress links, whose budget is the remote path bandwidth.
	if path == PathRemote {
		rbudget := t.RemoteBW * float64(m.EpochNs)
		rm := m.remote[memNode].charge(now, m.EpochNs, demand, rbudget)
		if rm > mult {
			mult = rm
		}
	}

	// The transfer term is line-granular and scaled by the congestion
	// multiplier; under saturation the multiplier also applies to the
	// base latency, modelling queueing at the saturated controller or
	// link. This is what makes scattered access to one node's memory
	// stop scaling (the SMVM vector, §4.2-4.3).
	if mult > 1 {
		return int64((lat + demand/bw) * mult)
	}
	return int64(lat + demand/bw)
}

// CopyCost returns the cost of copying bytes from memory homed on srcNode to
// memory homed on dstNode, as performed by the given core (the GC copy
// loop): a read from the source plus a write to the destination.
func (m *Machine) CopyCost(now int64, core, srcNode, dstNode, bytes int, srcKind, dstKind AccessKind) int64 {
	c := m.AccessCost(now, core, srcNode, bytes, srcKind)
	c += m.AccessCost(now+c, core, dstNode, bytes, dstKind)
	return c
}

// StreamCost is AccessCost without the per-access latency: the cost model
// for the object-at-a-time copy loops of the collector, whose consecutive
// accesses are contiguous and prefetched. Contention accounting is
// identical to AccessCost.
func (m *Machine) StreamCost(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	if bytes <= 0 {
		return 0
	}
	t := m.Topo
	m.stats.Accesses++
	path := t.Path(core, memNode)
	if kind == AccessCache && path == PathLocal {
		m.stats.CacheBytes += uint64(bytes)
		return int64(float64(bytes) / t.CacheBW)
	}
	m.stats.BytesByPath[path] += uint64(bytes)
	bw := t.Bandwidth(path)
	budget := t.LocalBW * float64(m.EpochNs)
	demand := float64(bytes)
	mult := m.ctrl[memNode].charge(now, m.EpochNs, demand, budget)
	if path == PathRemote {
		rbudget := t.RemoteBW * float64(m.EpochNs)
		if rm := m.remote[memNode].charge(now, m.EpochNs, demand, rbudget); rm > mult {
			mult = rm
		}
	}
	return int64(float64(bytes) / bw * mult)
}

// CopyStreamCost is CopyCost with streaming (latency-free) accounting on
// both sides.
func (m *Machine) CopyStreamCost(now int64, core, srcNode, dstNode, bytes int, srcKind, dstKind AccessKind) int64 {
	c := m.StreamCost(now, core, srcNode, bytes, srcKind)
	c += m.StreamCost(now+c, core, dstNode, bytes, dstKind)
	return c
}

// BandwidthTable formats Table 1 of the paper for this machine: the
// theoretical bandwidth available between a single node and the rest of the
// system.
func (m *Machine) BandwidthTable() string {
	t := m.Topo
	s := fmt.Sprintf("Theoretical bandwidth, machine %s (GB/s)\n", t.Name)
	s += fmt.Sprintf("  Local Memory            %5.1f\n", t.LocalBW)
	if t.NodesPerPackage > 1 {
		s += fmt.Sprintf("  Node in same package    %5.1f\n", t.SamePkgBW)
	} else {
		s += "  Node in same package      n/a\n"
	}
	s += fmt.Sprintf("  Node on another package %5.1f\n", t.RemoteBW)
	return s
}
