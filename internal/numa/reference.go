package numa

// Reference is the retained straight-line implementation of the cost model:
// per-access Topo.Path classification, switch-based bandwidth/latency
// lookups, budgets recomputed on every charge, and no cached epoch bounds.
// It computes exactly what Machine computes — Machine is a table-driven
// fast path over this math, not an approximation — and exists so the
// equivalence test (TestFastPathEquivalence) and the microbenchmarks can
// hold the optimised implementation to bit-identical results. The only
// intentional semantic shared with Machine but not with the original seed
// code is the epoch-carry rule: residual overload decays by half per
// elapsed epoch (see refMeter.charge).
type Reference struct {
	Topo    *Topology
	EpochNs int64

	ctrl   []refMeter
	remote []refMeter
	far    []refMeter

	stats TrafficStats
}

// refMeter tracks demand against a byte budget within the current epoch.
type refMeter struct {
	epoch int64
	bytes float64
}

// NewReference wraps a topology with fresh contention state.
func NewReference(t *Topology) *Reference {
	return &Reference{
		Topo:    t,
		EpochNs: 50_000,
		ctrl:    make([]refMeter, t.NumNodes()),
		remote:  make([]refMeter, t.NumNodes()),
		far:     make([]refMeter, t.NumNodes()),
	}
}

// Reset clears contention state and traffic statistics.
func (m *Reference) Reset() {
	for i := range m.ctrl {
		m.ctrl[i] = refMeter{}
		m.remote[i] = refMeter{}
		m.far[i] = refMeter{}
	}
	m.stats = TrafficStats{}
}

// Stats returns a copy of the accumulated traffic statistics.
func (m *Reference) Stats() TrafficStats { return m.stats }

// charge adds demand to a meter and returns the congestion multiplier in
// effect for this transfer. On an epoch roll, residual overload decays by
// half per elapsed epoch; a backward roll decays by one halving (the same
// rule as meter.roll).
func (mt *refMeter) charge(now int64, epochNs int64, bytes, budget float64) float64 {
	e := now / epochNs
	if e != mt.epoch {
		gap := e - mt.epoch
		over := mt.bytes - budget
		mt.epoch = e
		switch {
		case over <= 0 || gap >= 63:
			mt.bytes = 0
		case gap < 1:
			mt.bytes = over / 2
		default:
			mt.bytes = over / float64(int64(1)<<uint(gap))
		}
	}
	mult := 1.0
	if mt.bytes > budget {
		mult += (mt.bytes - budget) / budget
	}
	mt.bytes += bytes
	return mult
}

// AccessCost is Machine.AccessCost computed the straight-line way.
func (m *Reference) AccessCost(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	if bytes <= 0 {
		return 0
	}
	t := m.Topo
	m.stats.Accesses++
	path := t.Path(core, memNode)

	if kind == AccessCache && path == PathLocal {
		m.stats.CacheBytes += uint64(bytes)
		return int64(t.CacheLat + float64(bytes)/t.CacheBW)
	}
	m.stats.BytesByPath[path] += uint64(bytes)

	bw := t.Bandwidth(path)
	lat := t.Latency(path)
	budget := t.LocalBW * float64(m.EpochNs)

	demand := float64(bytes)
	if demand < lineBytes {
		demand = lineBytes
	}

	mult := m.ctrl[memNode].charge(now, m.EpochNs, demand, budget)
	if path >= PathRemote {
		rbudget := t.RemoteBW * float64(m.EpochNs)
		if rm := m.remote[memNode].charge(now, m.EpochNs, demand, rbudget); rm > mult {
			mult = rm
		}
	}
	if path == PathFar {
		fbudget := t.FarBW * float64(m.EpochNs)
		if fm := m.far[memNode].charge(now, m.EpochNs, demand, fbudget); fm > mult {
			mult = fm
		}
	}

	if mult > 1 {
		return int64((lat + demand/bw) * mult)
	}
	return int64(lat + demand/bw)
}

// StreamCost is Machine.StreamCost computed the straight-line way.
func (m *Reference) StreamCost(now int64, core, memNode, bytes int, kind AccessKind) int64 {
	if bytes <= 0 {
		return 0
	}
	t := m.Topo
	m.stats.Accesses++
	path := t.Path(core, memNode)
	if kind == AccessCache && path == PathLocal {
		m.stats.CacheBytes += uint64(bytes)
		return int64(float64(bytes) / t.CacheBW)
	}
	m.stats.BytesByPath[path] += uint64(bytes)
	bw := t.Bandwidth(path)
	budget := t.LocalBW * float64(m.EpochNs)
	demand := float64(bytes)
	mult := m.ctrl[memNode].charge(now, m.EpochNs, demand, budget)
	if path >= PathRemote {
		rbudget := t.RemoteBW * float64(m.EpochNs)
		if rm := m.remote[memNode].charge(now, m.EpochNs, demand, rbudget); rm > mult {
			mult = rm
		}
	}
	if path == PathFar {
		fbudget := t.FarBW * float64(m.EpochNs)
		if fm := m.far[memNode].charge(now, m.EpochNs, demand, fbudget); fm > mult {
			mult = fm
		}
	}
	return int64(float64(bytes) / bw * mult)
}

// CopyCost composes two AccessCosts, as Machine.CopyCost does.
func (m *Reference) CopyCost(now int64, core, srcNode, dstNode, bytes int, srcKind, dstKind AccessKind) int64 {
	c := m.AccessCost(now, core, srcNode, bytes, srcKind)
	c += m.AccessCost(now+c, core, dstNode, bytes, dstKind)
	return c
}

// CopyStreamCost composes two StreamCosts, as Machine.CopyStreamCost does.
func (m *Reference) CopyStreamCost(now int64, core, srcNode, dstNode, bytes int, srcKind, dstKind AccessKind) int64 {
	c := m.StreamCost(now, core, srcNode, bytes, srcKind)
	c += m.StreamCost(now+c, core, dstNode, bytes, dstKind)
	return c
}
