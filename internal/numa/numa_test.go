package numa

import (
	"testing"
	"testing/quick"
)

func TestAMD48Shape(t *testing.T) {
	m := AMD48()
	if m.NumNodes() != 8 {
		t.Errorf("AMD48 nodes = %d, want 8", m.NumNodes())
	}
	if m.NumCores() != 48 {
		t.Errorf("AMD48 cores = %d, want 48", m.NumCores())
	}
	// Appendix A.1: each processor (package) contains two nodes of six
	// cores each.
	for n := 0; n < 8; n++ {
		if got := len(m.Nodes()[n].Cores); got != 6 {
			t.Errorf("node %d cores = %d, want 6", n, got)
		}
		if got := m.PackageOfNode(n); got != n/2 {
			t.Errorf("node %d package = %d, want %d", n, got, n/2)
		}
	}
}

func TestIntel32Shape(t *testing.T) {
	m := Intel32()
	if m.NumNodes() != 4 {
		t.Errorf("Intel32 nodes = %d, want 4", m.NumNodes())
	}
	if m.NumCores() != 32 {
		t.Errorf("Intel32 cores = %d, want 32", m.NumCores())
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	amd, intel := AMD48(), Intel32()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"AMD local", amd.LocalBW, 21.3},
		{"AMD same package", amd.SamePkgBW, 19.2},
		{"AMD other package", amd.RemoteBW, 6.4},
		{"Intel local", intel.LocalBW, 17.1},
		{"Intel other package", intel.RemoteBW, 25.6},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("Table 1 %s = %.1f GB/s, want %.1f", c.name, c.got, c.want)
		}
	}
}

func TestPathClassification(t *testing.T) {
	m := AMD48()
	// Core 0 is on node 0 (package 0); node 1 is the same package;
	// node 2 is another package.
	if got := m.Path(0, 0); got != PathLocal {
		t.Errorf("Path(0,0) = %v, want local", got)
	}
	if got := m.Path(0, 1); got != PathSamePackage {
		t.Errorf("Path(0,1) = %v, want same-package", got)
	}
	if got := m.Path(0, 2); got != PathRemote {
		t.Errorf("Path(0,2) = %v, want remote", got)
	}
	// Intel: single-node packages mean everything non-local is remote.
	i := Intel32()
	if got := i.Path(0, 1); got != PathRemote {
		t.Errorf("Intel Path(0,1) = %v, want remote", got)
	}
}

func TestSparseAssignmentSpreadsNodes(t *testing.T) {
	m := AMD48()
	cores := m.SparseCoreAssignment(8)
	seen := map[int]bool{}
	for _, c := range cores {
		seen[m.NodeOfCore(c)] = true
	}
	if len(seen) != 8 {
		t.Errorf("8 vprocs landed on %d distinct nodes, want 8", len(seen))
	}
	// Full machine: every core used exactly once.
	all := m.SparseCoreAssignment(48)
	used := map[int]bool{}
	for _, c := range all {
		if used[c] {
			t.Fatalf("core %d assigned twice", c)
		}
		used[c] = true
	}
}

func TestSparseAssignmentProperty(t *testing.T) {
	m := AMD48()
	f := func(nRaw uint8) bool {
		n := int(nRaw)%m.NumCores() + 1
		cores := m.SparseCoreAssignment(n)
		if len(cores) != n {
			return false
		}
		// No node may host more than ceil(n/nodes)+... the round-robin
		// guarantees max-min spread <= 1 while nodes have capacity.
		per := map[int]int{}
		for _, c := range cores {
			per[m.NodeOfCore(c)]++
		}
		min, max := 1<<30, 0
		for nd := 0; nd < m.NumNodes(); nd++ {
			v := per[nd]
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessCostOrdering(t *testing.T) {
	m := NewMachine(AMD48())
	local := m.AccessCost(0, 0, 0, 4096, AccessMemory)
	samePkg := m.AccessCost(0, 0, 1, 4096, AccessMemory)
	remote := m.AccessCost(0, 0, 2, 4096, AccessMemory)
	if !(local < samePkg && samePkg < remote) {
		t.Errorf("cost ordering violated: local=%d samePkg=%d remote=%d", local, samePkg, remote)
	}
	cache := m.AccessCost(0, 0, 0, 4096, AccessCache)
	if cache >= local {
		t.Errorf("cache access (%d) should be cheaper than local DRAM (%d)", cache, local)
	}
}

func TestIntelRemoteFasterBandwidthThanLocal(t *testing.T) {
	// Table 1's oddity: Intel QPI remote bandwidth (25.6) exceeds local
	// (17.1); for large transfers the bandwidth term dominates but
	// latency still favors local for small ones.
	m := NewMachine(Intel32())
	smallLocal := m.AccessCost(0, 0, 0, 64, AccessMemory)
	smallRemote := m.AccessCost(0, 0, 1, 64, AccessMemory)
	if smallLocal >= smallRemote {
		t.Errorf("small transfer: local (%d) should beat remote (%d) on latency", smallLocal, smallRemote)
	}
}

func TestContentionSaturatesNode(t *testing.T) {
	m := NewMachine(AMD48())
	// One streaming reader: baseline remote cost.
	base := m.AccessCost(0, 6, 0, 1<<16, AccessMemory)
	// Hammer node 0 with traffic from all other nodes within one epoch.
	var last int64
	for i := 0; i < 400; i++ {
		core := (i % 7) * 6 // cores on nodes 1..7 (avoid node 0 local)
		last = m.AccessCost(1000, core+6, 0, 1<<16, AccessMemory)
	}
	if last <= 2*base {
		t.Errorf("node-0 saturation: cost grew only from %d to %d", base, last)
	}
}

func TestContentionDecaysAcrossEpochs(t *testing.T) {
	m := NewMachine(AMD48())
	for i := 0; i < 200; i++ {
		m.AccessCost(1000, 6, 0, 1<<16, AccessMemory)
	}
	hot := m.AccessCost(1000, 6, 0, 1<<16, AccessMemory)
	// Far in the future: fresh epochs, demand decayed.
	cool := m.AccessCost(100*m.EpochNs, 6, 0, 1<<16, AccessMemory)
	if cool >= hot {
		t.Errorf("contention did not decay: hot=%d cool=%d", hot, cool)
	}
}

func TestPresetLookup(t *testing.T) {
	if _, err := Preset("amd48"); err != nil {
		t.Errorf("amd48 preset: %v", err)
	}
	if _, err := Preset("intel32"); err != nil {
		t.Errorf("intel32 preset: %v", err)
	}
	if _, err := Preset("sparc"); err == nil {
		t.Error("unknown preset should fail")
	}
}

func TestBandwidthTableRendering(t *testing.T) {
	s := NewMachine(AMD48()).BandwidthTable()
	for _, want := range []string{"21.3", "19.2", "6.4"} {
		if !contains(s, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, s)
		}
	}
	si := NewMachine(Intel32()).BandwidthTable()
	if !contains(si, "n/a") {
		t.Errorf("Intel Table 1 should mark same-package n/a:\n%s", si)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
