package numa

import "testing"

// pair drives a Machine and a Reference through an identical charge
// sequence, failing the moment any returned cost diverges.
type pair struct {
	t   *testing.T
	m   *Machine
	r   *Reference
	now int64
}

func newPair(t *testing.T, topo func() *Topology) *pair {
	return &pair{t: t, m: NewMachine(topo()), r: NewReference(topo())}
}

func (p *pair) access(core, node, bytes int, kind AccessKind) {
	p.t.Helper()
	f := p.m.AccessCost(p.now, core, node, bytes, kind)
	r := p.r.AccessCost(p.now, core, node, bytes, kind)
	if f != r {
		p.t.Fatalf("AccessCost(now=%d core=%d node=%d bytes=%d kind=%d): fast=%d ref=%d",
			p.now, core, node, bytes, kind, f, r)
	}
	p.now += f
}

func (p *pair) stream(core, node, bytes int, kind AccessKind) {
	p.t.Helper()
	f := p.m.StreamCost(p.now, core, node, bytes, kind)
	r := p.r.StreamCost(p.now, core, node, bytes, kind)
	if f != r {
		p.t.Fatalf("StreamCost(now=%d core=%d node=%d bytes=%d kind=%d): fast=%d ref=%d",
			p.now, core, node, bytes, kind, f, r)
	}
	p.now += f
}

func (p *pair) copyStream(core, sn, dn, bytes int, sk, dk AccessKind) {
	p.t.Helper()
	f := p.m.CopyStreamCost(p.now, core, sn, dn, bytes, sk, dk)
	r := p.r.CopyStreamCost(p.now, core, sn, dn, bytes, sk, dk)
	if f != r {
		p.t.Fatalf("CopyStreamCost(now=%d core=%d src=%d dst=%d bytes=%d): fast=%d ref=%d",
			p.now, core, sn, dn, bytes, f, r)
	}
	p.now += f
}

func (p *pair) checkStats(label string) {
	p.t.Helper()
	if f, r := p.m.Stats(), p.r.Stats(); f != r {
		p.t.Fatalf("%s: TrafficStats diverged: fast=%+v ref=%+v", label, f, r)
	}
}

// eqSizes spans 1 B to 1 MiB, straddling the cache-line demand floor and
// the per-epoch budgets.
var eqSizes = []int{1, 7, 8, 63, 64, 65, 100, 512, 4096, 40_000, 1 << 16, 1 << 20}

// TestFastPathEquivalence sweeps every (core, node, kind, size) combination
// through contended, uncontended, epoch-rolling, and idle-decay regimes,
// asserting the table-driven fast path returns bit-identical costs and
// TrafficStats to the Reference implementation.
func TestFastPathEquivalence(t *testing.T) {
	topos := []struct {
		name string
		mk   func() *Topology
	}{
		{"amd48", AMD48},
		{"intel32", Intel32},
		{"custom", func() *Topology { return Custom("eq", 2, 2, 3, 10, 8, 3) }},
		// A boarded machine: 4 packages on 2 boards, so cross-board
		// accesses classify PathFar and exercise the far meter tier.
		{"boarded", func() *Topology { return mustCustom(rackSpec("eqboard", 4, 1, 3, 2)) }},
	}
	for _, tc := range topos {
		t.Run(tc.name, func(t *testing.T) {
			p := newPair(t, tc.mk)
			topo := p.m.Topo
			kinds := []AccessKind{AccessCache, AccessMemory}

			// Phase 1: uncontended — every combination, with multi-epoch
			// idle gaps between charges so the meters stay cold (and every
			// roll path, including gap >= 63, is exercised).
			gap := int64(1)
			for _, size := range eqSizes {
				for core := 0; core < topo.NumCores(); core++ {
					for node := 0; node < topo.NumNodes(); node++ {
						for _, k := range kinds {
							p.access(core, node, size, k)
							p.now += gap * p.m.EpochNs
							gap = gap%70 + 1
							p.stream(core, node, size, k)
						}
					}
				}
			}
			p.checkStats("uncontended")

			// Phase 2: contended — hammer each node from every core inside
			// single epochs so both meters run over budget (mult > 1), with
			// epoch boundaries crossed while still hot (gap-1 carry).
			epochStart := (p.now/p.m.EpochNs + 1) * p.m.EpochNs
			for node := 0; node < topo.NumNodes(); node++ {
				p.now = epochStart
				for i, size := range eqSizes {
					for core := 0; core < topo.NumCores(); core++ {
						for _, k := range kinds {
							f := p.m.AccessCost(p.now, core, node, size, k)
							r := p.r.AccessCost(p.now, core, node, size, k)
							if f != r {
								t.Fatalf("contended AccessCost(now=%d core=%d node=%d bytes=%d kind=%d): fast=%d ref=%d",
									p.now, core, node, size, k, f, r)
							}
						}
					}
					// Step partway through the epoch, crossing a boundary
					// every few size rounds while the meters are hot.
					p.now += p.m.EpochNs / 3
					if i%3 == 2 {
						p.now = (p.now/p.m.EpochNs + 1) * p.m.EpochNs
					}
				}
				epochStart = (p.now/p.m.EpochNs + 2) * p.m.EpochNs
			}
			p.checkStats("contended")

			// Phase 3: copy loops — mixed src/dst nodes and kinds, the GC
			// call-site shape, while meters are still warm from phase 2.
			for _, size := range eqSizes {
				for sn := 0; sn < topo.NumNodes(); sn++ {
					for dn := 0; dn < topo.NumNodes(); dn++ {
						core := (sn*7 + dn) % topo.NumCores()
						p.copyStream(core, sn, dn, size, AccessCache, AccessMemory)
						p.copyStream(core, sn, dn, size, AccessCache, AccessCache)
					}
				}
			}
			p.checkStats("copy")

			// Phase 4: the batched-charge helpers must match the general
			// entry points on meterless targets.
			for core := 0; core < topo.NumCores(); core++ {
				node := topo.NodeOfCore(core)
				if !p.m.Meterless(core, node, AccessCache) {
					t.Fatalf("core %d node %d: own-node cache access must be meterless", core, node)
				}
				if p.m.Meterless(core, node, AccessMemory) {
					t.Fatalf("core %d node %d: memory access must not be meterless", core, node)
				}
				for _, size := range eqSizes {
					f := p.m.CacheAccessCost(size)
					r := p.r.AccessCost(p.now, core, node, size, AccessCache)
					if f != r {
						t.Fatalf("CacheAccessCost(%d) = %d, want %d", size, f, r)
					}
					f = p.m.CacheStreamCost(size)
					r = p.r.StreamCost(p.now, core, node, size, AccessCache)
					if f != r {
						t.Fatalf("CacheStreamCost(%d) = %d, want %d", size, f, r)
					}
				}
			}
			p.checkStats("meterless")

			// Phase 5: out-of-order timestamps. The engine's serialized
			// schedule is not globally monotone — a proc with a smaller
			// clock charges after one with a larger clock — so replay a
			// jittered schedule straddling epoch boundaries, hot and cold.
			base := (p.now/p.m.EpochNs + 2) * p.m.EpochNs
			jit := []int64{0, -1, 17, -p.m.EpochNs / 2, 3, -p.m.EpochNs - 7, p.m.EpochNs / 3, -29}
			for i := 0; i < 400; i++ {
				node := i % topo.NumNodes()
				core := (i * 13) % topo.NumCores()
				size := eqSizes[i%len(eqSizes)]
				now := base + jit[i%len(jit)]
				if now < 0 {
					now = 0
				}
				f := p.m.AccessCost(now, core, node, size, AccessMemory)
				r := p.r.AccessCost(now, core, node, size, AccessMemory)
				if f != r {
					t.Fatalf("out-of-order AccessCost(now=%d core=%d node=%d bytes=%d): fast=%d ref=%d",
						now, core, node, size, f, r)
				}
				base += int64(size) % 977
			}
			p.checkStats("out-of-order")

			// Reset must re-arm both identically.
			p.m.Reset()
			p.r.Reset()
			p.now = 0
			p.access(0, topo.NumNodes()-1, 4096, AccessMemory)
			p.checkStats("post-reset")
		})
	}
}

// TestMeterCarryDecaysPerElapsedEpoch pins the epoch-skip carry rule: when
// several idle epochs pass between charges, residual overload decays by
// half per elapsed epoch, not by half once regardless of the gap.
func TestMeterCarryDecaysPerElapsedEpoch(t *testing.T) {
	const epochNs = int64(1000)
	const budget = 100.0
	cases := []struct {
		gap  int64
		want float64
	}{
		{1, 200}, {2, 100}, {3, 50}, {5, 12.5}, {63, 0}, {100, 0},
	}
	for _, c := range cases {
		mt := meter{}
		mt.charge(0, epochNs, 500, budget) // epoch 0 ends 400 over budget
		mt.charge(c.gap*epochNs, epochNs, 0, budget)
		if mt.bytes != c.want {
			t.Errorf("gap %d: residual = %v, want %v", c.gap, mt.bytes, c.want)
		}
	}

	// The reference meter must apply the identical rule.
	for _, c := range cases {
		mt := refMeter{}
		mt.charge(0, epochNs, 500, budget)
		mt.charge(c.gap*epochNs, epochNs, 0, budget)
		if mt.bytes != c.want {
			t.Errorf("reference gap %d: residual = %v, want %v", c.gap, mt.bytes, c.want)
		}
	}

	// A backward roll — engine timestamps are not globally monotone, so a
	// charge can arrive from the epoch before the meter's current one —
	// decays by one halving, like a single elapsed epoch.
	mt := meter{}
	mt.charge(5*epochNs, epochNs, 500, budget) // epoch 5, 400 over
	mt.charge(4*epochNs, epochNs, 0, budget)   // backward into epoch 4
	if mt.bytes != 200 {
		t.Errorf("backward roll residual = %v, want 200", mt.bytes)
	}
	rmt := refMeter{}
	rmt.charge(5*epochNs, epochNs, 500, budget)
	rmt.charge(4*epochNs, epochNs, 0, budget)
	if rmt.bytes != 200 {
		t.Errorf("reference backward roll residual = %v, want 200", rmt.bytes)
	}
}

// TestMachineCoolsMonotonicallyWithIdleGap checks the observable effect of
// the carry rule: the longer a saturated controller sits idle, the cheaper
// the next access.
func TestMachineCoolsMonotonicallyWithIdleGap(t *testing.T) {
	costAfterGap := func(gap int64) int64 {
		m := NewMachine(AMD48())
		for i := 0; i < 400; i++ {
			m.AccessCost(1000, 6, 0, 1<<16, AccessMemory)
		}
		return m.AccessCost(gap*m.EpochNs, 6, 0, 1<<16, AccessMemory)
	}
	prev := costAfterGap(1)
	for gap := int64(2); gap <= 6; gap++ {
		cur := costAfterGap(gap)
		if cur > prev {
			t.Fatalf("gap %d cost %d exceeds gap %d cost %d", gap, cur, gap-1, prev)
		}
		prev = cur
	}
	if hot, cold := costAfterGap(1), costAfterGap(40); cold >= hot {
		t.Errorf("long idle gap did not cool the controller: hot=%d cold=%d", hot, cold)
	}
}
