package numa

import (
	"math"
	"strings"
	"testing"
)

// validSpec returns a small two-board spec that NewCustom accepts; tests
// mutate one field at a time to probe validation.
func validSpec() CustomSpec {
	return CustomSpec{
		Name:             "probe",
		Packages:         4,
		NodesPerPackage:  2,
		CoresPerNode:     2,
		PackagesPerBoard: 2,
		LocalBW:          20,
		SamePkgBW:        15,
		RemoteBW:         8,
		FarBW:            3,
	}
}

func TestNewCustomAcceptsValidSpec(t *testing.T) {
	topo, err := NewCustom(validSpec())
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if topo.NumCores() != 16 || topo.NumNodes() != 8 {
		t.Fatalf("shape = %d cores / %d nodes, want 16/8", topo.NumCores(), topo.NumNodes())
	}
	if topo.Boards() != 2 {
		t.Fatalf("Boards() = %d, want 2", topo.Boards())
	}
	// Defaulted tuning parameters.
	if topo.GHz != 2.0 || topo.LocalLat != 65 || topo.FarLat != 400 || topo.L3Bytes != 4<<20 {
		t.Fatalf("defaults not applied: GHz=%g LocalLat=%g FarLat=%g L3=%d",
			topo.GHz, topo.LocalLat, topo.FarLat, topo.L3Bytes)
	}
}

func TestNewCustomRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CustomSpec)
	}{
		{"zero packages", func(s *CustomSpec) { s.Packages = 0 }},
		{"negative nodes", func(s *CustomSpec) { s.NodesPerPackage = -1 }},
		{"zero cores", func(s *CustomSpec) { s.CoresPerNode = 0 }},
		{"negative boards", func(s *CustomSpec) { s.PackagesPerBoard = -2 }},
		{"indivisible boards", func(s *CustomSpec) { s.PackagesPerBoard = 3 }},
		{"zero local bw", func(s *CustomSpec) { s.LocalBW = 0 }},
		{"negative samepkg bw", func(s *CustomSpec) { s.SamePkgBW = -4 }},
		{"zero remote bw", func(s *CustomSpec) { s.RemoteBW = 0 }},
		{"zero far bw on boarded machine", func(s *CustomSpec) { s.FarBW = 0 }},
		{"NaN far latency", func(s *CustomSpec) { s.FarLat = math.NaN() }},
		{"Inf local latency", func(s *CustomSpec) { s.LocalLat = math.Inf(1) }},
		{"negative remote latency", func(s *CustomSpec) { s.RemoteLat = -1 }},
		{"negative cache bw", func(s *CustomSpec) { s.CacheBW = -120 }},
		{"negative L3", func(s *CustomSpec) { s.L3Bytes = -1 }},
		{"NaN GHz", func(s *CustomSpec) { s.GHz = math.NaN() }},
	}
	for _, c := range cases {
		s := validSpec()
		c.mut(&s)
		if _, err := NewCustom(s); err == nil {
			t.Errorf("%s: spec accepted, want error", c.name)
		}
	}
	// A single-board machine must NOT require far parameters.
	s := validSpec()
	s.PackagesPerBoard = 0
	s.FarBW = 0
	if _, err := NewCustom(s); err != nil {
		t.Errorf("single-board spec with zero FarBW rejected: %v", err)
	}
}

func TestCustomPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Custom with zero bandwidth did not panic")
		}
	}()
	Custom("bad", 2, 2, 2, 0, 0, 0)
}

func TestRackPresetShapes(t *testing.T) {
	cases := []struct {
		name                 string
		cores, nodes, boards int
	}{
		{"rack256", 256, 16, 2},
		{"rack1024", 1024, 64, 4},
		{"rack4096", 4096, 128, 4},
	}
	for _, c := range cases {
		topo, err := Preset(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if topo.NumCores() != c.cores || topo.NumNodes() != c.nodes || topo.Boards() != c.boards {
			t.Errorf("%s = %d cores / %d nodes / %d boards, want %d/%d/%d",
				c.name, topo.NumCores(), topo.NumNodes(), topo.Boards(), c.cores, c.nodes, c.boards)
		}
		// Every node maps to a valid board and the per-board node count is
		// uniform.
		per := map[int]int{}
		for n := 0; n < topo.NumNodes(); n++ {
			b := topo.BoardOfNode(n)
			if b < 0 || b >= topo.Boards() {
				t.Fatalf("%s: node %d on board %d (of %d)", c.name, n, b, topo.Boards())
			}
			per[b]++
		}
		for b, cnt := range per {
			if cnt != topo.NumNodes()/topo.Boards() {
				t.Errorf("%s: board %d holds %d nodes, want %d", c.name, b, cnt, topo.NumNodes()/topo.Boards())
			}
		}
	}
	// The paper machines are single-board: no far tier.
	for _, name := range []string{"amd48", "intel32"} {
		topo, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if topo.Boards() != 1 {
			t.Errorf("%s: Boards() = %d, want 1", name, topo.Boards())
		}
	}
}

func TestFarPathClassification(t *testing.T) {
	topo := mustCustom(validSpec()) // 2 boards x 2 packages x 2 nodes x 2 cores
	// Core 0 is on node 0, package 0, board 0. Node 1 shares the package;
	// node 2 is package 1, still board 0; node 4 is package 2, board 1.
	cases := []struct {
		node int
		want PathKind
	}{
		{0, PathLocal},
		{1, PathSamePackage},
		{2, PathRemote},
		{3, PathRemote},
		{4, PathFar},
		{7, PathFar},
	}
	for _, c := range cases {
		if got := topo.Path(0, c.node); got != c.want {
			t.Errorf("Path(0,%d) = %v, want %v", c.node, got, c.want)
		}
	}
	if PathFar.String() != "far" {
		t.Errorf("PathFar.String() = %q", PathFar.String())
	}
	if topo.Bandwidth(PathFar) != 3 || topo.Latency(PathFar) != 400 {
		t.Errorf("far tier params = %g GB/s / %g ns, want 3/400",
			topo.Bandwidth(PathFar), topo.Latency(PathFar))
	}
}

func TestFarCostOrdering(t *testing.T) {
	m := NewMachine(Rack256())
	topo := m.Topo
	// Find one node of each kind relative to core 0.
	nodeOf := func(k PathKind) int {
		for n := 0; n < topo.NumNodes(); n++ {
			if topo.Path(0, n) == k {
				return n
			}
		}
		t.Fatalf("no node with path %v", k)
		return -1
	}
	local := m.AccessCost(0, 0, nodeOf(PathLocal), 1<<16, AccessMemory)
	same := m.AccessCost(0, 0, nodeOf(PathSamePackage), 1<<16, AccessMemory)
	remote := m.AccessCost(0, 0, nodeOf(PathRemote), 1<<16, AccessMemory)
	far := m.AccessCost(0, 0, nodeOf(PathFar), 1<<16, AccessMemory)
	if !(local < same && same < remote && remote < far) {
		t.Errorf("cost ordering violated: local=%d same=%d remote=%d far=%d", local, same, remote, far)
	}
	st := m.Stats()
	if st.BytesByPath[PathFar] != 1<<16 {
		t.Errorf("far bytes = %d, want %d", st.BytesByPath[PathFar], 1<<16)
	}
}

func TestRackBandwidthTableShowsFarTier(t *testing.T) {
	s := NewMachine(Rack256()).BandwidthTable()
	if !strings.Contains(s, "another board") {
		t.Errorf("boarded table missing far row:\n%s", s)
	}
	s = NewMachine(AMD48()).BandwidthTable()
	if strings.Contains(s, "another board") {
		t.Errorf("single-board table shows far row:\n%s", s)
	}
}

// TestSpanTrafficBitExact drives the same meterless charge sequence through
// the Machine directly and through a SpanTraffic (with a mid-sequence
// rollback and replay, as a window would), and requires identical costs and
// identical post-Flush Stats.
func TestSpanTrafficBitExact(t *testing.T) {
	direct := NewMachine(AMD48())
	buffered := NewMachine(AMD48())
	span := buffered.NewSpanTraffic()

	sizes := []int{0, -8, 8, 24, 64, 100, 4096, 40_000, 1 << 16, 1 << 20}
	charge := func(bytes int) {
		wantA := direct.CacheAccessCost(bytes)
		if got := span.CacheAccessCost(bytes); got != wantA {
			t.Fatalf("CacheAccessCost(%d) = %d, want %d", bytes, got, wantA)
		}
		wantS := direct.CacheStreamCost(bytes)
		if got := span.CacheStreamCost(bytes); got != wantS {
			t.Fatalf("CacheStreamCost(%d) = %d, want %d", bytes, got, wantS)
		}
	}

	for _, b := range sizes[:5] {
		charge(b)
	}
	// Rollback: the next charges are discarded and replayed, exactly like a
	// span rolled back to the window bound. The direct machine never sees
	// the discarded attempt, so post-Flush stats must still match.
	mk := span.Mark()
	for _, b := range sizes[5:] {
		span.CacheAccessCost(b)
	}
	span.Rewind(mk)
	for _, b := range sizes[5:] {
		charge(b)
	}

	if bytes, ops := span.Pending(); bytes == 0 || ops == 0 {
		t.Fatal("span buffer empty before Flush")
	}
	if got := buffered.Stats(); got.CacheBytes != 0 || got.Accesses != 0 {
		t.Fatalf("machine stats visible before Flush: %+v", got)
	}
	span.Flush()
	if bytes, ops := span.Pending(); bytes != 0 || ops != 0 {
		t.Fatalf("span buffer not emptied by Flush: %d bytes, %d ops", bytes, ops)
	}
	if got, want := buffered.Stats(), direct.Stats(); got != want {
		t.Fatalf("post-Flush stats = %+v, want %+v", got, want)
	}
}
