package numa

import "testing"

// The uncontended benchmarks mirror the simulator's real charge pattern:
// many vprocs spread over all nodes, each epoch far under budget, so every
// charge takes the mult == 1 fast path. Charges round-robin over
// (core, node) pairs so no single meter's accumulation chain serializes
// the loop — exactly as 48 vprocs hammering 8 node meters behave. The
// contended benchmark pins time inside one epoch on one node so every
// iteration pays the multiplier math.

// benchPoints precomputes the charge mix shared by the fast and reference
// benchmarks.
type benchPoint struct {
	core, node, bytes int
}

// benchMixMask sizes the mix to a power of two so the benchmark loop can
// select points with a mask instead of a modulo.
const benchMixMask = 63

// benchMix interleaves home nodes and path classes the way the engine
// interleaves vprocs: consecutive charges hit different meters over a
// rotating local/same-package/remote mix, so no single meter or
// accumulator slot serializes the loop.
func benchMix(t *Topology) []benchPoint {
	pts := make([]benchPoint, benchMixMask+1)
	sizes := []int{64, 256, 512, 1024}
	for i := range pts {
		node := i % t.NumNodes()
		var coreNode int
		switch i % 3 {
		case 0:
			coreNode = node // local
		case 1:
			coreNode = node ^ 1 // same package on AMD48
		default:
			coreNode = (node + 2) % t.NumNodes() // remote
		}
		pts[i] = benchPoint{t.Nodes()[coreNode].Cores[0], node, sizes[i%len(sizes)]}
	}
	return pts
}

func BenchmarkAccessCostUncontended(b *testing.B) {
	m := NewMachine(AMD48())
	pts := benchMix(m.Topo)
	var now int64
	var sink int64
	for i := 0; i < b.N; i++ {
		p := pts[i&benchMixMask]
		sink += m.AccessCost(now, p.core, p.node, p.bytes, AccessMemory)
		now += 12
	}
	benchSink = sink
}

func BenchmarkAccessCostUncontendedReference(b *testing.B) {
	m := NewReference(AMD48())
	pts := benchMix(m.Topo)
	var now int64
	var sink int64
	for i := 0; i < b.N; i++ {
		p := pts[i&benchMixMask]
		sink += m.AccessCost(now, p.core, p.node, p.bytes, AccessMemory)
		now += 12
	}
	benchSink = sink
}

func BenchmarkAccessCostCache(b *testing.B) {
	m := NewMachine(AMD48())
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += m.AccessCost(int64(i), 0, 0, 256, AccessCache)
	}
	benchSink = sink
}

func BenchmarkAccessCostCacheReference(b *testing.B) {
	m := NewReference(AMD48())
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += m.AccessCost(int64(i), 0, 0, 256, AccessCache)
	}
	benchSink = sink
}

func BenchmarkAccessCostContended(b *testing.B) {
	m := NewMachine(AMD48())
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += m.AccessCost(1000, 6, 0, 1<<16, AccessMemory)
	}
	benchSink = sink
}

func BenchmarkAccessCostContendedReference(b *testing.B) {
	m := NewReference(AMD48())
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += m.AccessCost(1000, 6, 0, 1<<16, AccessMemory)
	}
	benchSink = sink
}

func BenchmarkStreamCostUncontended(b *testing.B) {
	m := NewMachine(AMD48())
	pts := benchMix(m.Topo)
	var now int64
	var sink int64
	for i := 0; i < b.N; i++ {
		p := pts[i&benchMixMask]
		sink += m.StreamCost(now, p.core, p.node, p.bytes, AccessMemory)
		now += 12
	}
	benchSink = sink
}

func BenchmarkStreamCostUncontendedReference(b *testing.B) {
	m := NewReference(AMD48())
	pts := benchMix(m.Topo)
	var now int64
	var sink int64
	for i := 0; i < b.N; i++ {
		p := pts[i&benchMixMask]
		sink += m.StreamCost(now, p.core, p.node, p.bytes, AccessMemory)
		now += 12
	}
	benchSink = sink
}

func BenchmarkCacheAccessCostBatched(b *testing.B) {
	m := NewMachine(AMD48())
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += m.CacheAccessCost(256)
	}
	benchSink = sink
}

func BenchmarkCacheStreamCostBatched(b *testing.B) {
	m := NewMachine(AMD48())
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += m.CacheStreamCost(256)
	}
	benchSink = sink
}

// benchSink defeats dead-code elimination of the measured loops.
var benchSink int64
