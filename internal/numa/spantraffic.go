package numa

// SpanTraffic is a per-span traffic accumulator for the engine's
// span-parallel windows (vtime.SpanWhile). A span step may not write shared
// simulation state, which rules out Machine.CacheAccessCost/CacheStreamCost
// directly: those bump the machine's shared byte/op accumulators. A
// SpanTraffic gives a span the same costs from the machine's immutable cost
// tables — meterless cache transfers are time- and state-independent by
// Meterless's contract — while buffering the byte/op counts privately.
// The span checkpoints the buffer with Mark in its save hook and rewinds it
// with Rewind in its restore hook, so a window rollback discards exactly the
// replayed charges; the owning proc calls Flush on the serial path (after
// the span parks) to merge the buffer into the machine's accumulators.
// Cost values and post-Flush Stats are bit-identical to charging the same
// sequence through the Machine directly.
//
// A SpanTraffic belongs to one proc; it is not safe for concurrent use.
type SpanTraffic struct {
	m     *Machine
	bytes uint64
	ops   uint64
}

// NewSpanTraffic returns an empty accumulator charging against m's tables.
func (m *Machine) NewSpanTraffic() *SpanTraffic { return &SpanTraffic{m: m} }

// SpanTrafficMark is a checkpoint of a SpanTraffic's buffered counts.
type SpanTrafficMark struct{ bytes, ops uint64 }

// Mark checkpoints the buffered counts (for the span's save hook).
func (s *SpanTraffic) Mark() SpanTrafficMark {
	return SpanTrafficMark{s.bytes, s.ops}
}

// Rewind restores the buffered counts to a checkpoint (for the span's
// restore hook), discarding every charge made since Mark.
func (s *SpanTraffic) Rewind(mk SpanTrafficMark) {
	s.bytes, s.ops = mk.bytes, mk.ops
}

// Pending reports the buffered, not-yet-flushed byte and op counts.
func (s *SpanTraffic) Pending() (bytes, ops uint64) { return s.bytes, s.ops }

// Flush merges the buffered counts into the machine's accumulators and
// empties the buffer. Must be called from token-holding (serial) code.
func (s *SpanTraffic) Flush() {
	s.m.bytesAcc[cacheIdx] += s.bytes
	s.m.countAcc[cacheIdx] += s.ops
	s.bytes, s.ops = 0, 0
}

// CacheAccessCost is Machine.CacheAccessCost with the stats buffered: the
// identical table lookup and slow-path formula, so the returned cost is
// bit-identical.
func (s *SpanTraffic) CacheAccessCost(bytes int) int64 {
	ub := uint(bytes)
	if ub&7 == 0 && ub-8 <= tabWords*8-16 {
		s.ops++
		s.bytes += uint64(bytes)
		return s.m.cacheAccessTabI[ub>>3]
	}
	if bytes <= 0 {
		return 0
	}
	s.ops++
	s.bytes += uint64(bytes)
	return int64(s.m.cacheLat + float64(bytes)/s.m.cacheBW)
}

// CacheStreamCost is Machine.CacheStreamCost with the stats buffered.
func (s *SpanTraffic) CacheStreamCost(bytes int) int64 {
	ub := uint(bytes)
	if ub&7 == 0 && ub-8 <= tabWords*8-16 {
		s.ops++
		s.bytes += uint64(bytes)
		return s.m.cacheStreamTabI[ub>>3]
	}
	if bytes <= 0 {
		return 0
	}
	s.ops++
	s.bytes += uint64(bytes)
	return int64(float64(bytes) / s.m.cacheBW)
}
