// Package mempage simulates physical-page placement on a NUMA machine.
//
// The real runtime asks the operating system for pages and controls (via
// libnuma / mbind) which node's memory bank backs them. The paper's §4.3
// compares three placement policies; figures 5-7 differ only in this choice,
// so the simulation models pages explicitly: every heap region is backed by
// a run of 4 KB pages, and each page has a home node assigned by the policy
// in force when it was first allocated.
package mempage

import "fmt"

const (
	// PageBytes is the simulated page size.
	PageBytes = 4096
	// PageWords is the page size in 64-bit words.
	PageWords = PageBytes / 8
)

// Policy selects how pages are assigned to nodes.
type Policy int

const (
	// PolicyLocal allocates pages on the node of the requesting vproc —
	// the paper's default strategy (§4.3, Figure 5).
	PolicyLocal Policy = iota
	// PolicyInterleaved balances pages round-robin across all nodes —
	// the GHC-style strategy (Figure 6).
	PolicyInterleaved
	// PolicySingleNode places every page on node 0 — the default NUMA
	// behaviour seen by single-threaded collectors (Figure 7).
	PolicySingleNode
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyLocal:
		return "local"
	case PolicyInterleaved:
		return "interleaved"
	case PolicySingleNode:
		return "single-node"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "local":
		return PolicyLocal, nil
	case "interleaved":
		return PolicyInterleaved, nil
	case "single-node", "single", "socket-zero":
		return PolicySingleNode, nil
	default:
		return 0, fmt.Errorf("mempage: unknown policy %q", s)
	}
}

// Table is the simulated page table: an append-only map from page index to
// home node. Serialized by the virtual-time engine.
type Table struct {
	policy   Policy
	numNodes int
	pageNode []int16
	nextRR   int

	perNode []int // pages allocated per node, for reports and tests
}

// NewTable creates a page table for a machine with numNodes nodes.
func NewTable(policy Policy, numNodes int) *Table {
	if numNodes <= 0 {
		panic("mempage: need at least one node")
	}
	return &Table{policy: policy, numNodes: numNodes, perNode: make([]int, numNodes)}
}

// Policy returns the placement policy in force.
func (t *Table) Policy() Policy { return t.policy }

// NumPages returns the number of pages allocated so far.
func (t *Table) NumPages() int { return len(t.pageNode) }

// PerNode returns a copy of the per-node page counts.
func (t *Table) PerNode() []int {
	out := make([]int, len(t.perNode))
	copy(out, t.perNode)
	return out
}

// Alloc allocates n contiguous pages on behalf of a vproc running on
// reqNode and returns the index of the first page.
func (t *Table) Alloc(n, reqNode int) int {
	if n <= 0 {
		panic("mempage: Alloc of non-positive page count")
	}
	if reqNode < 0 || reqNode >= t.numNodes {
		panic(fmt.Sprintf("mempage: Alloc from invalid node %d", reqNode))
	}
	first := len(t.pageNode)
	for i := 0; i < n; i++ {
		var node int
		switch t.policy {
		case PolicyLocal:
			node = reqNode
		case PolicyInterleaved:
			node = t.nextRR
			t.nextRR = (t.nextRR + 1) % t.numNodes
		case PolicySingleNode:
			node = 0
		default:
			panic("mempage: invalid policy")
		}
		t.pageNode = append(t.pageNode, int16(node))
		t.perNode[node]++
	}
	return first
}

// NodeOf returns the home node of a page.
func (t *Table) NodeOf(page int) int {
	return int(t.pageNode[page])
}

// HomeOfRange returns the common home node of the n pages starting at
// first, or -1 when the range spans nodes. Under the local and single-node
// policies every range is homogeneous; under interleaved placement only
// single-page ranges are.
func (t *Table) HomeOfRange(first, n int) int {
	node := t.pageNode[first]
	for i := 1; i < n; i++ {
		if t.pageNode[first+i] != node {
			return -1
		}
	}
	return int(node)
}

// NodeOfWord returns the home node of the word at the given offset within a
// region whose backing starts at basePage.
func (t *Table) NodeOfWord(basePage int, wordIdx int) int {
	return int(t.pageNode[basePage+wordIdx/PageWords])
}

// PagesFor returns the number of pages needed to back the given number of
// 64-bit words.
func PagesFor(words int) int {
	return (words + PageWords - 1) / PageWords
}
