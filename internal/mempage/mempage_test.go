package mempage

import (
	"testing"
	"testing/quick"
)

func TestLocalPolicyPinsToRequestingNode(t *testing.T) {
	tb := NewTable(PolicyLocal, 8)
	first := tb.Alloc(16, 5)
	for p := first; p < first+16; p++ {
		if tb.NodeOf(p) != 5 {
			t.Fatalf("page %d on node %d, want 5", p, tb.NodeOf(p))
		}
	}
}

func TestInterleavedPolicyBalances(t *testing.T) {
	tb := NewTable(PolicyInterleaved, 8)
	tb.Alloc(800, 3)
	per := tb.PerNode()
	for n, c := range per {
		if c != 100 {
			t.Errorf("node %d has %d pages, want 100", n, c)
		}
	}
}

func TestInterleavedBalanceProperty(t *testing.T) {
	// Regardless of the allocation request sequence, interleaving keeps
	// the per-node page counts within 1 of each other.
	f := func(sizes []uint8) bool {
		tb := NewTable(PolicyInterleaved, 4)
		for i, s := range sizes {
			tb.Alloc(int(s%32)+1, i%4)
		}
		per := tb.PerNode()
		min, max := per[0], per[0]
		for _, v := range per {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodePolicy(t *testing.T) {
	tb := NewTable(PolicySingleNode, 8)
	tb.Alloc(50, 7)
	tb.Alloc(50, 2)
	per := tb.PerNode()
	if per[0] != 100 {
		t.Errorf("node 0 has %d pages, want 100", per[0])
	}
	for n := 1; n < 8; n++ {
		if per[n] != 0 {
			t.Errorf("node %d has %d pages, want 0", n, per[n])
		}
	}
}

func TestNodeOfWord(t *testing.T) {
	tb := NewTable(PolicyInterleaved, 4)
	base := tb.Alloc(4, 0) // nodes 0,1,2,3
	if got := tb.NodeOfWord(base, 0); got != 0 {
		t.Errorf("word 0 node = %d, want 0", got)
	}
	if got := tb.NodeOfWord(base, PageWords); got != 1 {
		t.Errorf("word %d node = %d, want 1", PageWords, got)
	}
	if got := tb.NodeOfWord(base, 3*PageWords+17); got != 3 {
		t.Errorf("last page node = %d, want 3", got)
	}
}

func TestPagesFor(t *testing.T) {
	cases := []struct{ words, want int }{
		{1, 1}, {PageWords, 1}, {PageWords + 1, 2}, {10 * PageWords, 10},
	}
	for _, c := range cases {
		if got := PagesFor(c.words); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.words, got, c.want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"local", "interleaved", "single-node", "socket-zero"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("best-effort"); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyLocal.String() != "local" || PolicyInterleaved.String() != "interleaved" || PolicySingleNode.String() != "single-node" {
		t.Error("policy names wrong")
	}
}
