package workload

import (
	"sort"
	"testing"

	"repro/internal/core"
)

func TestQsortDirectSmall(t *testing.T) {
	cfg := testConfig(1)
	cfg.Debug = true
	rt := core.MustNewRuntime(cfg)
	d := RegisterRopeDescs(rt)
	rt.Run(func(vp *core.VProc) {
		rng := newRand(42)
		vals := make([]uint64, 5000)
		for i := range vals {
			vals[i] = rng.next() % 1000
		}
		rs := vp.PushRoot(ropeFromInts(vp, d, vals))
		out := qsort(vp, d, rs)
		os := vp.PushRoot(out)
		got := ropeToInts(vp, vp.Root(os))
		want := append([]uint64(nil), vals...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		wm := map[uint64]int{}
		for _, w := range want {
			wm[w]++
		}
		gm := map[uint64]int{}
		for _, w := range got {
			gm[w]++
		}
		for v, c := range gm {
			if wm[v] != c {
				t.Errorf("value %d: got %d copies, want %d", v, c, wm[v])
			}
		}
		// Also check sortedness of got.
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				t.Errorf("unsorted at %d: %d > %d", i, got[i-1], got[i])
				break
			}
		}
		vp.PopRoots(2)
	})
}
