package workload

import (
	"math"

	"repro/internal/core"
	"repro/internal/heap"
)

// Barnes-Hut (§4.1): "a classic N-body problem solver. Each iteration has
// two phases. In the first phase, a quadtree is constructed from a sequence
// of mass points. The second phase then uses this tree to accelerate the
// computation of the gravitational force on the bodies... 20 iterations
// over 400,000 particles generated in a random Plummer distribution."
//
// The tree build is sequential (the paper attributes the benchmark's
// scaling plateau to this sequential portion, §4.2), runs on vproc 0, and
// the finished tree is promoted so force tasks on other vprocs can read it
// — concentrating tree traffic on the builder's node under the local
// placement policy, which is the sharing effect the paper observes.

const (
	// bhBaseBodies is the default body count; the paper uses 400,000.
	bhBaseBodies = 2048
	// bhBaseIters is the default iteration count; the paper uses 20.
	bhBaseIters = 3
	// bhTheta is the opening criterion.
	bhTheta = 0.5
	// bhDT is the integration step.
	bhDT = 0.025
	// bhVisitNs is the modelled compute per visited tree cell.
	bhVisitNs = 18
)

// Body layout (raw object): x, y, vx, vy, mass.
const (
	bodyX = iota
	bodyY
	bodyVX
	bodyVY
	bodyMass
	bodyWords
)

// Quadtree cell (mixed object): four child pointers, then raw center of
// mass / total mass / geometry.
const (
	cellQ0 = iota // children: quadrants 0-3 (pointer fields)
	cellQ1
	cellQ2
	cellQ3
	cellCX   // center of mass x (raw)
	cellCY   // center of mass y (raw)
	cellMass // total mass (raw)
	cellMidX // geometric center (raw)
	cellMidY
	cellHalf // half-width (raw)
	cellBody // pointer to a single body for leaf cells, nil for internal
	cellWords
)

// BHDescs holds descriptor IDs.
type BHDescs struct{ Cell uint16 }

// RegisterBHDescs installs the quadtree descriptors.
func RegisterBHDescs(rt *core.Runtime) BHDescs {
	return BHDescs{
		Cell: rt.Descs.Register("bh-cell", cellWords, []int{cellQ0, cellQ1, cellQ2, cellQ3, cellBody}),
	}
}

// plummer generates the deterministic Plummer-distribution bodies.
func plummer(seed uint64, n int) [][bodyWords]float64 {
	rng := newRand(seed ^ 0xb41e5)
	bodies := make([][bodyWords]float64, n)
	for i := range bodies {
		// Plummer radial profile: r = a / sqrt(u^(-2/3) - 1).
		u := rng.float()
		if u < 1e-6 {
			u = 1e-6
		}
		r := 1.0 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
		if r > 8 {
			r = 8
		}
		phi := 2 * math.Pi * rng.float()
		x := r * math.Cos(phi)
		y := r * math.Sin(phi)
		// Circular-ish velocities with jitter.
		v := 0.3 * math.Sqrt(1/(1+r*r))
		bodies[i] = [bodyWords]float64{
			x, y,
			-v*math.Sin(phi) + 0.05*(rng.float()-0.5),
			v*math.Cos(phi) + 0.05*(rng.float()-0.5),
			1.0 / float64(n),
		}
	}
	return bodies
}

// RunBarnesHut executes the benchmark; Check folds the final positions.
func RunBarnesHut(rt *core.Runtime, scale float64) Result {
	n := scaled(bhBaseBodies, scale)
	iters := bhBaseIters
	d := RegisterBHDescs(rt)
	var check uint64
	var t0, t1 int64
	rt.Run(func(vp *core.VProc) {
		host := plummer(rt.Cfg.Seed, n)
		cur := vp.AllocGlobalVectorN(n)
		curSlot := vp.PushRoot(cur)
		// Distribute body construction so body data spreads across
		// nodes (the runtime invariant: data is local to the vproc
		// that created it until shared).
		vp.ParallelRange(0, n, rowGrain(n, rt.Cfg.NumVProcs),
			[]heap.Addr{vp.Root(curSlot)},
			func(vp *core.VProc, lo, hi int, env core.Env) {
				for i := lo; i < hi; i++ {
					b := host[i]
					w := make([]uint64, bodyWords)
					for k, f := range b {
						w[k] = f2w(f)
					}
					body := vp.AllocRaw(w)
					bs := vp.PushRoot(body)
					vp.StoreGlobalPtr(env.Get(vp, 0), i, bs)
					vp.PopRoots(1)
				}
			})

		t0 = vp.Now() // timed region: all iterations (tree builds + forces)
		for it := 0; it < iters; it++ {
			// Phase 1 (sequential, on vproc 0): build the quadtree
			// in the local heap, then promote it for sharing.
			rootSlot := vp.PushRoot(buildQuadtree(vp, d, curSlot, n))
			vp.PromoteRoot(rootSlot)

			// Phase 2 (parallel): forces + leapfrog update into a
			// fresh body vector.
			next := vp.AllocGlobalVectorN(n)
			nextSlot := vp.PushRoot(next)
			vp.ParallelRange(0, n, rowGrain(n, rt.Cfg.NumVProcs),
				[]heap.Addr{vp.Root(curSlot), vp.Root(rootSlot), vp.Root(nextSlot)},
				func(vp *core.VProc, lo, hi int, env core.Env) {
					if vp.Runtime().Cfg.NoStepKernels {
						for i := lo; i < hi; i++ {
							stepBody(vp, d, env, i)
						}
						return
					}
					for i := lo; i < hi; i++ {
						stepBodyStepped(vp, d, env, i)
					}
				})
			vp.SetRoot(curSlot, vp.Root(nextSlot))
			vp.PopRoots(2)
		}
		t1 = vp.Now()

		for i := 0; i < n; i++ {
			b := vp.LoadPtr(vp.Root(curSlot), i)
			p := vp.ReadBlock(b)
			check = fnv1a(check, p[bodyX])
			check = fnv1a(check, p[bodyY])
		}
		vp.PopRoots(1)
	})
	return Result{ElapsedNs: t1 - t0, Check: check, Stats: rt.TotalStats()}
}

// buildQuadtree builds the tree over the bodies in curSlot; sequential on
// vproc 0. The build is purely functional (path-copying inserts), as in the
// PML original: no pointer field is ever mutated, so the heap invariants
// hold at every allocation point. Mass summarization afterwards writes only
// raw (non-pointer) fields in place, which is invisible to the collector.
func buildQuadtree(vp *core.VProc, d BHDescs, curSlot int, n int) heap.Addr {
	// Bounding square.
	minX, minY, maxX, maxY := 1e30, 1e30, -1e30, -1e30
	for i := 0; i < n; i++ {
		b := vp.LoadPtr(vp.Root(curSlot), i)
		p := vp.ReadBlock(b)
		x, y := w2f(p[bodyX]), w2f(p[bodyY])
		minX, minY = math.Min(minX, x), math.Min(minY, y)
		maxX, maxY = math.Max(maxX, x), math.Max(maxY, y)
	}
	half := math.Max(maxX-minX, maxY-minY)/2 + 1e-9
	midX, midY := (minX+maxX)/2, (minY+maxY)/2

	rootSlot := vp.PushRoot(newCell(vp, d, midX, midY, half, -1))
	for i := 0; i < n; i++ {
		body := vp.LoadPtr(vp.Root(curSlot), i)
		bs := vp.PushRoot(body)
		nr := insertBody(vp, d, rootSlot, bs, 0)
		vp.PopRoots(1)
		vp.SetRoot(rootSlot, nr)
		vp.Compute(bhVisitNs)
	}
	summarize(vp, vp.Root(rootSlot))
	out := vp.Root(rootSlot)
	vp.PopRoots(1)
	return out
}

// newCell allocates an empty cell; bodySlot < 0 means no body.
func newCell(vp *core.VProc, d BHDescs, midX, midY, half float64, bodySlot int) heap.Addr {
	raw := map[int]uint64{
		cellMidX: f2w(midX),
		cellMidY: f2w(midY),
		cellHalf: f2w(half),
	}
	var ptrs map[int]int
	if bodySlot >= 0 {
		ptrs = map[int]int{cellBody: bodySlot}
	}
	return vp.AllocMixed(d.Cell, raw, ptrs)
}

// quadrantOf picks the child quadrant for a position.
func quadrantOf(midX, midY, x, y float64) int {
	q := 0
	if x >= midX {
		q |= 1
	}
	if y >= midY {
		q |= 2
	}
	return q
}

// bodyPos reads the position of the body held in a root slot.
func bodyPos(vp *core.VProc, bs int) (float64, float64) {
	p := vp.ReadBlockCached(vp.Resolve(vp.Root(bs)))
	return w2f(p[bodyX]), w2f(p[bodyY])
}

// childGeom returns the geometry of quadrant q of a cell.
func childGeom(midX, midY, half float64, q int) (float64, float64, float64) {
	h := half / 2
	cx, cy := midX-h, midY-h
	if q&1 != 0 {
		cx = midX + h
	}
	if q&2 != 0 {
		cy = midY + h
	}
	return cx, cy, h
}

// bhMaxDepth bounds tree depth (distinct positions terminate far earlier).
const bhMaxDepth = 64

// insertBody functionally inserts the body in root slot bs into the cell in
// root slot cellSlot, returning the new cell (unrooted; the caller must
// root it before its next allocation).
func insertBody(vp *core.VProc, d BHDescs, cellSlot, bs int, depth int) heap.Addr {
	if depth > bhMaxDepth {
		panic("workload: barnes-hut insert exceeded max depth (coincident bodies?)")
	}
	cell := vp.Resolve(vp.Root(cellSlot))
	vp.SetRoot(cellSlot, cell)
	p := vp.ReadBlockCached(cell)
	midX, midY := w2f(p[cellMidX]), w2f(p[cellMidY])
	half := w2f(p[cellHalf])
	existing := heap.Addr(p[cellBody])
	hasChildren := p[cellQ0] != 0 || p[cellQ1] != 0 || p[cellQ2] != 0 || p[cellQ3] != 0
	vp.Compute(bhVisitNs)

	if !hasChildren && existing == 0 {
		// Empty leaf: a fresh leaf carrying the body.
		return newCell(vp, d, midX, midY, half, bs)
	}
	if !hasChildren {
		// Occupied leaf: split. Build an internal cell whose quadrant
		// child holds the existing body one level down, then insert
		// the new body into that internal cell.
		exS := vp.PushRoot(existing)
		exX, exY := bodyPos(vp, exS)
		q := quadrantOf(midX, midY, exX, exY)
		cx, cy, h := childGeom(midX, midY, half, q)
		childS := vp.PushRoot(newCell(vp, d, cx, cy, h, exS))
		internalS := vp.PushRoot(vp.AllocMixed(d.Cell, map[int]uint64{
			cellMidX: f2w(midX),
			cellMidY: f2w(midY),
			cellHalf: f2w(half),
		}, map[int]int{cellQ0 + q: childS}))
		out := insertBody(vp, d, internalS, bs, depth+1)
		vp.PopRoots(3)
		return out
	}
	// Internal cell: insert into (a copy of) the right child, then copy
	// this cell with that child replaced.
	x, y := bodyPos(vp, bs)
	q := quadrantOf(midX, midY, x, y)
	var childS int
	if c := heap.Addr(p[cellQ0+q]); c != 0 {
		childS = vp.PushRoot(c)
	} else {
		cx, cy, h := childGeom(midX, midY, half, q)
		childS = vp.PushRoot(newCell(vp, d, cx, cy, h, -1))
	}
	nc := insertBody(vp, d, childS, bs, depth+1)
	vp.SetRoot(childS, nc)

	// Re-read the (possibly moved) original cell and assemble the copy.
	cell = vp.Resolve(vp.Root(cellSlot))
	p = vp.ReadBlockCached(cell)
	ptrs := map[int]int{cellQ0 + q: childS}
	pushed := 1 // childS
	for k := 0; k < 4; k++ {
		if k == q {
			continue
		}
		if c := heap.Addr(p[cellQ0+k]); c != 0 {
			ptrs[cellQ0+k] = vp.PushRoot(c)
			pushed++
		}
	}
	out := vp.AllocMixed(d.Cell, map[int]uint64{
		cellMidX: f2w(midX),
		cellMidY: f2w(midY),
		cellHalf: f2w(half),
	}, ptrs)
	vp.PopRoots(pushed)
	return out
}

// summarize computes centers of mass bottom-up; no allocation, so plain
// addresses are stable.
func summarize(vp *core.VProc, cell heap.Addr) (mx, my, m float64) {
	cell = vp.Resolve(cell)
	p := vp.ReadBlockCached(cell)
	if b := heap.Addr(p[cellBody]); b != 0 {
		bp := vp.ReadBlockCached(vp.Resolve(b))
		m = w2f(bp[bodyMass])
		mx, my = w2f(bp[bodyX])*m, w2f(bp[bodyY])*m
	}
	for q := 0; q < 4; q++ {
		if c := heap.Addr(p[cellQ0+q]); c != 0 {
			cx, cy, cm := summarize(vp, c)
			mx, my, m = mx+cx, my+cy, m+cm
		}
	}
	p[cellCX] = f2w(safeDiv(mx, m))
	p[cellCY] = f2w(safeDiv(my, m))
	p[cellMass] = f2w(m)
	vp.Compute(bhVisitNs)
	return mx, my, m
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// stepBody computes the force on body i from the (global, promoted) tree
// and writes the advanced body into the next vector. Tree reads are charged
// as memory loads against the tree's home pages — the shared-data traffic
// that limits this benchmark's scaling.
func stepBody(vp *core.VProc, d BHDescs, env core.Env, i int) {
	body := vp.LoadPtr(env.Get(vp, 0), i)
	bp := append([]uint64(nil), vp.ReadBlock(body)...)
	x, y := w2f(bp[bodyX]), w2f(bp[bodyY])
	var ax, ay float64

	var visit func(cell heap.Addr, depth int)
	visit = func(cell heap.Addr, depth int) {
		// The top few tree levels are touched by every body of every
		// task and stay resident in each node's cache; deeper cells
		// are charged as memory traffic against the tree's home node
		// — the shared-data pattern that limits this benchmark.
		var p []uint64
		if depth < 3 {
			p = vp.ReadBlockCachedCompute(cell, bhVisitNs)
		} else {
			p = vp.ReadBlockCompute(cell, bhVisitNs)
		}
		m := w2f(p[cellMass])
		if m == 0 {
			return
		}
		cx, cy := w2f(p[cellCX]), w2f(p[cellCY])
		dx, dy := cx-x, cy-y
		dist2 := dx*dx + dy*dy + 1e-4
		size := 2 * w2f(p[cellHalf])
		hasChildren := p[cellQ0] != 0 || p[cellQ1] != 0 || p[cellQ2] != 0 || p[cellQ3] != 0
		if !hasChildren || size*size < bhTheta*bhTheta*dist2 {
			inv := 1 / math.Sqrt(dist2)
			f := m * inv * inv * inv
			ax += f * dx
			ay += f * dy
			return
		}
		// Copy child pointers before descending: traversal performs
		// no allocation, so they are stable.
		var kids [4]heap.Addr
		for q := 0; q < 4; q++ {
			kids[q] = heap.Addr(p[cellQ0+q])
		}
		for q := 0; q < 4; q++ {
			if kids[q] != 0 {
				visit(kids[q], depth+1)
			}
		}
	}
	visit(env.Get(vp, 1), 0)

	vx := w2f(bp[bodyVX]) + ax*bhDT
	vy := w2f(bp[bodyVY]) + ay*bhDT
	nx := x + vx*bhDT
	ny := y + vy*bhDT
	nw := []uint64{f2w(nx), f2w(ny), f2w(vx), f2w(vy), bp[bodyMass]}
	nb := vp.AllocRaw(nw)
	ns := vp.PushRoot(nb)
	vp.StoreGlobalPtr(env.Get(vp, 2), i, ns)
	vp.PopRoots(1)
}

// stepBodyStepped is stepBody with its loads and tree traversal run as an
// explicit step-function state machine (the recursion flattened to a
// frame stack): every charge the direct version issues as its own Advance
// is returned from a step at the same virtual instant, so the schedule is
// bit-identical while the finely interleaved turns of many vprocs execute
// as inline calls on the token holder's stack. The leapfrog tail allocates
// (a safepoint), so it stays in direct style after the machine finishes.
func stepBodyStepped(vp *core.VProc, d BHDescs, env core.Env, i int) {
	type frame struct {
		cell  heap.Addr
		depth int
	}
	var (
		phase  int
		body   heap.Addr
		bp     []uint64
		stack  []frame
		x, y   float64
		ax, ay float64
	)
	vp.RunSteps(func() (int64, bool) {
		switch phase {
		case 0: // the body-pointer load from the current vector
			var c int64
			body, c = vp.CostLoadPtr(env.Get(vp, 0), i)
			phase = 1
			return c, false
		case 1: // the streamed body read (copied out: the tail allocates)
			p, c := vp.CostReadBlock(body, 0)
			bp = append(bp, p...)
			x, y = w2f(bp[bodyX]), w2f(bp[bodyY])
			stack = append(stack, frame{env.Get(vp, 1), 0})
			phase = 2
			return c, false
		}
		if len(stack) == 0 {
			return 0, true
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// The top few tree levels are touched by every body of every
		// task and stay resident in each node's cache; deeper cells
		// are charged as memory traffic against the tree's home node
		// — the shared-data pattern that limits this benchmark.
		var p []uint64
		var c int64
		if f.depth < 3 {
			p, c = vp.CostReadBlockCached(f.cell, bhVisitNs)
		} else {
			p, c = vp.CostReadBlock(f.cell, bhVisitNs)
		}
		m := w2f(p[cellMass])
		if m == 0 {
			return c, false
		}
		cx, cy := w2f(p[cellCX]), w2f(p[cellCY])
		dx, dy := cx-x, cy-y
		dist2 := dx*dx + dy*dy + 1e-4
		size := 2 * w2f(p[cellHalf])
		hasChildren := p[cellQ0] != 0 || p[cellQ1] != 0 || p[cellQ2] != 0 || p[cellQ3] != 0
		if !hasChildren || size*size < bhTheta*bhTheta*dist2 {
			inv := 1 / math.Sqrt(dist2)
			fm := m * inv * inv * inv
			ax += fm * dx
			ay += fm * dy
			return c, false
		}
		// Push children in reverse so they pop in quadrant order —
		// the same pre-order traversal as the recursive visit.
		for q := 3; q >= 0; q-- {
			if kid := heap.Addr(p[cellQ0+q]); kid != 0 {
				stack = append(stack, frame{kid, f.depth + 1})
			}
		}
		return c, false
	})

	vx := w2f(bp[bodyVX]) + ax*bhDT
	vy := w2f(bp[bodyVY]) + ay*bhDT
	nx := x + vx*bhDT
	ny := y + vy*bhDT
	nw := []uint64{f2w(nx), f2w(ny), f2w(vx), f2w(vy), bp[bodyMass]}
	nb := vp.AllocRaw(nw)
	ns := vp.PushRoot(nb)
	vp.StoreGlobalPtr(env.Get(vp, 2), i, ns)
	vp.PopRoots(1)
}
