package workload

import (
	"repro/internal/core"
	"repro/internal/heap"
)

// SMVM (§4.1): "a sparse-matrix by dense-vector multiplication. The matrix
// contains 1,091,362 elements and the vector 16,614." The defining feature
// (§4.2-4.3) is the small shared vector: under the local placement policy
// it lives entirely on its builder's node, so at high thread counts every
// other node's reads contend for that node's memory links — the benchmark
// that scales worst on the AMD machine and the one case where interleaved
// placement wins past 24 threads.

const (
	// smvmBaseNNZ is the default nonzero count; the paper uses 1,091,362.
	smvmBaseNNZ = 64 << 10
	// smvmBaseCols is the default vector length; the paper uses 16,614.
	smvmBaseCols = 4096
	// smvmRowLen is the fixed nonzeros per row (band structure).
	smvmRowLen = 32
)

// RunSMVM executes the benchmark; Check is an FNV fold of the result
// vector.
func RunSMVM(rt *core.Runtime, scale float64) Result {
	nnz := scaled(smvmBaseNNZ, scale)
	cols := scaled(smvmBaseCols, scale)
	rows := nnz / smvmRowLen
	var check uint64
	var t0, t1 int64
	rt.Run(func(vp *core.VProc) {
		// The dense vector: built by vproc 0 and promoted as one
		// object graph — under the local policy its pages all land on
		// vproc 0's node, exactly the hot spot the paper describes.
		// (It is chunk-sized raw blocks under a vector spine.)
		vecSlot := vp.PushRoot(buildDenseVector(vp, cols))

		// Row tables: col-index and value blocks per row group, built
		// in parallel so the matrix itself is distributed.
		rowTab := vp.AllocGlobalVectorN(rows)
		rowSlot := vp.PushRoot(rowTab)
		outTab := vp.AllocGlobalVectorN(rows)
		outSlot := vp.PushRoot(outTab)

		grain := rowGrain(rows, rt.Cfg.NumVProcs)
		vp.ParallelRange(0, rows, grain,
			[]heap.Addr{vp.Root(rowSlot)},
			func(vp *core.VProc, lo, hi int, env core.Env) {
				for r := lo; r < hi; r++ {
					buildSMVMRow(vp, env, r, cols)
				}
			})

		// Multiply (the timed region).
		t0 = vp.Now()
		vp.ParallelRange(0, rows, grain,
			[]heap.Addr{vp.Root(rowSlot), vp.Root(vecSlot), vp.Root(outSlot)},
			func(vp *core.VProc, lo, hi int, env core.Env) {
				if vp.Runtime().Cfg.NoStepKernels {
					for r := lo; r < hi; r++ {
						smvmRow(vp, env, r)
					}
					return
				}
				for r := lo; r < hi; r++ {
					smvmRowStepped(vp, env, r)
				}
			})

		t1 = vp.Now()

		for r := 0; r < rows; r++ {
			cell := vp.LoadPtr(vp.Root(outSlot), r)
			check = fnv1a(check, vp.LoadWord(cell, 0))
		}
		vp.PopRoots(3)
	})
	return Result{ElapsedNs: t1 - t0, Check: check, Stats: rt.TotalStats()}
}

// vecBlockWords is the leaf size of the dense vector.
const vecBlockWords = 512

// buildDenseVector builds the shared vector as a spine of raw blocks and
// promotes the whole structure.
func buildDenseVector(vp *core.VProc, cols int) heap.Addr {
	blocks := (cols + vecBlockWords - 1) / vecBlockWords
	spineSlot := vp.PushRoot(vp.AllocGlobalVectorN(blocks))
	buf := make([]uint64, 0, vecBlockWords)
	for b := 0; b < blocks; b++ {
		buf = buf[:0]
		for j := b * vecBlockWords; j < (b+1)*vecBlockWords && j < cols; j++ {
			buf = append(buf, f2w(vecElem(j)))
		}
		blk := vp.AllocRaw(buf)
		bs := vp.PushRoot(blk)
		vp.StoreGlobalPtr(vp.Root(spineSlot), b, bs)
		vp.PopRoots(1)
	}
	out := vp.Root(spineSlot)
	vp.PopRoots(1)
	return out
}

// vecElem generates vector element j.
func vecElem(j int) float64 { return float64((j*13+5)%89) / 89.0 }

// smvmCol gives the deterministic column of nonzero k in row r: a band
// around the diagonal plus a scattered tail, so vector reads touch many
// pages.
func smvmCol(r, k, cols int) int {
	if k < smvmRowLen/4 {
		return (r*3 + k) % cols
	}
	return (r*7919 + k*104729) % cols
}

// smvmVal generates the matrix value.
func smvmVal(r, k int) float64 { return float64((r+k*29)%53)/53.0 + 0.25 }

// buildSMVMRow builds row r's column/value blocks and publishes them.
func buildSMVMRow(vp *core.VProc, env core.Env, r, cols int) {
	words := make([]uint64, 2*smvmRowLen)
	for k := 0; k < smvmRowLen; k++ {
		words[2*k] = uint64(smvmCol(r, k, cols))
		words[2*k+1] = f2w(smvmVal(r, k))
	}
	row := vp.AllocRaw(words)
	rs := vp.PushRoot(row)
	vp.StoreGlobalPtr(env.Get(vp, 0), r, rs)
	vp.PopRoots(1)
	vp.Compute(smvmRowLen * 2)
}

// smvmRow computes one output element: the dot product of row r with the
// shared vector. The row data streams from its builder's node (local under
// the default policy); every vector element is a dependent load against the
// vector's home node — the shared hot spot.
func smvmRow(vp *core.VProc, env core.Env, r int) {
	row := vp.LoadPtr(env.Get(vp, 0), r)
	data := append([]uint64(nil), vp.ReadBlock(row)...)
	spine := env.Get(vp, 1)
	var acc float64
	for k := 0; k < smvmRowLen; k++ {
		col := int(data[2*k])
		v := w2f(data[2*k+1])
		blk := vp.LoadPtr(spine, col/vecBlockWords)
		x := w2f(vp.LoadWord(blk, col%vecBlockWords))
		acc += v * x
	}
	vp.Compute(smvmRowLen * 2)
	// Publish the scalar result.
	res := vp.AllocRaw([]uint64{f2w(acc)})
	rs := vp.PushRoot(res)
	vp.StoreGlobalPtr(env.Get(vp, 2), r, rs)
	vp.PopRoots(1)
}

// smvmRowStepped is smvmRow with its load sequence — the row-pointer load,
// the streamed row read, and the per-nonzero spine/block loads against the
// shared vector — run as a step-function state machine, so the dependent
// loads of many interleaved vprocs cost inline steps instead of goroutine
// handoffs. The charges land at the same virtual instants as the direct
// version's Advances; the allocating tail stays direct.
func smvmRowStepped(vp *core.VProc, env core.Env, r int) {
	const (
		srLoadRow = iota
		srReadRow
		srLoadBlk
		srLoadX
		srCompute
		srDone
	)
	var (
		phase      int
		row, spine heap.Addr
		blk        heap.Addr
		data       []uint64
		acc        float64
		k          int
	)
	vp.RunSteps(func() (int64, bool) {
		switch phase {
		case srLoadRow:
			var c int64
			row, c = vp.CostLoadPtr(env.Get(vp, 0), r)
			phase = srReadRow
			return c, false
		case srReadRow:
			p, c := vp.CostReadBlock(row, 0)
			data = append(data, p...)
			spine = env.Get(vp, 1)
			phase = srLoadBlk
			return c, false
		case srLoadBlk:
			col := int(data[2*k])
			var c int64
			blk, c = vp.CostLoadPtr(spine, col/vecBlockWords)
			phase = srLoadX
			return c, false
		case srLoadX:
			col := int(data[2*k])
			w, c := vp.CostLoadWord(blk, col%vecBlockWords)
			acc += w2f(data[2*k+1]) * w2f(w)
			k++
			if k < smvmRowLen {
				phase = srLoadBlk
			} else {
				phase = srCompute
			}
			return c, false
		case srCompute:
			phase = srDone
			return smvmRowLen * 2, false
		}
		return 0, true
	})
	// Publish the scalar result.
	res := vp.AllocRaw([]uint64{f2w(acc)})
	rs := vp.PushRoot(res)
	vp.StoreGlobalPtr(env.Get(vp, 2), r, rs)
	vp.PopRoots(1)
}

// SMVMSeq is the sequential reference.
func SMVMSeq(scale float64) uint64 {
	nnz := scaled(smvmBaseNNZ, scale)
	cols := scaled(smvmBaseCols, scale)
	rows := nnz / smvmRowLen
	var check uint64
	for r := 0; r < rows; r++ {
		var acc float64
		for k := 0; k < smvmRowLen; k++ {
			acc += smvmVal(r, k) * vecElem(smvmCol(r, k, cols))
		}
		// The parallel version stores each scalar in a 1-word raw
		// object; the checksum folds the payload word.
		check = fnv1a(check, f2w(acc))
	}
	return check
}
