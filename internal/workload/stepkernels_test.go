package workload

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
)

// TestStepKernelEquivalence is the ablation behind every step conversion in
// this package and in core: with Config.NoStepKernels the hot loops run in
// their original direct (Advance-based) style, and the results — virtual
// makespan, output checksum, and all runtime/GC statistics — must be
// bit-identical to the step-driven execution, across both machine presets
// and all three page-placement policies. The configuration shrinks the
// heaps and the global trigger so every collection phase (including the
// step-driven global scan) fires during each run.
func TestStepKernelEquivalence(t *testing.T) {
	topos := []*numa.Topology{numa.AMD48(), numa.Intel32()}
	policies := []mempage.Policy{mempage.PolicyLocal, mempage.PolicyInterleaved, mempage.PolicySingleNode}
	benches := []string{"barnes-hut", "smvm", "quicksort", "server"}
	sawGlobal := false
	for _, topo := range topos {
		for _, pol := range policies {
			for _, name := range benches {
				t.Run(fmt.Sprintf("%s/%s/%s", topo.Name, pol, name), func(t *testing.T) {
					run := func(noStep bool) (Result, core.RTStats, int64) {
						cfg := core.DefaultConfig(topo, 8)
						cfg.Policy = pol
						cfg.LocalHeapWords = 16 << 10
						cfg.ChunkWords = 4 << 10
						cfg.GlobalTriggerWords = 8 * cfg.ChunkWords
						cfg.NoStepKernels = noStep
						rt := core.MustNewRuntime(cfg)
						spec, err := ByName(name)
						if err != nil {
							t.Fatal(err)
						}
						res := spec.Run(rt, 0.1)
						return res, rt.Stats, rt.Eng.MaxClock()
					}
					stepped, sGC, sClock := run(false)
					direct, dGC, dClock := run(true)
					if stepped != direct {
						t.Errorf("results diverged:\n step:   %+v\n direct: %+v", stepped, direct)
					}
					if sGC != dGC {
						t.Errorf("GC stats diverged:\n step:   %+v\n direct: %+v", sGC, dGC)
					}
					if sClock != dClock {
						t.Errorf("makespan diverged: step %d, direct %d", sClock, dClock)
					}
					if sGC.GlobalGCs > 0 {
						sawGlobal = true
					}
				})
			}
		}
	}
	if !sawGlobal {
		t.Error("no configuration triggered a global collection; the step-driven scan phase went unexercised")
	}
}
