package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
)

// Overload harness: the open-loop latency harness pushed through and past
// saturation, with the robustness layer the plain harness deliberately
// lacks. Requests arrive on a planned schedule (same open-loop contract as
// latency.go) but flow through a *bounded* request lane; when the lane is
// full the configured admission policy decides what gives — block nothing
// and queue forever (AdmitNone, the unbounded baseline), shed at admission
// with client-side retry/backoff (AdmitQueue), or additionally drop
// requests server-side once their deadline is unmeetable (AdmitDeadline).
// Every request resolves exactly once — completed, expired (server nack),
// shed at admission, shed by a fault-plan close, or shed by memory
// pressure (AdmitMemory's watermark gate, or AllocFailed on a bounded
// heap) — so goodput, shed, and retry counts always account for the full
// offered load.
//
// Determinism: arrivals, payloads, and retry jitter are drawn from seeded
// per-client/per-request streams; all bookkeeping mutates in
// engine-serialized task code. Two runs with the same options are
// bit-identical at any host worker count. Unlike the throughput and latency
// checksums, the overload checksum is NOT vproc-count-invariant: whether a
// given request is shed depends on queue depth at its arrival instant,
// which is schedule-dependent — the invariant is rerun equality, not
// topology equality.
//
// Termination: the server pool cannot use fixed quotas (how many requests
// reach a server depends on the policy and the schedule), so shutdown rides
// the close-as-status channel semantics: the last resolution closes the
// request lane, waking every parked server continuation with a nil message.
// At that instant no server is mid-request (a request being served is
// unresolved) and no client continuation is pending (every request already
// resolved), so the runtime quiesces.
const (
	ovClients  = 300 // logical clients at scale 1
	ovRequests = 6   // requests per client at scale 1

	ovMeanGapNs  = 400_000 // default per-client inter-arrival gap
	ovSLONs      = 250_000 // default deadline, measured from scheduled arrival
	ovMailboxCap = 16      // default bounded-lane depth
	ovMaxRetries = 3       // default retry budget after the first attempt
	ovRetryBase  = 10_000  // default first-retry backoff
	ovRetryCap   = 80_000  // default backoff cap

	// ovServiceNsPerWord is the default per-word service compute. It is
	// deliberately heavier than the closed-loop server's 6 ns/word: the
	// admission policies only differentiate when service time dominates
	// messaging cost, so a deadline nack (3 header words + a 3-word reply)
	// saves real capacity relative to serving a doomed request in full. At
	// 300 ns/word (mean request ~28 words) a 16-vproc pool saturates near
	// 1.9 requests/us, inside the default sweep's load ladder.
	ovServiceNsPerWord = 300
)

// AdmissionPolicy selects the overload-control strategy.
type AdmissionPolicy int

const (
	// AdmitNone is the no-control baseline: an unbounded request lane,
	// no shedding, no retries. Past saturation the queue grows without
	// bound and SLO attainment collapses, but every request completes.
	AdmitNone AdmissionPolicy = iota
	// AdmitQueue bounds the request lane: a full lane sheds at admission
	// (TrySend reports SendFull) and the client retries with capped
	// exponential backoff + seeded jitter, giving up after MaxRetries.
	AdmitQueue
	// AdmitDeadline is AdmitQueue plus server-side deadline awareness: a
	// server that cannot finish a request before its deadline nacks it
	// cheaply instead of wasting service time on a guaranteed SLO miss.
	AdmitDeadline
	// AdmitMemory is AdmitQueue plus memory-aware admission: when the
	// runtime's heap-occupancy signal (core.Runtime.MemPressure) crosses
	// MemHighPct of the chunk budget, new requests are shed at admission
	// — immediately, with no retries, relieving allocation pressure
	// before the emergency collection ladder has to engage — and
	// admission reopens once occupancy falls below MemLowPct (hysteresis,
	// so the gate does not flap at the watermark). With no budget
	// configured the gate is inert and the policy behaves as AdmitQueue.
	AdmitMemory
)

// String names the policy (the CLI flag vocabulary).
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitNone:
		return "none"
	case AdmitQueue:
		return "queue"
	case AdmitDeadline:
		return "deadline"
	case AdmitMemory:
		return "memory"
	}
	return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
}

// ParseAdmission parses a policy name.
func ParseAdmission(s string) (AdmissionPolicy, error) {
	switch s {
	case "none":
		return AdmitNone, nil
	case "queue":
		return AdmitQueue, nil
	case "deadline":
		return AdmitDeadline, nil
	case "memory":
		return AdmitMemory, nil
	}
	return 0, fmt.Errorf("workload: unknown admission policy %q (none, queue, deadline, memory)", s)
}

// OverloadOptions configures the harness.
type OverloadOptions struct {
	Clients   int   // logical clients
	Requests  int   // requests per client
	MeanGapNs int64 // mean per-client inter-arrival gap (offered-load knob)
	SLONs     int64 // per-request deadline, from scheduled arrival

	Admission  AdmissionPolicy
	MailboxCap int // bounded-lane depth (AdmitQueue/AdmitDeadline)

	MaxRetries  int   // retry budget after the first attempt
	RetryBaseNs int64 // first retry backoff (doubles per attempt)
	RetryCapNs  int64 // backoff cap

	// ServiceNsPerWord is the server-side compute per payload word — the
	// saturation knob: capacity ≈ vprocs / (mean words × this).
	ServiceNsPerWord int64

	// MemHighPct and MemLowPct are AdmitMemory's hysteresis watermarks,
	// as percentages of the heap's chunk budget: admission closes when
	// occupancy reaches MemHighPct and reopens when it falls below
	// MemLowPct. Ignored by the other policies and when no budget is
	// configured.
	MemHighPct int
	MemLowPct  int

	// Faults, when non-nil, is installed before the run (stalls, bursts,
	// closes — see core.FaultPlan). A close of the request lane makes every
	// later admission attempt resolve as ShedFault. Caveat: a close must not
	// drop *accepted* requests — a request already queued in the lane when
	// the close discards it has a reply handler parked forever and the run
	// will not quiesce. Close the lane before the first arrival (everything
	// sheds), or close other channels; mid-run lane closes are exercised by
	// the core-level close-under-load tests, whose accounting is built for
	// them.
	Faults *core.FaultPlan

	// LaneCloseNs, when positive, schedules a fault-plan close of the
	// request lane itself at that virtual instant — the lane is created
	// inside RunOverload, so callers cannot put it in Faults directly.
	// The same caveat applies: the instant must precede the first possible
	// arrival (MeanGapNs/2) so no accepted request is dropped.
	LaneCloseNs int64
}

// DefaultOverloadOptions scales the default shape.
func DefaultOverloadOptions(scale float64) OverloadOptions {
	return OverloadOptions{
		Clients:          scaled(ovClients, scale),
		Requests:         scaled(ovRequests, scale),
		MeanGapNs:        ovMeanGapNs,
		SLONs:            ovSLONs,
		Admission:        AdmitQueue,
		MailboxCap:       ovMailboxCap,
		MaxRetries:       ovMaxRetries,
		RetryBaseNs:      ovRetryBase,
		RetryCapNs:       ovRetryCap,
		ServiceNsPerWord: ovServiceNsPerWord,
		MemHighPct:       90,
		MemLowPct:        70,
	}
}

// OverloadResult is one harness execution. Offered always equals Completed
// + Expired + ShedAdmission + ShedFault.
type OverloadResult struct {
	Result // makespan, checksum (rerun-stable), runtime stats

	Offered       int   // planned requests
	Completed     int   // served with a real reply
	GoodSLO       int   // completed within SLONs of the scheduled arrival
	Expired       int   // nacked server-side (deadline unmeetable)
	ShedAdmission int   // given up after exhausting the retry budget
	ShedFault     int   // lost to a fault-plan channel close
	ShedMemory    int   // shed by the memory gate or an AllocFailed request buffer
	Retries       int64 // re-attempts after SendFull

	// WindowNs is the planned arrival horizon (the last scheduled
	// arrival): offered rate = Offered / WindowNs. Goodput rate uses the
	// actual makespan: GoodSLO / ElapsedNs.
	WindowNs int64

	Hist     Hist // completed-request latencies from scheduled arrival
	P50, P99 int64
}

// Checksum outcome tags: distinct fnv1a seeds per resolution kind, so the
// per-client folds capture which requests completed, expired, or shed — the
// value the rerun-equality gate actually compares.
const (
	ovTagExpired = 0x9E
	ovTagShed    = 0x5E
	ovTagFault   = 0xFA
	ovTagMemory  = 0x3A
)

// ovState is the harness's host-side bookkeeping; all mutation happens in
// engine-serialized task code.
type ovState struct {
	opt  OverloadOptions
	seed uint64

	arrival [][]int64 // scheduled arrival instants
	words   [][]int   // payload words
	acc     []uint64  // per-client commutative resolution fold

	lane    *core.Channel
	replies []*core.Channel

	unresolved    int
	completed     int
	goodSLO       int
	expired       int
	shedAdmission int
	shedFault     int
	shedMemory    int
	retries       int64
	hist          Hist

	// memShedding is AdmitMemory's hysteresis state: true while the
	// occupancy signal sits between the watermarks on the way down.
	// Mutated only in engine-serialized task code.
	memShedding bool
}

// ovPlan draws every arrival instant and payload shape up front, exactly
// like planLatency (same stream discipline: one gap draw, then the shape
// draws), so the offered load is a pure function of (seed, options).
func ovPlan(seed uint64, opt OverloadOptions) *ovState {
	st := &ovState{opt: opt, seed: seed, unresolved: opt.Clients * opt.Requests}
	st.arrival = make([][]int64, opt.Clients)
	st.words = make([][]int, opt.Clients)
	st.acc = make([]uint64, opt.Clients)
	for c := 0; c < opt.Clients; c++ {
		rng := newRand(latClientSeed(seed, c))
		st.arrival[c] = make([]int64, opt.Requests)
		st.words[c] = make([]int, opt.Requests)
		var t int64
		for r := 0; r < opt.Requests; r++ {
			gap := opt.MeanGapNs/2 + int64(rng.next()%uint64(opt.MeanGapNs))
			t += gap
			st.arrival[c][r] = t
			_, words := srvRequestShape(rng)
			st.words[c][r] = words
		}
	}
	return st
}

// deadline is request (c, r)'s absolute deadline.
func (st *ovState) deadline(c, r int) int64 {
	return st.arrival[c][r] + st.opt.SLONs
}

// resolve retires one request; the last resolution shuts the server pool
// down by closing the request lane (see the termination note above).
func (st *ovState) resolve() {
	st.unresolved--
	if st.unresolved == 0 {
		st.lane.Close()
	}
}

// ovArm schedules client c's request r at its planned arrival and chains
// the next: open-loop, the chain uses planned absolute instants, so a
// stalled runtime does not slow the offered load down.
func ovArm(vp *core.VProc, st *ovState, c, r int) {
	if r == st.opt.Requests {
		return
	}
	vp.AtThen(st.arrival[c][r], nil, func(vp *core.VProc, _ core.Env) {
		ovAttempt(vp, st, c, r, 0)
		ovArm(vp, st, c, r+1)
	})
}

// memGateClosed evaluates AdmitMemory's watermark gate against the
// runtime's occupancy signal, advancing the hysteresis state: closed at
// MemHighPct of the budget, reopened below MemLowPct. Inert (always open)
// when the heap is unbounded. Runs in engine-serialized task code, so the
// state transitions are deterministic.
func (st *ovState) memGateClosed(vp *core.VProc) bool {
	mp := vp.Runtime().MemPressure()
	if mp.BudgetChunks <= 0 {
		return false
	}
	occ := mp.ActiveChunks * 100
	if st.memShedding {
		if occ < st.opt.MemLowPct*mp.BudgetChunks {
			st.memShedding = false
		}
	} else if occ >= st.opt.MemHighPct*mp.BudgetChunks {
		st.memShedding = true
	}
	return st.memShedding
}

// ovAttempt makes one admission attempt for request (c, r). Payload layout:
// [client, seq, deadline, noise...] — the deadline travels with the request
// so the server's drop decision needs no host-side side channel.
//
// Two memory-pressure outcomes resolve a request as ShedMemory, both
// immediate (no retry — retrying into a full heap only deepens the
// pressure): AdmitMemory's watermark gate is closed, or the request
// buffer's TryAllocRaw reports AllocFailed after the emergency collection
// ladder (any policy, once a heap budget is configured). With no budget
// both paths are unreachable and the attempt is schedule-identical to the
// pre-budget harness.
func ovAttempt(vp *core.VProc, st *ovState, c, r, attempt int) {
	if st.opt.Admission == AdmitMemory && st.memGateClosed(vp) {
		st.shedMemory++
		st.acc[c] += fnv1a(fnv1a(ovTagMemory, uint64(r)), uint64(attempt))
		st.resolve()
		return
	}
	words := st.words[c][r]
	rng := newRand(latReqSeed(st.seed, c, r))
	buf := make([]uint64, words)
	buf[0], buf[1], buf[2] = uint64(c), uint64(r), uint64(st.deadline(c, r))
	for i := 3; i < words; i++ {
		buf[i] = rng.next()
	}
	a, ast := vp.TryAllocRaw(buf)
	if ast != core.AllocOK {
		st.shedMemory++
		st.acc[c] += fnv1a(fnv1a(ovTagMemory, uint64(r)), uint64(attempt)|0x100)
		st.resolve()
		return
	}
	s := vp.PushRoot(a)
	status := st.lane.TrySend(vp, s)
	vp.PopRoots(1)
	switch status {
	case core.SendOK:
		ovAwaitReply(vp, st, c)
	case core.SendFull:
		next := attempt + 1
		if next > st.opt.MaxRetries {
			st.shedAdmission++
			st.acc[c] += fnv1a(fnv1a(ovTagShed, uint64(r)), uint64(attempt))
			st.resolve()
			return
		}
		st.retries++
		vp.AfterThen(ovBackoff(st, c, r, next), nil, func(vp *core.VProc, _ core.Env) {
			ovAttempt(vp, st, c, r, next)
		})
	case core.SendClosed:
		st.shedFault++
		st.acc[c] += fnv1a(fnv1a(ovTagFault, uint64(r)), 0)
		st.resolve()
	}
}

// ovBackoff is attempt's capped exponential backoff with jitter in
// [base/2, 3*base/2), drawn from a per-(request, attempt) seeded stream —
// randomized enough to de-synchronize retry herds, deterministic enough to
// replay bit-identically.
func ovBackoff(st *ovState, c, r, attempt int) int64 {
	base := st.opt.RetryBaseNs << uint(attempt-1)
	if base > st.opt.RetryCapNs {
		base = st.opt.RetryCapNs
	}
	j := newRand(fnv1a(latReqSeed(st.seed, c, r), uint64(attempt)) | 1)
	return base/2 + int64(j.next()%uint64(base))
}

// ovAwaitReply parks one reply handler for client c. Replies carry the
// request seq, so concurrent in-flight requests of one client may resolve
// through any of its parked handlers.
func ovAwaitReply(vp *core.VProc, st *ovState, c int) {
	st.replies[c].RecvThen(vp, nil, func(vp *core.VProc, _ core.Env, msg heap.Addr) {
		p := vp.ReadBlock(msg)
		seq, sum, nacked := p[0], p[1], p[2]
		if nacked != 0 {
			st.expired++
			st.acc[c] += fnv1a(fnv1a(ovTagExpired, seq), 1)
		} else {
			lat := vp.Now() - st.arrival[c][seq]
			st.hist.Record(lat)
			st.completed++
			if lat <= st.opt.SLONs {
				st.goodSLO++
			}
			st.acc[c] += fnv1a(fnv1a(0, seq), sum)
		}
		st.resolve()
	})
}

// RunOverload executes the harness: a load sweep point's inner loop. The
// virtual results are deterministic — bit-identical across reruns at any
// host-side worker count.
func RunOverload(rt *core.Runtime, opt OverloadOptions) OverloadResult {
	if opt.Clients < 1 || opt.Requests < 1 || opt.MeanGapNs < 2 || opt.SLONs < 1 {
		panic(fmt.Sprintf("workload: bad overload options %+v", opt))
	}
	if opt.Admission != AdmitNone && opt.MailboxCap < 1 {
		panic(fmt.Sprintf("workload: admission %v needs MailboxCap >= 1", opt.Admission))
	}
	if opt.MaxRetries < 0 || (opt.MaxRetries > 0 && (opt.RetryBaseNs < 2 || opt.RetryCapNs < opt.RetryBaseNs)) {
		panic(fmt.Sprintf("workload: bad retry options %+v", opt))
	}
	if opt.ServiceNsPerWord < 1 {
		panic(fmt.Sprintf("workload: ServiceNsPerWord %d must be >= 1", opt.ServiceNsPerWord))
	}
	if opt.Admission == AdmitMemory &&
		(opt.MemLowPct < 1 || opt.MemLowPct >= opt.MemHighPct || opt.MemHighPct > 100) {
		panic(fmt.Sprintf("workload: AdmitMemory needs 1 <= MemLowPct < MemHighPct <= 100, got %d/%d",
			opt.MemLowPct, opt.MemHighPct))
	}
	if opt.LaneCloseNs >= opt.MeanGapNs/2 && opt.LaneCloseNs > 0 {
		// The earliest possible arrival is the minimum gap draw; a later
		// close could drop accepted requests (see the Faults caveat).
		panic(fmt.Sprintf("workload: LaneCloseNs %d not before the earliest possible arrival %d", opt.LaneCloseNs, opt.MeanGapNs/2))
	}

	st := ovPlan(rt.Cfg.Seed, opt)
	if opt.Admission == AdmitNone {
		st.lane = rt.NewChannel()
	} else {
		st.lane = rt.NewMailbox(opt.MailboxCap)
	}
	st.replies = make([]*core.Channel, opt.Clients)
	for i := range st.replies {
		st.replies[i] = rt.NewChannel()
	}
	faults := opt.Faults
	if opt.LaneCloseNs > 0 {
		// Copy the caller's plan before extending it: InstallFaults arms
		// pointers into the event slice, and the caller may reuse the plan
		// for another run.
		var events []core.FaultEvent
		if faults != nil {
			events = append(events, faults.Events...)
		}
		faults = &core.FaultPlan{Events: events}
		faults.CloseAt(0, opt.LaneCloseNs, st.lane)
	}
	if faults != nil {
		rt.InstallFaults(faults)
	}

	servers := rt.Cfg.NumVProcs
	elapsed := rt.Run(func(vp *core.VProc) {
		for s := 0; s < servers; s++ {
			vp.Spawn(func(svp *core.VProc, _ core.Env) {
				ovServe(svp, st)
			})
		}
		for c := 0; c < opt.Clients; c++ {
			c := c
			vp.Spawn(func(cvp *core.VProc, _ core.Env) {
				ovArm(cvp, st, c, 0)
			})
		}
	})

	var check uint64
	for _, a := range st.acc {
		check = fnv1a(check, a)
	}
	res := OverloadResult{
		Result:        Result{ElapsedNs: elapsed, Check: check, Stats: rt.TotalStats()},
		Offered:       opt.Clients * opt.Requests,
		Completed:     st.completed,
		GoodSLO:       st.goodSLO,
		Expired:       st.expired,
		ShedAdmission: st.shedAdmission,
		ShedFault:     st.shedFault,
		ShedMemory:    st.shedMemory,
		Retries:       st.retries,
		Hist:          st.hist,
	}
	for c := range st.arrival {
		for _, t := range st.arrival[c] {
			if t > res.WindowNs {
				res.WindowNs = t
			}
		}
	}
	res.P50 = res.Hist.Quantile(50, 100)
	res.P99 = res.Hist.Quantile(99, 100)
	if got := res.Completed + res.Expired + res.ShedAdmission + res.ShedFault + res.ShedMemory; got != res.Offered {
		panic(fmt.Sprintf("workload: overload accounting leak: %d resolved of %d offered", got, res.Offered))
	}
	return res
}
