package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
)

// heavyPressureConfig is the configuration that exposed three latent GC/
// channel bugs while the open-loop latency harness was being built: many
// vprocs, small heaps, and a low global trigger, so steals, promotions,
// proxy dereferences, and all three collection flavors interleave densely.
func heavyPressureConfig(nv int) core.Config {
	cfg := core.DefaultConfig(numa.AMD48(), nv)
	cfg.Policy = mempage.PolicyLocal
	cfg.LocalHeapWords = 16 << 10
	cfg.ChunkWords = 2 << 10
	cfg.GlobalTriggerWords = 24 * cfg.ChunkWords
	return cfg
}

// TestServerHeavyTrafficGCPressure is the regression test for three bugs
// this configuration exposed (each deterministic, each corrupting or
// duplicating channel messages):
//
//  1. ProxyDeref read the proxy's local slot before its probe charge and
//     heap-busy spin, then promoted through the stale copy — chasing a dead
//     forwarding word in reclaimed nursery space into an arbitrary address
//     that got cached in the proxy's global slot.
//  2. The global collector neither traced through nor repaired local-heap
//     promotion forwarding words, so references that resolve through them
//     dangled into released from-space chunks, and heap walks that take
//     object lengths through them desynced after chunk reuse.
//  3. A vproc could service a global-collection preemption while a thief
//     was suspended mid-promotion out of its heap (only the allocation
//     safepoint waited for heapBusy, not checkPreempt/participateGlobal);
//     its minor+major then slid the old area under the thief, whose stale
//     addresses split live objects — messages were lost, duplicated, and
//     corrupted.
//
// The full-heap verifier runs after every collection phase, and the reply
// checksum must match the host-side reference exactly.
func TestServerHeavyTrafficGCPressure(t *testing.T) {
	cfg := heavyPressureConfig(16)
	cfg.Debug = true
	rt := core.MustNewRuntime(cfg)
	res := RunServer(rt, 10)
	if want := ServerSeq(cfg.Seed, 10); res.Check != want {
		t.Errorf("check %#x, want %#x (messages lost, duplicated, or corrupted)", res.Check, want)
	}
	if rt.Stats.GlobalGCs < 10 {
		t.Errorf("only %d global collections; the test needs dense GC interleaving", rt.Stats.GlobalGCs)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestLatencyAtFullMachine runs the latency harness at the sweep's largest
// configuration (48 vprocs under GC pressure) — the point that originally
// crashed on the seed's proxy-staleness bug within milliseconds.
func TestLatencyAtFullMachine(t *testing.T) {
	rt := core.MustNewRuntime(heavyPressureConfig(48))
	opt := LatencyOptions{Clients: 600, Requests: 6, MeanGapNs: 50_000}
	res := RunLatency(rt, opt)
	if want := LatencySeq(rt.Cfg.Seed, opt); res.Check != want {
		t.Errorf("check %#x, want %#x", res.Check, want)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Error("expected global collections under pressure")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}
