package workload

import (
	"sort"

	"repro/internal/core"
	"repro/internal/heap"
)

// Quicksort (§4.1): "sorts a sequence of 10,000,000 integers in parallel.
// This code is based on the NESL version of the algorithm." The NESL
// algorithm partitions the sequence into less/equal/greater subsequences by
// filtering (allocating fresh sequences) and recurses on the outer two in
// parallel — a heavily allocating, fork-join workload whose parallelism
// narrows at the top of the recursion, which is what limits its scaling in
// the paper (§4.2).

// qsBaseN is the default (scale=1) input size; the paper uses 10,000,000.
const qsBaseN = 96 << 10

// qsCutoff is the sequential cutoff in elements.
const qsCutoff = 512

// RunQuicksort executes the benchmark; Check is an FNV fold of the sorted
// sequence.
func RunQuicksort(rt *core.Runtime, scale float64) Result {
	n := scaled(qsBaseN, scale)
	d := RegisterRopeDescs(rt)

	var check uint64
	var t0, t1 int64
	rt.Run(func(vp *core.VProc) {
		rng := newRand(rt.Cfg.Seed ^ 0x9c5d)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.next() >> 16
		}
		in := ropeFromInts(vp, d, vals)
		inSlot := vp.PushRoot(in)

		// Timed region: the sort itself (the paper times the
		// benchmark computation, not input generation or validation).
		t0 = vp.Now()
		out := qsort(vp, d, inSlot)
		t1 = vp.Now()
		outSlot := vp.PushRoot(out)

		sorted := ropeToInts(vp, vp.Root(outSlot))
		for _, w := range sorted {
			check = fnv1a(check, w)
		}
		vp.PopRoots(2)
	})
	return Result{ElapsedNs: t1 - t0, Check: check, Stats: rt.TotalStats()}
}

// QuicksortSeq is the sequential reference: it sorts a copy of the same
// generated input host-side and returns the benchmark checksum.
func QuicksortSeq(seed uint64, scale float64) uint64 {
	n := scaled(qsBaseN, scale)
	rng := newRand(seed ^ 0x9c5d)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.next() >> 16
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	var check uint64
	for _, w := range vals {
		check = fnv1a(check, w)
	}
	return check
}

// qsort sorts the rope held in inSlot and returns the sorted rope. The
// returned address must be rooted by the caller before its next allocation.
func qsort(vp *core.VProc, d RopeDescs, inSlot int) heap.Addr {
	n := ropeLen(vp, vp.Root(inSlot))
	if n <= qsCutoff {
		return seqSortRope(vp, d, inSlot)
	}
	pivot := firstElem(vp, vp.Root(inSlot))

	// The three-way partition is itself a parallel rope operation, as in
	// the PML/NESL original; it is not a sequential bottleneck.
	partsSlot := vp.PushRoot(ropePartition3Par(vp, d, inSlot, pivot))
	lessSlot := vp.PushRoot(vp.LoadPtr(vp.Root(partsSlot), 0))
	eqSlot := vp.PushRoot(vp.LoadPtr(vp.Root(partsSlot), 1))
	grSlot := vp.PushRoot(vp.LoadPtr(vp.Root(partsSlot), 2))

	// Greater half as a stealable task; less half inline.
	t := vp.SpawnResult(func(vp *core.VProc, env core.Env) heap.Addr {
		s := vp.PushRoot(env.Get(vp, 0))
		r := qsort(vp, d, s)
		vp.PopRoots(1)
		return r
	}, vp.Root(grSlot))

	sortedLess := qsort(vp, d, lessSlot)
	vp.SetRoot(lessSlot, sortedLess)

	sortedGr := vp.JoinResult(t)
	vp.SetRoot(grSlot, sortedGr)

	// less ++ eq ++ greater.
	le := ropeCat(vp, d, lessSlot, eqSlot)
	vp.SetRoot(lessSlot, le)
	out := ropeCat(vp, d, lessSlot, grSlot)
	vp.PopRoots(4)
	return out
}

// firstElem returns the first element of a non-empty rope.
func firstElem(vp *core.VProc, a heap.Addr) uint64 {
	for {
		a = vp.Resolve(a)
		if vp.HeaderID(a) == heap.IDRaw {
			return vp.LoadWord(a, 0)
		}
		a = vp.LoadPtr(a, ropeLeftSlot)
	}
}

// seqSortRope flattens the rope in slot, sorts host-side (charging the
// comparison work), and rebuilds a rope.
func seqSortRope(vp *core.VProc, d RopeDescs, slot int) heap.Addr {
	vals := ropeToInts(vp, vp.Root(slot))
	n := len(vals)
	if n > 1 {
		logn := 1
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		vp.Compute(int64(2 * n * logn))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return ropeFromInts(vp, d, vals)
}
