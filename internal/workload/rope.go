package workload

import (
	"repro/internal/core"
	"repro/internal/heap"
)

// Ropes are the sequence representation of the implicitly-threaded
// workloads, mirroring Manticore's use of rope-structured parallel
// sequences: leaves are raw arrays of at most leafWords elements, interior
// concatenation nodes are mixed-type objects. Because leaves are small,
// sequences of any length flow through the fixed-size local heaps, and
// stolen subropes are promoted piecemeal by the lazy-promotion machinery.

// leafWords is the maximum leaf payload.
const leafWords = 256

// Rope mixed-object layout: [0] length (raw), [1] left, [2] right.
const (
	ropeLenSlot   = 0
	ropeLeftSlot  = 1
	ropeRightSlot = 2
	ropeSizeWords = 3
)

// RopeDescs holds the descriptor IDs a runtime needs for ropes.
type RopeDescs struct {
	Cat uint16
}

// RegisterRopeDescs installs the rope descriptors into a runtime's
// descriptor table.
func RegisterRopeDescs(rt *core.Runtime) RopeDescs {
	return RopeDescs{
		Cat: rt.Descs.Register("rope-cat", ropeSizeWords, []int{ropeLeftSlot, ropeRightSlot}),
	}
}

// ropeLen returns the element count of a rope, charging the length-field
// load for concatenation nodes.
func ropeLen(vp *core.VProc, a heap.Addr) int {
	if a == 0 {
		return 0
	}
	a = vp.Resolve(a)
	if vp.HeaderID(a) == heap.IDRaw {
		return vp.ObjectLen(a)
	}
	return int(vp.LoadWord(a, ropeLenSlot))
}

// ropeCat builds a concatenation node over the ropes in two root slots.
func ropeCat(vp *core.VProc, d RopeDescs, leftSlot, rightSlot int) heap.Addr {
	ll := ropeLen(vp, vp.Root(leftSlot))
	rl := ropeLen(vp, vp.Root(rightSlot))
	if ll == 0 {
		return vp.Root(rightSlot)
	}
	if rl == 0 {
		return vp.Root(leftSlot)
	}
	return vp.AllocMixed(d.Cat,
		map[int]uint64{ropeLenSlot: uint64(ll + rl)},
		map[int]int{ropeLeftSlot: leftSlot, ropeRightSlot: rightSlot})
}

// ropeFromInts builds a balanced rope over the values; used by input
// generators. The caller receives an unrooted address.
func ropeFromInts(vp *core.VProc, d RopeDescs, vals []uint64) heap.Addr {
	if len(vals) <= leafWords {
		return vp.AllocRaw(vals)
	}
	mid := len(vals) / 2
	l := ropeFromInts(vp, d, vals[:mid])
	ls := vp.PushRoot(l)
	r := ropeFromInts(vp, d, vals[mid:])
	rs := vp.PushRoot(r)
	cat := ropeCat(vp, d, ls, rs)
	vp.PopRoots(2)
	return cat
}

// ropeToInts flattens a rope, charging streamed reads of every leaf.
func ropeToInts(vp *core.VProc, a heap.Addr) []uint64 {
	var out []uint64
	var walk func(a heap.Addr)
	walk = func(a heap.Addr) {
		if a == 0 {
			return
		}
		a = vp.Resolve(a)
		if vp.HeaderID(a) == heap.IDRaw {
			out = append(out, vp.ReadBlock(a)...)
			return
		}
		// Hold left and right as locals before descending: flattening
		// itself performs no allocation, so they cannot move mid-walk.
		p := vp.ReadBlock(a)
		l, r := heap.Addr(p[ropeLeftSlot]), heap.Addr(p[ropeRightSlot])
		walk(l)
		walk(r)
	}
	walk(a)
	return out
}

// leafElems copies a leaf's elements out of the heap, charging the streamed
// read and the batched per-element predicate compute. By default the two
// charges run as inline steps (the hot loop of the NESL-style partition and
// filter kernels, whose fine interleaving across vprocs otherwise costs a
// goroutine handoff per charge); the NoStepKernels ablation issues them as
// the two direct Advances. The copy is taken at the read instant because
// the caller's flushes allocate, which may move the leaf.
func leafElems(vp *core.VProc, a heap.Addr) []uint64 {
	if vp.Runtime().Cfg.NoStepKernels {
		words := append([]uint64(nil), vp.ReadBlock(a)...)
		vp.Compute(int64(len(words)))
		return words
	}
	var words []uint64
	phase := 0
	vp.RunSteps(func() (int64, bool) {
		switch phase {
		case 0:
			p, c := vp.CostReadBlock(a, 0)
			words = append(words, p...)
			phase = 1
			return c, false
		case 1:
			phase = 2
			if len(words) == 0 {
				return 0, true // Compute(0) charges nothing
			}
			return int64(len(words)), false
		}
		return 0, true
	})
	return words
}

// ropeFilter builds a new rope containing the elements for which keep
// returns true, charging a streamed read of the input and allocation of the
// output. The input rope is identified by a root slot (filtering allocates,
// so the input may move mid-walk).
func ropeFilter(vp *core.VProc, d RopeDescs, slot int, keep func(uint64) bool) heap.Addr {
	var buf []uint64 // host-side staging for the current output leaf
	outSlot := vp.PushRoot(0)

	flush := func() {
		if len(buf) == 0 {
			return
		}
		leaf := vp.AllocRaw(buf)
		ls := vp.PushRoot(leaf)
		cat := ropeCat(vp, d, outSlot, ls)
		vp.PopRoots(1)
		vp.SetRoot(outSlot, cat)
		buf = buf[:0]
	}

	var walk func(rs int)
	walk = func(rs int) {
		a := vp.Resolve(vp.Root(rs))
		if a == 0 {
			return
		}
		if vp.HeaderID(a) == heap.IDRaw {
			// Copy the leaf out before iterating: flush() allocates,
			// and a collection may move the leaf (and reuse its old
			// words) while a heap-aliasing slice is still being read.
			words := leafElems(vp, a)
			for _, w := range words {
				if keep(w) {
					buf = append(buf, w)
					if len(buf) == leafWords {
						flush()
					}
				}
			}
			return
		}
		p := vp.ReadBlock(a)
		l := vp.PushRoot(heap.Addr(p[ropeLeftSlot]))
		r := vp.PushRoot(heap.Addr(p[ropeRightSlot]))
		walk(l)
		walk(r)
		vp.PopRoots(2)
	}
	walk(slot)
	flush()
	out := vp.Root(outSlot)
	vp.PopRoots(1)
	return out
}

// filterGrain is the element count below which parallel filters run
// sequentially.
const filterGrain = 2048

// ropePartition3 partitions the rope in slot by pivot into (less, equal,
// greater) in a single read pass — NESL's three-way partition. The result
// is returned as a 3-element vector object (so it can flow through the
// task-result machinery as one reference).
func ropePartition3(vp *core.VProc, d RopeDescs, slot int, pivot uint64) heap.Addr {
	outs := [3]int{vp.PushRoot(0), vp.PushRoot(0), vp.PushRoot(0)}
	var bufs [3][]uint64

	flush := func(k int) {
		if len(bufs[k]) == 0 {
			return
		}
		leaf := vp.AllocRaw(bufs[k])
		ls := vp.PushRoot(leaf)
		cat := ropeCat(vp, d, outs[k], ls)
		vp.PopRoots(1)
		vp.SetRoot(outs[k], cat)
		bufs[k] = bufs[k][:0]
	}

	var walk func(rs int)
	walk = func(rs int) {
		a := vp.Resolve(vp.Root(rs))
		if a == 0 {
			return
		}
		if vp.HeaderID(a) == heap.IDRaw {
			words := leafElems(vp, a)
			for _, w := range words {
				k := 1
				if w < pivot {
					k = 0
				} else if w > pivot {
					k = 2
				}
				bufs[k] = append(bufs[k], w)
				if len(bufs[k]) == leafWords {
					flush(k)
				}
			}
			return
		}
		p := vp.ReadBlock(a)
		l := vp.PushRoot(heap.Addr(p[ropeLeftSlot]))
		r := vp.PushRoot(heap.Addr(p[ropeRightSlot]))
		walk(l)
		walk(r)
		vp.PopRoots(2)
	}
	walk(slot)
	for k := 0; k < 3; k++ {
		flush(k)
	}
	v := vp.AllocVector([]int{outs[0], outs[1], outs[2]})
	vp.PopRoots(3)
	return v
}

// ropePartition3Par is the parallel three-way partition: subropes partition
// as fork-join tasks and the three components concatenate pairwise.
func ropePartition3Par(vp *core.VProc, d RopeDescs, slot int, pivot uint64) heap.Addr {
	a := vp.Resolve(vp.Root(slot))
	vp.SetRoot(slot, a)
	if a == 0 || vp.HeaderID(a) == heap.IDRaw || ropeLen(vp, a) <= filterGrain {
		return ropePartition3(vp, d, slot, pivot)
	}
	p := vp.ReadBlock(a)
	lS := vp.PushRoot(heap.Addr(p[ropeLeftSlot]))
	rS := vp.PushRoot(heap.Addr(p[ropeRightSlot]))

	t := vp.SpawnResult(func(vp *core.VProc, env core.Env) heap.Addr {
		s := vp.PushRoot(env.Get(vp, 0))
		out := ropePartition3Par(vp, d, s, pivot)
		vp.PopRoots(1)
		return out
	}, vp.Root(rS))

	lp := ropePartition3Par(vp, d, lS, pivot)
	vp.SetRoot(lS, lp)
	rp := vp.JoinResult(t)
	vp.SetRoot(rS, rp)

	// Concatenate component-wise: out[k] = left[k] ++ right[k].
	parts := [3]int{vp.PushRoot(0), vp.PushRoot(0), vp.PushRoot(0)}
	for k := 0; k < 3; k++ {
		la := vp.PushRoot(vp.LoadPtr(vp.Root(lS), k))
		ra := vp.PushRoot(vp.LoadPtr(vp.Root(rS), k))
		vp.SetRoot(parts[k], ropeCat(vp, d, la, ra))
		vp.PopRoots(2)
	}
	out := vp.AllocVector([]int{parts[0], parts[1], parts[2]})
	vp.PopRoots(5)
	return out
}

// ropeFilterPar is the parallel filter: in PML, sequence operations like
// filter are themselves implicitly parallel, which is what gives NESL-style
// quicksort its polylogarithmic span. Subropes are filtered as fork-join
// tasks; stolen halves are promoted lazily like any other work.
func ropeFilterPar(vp *core.VProc, d RopeDescs, slot int, keep func(uint64) bool) heap.Addr {
	a := vp.Resolve(vp.Root(slot))
	vp.SetRoot(slot, a)
	if a == 0 || vp.HeaderID(a) == heap.IDRaw || ropeLen(vp, a) <= filterGrain {
		return ropeFilter(vp, d, slot, keep)
	}
	p := vp.ReadBlock(a)
	lS := vp.PushRoot(heap.Addr(p[ropeLeftSlot]))
	rS := vp.PushRoot(heap.Addr(p[ropeRightSlot]))

	t := vp.SpawnResult(func(vp *core.VProc, env core.Env) heap.Addr {
		s := vp.PushRoot(env.Get(vp, 0))
		out := ropeFilterPar(vp, d, s, keep)
		vp.PopRoots(1)
		return out
	}, vp.Root(rS))

	lf := ropeFilterPar(vp, d, lS, keep)
	vp.SetRoot(lS, lf)
	rf := vp.JoinResult(t)
	vp.SetRoot(rS, rf)
	out := ropeCat(vp, d, lS, rS)
	vp.PopRoots(2)
	return out
}
