package workload

import (
	"repro/internal/core"
	"repro/internal/heap"
)

// Synthetic (§4.1 mentions one synthetic benchmark alongside the five
// ported programs): a pure allocation-churn workload with a controllable
// survival fraction. Each task builds small trees; most die in the nursery
// (exercising minor collections), a fraction survives into a per-task list
// (exercising majors and promotions), and the shared tail forces global
// collections. Used by the ablation benchmarks, where the GC behaviour must
// dominate the measurement.

const (
	synBaseOps   = 6000 // tree builds per task at scale 1
	synTreeDepth = 4
	synKeepEvery = 20 // one tree in synKeepEvery survives
)

// RunSynthetic executes the benchmark; Check folds the surviving values.
func RunSynthetic(rt *core.Runtime, scale float64) Result {
	ops := scaled(synBaseOps, scale)
	nv := rt.Cfg.NumVProcs
	checks := make([]uint64, nv)
	elapsed := rt.Run(func(vp *core.VProc) {
		perTask := ops / nv
		if perTask < 1 {
			perTask = 1
		}
		for t := 0; t < nv; t++ {
			t := t
			vp.Spawn(func(vp *core.VProc, _ core.Env) {
				checks[t] = synChurn(vp, uint64(t+1), perTask)
			})
		}
	})
	var check uint64
	for _, c := range checks {
		check = fnv1a(check, c)
	}
	return Result{ElapsedNs: elapsed, Check: check, Stats: rt.TotalStats()}
}

// synChurn performs the allocation loop and returns a checksum of the
// survivors.
func synChurn(vp *core.VProc, salt uint64, ops int) uint64 {
	listSlot := vp.PushRoot(0)
	for i := 0; i < ops; i++ {
		tr := synTree(vp, synTreeDepth, salt+uint64(i))
		if i%synKeepEvery == 0 {
			ts := vp.PushRoot(tr)
			cell := vp.AllocVector([]int{ts, listSlot})
			vp.PopRoots(1)
			vp.SetRoot(listSlot, cell)
		}
		vp.Compute(40)
	}
	// Fold the survivors.
	var check uint64
	a := vp.Root(listSlot)
	for a != 0 {
		a = vp.Resolve(a)
		p := vp.ReadBlock(a)
		check = fnv1a(check, synSum(vp, heap.Addr(p[0])))
		a = heap.Addr(p[1])
	}
	vp.PopRoots(1)
	return check
}

// synTree builds a small binary tree.
func synTree(vp *core.VProc, depth int, val uint64) heap.Addr {
	if depth == 0 {
		return vp.AllocRaw([]uint64{val})
	}
	l := synTree(vp, depth-1, val*2+1)
	ls := vp.PushRoot(l)
	r := synTree(vp, depth-1, val*2+2)
	rs := vp.PushRoot(r)
	v := vp.AllocVector([]int{ls, rs})
	vp.PopRoots(2)
	return v
}

// synSum folds a tree.
func synSum(vp *core.VProc, a heap.Addr) uint64 {
	a = vp.Resolve(a)
	if vp.HeaderID(a) == heap.IDRaw {
		return vp.LoadWord(a, 0)
	}
	p := vp.ReadBlock(a)
	l, r := heap.Addr(p[0]), heap.Addr(p[1])
	return synSum(vp, l)*3 + synSum(vp, r)
}

// SyntheticSeq computes the reference checksum host-side.
func SyntheticSeq(nvprocs int, scale float64) uint64 {
	ops := scaled(synBaseOps, scale)
	perTask := ops / nvprocs
	if perTask < 1 {
		perTask = 1
	}
	var hostTree func(depth int, val uint64) uint64
	hostTree = func(depth int, val uint64) uint64 {
		if depth == 0 {
			return val
		}
		return hostTree(depth-1, val*2+1)*3 + hostTree(depth-1, val*2+2)
	}
	var check uint64
	for t := 0; t < nvprocs; t++ {
		salt := uint64(t + 1)
		var tc uint64
		// The list is folded newest-first.
		for i := ((perTask - 1) / synKeepEvery) * synKeepEvery; i >= 0; i -= synKeepEvery {
			tc = fnv1a(tc, hostTree(synTreeDepth, salt+uint64(i)))
		}
		check = fnv1a(check, tc)
	}
	return check
}
