package workload

import (
	"testing"

	"repro/internal/core"
)

// latTestOptions is a small harness shape for correctness tests.
func latTestOptions() LatencyOptions {
	return LatencyOptions{Clients: 40, Requests: 5, MeanGapNs: 60_000}
}

// latPressureConfig provokes every collection flavor during the run.
func latPressureConfig(nv int) core.Config {
	cfg := testConfig(nv)
	cfg.GlobalTriggerWords = 2 * cfg.ChunkWords
	return cfg
}

func TestHistBucketRoundTrip(t *testing.T) {
	// Every sample must land in a bucket whose [low, nextLow) range
	// contains it, and bucket lows must be strictly increasing.
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, (1 << 40) + 12345, 1<<62 + 7}
	for _, v := range vals {
		b := histBucketOf(v)
		lo := histBucketLow(b)
		hi := int64(1<<63 - 1)
		if b+1 < histBuckets {
			hi = histBucketLow(b + 1)
		}
		if v < lo || v >= hi {
			t.Errorf("value %d mapped to bucket %d = [%d, %d)", v, b, lo, hi)
		}
	}
	for i := 1; i < histBuckets; i++ {
		if histBucketLow(i) <= histBucketLow(i-1) {
			t.Fatalf("bucket lows not increasing at %d: %d <= %d", i, histBucketLow(i), histBucketLow(i-1))
		}
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	// Quantiles report bucket lower bounds: within one bucket (~3%) below
	// the exact order statistic, never above it.
	cases := []struct {
		num, den, exact int64
	}{{50, 100, 500}, {90, 100, 900}, {99, 100, 990}, {999, 1000, 999}, {1, 1000, 1}}
	for _, c := range cases {
		got := h.Quantile(c.num, c.den)
		if got > c.exact || got < c.exact-c.exact/16-1 {
			t.Errorf("Quantile(%d/%d) = %d, want within a bucket below %d", c.num, c.den, got, c.exact)
		}
	}
	var empty Hist
	if empty.Quantile(50, 100) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

// TestLatencyMatchesReference: the reply checksum equals the host-side
// reference at every vproc count — message contents are never corrupted by
// the timer-driven scheduling.
func TestLatencyMatchesReference(t *testing.T) {
	opt := latTestOptions()
	want := LatencySeq(testConfig(1).Seed, opt)
	for _, nv := range []int{1, 2, 4} {
		cfg := testConfig(nv)
		cfg.Debug = nv == 2
		rt := core.MustNewRuntime(cfg)
		res := RunLatency(rt, opt)
		if res.Check != want {
			t.Errorf("latency at %d vprocs: check %#x, want %#x", nv, res.Check, want)
		}
		if res.Requests != opt.Clients*opt.Requests {
			t.Errorf("completed %d requests, want %d", res.Requests, opt.Clients*opt.Requests)
		}
		if int(res.Hist.N()) != res.Requests {
			t.Errorf("histogram holds %d samples, want %d", res.Hist.N(), res.Requests)
		}
		if res.Stats.TimersFired < int64(res.Requests) {
			t.Errorf("TimersFired = %d; every request send is timer-fired (want >= %d)",
				res.Stats.TimersFired, res.Requests)
		}
	}
}

// TestLatencyDeterministicRerun: the full result — percentiles, histogram,
// attribution bands — is bit-identical across reruns, including under GC
// pressure.
func TestLatencyDeterministicRerun(t *testing.T) {
	run := func() LatencyResult {
		rt := core.MustNewRuntime(latPressureConfig(4))
		return RunLatency(rt, latTestOptions())
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("latency results diverged across reruns:\n  %+v\nvs\n  %+v", a.All, b.All)
		if a.P50 != b.P50 || a.P99 != b.P99 {
			t.Logf("percentiles: %d/%d/%d/%d vs %d/%d/%d/%d", a.P50, a.P90, a.P99, a.P999, b.P50, b.P90, b.P99, b.P999)
		}
	}
}

// TestLatencyAttributionUnderPressure: with tiny heaps and a low global
// trigger the run must cross global collections, and the attribution must
// see them: requests alive during a stop-the-world pause carry its full
// duration, so the tail band's global share must be populated and the p99.9
// tail must sit above the median.
func TestLatencyAttributionUnderPressure(t *testing.T) {
	rt := core.MustNewRuntime(latPressureConfig(4))
	res := RunLatency(rt, latTestOptions())
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("pressure config did not force a global collection")
	}
	if res.P999 < res.P50 {
		t.Errorf("p99.9 %d < p50 %d", res.P999, res.P50)
	}
	if res.All.Count != res.Requests {
		t.Errorf("All band covers %d of %d requests", res.All.Count, res.Requests)
	}
	if res.Tail.Count == 0 || res.Tail.Count > res.All.Count {
		t.Errorf("Tail band covers %d requests (all: %d)", res.Tail.Count, res.All.Count)
	}
	if res.Tail.MeanNs < res.All.MeanNs {
		t.Errorf("tail mean %d below overall mean %d", res.Tail.MeanNs, res.All.MeanNs)
	}
	if res.All.GlobalGCs == 0 {
		t.Error("no request lifetime overlapped a global collection")
	}
	// The acceptance figure: stop-the-world pauses dominate the p99.9 tail
	// — the mean global overlap in the tail band exceeds the (normalized)
	// local overlap and is a substantial share of tail latency.
	if res.Tail.Global.MeanNs <= res.Tail.Local.MeanNs {
		t.Errorf("tail global overlap %d ns <= local %d ns; expected global pauses to dominate",
			res.Tail.Global.MeanNs, res.Tail.Local.MeanNs)
	}
	if res.Tail.GlobalShare() < 0.25 {
		t.Errorf("global share of tail latency = %.2f, want >= 0.25 (tail mean %d, global %d)",
			res.Tail.GlobalShare(), res.Tail.MeanNs, res.Tail.Global.MeanNs)
	}
}

// TestLatencyVProcCountIndependentContent: latencies differ across vproc
// counts (more parallelism, shorter queues) but content never does; and the
// checksum from the Spec entry point matches the direct API.
func TestLatencySpecEntryPoint(t *testing.T) {
	spec, err := ByName("latency")
	if err != nil {
		t.Fatal(err)
	}
	res := runAt(t, spec, 2, 0.25, false)
	want := LatencySeq(testConfig(1).Seed, DefaultLatencyOptions(0.25))
	if res.Check != want {
		t.Errorf("spec check %#x, want %#x", res.Check, want)
	}
}
