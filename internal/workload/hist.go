package workload

import "math/bits"

// Hist is a deterministic log-bucketed histogram of non-negative int64
// samples (latencies in virtual nanoseconds). Buckets are HDR-style: exact
// for values below 2^histSubBits, then histSub sub-buckets per power-of-two
// octave, bounding the relative quantization error at 1/histSub (~3%).
// Everything is integer arithmetic on fixed bucket boundaries, so two runs
// that record the same samples — in any order — produce bit-identical
// counts and quantiles; this is what makes the latency baselines exact
// drift gates rather than tolerance checks.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers the full non-negative int64 range: histSub exact
	// small-value buckets plus (63 - histSubBits) octaves of histSub.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// Hist records samples; the zero value is ready to use.
type Hist struct {
	counts [histBuckets]int64
	n      int64
}

// histBucketOf maps a sample to its bucket index. Negative samples clamp to
// zero (they cannot occur for latencies; the clamp keeps the histogram total
// consistent regardless).
func histBucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // v in [2^exp, 2^(exp+1)), exp >= histSubBits
	sub := int(v>>(uint(exp)-histSubBits)) & (histSub - 1)
	return histSub + (exp-histSubBits)*histSub + sub
}

// histBucketLow returns the smallest value mapped to bucket i — the value a
// quantile query reports for samples landing in that bucket.
func histBucketLow(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	exp := histSubBits + (i-histSub)/histSub
	sub := (i - histSub) % histSub
	return int64(histSub+sub) << (uint(exp) - histSubBits)
}

// Record adds one sample.
func (h *Hist) Record(v int64) {
	h.counts[histBucketOf(v)]++
	h.n++
}

// N returns the number of recorded samples.
func (h *Hist) N() int64 { return h.n }

// Quantile returns the histogram's num/den quantile: the lower bound of the
// bucket holding the ceil(n*num/den)-th smallest sample (e.g. Quantile(999,
// 1000) is p99.9). It returns 0 on an empty histogram.
func (h *Hist) Quantile(num, den int64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := (h.n*num + den - 1) / den
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= rank {
			return histBucketLow(i)
		}
	}
	// Unreachable: cum reaches h.n >= rank.
	return histBucketLow(histBuckets - 1)
}
