package workload

import (
	"repro/internal/core"
	"repro/internal/heap"
)

// Server (beyond the paper's five benchmarks): a message-passing server
// workload in the shape the paper's CML constructs exist for. N client
// workers issue request/response round-trips over channels to a pool of
// server workers; requests carry mixed payload sizes split across a
// small-message and a large-message request channel, and each server
// receives with a Select over both (large requests first). Every message
// travels by object proxy, so the workload exercises the whole concurrency
// stack: proxy creation, lazy cross-vproc promotion, heap-resident pending
// queues surviving collections, rendezvous handoffs, and continuation
// parking.
//
// Clients send their full request budget before collecting replies, and
// both clients and servers advance through RecvThen/SelectThen continuation
// chains rather than blocking frames; together with fixed per-server quotas
// summing to the request total, this makes the workload deadlock-free at
// any vproc count (a parked task can always be resumed by whichever vproc
// receives its message; a parked frame could not).
const (
	srvClients  = 12 // client workers at scale 1
	srvRequests = 20 // requests per client at scale 1

	srvSmallMin, srvSmallSpan = 4, 12  // small request payload words
	srvLargeMin, srvLargeSpan = 48, 72 // large request payload words

	srvComputePerWordNs = 6 // server-side processing per payload word
)

// serverParams derives the workload shape from the vproc count and scale.
func serverParams(nv int, scale float64) (clients, requests, servers int) {
	clients = scaled(srvClients, scale)
	requests = scaled(srvRequests, scale)
	servers = nv
	if servers > clients {
		servers = clients
	}
	return
}

// RunServer executes the benchmark. Check folds every client's reply
// checksums and is identical across vproc counts (reply contents depend
// only on request contents, which are generated per client from the
// configured seed).
func RunServer(rt *core.Runtime, scale float64) Result {
	clients, requests, servers := serverParams(rt.Cfg.NumVProcs, scale)
	total := clients * requests
	seed := rt.Cfg.Seed

	// Request channels are unbounded mailboxes: clients must be able to
	// publish their whole budget without blocking (see the deadlock note
	// above). Replies flow over one channel per client.
	small := rt.NewChannel()
	large := rt.NewChannel()
	replies := make([]*core.Channel, clients)
	for i := range replies {
		replies[i] = rt.NewChannel()
	}
	checks := make([]uint64, clients)

	elapsed := rt.Run(func(vp *core.VProc) {
		// The server pool: each worker consumes a fixed share of the
		// request total (shares sum to the total, so every request is
		// consumed exactly once and every chain terminates).
		base, extra := total/servers, total%servers
		for s := 0; s < servers; s++ {
			quota := base
			if s < extra {
				quota++
			}
			if quota == 0 {
				continue
			}
			vp.Spawn(func(svp *core.VProc, _ core.Env) {
				srvServe(svp, large, small, replies, quota)
			})
		}
		for c := 0; c < clients; c++ {
			c := c
			vp.Spawn(func(cvp *core.VProc, _ core.Env) {
				srvClient(cvp, seed, c, requests, small, large, replies[c], checks)
			})
		}
	})

	var check uint64
	for _, c := range checks {
		check = fnv1a(check, c)
	}
	return Result{ElapsedNs: elapsed, Check: check, Stats: rt.TotalStats()}
}

// srvServe is one server worker's continuation chain: Select a request
// (large channel first), process it, reply, recurse until the quota is
// spent.
func srvServe(vp *core.VProc, large, small *core.Channel, replies []*core.Channel, quota int) {
	if quota == 0 {
		return
	}
	vp.SelectThen([]*core.Channel{large, small}, nil, func(vp *core.VProc, _ core.Env, _ int, msg heap.Addr) {
		words := vp.ObjectLen(msg)
		p := vp.ReadBlockCompute(msg, int64(words)*srvComputePerWordNs)
		client, seq := int(p[0]), p[1]
		var sum uint64
		for _, w := range p {
			sum = fnv1a(sum, w)
		}
		// p (and msg itself) are dead once the fold is done; the reply
		// allocation below may collect them.
		out := vp.AllocRaw([]uint64{seq, sum})
		os := vp.PushRoot(out)
		replies[client].Send(vp, os)
		vp.PopRoots(1)
		srvServe(vp, large, small, replies, quota-1)
	})
}

// ovServe is one overload-pool server worker: receive from the bounded
// request lane, apply the admission policy's server side, reply, re-park.
// Unlike srvServe there is no quota — the worker runs until the lane
// closes (the harness closes it when every request has resolved), observed
// as a nil message. Under AdmitDeadline a request whose remaining service
// time cannot meet its deadline is nacked after reading only its 3-word
// header, so a saturated server spends its time on requests that can still
// succeed — the mechanism behind the goodput plateau.
func ovServe(vp *core.VProc, st *ovState) {
	st.lane.RecvThen(vp, nil, func(vp *core.VProc, _ core.Env, msg heap.Addr) {
		if msg == 0 {
			return // lane closed: pool shutdown
		}
		words := vp.ObjectLen(msg)
		if st.opt.Admission == AdmitDeadline {
			client := int(vp.LoadWord(msg, 0))
			seq := vp.LoadWord(msg, 1)
			deadline := int64(vp.LoadWord(msg, 2))
			if vp.Now()+int64(words)*st.opt.ServiceNsPerWord > deadline {
				out := vp.AllocRaw([]uint64{seq, 0, 1})
				os := vp.PushRoot(out)
				st.replies[client].Send(vp, os)
				vp.PopRoots(1)
				ovServe(vp, st)
				return
			}
		}
		p := vp.ReadBlockCompute(msg, int64(words)*st.opt.ServiceNsPerWord)
		client, seq := int(p[0]), p[1]
		var sum uint64
		for _, w := range p {
			sum = fnv1a(sum, w)
		}
		// p (and msg) are dead after the fold; the reply allocation may
		// collect them.
		out := vp.AllocRaw([]uint64{seq, sum, 0})
		os := vp.PushRoot(out)
		st.replies[client].Send(vp, os)
		vp.PopRoots(1)
		ovServe(vp, st)
	})
}

// srvClient publishes the client's full request budget (never blocking:
// the request mailboxes are unbounded), then collects the replies through a
// continuation chain.
func srvClient(vp *core.VProc, seed uint64, c, requests int, small, large, reply *core.Channel, checks []uint64) {
	rng := newRand(srvClientSeed(seed, c))
	for r := 0; r < requests; r++ {
		ch, words := srvRequestShape(rng)
		buf := make([]uint64, words)
		buf[0], buf[1] = uint64(c), uint64(r)
		for i := 2; i < words; i++ {
			buf[i] = rng.next()
		}
		dst := small
		if ch == 1 {
			dst = large
		}
		a := vp.AllocRaw(buf)
		s := vp.PushRoot(a)
		dst.Send(vp, s)
		vp.PopRoots(1)
	}
	srvCollect(vp, reply, requests, c, checks, 0)
}

// srvCollect folds one reply and re-parks for the next; the fold is
// commutative (replies from different servers may interleave in any
// deterministic order, and the checksum must not depend on vproc count).
func srvCollect(vp *core.VProc, reply *core.Channel, remaining, c int, checks []uint64, acc uint64) {
	if remaining == 0 {
		checks[c] = acc
		return
	}
	reply.RecvThen(vp, nil, func(vp *core.VProc, _ core.Env, msg heap.Addr) {
		p := vp.ReadBlock(msg)
		h := fnv1a(fnv1a(0, p[0]), p[1])
		srvCollect(vp, reply, remaining-1, c, checks, acc+h)
	})
}

// srvClientSeed derives a per-client generator seed.
func srvClientSeed(seed uint64, c int) uint64 {
	return seed ^ uint64(c+1)*0x9E3779B97F4A7C15
}

// srvRequestShape draws the next request's channel (0 = small, 1 = large)
// and payload size. One request in four is large.
func srvRequestShape(rng *xorshift) (ch, words int) {
	if rng.next()%4 == 0 {
		return 1, srvLargeMin + int(rng.next()%srvLargeSpan)
	}
	return 0, srvSmallMin + int(rng.next()%srvSmallSpan)
}

// ServerSeq computes the expected checksum host-side. It is independent of
// the vproc count: the simulated run must match it at any parallelism.
func ServerSeq(seed uint64, scale float64) uint64 {
	clients := scaled(srvClients, scale)
	requests := scaled(srvRequests, scale)
	var check uint64
	for c := 0; c < clients; c++ {
		rng := newRand(srvClientSeed(seed, c))
		var acc uint64
		for r := 0; r < requests; r++ {
			_, words := srvRequestShape(rng)
			var sum uint64
			sum = fnv1a(sum, uint64(c))
			sum = fnv1a(sum, uint64(r))
			for i := 2; i < words; i++ {
				sum = fnv1a(sum, rng.next())
			}
			acc += fnv1a(fnv1a(0, uint64(r)), sum)
		}
		check = fnv1a(check, acc)
	}
	return check
}
