package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/numa"
)

// foTestOptions is a moderate-load failover shape for the small test
// machine: mean request ~28 words at 300 ns/word is ~8.4 us of service, and
// 2 replicas x 4 server chains on 4 vprocs serve ~0.48 requests/us while 40
// clients at a 100 us gap offer ~0.4/us — under capacity, so the crash-free
// baseline completes everything and a crash leaves measurable headroom for
// the survivors to absorb the rerouted load.
func foTestOptions() FailoverOptions {
	opt := DefaultFailoverOptions(1.0)
	opt.Clients = 40
	opt.Requests = 4
	opt.MeanGapNs = 100_000
	return opt
}

func runFailoverAt(nv int, opt FailoverOptions) FailoverResult {
	return RunFailover(core.MustNewRuntime(testConfig(nv)), opt)
}

// foCheckPartition asserts the exact resolution partition (RunFailover also
// panics on a leak; the test gives a readable failure first).
func foCheckPartition(t *testing.T, label string, res FailoverResult) {
	t.Helper()
	if got := res.Completed + res.FailedDeadline + res.LostClient + res.ShedMemory; got != res.Offered {
		t.Errorf("%s: %d resolved of %d offered", label, got, res.Offered)
	}
	if res.GoodPre+res.GoodPost != res.GoodSLO {
		t.Errorf("%s: good split %d+%d != %d", label, res.GoodPre, res.GoodPost, res.GoodSLO)
	}
	if res.OfferedPre+res.OfferedPost != res.Offered {
		t.Errorf("%s: offered split %d+%d != %d", label, res.OfferedPre, res.OfferedPost, res.Offered)
	}
	if res.LostPre+res.LostPost != res.LostClient {
		t.Errorf("%s: lost split %d+%d != %d", label, res.LostPre, res.LostPost, res.LostClient)
	}
	if int64(res.Completed) != res.Hist.N() {
		t.Errorf("%s: %d completions but %d latency samples", label, res.Completed, res.Hist.N())
	}
}

// TestFailoverDeterministicRerun: the full result — makespan, checksum,
// every counter, the latency histogram, and the runtime statistics — is
// bit-identical across reruns for every crash kind, with and without
// hedging. FailoverResult is a comparable value struct, so one == catches
// any divergence.
func TestFailoverDeterministicRerun(t *testing.T) {
	for _, kind := range []CrashKind{CrashNone, CrashVProc} {
		for _, hedge := range []int64{0, 30_000} {
			opt := foTestOptions()
			opt.Crash = kind
			if kind != CrashNone {
				opt.CrashNs = 150_000
			}
			opt.HedgeDelayNs = hedge
			r1 := runFailoverAt(4, opt)
			r2 := runFailoverAt(4, opt)
			if r1 != r2 {
				t.Errorf("%v hedge=%d: reruns diverged:\n%+v\n%+v", kind, hedge, r1, r2)
			}
			if kind == CrashVProc && r1.Crashes != 1 {
				t.Errorf("%v: Crashes = %d, want 1", kind, r1.Crashes)
			}
			if hedge > 0 && r1.Hedged == 0 {
				t.Errorf("%v: hedging enabled but no hedge was ever sent", kind)
			}
		}
	}
}

// TestFailoverCrashFreeBaseline: with no crash and the pool under capacity,
// the harness is a plain replicated server — everything completes, nothing
// is lost, rerouted, or shed, and no crash code ran.
func TestFailoverCrashFreeBaseline(t *testing.T) {
	res := runFailoverAt(4, foTestOptions())
	foCheckPartition(t, "crash-free", res)
	if res.Completed != res.Offered {
		t.Errorf("crash-free: %d of %d completed", res.Completed, res.Offered)
	}
	if res.LostClient != 0 || res.Rerouted != 0 || res.Crashes != 0 || res.ShedMemory != 0 {
		t.Errorf("crash-free: lost %d rerouted %d crashes %d shed %d",
			res.LostClient, res.Rerouted, res.Crashes, res.ShedMemory)
	}
	if res.Stats.LostTasks != 0 || res.Stats.LostConts != 0 || res.Stats.LostTimers != 0 {
		t.Errorf("crash-free: runtime reports lost work: %+v", res.Stats)
	}
}

// TestFailoverVProcCrashReroutes: killing one replica's home vproc
// mid-window trips its breaker (SendCrashed), reroutes traffic to the
// survivor, and the run still resolves every request exactly once. The
// crashed lane reports itself crashed, not merely closed.
func TestFailoverVProcCrashReroutes(t *testing.T) {
	opt := foTestOptions()
	opt.Crash = CrashVProc
	opt.CrashNs = 150_000
	res := runFailoverAt(4, opt)
	foCheckPartition(t, "vproc-crash", res)
	if res.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", res.Crashes)
	}
	if res.Rerouted == 0 {
		t.Error("no attempt ever observed the crashed lane (SendCrashed)")
	}
	if res.BreakerTrips == 0 {
		t.Error("the dead replica's breaker never tripped")
	}
	if res.GoodPost == 0 {
		t.Error("no post-crash request met its SLO — the survivor never absorbed the load")
	}
	// Lost work is reported, not silently dropped: the crashed vproc held
	// parked server continuations and/or queued tasks.
	if res.Stats.LostTasks == 0 && res.Stats.LostConts == 0 {
		t.Errorf("crash reported no lost work: %+v", res.Stats)
	}
}

// TestFailoverHedgingMasksCrash: with hedging on, a request whose primary
// landed on the doomed replica is covered by a hedge copy on the survivor,
// so hedge wins appear and goodput does not collapse while the breaker is
// still learning about the crash.
func TestFailoverHedgingMasksCrash(t *testing.T) {
	opt := foTestOptions()
	opt.Crash = CrashVProc
	opt.CrashNs = 150_000
	opt.HedgeDelayNs = 20_000
	res := runFailoverAt(4, opt)
	foCheckPartition(t, "hedged", res)
	if res.Hedged == 0 {
		t.Fatal("no hedges sent")
	}
	if res.HedgeWins == 0 {
		t.Error("no hedge ever resolved a request")
	}
}

// TestFailoverValidation: option errors are rejected at the API boundary,
// before any vproc runs.
func TestFailoverValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FailoverOptions)
	}{
		{"attempt exceeds deadline", func(o *FailoverOptions) { o.AttemptNs = o.DeadlineNs + 1 }},
		{"zero replicas", func(o *FailoverOptions) { o.Replicas = 0 }},
		{"zero lane depth", func(o *FailoverOptions) { o.LaneDepth = 0 }},
		{"crash without instant", func(o *FailoverOptions) { o.Crash = CrashVProc }},
		{"instant without crash", func(o *FailoverOptions) { o.CrashNs = 1 }},
		{"negative hedge", func(o *FailoverOptions) { o.HedgeDelayNs = -1 }},
		{"inverted backoff", func(o *FailoverOptions) { o.RetryCapNs = o.RetryBaseNs - 1 }},
		{"zero breaker threshold", func(o *FailoverOptions) { o.BreakerThreshold = 0 }},
		{"board kill on single-board machine", func(o *FailoverOptions) { o.Crash = CrashBoard; o.CrashNs = 1000 }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: RunFailover accepted the options", c.name)
				}
			}()
			opt := foTestOptions()
			c.mut(&opt)
			RunFailover(core.MustNewRuntime(testConfig(4)), opt)
		}()
	}
}

// rackFailoverConfig is the correlated-failure machine: 32 vprocs spread
// over rack256's two boards.
func rackFailoverConfig() core.Config {
	return core.DefaultConfig(numa.Rack256(), 32)
}

// TestFailoverGracefulDegradation is the pinned acceptance gate: on rack256
// with replication 4 (two lane homes per board), a correlated board kill at
// mid-window takes out half the machine — 16 vprocs, two replicas, and
// every co-located client chain — and the serving layer still retains at
// least 50% goodput for the requests whose clients survived to observe an
// outcome. (Requests from clients that died with the board are LostClient:
// offered load that no serving fabric could have answered.)
func TestFailoverGracefulDegradation(t *testing.T) {
	rt := core.MustNewRuntime(rackFailoverConfig())
	opt := DefaultFailoverOptions(1.0)
	opt.Replicas = 4
	opt.Crash = CrashBoard
	opt.CrashNs = 1_200_000
	res := RunFailover(rt, opt)
	foCheckPartition(t, "board-kill", res)

	topo := rt.Cfg.Topo
	wantCrashes := 0
	keep := topo.BoardOfNode(rt.VProcs[0].Node)
	for _, vp := range rt.VProcs {
		if topo.BoardOfNode(vp.Node) != keep {
			wantCrashes++
		}
	}
	if res.Crashes != wantCrashes {
		t.Errorf("Crashes = %d, want %d (every vproc off board %d)", res.Crashes, wantCrashes, keep)
	}
	if res.LostClient == 0 {
		t.Error("a board kill left every co-located client chain alive")
	}
	// Pre-crash the pool is healthy: nearly everything offered before the
	// kill meets its SLO.
	if res.GoodPre*10 < res.OfferedPre*9 {
		t.Errorf("pre-crash goodput %d/%d below 90%%", res.GoodPre, res.OfferedPre)
	}
	// The pinned degradation bound: surviving replicas absorb the rerouted
	// load well enough that post-crash goodput stays at or above half.
	num, den := res.ServingGoodputPost()
	if den <= 0 {
		t.Fatalf("no post-crash requests with surviving clients (offered %d, lost %d)", res.OfferedPost, res.LostPost)
	}
	if num*2 < den {
		t.Errorf("post-crash serving goodput %d/%d below 50%%", num, den)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants after board kill: %v", err)
	}
}

// TestFailoverReplicationRequired is the control for the degradation gate:
// with a single replica, killing its lane home leaves no survivor to
// reroute to, and post-crash goodput collapses to zero while the bound the
// replicated pool holds stays at 50%. Replication, not luck, is what the
// pinned test measures. (A board kill of an unreplicated pool is rejected
// outright — the single home lives on the coordinator's board, which no
// harness crash plan may target — so the control kills the home directly.)
func TestFailoverReplicationRequired(t *testing.T) {
	rt := core.MustNewRuntime(rackFailoverConfig())
	opt := DefaultFailoverOptions(1.0)
	opt.Replicas = 1
	opt.Crash = CrashVProc
	opt.CrashNs = 1_200_000
	res := RunFailover(rt, opt)
	foCheckPartition(t, "unreplicated home-kill", res)
	num, den := res.ServingGoodputPost()
	if den > 0 && num*2 >= den {
		t.Errorf("unreplicated pool somehow retained %d/%d post-crash goodput", num, den)
	}
}

// TestFailoverCrashStormFaultStress is the -race stress target for the
// crash subsystem under the serving workload: 48 vprocs on the heavy-GC
// configuration, a random multi-vproc crash storm layered on top of the
// harness's own lane-home kill, with the debug heap verifier on. Exercises
// crashed-heap adoption, SendCrashed rerouting, lost-client classification,
// and barrier shrinking while collections interleave densely.
func TestFailoverCrashStormFaultStress(t *testing.T) {
	cfg := heavyPressureConfig(48)
	cfg.Debug = true
	rt := core.MustNewRuntime(cfg)
	opt := DefaultFailoverOptions(1.0)
	opt.Replicas = 3
	opt.Crash = CrashVProc
	opt.CrashNs = 400_000
	opt.Faults = core.RandomCrashPlan(0xC5A54ED, 48, 1, 5, 1_500_000)
	res := RunFailover(rt, opt)
	foCheckPartition(t, "crash storm", res)
	if res.Crashes != 6 {
		t.Errorf("Crashes = %d, want 6 (5 random + 1 lane home)", res.Crashes)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Error("expected global collections under pressure")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants after crash storm: %v", err)
	}
	// The storm must be survivable, not a total outage: some post-crash
	// work still completes on the surviving replicas.
	if res.Completed == 0 {
		t.Error("nothing completed through the crash storm")
	}
}

// TestFailoverSpecEntryPoint: the registry entry (used by the generic
// determinism suites) runs, crashes exactly one vproc, and stays
// verifier-clean.
func TestFailoverSpecEntryPoint(t *testing.T) {
	spec, err := ByName("failover")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4)
	cfg.Debug = true
	rt := core.MustNewRuntime(cfg)
	res := spec.Run(rt, 0.25)
	if res.Stats.Crashes != 1 {
		t.Errorf("spec run crashed %d vprocs, want 1", res.Stats.Crashes)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}
