package workload

import (
	"testing"

	"repro/internal/core"
)

// ovTestOptions is a small overload shape that still saturates the test
// machine: mean request ~28 words at 300 ns/word is ~8.4 us of service, so
// 4 vprocs serve ~0.48 requests/us while 60 clients at a 30 us gap offer
// ~2/us — about 4x saturation, enough for every policy to differentiate.
func ovTestOptions() OverloadOptions {
	opt := DefaultOverloadOptions(1.0)
	opt.Clients = 60
	opt.Requests = 4
	opt.MeanGapNs = 30_000
	return opt
}

func runOverloadAt(nv int, opt OverloadOptions, faultSeed uint64) OverloadResult {
	rt := core.MustNewRuntime(testConfig(nv))
	if faultSeed != 0 {
		// Fresh plan per run: InstallFaults arms pointers into the event
		// slice, so reusing one plan across runtimes would alias state.
		opt.Faults = core.RandomFaultPlan(faultSeed, nv, 300_000, 2, 2)
	}
	return RunOverload(rt, opt)
}

// TestOverloadDeterministicRerun: the full result — makespan, checksum,
// every counter, the latency histogram, and the runtime statistics — is
// bit-identical across reruns, for every admission policy, with and
// without an installed fault plan. OverloadResult is a comparable value
// struct, so one == catches any divergence.
func TestOverloadDeterministicRerun(t *testing.T) {
	for _, pol := range []AdmissionPolicy{AdmitNone, AdmitQueue, AdmitDeadline} {
		for _, seed := range []uint64{0, 0xFA115AFE} {
			opt := ovTestOptions()
			opt.Admission = pol
			r1 := runOverloadAt(4, opt, seed)
			r2 := runOverloadAt(4, opt, seed)
			if r1 != r2 {
				t.Errorf("%v (fault seed %#x): reruns diverged:\n%+v\n%+v", pol, seed, r1, r2)
			}
			if seed != 0 && r1.Stats.FaultsInjected == 0 {
				t.Errorf("%v: fault plan installed but nothing injected", pol)
			}
		}
	}
}

// TestOverloadAccounting: every offered request resolves exactly once, the
// lane-shed counter ties out against retries and sheds, and each policy
// exercises exactly the failure modes it is supposed to.
func TestOverloadAccounting(t *testing.T) {
	for _, pol := range []AdmissionPolicy{AdmitNone, AdmitQueue, AdmitDeadline} {
		opt := ovTestOptions()
		opt.Admission = pol
		res := runOverloadAt(4, opt, 0)
		if got := res.Completed + res.Expired + res.ShedAdmission + res.ShedFault; got != res.Offered {
			t.Errorf("%v: %d resolved of %d offered", pol, got, res.Offered)
		}
		// Every non-OK TrySend is a lane shed: one per retry, one per
		// admission shed (budget exhausted), one per fault shed.
		if want := res.Retries + int64(res.ShedAdmission+res.ShedFault); res.Stats.ChanSheds != want {
			t.Errorf("%v: ChanSheds = %d, want %d (retries %d + shed %d)",
				pol, res.Stats.ChanSheds, want, res.Retries, res.ShedAdmission+res.ShedFault)
		}
		if res.ShedAdmission > 0 && res.Retries < int64(res.ShedAdmission*opt.MaxRetries) {
			t.Errorf("%v: %d sheds but only %d retries (budget %d each)",
				pol, res.ShedAdmission, res.Retries, opt.MaxRetries)
		}
		switch pol {
		case AdmitNone:
			if res.ShedAdmission != 0 || res.Retries != 0 || res.Expired != 0 {
				t.Errorf("none: unbounded lane shed %d / retried %d / expired %d", res.ShedAdmission, res.Retries, res.Expired)
			}
			if res.Completed != res.Offered {
				t.Errorf("none: %d of %d completed — the no-control baseline completes everything", res.Completed, res.Offered)
			}
		case AdmitQueue:
			if res.Expired != 0 {
				t.Errorf("queue: %d expired — only the deadline policy nacks", res.Expired)
			}
			if res.Retries == 0 {
				t.Error("queue: no retries at 4x saturation — the bounded lane never filled")
			}
		case AdmitDeadline:
			if res.Expired == 0 {
				t.Error("deadline: no server-side nacks at 4x saturation")
			}
		}
	}
}

// TestOverloadLaneCloseShedsAll: a fault-plan close of the request lane
// before the first possible arrival resolves the entire offered load as
// ShedFault — and the run still quiesces (close-as-status, not a hang).
func TestOverloadLaneCloseShedsAll(t *testing.T) {
	opt := ovTestOptions()
	opt.Admission = AdmitDeadline
	opt.LaneCloseNs = 1
	res := runOverloadAt(4, opt, 0)
	if res.ShedFault != res.Offered || res.Completed != 0 || res.Expired != 0 || res.ShedAdmission != 0 {
		t.Errorf("early lane close: completed %d expired %d shedAdmission %d shedFault %d of %d offered",
			res.Completed, res.Expired, res.ShedAdmission, res.ShedFault, res.Offered)
	}
}

// TestOverloadLaneCloseValidated: a lane close that could land after an
// accepted arrival would drop queued requests and hang the run, so
// RunOverload must reject it at the API boundary.
func TestOverloadLaneCloseValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RunOverload accepted a LaneCloseNs inside the arrival window")
		}
	}()
	opt := ovTestOptions()
	opt.LaneCloseNs = opt.MeanGapNs / 2
	RunOverload(core.MustNewRuntime(testConfig(4)), opt)
}

// TestOverloadFaultStressGCPressure drives the full-size overload shape at
// 4x saturation on the heavy-GC configuration with a seeded stall/burst
// plan and the debug heap verifier on — the fault-injection analogue of
// TestServerHeavyTrafficGCPressure, and the -race target for the
// recoverable-failure paths (TrySend, deadline nacks, retry timers, fault
// timers) under dense collection interleaving.
func TestOverloadFaultStressGCPressure(t *testing.T) {
	cfg := heavyPressureConfig(16)
	cfg.Debug = true
	rt := core.MustNewRuntime(cfg)
	opt := DefaultOverloadOptions(1.0)
	opt.Admission = AdmitDeadline
	opt.MeanGapNs = 40_000
	opt.Faults = core.RandomFaultPlan(0xFA115AFE, 16, 600_000, 3, 3)
	res := RunOverload(rt, opt)
	if got := res.Completed + res.Expired + res.ShedAdmission + res.ShedFault; got != res.Offered {
		t.Errorf("accounting leak under faults: %d resolved of %d offered", got, res.Offered)
	}
	if res.Stats.FaultsInjected != 6 {
		t.Errorf("FaultsInjected = %d, want 6", res.Stats.FaultsInjected)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Error("expected global collections under pressure")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants after faulted overload run: %v", err)
	}
}
