package workload

import (
	"math"

	"repro/internal/core"
	"repro/internal/heap"
)

// Raytracer (§4.1): "renders a 512 x 512 image in parallel as a
// two-dimensional sequence... a simple ray tracer that does not use any
// acceleration data structures." Rows are independent and all intermediate
// data is row-local, so the paper reports near-ideal scaling on both
// machines. The scene here is a small set of spheres over a ground plane
// with one point light and hard shadows; the arithmetic is executed for
// real and charged to the virtual clock per ray.

// rtBaseDim is the default image dimension; the paper uses 512.
const rtBaseDim = 160

// vec3 is host-side float math; results land in the heap per pixel row.
type vec3 struct{ x, y, z float64 }

func (a vec3) add(b vec3) vec3      { return vec3{a.x + b.x, a.y + b.y, a.z + b.z} }
func (a vec3) sub(b vec3) vec3      { return vec3{a.x - b.x, a.y - b.y, a.z - b.z} }
func (a vec3) scale(s float64) vec3 { return vec3{a.x * s, a.y * s, a.z * s} }
func (a vec3) dot(b vec3) float64   { return a.x*b.x + a.y*b.y + a.z*b.z }
func (a vec3) norm() vec3 {
	d := a.dot(a)
	if d == 0 {
		return a
	}
	// math.Sqrt is correctly rounded per IEEE 754, so checksums are
	// platform-independent.
	return a.scale(1 / math.Sqrt(d))
}

type sphere struct {
	c   vec3
	r   float64
	col vec3
}

// rtScene returns the fixed scene.
func rtScene() []sphere {
	return []sphere{
		{vec3{0, 1.0, 4}, 1.0, vec3{0.9, 0.2, 0.2}},
		{vec3{-1.8, 0.6, 3.2}, 0.6, vec3{0.2, 0.9, 0.2}},
		{vec3{1.7, 0.8, 4.6}, 0.8, vec3{0.2, 0.3, 0.9}},
		{vec3{-0.7, 0.4, 2.4}, 0.4, vec3{0.9, 0.8, 0.2}},
		{vec3{0.9, 0.3, 2.8}, 0.3, vec3{0.8, 0.3, 0.8}},
		{vec3{-2.6, 1.3, 5.0}, 1.3, vec3{0.3, 0.8, 0.8}},
	}
}

var rtLight = vec3{-4, 6, 0}

// intersect returns the nearest hit parameter and sphere index, or -1.
func intersect(scene []sphere, o, d vec3) (float64, int) {
	bestT, best := 1e30, -1
	for i, s := range scene {
		oc := o.sub(s.c)
		b := oc.dot(d)
		c := oc.dot(oc) - s.r*s.r
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		t := -b - math.Sqrt(disc)
		if t > 1e-4 && t < bestT {
			bestT, best = t, i
		}
	}
	return bestT, best
}

// shadePixel traces one primary ray and returns a quantized color word.
func shadePixel(scene []sphere, px, py, dim int) uint64 {
	u := (float64(px)/float64(dim))*2 - 1
	v := 1 - (float64(py)/float64(dim))*2
	o := vec3{0, 1.2, -1}
	dir := vec3{u, v * 0.9, 1.6}.norm()

	t, hit := intersect(scene, o, dir)
	var col vec3
	switch {
	case hit >= 0:
		p := o.add(dir.scale(t))
		nrm := p.sub(scene[hit].c).norm()
		l := rtLight.sub(p).norm()
		lam := nrm.dot(l)
		if lam < 0 {
			lam = 0
		}
		// Hard shadow.
		if _, sh := intersect(scene, p.add(nrm.scale(1e-3)), l); sh >= 0 {
			lam *= 0.15
		}
		col = scene[hit].col.scale(0.15 + 0.85*lam)
	case dir.y < 0:
		// Ground plane with a checker.
		tp := -(o.y) / dir.y
		p := o.add(dir.scale(tp))
		if (int(p.x+100)+int(p.z+100))%2 == 0 {
			col = vec3{0.75, 0.75, 0.75}
		} else {
			col = vec3{0.25, 0.25, 0.25}
		}
	default:
		col = vec3{0.5, 0.7, 0.95} // sky
	}
	q := func(f float64) uint64 {
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return uint64(f * 255)
	}
	return q(col.x)<<16 | q(col.y)<<8 | q(col.z)
}

// rtRayCostNs is the modelled per-ray arithmetic; the rest of a ray's cost
// is the allocation of its intermediate tuples (PML's vector math is boxed,
// which is exactly why the memory system dominates functional workloads).
const rtRayCostNs = 150

// rtRayTempWords models the boxed intermediates (vectors, hit records)
// allocated while tracing one ray.
const rtRayTempWords = 24

// RunRaytracer executes the benchmark; Check folds the quantized image.
func RunRaytracer(rt *core.Runtime, scale float64) Result {
	dim := scaled(rtBaseDim, scale)
	scene := rtScene()
	var check uint64
	var t0, t1 int64
	rt.Run(func(vp *core.VProc) {
		img := vp.AllocGlobalVectorN(dim)
		imgSlot := vp.PushRoot(img)
		t0 = vp.Now()
		vp.ParallelRange(0, dim, 1,
			[]heap.Addr{vp.Root(imgSlot)},
			func(vp *core.VProc, lo, hi int, env core.Env) {
				for y := lo; y < hi; y++ {
					renderRow(vp, env, scene, y, dim)
				}
			})
		t1 = vp.Now()
		for y := 0; y < dim; y++ {
			row := vp.LoadPtr(vp.Root(imgSlot), y)
			for _, w := range vp.ReadBlock(row) {
				check = fnv1a(check, w)
			}
		}
		vp.PopRoots(1)
	})
	return Result{ElapsedNs: t1 - t0, Check: check, Stats: rt.TotalStats()}
}

// renderRow traces one scanline, allocating per-pixel temporaries (the
// functional-language allocation behaviour the local heaps absorb) and one
// result row, then publishes the row.
func renderRow(vp *core.VProc, env core.Env, scene []sphere, y, dim int) {
	buf := make([]uint64, dim)
	for x := 0; x < dim; x++ {
		px := shadePixel(scene, x, y, dim)
		// Ephemeral boxed intermediates: nursery churn that dies at
		// the next minor collection.
		vp.AllocRawN(rtRayTempWords)
		vp.Compute(rtRayCostNs)
		buf[x] = px
	}
	row := vp.AllocRaw(buf)
	rs := vp.PushRoot(row)
	vp.StoreGlobalPtr(env.Get(vp, 0), y, rs)
	vp.PopRoots(1)
}

// RaytracerSeq is the sequential reference: it renders the same image
// host-side ("the sequential version differs ... in that it outputs each
// pixel as it is computed, instead of building an intermediate data
// structure").
func RaytracerSeq(scale float64) uint64 {
	dim := scaled(rtBaseDim, scale)
	scene := rtScene()
	var check uint64
	for y := 0; y < dim; y++ {
		for x := 0; x < dim; x++ {
			check = fnv1a(check, shadePixel(scene, x, y, dim))
		}
	}
	return check
}
