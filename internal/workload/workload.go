// Package workload implements the paper's benchmark programs (§4.1) against
// the simulated Manticore runtime: Barnes-Hut, Raytracer, Quicksort, SMVM,
// and DMM, plus a synthetic allocation-churn benchmark. Each benchmark has a
// plain-Go sequential reference used by the tests to validate results.
//
// Sizes are scaled down from the paper (the simulator charges every memory
// operation); the paper's sizes are reachable through the scale parameter.
package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Result is one benchmark execution.
type Result struct {
	// ElapsedNs is the virtual makespan.
	ElapsedNs int64
	// Check is a deterministic checksum of the output, identical across
	// vproc counts and equal to the sequential reference's checksum.
	Check uint64
	// Stats aggregates runtime statistics.
	Stats core.VPStats
}

// Spec names a benchmark and how to run it.
type Spec struct {
	Name string
	// Paper describes the paper's workload for documentation.
	Paper string
	// Run executes the benchmark on a fresh runtime at the given scale
	// (1.0 = the default reduced size; the paper's size is noted per
	// benchmark).
	Run func(rt *core.Runtime, scale float64) Result
}

// All returns the benchmark suite in the paper's presentation order.
func All() []Spec {
	return []Spec{
		{Name: "dmm", Paper: "dense 600x600 matrix multiply", Run: RunDMM},
		{Name: "raytracer", Paper: "512x512 ray-traced image", Run: RunRaytracer},
		{Name: "quicksort", Paper: "NESL quicksort of 10,000,000 ints", Run: RunQuicksort},
		{Name: "barnes-hut", Paper: "400,000-body Plummer, 20 iterations", Run: RunBarnesHut},
		{Name: "smvm", Paper: "1,091,362-element sparse matrix x 16,614 vector", Run: RunSMVM},
		{Name: "synthetic", Paper: "allocation churn (synthetic)", Run: RunSynthetic},
		{Name: "server", Paper: "message-passing server over CML channels (beyond the paper)", Run: RunServer},
		{Name: "latency", Paper: "open-loop timer-driven traffic, latency under GC (beyond the paper)", Run: RunLatencySpec},
		{Name: "failover", Paper: "replicated serving under a vproc crash fault (beyond the paper)", Run: RunFailoverSpec},
	}
}

// ByName returns a benchmark spec.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// f2w and w2f pack floats into heap words.
func f2w(f float64) uint64 { return math.Float64bits(f) }
func w2f(w uint64) float64 { return math.Float64frombits(w) }

// fnv1a folds a word into a running FNV-1a hash; used for checksums.
func fnv1a(h, w uint64) uint64 {
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < 8; i++ {
		h ^= (w >> (8 * i)) & 0xFF
		h *= 1099511628211
	}
	return h
}

// scaled returns max(1, round(base*scale)).
func scaled(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// xorshift is the deterministic PRNG used by workload generators.
type xorshift uint64

func newRand(seed uint64) *xorshift {
	x := xorshift(seed | 1)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v >> 12
	v ^= v << 25
	v ^= v >> 27
	*x = xorshift(v)
	return v * 0x2545F4914F6CDD1D
}

// float returns a uniform float in [0,1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / (1 << 53)
}
