package workload

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/heap"
)

// Open-loop latency harness: the measurement axis the throughput figures
// miss. The `server` workload is closed-loop — every client waits for its
// replies, so when the collector stalls the world the *offered load* politely
// stops and no figure ever shows the stall. Here the arrival process is
// open-loop: every request's send instant is drawn up front from a seeded
// per-client stream and armed as a virtual-time timer, so requests keep
// arriving on schedule no matter how the runtime is doing — exactly how
// traffic from millions of independent users behaves. Latency is measured
// from the *scheduled* arrival (not the actual send), so time a client spends
// stuck behind a collection counts against the runtime rather than being
// silently omitted (the "coordinated omission" trap in closed-loop
// measurement).
//
// Thousands of logical clients multiplex as continuation tasks over the
// vprocs: each client is a timer-driven send chain (AtThen) plus a reply
// collection chain (RecvThen), so no client occupies a stack frame and any
// vproc can carry any client's next step. Requests flow over the same
// small/large request lanes and server pool as the `server` workload
// (srvServe), and every reply records a completion instant. Per-request
// latencies feed a deterministic log-bucketed histogram (Hist), and each
// request's lifetime is intersected with the GC event timeline to attribute
// tail latency to collection phases.
const (
	latClients  = 300 // logical clients at scale 1
	latRequests = 8   // requests per client at scale 1

	// latMeanGapNs is the default mean inter-arrival gap per client; the
	// aggregate offered load is Clients/MeanGap requests per virtual ns.
	latMeanGapNs = 400_000
)

// LatencyOptions configures the harness.
type LatencyOptions struct {
	Clients   int   // logical clients
	Requests  int   // requests per client
	MeanGapNs int64 // mean per-client inter-arrival gap (offered load knob)
}

// DefaultLatencyOptions scales the default shape.
func DefaultLatencyOptions(scale float64) LatencyOptions {
	return LatencyOptions{
		Clients:   scaled(latClients, scale),
		Requests:  scaled(latRequests, scale),
		MeanGapNs: latMeanGapNs,
	}
}

// PhasePause aggregates one collection kind's contribution to request
// latency: the virtual time by which the phase's events overlapped request
// lifetimes, averaged per request (integer ns, deterministic).
type PhasePause struct {
	// MeanNs is the mean overlap per request in the band.
	MeanNs int64
	// MaxNs is the largest single-request overlap in the band.
	MaxNs int64
}

// AttributionBand is the pause attribution over one set of requests: all of
// them, or a latency-percentile tail.
type AttributionBand struct {
	Count     int
	MeanNs    int64 // mean request latency in the band
	Global    PhasePause
	Local     PhasePause
	GlobalGCs int // distinct global collections overlapping the band
}

// GlobalShare returns the fraction of the band's mean latency attributable
// to global collections (0 when the band is empty).
func (b AttributionBand) GlobalShare() float64 {
	if b.MeanNs == 0 {
		return 0
	}
	return float64(b.Global.MeanNs) / float64(b.MeanNs)
}

// LatencyResult is one harness execution.
type LatencyResult struct {
	Result // makespan, checksum (content-only, vproc-count-invariant), stats

	Requests int
	Hist     Hist
	// Quantiles of the latency histogram, in virtual ns (bucket lower
	// bounds, deterministic).
	P50, P90, P99, P999 int64

	// All covers every request; Tail covers requests at or above P999 —
	// the band the acceptance figure reads (global-GC pauses dominating
	// p99.9).
	All, Tail AttributionBand
}

// latState is the harness's host-side bookkeeping. All mutation happens in
// engine-serialized task code, so plain slices suffice.
type latState struct {
	opt     LatencyOptions
	seed    uint64
	arrival [][]int64 // scheduled send instants
	large   [][]bool  // request lane
	words   [][]int   // payload words
	end     [][]int64 // completion instants (0 = not yet replied)
	acc     []uint64  // per-client commutative reply fold
	small   *core.Channel
	largeCh *core.Channel
	replies []*core.Channel
}

// latClientSeed derives the per-client arrival/shape stream seed.
func latClientSeed(seed uint64, c int) uint64 {
	return seed ^ uint64(c+1)*0xBF58476D1CE4E5B9
}

// latReqSeed derives the per-request payload stream seed, so a request's
// contents can be regenerated at send time without replaying the client
// stream.
func latReqSeed(seed uint64, c, r int) uint64 {
	return fnv1a(fnv1a(seed, uint64(c)), uint64(r)) | 1
}

// planLatency draws every arrival instant and request shape up front from
// the seeded per-client streams: the offered load is a pure function of
// (seed, options), independent of anything the runtime does — the open-loop
// contract.
func planLatency(seed uint64, opt LatencyOptions) *latState {
	st := &latState{opt: opt, seed: seed}
	st.arrival = make([][]int64, opt.Clients)
	st.large = make([][]bool, opt.Clients)
	st.words = make([][]int, opt.Clients)
	st.end = make([][]int64, opt.Clients)
	st.acc = make([]uint64, opt.Clients)
	for c := 0; c < opt.Clients; c++ {
		rng := newRand(latClientSeed(seed, c))
		st.arrival[c] = make([]int64, opt.Requests)
		st.large[c] = make([]bool, opt.Requests)
		st.words[c] = make([]int, opt.Requests)
		st.end[c] = make([]int64, opt.Requests)
		var t int64
		for r := 0; r < opt.Requests; r++ {
			// Uniform jitter in [mean/2, 3*mean/2): a deterministic
			// integer-only arrival process with the configured mean.
			gap := opt.MeanGapNs/2 + int64(rng.next()%uint64(opt.MeanGapNs))
			t += gap
			st.arrival[c][r] = t
			lane, words := srvRequestShape(rng)
			st.large[c][r] = lane == 1
			st.words[c][r] = words
		}
	}
	return st
}

// latArm schedules client c's request r at its planned arrival instant and
// chains the next one. The chain is open-loop: the next arm uses the
// *planned* absolute instant, so a send delayed by a collection does not
// push later arrivals back (an instant already in the past fires at the
// next safepoint).
func latArm(vp *core.VProc, st *latState, c, r int) {
	if r == st.opt.Requests {
		return
	}
	vp.AtThen(st.arrival[c][r], nil, func(vp *core.VProc, _ core.Env) {
		rng := newRand(latReqSeed(st.seed, c, r))
		words := st.words[c][r]
		buf := make([]uint64, words)
		buf[0], buf[1] = uint64(c), uint64(r)
		for i := 2; i < words; i++ {
			buf[i] = rng.next()
		}
		dst := st.small
		if st.large[c][r] {
			dst = st.largeCh
		}
		a := vp.AllocRaw(buf)
		s := vp.PushRoot(a)
		dst.Send(vp, s)
		vp.PopRoots(1)
		latArm(vp, st, c, r+1)
	})
}

// latCollect folds one reply, records its completion instant, and re-parks
// for the next; the fold is commutative (replies may interleave in any
// deterministic order without changing the checksum).
func latCollect(vp *core.VProc, st *latState, c, remaining int) {
	if remaining == 0 {
		return
	}
	st.replies[c].RecvThen(vp, nil, func(vp *core.VProc, _ core.Env, msg heap.Addr) {
		p := vp.ReadBlock(msg)
		seq, sum := p[0], p[1]
		st.end[c][seq] = vp.Now()
		st.acc[c] += fnv1a(fnv1a(0, seq), sum)
		latCollect(vp, st, c, remaining-1)
	})
}

// RunLatency executes the open-loop harness on rt and post-processes the
// recorded instants into percentiles and pause attribution. The virtual
// results are deterministic: bit-identical across reruns and across any
// host-side worker count.
func RunLatency(rt *core.Runtime, opt LatencyOptions) LatencyResult {
	if opt.Clients < 1 || opt.Requests < 1 || opt.MeanGapNs < 2 {
		panic(fmt.Sprintf("workload: bad latency options %+v", opt))
	}
	st := planLatency(rt.Cfg.Seed, opt)
	st.small = rt.NewChannel()
	st.largeCh = rt.NewChannel()
	st.replies = make([]*core.Channel, opt.Clients)
	for i := range st.replies {
		st.replies[i] = rt.NewChannel()
	}

	// Record the GC event timeline for attribution, chaining any tracer the
	// caller installed (gctrace uses both at once).
	var events []core.GCEvent
	prev := rt.Tracer()
	rt.SetTracer(func(ev core.GCEvent) {
		events = append(events, ev)
		if prev != nil {
			prev(ev)
		}
	})
	defer rt.SetTracer(prev)

	servers := rt.Cfg.NumVProcs
	if servers > opt.Clients {
		servers = opt.Clients
	}
	total := opt.Clients * opt.Requests

	elapsed := rt.Run(func(vp *core.VProc) {
		// The server pool consumes fixed quotas summing to the request
		// total — every request is answered and every chain terminates
		// (same deadlock-freedom argument as the server workload).
		base, extra := total/servers, total%servers
		for s := 0; s < servers; s++ {
			quota := base
			if s < extra {
				quota++
			}
			if quota == 0 {
				continue
			}
			vp.Spawn(func(svp *core.VProc, _ core.Env) {
				srvServe(svp, st.largeCh, st.small, st.replies, quota)
			})
		}
		for c := 0; c < opt.Clients; c++ {
			c := c
			vp.Spawn(func(cvp *core.VProc, _ core.Env) {
				latCollect(cvp, st, c, st.opt.Requests)
				latArm(cvp, st, c, 0)
			})
		}
	})

	var check uint64
	for _, a := range st.acc {
		check = fnv1a(check, a)
	}
	res := LatencyResult{
		Result:   Result{ElapsedNs: elapsed, Check: check, Stats: rt.TotalStats()},
		Requests: total,
	}

	// Latencies: completion minus *scheduled* arrival.
	type reqSpan struct{ start, end int64 }
	spans := make([]reqSpan, 0, total)
	for c := 0; c < opt.Clients; c++ {
		for r := 0; r < opt.Requests; r++ {
			if st.end[c][r] == 0 {
				panic(fmt.Sprintf("workload: request %d/%d never completed", c, r))
			}
			spans = append(spans, reqSpan{st.arrival[c][r], st.end[c][r]})
			res.Hist.Record(st.end[c][r] - st.arrival[c][r])
		}
	}
	res.P50 = res.Hist.Quantile(50, 100)
	res.P90 = res.Hist.Quantile(90, 100)
	res.P99 = res.Hist.Quantile(99, 100)
	res.P999 = res.Hist.Quantile(999, 1000)

	// Attribution: intersect request lifetimes with the collection-phase
	// timeline. Global collections stop the world, so their overlap counts
	// in full; local phases (minor/major/promotion) stall one vproc each,
	// so their pooled overlap is normalized by the vproc count — the
	// expected per-vproc collector activity during the request's lifetime.
	//
	// Under the mostly-concurrent collector the full cycle (EvGlobalEnd's
	// span) is not a stall — mutators run through the mark. Only the two
	// bracketing STW windows (snapshot and termination) stop the world, so
	// they form the "global" stall set instead; the cycle spans are kept
	// solely to count distinct collections per band. In STW mode the cycle
	// IS the stall and no window events exist, so the sets coincide and
	// the accounting is unchanged.
	var globals, locals, cycles []span
	concurrent := rt.Cfg.ConcurrentGlobal
	for _, ev := range events {
		switch ev.Kind {
		case core.EvGlobalEnd:
			cycles = append(cycles, span{ev.At - ev.Ns, ev.At})
			if !concurrent {
				globals = append(globals, span{ev.At - ev.Ns, ev.At})
			}
		case core.EvSnapshot, core.EvTermination:
			globals = append(globals, span{ev.At - ev.Ns, ev.At})
		case core.EvMinor, core.EvMajor, core.EvPromote:
			locals = append(locals, span{ev.At - ev.Ns, ev.At})
		}
	}
	globalSet := newSpanSet(globals)
	cycleSet := newSpanSet(cycles)
	localSet := newSpanSet(locals)
	nv := int64(rt.Cfg.NumVProcs)

	band := func(minLat int64) AttributionBand {
		var b AttributionBand
		var latSum, gSum, lSum int64
		seenGlobals := map[span]bool{}
		for _, s := range spans {
			lat := s.end - s.start
			if lat < minLat {
				continue
			}
			b.Count++
			latSum += lat
			g := globalSet.overlap(s.start, s.end, nil)
			// Collections are counted over the cycle spans, which in STW
			// mode are exactly the stall spans: a request "saw" a
			// collection if its lifetime intersects the cycle, whether or
			// not it intersected a concurrent cycle's STW windows.
			cycleSet.overlap(s.start, s.end, func(iv span) {
				if !seenGlobals[iv] {
					seenGlobals[iv] = true
					b.GlobalGCs++
				}
			})
			l := localSet.overlap(s.start, s.end, nil) / nv
			gSum += g
			lSum += l
			if g > b.Global.MaxNs {
				b.Global.MaxNs = g
			}
			if l > b.Local.MaxNs {
				b.Local.MaxNs = l
			}
		}
		if b.Count > 0 {
			b.MeanNs = latSum / int64(b.Count)
			b.Global.MeanNs = gSum / int64(b.Count)
			b.Local.MeanNs = lSum / int64(b.Count)
		}
		return b
	}
	res.All = band(0)
	res.Tail = band(res.P999)
	return res
}

// span is a half-open virtual-time interval [lo, hi).
type span struct{ lo, hi int64 }

// spanSet answers interval-overlap queries over a fixed set of spans. The
// spans are sorted by lo; because spans from different vprocs may nest (a
// long major collection on one vproc straddles several minors on another),
// hi is not monotone in that order, so queries seek via a prefix-maximum of
// hi — the earliest index whose prefix already contains a span ending after
// the query start.
type spanSet struct {
	ivs   []span
	maxhi []int64 // maxhi[i] = max(ivs[:i+1].hi)
}

func newSpanSet(ivs []span) spanSet {
	sort.Slice(ivs, func(a, b int) bool {
		if ivs[a].lo != ivs[b].lo {
			return ivs[a].lo < ivs[b].lo
		}
		return ivs[a].hi < ivs[b].hi
	})
	maxhi := make([]int64, len(ivs))
	var mx int64
	for i, iv := range ivs {
		if iv.hi > mx {
			mx = iv.hi
		}
		maxhi[i] = mx
	}
	return spanSet{ivs: ivs, maxhi: maxhi}
}

// overlap sums the spans' overlap with [start, end); visit, when non-nil, is
// called once per overlapping span.
func (s spanSet) overlap(start, end int64, visit func(span)) int64 {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.maxhi[i] > start })
	var sum int64
	for ; i < len(s.ivs) && s.ivs[i].lo < end; i++ {
		lo, hi := s.ivs[i].lo, s.ivs[i].hi
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			sum += hi - lo
			if visit != nil {
				visit(s.ivs[i])
			}
		}
	}
	return sum
}

// RunLatencySpec adapts the harness to the benchmark Spec interface.
func RunLatencySpec(rt *core.Runtime, scale float64) Result {
	return RunLatency(rt, DefaultLatencyOptions(scale)).Result
}

// LatencySeq computes the expected reply checksum host-side; like ServerSeq
// it is independent of the vproc count.
func LatencySeq(seed uint64, opt LatencyOptions) uint64 {
	var check uint64
	for c := 0; c < opt.Clients; c++ {
		rng := newRand(latClientSeed(seed, c))
		var acc uint64
		for r := 0; r < opt.Requests; r++ {
			rng.next() // the gap draw; keeps the stream aligned with planLatency
			_, words := srvRequestShape(rng)
			req := newRand(latReqSeed(seed, c, r))
			var sum uint64
			sum = fnv1a(sum, uint64(c))
			sum = fnv1a(sum, uint64(r))
			for i := 2; i < words; i++ {
				sum = fnv1a(sum, req.next())
			}
			acc += fnv1a(fnv1a(0, uint64(r)), sum)
		}
		check = fnv1a(check, acc)
	}
	return check
}
