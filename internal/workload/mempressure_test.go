package workload

import (
	"testing"

	"repro/internal/core"
)

// TestHeapExhaustionGracefulDegradation is the acceptance test for
// memory-pressure resilience: the full overload shape at 4x saturation on
// a heap bounded below the global-GC trigger (16 chunks; the trigger sits
// at 24, so the emergency ladder is the only collector). The run must not
// panic, every offered request must resolve exactly once, and the two
// policies must degrade in their distinct ways — the budget-blind queue
// policy hits the wall (emergency ladder walks, failed allocations,
// alloc-fail sheds) while the memory-aware policy sheds at admission
// above the occupancy watermark and never lets a mutator reach the wall.
func TestHeapExhaustionGracefulDegradation(t *testing.T) {
	run := func(adm AdmissionPolicy) (OverloadResult, core.MemPressure) {
		cfg := heavyPressureConfig(16)
		cfg.GlobalBudgetChunks = 16
		rt := core.MustNewRuntime(cfg)
		opt := DefaultOverloadOptions(1.0)
		opt.Admission = adm
		opt.MeanGapNs = 40_000
		res := RunOverload(rt, opt)
		if err := rt.VerifyHeap(); err != nil {
			t.Errorf("%v: heap invariants after exhaustion: %v", adm, err)
		}
		return res, rt.MemPressure()
	}

	blind, blindMP := run(AdmitQueue)
	aware, awareMP := run(AdmitMemory)

	for _, r := range []struct {
		name string
		res  OverloadResult
	}{{"queue", blind}, {"memory", aware}} {
		got := r.res.Completed + r.res.Expired + r.res.ShedAdmission + r.res.ShedFault + r.res.ShedMemory
		if got != r.res.Offered {
			t.Errorf("%s: %d resolved of %d offered — exact accounting broken", r.name, got, r.res.Offered)
		}
		if r.res.Completed == 0 {
			t.Errorf("%s: nothing completed — the pool stopped serving entirely", r.name)
		}
		if r.res.ShedMemory == 0 {
			t.Errorf("%s: no memory sheds on a 16-chunk heap at 4x load", r.name)
		}
	}

	// The budget-blind policy discovers exhaustion the hard way.
	if blindMP.EmergencyGCs == 0 {
		t.Error("queue: no emergency ladder walks — the budget never bound")
	}
	if blindMP.AllocFailed == 0 {
		t.Error("queue: no failed allocations — sheds did not come from the alloc gate")
	}
	// The memory-aware policy sheds before any mutator reaches the wall.
	if awareMP.EmergencyGCs != 0 {
		t.Errorf("memory: %d emergency ladder walks — the watermark gate should shed first", awareMP.EmergencyGCs)
	}
	if awareMP.AllocFailed != 0 {
		t.Errorf("memory: %d failed allocations behind the admission gate", awareMP.AllocFailed)
	}
	// Both runs stay within the budget modulo collector overdraft.
	for _, mp := range []core.MemPressure{blindMP, awareMP} {
		if mp.BudgetChunks != 16 {
			t.Errorf("BudgetChunks = %d, want 16", mp.BudgetChunks)
		}
	}
}

// TestHeapExhaustionStress48 is the -race stress shape: 48 vprocs on the
// heavy-GC configuration with a bounded heap AND a mid-run squeeze fault
// that clamps the budget to half the vproc count (legal only by injection;
// Config would reject it) before releasing it — emergency ladders, budget
// overdraft, admission sheds, and the release re-arm all interleaving with
// dense parallel collections. The books must still balance exactly.
func TestHeapExhaustionStress48(t *testing.T) {
	cfg := heavyPressureConfig(48)
	cfg.GlobalBudgetChunks = 48
	rt := core.MustNewRuntime(cfg)
	opt := DefaultOverloadOptions(1.0)
	opt.Admission = AdmitQueue
	opt.MeanGapNs = 40_000
	opt.Faults = (&core.FaultPlan{}).
		SqueezeAt(0, 60_000, 24).
		SqueezeAt(0, 150_000, 48)
	res := RunOverload(rt, opt)

	if got := res.Completed + res.Expired + res.ShedAdmission + res.ShedFault + res.ShedMemory; got != res.Offered {
		t.Errorf("accounting leak under squeeze: %d resolved of %d offered", got, res.Offered)
	}
	if res.Stats.FaultsInjected != 2 {
		t.Errorf("FaultsInjected = %d, want 2 (squeeze + release)", res.Stats.FaultsInjected)
	}
	mp := rt.MemPressure()
	if mp.BudgetChunks != 48 {
		t.Errorf("BudgetChunks = %d at exit, want the released 48", mp.BudgetChunks)
	}
	if res.Completed == 0 {
		t.Error("nothing completed through the squeeze")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants after the 48-vproc squeeze run: %v", err)
	}
}

// TestMempressureRerunDeterministic: the bounded-heap overload run — with
// the memory gate, emergency ladders, and a squeeze plan all active — is
// bit-identical across reruns. OverloadResult is a comparable value
// struct, so one == catches any divergence.
func TestMempressureRerunDeterministic(t *testing.T) {
	run := func() OverloadResult {
		cfg := heavyPressureConfig(16)
		cfg.GlobalBudgetChunks = 20
		rt := core.MustNewRuntime(cfg)
		opt := DefaultOverloadOptions(1.0)
		opt.Admission = AdmitMemory
		opt.MeanGapNs = 40_000
		opt.Faults = (&core.FaultPlan{}).
			SqueezeAt(0, 70_000, 16).
			SqueezeAt(0, 160_000, 0)
		return RunOverload(rt, opt)
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Errorf("bounded-heap reruns diverged:\n%+v\n%+v", r1, r2)
	}
	if r1.ShedMemory == 0 {
		t.Error("the memory gate never shed — the squeeze configuration is inert")
	}
}
