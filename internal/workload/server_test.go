package workload

import (
	"testing"

	"repro/internal/core"
)

func TestServerMatchesReference(t *testing.T) {
	spec, _ := ByName("server")
	want := ServerSeq(testConfig(1).Seed, 0.5)
	for _, nv := range []int{1, 2, 4} {
		got := runAt(t, spec, nv, 0.5, nv != 1)
		if got.Check != want {
			t.Errorf("server at %d vprocs: check %#x, want %#x", nv, got.Check, want)
		}
	}
}

func TestServerExercisesChannels(t *testing.T) {
	spec, _ := ByName("server")
	res := runAt(t, spec, 4, 1, false)
	clients, requests, _ := serverParams(4, 1)
	total := int64(clients * requests)
	// Every request and every reply crosses a channel.
	if got := res.Stats.ChanSends; got != 2*total {
		t.Errorf("sends = %d, want %d (requests+replies)", got, 2*total)
	}
	if got := res.Stats.ChanRecvs; got != 2*total {
		t.Errorf("recvs = %d, want %d", got, 2*total)
	}
	if res.Stats.ChanHandoffs == 0 {
		t.Error("expected some rendezvous handoffs to parked receivers")
	}
	if res.Stats.Promotions == 0 {
		t.Error("expected cross-vproc messages to force promotions")
	}
	if res.Stats.AllocWords == 0 {
		t.Error("no allocation")
	}
}

// TestServerSurvivesGCPressure runs the workload with tiny heaps and a low
// global trigger so messages are in flight across minor, major and global
// collections, with the full-heap verifier on — the workload-scale version
// of the channel GC regression test.
func TestServerSurvivesGCPressure(t *testing.T) {
	spec, _ := ByName("server")
	cfg := testConfig(3)
	cfg.LocalHeapWords = 2048
	cfg.ChunkWords = 512
	cfg.GlobalTriggerWords = 16 * 512
	cfg.Debug = true
	rt := core.MustNewRuntime(cfg)
	res := spec.Run(rt, 1)
	if err := rt.VerifyHeap(); err != nil {
		t.Fatalf("heap invariants: %v", err)
	}
	if want := ServerSeq(cfg.Seed, 1); res.Check != want {
		t.Errorf("check %#x, want %#x", res.Check, want)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Error("expected global collections under this configuration")
	}
}
