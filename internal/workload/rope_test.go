package workload

import (
	"testing"

	"repro/internal/core"
)

func TestRopeRoundTrip(t *testing.T) {
	rt := core.MustNewRuntime(testConfig(1))
	d := RegisterRopeDescs(rt)
	rt.Run(func(vp *core.VProc) {
		vals := make([]uint64, 3000)
		for i := range vals {
			vals[i] = uint64(i * 7)
		}
		r := ropeFromInts(vp, d, vals)
		rs := vp.PushRoot(r)
		if got := ropeLen(vp, vp.Root(rs)); got != len(vals) {
			t.Errorf("ropeLen = %d, want %d", got, len(vals))
		}
		out := ropeToInts(vp, vp.Root(rs))
		if len(out) != len(vals) {
			t.Fatalf("round trip len = %d, want %d", len(out), len(vals))
		}
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("round trip [%d] = %d, want %d", i, out[i], vals[i])
			}
		}
		vp.PopRoots(1)
	})
}

func TestRopeFilterUnderGCPressure(t *testing.T) {
	cfg := testConfig(1)
	cfg.LocalHeapWords = 2048 // tiny: filters will GC constantly
	cfg.Debug = true
	rt := core.MustNewRuntime(cfg)
	d := RegisterRopeDescs(rt)
	rt.Run(func(vp *core.VProc) {
		vals := make([]uint64, 4000)
		for i := range vals {
			vals[i] = uint64(i)
		}
		rs := vp.PushRoot(ropeFromInts(vp, d, vals))
		evens := ropeFilter(vp, d, rs, func(w uint64) bool { return w%2 == 0 })
		es := vp.PushRoot(evens)
		out := ropeToInts(vp, vp.Root(es))
		if len(out) != 2000 {
			t.Fatalf("filter kept %d, want 2000", len(out))
		}
		for i, w := range out {
			if w != uint64(2*i) {
				t.Fatalf("filter out[%d] = %d, want %d", i, w, 2*i)
			}
		}
		vp.PopRoots(2)
	})
}

func TestRopeCatOrder(t *testing.T) {
	rt := core.MustNewRuntime(testConfig(1))
	d := RegisterRopeDescs(rt)
	rt.Run(func(vp *core.VProc) {
		a := vp.PushRoot(ropeFromInts(vp, d, []uint64{1, 2, 3}))
		b := vp.PushRoot(ropeFromInts(vp, d, []uint64{4, 5}))
		c := vp.PushRoot(ropeCat(vp, d, a, b))
		out := ropeToInts(vp, vp.Root(c))
		want := []uint64{1, 2, 3, 4, 5}
		if len(out) != len(want) {
			t.Fatalf("cat len = %d, want %d", len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("cat[%d] = %d, want %d", i, out[i], want[i])
			}
		}
		vp.PopRoots(3)
	})
}

func TestSeqSortRope(t *testing.T) {
	rt := core.MustNewRuntime(testConfig(1))
	d := RegisterRopeDescs(rt)
	rt.Run(func(vp *core.VProc) {
		vals := []uint64{9, 3, 7, 1, 8, 2, 2, 5}
		rs := vp.PushRoot(ropeFromInts(vp, d, vals))
		sorted := seqSortRope(vp, d, rs)
		ss := vp.PushRoot(sorted)
		out := ropeToInts(vp, vp.Root(ss))
		want := []uint64{1, 2, 2, 3, 5, 7, 8, 9}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("sorted[%d] = %d, want %d (full %v)", i, out[i], want[i], out)
			}
		}
		vp.PopRoots(2)
	})
}
