package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/heap"
)

// Failover harness: the open-loop serving workload under partial failure.
// The server pool is split into R replicas, each with its own bounded
// request lane tied (core.Channel.SetOwner) to a home vproc spread across
// the machine's boards — the lane IS the replica's failure domain. A
// FaultCrash of a home vproc retires its lane through the close-as-status
// protocol: queued requests are dropped, parked servers wake with nil
// messages, and every later send observes SendCrashed.
//
// Clients route around failure with three mechanisms, each independently
// observable in the result:
//
//   - Per-replica circuit breakers (closed → open on consecutive failures
//     or a crash status, open → half-open probe after a cooldown): attempts
//     skip open replicas instead of burning their deadline budget on a dead
//     lane.
//   - Deadline-budgeted retries: a failed attempt (reply timeout, full
//     lane after backoff, crashed lane) rotates to the next admitted
//     replica until the request's end-to-end deadline expires.
//   - Optional hedged requests: HedgeDelayNs after a first attempt is
//     accepted, an identical copy goes to a different replica; whichever
//     reply lands first resolves the request (payloads are identical, so
//     the checksum cannot depend on which).
//
// Lost versus recovered work (the crash-semantics contract, observable
// here): a request accepted by a replica that then crashes is RECOVERED —
// the client's attempt timeout fires and the retry completes on a
// survivor. Client-side continuations co-located with a crashed vproc are
// LOST — their open-loop chains die with it, and the termination watchdog
// (owned by vproc 0, which harness crash plans never target) classifies
// their unresolved requests as LostClient. The accounting is an exact
// partition: Offered = Completed + FailedDeadline + LostClient + ShedMemory.
//
// Termination needs no quota: every non-lost request provably resolves by
// its deadline plus one attempt timeout (each attempt either resolves,
// parks a reply handler whose timeout retries, or backs off — all progress
// in virtual time), and the watchdog sweeps the lost remainder at a fixed
// horizon. The last resolution closes the surviving lanes, waking the
// server pool for shutdown.
//
// Determinism: arrivals, payloads, and backoff jitter come from the same
// seeded streams as the overload harness; breakers and bookkeeping mutate
// only in engine-serialized task code. Reruns are bit-identical at any
// host worker count; with CrashNone the run executes zero crash-path code.
const (
	foClients  = 240 // logical clients at scale 1
	foRequests = 6   // requests per client at scale 1

	foMeanGapNs   = 400_000 // per-client inter-arrival gap
	foDeadlineNs  = 300_000 // end-to-end deadline from scheduled arrival
	foAttemptNs   = 60_000  // per-attempt reply timeout
	foLaneDepth   = 32      // bounded lane depth per replica
	foRetryBase   = 10_000  // first backoff after a full lane
	foRetryCap    = 40_000  // backoff cap
	foBreakerTrip = 3       // consecutive failures that open a breaker
	foCooldownNs  = 100_000 // open → half-open probe delay

	foServersPerReplica = 4
	foServiceNsPerWord  = 300
)

// CrashKind selects the fault injected by the failover harness.
type CrashKind int

const (
	// CrashNone: fault-free baseline (still replicated and routed).
	CrashNone CrashKind = iota
	// CrashVProc kills the last replica's home vproc at CrashNs.
	CrashVProc
	// CrashBoard kills every vproc on the first board that hosts a replica
	// home but not vproc 0 — the correlated rack failure domain. Requires a
	// topology with at least two boards.
	CrashBoard
)

// String names the kind (the CLI flag vocabulary).
func (k CrashKind) String() string {
	switch k {
	case CrashNone:
		return "none"
	case CrashVProc:
		return "vproc"
	case CrashBoard:
		return "board"
	}
	return fmt.Sprintf("CrashKind(%d)", int(k))
}

// ParseCrashKind parses a crash kind name.
func ParseCrashKind(s string) (CrashKind, error) {
	switch s {
	case "none":
		return CrashNone, nil
	case "vproc":
		return CrashVProc, nil
	case "board":
		return CrashBoard, nil
	}
	return 0, fmt.Errorf("workload: unknown crash kind %q (none, vproc, board)", s)
}

// FailoverOptions configures the harness.
type FailoverOptions struct {
	Clients   int   // logical clients
	Requests  int   // requests per client
	MeanGapNs int64 // mean per-client inter-arrival gap

	DeadlineNs int64 // end-to-end deadline from scheduled arrival
	AttemptNs  int64 // per-attempt reply timeout

	Replicas          int // replicated lanes (home vprocs spread over boards)
	ServersPerReplica int // server continuation chains per lane
	LaneDepth         int // bounded lane depth

	RetryBaseNs int64 // full-lane backoff base (doubles per attempt)
	RetryCapNs  int64 // backoff cap

	BreakerThreshold  int   // consecutive failures that open a breaker
	BreakerCooldownNs int64 // open → half-open probe delay

	// HedgeDelayNs, when positive, sends an identical copy of an accepted
	// first attempt to a different replica after this delay (tail-latency
	// insurance that also masks a replica death without waiting for the
	// attempt timeout). 0 disables hedging.
	HedgeDelayNs int64

	// ServiceNsPerWord is the server-side compute per payload word.
	ServiceNsPerWord int64

	Crash   CrashKind // fault to inject
	CrashNs int64     // crash instant (required for CrashVProc/CrashBoard)

	// Faults, when non-nil, is installed alongside the harness's own crash
	// plan (stalls, bursts — see core.FaultPlan).
	Faults *core.FaultPlan
}

// DefaultFailoverOptions scales the default shape.
func DefaultFailoverOptions(scale float64) FailoverOptions {
	return FailoverOptions{
		Clients:           scaled(foClients, scale),
		Requests:          scaled(foRequests, scale),
		MeanGapNs:         foMeanGapNs,
		DeadlineNs:        foDeadlineNs,
		AttemptNs:         foAttemptNs,
		Replicas:          2,
		ServersPerReplica: foServersPerReplica,
		LaneDepth:         foLaneDepth,
		RetryBaseNs:       foRetryBase,
		RetryCapNs:        foRetryCap,
		BreakerThreshold:  foBreakerTrip,
		BreakerCooldownNs: foCooldownNs,
		ServiceNsPerWord:  foServiceNsPerWord,
	}
}

// FailoverResult is one harness execution. Offered always equals
// Completed + FailedDeadline + LostClient + ShedMemory.
type FailoverResult struct {
	Result // makespan, checksum (rerun-stable), runtime stats

	Offered        int // planned requests
	Completed      int // served with a real reply
	GoodSLO        int // completed within DeadlineNs of the scheduled arrival
	FailedDeadline int // deadline expired before any replica replied
	LostClient     int // client-side chain died with a crashed vproc
	ShedMemory     int // request buffer allocation failed (bounded heaps)

	Retries      int64 // re-attempts (timeout, full-lane, reroute)
	Rerouted     int64 // attempts redirected off a crashed/closed lane
	Hedged       int64 // hedge copies sent
	HedgeWins    int64 // completions served by the hedge's target replica
	BreakerTrips int64 // closed/half-open → open transitions
	FastFails    int64 // attempt instants where every breaker was open
	LateReplies  int64 // replies that arrived after their request resolved

	Crashes int // vprocs killed by the harness's crash plan

	// Pre/post-crash split by scheduled arrival instant (all "post" when
	// CrashNone, whose CrashNs is 0): the degradation figure's numerator
	// and denominator, with the lost-client split telling co-located client
	// death apart from serving-side failure.
	OfferedPre, GoodPre, LostPre    int
	OfferedPost, GoodPost, LostPost int

	// WindowNs is the planned arrival horizon; HorizonNs the watchdog
	// deadline that bounds the makespan.
	WindowNs  int64
	HorizonNs int64

	Hist     Hist // completed-request latencies from scheduled arrival
	P50, P99 int64
}

// ServingGoodputPost returns the post-crash goodput numerator and
// denominator for requests whose clients survived to observe an outcome —
// the serving layer's failover figure of merit. (A dead client offers no
// load in a real system; the harness plans every arrival up front, so a
// dead client's requests land in LostPost instead of disappearing, and
// counting them against the serving layer would charge the fabric for
// clients it could never have answered.)
func (r FailoverResult) ServingGoodputPost() (num, den int) {
	return r.GoodPost, r.OfferedPost - r.LostPost
}

// Checksum outcome tags (distinct from the overload harness's: a failover
// run must not alias an overload run's fold).
const (
	foTagDeadline = 0xD1
	foTagLost     = 0x10
	foTagMemory   = 0x3B
)

// foBreaker is one replica's circuit breaker. States: closed (admit all),
// open (admit none until the cooldown), half-open (one probe in flight; its
// outcome closes or re-opens). A crashed lane pins the breaker open forever.
type foBreaker struct {
	state    int // 0 closed, 1 open, 2 half-open
	fails    int // consecutive failures while closed
	openedAt int64
	dead     bool
	trips    int64
}

// allow reports whether an attempt may target the replica now, advancing
// open → half-open when the cooldown has elapsed (the caller's attempt is
// the probe).
func (b *foBreaker) allow(now, cooldown int64) bool {
	switch b.state {
	case 0:
		return true
	case 1:
		if !b.dead && now >= b.openedAt+cooldown {
			b.state = 2
			return true
		}
		return false
	default: // half-open: the probe is in flight; admit nothing else
		return false
	}
}

// success records a served reply: the probe (or any closed-state success)
// resets the breaker. A dead breaker stays open — a straggler reply from a
// crashed replica (served before the crash, delivered after) is not
// evidence of life.
func (b *foBreaker) success() {
	if b.dead {
		return
	}
	b.state = 0
	b.fails = 0
}

// failure records a failed attempt (reply timeout, lane still full after
// the retry budget): a half-open probe re-opens immediately, a closed
// breaker opens at the threshold.
func (b *foBreaker) failure(now int64, threshold int) {
	b.fails++
	if b.state == 2 || (b.state == 0 && b.fails >= threshold) {
		b.state = 1
		b.openedAt = now
		b.trips++
	}
}

// trip pins the breaker open: the lane reported SendCrashed/SendClosed, so
// no probe can ever succeed.
func (b *foBreaker) trip(now int64) {
	if b.state != 1 {
		b.trips++
	}
	b.state = 1
	b.openedAt = now
	b.dead = true
}

// foState is the harness's host-side bookkeeping; all mutation happens in
// engine-serialized task code.
type foState struct {
	opt  FailoverOptions
	seed uint64

	arrival [][]int64 // scheduled arrival instants
	words   [][]int   // payload words
	acc     []uint64  // per-client commutative resolution fold
	done    [][]bool  // request resolved exactly-once guard
	hedgeTo [][]int   // hedge target replica per request, -1 if none sent

	homes    []int // replica home vproc IDs
	lanes    []*core.Channel
	replies  [][]*core.Channel // one reply channel per request
	breakers []foBreaker

	unresolved     int
	completed      int
	goodSLO        int
	failedDeadline int
	lostClient     int
	shedMemory     int
	retries        int64
	rerouted       int64
	hedged         int64
	hedgeWins      int64
	fastFails      int64
	lateReplies    int64
	goodPre        int
	goodPost       int
	lostPre        int
	lostPost       int
	hist           Hist
	horizon        int64
}

// foPlan draws every arrival instant and payload shape up front (same
// stream discipline as the overload harness, so a failover point's offered
// load matches an overload point's at equal options).
func foPlan(seed uint64, opt FailoverOptions) *foState {
	st := &foState{opt: opt, seed: seed, unresolved: opt.Clients * opt.Requests}
	st.arrival = make([][]int64, opt.Clients)
	st.words = make([][]int, opt.Clients)
	st.acc = make([]uint64, opt.Clients)
	st.done = make([][]bool, opt.Clients)
	st.hedgeTo = make([][]int, opt.Clients)
	for c := 0; c < opt.Clients; c++ {
		rng := newRand(latClientSeed(seed, c))
		st.arrival[c] = make([]int64, opt.Requests)
		st.words[c] = make([]int, opt.Requests)
		st.done[c] = make([]bool, opt.Requests)
		st.hedgeTo[c] = make([]int, opt.Requests)
		for r := range st.hedgeTo[c] {
			st.hedgeTo[c][r] = -1
		}
		var t int64
		for r := 0; r < opt.Requests; r++ {
			gap := opt.MeanGapNs/2 + int64(rng.next()%uint64(opt.MeanGapNs))
			t += gap
			st.arrival[c][r] = t
			_, words := srvRequestShape(rng)
			st.words[c][r] = words
		}
	}
	return st
}

// deadline is request (c, r)'s absolute deadline.
func (st *foState) deadline(c, r int) int64 {
	return st.arrival[c][r] + st.opt.DeadlineNs
}

// foHomes spreads the replica home vprocs round-robin over the machine's
// boards, skipping vproc 0 (the coordinator that owns the termination
// watchdog must survive every harness crash plan). Deterministic in the
// runtime's placement.
func foHomes(rt *core.Runtime, replicas int) []int {
	topo := rt.Cfg.Topo
	byBoard := make([][]int, topo.Boards())
	for _, vp := range rt.VProcs {
		if vp.ID == 0 {
			continue
		}
		b := topo.BoardOfNode(vp.Node)
		byBoard[b] = append(byBoard[b], vp.ID)
	}
	homes := make([]int, replicas)
	cnt := make([]int, len(byBoard))
	b := 0
	for i := range homes {
		for len(byBoard[b%len(byBoard)]) == 0 {
			b++
		}
		g := byBoard[b%len(byBoard)]
		homes[i] = g[cnt[b%len(byBoard)]%len(g)]
		cnt[b%len(byBoard)]++
		b++
	}
	return homes
}

// resolve retires request (c, r) exactly once: the reply channel closes (a
// straggler reply or hedge handler finds it dead), and the last resolution
// closes every surviving lane, releasing the server pool.
func (st *foState) resolve(c, r int) {
	st.done[c][r] = true
	st.replies[c][r].Close()
	st.unresolved--
	if st.unresolved == 0 {
		for _, lane := range st.lanes {
			if !lane.Closed() {
				lane.Close()
			}
		}
	}
}

// foArm schedules client c's request r at its planned arrival and chains
// the next (open-loop: planned absolute instants, so a degraded runtime
// does not slow the offered load down). The chain is owned by whichever
// vproc runs the client's spawn task; if that vproc crashes, the chain's
// remaining requests are lost — exactly the co-located-client loss the
// watchdog classifies.
func foArm(vp *core.VProc, st *foState, c, r int) {
	if r == st.opt.Requests {
		return
	}
	vp.AtThen(st.arrival[c][r], nil, func(vp *core.VProc, _ core.Env) {
		foAttempt(vp, st, c, r, 0)
		foArm(vp, st, c, r+1)
	})
}

// foPickReplica returns the first replica from the request's deterministic
// rotation whose breaker admits an attempt now, or -1 if every breaker is
// open. The rotation start varies by (client, attempt) so retries change
// replica and clients spread over the pool.
func foPickReplica(st *foState, now int64, c, attempt int) int {
	n := len(st.lanes)
	start := (c + attempt) % n
	for i := 0; i < n; i++ {
		rep := (start + i) % n
		if st.breakers[rep].allow(now, st.opt.BreakerCooldownNs) {
			return rep
		}
	}
	return -1
}

// foAttempt makes one routing attempt for request (c, r). Payload layout:
// [client, seq, noise...] — identical across attempts and hedges, so the
// reply checksum is independent of which replica serves it.
func foAttempt(vp *core.VProc, st *foState, c, r, attempt int) {
	if st.done[c][r] {
		return
	}
	now := vp.Now()
	if now >= st.deadline(c, r) {
		st.failedDeadline++
		st.acc[c] += fnv1a(fnv1a(foTagDeadline, uint64(r)), uint64(attempt))
		st.resolve(c, r)
		return
	}
	rep := foPickReplica(st, now, c, attempt)
	if rep < 0 {
		// Every breaker is open: fail fast, then re-probe after the
		// shortest interval that can change the answer.
		st.fastFails++
		st.retries++
		vp.AfterThen(foBackoff(st, c, r, attempt+1), nil, func(vp *core.VProc, _ core.Env) {
			foAttempt(vp, st, c, r, attempt+1)
		})
		return
	}
	if !foSend(vp, st, c, r, attempt, rep) {
		return
	}
	foAwaitReply(vp, st, c, r, attempt, rep)
	if st.opt.HedgeDelayNs > 0 && attempt == 0 {
		vp.AfterThen(st.opt.HedgeDelayNs, nil, func(vp *core.VProc, _ core.Env) {
			foHedge(vp, st, c, r, rep)
		})
	}
}

// foSend builds the request buffer and offers it to replica rep's lane,
// handling every admission outcome. Reports whether the request is now in
// flight (a reply handler should park); false means the attempt already
// rerouted, backed off, or resolved.
func foSend(vp *core.VProc, st *foState, c, r, attempt, rep int) bool {
	words := st.words[c][r]
	rng := newRand(latReqSeed(st.seed, c, r))
	buf := make([]uint64, words)
	buf[0], buf[1] = uint64(c), uint64(r)
	for i := 2; i < words; i++ {
		buf[i] = rng.next()
	}
	a, ast := vp.TryAllocRaw(buf)
	if ast != core.AllocOK {
		st.shedMemory++
		st.acc[c] += fnv1a(fnv1a(foTagMemory, uint64(r)), uint64(attempt))
		st.resolve(c, r)
		return false
	}
	s := vp.PushRoot(a)
	status := st.lanes[rep].TrySend(vp, s)
	vp.PopRoots(1)
	switch status {
	case core.SendOK:
		return true
	case core.SendFull:
		st.breakers[rep].failure(vp.Now(), st.opt.BreakerThreshold)
		st.retries++
		vp.AfterThen(foBackoff(st, c, r, attempt+1), nil, func(vp *core.VProc, _ core.Env) {
			foAttempt(vp, st, c, r, attempt+1)
		})
	case core.SendCrashed, core.SendClosed:
		// The replica is dead: pin its breaker and reroute immediately —
		// a dead lane costs no backoff.
		st.breakers[rep].trip(vp.Now())
		st.rerouted++
		st.retries++
		foAttempt(vp, st, c, r, attempt+1)
	}
	return false
}

// foBackoff is the capped exponential backoff with per-(request, attempt)
// seeded jitter — the overload harness's discipline with failover's cap.
func foBackoff(st *foState, c, r, attempt int) int64 {
	base := st.opt.RetryBaseNs << uint(attempt-1)
	if base > st.opt.RetryCapNs || base <= 0 {
		base = st.opt.RetryCapNs
	}
	j := newRand(fnv1a(latReqSeed(st.seed, c, r), uint64(attempt)) | 1)
	return base/2 + int64(j.next()%uint64(base))
}

// foAwaitReply parks a reply handler with the per-attempt timeout. A
// timeout records a breaker failure (the replica accepted and went dark —
// crashed mid-service, or hopelessly backlogged) and retries; a reply
// resolves the request unless a racing path already did.
//
// The reply channel is per-request, not per-attempt: when copies are in
// flight (a hedge, or a retry racing a straggler), whichever reply arrives
// first is delivered to the earliest parked handler — so attribution comes
// from the reply itself, which carries the serving replica's index.
func foAwaitReply(vp *core.VProc, st *foState, c, r, attempt, rep int) {
	st.replies[c][r].RecvThenTimeout(vp, st.opt.AttemptNs, nil, func(vp *core.VProc, _ core.Env, msg heap.Addr, ok bool) {
		if st.done[c][r] {
			if ok && msg != 0 {
				st.lateReplies++
			}
			return
		}
		if !ok {
			// Timeout. The request may still be served later (the reply
			// channel stays open until resolution) — a straggler reply
			// can win against the retry, never double-resolve.
			st.breakers[rep].failure(vp.Now(), st.opt.BreakerThreshold)
			st.retries++
			foAttempt(vp, st, c, r, attempt+1)
			return
		}
		if msg == 0 {
			// The reply channel was closed by a racing resolution whose
			// done-flag write this callback ordered after; nothing to do.
			return
		}
		p := vp.ReadBlock(msg)
		servedBy := int(p[2])
		st.breakers[servedBy].success()
		lat := vp.Now() - st.arrival[c][r]
		st.hist.Record(lat)
		st.completed++
		good := lat <= st.opt.DeadlineNs
		if good {
			st.goodSLO++
		}
		if st.arrival[c][r] < st.opt.CrashNs {
			if good {
				st.goodPre++
			}
		} else if good {
			st.goodPost++
		}
		if st.hedgeTo[c][r] == servedBy {
			st.hedgeWins++
		}
		st.acc[c] += fnv1a(fnv1a(0, uint64(r)), p[1])
		st.resolve(c, r)
	})
}

// foHedge sends the identical request copy to a different replica than the
// primary attempt used. Unlike a retry it does not reroute or back off: the
// primary is still in flight, the hedge is pure insurance.
func foHedge(vp *core.VProc, st *foState, c, r, primary int) {
	if st.done[c][r] {
		return
	}
	now := vp.Now()
	n := len(st.lanes)
	rep := -1
	for i := 1; i < n; i++ {
		cand := (primary + i) % n
		if st.breakers[cand].allow(now, st.opt.BreakerCooldownNs) {
			rep = cand
			break
		}
	}
	if rep < 0 {
		return
	}
	words := st.words[c][r]
	rng := newRand(latReqSeed(st.seed, c, r))
	buf := make([]uint64, words)
	buf[0], buf[1] = uint64(c), uint64(r)
	for i := 2; i < words; i++ {
		buf[i] = rng.next()
	}
	a, ast := vp.TryAllocRaw(buf)
	if ast != core.AllocOK {
		return // the primary attempt still carries the request
	}
	s := vp.PushRoot(a)
	status := st.lanes[rep].TrySend(vp, s)
	vp.PopRoots(1)
	if status != core.SendOK {
		if status == core.SendCrashed || status == core.SendClosed {
			st.breakers[rep].trip(vp.Now())
		}
		return
	}
	st.hedged++
	st.hedgeTo[c][r] = rep
	foAwaitReply(vp, st, c, r, 0, rep)
}

// foServe is one server chain of replica rep: receive from the lane,
// service, reply to the request's own channel, re-park. A nil message is
// the lane dying — orderly shutdown or the home vproc's crash — either way
// the chain exits.
func foServe(vp *core.VProc, st *foState, rep int) {
	st.lanes[rep].RecvThen(vp, nil, func(vp *core.VProc, _ core.Env, msg heap.Addr) {
		if msg == 0 {
			return
		}
		words := vp.ObjectLen(msg)
		p := vp.ReadBlockCompute(msg, int64(words)*st.opt.ServiceNsPerWord)
		c, r := int(p[0]), int(p[1])
		var sum uint64
		for _, w := range p {
			sum = fnv1a(sum, w)
		}
		out := vp.AllocRaw([]uint64{uint64(r), sum, uint64(rep)})
		os := vp.PushRoot(out)
		if st.replies[c][r].Send(vp, os) != core.SendOK {
			// The request resolved (deadline, hedge win, watchdog) while
			// this reply was being computed; the work is discarded.
			st.lateReplies++
		}
		vp.PopRoots(1)
		foServe(vp, st, rep)
	})
}

// foCrashPlan builds the harness's crash plan against the resolved homes,
// returning the plan (nil for CrashNone), the crashed-board ID (or -1), and
// validating that the fault can never take the coordinator down.
func foCrashPlan(rt *core.Runtime, st *foState) (*core.FaultPlan, int) {
	opt := st.opt
	switch opt.Crash {
	case CrashNone:
		return nil, -1
	case CrashVProc:
		target := st.homes[len(st.homes)-1]
		return (&core.FaultPlan{}).CrashAt(target, opt.CrashNs), -1
	case CrashBoard:
		topo := rt.Cfg.Topo
		if topo.Boards() < 2 {
			panic(fmt.Sprintf("workload: CrashBoard on single-board topology %s", topo.Name))
		}
		keep := topo.BoardOfNode(rt.VProcs[0].Node)
		for _, home := range st.homes {
			if b := topo.BoardOfNode(rt.VProcs[home].Node); b != keep {
				return (&core.FaultPlan{}).CrashBoardAt(b, opt.CrashNs), b
			}
		}
		panic("workload: CrashBoard found no replica home off the coordinator's board (need Replicas >= 2)")
	}
	panic(fmt.Sprintf("workload: unknown crash kind %d", int(opt.Crash)))
}

// RunFailover executes the harness. The virtual results are deterministic —
// bit-identical across reruns at any host-side worker count.
func RunFailover(rt *core.Runtime, opt FailoverOptions) FailoverResult {
	if opt.Clients < 1 || opt.Requests < 1 || opt.MeanGapNs < 2 {
		panic(fmt.Sprintf("workload: bad failover options %+v", opt))
	}
	if opt.DeadlineNs < 1 || opt.AttemptNs < 1 || opt.AttemptNs > opt.DeadlineNs {
		panic(fmt.Sprintf("workload: failover needs 1 <= AttemptNs <= DeadlineNs, got %d/%d", opt.AttemptNs, opt.DeadlineNs))
	}
	if opt.Replicas < 1 || opt.ServersPerReplica < 1 || opt.LaneDepth < 1 {
		panic(fmt.Sprintf("workload: bad failover pool shape %+v", opt))
	}
	if opt.RetryBaseNs < 2 || opt.RetryCapNs < opt.RetryBaseNs {
		panic(fmt.Sprintf("workload: bad failover backoff %d/%d", opt.RetryBaseNs, opt.RetryCapNs))
	}
	if opt.BreakerThreshold < 1 || opt.BreakerCooldownNs < 1 {
		panic(fmt.Sprintf("workload: bad breaker options %+v", opt))
	}
	if opt.HedgeDelayNs < 0 {
		panic(fmt.Sprintf("workload: negative hedge delay %d", opt.HedgeDelayNs))
	}
	if opt.Crash != CrashNone && opt.CrashNs < 1 {
		panic(fmt.Sprintf("workload: crash kind %v needs CrashNs >= 1", opt.Crash))
	}
	if opt.Crash == CrashNone && opt.CrashNs != 0 {
		panic("workload: CrashNs set without a crash kind")
	}
	if rt.Cfg.NumVProcs < 2 {
		panic("workload: failover needs at least 2 vprocs (vproc 0 is the never-crashed coordinator)")
	}

	st := foPlan(rt.Cfg.Seed, opt)
	st.homes = foHomes(rt, opt.Replicas)
	st.lanes = make([]*core.Channel, opt.Replicas)
	st.breakers = make([]foBreaker, opt.Replicas)
	for i := range st.lanes {
		st.lanes[i] = rt.NewMailbox(opt.LaneDepth)
		st.lanes[i].SetOwner(rt.VProcs[st.homes[i]])
	}
	st.replies = make([][]*core.Channel, opt.Clients)
	for c := range st.replies {
		st.replies[c] = make([]*core.Channel, opt.Requests)
		for r := range st.replies[c] {
			st.replies[c][r] = rt.NewChannel()
		}
	}

	crashPlan, crashedBoard := foCrashPlan(rt, st)
	faults := opt.Faults
	if crashPlan != nil {
		// Copy before extending: InstallFaults arms pointers into the event
		// slice and callers may reuse their plan across runs.
		var events []core.FaultEvent
		if faults != nil {
			events = append(events, faults.Events...)
		}
		faults = &core.FaultPlan{Events: append(events, crashPlan.Events...)}
	}
	if faults != nil {
		rt.InstallFaults(faults)
	}

	// The watchdog horizon bounds every resolution path: the last scheduled
	// arrival, plus its full deadline budget, plus one attempt timeout (a
	// handler parked just before the deadline), plus slack for the final
	// callback's own charges.
	var lastArrival int64
	for c := range st.arrival {
		if t := st.arrival[c][opt.Requests-1]; t > lastArrival {
			lastArrival = t
		}
	}
	st.horizon = lastArrival + opt.DeadlineNs + opt.AttemptNs + 20_000

	elapsed := rt.Run(func(vp *core.VProc) {
		// Termination watchdog, owned by vproc 0 (never a crash target):
		// classifies requests whose client chains died with a crashed vproc
		// and closes the lanes so the server pool drains. With no crash it
		// finds nothing unresolved and only pins the makespan to the horizon.
		vp.AtThen(st.horizon, nil, func(vp *core.VProc, _ core.Env) {
			for c := 0; c < opt.Clients; c++ {
				for r := 0; r < opt.Requests; r++ {
					if !st.done[c][r] {
						st.lostClient++
						if st.arrival[c][r] < st.opt.CrashNs {
							st.lostPre++
						} else {
							st.lostPost++
						}
						st.acc[c] += fnv1a(fnv1a(foTagLost, uint64(c)), uint64(r))
						st.resolve(c, r)
					}
				}
			}
		})
		for rep := 0; rep < opt.Replicas; rep++ {
			for s := 0; s < opt.ServersPerReplica; s++ {
				rep := rep
				vp.Spawn(func(svp *core.VProc, _ core.Env) {
					foServe(svp, st, rep)
				})
			}
		}
		for c := 0; c < opt.Clients; c++ {
			c := c
			vp.Spawn(func(cvp *core.VProc, _ core.Env) {
				foArm(cvp, st, c, 0)
			})
		}
	})

	var check uint64
	for _, a := range st.acc {
		check = fnv1a(check, a)
	}
	res := FailoverResult{
		Result:         Result{ElapsedNs: elapsed, Check: check, Stats: rt.TotalStats()},
		Offered:        opt.Clients * opt.Requests,
		Completed:      st.completed,
		GoodSLO:        st.goodSLO,
		FailedDeadline: st.failedDeadline,
		LostClient:     st.lostClient,
		ShedMemory:     st.shedMemory,
		Retries:        st.retries,
		Rerouted:       st.rerouted,
		Hedged:         st.hedged,
		HedgeWins:      st.hedgeWins,
		FastFails:      st.fastFails,
		LateReplies:    st.lateReplies,
		Crashes:        rt.TotalStats().Crashes,
		GoodPre:        st.goodPre,
		GoodPost:       st.goodPost,
		LostPre:        st.lostPre,
		LostPost:       st.lostPost,
		WindowNs:       lastArrival,
		HorizonNs:      st.horizon,
		Hist:           st.hist,
	}
	_ = crashedBoard
	for _, b := range st.breakers {
		res.BreakerTrips += b.trips
	}
	for c := range st.arrival {
		for _, t := range st.arrival[c] {
			if t < opt.CrashNs {
				res.OfferedPre++
			} else {
				res.OfferedPost++
			}
		}
	}
	res.P50 = res.Hist.Quantile(50, 100)
	res.P99 = res.Hist.Quantile(99, 100)
	if got := res.Completed + res.FailedDeadline + res.LostClient + res.ShedMemory; got != res.Offered {
		panic(fmt.Sprintf("workload: failover accounting leak: %d resolved of %d offered", got, res.Offered))
	}
	return res
}

// RunFailoverSpec adapts the harness to the benchmark-suite Spec interface:
// the registry entry exercises replicated routing under a single-vproc
// crash, so the generic determinism and span-parallel gates cover the crash
// subsystem end to end.
func RunFailoverSpec(rt *core.Runtime, scale float64) Result {
	opt := DefaultFailoverOptions(scale)
	opt.Crash = CrashVProc
	opt.CrashNs = opt.MeanGapNs * int64(opt.Requests) / 2
	return RunFailover(rt, opt).Result
}
