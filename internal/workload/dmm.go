package workload

import (
	"repro/internal/core"
	"repro/internal/heap"
)

// DMM (§4.1): "a dense-matrix by dense-matrix multiplication in which each
// matrix is 600 x 600." The paper reports near-ideal speedup (§4.2):
// abundant independent parallelism and excellent locality, because each
// output row's input row is built (and therefore physically placed) by the
// vproc that later consumes it.

// dmmBaseN is the default (scale=1) matrix dimension; the paper uses 600.
const dmmBaseN = 144

// dmmFlopNs is the modelled cost of one fused multiply-add.
const dmmFlopNs = 1

// RunDMM executes the benchmark; Check is an FNV fold of the product
// matrix.
func RunDMM(rt *core.Runtime, scale float64) Result {
	n := scaled(dmmBaseN, scale)
	var check uint64
	var t0, t1 int64
	rt.Run(func(vp *core.VProc) {
		// Shared row tables in the global heap.
		aRows := vp.AllocGlobalVectorN(n)
		aSlot := vp.PushRoot(aRows)
		bRows := vp.AllocGlobalVectorN(n)
		bSlot := vp.PushRoot(bRows)
		cRows := vp.AllocGlobalVectorN(n)
		cSlot := vp.PushRoot(cRows)

		// Build both inputs in parallel, row by row. The builder of
		// row i is (deterministically) the vproc whose compute task
		// will read A's row i, so under the local placement policy the
		// data lands on the consumer's node.
		vp.ParallelRange(0, n, rowGrain(n, rt.Cfg.NumVProcs),
			[]heap.Addr{vp.Root(aSlot), vp.Root(bSlot)},
			func(vp *core.VProc, lo, hi int, env core.Env) {
				for i := lo; i < hi; i++ {
					buildDMMRow(vp, env, 0, i, n, 3)
					buildDMMRow(vp, env, 1, i, n, 7)
				}
			})

		// Multiply (the timed region): one task block per group of
		// output rows.
		t0 = vp.Now()
		vp.ParallelRange(0, n, rowGrain(n, rt.Cfg.NumVProcs),
			[]heap.Addr{vp.Root(aSlot), vp.Root(bSlot), vp.Root(cSlot)},
			func(vp *core.VProc, lo, hi int, env core.Env) {
				for i := lo; i < hi; i++ {
					multiplyRow(vp, env, i, n)
				}
			})

		t1 = vp.Now()

		// Checksum the product.
		for i := 0; i < n; i++ {
			row := vp.LoadPtr(vp.Root(cSlot), i)
			for _, w := range vp.ReadBlock(row) {
				check = fnv1a(check, w)
			}
		}
		vp.PopRoots(3)
	})
	return Result{ElapsedNs: t1 - t0, Check: check, Stats: rt.TotalStats()}
}

// dmmElem is the deterministic input generator: element (i,j) of the matrix
// with salt s.
func dmmElem(i, j, s int) float64 {
	return float64((i*31+j*17+s)%97) / 97.0
}

// buildDMMRow allocates row i locally, fills it, and publishes it into the
// global row table held in env slot which.
func buildDMMRow(vp *core.VProc, env core.Env, which, i, n, salt int) {
	vals := make([]uint64, n)
	for j := 0; j < n; j++ {
		vals[j] = f2w(dmmElem(i, j, salt))
	}
	row := vp.AllocRaw(vals)
	rs := vp.PushRoot(row)
	vp.StoreGlobalPtr(env.Get(vp, which), i, rs)
	vp.PopRoots(1)
	vp.Compute(int64(n) * 2) // generation arithmetic
}

// multiplyRow computes C[i] = A[i] * B. The A row streams from memory (it
// was built by — and is homed near — the vproc that computes with it); B is
// reused by every row a vproc computes and fits in L3, so it is charged at
// cache cost ("excellent locality and almost no shared data", §4.2).
func multiplyRow(vp *core.VProc, env core.Env, i, n int) {
	a := vp.LoadPtr(env.Get(vp, 0), i)
	arow := append([]uint64(nil), vp.ReadBlock(a)...)
	out := make([]uint64, n)
	acc := make([]float64, n)
	for k := 0; k < n; k++ {
		b := vp.LoadPtr(env.Get(vp, 1), k)
		brow := vp.ReadBlockCached(b)
		aik := w2f(arow[k])
		for j := 0; j < n; j++ {
			acc[j] += aik * w2f(brow[j])
		}
		vp.Compute(int64(n) * dmmFlopNs)
	}
	for j := 0; j < n; j++ {
		out[j] = f2w(acc[j])
	}
	row := vp.AllocRaw(out)
	rs := vp.PushRoot(row)
	vp.StoreGlobalPtr(env.Get(vp, 2), i, rs)
	vp.PopRoots(1)
}

// rowGrain picks a block size that yields a few tasks per vproc.
func rowGrain(n, vprocs int) int {
	g := n / (vprocs * 4)
	if g < 1 {
		g = 1
	}
	return g
}

// DMMSeq is the sequential reference.
func DMMSeq(scale float64) uint64 {
	n := scaled(dmmBaseN, scale)
	var check uint64
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = 0
		}
		for k := 0; k < n; k++ {
			aik := dmmElem(i, k, 3)
			for j := 0; j < n; j++ {
				row[j] += aik * dmmElem(k, j, 7)
			}
		}
		for j := 0; j < n; j++ {
			check = fnv1a(check, f2w(row[j]))
		}
	}
	return check
}
