package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/numa"
)

// testConfig builds a small-machine config for correctness tests.
func testConfig(nvprocs int) core.Config {
	topo := numa.Custom("wl-test", 2, 2, 2, 20, 15, 6)
	cfg := core.DefaultConfig(topo, nvprocs)
	cfg.LocalHeapWords = 8 << 10
	cfg.ChunkWords = 2 << 10
	return cfg
}

// runAt executes a benchmark at the given vproc count and scale.
func runAt(t *testing.T, spec Spec, nv int, scale float64, debug bool) Result {
	t.Helper()
	cfg := testConfig(nv)
	cfg.Debug = debug
	rt := core.MustNewRuntime(cfg)
	res := spec.Run(rt, scale)
	if err := rt.VerifyHeap(); err != nil {
		t.Fatalf("%s at %d vprocs: heap invariants: %v", spec.Name, nv, err)
	}
	return res
}

func TestQuicksortMatchesReference(t *testing.T) {
	spec, _ := ByName("quicksort")
	want := QuicksortSeq(testConfig(1).Seed, 0.25)
	for _, nv := range []int{1, 3, 8} {
		got := runAt(t, spec, nv, 0.25, nv == 3)
		if got.Check != want {
			t.Errorf("quicksort at %d vprocs: check %d, want %d", nv, got.Check, want)
		}
	}
}

func TestDMMMatchesReference(t *testing.T) {
	spec, _ := ByName("dmm")
	want := DMMSeq(0.5)
	for _, nv := range []int{1, 4} {
		got := runAt(t, spec, nv, 0.5, nv == 4)
		if got.Check != want {
			t.Errorf("dmm at %d vprocs: check %d, want %d", nv, got.Check, want)
		}
	}
}

func TestSMVMMatchesReference(t *testing.T) {
	spec, _ := ByName("smvm")
	want := SMVMSeq(0.25)
	for _, nv := range []int{1, 4} {
		got := runAt(t, spec, nv, 0.25, false)
		if got.Check != want {
			t.Errorf("smvm at %d vprocs: check %d, want %d", nv, got.Check, want)
		}
	}
}

func TestRaytracerMatchesReference(t *testing.T) {
	spec, _ := ByName("raytracer")
	want := RaytracerSeq(0.5)
	for _, nv := range []int{1, 4} {
		got := runAt(t, spec, nv, 0.5, false)
		if got.Check != want {
			t.Errorf("raytracer at %d vprocs: check %d, want %d", nv, got.Check, want)
		}
	}
}

func TestBarnesHutDeterministicAcrossVProcs(t *testing.T) {
	spec, _ := ByName("barnes-hut")
	// The parallel result must be schedule-independent: identical at
	// every vproc count (pure computation over the same tree).
	base := runAt(t, spec, 1, 0.25, false)
	for _, nv := range []int{2, 6} {
		got := runAt(t, spec, nv, 0.25, false)
		if got.Check != base.Check {
			t.Errorf("barnes-hut at %d vprocs: check %d, want %d", nv, got.Check, base.Check)
		}
	}
}

func TestSyntheticMatchesReference(t *testing.T) {
	spec, _ := ByName("synthetic")
	for _, nv := range []int{1, 4} {
		want := SyntheticSeq(nv, 0.3)
		got := runAt(t, spec, nv, 0.3, false)
		if got.Check != want {
			t.Errorf("synthetic at %d vprocs: check %d, want %d", nv, got.Check, want)
		}
	}
}

func TestWorkloadsExerciseTheCollector(t *testing.T) {
	// Each workload must actually stress the machinery it claims to:
	// allocation everywhere, minor GCs for the churners.
	for _, name := range []string{"quicksort", "barnes-hut", "synthetic"} {
		spec, _ := ByName(name)
		res := runAt(t, spec, 4, 0.25, false)
		if res.Stats.MinorGCs == 0 {
			t.Errorf("%s: no minor collections", name)
		}
		if res.Stats.AllocWords == 0 {
			t.Errorf("%s: no allocation", name)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	for _, s := range All() {
		if got, err := ByName(s.Name); err != nil || got.Name != s.Name {
			t.Errorf("ByName(%q) = %v, %v", s.Name, got.Name, err)
		}
	}
}

func TestBarnesHutPhysicsAgainstDirectSum(t *testing.T) {
	// Validate the Barnes-Hut force approximation against a direct O(n^2)
	// sum for one step on the host: the tree code and the physics share
	// plummer() and the same constants, so a gross error here means the
	// tree is wrong.
	n := 256
	bodies := plummer(testConfig(1).Seed, n)
	// Direct accelerations.
	type acc struct{ ax, ay float64 }
	direct := make([]acc, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := bodies[j][bodyX] - bodies[i][bodyX]
			dy := bodies[j][bodyY] - bodies[i][bodyY]
			d2 := dx*dx + dy*dy + 1e-4
			inv := 1 / sqrt64(d2)
			f := bodies[j][bodyMass] * inv * inv * inv
			direct[i].ax += f * dx
			direct[i].ay += f * dy
		}
	}
	// One simulated step at 1 vproc; compare positions to a host-side
	// direct-sum step.
	cfg := testConfig(1)
	rt := core.MustNewRuntime(cfg)
	d := RegisterBHDescs(rt)
	var simX, simY []float64
	rt.Run(func(vp *core.VProc) {
		cur := vp.AllocGlobalVectorN(n)
		curSlot := vp.PushRoot(cur)
		for i := 0; i < n; i++ {
			w := make([]uint64, bodyWords)
			for k, f := range bodies[i] {
				w[k] = f2w(f)
			}
			b := vp.AllocRaw(w)
			bs := vp.PushRoot(b)
			vp.StoreGlobalPtr(vp.Root(curSlot), i, bs)
			vp.PopRoots(1)
		}
		rootSlot := vp.PushRoot(buildQuadtree(vp, d, curSlot, n))
		vp.PromoteRoot(rootSlot)
		next := vp.AllocGlobalVectorN(n)
		nextSlot := vp.PushRoot(next)
		for i := 0; i < n; i++ {
			env := vp.MakeEnv(vp.Root(curSlot), vp.Root(rootSlot), vp.Root(nextSlot))
			stepBody(vp, d, env, i)
			vp.PopRoots(3)
		}
		for i := 0; i < n; i++ {
			b := vp.LoadPtr(vp.Root(nextSlot), i)
			p := vp.ReadBlock(b)
			simX = append(simX, w2f(p[bodyX]))
			simY = append(simY, w2f(p[bodyY]))
		}
		vp.PopRoots(3)
	})
	var worst float64
	for i := 0; i < n; i++ {
		vx := bodies[i][bodyVX] + direct[i].ax*bhDT
		vy := bodies[i][bodyVY] + direct[i].ay*bhDT
		wantX := bodies[i][bodyX] + vx*bhDT
		wantY := bodies[i][bodyY] + vy*bhDT
		dx, dy := simX[i]-wantX, simY[i]-wantY
		err := sqrt64(dx*dx + dy*dy)
		if err > worst {
			worst = err
		}
	}
	// theta=0.5 should approximate a single step to well under 1e-3 in
	// these units.
	if worst > 1e-3 {
		t.Errorf("Barnes-Hut vs direct sum: worst position error %g > 1e-3", worst)
	}
}

func sqrt64(x float64) float64 { return math.Sqrt(x) }
