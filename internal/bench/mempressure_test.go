package bench

import "testing"

// TestMempressureSweepDeterministicAcrossWorkers: the memory-pressure
// sweep's virtual results — goodput, shed/emergency/alloc-failure
// accounting, checksums, percentiles — must be bit-identical for any -j
// worker count. A trimmed sweep (the unbounded anchor, the tightest
// budget, and the squeeze points) keeps the test fast while covering the
// memory gate, the emergency ladder, and the squeeze-fault paths.
func TestMempressureSweepDeterministicAcrossWorkers(t *testing.T) {
	sw := DefaultMempressureSweep()
	sw.Budgets = []int{0, 16}
	serial := MeasureMempressure(sw, 1, 1, nil)
	parallel := MeasureMempressure(sw, 4, 4, nil)
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].VirtualEq(parallel[i]) {
			t.Errorf("%s differs across worker counts:\n  -j1: %+v\n  -j4: %+v",
				serial[i].Key(), serial[i], parallel[i])
		}
	}

	// The figure's pinned story at the tightest budget, on both machines:
	// the budget-blind policy reaches the wall (emergency ladders, failed
	// allocations), the memory-aware policy sheds at admission and never
	// does — and every point's books balance exactly.
	for _, p := range serial {
		if got := p.Completed + p.Expired + p.ShedAdmission + p.ShedFault + p.ShedMemory; got != p.Offered {
			t.Errorf("%s: %d resolved of %d offered", p.Key(), got, p.Offered)
		}
		if p.Budget != 16 {
			continue
		}
		switch p.Admission {
		case "queue":
			if p.EmergencyGCs == 0 || p.AllocFailed == 0 {
				t.Errorf("%s: emergency %d, alloc-failed %d — the blind policy should hit the wall",
					p.Key(), p.EmergencyGCs, p.AllocFailed)
			}
		case "memory":
			if p.EmergencyGCs != 0 || p.AllocFailed != 0 {
				t.Errorf("%s: emergency %d, alloc-failed %d — the aware policy should shed first",
					p.Key(), p.EmergencyGCs, p.AllocFailed)
			}
			if p.ShedMemory == 0 {
				t.Errorf("%s: the memory gate never shed", p.Key())
			}
		}
	}
}
