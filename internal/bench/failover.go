// Failover sweep: the replicated serving harness measured before and after
// injected crash faults, per machine × replication level × crash schedule.
// Each point runs workload.RunFailover under the latency sweep's GC-pressure
// heap shape; the crash schedule kills a single lane-home vproc on the flat
// machines and a whole board — half the machine, two replica homes, and
// every co-located client chain — on rack256. The figures show what
// replication buys when correlated failure takes real capacity: goodput
// before vs after the crash, the lost-work ledger (tasks, continuations,
// timers, client chains), and the routing layer's reaction (breaker trips,
// reroutes, retries, hedge wins). Crash-free points double as the
// replication-overhead baseline, and with crashes disabled the harness
// executes zero crash-path code, which is what keeps the other committed
// baselines byte-identical.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// FailoverPoint is one sweep measurement. Every field except WallNs is a
// virtual (simulated) result and must stay bit-identical across engine
// changes and across any -j/-par worker count. Like the overload checksum,
// the failover checksum is schedule-dependent (routing depends on queue
// depth and breaker state at each instant), so the compared contract is
// rerun equality at this exact configuration.
type FailoverPoint struct {
	Machine      string `json:"machine"`
	Threads      int    `json:"threads"`
	Replicas     int    `json:"replicas"`
	Crash        string `json:"crash"`
	CrashNs      int64  `json:"crash_ns,omitempty"`
	HedgeDelayNs int64  `json:"hedge_delay_ns,omitempty"`

	VirtualMs float64 `json:"virtual_ms"`
	Check     uint64  `json:"check"`
	WindowNs  int64   `json:"window_ns"`

	Offered        int `json:"offered"`
	Completed      int `json:"completed"`
	GoodSLO        int `json:"good_slo"`
	FailedDeadline int `json:"failed_deadline"`
	LostClient     int `json:"lost_client"`
	ShedMemory     int `json:"shed_memory"`

	OfferedPre  int `json:"offered_pre"`
	GoodPre     int `json:"good_pre"`
	LostPre     int `json:"lost_pre"`
	OfferedPost int `json:"offered_post"`
	GoodPost    int `json:"good_post"`
	LostPost    int `json:"lost_post"`

	Retries      int64 `json:"retries"`
	Rerouted     int64 `json:"rerouted"`
	Hedged       int64 `json:"hedged,omitempty"`
	HedgeWins    int64 `json:"hedge_wins,omitempty"`
	BreakerTrips int64 `json:"breaker_trips"`
	FastFails    int64 `json:"fast_fails"`
	LateReplies  int64 `json:"late_replies"`

	Crashes    int   `json:"crashes"`
	LostTasks  int64 `json:"lost_tasks"`
	LostConts  int64 `json:"lost_conts"`
	LostTimers int64 `json:"lost_timers"`

	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`

	GlobalGCs int   `json:"global_gcs"`
	WallNs    int64 `json:"wall_ns"`
}

// Key identifies the point's configuration.
func (p FailoverPoint) Key() string {
	k := fmt.Sprintf("%s r=%d p=%d crash=%s", p.Machine, p.Replicas, p.Threads, p.Crash)
	if p.HedgeDelayNs > 0 {
		k += "+hedge"
	}
	return k
}

// VirtualEq reports whether two points' virtual (deterministic) fields are
// bit-identical; wall time is host noise and excluded.
func (p FailoverPoint) VirtualEq(q FailoverPoint) bool {
	p.WallNs, q.WallNs = 0, 0
	return p == q
}

// FailoverSweep configures which points MeasureFailover runs. The zero
// value is invalid; start from DefaultFailoverSweep.
type FailoverSweep struct {
	// Machines are the topology presets to measure; board-kill points are
	// generated only for multi-board machines.
	Machines []string
	// Replicas is the replication ladder measured per machine.
	Replicas []int
	// Crashes are the crash kinds measured per replication level. Kinds a
	// machine cannot host (board kill on a flat machine, any kill of the
	// sole replica's home board) are skipped for that machine.
	Crashes []workload.CrashKind
	// CrashNs is the injection instant of every crashed point.
	CrashNs int64
	// HedgeDelayNs, when positive, adds a hedged variant of each
	// single-vproc-crash point.
	HedgeDelayNs int64
}

// failoverThreads is the per-machine pool size: like the overload sweep the
// flat machines run a fixed 16-vproc pool, while rack256 spreads 32 vprocs
// over its two boards so a board kill takes exactly half of them.
func failoverThreads(machine string) int {
	if machine == "rack256" {
		return 32
	}
	return overloadThreads
}

// FailoverCrashNs is the default sweep's injection instant: mid-window for
// the default 240-client x 6-request arrival plan (~2.4 virtual ms), so the
// pre- and post-crash halves both carry enough offered load to compare.
const FailoverCrashNs = 1_200_000

// FailoverHedgeNs is the default sweep's hedge delay: half the per-attempt
// timeout, so a hedge lands while the primary is still credible.
const FailoverHedgeNs = 30_000

// DefaultFailoverSweep is the fixed configuration of the committed
// FAILOVER_v1.json baseline: the replication ladder crash-free on amd48
// (the overhead axis), single-vproc kills against replication 2 and 3 with
// one hedged variant, and the correlated board kill on rack256 at
// replication 2 and 4.
func DefaultFailoverSweep() FailoverSweep {
	return FailoverSweep{
		Machines:     []string{"amd48", "rack256"},
		Replicas:     []int{1, 2, 3, 4},
		Crashes:      []workload.CrashKind{workload.CrashNone, workload.CrashVProc, workload.CrashBoard},
		CrashNs:      FailoverCrashNs,
		HedgeDelayNs: FailoverHedgeNs,
	}
}

// FailoverOptionsFor builds the workload options for one sweep point.
func FailoverOptionsFor(replicas int, crash workload.CrashKind, crashNs, hedgeNs int64) workload.FailoverOptions {
	opt := workload.DefaultFailoverOptions(1.0)
	opt.Replicas = replicas
	opt.Crash = crash
	if crash != workload.CrashNone {
		opt.CrashNs = crashNs
	}
	opt.HedgeDelayNs = hedgeNs
	return opt
}

// failoverAdmissible reports whether a (machine, replicas, crash) triple is
// a runnable point: board kills need a multi-board machine and a replica
// home off the coordinator's board, and the default ladder keeps the flat
// machines' points at replication <= 3 and the rack's at 2/4 (the two
// shapes the committed figure compares).
func failoverAdmissible(machine string, topo *numa.Topology, replicas int, crash workload.CrashKind) bool {
	if machine == "rack256" {
		if replicas%2 != 0 {
			return false // odd replication leaves the boards asymmetric
		}
	} else if replicas > 3 {
		return false
	}
	switch crash {
	case workload.CrashBoard:
		// A board kill needs a second board, and a replica home on it —
		// foHomes places homes round-robin over boards, so replication >= 2
		// guarantees one.
		return topo.Boards() >= 2 && replicas >= 2
	case workload.CrashVProc:
		// Flat-machine schedule only: the rack's crash axis is the
		// correlated board kill.
		return topo.Boards() == 1 && replicas >= 2
	}
	return true
}

// FailoverPoints enumerates the sweep.
func FailoverPoints(sw FailoverSweep) ([]FailoverPoint, error) {
	var pts []FailoverPoint
	for _, m := range sw.Machines {
		topo, err := numa.Preset(m)
		if err != nil {
			return nil, err
		}
		for _, r := range sw.Replicas {
			for _, crash := range sw.Crashes {
				if !failoverAdmissible(m, topo, r, crash) {
					continue
				}
				pt := FailoverPoint{
					Machine:  m,
					Threads:  failoverThreads(m),
					Replicas: r,
					Crash:    crash.String(),
				}
				if crash != workload.CrashNone {
					pt.CrashNs = sw.CrashNs
				}
				pts = append(pts, pt)
				if crash == workload.CrashVProc && sw.HedgeDelayNs > 0 && r == 2 {
					hedged := pt
					hedged.HedgeDelayNs = sw.HedgeDelayNs
					pts = append(pts, hedged)
				}
			}
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("bench: failover sweep selects no runnable points (crash kinds %v on machines %v)", sw.Crashes, sw.Machines)
	}
	return pts, nil
}

// MeasureFailover runs the sweep on a worker pool. Points are independent
// deterministic simulations, so the virtual fields are identical for any
// worker count and any span-worker count par; progress lines stream in
// completion order.
func MeasureFailover(sw FailoverSweep, workers, par int, progress func(string)) ([]FailoverPoint, error) {
	pts, err := FailoverPoints(sw)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	// Resolve names on the calling goroutine (see MeasureOverload).
	topos := make([]*numa.Topology, len(pts))
	kinds := make([]workload.CrashKind, len(pts))
	for i, pt := range pts {
		topo, err := numa.Preset(pt.Machine)
		if err != nil {
			return nil, err
		}
		kind, err := workload.ParseCrashKind(pt.Crash)
		if err != nil {
			return nil, err
		}
		topos[i], kinds[i] = topo, kind
	}
	jobs := make(chan int)
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := &pts[i]
				cfg := LatencyConfig(topos[i], mempage.PolicyLocal, pt.Threads)
				cfg.SpanWorkers = par
				rt := core.MustNewRuntime(cfg)
				opt := FailoverOptionsFor(pt.Replicas, kinds[i], pt.CrashNs, pt.HedgeDelayNs)
				start := time.Now()
				res := workload.RunFailover(rt, opt)
				pt.WallNs = time.Since(start).Nanoseconds()
				pt.VirtualMs = float64(res.ElapsedNs) / 1e6
				pt.Check = res.Check
				pt.WindowNs = res.WindowNs
				pt.Offered = res.Offered
				pt.Completed = res.Completed
				pt.GoodSLO = res.GoodSLO
				pt.FailedDeadline = res.FailedDeadline
				pt.LostClient = res.LostClient
				pt.ShedMemory = res.ShedMemory
				pt.OfferedPre, pt.GoodPre, pt.LostPre = res.OfferedPre, res.GoodPre, res.LostPre
				pt.OfferedPost, pt.GoodPost, pt.LostPost = res.OfferedPost, res.GoodPost, res.LostPost
				pt.Retries = res.Retries
				pt.Rerouted = res.Rerouted
				pt.Hedged, pt.HedgeWins = res.Hedged, res.HedgeWins
				pt.BreakerTrips = res.BreakerTrips
				pt.FastFails = res.FastFails
				pt.LateReplies = res.LateReplies
				pt.Crashes = res.Crashes
				stats := res.Stats
				pt.LostTasks = stats.LostTasks
				pt.LostConts = stats.LostConts
				pt.LostTimers = stats.LostTimers
				pt.P50Ns, pt.P99Ns = res.P50, res.P99
				pt.GlobalGCs = rt.Stats.GlobalGCs
				if progress != nil {
					progressMu.Lock()
					progress(fmt.Sprintf("%s: slo %.0f%% pre %.0f%% post-serving %.0f%% lost %d rerouted %d trips %d crashes %d (%s wall)",
						pt.Key(), failoverShare(pt.GoodSLO, pt.Offered)*100,
						failoverShare(pt.GoodPre, pt.OfferedPre)*100,
						failoverShare(pt.GoodPost, pt.OfferedPost-pt.LostPost)*100,
						pt.LostClient, pt.Rerouted, pt.BreakerTrips, pt.Crashes, time.Duration(pt.WallNs)))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return pts, nil
}

// failoverShare is a safe ratio for render-time percentages.
func failoverShare(num, den int) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// RenderFailover formats the sweep as the text table gcbench prints: SLO
// attainment before and after the crash, the serving-layer post-crash
// goodput (survivor-client requests only), and the full failure ledger.
func RenderFailover(pts []FailoverPoint) string {
	var b strings.Builder
	if len(pts) > 0 {
		fmt.Fprintf(&b, "Failover sweep (%d offered requests per point; pre/post split at each point's crash instant, post-serving excludes requests whose client chain died)\n",
			pts[0].Offered)
	}
	fmt.Fprintf(&b, "%-34s %6s %6s %9s %6s %6s %7s %8s %7s %6s %8s %10s %10s\n",
		"point", "SLO%", "pre%", "postserv%", "lost", "crash", "ltasks", "rerouted", "retries", "trips", "hedgewin", "p50", "p99")
	us := func(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1e3) }
	for _, p := range pts {
		fmt.Fprintf(&b, "%-34s %5.0f%% %5.0f%% %8.0f%% %6d %6d %7d %8d %7d %6d %8d %10s %10s\n",
			p.Key(), failoverShare(p.GoodSLO, p.Offered)*100,
			failoverShare(p.GoodPre, p.OfferedPre)*100,
			failoverShare(p.GoodPost, p.OfferedPost-p.LostPost)*100,
			p.LostClient, p.Crashes, p.LostTasks, p.Rerouted, p.Retries, p.BreakerTrips, p.HedgeWins,
			us(p.P50Ns), us(p.P99Ns))
	}
	return b.String()
}
