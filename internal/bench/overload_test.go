package bench

import (
	"testing"

	"repro/internal/workload"
)

// TestOverloadSweepDeterministicAcrossWorkers: the overload sweep's virtual
// results — goodput, shed/retry/expired counts, checksums, percentiles —
// must be bit-identical for any -j worker count and any -par span-worker
// count (the parallel arm runs the window scheduler). A trimmed sweep (two
// loads, two policies, plus the faulted points) keeps the test fast while
// still covering the retry, nack, and fault paths.
func TestOverloadSweepDeterministicAcrossWorkers(t *testing.T) {
	sw := OverloadSweep{
		Loads:      []OverloadLoad{{"1x", 160_000}, {"4x", 40_000}},
		Admissions: []workload.AdmissionPolicy{workload.AdmitQueue, workload.AdmitDeadline},
		FaultSeed:  OverloadFaultSeed,
	}
	serial := MeasureOverload(sw, 1, 1, nil)
	parallel := MeasureOverload(sw, 4, 2, nil)
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].VirtualEq(parallel[i]) {
			t.Errorf("%s differs across worker counts:\n  -j1: %+v\n  -j4: %+v", serial[i].Key(), serial[i], parallel[i])
		}
	}
}

// TestOverloadGracefulDegradation pins the sweep's acceptance property on
// both machines: past saturation the deadline policy's goodput plateaus
// (it retains most of its peak) while the no-control baseline collapses
// (its unbounded queue turns every completion into an SLO miss), and at
// the top load the controlled policy strictly beats no-control.
func TestOverloadGracefulDegradation(t *testing.T) {
	sw := DefaultOverloadSweep()
	sw.Admissions = []workload.AdmissionPolicy{workload.AdmitNone, workload.AdmitDeadline}
	sw.FaultSeed = 0
	pts := MeasureOverload(sw, 4, 1, nil)

	peak := map[string]float64{}
	top := map[string]float64{}
	for _, p := range pts {
		k := p.Machine + "/" + p.Admission
		if g := goodputRate(p); g > peak[k] {
			peak[k] = g
		}
		if p.Load == "4x" {
			top[k] = goodputRate(p)
		}
	}
	for _, m := range []string{"amd48", "intel32"} {
		none, deadline := m+"/none", m+"/deadline"
		if top[deadline] <= top[none] {
			t.Errorf("%s at 4x load: deadline goodput %.2f/us <= no-control %.2f/us", m, top[deadline], top[none])
		}
		if ratio := top[deadline] / peak[deadline]; ratio < 0.6 {
			t.Errorf("%s: deadline goodput fell to %.0f%% of peak at 4x load — want a plateau (>= 60%%)", m, ratio*100)
		}
		if ratio := top[none] / peak[none]; ratio > 0.55 {
			t.Errorf("%s: no-control goodput still %.0f%% of peak at 4x load — the baseline should collapse (<= 55%%)", m, ratio*100)
		}
	}
}
