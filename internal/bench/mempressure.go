// Memory-pressure sweep: the overload harness run against bounded heaps —
// the graceful-degradation figure for heap exhaustion. Every point fixes
// the offered load at the overload ladder's 4x rung (deep saturation, so
// the heap is the binding resource, not the arrival rate) and varies the
// global chunk budget down a ladder per machine × admission policy: with
// the budget-blind policy (queue) allocation failure surfaces only after
// the emergency collection ladder has thrashed through forced
// stop-the-world collections, while the memory-aware policy (memory)
// sheds at admission above the occupancy watermark and keeps the pool
// serving the requests it accepts. A squeeze-fault variant injects a
// seeded transient budget squeeze into an unbounded run, showing the same
// machinery absorbing a mid-run memory shock. Every offered request still
// resolves exactly once; the per-point accounting proves it.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// MempressurePoint is one sweep measurement. Every field except WallNs is
// a virtual (simulated) result and must stay bit-identical across engine
// changes and any -j worker count; like the overload checksum, the
// contract is rerun equality at this exact configuration.
type MempressurePoint struct {
	Machine   string `json:"machine"`
	Admission string `json:"admission"`
	Threads   int    `json:"threads"`
	Load      string `json:"load"`
	MeanGapNs int64  `json:"mean_gap_ns"`
	// Budget is the global heap budget in chunks (0 = unbounded).
	Budget int `json:"budget_chunks"`
	// SqueezeSeed, when set, seeds the transient budget-squeeze fault
	// plan injected into this (otherwise unbounded) point.
	SqueezeSeed uint64 `json:"squeeze_seed,omitempty"`
	Clients     int    `json:"clients"`
	Requests    int    `json:"requests"`

	VirtualMs float64 `json:"virtual_ms"`
	Check     uint64  `json:"check"`
	WindowNs  int64   `json:"window_ns"`

	Offered       int   `json:"offered"`
	Completed     int   `json:"completed"`
	GoodSLO       int   `json:"good_slo"`
	Expired       int   `json:"expired"`
	ShedAdmission int   `json:"shed_admission"`
	ShedMemory    int   `json:"shed_memory"`
	ShedFault     int   `json:"shed_fault"`
	Retries       int64 `json:"retries"`

	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`

	GlobalGCs    int   `json:"global_gcs"`
	EmergencyGCs int64 `json:"emergency_gcs"`
	AllocFailed  int64 `json:"alloc_failed"`
	Overdrafts   int   `json:"overdrafts"`
	// SurvivedWords is the post-GC survival signal at the end of the run
	// (active chunkage right after the last global collection).
	SurvivedWords int `json:"survived_words"`

	WallNs int64 `json:"wall_ns"`
}

// Key identifies the point's configuration.
func (p MempressurePoint) Key() string {
	k := fmt.Sprintf("%s %s p=%d %s-load b=%d", p.Machine, p.Admission, p.Threads, p.Load, p.Budget)
	if p.SqueezeSeed != 0 {
		k += "+squeeze"
	}
	return k
}

// VirtualEq reports whether two points' virtual (deterministic) fields are
// bit-identical; wall time is host noise and excluded.
func (p MempressurePoint) VirtualEq(q MempressurePoint) bool {
	p.WallNs, q.WallNs = 0, 0
	return p == q
}

// MempressureSweep configures which points MeasureMempressure runs. The
// zero value is invalid; start from DefaultMempressureSweep.
type MempressureSweep struct {
	// Load is the fixed offered load every point runs at.
	Load OverloadLoad
	// Budgets is the global-chunk-budget ladder (0 = unbounded).
	Budgets []int
	// Admissions are the policies compared at every budget.
	Admissions []workload.AdmissionPolicy
	// SqueezeSeed seeds the transient-squeeze variant, measured once per
	// machine × policy on an otherwise unbounded heap in addition to the
	// budget ladder. Zero disables the squeeze points.
	SqueezeSeed uint64
}

// MempressureSqueezeSeed seeds the default sweep's squeeze points.
const MempressureSqueezeSeed = 0x5C0EE2E1

// MempressureThreads is the sweep's fixed pool size (it reuses the
// overload harness's pool). Exported so the CLI can reject nonzero
// budgets below it up front: Config validation requires a bounded heap
// to give every vproc at least one chunk.
const MempressureThreads = overloadThreads

// defaultMempressureBudgets is the committed baseline's budget ladder,
// bracketing the latency heap shape's 24-chunk global-GC trigger: at 32
// chunks the normal trigger still runs the heap, at 24 the budget and the
// trigger coincide, and at 16 the trigger can never fire — the emergency
// ladder becomes the only collector and the admission policies separate.
var defaultMempressureBudgets = []int{0, 32, 24, 16}

// DefaultMempressureSweep is the fixed configuration of the committed
// MEMPRESSURE_v1.json baseline: the 4x overload rung, budget-blind vs
// memory-aware admission down the budget ladder, plus a seeded transient
// squeeze per machine × policy.
func DefaultMempressureSweep() MempressureSweep {
	return MempressureSweep{
		Load:        OverloadLoad{Name: "4x", MeanGapNs: 40_000},
		Budgets:     defaultMempressureBudgets,
		Admissions:  []workload.AdmissionPolicy{workload.AdmitQueue, workload.AdmitMemory},
		SqueezeSeed: MempressureSqueezeSeed,
	}
}

// MempressureFaultPlan builds the squeeze variant's fault plan: a seeded
// transient budget squeeze — clamp the heap to [nv/2, 3nv/2) chunks
// during the arrival ramp, release it a few hundred microseconds later.
// A pure function of (seed, nv), so gctrace can reproduce a squeeze point
// from the recorded squeeze_seed alone.
func MempressureFaultPlan(seed uint64, nv int) *core.FaultPlan {
	x := seed*0x9E3779B97F4A7C15 | 1
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 0x2545F4914F6CDD1D
	}
	at := 60_000 + int64(next()%60_000)
	budget := nv/2 + int(next()%uint64(nv/4))
	release := at + 80_000 + int64(next()%40_000)
	return (&core.FaultPlan{}).SqueezeAt(0, at, budget).SqueezeAt(0, release, 0)
}

// MempressurePoints enumerates the sweep: machine × admission policy ×
// budget ladder, plus the squeeze variant when SqueezeSeed is set.
func MempressurePoints(sw MempressureSweep) []MempressurePoint {
	machines := []string{"amd48", "intel32"}
	var pts []MempressurePoint
	for _, m := range machines {
		for _, adm := range sw.Admissions {
			point := func(budget int, squeezeSeed uint64) MempressurePoint {
				opt := OverloadOptionsFor(sw.Load.MeanGapNs)
				return MempressurePoint{
					Machine:     m,
					Admission:   adm.String(),
					Threads:     overloadThreads,
					Load:        sw.Load.Name,
					MeanGapNs:   sw.Load.MeanGapNs,
					Budget:      budget,
					SqueezeSeed: squeezeSeed,
					Clients:     opt.Clients,
					Requests:    opt.Requests,
				}
			}
			for _, b := range sw.Budgets {
				pts = append(pts, point(b, 0))
			}
			if sw.SqueezeSeed != 0 {
				pts = append(pts, point(0, sw.SqueezeSeed))
			}
		}
	}
	return pts
}

// MeasureMempressure runs the sweep on a worker pool. Points are
// independent deterministic simulations, so the virtual fields are
// identical for any worker count; progress lines stream in completion
// order.
func MeasureMempressure(sw MempressureSweep, workers, par int, progress func(string)) []MempressurePoint {
	pts := MempressurePoints(sw)
	if workers < 1 {
		workers = 1
	}
	// Resolve names on the calling goroutine (see MeasureOverload).
	topos := make([]*numa.Topology, len(pts))
	adms := make([]workload.AdmissionPolicy, len(pts))
	for i, pt := range pts {
		topo, err := numa.Preset(pt.Machine)
		if err != nil {
			panic(err)
		}
		adm, err := workload.ParseAdmission(pt.Admission)
		if err != nil {
			panic(err)
		}
		topos[i], adms[i] = topo, adm
	}
	jobs := make(chan int)
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := &pts[i]
				cfg := LatencyConfig(topos[i], mempage.PolicyLocal, pt.Threads)
				cfg.GlobalBudgetChunks = pt.Budget
				cfg.SpanWorkers = par
				rt := core.MustNewRuntime(cfg)
				opt := OverloadOptionsFor(pt.MeanGapNs)
				opt.Admission = adms[i]
				if pt.SqueezeSeed != 0 {
					// A fresh plan per run: InstallFaults arms pointers
					// into the plan's event slice.
					opt.Faults = MempressureFaultPlan(pt.SqueezeSeed, pt.Threads)
				}
				start := time.Now()
				res := workload.RunOverload(rt, opt)
				pt.WallNs = time.Since(start).Nanoseconds()
				pt.VirtualMs = float64(res.ElapsedNs) / 1e6
				pt.Check = res.Check
				pt.WindowNs = res.WindowNs
				pt.Offered = res.Offered
				pt.Completed = res.Completed
				pt.GoodSLO = res.GoodSLO
				pt.Expired = res.Expired
				pt.ShedAdmission = res.ShedAdmission
				pt.ShedMemory = res.ShedMemory
				pt.ShedFault = res.ShedFault
				pt.Retries = res.Retries
				pt.P50Ns, pt.P99Ns = res.P50, res.P99
				mp := rt.MemPressure()
				pt.GlobalGCs = rt.Stats.GlobalGCs
				pt.EmergencyGCs = mp.EmergencyGCs
				pt.AllocFailed = mp.AllocFailed
				pt.Overdrafts = mp.Overdrafts
				pt.SurvivedWords = mp.SurvivedWords
				if progress != nil {
					progressMu.Lock()
					progress(fmt.Sprintf("%s: goodput %.2f/us slo %.0f%% shedmem %d emerg %d allocfail %d (%s wall)",
						pt.Key(), mpGoodputRate(*pt), mpSLOShare(*pt)*100,
						pt.ShedMemory, pt.EmergencyGCs, pt.AllocFailed, time.Duration(pt.WallNs)))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return pts
}

// mpGoodputRate is the goodput in SLO-meeting requests per virtual
// microsecond of makespan — the figure's y axis.
func mpGoodputRate(p MempressurePoint) float64 {
	if p.VirtualMs == 0 {
		return 0
	}
	return float64(p.GoodSLO) / (p.VirtualMs * 1e3)
}

// mpSLOShare is the fraction of offered load completed within deadline.
func mpSLOShare(p MempressurePoint) float64 {
	return float64(p.GoodSLO) / float64(p.Offered)
}

// RenderMempressure formats the sweep as the text table gcbench prints.
// The header echoes the full sweep configuration — load, budget ladder,
// squeeze seed, admission policies, watermarks — so the figure is
// reproducible from its printout alone.
func RenderMempressure(sw MempressureSweep, pts []MempressurePoint) string {
	var b strings.Builder
	if len(pts) > 0 {
		opt := OverloadOptionsFor(sw.Load.MeanGapNs)
		budgets := make([]string, len(sw.Budgets))
		for i, bd := range sw.Budgets {
			budgets[i] = fmt.Sprintf("%d", bd)
		}
		adms := make([]string, len(sw.Admissions))
		for i, a := range sw.Admissions {
			adms[i] = a.String()
		}
		fmt.Fprintf(&b, "Memory-pressure sweep (%d clients x %d requests per point; %s load, gap %d ns; budgets {%s} chunks; admission {%s}, watermarks %d/%d%%; squeeze seed %#x; p=%d)\n",
			pts[0].Clients, pts[0].Requests, sw.Load.Name, sw.Load.MeanGapNs,
			strings.Join(budgets, ","), strings.Join(adms, ","),
			opt.MemLowPct, opt.MemHighPct, sw.SqueezeSeed, overloadThreads)
	}
	fmt.Fprintf(&b, "%-40s %10s %6s %9s %8s %8s %8s %7s %9s %9s %10s\n",
		"point", "goodput/us", "SLO%", "completed", "expired", "shed", "shedmem", "emerg", "allocfail", "overdraft", "p99")
	us := func(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1e3) }
	for _, p := range pts {
		fmt.Fprintf(&b, "%-40s %10.2f %5.0f%% %9d %8d %8d %8d %7d %9d %9d %10s\n",
			p.Key(), mpGoodputRate(p), mpSLOShare(p)*100,
			p.Completed, p.Expired, p.ShedAdmission+p.ShedFault, p.ShedMemory,
			p.EmergencyGCs, p.AllocFailed, p.Overdrafts, us(p.P99Ns))
	}
	return b.String()
}
