// Latency sweep: the tail-latency-under-GC companion to the throughput
// figures. Each point runs the open-loop traffic harness (workload.RunLatency)
// at one offered load on one machine/policy, under a GC-pressure heap shape
// sized so global collections fire during the run — the measurement the
// makespan figures cannot show: how collection pauses surface in p99/p99.9
// request latency, and which phase is to blame.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// LatencyPoint is one sweep measurement. Every field except WallNs is a
// virtual (simulated) result and must stay bit-identical across engine
// changes and across any -j worker count; the compare gate checks them
// exactly, like the virtual_ms points of the throughput baseline.
type LatencyPoint struct {
	Machine   string `json:"machine"`
	Policy    string `json:"policy"`
	Threads   int    `json:"threads"`
	Load      string `json:"load"`
	MeanGapNs int64  `json:"mean_gap_ns"`
	Clients   int    `json:"clients"`
	Requests  int    `json:"requests"`

	// GC selects the global collector: "" is the legacy stop-the-world
	// collector (the only mode of the v1 baseline — omitted from the JSON
	// so v1-era rows stay byte-identical), "concurrent" the
	// mostly-concurrent collector.
	GC string `json:"gc,omitempty"`

	VirtualMs float64 `json:"virtual_ms"`
	Check     uint64  `json:"check"`

	P50Ns  int64 `json:"p50_ns"`
	P90Ns  int64 `json:"p90_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`

	MeanNs       int64 `json:"mean_ns"`
	GlobalMeanNs int64 `json:"global_mean_ns"`
	LocalMeanNs  int64 `json:"local_mean_ns"`

	TailCount     int   `json:"tail_count"`
	TailMeanNs    int64 `json:"tail_mean_ns"`
	TailGlobalNs  int64 `json:"tail_global_ns"`
	TailLocalNs   int64 `json:"tail_local_ns"`
	TailGlobalMax int64 `json:"tail_global_max_ns"`

	GlobalGCs int   `json:"global_gcs"`
	WallNs    int64 `json:"wall_ns"`

	// Concurrent-collector attribution (all zero — and omitted from the
	// JSON — under the stop-the-world collector, keeping those rows
	// byte-identical to the v1 baseline). Virtual and deterministic like
	// every other field.
	MarkAssistWords int64 `json:"mark_assist_words,omitempty"`
	MarkAssistNs    int64 `json:"mark_assist_ns,omitempty"`
	BarrierHits     int64 `json:"barrier_hits,omitempty"`
	BarrierNs       int64 `json:"barrier_ns,omitempty"`
	SnapshotStwNs   int64 `json:"snapshot_stw_ns,omitempty"`
	TermStwNs       int64 `json:"termination_stw_ns,omitempty"`
}

// Key identifies the point's configuration.
func (p LatencyPoint) Key() string {
	k := fmt.Sprintf("%s %s p=%d %s-load", p.Machine, p.Policy, p.Threads, p.Load)
	if p.GC != "" {
		k += " gc=" + p.GC
	}
	return k
}

// latencyLoad is one offered-load level of the sweep.
type latencyLoad struct {
	name      string
	meanGapNs int64
}

// latencyLoads are the sweep's offered-load levels: the per-client mean
// inter-arrival gap. At "low" load the pool is mostly idle between
// requests, so the latency distribution is bimodal — microsecond medians
// with a p99.9 tail owned almost entirely by stop-the-world global
// collections (the acceptance figure). At "high" load the pool saturates:
// queueing delay dominates every percentile and the relative global-GC
// share of the tail shrinks — overload hides collector pauses inside the
// queue, which is exactly why open-loop measurement at controlled load is
// needed to see them.
var latencyLoads = []latencyLoad{
	{"low", 400_000},
	{"high", 100_000},
}

// latencyShape is the fixed request population of every sweep point:
// Clients*Requests requests per run, enough for a meaningful p99.9 (top ~4
// requests) while keeping a full sweep in CI-friendly wall time.
var latencyShape = struct{ clients, requests int }{clients: 600, requests: 6}

// LatencyConfig is the GC-pressure runtime configuration of the sweep: the
// default machine config with the heaps scaled down so minor/major/global
// collections all fire inside the short measured window (the same technique
// as the workload GC-stress tests, one step larger). Exported so gctrace can
// reproduce a sweep point exactly.
func LatencyConfig(topo *numa.Topology, policy mempage.Policy, nv int) core.Config {
	cfg := core.DefaultConfig(topo, nv)
	cfg.Policy = policy
	cfg.LocalHeapWords = 16 << 10
	cfg.ChunkWords = 2 << 10
	cfg.GlobalTriggerWords = 24 * cfg.ChunkWords
	return cfg
}

// LatencyOptionsFor builds the workload options for one sweep point's
// offered load, using the sweep's fixed client population.
func LatencyOptionsFor(meanGapNs int64) workload.LatencyOptions {
	return workload.LatencyOptions{
		Clients:   latencyShape.clients,
		Requests:  latencyShape.requests,
		MeanGapNs: meanGapNs,
	}
}

// GCModes resolves a -gc selector into the sweep's collector-mode list:
// "stw" is the legacy stop-the-world collector (the empty mode string, so
// those points keep their v1 identity), "concurrent" the mostly-concurrent
// collector, "both" the full v2 matrix. Anything else is rejected, never
// clamped.
func GCModes(sel string) ([]string, error) {
	switch sel {
	case "stw":
		return []string{""}, nil
	case "concurrent":
		return []string{"concurrent"}, nil
	case "both":
		return []string{"", "concurrent"}, nil
	default:
		return nil, fmt.Errorf("unknown -gc mode %q (stw, concurrent, both)", sel)
	}
}

// LatencyPoints enumerates the sweep: machine × policy × offered load, under
// the stop-the-world collector (the v1 matrix).
func LatencyPoints() []LatencyPoint {
	return LatencyPointsGC([]string{""})
}

// LatencyPointsGC enumerates the sweep per collector mode: gc-mode × machine
// × policy × offered load.
func LatencyPointsGC(gcs []string) []LatencyPoint {
	machines := []struct {
		name    string
		threads int
	}{
		{"amd48", 48},
		{"intel32", 32},
	}
	policies := []mempage.Policy{mempage.PolicyLocal, mempage.PolicyInterleaved, mempage.PolicySingleNode}
	var pts []LatencyPoint
	for _, gc := range gcs {
		for _, m := range machines {
			for _, pol := range policies {
				for _, ld := range latencyLoads {
					pts = append(pts, LatencyPoint{
						Machine:   m.name,
						Policy:    pol.String(),
						Threads:   m.threads,
						Load:      ld.name,
						MeanGapNs: ld.meanGapNs,
						Clients:   latencyShape.clients,
						Requests:  latencyShape.requests,
						GC:        gc,
					})
				}
			}
		}
	}
	return pts
}

// MeasureLatency runs the full sweep on a worker pool. Points are
// independent deterministic simulations, so the virtual fields are identical
// for any worker count and any span-worker count par (the engine's window
// scheduler is bit-identical at every parallelism); progress lines stream in
// completion order.
func MeasureLatency(workers, par int, progress func(string)) []LatencyPoint {
	return MeasureLatencyGC([]string{""}, workers, par, progress)
}

// MeasureLatencyGC runs the sweep over the given collector modes (see
// GCModes); mode "" is the stop-the-world collector and reproduces the v1
// points exactly.
func MeasureLatencyGC(gcs []string, workers, par int, progress func(string)) []LatencyPoint {
	pts := LatencyPointsGC(gcs)
	if workers < 1 {
		workers = 1
	}
	// Resolve the machine/policy names on the calling goroutine: the sweep
	// points are package constants, so a failure here is a programming
	// error, and it must not fire inside a worker where nothing can
	// recover it.
	topos := make([]*numa.Topology, len(pts))
	pols := make([]mempage.Policy, len(pts))
	for i, pt := range pts {
		topo, err := numa.Preset(pt.Machine)
		if err != nil {
			panic(err)
		}
		pol, err := mempage.ParsePolicy(pt.Policy)
		if err != nil {
			panic(err)
		}
		topos[i], pols[i] = topo, pol
	}
	jobs := make(chan int)
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := &pts[i]
				cfg := LatencyConfig(topos[i], pols[i], pt.Threads)
				cfg.SpanWorkers = par
				cfg.ConcurrentGlobal = pt.GC == "concurrent"
				rt := core.MustNewRuntime(cfg)
				start := time.Now()
				res := workload.RunLatency(rt, LatencyOptionsFor(pt.MeanGapNs))
				pt.WallNs = time.Since(start).Nanoseconds()
				pt.VirtualMs = float64(res.ElapsedNs) / 1e6
				pt.Check = res.Check
				pt.P50Ns, pt.P90Ns, pt.P99Ns, pt.P999Ns = res.P50, res.P90, res.P99, res.P999
				pt.MeanNs = res.All.MeanNs
				pt.GlobalMeanNs = res.All.Global.MeanNs
				pt.LocalMeanNs = res.All.Local.MeanNs
				pt.TailCount = res.Tail.Count
				pt.TailMeanNs = res.Tail.MeanNs
				pt.TailGlobalNs = res.Tail.Global.MeanNs
				pt.TailLocalNs = res.Tail.Local.MeanNs
				pt.TailGlobalMax = res.Tail.Global.MaxNs
				pt.GlobalGCs = rt.Stats.GlobalGCs
				// Zero under the stop-the-world collector; recorded (and
				// compared) only when the concurrent machinery ran.
				pt.MarkAssistWords = res.Stats.MarkAssistWords
				pt.MarkAssistNs = res.Stats.MarkAssistNs
				pt.BarrierHits = res.Stats.BarrierHits
				pt.BarrierNs = res.Stats.BarrierNs
				pt.SnapshotStwNs = rt.Stats.SnapshotNs
				pt.TermStwNs = rt.Stats.TermNs
				if progress != nil {
					progressMu.Lock()
					progress(fmt.Sprintf("%s: p50 %.1fus p99.9 %.1fus tail-global %.1fus (%d global GCs, %s wall)",
						pt.Key(), float64(pt.P50Ns)/1e3, float64(pt.P999Ns)/1e3,
						float64(pt.TailGlobalNs)/1e3, pt.GlobalGCs, time.Duration(pt.WallNs)))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return pts
}

// VirtualEq reports whether two points' virtual (deterministic) fields are
// bit-identical; wall time is host noise and excluded.
func (p LatencyPoint) VirtualEq(q LatencyPoint) bool {
	p.WallNs, q.WallNs = 0, 0
	return p == q
}

// RenderLatency formats the sweep as the text table gcbench prints: the
// percentile ladder per point plus the tail attribution that answers "who
// owns p99.9".
func RenderLatency(pts []LatencyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Open-loop latency under GC (%d clients x %d requests per point)\n", latencyShape.clients, latencyShape.requests)
	fmt.Fprintf(&b, "%-34s %9s %9s %9s %9s   %s\n", "point", "p50", "p90", "p99", "p99.9", "p99.9 tail attribution")
	us := func(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1e3) }
	for _, p := range pts {
		share := 0.0
		if p.TailMeanNs > 0 {
			share = float64(p.TailGlobalNs) / float64(p.TailMeanNs)
		}
		fmt.Fprintf(&b, "%-34s %9s %9s %9s %9s   global %4.0f%%  local %s  (%d global GCs)\n",
			p.Key(), us(p.P50Ns), us(p.P90Ns), us(p.P99Ns), us(p.P999Ns),
			share*100, us(p.TailLocalNs), p.GlobalGCs)
	}
	return b.String()
}
