package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// TestLatencySweepDeterministicAcrossWorkers: the latency sweep's virtual
// results (percentiles, attribution, checksums) must be bit-identical for
// any -j worker count AND any -par span-worker count — the same contract as
// the throughput sweeps, checked point by point. The parallel arm runs the
// engine's window scheduler (par 4), so this doubles as the bench-layer
// proof that span windows never change a schedule.
func TestLatencySweepDeterministicAcrossWorkers(t *testing.T) {
	serial := MeasureLatency(1, 1, nil)
	parallel := MeasureLatency(4, 4, nil)
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].VirtualEq(parallel[i]) {
			t.Errorf("%s differs across worker counts:\n  -j1: %+v\n  -j4: %+v", serial[i].Key(), serial[i], parallel[i])
		}
	}
}

// TestLatencyTailDominatedByGlobalGC pins the sweep's acceptance property:
// at the low-load AMD point, the p99.9 tail's latency is majority-owned by
// stop-the-world global collections — the pause attribution must show the
// global share dominating both the local-GC share and half the tail mean.
func TestLatencyTailDominatedByGlobalGC(t *testing.T) {
	rt := core.MustNewRuntime(LatencyConfig(numa.AMD48(), mempage.PolicyLocal, 48))
	res := workload.RunLatency(rt, LatencyOptionsFor(400_000))
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("no global collections at the low-load sweep point")
	}
	if res.Tail.Global.MeanNs <= res.Tail.Local.MeanNs {
		t.Errorf("tail global overlap %d ns <= local %d ns", res.Tail.Global.MeanNs, res.Tail.Local.MeanNs)
	}
	if share := res.Tail.GlobalShare(); share < 0.5 {
		t.Errorf("global share of p99.9 tail = %.2f, want >= 0.5 (tail mean %d ns, global %d ns)",
			share, res.Tail.MeanNs, res.Tail.Global.MeanNs)
	}
	// The distribution must be bimodal: a microsecond-scale median with a
	// pause-scale tail, not uniform saturation.
	if res.P999 < 20*res.P50 {
		t.Errorf("p99.9 %d ns vs p50 %d ns: expected a GC-pause tail well above the median", res.P999, res.P50)
	}
}

// TestTailCollapse pins the concurrent collector's acceptance figure at the
// same low-load AMD point: swapping the stop-the-world collector for the
// mostly-concurrent one must cut the global-GC share of the p99.9 tail at
// least 5x (the STW share is ~73%; only the two short STW windows count as
// stalls now), without giving back throughput — the open-loop makespan stays
// within 10% of the STW run.
func TestTailCollapse(t *testing.T) {
	point := func(concurrent bool) (workload.LatencyResult, *core.Runtime) {
		cfg := LatencyConfig(numa.AMD48(), mempage.PolicyLocal, 48)
		cfg.ConcurrentGlobal = concurrent
		rt := core.MustNewRuntime(cfg)
		return workload.RunLatency(rt, LatencyOptionsFor(400_000)), rt
	}
	stw, stwRT := point(false)
	con, conRT := point(true)
	if stwRT.Stats.GlobalGCs == 0 || conRT.Stats.GlobalGCs == 0 {
		t.Fatalf("both collectors must run cycles: stw %d, concurrent %d",
			stwRT.Stats.GlobalGCs, conRT.Stats.GlobalGCs)
	}
	if stw.Check != con.Check {
		t.Fatalf("reply checksums diverge across collectors: %#x vs %#x", stw.Check, con.Check)
	}
	stwShare, conShare := stw.Tail.GlobalShare(), con.Tail.GlobalShare()
	if conShare*5 > stwShare {
		t.Errorf("global share of p99.9 tail: stw %.1f%%, concurrent %.1f%% — want at least a 5x reduction",
			stwShare*100, conShare*100)
	}
	// Throughput must not regress: the open-loop run completes the same
	// request population, so the makespan is the throughput proxy.
	if ratio := float64(con.ElapsedNs) / float64(stw.ElapsedNs); ratio > 1.1 || ratio < 0.9 {
		t.Errorf("concurrent makespan %.3f ms vs stw %.3f ms (ratio %.3f): want within 10%%",
			float64(con.ElapsedNs)/1e6, float64(stw.ElapsedNs)/1e6, ratio)
	}
	// The tail itself must actually collapse, not just be re-attributed.
	if con.P999 >= stw.P999 {
		t.Errorf("p99.9 did not improve: concurrent %d ns vs stw %d ns", con.P999, stw.P999)
	}
	total := conRT.TotalStats()
	if total.MarkAssistWords == 0 {
		t.Error("concurrent run recorded no mark-assist work — the cycle was not concurrent")
	}
}
