package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// TestLatencySweepDeterministicAcrossWorkers: the latency sweep's virtual
// results (percentiles, attribution, checksums) must be bit-identical for
// any -j worker count AND any -par span-worker count — the same contract as
// the throughput sweeps, checked point by point. The parallel arm runs the
// engine's window scheduler (par 4), so this doubles as the bench-layer
// proof that span windows never change a schedule.
func TestLatencySweepDeterministicAcrossWorkers(t *testing.T) {
	serial := MeasureLatency(1, 1, nil)
	parallel := MeasureLatency(4, 4, nil)
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !serial[i].VirtualEq(parallel[i]) {
			t.Errorf("%s differs across worker counts:\n  -j1: %+v\n  -j4: %+v", serial[i].Key(), serial[i], parallel[i])
		}
	}
}

// TestLatencyTailDominatedByGlobalGC pins the sweep's acceptance property:
// at the low-load AMD point, the p99.9 tail's latency is majority-owned by
// stop-the-world global collections — the pause attribution must show the
// global share dominating both the local-GC share and half the tail mean.
func TestLatencyTailDominatedByGlobalGC(t *testing.T) {
	rt := core.MustNewRuntime(LatencyConfig(numa.AMD48(), mempage.PolicyLocal, 48))
	res := workload.RunLatency(rt, LatencyOptionsFor(400_000))
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("no global collections at the low-load sweep point")
	}
	if res.Tail.Global.MeanNs <= res.Tail.Local.MeanNs {
		t.Errorf("tail global overlap %d ns <= local %d ns", res.Tail.Global.MeanNs, res.Tail.Local.MeanNs)
	}
	if share := res.Tail.GlobalShare(); share < 0.5 {
		t.Errorf("global share of p99.9 tail = %.2f, want >= 0.5 (tail mean %d ns, global %d ns)",
			share, res.Tail.MeanNs, res.Tail.Global.MeanNs)
	}
	// The distribution must be bimodal: a microsecond-scale median with a
	// pause-scale tail, not uniform saturation.
	if res.P999 < 20*res.P50 {
		t.Errorf("p99.9 %d ns vs p50 %d ns: expected a GC-pause tail well above the median", res.P999, res.P50)
	}
}
