// Overload sweep: the open-loop harness pushed through and past saturation,
// measured as goodput-vs-offered-load and SLO-attainment figures per
// machine × admission policy. Each point runs workload.RunOverload at one
// offered load under the latency sweep's GC-pressure heap shape; the sweep
// ladder brackets the pool's capacity (~0.4x, 1x, 2x, 4x of saturation), so
// the figures show what each admission policy does when the load keeps
// coming: the no-control baseline's goodput collapses as queueing delay
// pushes every request past its deadline, while deadline-aware shedding
// keeps the pool busy only with requests that can still succeed and goodput
// plateaus. A faulted variant of the top load re-measures every policy with
// a seeded plan of vproc stalls and allocation bursts injected mid-run.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// OverloadPoint is one sweep measurement. Every field except WallNs is a
// virtual (simulated) result and must stay bit-identical across engine
// changes and across any -j worker count. Unlike the throughput and latency
// checksums the overload checksum is not vproc-count-invariant (shedding
// depends on queue depth at each arrival instant, which is
// schedule-dependent), so the compared contract is rerun equality at this
// exact configuration.
type OverloadPoint struct {
	Machine   string `json:"machine"`
	Admission string `json:"admission"`
	Threads   int    `json:"threads"`
	Load      string `json:"load"`
	MeanGapNs int64  `json:"mean_gap_ns"`
	Clients   int    `json:"clients"`
	Requests  int    `json:"requests"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`

	VirtualMs float64 `json:"virtual_ms"`
	Check     uint64  `json:"check"`
	WindowNs  int64   `json:"window_ns"`

	Offered       int   `json:"offered"`
	Completed     int   `json:"completed"`
	GoodSLO       int   `json:"good_slo"`
	Expired       int   `json:"expired"`
	ShedAdmission int   `json:"shed_admission"`
	ShedFault     int   `json:"shed_fault"`
	Retries       int64 `json:"retries"`

	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`

	GlobalGCs int   `json:"global_gcs"`
	WallNs    int64 `json:"wall_ns"`
}

// Key identifies the point's configuration.
func (p OverloadPoint) Key() string {
	k := fmt.Sprintf("%s %s p=%d %s-load", p.Machine, p.Admission, p.Threads, p.Load)
	if p.FaultSeed != 0 {
		k += "+faults"
	}
	return k
}

// VirtualEq reports whether two points' virtual (deterministic) fields are
// bit-identical; wall time is host noise and excluded.
func (p OverloadPoint) VirtualEq(q OverloadPoint) bool {
	p.WallNs, q.WallNs = 0, 0
	return p == q
}

// OverloadLoad is one offered-load level: the per-client mean inter-arrival
// gap, named for the figure axis.
type OverloadLoad struct {
	Name      string
	MeanGapNs int64
}

// OverloadSweep configures which points MeasureOverload runs. The zero
// value is invalid; start from DefaultOverloadSweep.
type OverloadSweep struct {
	Loads      []OverloadLoad
	Admissions []workload.AdmissionPolicy
	// FaultSeed seeds the faulted variant of the last load level, measured
	// once per machine × policy in addition to the fault-free ladder.
	// Zero disables the faulted points.
	FaultSeed uint64
}

// overloadThreads is the sweep's fixed pool size. The saturation knobs
// (service cost, load ladder) are tuned so this pool's capacity sits between
// the 1x and 2x rungs; the machine axis then isolates the NUMA topology's
// contribution at identical capacity, rather than re-deriving a per-machine
// ladder.
const overloadThreads = 16

// OverloadFaultSeed seeds the default sweep's faulted points.
const OverloadFaultSeed = 0xFA115AFE

// defaultOverloadLoads bracket the 16-vproc pool's ~1.9 requests/us
// capacity: per-client mean gaps giving ~0.4x, 1x, 2x, and 4x saturation
// with the default 300-client population.
var defaultOverloadLoads = []OverloadLoad{
	{"0.4x", 400_000},
	{"1x", 160_000},
	{"2x", 80_000},
	{"4x", 40_000},
}

// DefaultOverloadSweep is the fixed configuration of the committed
// OVERLOAD_v1.json baseline: every admission policy over the full load
// ladder, plus a faulted run of the top load per policy.
func DefaultOverloadSweep() OverloadSweep {
	return OverloadSweep{
		Loads:      defaultOverloadLoads,
		Admissions: []workload.AdmissionPolicy{workload.AdmitNone, workload.AdmitQueue, workload.AdmitDeadline},
		FaultSeed:  OverloadFaultSeed,
	}
}

// OverloadOptionsFor builds the workload options for one sweep point's
// offered load: the tuned default shape (300 clients x 6 requests, 300
// ns/word service, 250 us SLO, depth-16 lane, 10..80 us backoff) with only
// the gap varying.
func OverloadOptionsFor(meanGapNs int64) workload.OverloadOptions {
	opt := workload.DefaultOverloadOptions(1.0)
	opt.MeanGapNs = meanGapNs
	return opt
}

// OverloadFaultPlan builds the sweep's fault plan: a seeded schedule of
// vproc stalls and allocation bursts across the run's busy window. The plan
// is a pure function of (seed, nv) — gctrace can reproduce a faulted
// baseline point from the recorded fault_seed. No channel closes: a close
// that discards accepted requests would leave their reply waiters parked
// (see workload.OverloadOptions.Faults); close faults are exercised by the
// core and workload fault tests instead.
func OverloadFaultPlan(seed uint64, nv int) *core.FaultPlan {
	// Horizon 600 us: the top-load arrival window ends near 360 us and the
	// measured makespans run past 1 ms, so every event lands mid-run.
	return core.RandomFaultPlan(seed, nv, 600_000, 3, 3)
}

// OverloadPoints enumerates the sweep: machine × admission policy × load,
// plus the faulted variant of the last load when FaultSeed is set.
func OverloadPoints(sw OverloadSweep) []OverloadPoint {
	machines := []string{"amd48", "intel32"}
	var pts []OverloadPoint
	for _, m := range machines {
		for _, adm := range sw.Admissions {
			point := func(ld OverloadLoad, faultSeed uint64) OverloadPoint {
				opt := OverloadOptionsFor(ld.MeanGapNs)
				return OverloadPoint{
					Machine:   m,
					Admission: adm.String(),
					Threads:   overloadThreads,
					Load:      ld.Name,
					MeanGapNs: ld.MeanGapNs,
					Clients:   opt.Clients,
					Requests:  opt.Requests,
					FaultSeed: faultSeed,
				}
			}
			for _, ld := range sw.Loads {
				pts = append(pts, point(ld, 0))
			}
			if sw.FaultSeed != 0 {
				pts = append(pts, point(sw.Loads[len(sw.Loads)-1], sw.FaultSeed))
			}
		}
	}
	return pts
}

// MeasureOverload runs the sweep on a worker pool. Points are independent
// deterministic simulations, so the virtual fields are identical for any
// worker count and any span-worker count par; progress lines stream in
// completion order.
func MeasureOverload(sw OverloadSweep, workers, par int, progress func(string)) []OverloadPoint {
	pts := OverloadPoints(sw)
	if workers < 1 {
		workers = 1
	}
	// Resolve machine and policy names on the calling goroutine: the sweep
	// points come from package constants or validated flags, so a failure
	// here is a programming error, and it must not fire inside a worker
	// where nothing can recover it.
	topos := make([]*numa.Topology, len(pts))
	adms := make([]workload.AdmissionPolicy, len(pts))
	for i, pt := range pts {
		topo, err := numa.Preset(pt.Machine)
		if err != nil {
			panic(err)
		}
		adm, err := workload.ParseAdmission(pt.Admission)
		if err != nil {
			panic(err)
		}
		topos[i], adms[i] = topo, adm
	}
	jobs := make(chan int)
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := &pts[i]
				cfg := LatencyConfig(topos[i], mempage.PolicyLocal, pt.Threads)
				cfg.SpanWorkers = par
				rt := core.MustNewRuntime(cfg)
				opt := OverloadOptionsFor(pt.MeanGapNs)
				opt.Admission = adms[i]
				if pt.FaultSeed != 0 {
					// A fresh plan per run: InstallFaults arms pointers into
					// the plan's event slice, so concurrent points must not
					// share one.
					opt.Faults = OverloadFaultPlan(pt.FaultSeed, pt.Threads)
				}
				start := time.Now()
				res := workload.RunOverload(rt, opt)
				pt.WallNs = time.Since(start).Nanoseconds()
				pt.VirtualMs = float64(res.ElapsedNs) / 1e6
				pt.Check = res.Check
				pt.WindowNs = res.WindowNs
				pt.Offered = res.Offered
				pt.Completed = res.Completed
				pt.GoodSLO = res.GoodSLO
				pt.Expired = res.Expired
				pt.ShedAdmission = res.ShedAdmission
				pt.ShedFault = res.ShedFault
				pt.Retries = res.Retries
				pt.P50Ns, pt.P99Ns = res.P50, res.P99
				pt.GlobalGCs = rt.Stats.GlobalGCs
				if progress != nil {
					progressMu.Lock()
					progress(fmt.Sprintf("%s: offered %.2f/us goodput %.2f/us slo %.0f%% shed %d retries %d (%s wall)",
						pt.Key(), offeredRate(*pt), goodputRate(*pt), sloShare(*pt)*100,
						pt.ShedAdmission+pt.ShedFault, pt.Retries, time.Duration(pt.WallNs)))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return pts
}

// offeredRate is the offered load in requests per virtual microsecond: the
// planned population over the planned arrival window.
func offeredRate(p OverloadPoint) float64 {
	if p.WindowNs == 0 {
		return 0
	}
	return float64(p.Offered) / float64(p.WindowNs) * 1e3
}

// goodputRate is the goodput in SLO-meeting requests per virtual
// microsecond of actual makespan — the figure's y axis.
func goodputRate(p OverloadPoint) float64 {
	if p.VirtualMs == 0 {
		return 0
	}
	return float64(p.GoodSLO) / (p.VirtualMs * 1e3)
}

// sloShare is the fraction of the offered load that completed within its
// deadline — SLO attainment.
func sloShare(p OverloadPoint) float64 {
	return float64(p.GoodSLO) / float64(p.Offered)
}

// RenderOverload formats the sweep as the text table gcbench prints:
// goodput against offered load with the full resolution accounting, the
// figure that shows which policies degrade gracefully.
func RenderOverload(pts []OverloadPoint) string {
	var b strings.Builder
	if len(pts) > 0 {
		fmt.Fprintf(&b, "Overload sweep (%d clients x %d requests per point; offered = planned arrivals / window, goodput = SLO-meeting completions / makespan)\n",
			pts[0].Clients, pts[0].Requests)
	}
	fmt.Fprintf(&b, "%-36s %10s %10s %6s %9s %9s %9s %9s %8s %10s %10s\n",
		"point", "offered/us", "goodput/us", "SLO%", "completed", "expired", "shed", "retries", "faults", "p50", "p99")
	us := func(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1e3) }
	for _, p := range pts {
		faults := "-"
		if p.FaultSeed != 0 {
			faults = fmt.Sprintf("%#x", p.FaultSeed)
		}
		fmt.Fprintf(&b, "%-36s %10.2f %10.2f %5.0f%% %9d %9d %9d %9d %8s %10s %10s\n",
			p.Key(), offeredRate(p), goodputRate(p), sloShare(p)*100,
			p.Completed, p.Expired, p.ShedAdmission+p.ShedFault, p.Retries, faults, us(p.P50Ns), us(p.P99Ns))
	}
	return b.String()
}
