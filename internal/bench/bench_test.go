package bench

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mempage"
	"repro/internal/numa"
)

// Small-scale sweeps keep these tests fast; shapes are asserted loosely.
const testScale = 0.2

func TestSweepSpeedupBaseline(t *testing.T) {
	f := Sweep(numa.AMD48(), mempage.PolicyLocal, []int{1, 8},
		Options{Scale: testScale, Benchmarks: []string{"raytracer"}})
	sp1, ok := f.SpeedupAt("raytracer", 1)
	if !ok || sp1 != 1.0 {
		t.Fatalf("1-thread speedup = %v, want 1.0", sp1)
	}
	sp8, _ := f.SpeedupAt("raytracer", 8)
	if sp8 < 3 {
		t.Errorf("raytracer at 8 threads: speedup %.2f, want > 3", sp8)
	}
}

func TestFigureIDsAndTitles(t *testing.T) {
	for id := 4; id <= 7; id++ {
		f, err := RunFigure(id, Options{Scale: 0.05, Benchmarks: []string{"synthetic"}})
		if err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		if f.ID != id {
			t.Errorf("figure %d reported ID %d", id, f.ID)
		}
		out := f.Render()
		if !strings.Contains(out, "Figure") || !strings.Contains(out, "synthetic") {
			t.Errorf("figure %d render missing content:\n%s", id, out)
		}
	}
	if _, err := RunFigure(3, Options{}); err == nil {
		t.Error("RunFigure(3) should fail")
	}
}

func TestExternalBaselineNormalization(t *testing.T) {
	// Figures 6/7 normalize to an external baseline; a baseline of half
	// the measured 1-thread time must halve the reported speedups.
	opt := Options{Scale: testScale, Benchmarks: []string{"synthetic"}}
	ref := Sweep(numa.AMD48(), mempage.PolicyLocal, []int{1}, opt)
	base := ref.Baseline["synthetic"]

	opt.BaselineNs = map[string]int64{"synthetic": base / 2}
	f := Sweep(numa.AMD48(), mempage.PolicyLocal, []int{1}, opt)
	sp, _ := f.SpeedupAt("synthetic", 1)
	if sp < 0.49 || sp > 0.51 {
		t.Errorf("normalized speedup = %.3f, want ~0.5", sp)
	}
}

func TestPolicyOrderingAtScale(t *testing.T) {
	// The paper's headline (§4.3): at high thread counts, local placement
	// beats single-node placement for allocation-heavy work.
	opt := Options{Scale: 0.3, Benchmarks: []string{"synthetic"}}
	local := Sweep(numa.AMD48(), mempage.PolicyLocal, []int{24}, opt)
	single := Sweep(numa.AMD48(), mempage.PolicySingleNode, []int{24}, opt)
	lms := local.Series[0].ElapsedNs[0]
	sms := single.Series[0].ElapsedNs[0]
	if !(lms < sms) {
		t.Errorf("at 24 threads: local %d ns should beat single-node %d ns", lms, sms)
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	// Every sweep point owns an independent deterministic Runtime, so the
	// figure must be bit-identical for any worker count.
	opt := Options{Scale: testScale, Benchmarks: []string{"quicksort", "synthetic"}}
	serial, parallel := opt, opt
	serial.Workers = 1
	parallel.Workers = 4
	threads := []int{1, 4, 8}
	a := Sweep(numa.AMD48(), mempage.PolicyLocal, threads, serial)
	b := Sweep(numa.AMD48(), mempage.PolicyLocal, threads, parallel)
	for i, sa := range a.Series {
		sb := b.Series[i]
		if sa.Benchmark != sb.Benchmark {
			t.Fatalf("series %d: benchmark order differs: %s vs %s", i, sa.Benchmark, sb.Benchmark)
		}
		for j := range sa.ElapsedNs {
			if sa.ElapsedNs[j] != sb.ElapsedNs[j] {
				t.Errorf("%s p=%d: serial %d ns, parallel %d ns", sa.Benchmark, sa.Threads[j], sa.ElapsedNs[j], sb.ElapsedNs[j])
			}
		}
	}
}

func TestParallelSweepStreamsProgress(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	opt := Options{
		Scale:      0.05,
		Benchmarks: []string{"synthetic"},
		Workers:    3,
		Progress: func(s string) {
			mu.Lock()
			lines = append(lines, s)
			mu.Unlock()
		},
	}
	threads := []int{1, 2, 4, 8}
	Sweep(numa.AMD48(), mempage.PolicyLocal, threads, opt)
	if len(lines) != len(threads) {
		t.Errorf("progress lines = %d, want %d", len(lines), len(threads))
	}
}

func TestDeterministicSweep(t *testing.T) {
	opt := Options{Scale: testScale, Benchmarks: []string{"quicksort"}}
	a := Sweep(numa.AMD48(), mempage.PolicyLocal, []int{4}, opt)
	b := Sweep(numa.AMD48(), mempage.PolicyLocal, []int{4}, opt)
	if a.Series[0].ElapsedNs[0] != b.Series[0].ElapsedNs[0] {
		t.Errorf("sweep not deterministic: %d vs %d", a.Series[0].ElapsedNs[0], b.Series[0].ElapsedNs[0])
	}
}

func TestServerFiguresDeterministicAcrossWorkers(t *testing.T) {
	// The acceptance gate for the server figure: the whole sweep (both
	// machines, all three policies) must be bit-identical at any -j.
	serial := RunServerFigures(Options{Scale: 0.25, Workers: 1})
	parallel := RunServerFigures(Options{Scale: 0.25, Workers: 4})
	if len(serial) != 6 || len(parallel) != 6 {
		t.Fatalf("expected 6 server figures, got %d and %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.ID != ServerFigureID || a.Machine != b.Machine || a.Policy != b.Policy {
			t.Fatalf("figure %d metadata differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Series[0].ElapsedNs {
			if a.Series[0].ElapsedNs[j] != b.Series[0].ElapsedNs[j] {
				t.Errorf("%s %s p=%d: serial %d ns, parallel %d ns", a.Machine, a.Policy,
					a.Series[0].Threads[j], a.Series[0].ElapsedNs[j], b.Series[0].ElapsedNs[j])
			}
		}
	}
}
