// Package bench regenerates the paper's evaluation artifacts: the speedup
// figures (4-7) and the bandwidth table (Table 1). A figure is a sweep of a
// benchmark suite over thread counts on one machine under one page-placement
// policy; speedups are plotted relative to single-vproc performance, with
// Figures 6 and 7 normalized to Figure 5's baseline exactly as in §4.3
// ("These speedup graphs are both plotted relative to the single-processor
// performance for the AMD machine in Figure 5").
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// IntelThreads are the x-axis points of Figure 4.
var IntelThreads = []int{1, 4, 8, 12, 16, 24, 32}

// AMDThreads are the x-axis points of Figures 5-7.
var AMDThreads = []int{1, 4, 8, 12, 24, 36, 48}

// FigureBenchmarks are the five benchmarks of Figures 4-7, in legend order.
var FigureBenchmarks = []string{"dmm", "raytracer", "quicksort", "barnes-hut", "smvm"}

// ServerFigureID labels the server-workload sweep (not a paper figure).
const ServerFigureID = 8

// Series is one benchmark's speedup curve.
type Series struct {
	Benchmark string
	Threads   []int
	ElapsedNs []int64
	Speedup   []float64
}

// Figure is a full sweep.
type Figure struct {
	ID       int
	Machine  string
	Policy   mempage.Policy
	Series   []Series
	Baseline map[string]int64 // 1-thread elapsed per benchmark
}

// Options configures a sweep.
type Options struct {
	Scale float64
	Seed  uint64
	// BaselineNs, if non-nil, supplies the 1-thread reference times
	// (used by Figures 6-7, which normalize to Figure 5's baseline).
	BaselineNs map[string]int64
	// Benchmarks restricts the suite (default: FigureBenchmarks).
	Benchmarks []string
	// Progress, if set, receives a line per completed run. With parallel
	// workers, lines stream in completion order (calls are serialized).
	Progress func(string)
	// Workers bounds how many sweep points run concurrently; 0 means
	// GOMAXPROCS. Every point owns an independent deterministic
	// core.Runtime, so results are identical for any worker count.
	Workers int
	// Par is each runtime's span-worker count (core.Config.SpanWorkers):
	// 0 or 1 runs the serial engine, N >= 2 drains interaction-free idle
	// machines on N host workers between conservative windows. Virtual
	// results are bit-identical for every value.
	Par int
}

// workers resolves the worker-pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runOne executes a benchmark at one configuration point.
func runOne(topo *numa.Topology, policy mempage.Policy, nv int, name string, opt Options) workload.Result {
	cfg := core.DefaultConfig(topo, nv)
	cfg.Policy = policy
	cfg.SpanWorkers = opt.Par
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	rt := core.MustNewRuntime(cfg)
	spec, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	scale := opt.Scale
	if scale == 0 {
		scale = 1
	}
	return spec.Run(rt, scale)
}

// Sweep runs the suite over the thread counts on a machine/policy. The
// (benchmark, thread-count) points are independent — each owns its own
// deterministic Runtime — so they dispatch to a worker pool of
// opt.Workers goroutines; results are collected positionally, making the
// figure identical for any worker count.
func Sweep(topo *numa.Topology, policy mempage.Policy, threads []int, opt Options) Figure {
	benches := opt.Benchmarks
	if benches == nil {
		benches = FigureBenchmarks
	}

	type job struct{ bi, ti int }
	jobs := make(chan job)
	elapsed := make([][]int64, len(benches))
	for bi := range benches {
		elapsed[bi] = make([]int64, len(threads))
	}
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < opt.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				nv := threads[j.ti]
				b := benches[j.bi]
				res := runOne(topo, policy, nv, b, opt)
				elapsed[j.bi][j.ti] = res.ElapsedNs
				if opt.Progress != nil {
					progressMu.Lock()
					opt.Progress(fmt.Sprintf("%s %s %s p=%d: %.3f ms", topo.Name, policy, b, nv, float64(res.ElapsedNs)/1e6))
					progressMu.Unlock()
				}
			}
		}()
	}
	for bi := range benches {
		for ti := range threads {
			jobs <- job{bi, ti}
		}
	}
	close(jobs)
	wg.Wait()

	fig := Figure{Machine: topo.Name, Policy: policy, Baseline: map[string]int64{}}
	for bi, b := range benches {
		s := Series{Benchmark: b, Threads: threads, ElapsedNs: elapsed[bi]}
		base := s.ElapsedNs[0]
		if opt.BaselineNs != nil {
			if v, ok := opt.BaselineNs[b]; ok {
				base = v
			}
		}
		fig.Baseline[b] = base
		for _, e := range s.ElapsedNs {
			s.Speedup = append(s.Speedup, float64(base)/float64(e))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// RunFigure regenerates one of the paper's speedup figures (4, 5, 6 or 7).
// Figures 6 and 7 internally compute Figure 5's 1-thread baselines first so
// the normalization matches the paper.
func RunFigure(id int, opt Options) (Figure, error) {
	switch id {
	case 4:
		f := Sweep(numa.Intel32(), mempage.PolicyLocal, IntelThreads, opt)
		f.ID = 4
		return f, nil
	case 5:
		f := Sweep(numa.AMD48(), mempage.PolicyLocal, AMDThreads, opt)
		f.ID = 5
		return f, nil
	case 6, 7:
		// Baseline: 1-thread local-policy runs (Figure 5's origin).
		base := opt
		base.BaselineNs = nil
		ref := Sweep(numa.AMD48(), mempage.PolicyLocal, []int{1}, base)
		opt.BaselineNs = ref.Baseline
		policy := mempage.PolicyInterleaved
		if id == 7 {
			policy = mempage.PolicySingleNode
		}
		f := Sweep(numa.AMD48(), policy, AMDThreads, opt)
		f.ID = id
		return f, nil
	default:
		return Figure{}, fmt.Errorf("bench: no figure %d (want 4-7)", id)
	}
}

// RunServerFigures sweeps the message-passing server workload over both
// machine presets under all three page-placement policies — the "millions
// of users" traffic shape next to the paper's compute benchmarks. Each
// sweep is a Figure; results are deterministic for any worker count.
func RunServerFigures(opt Options) []Figure {
	opt.Benchmarks = []string{"server"}
	opt.BaselineNs = nil
	machines := []struct {
		topo    *numa.Topology
		threads []int
	}{
		{numa.AMD48(), AMDThreads},
		{numa.Intel32(), IntelThreads},
	}
	policies := []mempage.Policy{mempage.PolicyLocal, mempage.PolicyInterleaved, mempage.PolicySingleNode}
	var out []Figure
	for _, m := range machines {
		for _, pol := range policies {
			f := Sweep(m.topo, pol, m.threads, opt)
			f.ID = ServerFigureID
			out = append(out, f)
		}
	}
	return out
}

// Render formats a figure as the text table the harness reports.
func (f Figure) Render() string {
	var b strings.Builder
	title := map[int]string{
		4: "Figure 4: speedups, Intel 32-core, local allocation",
		5: "Figure 5: speedups, AMD 48-core, local allocation",
		6: "Figure 6: speedups, AMD 48-core, interleaved allocation",
		7: "Figure 7: speedups, AMD 48-core, socket-zero allocation",
	}[f.ID]
	if title == "" {
		if f.ID == ServerFigureID {
			title = fmt.Sprintf("Server workload: %s, %s allocation", f.Machine, f.Policy)
		} else {
			title = fmt.Sprintf("Sweep: %s, %s allocation", f.Machine, f.Policy)
		}
	}
	fmt.Fprintf(&b, "%s\n", title)
	if len(f.Series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", "threads")
	for _, nv := range f.Series[0].Threads {
		fmt.Fprintf(&b, "%8d", nv)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-12s", s.Benchmark)
		for _, sp := range s.Speedup {
			fmt.Fprintf(&b, "%8.2f", sp)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SpeedupAt returns a series' speedup at a thread count.
func (f Figure) SpeedupAt(bench string, threads int) (float64, bool) {
	for _, s := range f.Series {
		if s.Benchmark != bench {
			continue
		}
		for i, nv := range s.Threads {
			if nv == threads {
				return s.Speedup[i], true
			}
		}
	}
	return 0, false
}

// SortedBenchmarks lists the series names.
func (f Figure) SortedBenchmarks() []string {
	var out []string
	for _, s := range f.Series {
		out = append(out, s.Benchmark)
	}
	sort.Strings(out)
	return out
}
