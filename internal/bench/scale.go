// Scale sweep: the rack-scale companion to the paper's speedup figures.
// Each point runs one compute benchmark on a machine preset at its full
// core count under one page-placement policy, and records the virtual
// makespan together with the machine's traffic split across the NUMA
// hierarchy — local, same-package, remote, and (on boarded machines) the
// inter-board far tier. The paper's two machines anchor the sweep; the
// rack presets extend the placement story to hundreds of cores, where the
// far tier makes the local-allocation advantage even larger than Figures
// 5-7 show. Results are deterministic for any -j worker count and any
// -par span-worker count, and the committed SCALE_v1.json baseline gates
// them in CI exactly like the throughput/latency/overload baselines.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// ScalePoint is one sweep measurement. Every field except WallNs is a
// virtual (simulated) result and must stay bit-identical across engine
// changes, -j worker counts, and -par span-worker counts; the compare gate
// checks them exactly.
type ScalePoint struct {
	Machine   string  `json:"machine"`
	Policy    string  `json:"policy"`
	Benchmark string  `json:"benchmark"`
	Threads   int     `json:"threads"`
	Scale     float64 `json:"scale"`

	VirtualMs float64 `json:"virtual_ms"`
	Check     uint64  `json:"check"`

	// Traffic split by path tier, in bytes (numa.TrafficStats).
	LocalBytes   uint64 `json:"local_bytes"`
	SamePkgBytes uint64 `json:"same_pkg_bytes"`
	RemoteBytes  uint64 `json:"remote_bytes"`
	FarBytes     uint64 `json:"far_bytes"`
	CacheBytes   uint64 `json:"cache_bytes"`
	Accesses     uint64 `json:"accesses"`

	GlobalGCs int   `json:"global_gcs"`
	WallNs    int64 `json:"wall_ns"`
}

// Key identifies the point's configuration.
func (p ScalePoint) Key() string {
	return fmt.Sprintf("%s %s %s p=%d", p.Machine, p.Policy, p.Benchmark, p.Threads)
}

// VirtualEq reports whether two points' virtual (deterministic) fields are
// bit-identical; wall time is host noise and excluded.
func (p ScalePoint) VirtualEq(q ScalePoint) bool {
	p.WallNs, q.WallNs = 0, 0
	return p == q
}

// ScaleSweep configures which points MeasureScale runs. The zero value is
// invalid; start from DefaultScaleSweep.
type ScaleSweep struct {
	// Machines are preset names (numa.Preset); each runs at its full core
	// count under every page-placement policy.
	Machines   []string
	Benchmarks []string
	Scale      float64
}

// DefaultScaleSweep is the fixed configuration of the committed
// SCALE_v1.json baseline: the paper's two machines plus the 256-core
// two-board rack preset, under all three placement policies, on the two
// benchmarks whose traffic is most placement-sensitive in Figures 5-7.
func DefaultScaleSweep() ScaleSweep {
	return ScaleSweep{
		Machines:   []string{"amd48", "intel32", "rack256"},
		Benchmarks: []string{"barnes-hut", "smvm"},
		Scale:      0.25,
	}
}

// scalePolicies is the fixed policy axis of the sweep.
var scalePolicies = []mempage.Policy{mempage.PolicyLocal, mempage.PolicyInterleaved, mempage.PolicySingleNode}

// ScalePoints enumerates the sweep: machine × policy × benchmark, each at
// the machine's full core count. Unknown machine names return an error on
// the calling goroutine, before any simulation starts.
func ScalePoints(sw ScaleSweep) ([]ScalePoint, error) {
	var pts []ScalePoint
	for _, m := range sw.Machines {
		topo, err := numa.Preset(m)
		if err != nil {
			return nil, err
		}
		for _, pol := range scalePolicies {
			for _, b := range sw.Benchmarks {
				if _, err := workload.ByName(b); err != nil {
					return nil, err
				}
				pts = append(pts, ScalePoint{
					Machine:   m,
					Policy:    pol.String(),
					Benchmark: b,
					Threads:   topo.NumCores(),
					Scale:     sw.Scale,
				})
			}
		}
	}
	return pts, nil
}

// MeasureScale runs the sweep on a worker pool. Points are independent
// deterministic simulations, so the virtual fields are identical for any
// worker count and any span-worker count par; progress lines stream in
// completion order.
func MeasureScale(sw ScaleSweep, workers, par int, progress func(string)) ([]ScalePoint, error) {
	pts, err := ScalePoints(sw)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	// Resolve names on the calling goroutine (see MeasureOverload).
	topos := make([]*numa.Topology, len(pts))
	pols := make([]mempage.Policy, len(pts))
	for i, pt := range pts {
		topo, err := numa.Preset(pt.Machine)
		if err != nil {
			return nil, err
		}
		pol, err := mempage.ParsePolicy(pt.Policy)
		if err != nil {
			return nil, err
		}
		topos[i], pols[i] = topo, pol
	}
	jobs := make(chan int)
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pt := &pts[i]
				cfg := core.DefaultConfig(topos[i], pt.Threads)
				cfg.Policy = pols[i]
				cfg.SpanWorkers = par
				rt := core.MustNewRuntime(cfg)
				spec, err := workload.ByName(pt.Benchmark)
				if err != nil {
					panic(err) // validated by ScalePoints
				}
				start := time.Now()
				res := spec.Run(rt, pt.Scale)
				pt.WallNs = time.Since(start).Nanoseconds()
				pt.VirtualMs = float64(res.ElapsedNs) / 1e6
				pt.Check = res.Check
				st := rt.Machine.Stats()
				pt.LocalBytes = st.BytesByPath[numa.PathLocal]
				pt.SamePkgBytes = st.BytesByPath[numa.PathSamePackage]
				pt.RemoteBytes = st.BytesByPath[numa.PathRemote]
				pt.FarBytes = st.BytesByPath[numa.PathFar]
				pt.CacheBytes = st.CacheBytes
				pt.Accesses = st.Accesses
				pt.GlobalGCs = rt.Stats.GlobalGCs
				if progress != nil {
					progressMu.Lock()
					progress(fmt.Sprintf("%s: %.3f ms virtual, far %.0f%% of DRAM traffic (%s wall)",
						pt.Key(), pt.VirtualMs, farShare(*pt)*100, time.Duration(pt.WallNs)))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return pts, nil
}

// farShare is the far tier's fraction of DRAM (non-cache) traffic.
func farShare(p ScalePoint) float64 {
	dram := p.LocalBytes + p.SamePkgBytes + p.RemoteBytes + p.FarBytes
	if dram == 0 {
		return 0
	}
	return float64(p.FarBytes) / float64(dram)
}

// remoteShare is the fraction of DRAM traffic leaving the package (remote
// plus far) — the rack-scale figure's placement-quality axis.
func remoteShare(p ScalePoint) float64 {
	dram := p.LocalBytes + p.SamePkgBytes + p.RemoteBytes + p.FarBytes
	if dram == 0 {
		return 0
	}
	return float64(p.RemoteBytes+p.FarBytes) / float64(dram)
}

// RenderScale formats the sweep as the text table gcbench prints: virtual
// makespan plus the traffic split across the hierarchy, the figure that
// shows placement policy mattering more as the machine grows.
func RenderScale(pts []ScalePoint) string {
	var b strings.Builder
	b.WriteString("Rack-scale sweep: makespan and NUMA traffic split at full core count\n")
	fmt.Fprintf(&b, "%-42s %12s %9s %9s %9s %9s %7s %6s\n",
		"point", "virtual", "local", "samepkg", "remote", "far", "xpkg%", "GCs")
	mb := func(v uint64) string { return fmt.Sprintf("%.1fMB", float64(v)/1e6) }
	for _, p := range pts {
		fmt.Fprintf(&b, "%-42s %9.3fms %9s %9s %9s %9s %6.0f%% %6d\n",
			p.Key(), p.VirtualMs, mb(p.LocalBytes), mb(p.SamePkgBytes),
			mb(p.RemoteBytes), mb(p.FarBytes), remoteShare(p)*100, p.GlobalGCs)
	}
	return b.String()
}
