package vtime

import (
	"sort"
	"testing"
)

// TestTimerQueueOrder: timers pop in (deadline, registration-order) order
// regardless of insertion order.
func TestTimerQueueOrder(t *testing.T) {
	var q TimerQueue
	deadlines := []int64{50, 10, 30, 10, 90, 30, 10, 70}
	for i, d := range deadlines {
		q.Add(d, i)
	}
	if q.Len() != len(deadlines) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(deadlines))
	}
	if dl, ok := q.NextDeadline(); !ok || dl != 10 {
		t.Fatalf("NextDeadline = %d, %v; want 10, true", dl, ok)
	}

	// Expected pop order: sort (deadline, insertion index) pairs.
	type key struct {
		when int64
		idx  int
	}
	var want []key
	for i, d := range deadlines {
		want = append(want, key{d, i})
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].when != want[b].when {
			return want[a].when < want[b].when
		}
		return want[a].idx < want[b].idx
	})

	for _, w := range want {
		tm := q.PopDue(1 << 62)
		if tm == nil {
			t.Fatal("PopDue returned nil with entries pending")
		}
		if tm.When != w.when || tm.Data.(int) != w.idx {
			t.Fatalf("popped (%d, %d), want (%d, %d)", tm.When, tm.Data.(int), w.when, w.idx)
		}
	}
	if q.PopDue(1<<62) != nil || q.Len() != 0 {
		t.Fatal("queue not drained")
	}
}

// TestTimerQueuePopDueRespectsNow: PopDue only yields entries at or before
// now.
func TestTimerQueuePopDueRespectsNow(t *testing.T) {
	var q TimerQueue
	q.Add(100, "late")
	q.Add(40, "early")
	if tm := q.PopDue(39); tm != nil {
		t.Fatalf("PopDue(39) = %v, want nil", tm.Data)
	}
	if tm := q.PopDue(40); tm == nil || tm.Data != "early" {
		t.Fatalf("PopDue(40) should pop the deadline-40 entry")
	}
	if tm := q.PopDue(99); tm != nil {
		t.Fatalf("PopDue(99) = %v, want nil", tm.Data)
	}
	if tm := q.PopDue(100); tm == nil || tm.Data != "late" {
		t.Fatalf("PopDue(100) should pop the deadline-100 entry")
	}
}

// TestProcSleepUntil: sleeping procs are rescheduled exactly at their
// deadlines, interleaved with running procs by the min-clock rule.
func TestProcSleepUntil(t *testing.T) {
	e := NewEngine(3)
	type wake struct {
		id    int
		clock int64
	}
	var wakes []wake
	e.Run(func(p *Proc) {
		deadline := int64(100 * (p.ID + 1)) // 100, 200, 300
		p.SleepUntil(deadline)
		wakes = append(wakes, wake{p.ID, p.Now()})
		if p.ID == 0 {
			// Sleep again past the others to test re-sleeping.
			p.SleepUntil(500)
			wakes = append(wakes, wake{p.ID, p.Now()})
		}
	})
	want := []wake{{0, 100}, {1, 200}, {2, 300}, {0, 500}}
	if len(wakes) != len(want) {
		t.Fatalf("wakes = %v, want %v", wakes, want)
	}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wake %d = %+v, want %+v", i, wakes[i], want[i])
		}
	}
}

// TestProcSleepUntilPast: a deadline at or before the clock is a no-op.
func TestProcSleepUntilPast(t *testing.T) {
	e := NewEngine(1)
	e.Run(func(p *Proc) {
		p.Advance(50)
		p.SleepUntil(10)
		if p.Now() != 50 {
			t.Errorf("clock moved backwards or advanced: %d", p.Now())
		}
		p.SleepUntil(50)
		if p.Now() != 50 {
			t.Errorf("sleeping until now advanced the clock: %d", p.Now())
		}
	})
}

// TestTimerQueueRemove: Remove cancels exactly the given pending entry,
// reports false for anything not pending, and leaves the (When, seq) pop
// order of the survivors untouched.
func TestTimerQueueRemove(t *testing.T) {
	var q TimerQueue
	deadlines := []int64{50, 10, 30, 10, 90, 30, 10, 70}
	timers := make([]*Timer, len(deadlines))
	for i, d := range deadlines {
		timers[i] = q.Add(d, i)
	}

	// Remove a middle entry, the current minimum, and the maximum.
	for _, i := range []int{2, 1, 4} {
		if !q.Remove(timers[i]) {
			t.Fatalf("Remove(timers[%d]) = false, want true", i)
		}
		if q.Remove(timers[i]) {
			t.Fatalf("second Remove(timers[%d]) = true, want false", i)
		}
	}
	if q.Len() != len(deadlines)-3 {
		t.Fatalf("Len = %d after 3 removals, want %d", q.Len(), len(deadlines)-3)
	}

	// Survivors drain in (deadline, registration-order) order, untouched by
	// the removals.
	want := []int{3, 6, 5, 0, 7} // deadlines 10,10,30,50,70 by insertion order
	for _, wi := range want {
		tm := q.PopDue(1 << 62)
		if tm == nil {
			t.Fatal("PopDue returned nil with entries pending")
		}
		if tm.Data.(int) != wi {
			t.Fatalf("popped entry %d (deadline %d), want entry %d", tm.Data.(int), tm.When, wi)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}

	// A popped timer is no longer pending: Remove must refuse it.
	tm := q.Add(5, "once")
	if got := q.PopDue(5); got != tm {
		t.Fatalf("PopDue(5) = %v, want the added timer", got)
	}
	if q.Remove(tm) {
		t.Fatal("Remove of an already-popped timer returned true")
	}
	// And removing the sole entry empties the queue cleanly.
	tm = q.Add(7, "only")
	if !q.Remove(tm) || q.Len() != 0 {
		t.Fatalf("Remove of the only entry: Len = %d, want 0", q.Len())
	}
	if _, ok := q.NextDeadline(); ok {
		t.Fatal("NextDeadline reports a deadline on an empty queue")
	}
}

// TestTimerQueueRemoveRootAndLeaf: removing the heap's root (the pending
// minimum) repeatedly, and removing the entry sitting at the last heap
// slot, both re-heapify correctly — NextDeadline tracks the true minimum
// after every removal.
func TestTimerQueueRemoveRootAndLeaf(t *testing.T) {
	var q TimerQueue
	deadlines := []int64{40, 20, 60, 10, 80, 30, 70, 50}
	timers := make(map[int64]*Timer, len(deadlines))
	for _, d := range deadlines {
		timers[d] = q.Add(d, d)
	}

	// Peel the minimum off via Remove (never PopDue): 10, 20, 30, ...
	expect := []int64{10, 20, 30}
	for _, want := range expect {
		if dl, ok := q.NextDeadline(); !ok || dl != want {
			t.Fatalf("NextDeadline = %d, %v; want %d", dl, ok, want)
		}
		if !q.Remove(timers[want]) {
			t.Fatalf("Remove(root %d) = false", want)
		}
	}
	if dl, ok := q.NextDeadline(); !ok || dl != 40 {
		t.Fatalf("NextDeadline = %d, %v after root removals; want 40", dl, ok)
	}

	// The entry added last sits at the heap's final slot when it is the
	// maximum (50 was added last; 80 is the max — remove both orders).
	if !q.Remove(timers[50]) || !q.Remove(timers[80]) {
		t.Fatal("Remove of tail entries failed")
	}
	var got []int64
	for tm := q.PopDue(1 << 62); tm != nil; tm = q.PopDue(1 << 62) {
		got = append(got, tm.When)
	}
	want := []int64{40, 60, 70}
	if len(got) != len(want) {
		t.Fatalf("survivors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("survivors = %v, want %v", got, want)
		}
	}
}

// TestTimerQueueRemoveThenRearm: the retry-timer pattern — cancel a pending
// timer and immediately re-add the same payload at a new deadline. The
// re-armed timer is a fresh entry: it pops at the new deadline exactly
// once, and the stale handle stays dead (Remove on it keeps returning
// false, even after the rearm).
func TestTimerQueueRemoveThenRearm(t *testing.T) {
	var q TimerQueue
	q.Add(25, "other")
	stale := q.Add(10, "job")
	if !q.Remove(stale) {
		t.Fatal("Remove of a pending timer failed")
	}
	rearmed := q.Add(30, "job")
	if q.Remove(stale) {
		t.Error("stale handle removable after the rearm")
	}

	if tm := q.PopDue(1 << 62); tm == nil || tm.Data != "other" {
		t.Fatalf("first pop = %v, want the untouched deadline-25 entry", tm)
	}
	tm := q.PopDue(1 << 62)
	if tm == nil || tm != rearmed || tm.When != 30 || tm.Data != "job" {
		t.Fatalf("rearmed pop = %+v, want the deadline-30 rearm", tm)
	}
	if q.PopDue(1<<62) != nil || q.Len() != 0 {
		t.Fatal("queue should be empty after the rearm popped once")
	}

	// Rearm cycles on a queue that heapifies around them: cancel/re-add in
	// a loop against live neighbours, then drain and check order.
	for i, d := range []int64{70, 40, 90} {
		q.Add(d, i)
	}
	h := q.Add(55, "cycling")
	for _, d := range []int64{35, 95, 45} {
		if !q.Remove(h) {
			t.Fatalf("cycle Remove at deadline %d failed", d)
		}
		h = q.Add(d, "cycling")
	}
	var got []int64
	for tm := q.PopDue(1 << 62); tm != nil; tm = q.PopDue(1 << 62) {
		got = append(got, tm.When)
	}
	want := []int64{40, 45, 70, 90}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}
