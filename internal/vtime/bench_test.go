package vtime

import "testing"

// BenchmarkAdvanceFastPath measures the horizon fast path: a single proc
// (empty ready heap ⇒ horizon at +inf) advancing is a plain local add.
func BenchmarkAdvanceFastPath(b *testing.B) {
	e := NewEngine(1)
	e.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
}

// BenchmarkAdvanceCrossing measures the slow path where every advance
// crosses the horizon and hands the token to another goroutine. Each
// reported op includes n goroutine handoffs.
func benchAdvanceCrossing(b *testing.B, n int) {
	e := NewEngine(n)
	e.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
}

func BenchmarkAdvanceCrossing2(b *testing.B)  { benchAdvanceCrossing(b, 2) }
func BenchmarkAdvanceCrossing8(b *testing.B)  { benchAdvanceCrossing(b, 8) }
func BenchmarkAdvanceCrossing48(b *testing.B) { benchAdvanceCrossing(b, 48) }

// BenchmarkAdvanceOverSteppers measures the inline-step path: one proc
// advances while the others are parked in StepWhile, so every crossing is
// resolved with function calls instead of handoffs. Each reported op
// includes n-1 inline steps.
func benchAdvanceOverSteppers(b *testing.B, n int) {
	e := NewEngine(n)
	var stop bool
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			for i := 0; i < b.N; i++ {
				p.Advance(1)
			}
			stop = true
			return
		}
		p.StepWhile(func() (int64, bool) {
			if stop {
				return 0, true
			}
			return 1, false
		})
	})
}

func BenchmarkAdvanceOverSteppers2(b *testing.B)  { benchAdvanceOverSteppers(b, 2) }
func BenchmarkAdvanceOverSteppers48(b *testing.B) { benchAdvanceOverSteppers(b, 48) }

// BenchmarkHandoff and BenchmarkInlineStep are the canonical pair tracking
// the cost ratio the step conversions exploit: the same two-proc lockstep
// schedule resolved by goroutine token handoffs versus by inline steps.
// Each op is one scheduling turn; Handoff/InlineStep is the per-turn win of
// step-converting a hot loop.

// BenchmarkHandoff: both procs advance in direct style, so every Advance
// crosses the horizon and transfers the token to the other goroutine.
func BenchmarkHandoff(b *testing.B) { benchAdvanceCrossing(b, 2) }

// BenchmarkInlineStep: the second proc is parked in StepWhile, so its turns
// execute as function calls on the token holder's stack and the token never
// moves.
func BenchmarkInlineStep(b *testing.B) { benchAdvanceOverSteppers(b, 2) }

// BenchmarkBlockWake measures a wake/block round trip between two procs.
func BenchmarkBlockWake(b *testing.B) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		if p.ID == 1 {
			for i := 0; i < b.N; i++ {
				p.Block()
			}
			return
		}
		for i := 0; i < b.N; i++ {
			p.Advance(1)
			p.Wake(e.Proc(1))
		}
	})
}

// BenchmarkBarrier measures a full 8-proc barrier round.
func BenchmarkBarrier(b *testing.B) {
	e := NewEngine(8)
	bar := NewBarrier(8, 5)
	e.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(int64(p.ID) + 1)
			bar.Arrive(p)
		}
	})
}
