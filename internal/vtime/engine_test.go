package vtime

import (
	"sync/atomic"
	"testing"
)

func TestSerializedMinClockOrder(t *testing.T) {
	e := NewEngine(3)
	var order []int
	e.Run(func(p *Proc) {
		// Proc i advances by (i+1)*10 per step; the engine must always
		// run the minimum-clock proc next.
		for s := 0; s < 4; s++ {
			order = append(order, p.ID)
			p.Advance(int64((p.ID + 1) * 10))
		}
	})
	// Hand-traced min-clock schedule (ties by ID). Each proc records
	// before advancing, so the first three events are 0,1,2 at clock 0;
	// then proc 0 (clock 10) runs twice to pass proc 1 (20), and so on.
	want := []int{0, 1, 2, 0, 0, 1, 0, 2, 1, 1, 2, 2}
	if len(order) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestAdvanceAccumulatesClock(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(5)
		}
		if p.Now() != 50 {
			t.Errorf("proc %d clock = %d, want 50", p.ID, p.Now())
		}
	})
	if e.MaxClock() != 50 {
		t.Errorf("makespan = %d, want 50", e.MaxClock())
	}
}

func TestBlockWake(t *testing.T) {
	e := NewEngine(2)
	var woken bool
	e.Run(func(p *Proc) {
		if p.ID == 1 {
			p.Block()
			woken = true
			// Clock must have been advanced to at least the
			// waker's clock.
			if p.Now() < 100 {
				t.Errorf("woken proc clock = %d, want >= 100", p.Now())
			}
			return
		}
		p.Advance(100)
		p.Wake(e.Proc(1))
		p.Advance(1)
	})
	if !woken {
		t.Fatal("blocked proc never resumed")
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	e := NewEngine(4)
	b := NewBarrier(4, 7)
	e.Run(func(p *Proc) {
		p.Advance(int64(p.ID) * 100) // arrive at different times
		b.Arrive(p)
		// Everyone resumes at max arrival (300) + sync cost (7).
		if p.Now() != 307 {
			t.Errorf("proc %d resumed at %d, want 307", p.ID, p.Now())
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine(2)
	b := NewBarrier(2, 1)
	e.Run(func(p *Proc) {
		for round := 0; round < 5; round++ {
			p.Advance(int64(p.ID+1) * 3)
			b.Arrive(p)
		}
	})
	if e.Proc(0).Now() != e.Proc(1).Now() {
		t.Errorf("clocks diverged after barrier rounds: %d vs %d", e.Proc(0).Now(), e.Proc(1).Now())
	}
}

// TestBarrierDropReleasesWaiters: dropping a participant that waiters are
// already parked for releases them exactly as a last arrival would — at
// max(arrival clocks) + SyncCost — while the dropper's own clock stays
// untouched (it is leaving the rendezvous, not joining it).
func TestBarrierDropReleasesWaiters(t *testing.T) {
	e := NewEngine(3)
	b := NewBarrier(3, 7)
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Advance(500) // outlive both arrivals, then bow out
			b.Drop(p)
			if p.Now() != 500 {
				t.Errorf("dropper advanced to %d, want 500", p.Now())
			}
			return
		}
		p.Advance(int64(p.ID) * 100)
		b.Arrive(p)
		if p.Now() != 207 { // max arrival 200 + sync cost 7
			t.Errorf("proc %d resumed at %d, want 207", p.ID, p.Now())
		}
	})
}

// TestBarrierDropShrinksLaterRounds: a drop before anyone arrives lowers
// the expected count for every subsequent round, and the barrier stays
// reusable for the survivors.
func TestBarrierDropShrinksLaterRounds(t *testing.T) {
	e := NewEngine(3)
	b := NewBarrier(3, 1)
	e.Run(func(p *Proc) {
		if p.ID == 2 {
			b.Drop(p)
			return
		}
		for round := 0; round < 3; round++ {
			p.Advance(int64(p.ID+1) * 5)
			b.Arrive(p)
		}
	})
	if e.Proc(0).Now() != e.Proc(1).Now() {
		t.Errorf("clocks diverged after dropped-participant rounds: %d vs %d",
			e.Proc(0).Now(), e.Proc(1).Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	var panicked atomic.Bool
	e.Run(func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked.Store(true)
			}
		}()
		p.Block() // nobody will ever wake us: must panic, not hang
	})
	if !panicked.Load() {
		t.Fatal("expected deadlock panic")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEngine(1)
	var panicked atomic.Bool
	e.Run(func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked.Store(true)
			}
		}()
		p.Advance(-1)
	})
	if !panicked.Load() {
		t.Fatal("expected panic on negative advance")
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		e := NewEngine(5)
		var trace []int
		e.Run(func(p *Proc) {
			for i := 0; i < 20; i++ {
				trace = append(trace, p.ID)
				// Pseudo-random but deterministic advances.
				p.Advance(int64((p.ID*7+i*13)%23 + 1))
			}
		})
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// stepTrace runs n procs where proc 0 records its schedule via StepWhile
// and the rest advance normally; used to prove StepWhile is schedule-
// equivalent to an explicit Advance loop.
func stepTrace(useStep bool) []int64 {
	e := NewEngine(3)
	var trace []int64
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			steps := 0
			if useStep {
				p.StepWhile(func() (int64, bool) {
					trace = append(trace, p.Now())
					steps++
					if steps > 12 {
						return 0, true
					}
					return 7, false
				})
				return
			}
			for {
				trace = append(trace, p.Now())
				steps++
				if steps > 12 {
					return
				}
				p.Advance(7)
			}
		}
		for s := 0; s < 10; s++ {
			p.Advance(int64(p.ID) * 5)
		}
	})
	return trace
}

func TestStepWhileMatchesAdvanceLoop(t *testing.T) {
	a, b := stepTrace(false), stepTrace(true)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: clock %d vs %d (full: %v vs %v)", i, a[i], b[i], a, b)
		}
	}
}

// TestStepWhileInline checks that a parked stepper's turns execute at the
// correct virtual instants while another proc advances past it, and that
// the stepper resumes on its own goroutine at the instant its step function
// reports done.
func TestStepWhileInline(t *testing.T) {
	e := NewEngine(2)
	var observed []int64
	e.Run(func(p *Proc) {
		if p.ID == 1 {
			p.StepWhile(func() (int64, bool) {
				observed = append(observed, p.Now())
				if p.Now() >= 40 {
					return 0, true
				}
				return 10, false
			})
			if p.Now() != 40 {
				t.Errorf("stepper resumed at clock %d, want 40", p.Now())
			}
			return
		}
		for i := 0; i < 100; i++ {
			p.Advance(1)
		}
	})
	want := []int64{0, 10, 20, 30, 40}
	if len(observed) != len(want) {
		t.Fatalf("observed %v, want %v", observed, want)
	}
	for i := range want {
		if observed[i] != want[i] {
			t.Fatalf("observed %v, want %v", observed, want)
		}
	}
}

// TestWakeLowersHorizon pins the subtle horizon-refresh rule: waking a proc
// whose clock ties the waker's must prevent the waker's fast path from
// running past it when the woken proc has the smaller ID.
func TestWakeLowersHorizon(t *testing.T) {
	e := NewEngine(2)
	var order []string
	e.Run(func(p *Proc) {
		if p.ID == 0 {
			p.Block()
			order = append(order, "p0-woken")
			return
		}
		p.Advance(5)
		p.Wake(e.Proc(0)) // p0's clock becomes 5, tying ours with smaller ID
		p.Advance(0)      // tie ⇒ p0 (smaller ID) must run first
		order = append(order, "p1-after")
	})
	if len(order) != 2 || order[0] != "p0-woken" || order[1] != "p1-after" {
		t.Fatalf("wrong wakeup schedule: %v", order)
	}
}

// TestStepWhileImmediateDone checks the zero-interaction case: a step
// function that is done on its first call keeps the token without any
// rescheduling.
func TestStepWhileImmediateDone(t *testing.T) {
	e := NewEngine(2)
	e.Run(func(p *Proc) {
		calls := 0
		p.StepWhile(func() (int64, bool) {
			calls++
			return 0, true
		})
		if calls != 1 {
			t.Errorf("proc %d: step called %d times, want 1", p.ID, calls)
		}
	})
}
