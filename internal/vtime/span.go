package vtime

// Span/window scheduler: conservative time-windowed parallel execution of
// interaction-free step machines (see the package comment in engine.go for
// the invariant and the proof sketch). Everything here runs on the token
// holder except spanRun.runSlice, which host workers execute on disjoint
// spanRun/Proc state; the spanWork send and spanWG.Wait edges order the
// coordinator's writes before the workers' reads and vice versa.

import "math"

const maxInt = int(^uint(0) >> 1)

// spanQuota bounds the turns one runSlice executes, so a round ends even
// when a span's park key is far away (or infinite) and newly discovered
// exits can lower the bound between rounds. The value only affects host
// scheduling granularity, never virtual results.
const spanQuota = 4096

// SpanStats reports the achieved parallelism of the span/window scheduler.
// All fields are deterministic for a given simulation and worker count >= 2
// (rounds are worker-count-independent), and all are zero at par 1.
type SpanStats struct {
	// Windows is the number of parallel windows run; Spans sums their
	// participant counts (mean span width = Spans/Windows).
	Windows int64
	Spans   int64
	// SpanTurns counts step turns executed on host workers, replayed
	// turns included.
	SpanTurns int64
	// Close causes: the window ran to the conservative edge owned by a
	// plain step machine (CloseEdgeStep) or a goroutine-bound proc
	// (CloseEdgeProc), or a span exited below the edge and forced an
	// early close (CloseExit). Interaction hot spots that kill window
	// width show up as a high CloseExit share.
	CloseEdgeStep int64
	CloseEdgeProc int64
	CloseExit     int64
}

// SpanStats returns the accumulated window counters. Like MaxClock it must
// not be called while Run is executing procs.
func (e *Engine) SpanStats() SpanStats { return e.spanStats }

// spanRun tracks one window participant. startClock pairs with the proc's
// spanSave checkpoint; the event fields record the first exit or panic the
// span hit, keyed at the virtual instant of the offending turn.
type spanRun struct {
	p          *Proc
	startClock int64
	turns      int64
	parked     bool
	exited     bool
	exitClock  int64
	panicked   bool
	panicVal   any
	panicClock int64
}

// spanTask dispatches one bounded slice of a span to a host worker.
type spanTask struct {
	r          *spanRun
	boundClock int64
	boundID    int
}

func (e *Engine) startSpanWorkers() {
	e.spanWork = make(chan spanTask)
	for i := 0; i < e.par; i++ {
		go func() {
			for t := range e.spanWork {
				t.r.runSlice(t.boundClock, t.boundID)
				e.spanWG.Done()
			}
		}()
	}
}

// runSlice executes up to spanQuota turns of the span while its key stays
// lexicographically below the bound. It touches only r and r.p's private
// state, so concurrent slices of distinct spans never race.
func (r *spanRun) runSlice(boundClock int64, boundID int) {
	p := r.p
	defer func() {
		if v := recover(); v != nil {
			r.panicked = true
			r.panicVal = v
			r.panicClock = p.clock
		}
	}()
	for i := 0; i < spanQuota; i++ {
		c := p.clock
		if c > boundClock || (c == boundClock && p.ID >= boundID) {
			r.parked = true
			return
		}
		d, done := p.step()
		r.turns++
		if done {
			r.exited = true
			r.exitClock = c
			return
		}
		if d < 0 {
			panic("vtime: negative advance")
		}
		p.clock = c + d
	}
}

// runRound advances every active span one slice under a fixed bound and
// waits for all of them. Results are independent of the worker count: each
// slice depends only on its own span's state and the bound.
func (e *Engine) runRound(active []*spanRun, boundClock int64, boundID int) {
	if len(active) == 1 {
		active[0].runSlice(boundClock, boundID)
		return
	}
	e.spanWG.Add(len(active))
	for _, r := range active {
		e.spanWork <- spanTask{r, boundClock, boundID}
	}
	e.spanWG.Wait()
}

// spanWindow attempts one parallel window. Preconditions (checked by
// dispatch): par >= 2, the heap minimum is span-parked, and at least two
// span procs are ready.
//
// Returns (winner, true) when a span's step reported done below every other
// pending key: the winner is committed exactly as the serial inline loop
// would have committed it and is the new global minimum, ready to be
// granted. Returns (nil, true) when the window closed at its edge with
// every participant parked at or beyond it. Returns (nil, false) when fewer
// than two spans lie below the edge and no window ran.
func (e *Engine) spanWindow() (*Proc, bool) {
	// Conservative edge E: the smallest key among ready procs that are
	// NOT span-parked. The moment such a proc runs it may mutate shared
	// state, so no span turn may execute at or beyond E.
	edgeClock, edgeID := int64(math.MaxInt64), maxInt
	var edgeStep bool
	for _, q := range e.ready {
		if q.span {
			continue
		}
		if q.clock < edgeClock || (q.clock == edgeClock && q.ID < edgeID) {
			edgeClock, edgeID = q.clock, q.ID
			edgeStep = q.step != nil
		}
	}
	edgeSpans := 0
	for _, q := range e.ready {
		if q.span && (q.clock < edgeClock || (q.clock == edgeClock && q.ID < edgeID)) {
			edgeSpans++
		}
	}
	if edgeSpans < 2 {
		// A solo span below the edge parallelizes nothing; the caller
		// runs it inline. Ready keys are static until a push, so
		// re-attempting before the heap changes is wasted work.
		e.windowStale = true
		return nil, false
	}

	// Extract the participants, checkpoint them, and rebuild the heap
	// from the remainder.
	runs := e.spanRuns[:0]
	keep := e.ready[:0]
	for _, q := range e.ready {
		if q.span && (q.clock < edgeClock || (q.clock == edgeClock && q.ID < edgeID)) {
			runs = append(runs, spanRun{p: q, startClock: q.clock})
		} else {
			keep = append(keep, q)
		}
	}
	for i := len(keep); i < len(e.ready); i++ {
		e.ready[i] = nil
	}
	e.ready = keep
	e.heapInit()
	e.spanReady -= len(runs)
	e.spanRuns = runs
	for i := range runs {
		if p := runs[i].p; p.spanSave != nil {
			p.spanSave()
		}
	}

	// First pass: run all spans in rounds, lowering the bound to the
	// earliest discovered event (exit or panic) so spans stop as soon as
	// their remaining turns could not precede it.
	boundClock, boundID := edgeClock, edgeID
	active := e.spanActive[:0]
	for i := range runs {
		active = append(active, &runs[i])
	}
	for len(active) > 0 {
		e.runRound(active, boundClock, boundID)
		for i := range runs {
			r := &runs[i]
			if r.exited && (r.exitClock < boundClock || (r.exitClock == boundClock && r.p.ID < boundID)) {
				boundClock, boundID = r.exitClock, r.p.ID
			}
			if r.panicked && (r.panicClock < boundClock || (r.panicClock == boundClock && r.p.ID < boundID)) {
				boundClock, boundID = r.panicClock, r.p.ID
			}
		}
		na := active[:0]
		for _, r := range active {
			if r.exited || r.panicked || r.parked {
				continue
			}
			if r.p.clock < boundClock || (r.p.clock == boundClock && r.p.ID < boundID) {
				na = append(na, r)
			} else {
				r.parked = true
			}
		}
		active = na
	}
	e.spanActive = active[:0]

	e.spanStats.Windows++
	e.spanStats.Spans += int64(len(runs))
	defer func() {
		for i := range runs {
			e.spanStats.SpanTurns += runs[i].turns
		}
	}()

	// B = (boundClock, boundID): the earliest event, or the edge if none.
	// Events always precede the edge strictly (a turn only ran because
	// its key was below the bound at the time), so bound == edge means no
	// event happened and every participant parked at or beyond E.
	if boundClock == edgeClock && boundID == edgeID {
		for i := range runs {
			e.heapPush(runs[i].p)
		}
		e.refreshHorizon()
		if edgeStep {
			e.spanStats.CloseEdgeStep++
		} else {
			e.spanStats.CloseEdgeProc++
		}
		return nil, true
	}

	var winner *spanRun
	for i := range runs {
		r := &runs[i]
		if r.p.ID != boundID {
			continue
		}
		if (r.exited && r.exitClock == boundClock) || (r.panicked && r.panicClock == boundClock) {
			winner = r
			break
		}
	}
	if winner == nil {
		panic("vtime: window bound lowered without a matching event")
	}

	// The winner's turns all precede B, reading frozen shared state and
	// its own (never rolled back) private state — serially identical. If
	// its event is a panic, the serial engine would have hit that very
	// panic on the token holder's inline call at the same instant;
	// re-raise it here, on the token holder.
	if winner.panicked {
		panic(winner.panicVal)
	}

	// A span exited below the edge: commit it as the serial inline loop
	// would (step done at exitClock), roll every other participant back
	// to its window-entry checkpoint, and replay below B. The replay is
	// deterministic — shared state was frozen for the whole window and
	// restore rewound the spans' private state — and by B's minimality it
	// can hit no event, so every replayed span parks at or beyond B.
	wp := winner.p
	wp.clock = winner.exitClock
	wp.step = nil
	wp.clearSpan()
	e.spanStats.CloseExit++

	replay := e.spanActive[:0]
	for i := range runs {
		r := &runs[i]
		if r == winner {
			continue
		}
		if r.p.spanRestore != nil {
			r.p.spanRestore()
		}
		r.p.clock = r.startClock
		r.parked, r.exited, r.panicked = false, false, false
		replay = append(replay, r)
	}
	for len(replay) > 0 {
		e.runRound(replay, boundClock, boundID)
		nr := replay[:0]
		for _, r := range replay {
			if r.exited || r.panicked {
				panic("vtime: span replay diverged below the committed bound (span-safety contract violation)")
			}
			if !r.parked {
				nr = append(nr, r)
			}
		}
		replay = nr
	}
	e.spanActive = replay[:0]
	for i := range runs {
		if r := &runs[i]; r != winner {
			e.heapPush(r.p)
		}
	}
	e.refreshHorizon()
	// Every re-pushed key is >= B and the winner's key is exactly B with
	// all other ready keys > B (keys are unique), so the winner is the
	// global minimum: dispatch returns it for the goroutine handoff.
	return wp, true
}
