package vtime

// Timer is one scheduled deadline in a TimerQueue. Data carries the caller's
// payload (e.g. a parked continuation); the queue never inspects it.
type Timer struct {
	// When is the virtual deadline in nanoseconds.
	When int64
	// seq breaks deadline ties in registration order, so the pop order is
	// a pure function of the Add sequence — the determinism contract.
	seq uint64
	// pos is the timer's current index in the queue's heap array, kept
	// current by every sift so Remove can cancel an entry in O(depth); -1
	// once the timer has been popped or removed.
	pos  int
	Data any
}

// TimerQueue is a deterministic deadline min-heap: entries pop in (When,
// registration-order) order, so two runs that add the same deadlines in the
// same order drain identically. It is a plain data structure with no engine
// coupling — the owner decides when "now" has reached a deadline (for a
// vproc, the ready min-heap already schedules it at that instant; see
// Proc.SleepUntil and the core scheduler's clamped idle charges).
//
// Like the engine's ready heap it is 4-ary: pops are sift-down dominated and
// the wider node halves the depth; keys are unique so the arity cannot
// change the pop order.
type TimerQueue struct {
	h   []*Timer
	seq uint64
}

// Len reports the number of pending timers (including entries whose payload
// the owner may since have invalidated — staleness is the owner's concern).
func (q *TimerQueue) Len() int { return len(q.h) }

// Add schedules data at the given deadline and returns the entry, which the
// caller may later cancel with Remove.
func (q *TimerQueue) Add(when int64, data any) *Timer {
	t := &Timer{When: when, seq: q.seq, pos: len(q.h), Data: data}
	q.seq++
	q.h = append(q.h, t)
	q.siftUp(len(q.h) - 1)
	return t
}

// siftUp restores the heap order upward from index i.
func (q *TimerQueue) siftUp(i int) {
	h := q.h
	for i > 0 {
		parent := (i - 1) / heapArity
		if !timerLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].pos, h[parent].pos = i, parent
		i = parent
	}
}

// siftDown restores the heap order downward from index i.
func (q *TimerQueue) siftDown(i int) {
	h := q.h
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := i
		for c := first; c < last; c++ {
			if timerLess(h[c], h[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		h[i].pos, h[min].pos = i, min
		i = min
	}
}

// Remove cancels a pending timer: the entry leaves the queue immediately, so
// a retired deadline (e.g. a timeout whose reply won) no longer clamps idle
// charges or occupies heap space. Reports false — without touching the queue
// — if the timer is not pending here (already popped or removed). Removal
// does not perturb the (When, seq) order of the remaining entries, so it is
// as deterministic as the pops.
func (q *TimerQueue) Remove(t *Timer) bool {
	i := t.pos
	if i < 0 || i >= len(q.h) || q.h[i] != t {
		return false
	}
	n := len(q.h) - 1
	q.h[i] = q.h[n]
	q.h[i].pos = i
	q.h[n] = nil
	q.h = q.h[:n]
	t.pos = -1
	if i < n {
		q.siftDown(i)
		q.siftUp(i)
	}
	return true
}

// timerLess orders timers by (When, seq); keys are unique.
func timerLess(a, b *Timer) bool {
	return a.When < b.When || (a.When == b.When && a.seq < b.seq)
}

// NextDeadline returns the earliest pending deadline.
func (q *TimerQueue) NextDeadline() (int64, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].When, true
}

// PopDue removes and returns the earliest timer whose deadline has been
// reached (When <= now), or nil if none is due.
func (q *TimerQueue) PopDue(now int64) *Timer {
	if len(q.h) == 0 || q.h[0].When > now {
		return nil
	}
	return q.pop()
}

// pop removes the minimum entry.
func (q *TimerQueue) pop() *Timer {
	h := q.h
	t := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].pos = 0
	h[n] = nil
	q.h = h[:n]
	t.pos = -1
	if n > 0 {
		q.siftDown(0)
	}
	return t
}

// SleepUntil parks the proc until its virtual clock reaches t. In virtual
// time a sleeping proc is simply a proc whose next event is at its deadline:
// advancing the clock to t re-keys the proc in the ready heap so the
// min-clock rule schedules every other proc first and hands control back
// exactly at t — the ready heap doubles as the engine's timer queue, and the
// horizon fast path applies unchanged. A deadline at or before the current
// clock returns immediately with no reschedule.
//
// Code that must observe simulation state during the sleep (e.g. a runtime
// servicing collection requests) should instead step toward the deadline in
// bounded increments; see core.VProc.SleepUntil.
func (p *Proc) SleepUntil(t int64) {
	if t > p.clock {
		p.Advance(t - p.clock)
	}
}
