package vtime

// Barrier synchronizes a fixed set of procs in virtual time. All arrivals
// block until the last proc arrives; every participant then resumes with its
// clock advanced to the latest arrival time plus SyncCost, modelling the
// synchronization traffic of a stop-the-world rendezvous.
//
// Arrive is always executed by the current token holder, so like the engine
// itself the barrier needs no locking: early arrivers park through the
// engine's release path, and the last arriver re-inserts all of them into
// the ready heap before continuing.
type Barrier struct {
	n        int
	SyncCost int64

	waiting []*Proc
	maxT    int64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int, syncCost int64) *Barrier {
	if n <= 0 {
		panic("vtime: barrier needs at least one participant")
	}
	return &Barrier{n: n, SyncCost: syncCost}
}

// Arrive enters the barrier. The last arriver releases everyone (including
// itself) at max(arrival clocks) + SyncCost.
func (b *Barrier) Arrive(p *Proc) {
	e := p.eng
	if p.clock > b.maxT {
		b.maxT = p.clock
	}
	if len(b.waiting)+1 < b.n {
		b.waiting = append(b.waiting, p)
		p.state = Blocked
		e.handoffFrom(p)
		p.await()
		return
	}
	// Last arriver: release all waiters at the synchronized time.
	t := b.maxT + b.SyncCost
	for _, q := range b.waiting {
		q.clock = t
		q.state = Ready
		e.heapPush(q)
	}
	b.waiting = b.waiting[:0]
	b.maxT = 0
	p.clock = t
	// The released procs joined the ready set, so the horizon must drop to
	// their key before the last arriver runs on.
	e.refreshHorizon()
	// The last arriver keeps the token; the min-clock rule will schedule
	// the released procs at its next Advance.
}

// Drop removes one expected participant — a proc that will never arrive
// again (it crashed). The dropper must be the current token holder and must
// not itself be parked in the barrier. If the shrunken count is already
// satisfied by the parked waiters, they are released exactly as the last
// arriver would have released them: at max(arrival clocks) + SyncCost. The
// dropper's own clock does not advance — it is leaving the rendezvous, not
// joining it.
func (b *Barrier) Drop(p *Proc) {
	if b.n <= 0 {
		panic("vtime: barrier drop below zero participants")
	}
	b.n--
	if len(b.waiting) == 0 {
		if b.n == 0 {
			b.maxT = 0
		}
		return
	}
	if len(b.waiting) < b.n {
		return
	}
	e := p.eng
	t := b.maxT + b.SyncCost
	for _, q := range b.waiting {
		q.clock = t
		q.state = Ready
		e.heapPush(q)
	}
	b.waiting = b.waiting[:0]
	b.maxT = 0
	e.refreshHorizon()
}
