package vtime

// Barrier synchronizes a fixed set of procs in virtual time. All arrivals
// block until the last proc arrives; every participant then resumes with its
// clock advanced to the latest arrival time plus SyncCost, modelling the
// synchronization traffic of a stop-the-world rendezvous.
type Barrier struct {
	n        int
	SyncCost int64

	waiting []*Proc
	maxT    int64
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(n int, syncCost int64) *Barrier {
	if n <= 0 {
		panic("vtime: barrier needs at least one participant")
	}
	return &Barrier{n: n, SyncCost: syncCost}
}

// Arrive enters the barrier. The last arriver releases everyone (including
// itself) at max(arrival clocks) + SyncCost.
func (b *Barrier) Arrive(p *Proc) {
	e := p.eng
	e.mu.Lock()
	if p.clock > b.maxT {
		b.maxT = p.clock
	}
	if len(b.waiting)+1 < b.n {
		b.waiting = append(b.waiting, p)
		p.state = Blocked
		e.release()
		e.mu.Unlock()
		<-p.token
		return
	}
	// Last arriver: release all waiters at the synchronized time.
	t := b.maxT + b.SyncCost
	for _, q := range b.waiting {
		q.clock = t
		q.state = Ready
	}
	b.waiting = b.waiting[:0]
	b.maxT = 0
	p.clock = t
	// The last arriver keeps the token; the min-clock rule will schedule
	// the released procs at its next Advance.
	e.mu.Unlock()
}
