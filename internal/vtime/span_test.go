package vtime

import (
	"fmt"
	"testing"
)

// Property test for the span/window scheduler: random programs of
// Advance/SpanWhile/StepWhile/Block/Wake/Barrier over 4–64 procs must
// produce identical clock traces, final clocks and final private state
// under the serial engine (StepWhile everywhere), SpanWhile at par 1
// (which must never open a window), and SpanWhile at par 2 and 8. Spin
// spans of random lengths constantly exit below the window edge, so the
// early-close commit/rollback/replay path is exercised heavily; poll spans
// exercise frozen-shared-state reads from host workers.

// spanRng is a splitmix64 so the generated program is stable across Go
// versions.
type spanRng uint64

func (r *spanRng) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *spanRng) intn(n uint64) int64 { return int64(r.next() % n) }

type spanTraceRec struct {
	id    int
	clock int64
	tag   int64
}

type spanProgResult struct {
	trace  []spanTraceRec
	clocks []int64
	sums   []int64
	max    int64
	stats  SpanStats
}

// runSpanProgram executes one random program. All trace appends happen in
// serial (token-holding) code, never inside a span step, so their order is
// exactly the engine's schedule.
func runSpanProgram(seed uint64, par int, useSpans bool) spanProgResult {
	setup := spanRng(seed)
	n := int(4 + setup.next()%61) // 4..64
	phases := int(3 + setup.next()%4)

	e := NewEngine(n)
	e.SetParallel(par)
	bar := NewBarrier(n, 600)
	// flags[phase][pair]: set by the even proc of the pair, polled by the
	// odd proc. blockReady[phase][pair]: set by the even proc immediately
	// before it Blocks, polled by the odd proc before Wake.
	pairs := n / 2
	flags := make([][]bool, phases)
	blockReady := make([][]bool, phases)
	for ph := 0; ph < phases; ph++ {
		flags[ph] = make([]bool, pairs)
		blockReady[ph] = make([]bool, pairs)
	}

	res := spanProgResult{clocks: make([]int64, n), sums: make([]int64, n)}
	trace := func(p *Proc, tag int64) {
		res.trace = append(res.trace, spanTraceRec{p.ID, p.Now(), tag})
	}

	park := func(p *Proc, fn func() (int64, bool), save, restore func()) {
		if useSpans {
			p.SpanWhile(fn, save, restore)
		} else {
			p.StepWhile(fn)
		}
	}

	e.Run(func(p *Proc) {
		rng := spanRng(seed ^ uint64(p.ID+1)*0xA24BAED4963EE407)
		var sum int64
		for ph := 0; ph < phases; ph++ {
			// 1. Random plain advances.
			for i := int64(0); i < 1+rng.intn(3); i++ {
				p.Advance(1 + rng.intn(500))
			}
			trace(p, 1)

			// 2. A spin span with private state: m turns of d, with the
			// counter checkpointed for rollback. If a window rolls this
			// span back and restore were wrong, the replay would exit
			// after the wrong number of turns and the clock trace would
			// diverge.
			m := 1 + rng.intn(40)
			d := 1 + rng.intn(25)
			turns, saved := int64(0), int64(0)
			park(p, func() (int64, bool) {
				if turns >= m {
					return 0, true
				}
				turns++
				return d, false
			}, func() { saved = turns }, func() { turns = saved })
			sum += turns * d
			trace(p, turns)

			// 3. Pair rendezvous through a shared flag: the even proc
			// publishes, the odd proc polls it inside a span (reading
			// shared state frozen during windows).
			if pair := p.ID / 2; pair < pairs {
				if p.ID%2 == 0 {
					p.Advance(1 + rng.intn(300))
					flags[ph][pair] = true
					p.Advance(1 + rng.intn(100))
				} else {
					pd := 1 + rng.intn(30)
					park(p, func() (int64, bool) {
						if flags[ph][pair] {
							return 0, true
						}
						return pd, false
					}, nil, nil)
					trace(p, 3)
				}
			}

			// 4. On odd phases, the even proc blocks and its partner
			// wakes it: the flag is set in the same serial segment as
			// Block, so the poller can only observe it once the sleeper
			// is actually Blocked.
			if ph%2 == 1 {
				if pair := p.ID / 2; pair < pairs {
					if p.ID%2 == 0 {
						blockReady[ph][pair] = true
						p.Block()
					} else {
						wd := 1 + rng.intn(20)
						park(p, func() (int64, bool) {
							if blockReady[ph][pair] {
								return 0, true
							}
							return wd, false
						}, nil, nil)
						p.Wake(e.Proc(p.ID - 1))
					}
				}
			}

			bar.Arrive(p)
			trace(p, 4)
		}
		res.clocks[p.ID] = p.Now()
		res.sums[p.ID] = sum
	})
	res.max = e.MaxClock()
	res.stats = e.SpanStats()
	return res
}

func diffSpanResults(t *testing.T, label string, want, got spanProgResult) {
	t.Helper()
	if len(want.trace) != len(got.trace) {
		t.Fatalf("%s: trace length %d, want %d", label, len(got.trace), len(want.trace))
	}
	for i := range want.trace {
		if want.trace[i] != got.trace[i] {
			t.Fatalf("%s: trace[%d] = %+v, want %+v", label, i, got.trace[i], want.trace[i])
		}
	}
	for i := range want.clocks {
		if want.clocks[i] != got.clocks[i] {
			t.Fatalf("%s: final clock[%d] = %d, want %d", label, i, got.clocks[i], want.clocks[i])
		}
	}
	for i := range want.sums {
		if want.sums[i] != got.sums[i] {
			t.Fatalf("%s: private sum[%d] = %d, want %d", label, i, got.sums[i], want.sums[i])
		}
	}
	if want.max != got.max {
		t.Fatalf("%s: MaxClock = %d, want %d", label, got.max, want.max)
	}
}

// TestSpanSchedulerEquivalence is the fuzz property: for every seed, the
// serial StepWhile program, the SpanWhile program at par 1, and the
// SpanWhile program at par 2 and 8 all produce the same schedule.
func TestSpanSchedulerEquivalence(t *testing.T) {
	var windows int64
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			serial := runSpanProgram(seed, 1, false)
			if serial.stats != (SpanStats{}) {
				t.Fatalf("serial run accumulated span stats: %+v", serial.stats)
			}
			par1 := runSpanProgram(seed, 1, true)
			if par1.stats != (SpanStats{}) {
				t.Fatalf("par 1 opened windows: %+v", par1.stats)
			}
			diffSpanResults(t, "par 1 spans", serial, par1)
			for _, par := range []int{2, 8} {
				got := runSpanProgram(seed, par, true)
				diffSpanResults(t, fmt.Sprintf("par %d", par), serial, got)
				windows += got.stats.Windows
				if got.stats.Windows > 0 && got.stats.Spans < 2*got.stats.Windows {
					t.Fatalf("par %d: %d windows with only %d spans (width < 2)", par, got.stats.Windows, got.stats.Spans)
				}
			}
			// Worker-count independence of the achieved-parallelism
			// counters: rounds depend only on the program, not on how
			// many host workers drain them.
			p2 := runSpanProgram(seed, 2, true)
			p8 := runSpanProgram(seed, 8, true)
			if p2.stats != p8.stats {
				t.Fatalf("span stats differ across worker counts:\n  par 2: %+v\n  par 8: %+v", p2.stats, p8.stats)
			}
		})
	}
	if windows == 0 {
		t.Fatal("no parallel windows opened across any seed — the property test is vacuous")
	}
}
