// Package vtime provides a deterministic virtual-time execution engine.
//
// Each virtual processor runs as a goroutine, but execution is serialized by
// a token: at any moment exactly one proc executes "user" code, and the token
// is always handed to the ready proc with the smallest virtual clock (ties
// broken by proc ID). This makes every simulation run fully deterministic
// regardless of the Go scheduler, while letting runtime and workload code be
// written in ordinary direct style. All modelled work is charged through
// Advance, whose call sites double as the safepoints of the simulated
// runtime.
//
// # Engine internals: single-writer discipline, horizon, ready-heap, steps
//
// The engine needs no mutex. All scheduler state (clocks, states, the ready
// heap, the horizon) is mutated only by the current token holder, and the
// token moves between goroutines over a channel, whose send/receive pair
// publishes every preceding write to the next holder. Three performance
// ideas are layered on that discipline:
//
//   - Horizon fast path. Whenever the token changes hands (and whenever a
//     proc joins the ready set), the engine caches the smallest ready key
//     (clock, ID) among the procs NOT holding the token — the horizon. The
//     holder provably remains the global minimum until its own clock crosses
//     that key, because no other proc's clock can change while it runs
//     (procs already in the ready heap are suspended; procs can only enter
//     the ready set through the holder's own Wake/barrier-release calls,
//     which refresh the horizon). Advance therefore degenerates to a plain
//     local add plus one comparison while the new clock stays below the
//     horizon — no lock, no scan, no channel operation.
//
//   - Ready min-heap. Ready procs other than the token holder sit in a
//     binary min-heap keyed on (clock, ID), so every reschedule, block, and
//     finish is O(log n) instead of an O(n) linear scan.
//
//   - Inline steps. A proc whose next actions are a pure observe-and-charge
//     loop (idle polling, steal probing, spin waits) can suspend into a step
//     function via StepWhile. While parked, its turns are executed inline by
//     whichever goroutine holds the token: scheduling the proc calls the
//     step function instead of performing a goroutine handoff. In idle-heavy
//     phases this collapses the token ping-pong between pollers into plain
//     function calls — the dominant wall-clock cost of the naive engine.
//
// The schedule produced is bit-identical to the naive "scan all procs each
// Advance" engine: keys are unique (IDs break clock ties), the heap yields
// exactly the same minimum the scan would, the fast path only skips
// reschedules that would have kept the holder running anyway, and a step
// function runs exactly when (in virtual time) its proc would have been
// scheduled — only on a different stack.
//
// # Span-parallel windows
//
// With SetParallel(n >= 2) the engine generalizes the horizon fast path from
// one proc to a set: when the heap minimum is parked via SpanWhile (a step
// machine declared interaction-free), the engine computes a conservative
// window edge E — the smallest key among ready procs that are NOT
// span-parked — and runs every span-parked proc whose key precedes E
// concurrently on a bounded host-worker pool. The span-safety contract
// (see SpanWhile) guarantees shared simulation state is frozen for the whole
// window, so each span's turns compute exactly what the serial interleaving
// would. If a span's step reports done below the edge, its proc must resume
// on its own goroutine and may then mutate shared state; the window
// therefore closes at the earliest such exit B (in (clock, ID) order): the
// exiting proc is committed, every other participant is rolled back to its
// window-entry checkpoint (SpanWhile's save/restore hooks) and deterministic-
// ally replayed below B. Either way every clock the window publishes is the
// clock the serial engine would have produced, so schedules, GC stats and
// histograms stay bit-identical for every worker count — including n == 1,
// which never opens a window and is byte-for-byte the serial engine.
package vtime

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// State is the scheduling state of a Proc.
type State int

const (
	// Ready procs compete for the execution token.
	Ready State = iota
	// Blocked procs wait to be woken by a running proc.
	Blocked
	// Done procs have finished their body.
	Done
)

// Proc is one serialized virtual processor.
type Proc struct {
	ID    int
	eng   *Engine
	clock int64
	state State
	token chan struct{}

	// step, when non-nil, is the parked proc's inline scheduler: the token
	// holder calls it in place of a goroutine handoff (see StepWhile).
	step func() (int64, bool)

	// span marks a parked step machine as interaction-free (parked via
	// SpanWhile), making it eligible to run inside a parallel window.
	// spanSave/spanRestore checkpoint the machine's private state so a
	// window that closes early can roll the span back and replay it. The
	// flag is only ever set when the engine runs with SetParallel >= 2;
	// at par 1 every SpanWhile parks as a plain step.
	span        bool
	spanSave    func()
	spanRestore func()
}

// clearSpan strips the span marking when a parked machine resumes.
func (p *Proc) clearSpan() {
	p.span = false
	p.spanSave = nil
	p.spanRestore = nil
}

// Engine coordinates a fixed set of procs.
type Engine struct {
	procs []*Proc
	wg    sync.WaitGroup
	// started is set once Run has handed out the first token.
	started atomic.Bool

	// ready is the binary min-heap of Ready procs, keyed on (clock, ID),
	// excluding the current token holder. Only the token holder touches
	// it; the token handoff channel publishes the writes.
	ready []*Proc

	// horizonClock/horizonID cache ready[0]'s key (the next-smallest
	// ready key after the holder). While the holder's (clock, ID) stays
	// lexicographically below it, Advance never reschedules. An empty
	// heap is represented by horizonClock == math.MaxInt64, which keeps
	// the fast path unconditionally true.
	horizonClock int64
	horizonID    int

	// par is the host-worker count of the span/window scheduler; <= 1
	// runs the serial engine and never opens a window.
	par int

	// spanReady counts span-parked procs currently in the ready heap —
	// the O(1) gate that keeps window-attempt overhead off the serial
	// hot path. windowStale suppresses re-attempts after a failed one:
	// ready keys are static until a push (inline turns only grow the
	// root's key), so a failed partition cannot become viable before the
	// heap membership changes.
	spanReady   int
	windowStale bool

	// Window scheduler state: the worker pool, per-window scratch, and
	// achieved-parallelism counters. Only the token holder touches any
	// of it; workers communicate exclusively through spanWork/spanWG.
	spanWork   chan spanTask
	spanWG     sync.WaitGroup
	spanRuns   []spanRun
	spanActive []*spanRun
	spanStats  SpanStats
}

// NewEngine creates an engine with n procs, all Ready at clock zero.
func NewEngine(n int) *Engine {
	if n <= 0 {
		panic("vtime: engine needs at least one proc")
	}
	e := &Engine{}
	for i := 0; i < n; i++ {
		e.procs = append(e.procs, &Proc{
			ID:    i,
			eng:   e,
			state: Ready,
			token: make(chan struct{}, 1),
		})
	}
	return e
}

// NumProcs returns the number of procs.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns the i'th proc.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// SetParallel sets the number of host workers available to the span/window
// scheduler. n == 1 (the default) selects the serial engine; any n the
// virtual results are bit-identical — the knob only trades host CPU for
// wall clock. It must be called before Run.
func (e *Engine) SetParallel(n int) {
	if e.started.Load() {
		panic("vtime: SetParallel after Run")
	}
	if n < 1 {
		panic("vtime: SetParallel needs at least one worker")
	}
	e.par = n
}

// Run executes body on every proc and returns when all procs are Done.
// It may be called once per engine.
func (e *Engine) Run(body func(p *Proc)) {
	if e.started.Swap(true) {
		panic("vtime: Run called twice")
	}
	if e.par > 1 {
		e.startSpanWorkers()
	}
	for _, p := range e.procs {
		e.wg.Add(1)
		go func(p *Proc) {
			defer e.wg.Done()
			p.await() // wait to be scheduled for the first time
			body(p)
			p.finish()
		}(p)
	}
	// Seed the ready heap with procs 1..n-1 (all clocks zero, so ID order
	// is already a valid heap) and hand the token to the initial minimum,
	// proc 0.
	e.ready = append(e.ready[:0], e.procs[1:]...)
	e.refreshHorizon()
	e.procs[0].grant()
	e.wg.Wait()
	if e.spanWork != nil {
		close(e.spanWork)
	}
}

// grant hands the token to p (who must be the scheduling decision's next
// proc), waking its goroutine. The channel send publishes all engine state
// written by the granter. Pairs with await.
func (p *Proc) grant() {
	p.token <- struct{}{}
}

// await takes the token, parking until granted.
func (p *Proc) await() {
	<-p.token
}

// --- Ready-heap primitives (caller is the token holder) -------------------

// procLess orders procs by (clock, ID); keys are unique.
func procLess(a, b *Proc) bool {
	return a.clock < b.clock || (a.clock == b.clock && a.ID < b.ID)
}

// The ready heap is 4-ary: reschedules are dominated by sift-downs
// (replace-root on every handoff), and a wider node halves the depth.
// Extraction order is unaffected — keys are unique, so any d-ary heap pops
// the same sequence.
const heapArity = 4

// heapPush inserts p into the ready heap.
func (e *Engine) heapPush(p *Proc) {
	if p.span {
		e.spanReady++
	}
	// Any change of heap membership can make a previously failed window
	// partition viable again.
	e.windowStale = false
	h := e.ready
	h = append(h, p)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !procLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.ready = h
}

// heapFixRoot restores the heap property after the root's key grew.
func (e *Engine) heapFixRoot() { e.heapSiftDown(0) }

// heapSiftDown restores the heap property below i after h[i]'s key grew.
func (e *Engine) heapSiftDown(i int) {
	h := e.ready
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := i
		for c := first; c < last; c++ {
			if procLess(h[c], h[min]) {
				min = c
			}
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// heapPopRoot removes the minimum ready proc.
func (e *Engine) heapPopRoot() {
	h := e.ready
	if h[0].span {
		e.spanReady--
	}
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	e.ready = h[:n]
	e.heapFixRoot()
}

// heapInit heapifies e.ready from an arbitrary permutation (used after a
// window extracts its participants). Extraction order depends only on the
// key set, so rebuilding is schedule-neutral.
func (e *Engine) heapInit() {
	for i := (len(e.ready) - 2) / heapArity; i >= 0; i-- {
		e.heapSiftDown(i)
	}
}

// refreshHorizon re-caches the ready heap's minimum key.
func (e *Engine) refreshHorizon() {
	if len(e.ready) == 0 {
		e.horizonClock = math.MaxInt64
		e.horizonID = 0
		return
	}
	e.horizonClock = e.ready[0].clock
	e.horizonID = e.ready[0].ID
}

// dispatch drives the simulation forward until a goroutine handoff is due:
// while the minimum ready proc is parked in a step function, its turns are
// executed inline on the caller's stack; the first minimum that needs its
// own goroutine (no step function, or its step function just reported done)
// is popped and returned. Returns nil when no proc is ready — a deadlock
// (panic) if anything is still blocked, or normal completion if not.
//
// The caller must have already accounted for itself (pushed itself into the
// ready heap, or marked itself Blocked/Done).
func (e *Engine) dispatch() *Proc {
	if len(e.ready) == 0 {
		for _, q := range e.procs {
			if q.state == Blocked {
				panic(fmt.Sprintf("vtime: deadlock — proc %d blocked with no ready proc", q.ID))
			}
		}
		// All procs are Done; nothing to schedule.
		return nil
	}
	for {
		next := e.ready[0]
		if next.step == nil {
			e.heapPopRoot()
			e.refreshHorizon()
			return next
		}
		if next.span && e.par > 1 && e.spanReady > 1 && !e.windowStale {
			if p, opened := e.spanWindow(); opened {
				if p != nil {
					return p
				}
				continue
			}
			// Fewer than two spans below the edge: nothing to
			// parallelize. spanWindow set windowStale; fall through to
			// a serial inline turn.
		}
		// Inline turn: next is the minimum, so this is exactly the
		// virtual instant its goroutine would have been scheduled.
		d, done := next.step()
		if done {
			e.heapPopRoot()
			next.step = nil
			next.clearSpan()
			e.refreshHorizon()
			return next
		}
		if d < 0 {
			panic("vtime: negative advance")
		}
		next.clock += d
		e.heapFixRoot()
	}
}

// handoffFrom passes the token on after p stopped running (Blocked or Done).
func (e *Engine) handoffFrom(p *Proc) {
	if next := e.dispatch(); next != nil {
		next.grant()
	}
}

// Now returns the proc's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clock }

// Advance charges d nanoseconds of virtual time and reschedules: if another
// ready proc now has a smaller clock, control transfers to it before Advance
// returns. d must be non-negative.
//
// Fast path: while the advanced clock stays below the horizon (the smallest
// other ready key), the holder is still the global minimum and Advance is a
// plain local add — no synchronization of any kind.
func (p *Proc) Advance(d int64) {
	if d < 0 {
		panic("vtime: negative advance")
	}
	e := p.eng
	c := p.clock + d
	if c < e.horizonClock || (c == e.horizonClock && p.ID < e.horizonID) {
		p.clock = c
		return
	}
	// Slow path: the clock crossed the horizon, so the heap minimum now
	// precedes us.
	p.clock = c
	next := e.ready[0]
	if next.step == nil {
		// Common case: the new minimum runs on its own goroutine. Swap
		// places with it directly — it takes the token, we take its
		// heap slot — saving a separate push + pop. (Heap extraction
		// order depends only on the key set, never on layout, so this
		// is schedule-identical to push-then-dispatch.)
		e.ready[0] = p
		e.heapFixRoot()
		e.refreshHorizon()
		// The departing minimum was a non-span goroutine proc whose key
		// bounded the window edge; with p's (>=) key in its place the
		// edge can only move out, so a stale window partition may be
		// viable again.
		e.windowStale = false
		next.grant()
		p.await()
		return
	}
	// The minimum is parked in a step function: rejoin the ready set and
	// dispatch; if every intervening proc runs inline, the token never
	// leaves this goroutine.
	e.heapPush(p)
	next = e.dispatch()
	if next == p {
		return
	}
	next.grant()
	p.await()
}

// StepWhile suspends the proc into an inline scheduling loop: fn is invoked
// at every virtual instant the proc is scheduled — possibly on another
// proc's goroutine — and returns the duration to charge before its next
// turn, or done to resume normal execution. StepWhile returns on the proc's
// own goroutine, holding the token, at the exact virtual instant of the
// final fn call; no virtual time passes between that call and the return.
//
// StepWhile(fn) is semantically identical to
//
//	for {
//		d, done := fn()
//		if done {
//			return
//		}
//		p.Advance(d)
//	}
//
// but turns that interleave with other parked pollers cost a function call
// instead of a goroutine handoff. fn must confine itself to observing and
// mutating simulation state and must not call engine scheduling primitives
// (Advance, Block, Wake, Barrier.Arrive) — it runs astride them.
func (p *Proc) StepWhile(fn func() (d int64, done bool)) {
	p.parkWhile(fn, nil, nil, false)
}

// SpanWhile is StepWhile for an interaction-free step machine: parked turns
// may additionally run inside a parallel window, concurrently with other
// spans, on a host worker (see the package comment). It is semantically
// identical to StepWhile — at SetParallel 1 it IS StepWhile — and imposes
// the span-safety contract on fn:
//
//   - fn may READ any simulation state. During a window only spans execute
//     and spans write nothing shared, so everything it reads is frozen at
//     its window-entry value — exactly what the serial interleaving of
//     interaction-free machines would observe.
//   - fn may WRITE only state private to this machine, and all of it must
//     be checkpointed by save and rewound by restore (pass nil for either
//     when fn writes nothing). A window that closes early rolls the span
//     back via restore and replays it.
//   - fn must not call engine primitives or charge through contended
//     (metered) cost-model paths; machines that do — kernel steps, GC scan
//     machines — park with StepWhile and instead bound the window edge.
func (p *Proc) SpanWhile(fn func() (d int64, done bool), save, restore func()) {
	p.parkWhile(fn, save, restore, true)
}

// parkWhile is the shared StepWhile/SpanWhile body.
func (p *Proc) parkWhile(fn func() (int64, bool), save, restore func(), span bool) {
	e := p.eng
	for {
		d, done := fn()
		if done {
			return
		}
		if d < 0 {
			panic("vtime: negative advance")
		}
		c := p.clock + d
		if c < e.horizonClock || (c == e.horizonClock && p.ID < e.horizonID) {
			p.clock = c
			continue
		}
		p.clock = c
		p.step = fn
		if span && e.par > 1 {
			p.span = true
			p.spanSave = save
			p.spanRestore = restore
		}
		e.heapPush(p)
		next := e.dispatch()
		if next == p {
			// dispatch ran fn inline (or inside a window) until it
			// reported done and cleared p.step; the token never left
			// this goroutine.
			return
		}
		next.grant()
		p.await()
		// The token only comes back after some holder observed fn
		// report done and cleared p.step.
		return
	}
}

// Block suspends the proc until another proc calls Wake on it. The proc's
// clock is advanced to at least the waker's clock. Block returns once the
// proc is both woken and scheduled.
func (p *Proc) Block() {
	p.state = Blocked
	p.eng.handoffFrom(p)
	p.await()
}

// Wake makes q ready again. It must be called by the running proc; q's clock
// is advanced to the waker's clock so virtual time never flows backwards
// across the wakeup edge. Waking a non-blocked proc panics.
func (p *Proc) Wake(q *Proc) {
	e := p.eng
	if q.state != Blocked {
		panic(fmt.Sprintf("vtime: proc %d woke proc %d which is not blocked", p.ID, q.ID))
	}
	if q.clock < p.clock {
		q.clock = p.clock
	}
	q.state = Ready
	e.heapPush(q)
	// q entered the ready set, which may lower the horizon; refresh so the
	// waker's fast path cannot run past q.
	e.refreshHorizon()
	// The waker keeps running; q will be scheduled by the min-clock rule
	// at the waker's next Advance/Block.
}

// finish marks the proc Done and passes the token on.
func (p *Proc) finish() {
	p.state = Done
	p.eng.handoffFrom(p)
}

// MaxClock returns the largest clock over all procs; after Run completes
// this is the makespan of the simulation. It must not be called while Run
// is executing procs (clocks are unsynchronized engine-internal state).
func (e *Engine) MaxClock() int64 {
	var mx int64
	for _, p := range e.procs {
		if p.clock > mx {
			mx = p.clock
		}
	}
	return mx
}
