// Package vtime provides a deterministic virtual-time execution engine.
//
// Each virtual processor runs as a goroutine, but execution is serialized by
// a token: at any moment exactly one proc executes "user" code, and the token
// is always handed to the ready proc with the smallest virtual clock (ties
// broken by proc ID). This makes every simulation run fully deterministic
// regardless of the Go scheduler, while letting runtime and workload code be
// written in ordinary direct style. All modelled work is charged through
// Advance, whose call sites double as the safepoints of the simulated
// runtime.
package vtime

import (
	"fmt"
	"sync"
)

// State is the scheduling state of a Proc.
type State int

const (
	// Ready procs compete for the execution token.
	Ready State = iota
	// Blocked procs wait to be woken by a running proc.
	Blocked
	// Done procs have finished their body.
	Done
)

// Proc is one serialized virtual processor.
type Proc struct {
	ID    int
	eng   *Engine
	clock int64
	state State
	token chan struct{}
}

// Engine coordinates a fixed set of procs.
type Engine struct {
	mu    sync.Mutex
	procs []*Proc
	wg    sync.WaitGroup
	// started is set once Run has handed out the first token.
	started bool
}

// NewEngine creates an engine with n procs, all Ready at clock zero.
func NewEngine(n int) *Engine {
	if n <= 0 {
		panic("vtime: engine needs at least one proc")
	}
	e := &Engine{}
	for i := 0; i < n; i++ {
		e.procs = append(e.procs, &Proc{
			ID:    i,
			eng:   e,
			state: Ready,
			token: make(chan struct{}, 1),
		})
	}
	return e
}

// NumProcs returns the number of procs.
func (e *Engine) NumProcs() int { return len(e.procs) }

// Proc returns the i'th proc.
func (e *Engine) Proc(i int) *Proc { return e.procs[i] }

// Run executes body on every proc and returns when all procs are Done.
// It may be called once per engine.
func (e *Engine) Run(body func(p *Proc)) {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("vtime: Run called twice")
	}
	e.started = true
	e.mu.Unlock()

	for _, p := range e.procs {
		e.wg.Add(1)
		go func(p *Proc) {
			defer e.wg.Done()
			<-p.token // wait to be scheduled for the first time
			body(p)
			p.finish()
		}(p)
	}
	// Hand the token to the initial minimum (proc 0: all clocks equal).
	e.procs[0].token <- struct{}{}
	e.wg.Wait()
}

// minReady returns the Ready proc with the smallest (clock, ID), or nil.
// Caller holds e.mu.
func (e *Engine) minReady() *Proc {
	var best *Proc
	for _, p := range e.procs {
		if p.state != Ready {
			continue
		}
		if best == nil || p.clock < best.clock || (p.clock == best.clock && p.ID < best.ID) {
			best = p
		}
	}
	return best
}

// release hands the token to the minimum ready proc. If no proc is ready but
// some are blocked, the simulation has deadlocked, which is a programming
// error in the layer above. Caller holds e.mu; release must be called by the
// current token holder as it stops running.
func (e *Engine) release() {
	next := e.minReady()
	if next != nil {
		next.token <- struct{}{}
		return
	}
	for _, p := range e.procs {
		if p.state == Blocked {
			// Unlock before panicking so a recovering caller can
			// still finish (and tests can observe the panic).
			e.mu.Unlock()
			panic(fmt.Sprintf("vtime: deadlock — proc %d blocked with no ready proc", p.ID))
		}
	}
	// All procs are Done; nothing to schedule.
}

// Now returns the proc's virtual clock in nanoseconds.
func (p *Proc) Now() int64 { return p.clock }

// Advance charges d nanoseconds of virtual time and reschedules: if another
// ready proc now has a smaller clock, control transfers to it before Advance
// returns. d must be non-negative.
func (p *Proc) Advance(d int64) {
	if d < 0 {
		panic("vtime: negative advance")
	}
	e := p.eng
	e.mu.Lock()
	p.clock += d
	next := e.minReady()
	if next == p {
		e.mu.Unlock()
		return
	}
	next.token <- struct{}{}
	e.mu.Unlock()
	<-p.token
}

// Block suspends the proc until another proc calls Wake on it. The proc's
// clock is advanced to at least the waker's clock. Block returns once the
// proc is both woken and scheduled.
func (p *Proc) Block() {
	e := p.eng
	e.mu.Lock()
	p.state = Blocked
	e.release()
	e.mu.Unlock()
	<-p.token
}

// Wake makes q ready again. It must be called by the running proc; q's clock
// is advanced to the waker's clock so virtual time never flows backwards
// across the wakeup edge. Waking a non-blocked proc panics.
func (p *Proc) Wake(q *Proc) {
	e := p.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if q.state != Blocked {
		panic(fmt.Sprintf("vtime: proc %d woke proc %d which is not blocked", p.ID, q.ID))
	}
	if q.clock < p.clock {
		q.clock = p.clock
	}
	q.state = Ready
	// The waker keeps running; q will be scheduled by the min-clock rule
	// at the waker's next Advance/Block.
}

// finish marks the proc Done and passes the token on.
func (p *Proc) finish() {
	e := p.eng
	e.mu.Lock()
	p.state = Done
	e.release()
	e.mu.Unlock()
}

// MaxClock returns the largest clock over all procs; after Run completes
// this is the makespan of the simulation.
func (e *Engine) MaxClock() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var mx int64
	for _, p := range e.procs {
		if p.clock > mx {
			mx = p.clock
		}
	}
	return mx
}
