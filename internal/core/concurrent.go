package core

import (
	"fmt"
	"math"

	"repro/internal/heap"
	"repro/internal/numa"
)

// Mostly-concurrent global collection (Config.ConcurrentGlobal).
//
// The legacy protocol (global.go) stops the world for the entire collection:
// condemn, scan all roots and local heaps, drain every to-space chunk, then
// release — a pause that grows with the live global heap and dominates the
// p99.9 request tail. The concurrent protocol splits the same copying
// collection into two short stop-the-world windows with a mutator-interleaved
// mark between them:
//
//	snapshot window    all vprocs rendezvous; the leader condemns the active
//	                   chunks (from-space); every vproc scans its roots and
//	                   whole local heap (including the live nursery — no
//	                   minor/major runs first), evacuating from-space
//	                   referents into fresh gray to-space chunks. No chunk
//	                   draining happens here: the window ends as soon as the
//	                   roots are black.
//
//	concurrent mark    mutators run. Gray data (to-space words in
//	                   [Scan, Top)) is drained by allocation-paced mark
//	                   assists at safepoints and by idle vprocs. Tri-color
//	                   discipline for a copying collector: white = from-space
//	                   objects, gray = unscanned to-space words, black =
//	                   scanned to-space words. Fresh global allocation lands
//	                   gray (allocate-gray), so anything a mutator builds
//	                   during the mark is scanned before termination. A
//	                   Dijkstra-style insertion barrier (gcWriteBarrier)
//	                   shades values stored into global objects: the only
//	                   stores that could hide a white object behind a black
//	                   one are stores of from-space addresses, and the
//	                   barrier evacuates those on the spot, charged through
//	                   the NUMA cost model like any evacuation.
//
//	termination window once no gray data remains, the world stops again: a
//	                   second root scan picks up everything mutators stored
//	                   since the snapshot, global-root objects dirtied during
//	                   the mark are rescanned slot-by-slot (channel records
//	                   pop their head link without the barrier; the rescan
//	                   heals them and seeds their chains gray), the drain
//	                   runs to empty, promotion forwarding is repaired, and
//	                   the from-space is released.
//
// The pacer (updatePacer) sets the next cycle's trigger from the measured
// survival and the allocation observed during the mark, GOGC-style: the goal
// heap is survived*(1+GCPercent/100) and the trigger is backed off from the
// goal by twice the last mark's allocation so the cycle finishes around the
// goal instead of overshooting it.
//
// With ConcurrentGlobal off, none of this code runs: every hook is behind the
// marking/termPending flags, which stay false forever, so legacy schedules
// are bit-identical.

// gcAssistMinWords is the floor on a nonzero mark-assist budget: paying a
// few words of debt at a time would charge the fixed assist overheads per
// visit without retiring gray data.
const gcAssistMinWords = 512

// gcTrigger is the global-collection trigger threshold in allocated global
// words. Legacy mode uses the static configuration value. Concurrent mode
// uses the pacer's moving trigger, and is inert (MaxInt) while a cycle is in
// flight — evacuation doubles the active chunkage mid-cycle, and re-raising
// pending during a mark would wedge the protocol.
func (rt *Runtime) gcTrigger() int {
	if !rt.Cfg.ConcurrentGlobal {
		return rt.Cfg.GlobalTriggerWords
	}
	g := &rt.global
	if g.marking || g.termPending {
		return math.MaxInt
	}
	if g.trigger > 0 {
		return g.trigger
	}
	return rt.Cfg.GlobalTriggerWords
}

// globalSnapshot is the concurrent collector's first STW window, entered by
// every vproc from participateGlobal while global.pending is up. It reuses
// the legacy rendezvous barriers (a cycle uses the snapshot set, then the
// termination set, strictly in order).
func (vp *VProc) globalSnapshot() {
	rt := vp.rt
	g := &rt.global
	start := vp.Now()

	g.entry.Arrive(vp.proc)

	// The leader condemns the active chunks, exactly as in the legacy
	// phase 2. Invalidated current chunks are all from-space now, so
	// nulling them loses nothing.
	if vp.ID == g.leader {
		g.windowStart = vp.Now()
		g.fromChunks = rt.Chunks.TakeActive()
		for _, c := range g.fromChunks {
			c.FromSpace = true
		}
		rt.Stats.ChunksFromSpace += len(g.fromChunks)
		for _, o := range rt.VProcs {
			o.curChunk = nil
		}
		g.scanning = true
		vp.advance(int64(len(g.fromChunks)) * 25) // list gathering
	}
	g.setup.Arrive(vp.proc)

	// Root snapshot: roots and the entire local heap including the live
	// nursery (no minor/major precedes this window). Referents are
	// evacuated into fresh to-space chunks, which stay gray for the mark.
	vp.globalScanRoots(true)
	if vp.ID == g.leader {
		for _, pa := range rt.globalRoots {
			*pa = vp.globalForward(*pa)
		}
		vp.adoptCrashedHeaps()
	}
	g.scanDone.Arrive(vp.proc)

	// Roots are black; the world restarts with the mark in flight.
	if vp.ID == g.leader {
		g.markStartAllocated = rt.Chunks.AllocatedWords
		g.marking = true
		g.pending = false
		d := vp.Now() - g.windowStart
		rt.Stats.SnapshotNs += d
		rt.emit(GCEvent{Kind: EvSnapshot, VProc: vp.ID, At: vp.Now(), Ns: d})
	}
	g.finish.Arrive(vp.proc)
	vp.Stats.GlobalNs += vp.Now() - start
}

// gcAssist drains gray to-space data in direct style (each evacuation and
// chunk fetch is its own engine charge), stopping at an object boundary once
// at least budget words have been scanned or no reachable gray work remains.
// Runs only on the vproc's own goroutine. Returns the words scanned.
func (vp *VProc) gcAssist(budget int) int {
	rt := vp.rt
	start := vp.Now()
	scanned := 0
	for scanned < budget {
		progressed := false
		// Drain our own allocation chunk first: it is reachable by no
		// other vproc's assist (current chunks are never on the scan
		// lists).
		for c := vp.curChunk; c != nil && c.Scan < c.Top; {
			progressed = true
			scanned += heap.HeaderLen(c.Region.Words[c.Scan]) + 1
			vp.scanChunkStep(c)
			if scanned >= budget {
				break
			}
			if vp.curChunk != c {
				// The chunk filled mid-scan and was replaced;
				// getChunk queued it for later completion.
				break
			}
		}
		if scanned >= budget {
			break
		}
		// Pop a pending chunk, node-local first.
		c := vp.popScanChunk()
		if c == nil {
			if !progressed {
				break
			}
			continue
		}
		for c.Scan < c.Top {
			scanned += heap.HeaderLen(c.Region.Words[c.Scan]) + 1
			vp.scanChunkStep(c)
			if scanned >= budget {
				break
			}
		}
		if c.Scan < c.Top {
			// Budget exhausted mid-chunk: hand the remainder back to
			// the lists (object boundary — scanChunkStep completed).
			rt.enqueueScan(c)
			break
		}
	}
	vp.Stats.MarkAssistWords += int64(scanned)
	vp.Stats.MarkAssistNs += vp.Now() - start
	return scanned
}

// gcMarkPoint is the mutator's safepoint hook during a concurrent mark: pay
// down the allocation-paced assist debt (scan 2x the words allocated since
// the last safepoint — the mark must outrun allocation to terminate), and
// request termination once no gray data remains anywhere. A vproc whose own
// current chunk holds gray data assists even without debt: no other vproc
// can reach that chunk, so the owner is the only one who can retire it.
func (vp *VProc) gcMarkPoint() {
	rt := vp.rt
	g := &rt.global
	if !g.marking || g.termPending || vp.crashed {
		return
	}
	debt := vp.assistDebt
	vp.assistDebt = 0
	budget := 2 * debt
	if c := vp.curChunk; budget < gcAssistMinWords && c != nil && c.Scan < c.Top {
		budget = gcAssistMinWords
	}
	if budget > 0 {
		if budget < gcAssistMinWords {
			budget = gcAssistMinWords
		}
		vp.gcAssist(budget)
	}
	if g.marking && !g.termPending && rt.globalScanDrained() {
		rt.requestGlobalTermination(vp)
	}
}

// gcMarkAttention reports whether an idle vproc has mark work to run
// off-machine: gray data it can reach (its own current chunk or the scan
// lists), or a fully drained mark that needs its termination requested. It
// is called from inside the idle sweep's step function, so it only reads
// state mutated by goroutine-bound vprocs and writes nothing.
func (vp *VProc) gcMarkAttention() bool {
	g := &vp.rt.global
	if !g.marking || g.termPending {
		return false
	}
	if c := vp.curChunk; c != nil && c.Scan < c.Top {
		return true
	}
	for _, l := range g.scanByNode {
		if len(l) > 0 {
			return true
		}
	}
	// No listed work and our chunk is clean: if the mark is globally
	// drained the idle handler must request termination; if gray data
	// hides in another vproc's current chunk only its owner can help.
	return vp.rt.globalScanDrained()
}

// gcMarkIdle runs mark work on an idle vproc's own goroutine: drain
// everything reachable, then request termination if the mark is done.
func (vp *VProc) gcMarkIdle() {
	rt := vp.rt
	g := &rt.global
	if !g.marking || g.termPending {
		return
	}
	vp.gcAssist(math.MaxInt)
	if g.marking && !g.termPending && rt.globalScanDrained() {
		rt.requestGlobalTermination(vp)
	}
}

// gcWriteBarrier is the Dijkstra-style insertion barrier: shade the value
// being stored into a global object. White (from-space) values are evacuated
// on the spot — the store then publishes a black-safe to-space address — and
// the evacuation is charged to the mutator through the NUMA cost model
// (globalForward's copy charges). Everything else passes through chargeless,
// and outside a mark the barrier is the identity.
func (vp *VProc) gcWriteBarrier(a heap.Addr) heap.Addr {
	if a == 0 || !vp.rt.global.marking {
		return a
	}
	start := vp.Now()
	na := vp.globalForward(a)
	if vp.Now() != start {
		vp.Stats.BarrierHits++
		vp.Stats.BarrierNs += vp.Now() - start
	}
	return na
}

// requestGlobalTermination raises the termination rendezvous the way
// requestGlobalGC raises the snapshot one: set the flag and zero every live
// vproc's allocation limit. The caller observed globalScanDrained in the
// same engine segment, so no gray data can appear before the flag is up
// (allocation is a safepoint, and safepoints now divert to the rendezvous).
func (rt *Runtime) requestGlobalTermination(vp *VProc) {
	g := &rt.global
	g.termPending = true
	g.termStartNs = vp.Now()
	for _, other := range rt.VProcs {
		if other.crashed {
			continue
		}
		other.Local.ZeroLimit()
		if other != vp {
			vp.advance(rt.Cfg.SignalVProcNs)
		}
	}
}

// participateTermination is the safepoint service for a pending termination
// window, with the same heap-idle guard as participateGlobal: a thief
// mid-promotion out of this heap must finish before the world stops.
func (vp *VProc) participateTermination() {
	vp.waitHeapIdle()
	if vp.rt.global.termPending {
		vp.globalTerminate()
	}
}

// participateGC services whichever stop-the-world rendezvous is pending. In
// legacy mode termination is never pending, so this is exactly the old
// participateGlobal call.
func (vp *VProc) participateGC() {
	if vp.rt.global.pending {
		vp.participateGlobal()
	}
	if vp.rt.global.termPending {
		vp.participateTermination()
	}
}

// globalTerminate is the concurrent collector's second STW window: rescan
// all roots (mutators created and re-rooted objects during the mark), heal
// the unbarriered global-root object slots, drain the mark to empty, repair
// promotion forwarding, verify the tri-color invariant (Debug), and release
// the from-space.
func (vp *VProc) globalTerminate() {
	rt := vp.rt
	g := &rt.global
	start := vp.Now()

	g.termEntry.Arrive(vp.proc)
	if vp.ID == g.leader {
		g.windowStart = vp.Now()
	}

	// Second root scan: everything a mutator stored into its roots, queue,
	// proxies, parked continuations, or local heap since the snapshot.
	// Live nurseries are part of the root set (no minor precedes this
	// window either).
	vp.globalScanRoots(true)
	if vp.ID == g.leader {
		for _, pa := range rt.globalRoots {
			*pa = vp.globalForward(*pa)
		}
		vp.rescanGlobalRootObjects()
		vp.adoptCrashedHeaps()
	}
	vp.globalScanLoop()

	// Drained globally: forwarding targets are final. Repair this vproc's
	// promotion forwarding words — both heap areas, since the nursery is
	// live in concurrent mode — while the from-space headers are intact.
	vp.repairLocalForwarding()
	vp.repairNurseryForwarding()
	if vp.ID == g.leader {
		for _, dead := range rt.VProcs {
			if dead.crashed {
				dead.repairLocalForwarding()
				dead.repairNurseryForwarding()
			}
		}
	}
	g.termScanDone.Arrive(vp.proc)

	if vp.ID == g.leader {
		if rt.Cfg.Debug {
			for _, c := range rt.Chunks.Active() {
				if !c.FromSpace && c.Scan < c.Top {
					panic(fmt.Sprintf("core: to-space chunk r%d (node %d, owner %d) left unscanned at termination: scan=%d top=%d",
						c.Region.ID, c.Node, c.Owner, c.Scan, c.Top))
				}
			}
			if err := rt.VerifyTriColor(); err != nil {
				panic(fmt.Sprintf("core: at mark termination: %v", err))
			}
		}
		markEndAllocated := rt.Chunks.AllocatedWords
		for _, c := range g.fromChunks {
			rt.Chunks.Release(c)
			vp.advance(20)
		}
		g.fromChunks = nil
		g.scanning = false
		g.marking = false
		g.termPending = false
		rt.Stats.GlobalGCs++
		rt.Stats.LastGlobalSurvivedWords = rt.Chunks.AllocatedWords
		rt.Stats.GlobalCopied += g.copied
		rt.Stats.GlobalNs += vp.Now() - g.startNs
		d := vp.Now() - g.windowStart
		rt.Stats.TermNs += d
		rt.updatePacer(markEndAllocated)
		rt.emit(GCEvent{Kind: EvTermination, VProc: vp.ID, At: vp.Now(), Ns: d})
		rt.emit(GCEvent{Kind: EvGlobalEnd, VProc: vp.ID, At: vp.Now(), Ns: vp.Now() - g.startNs, Words: g.copied})
		g.copied = 0
		// Residual debt dies with the cycle: it paces assists against
		// this mark's gray set, which no longer exists.
		for _, o := range rt.VProcs {
			o.assistDebt = 0
		}
		if rt.Cfg.Debug {
			if err := rt.VerifyHeap(); err != nil {
				panic(fmt.Sprintf("core: after concurrent global GC: %v", err))
			}
		}
	}
	g.termFinish.Arrive(vp.proc)
	vp.Stats.GlobalNs += vp.Now() - start
}

// gcDirtyRoot marks a registered global-root object for the termination
// window's rescan: the caller just stored an address read out of unscanned
// chain data into one of its traced slots, which may be a from-space
// reference planted in an already-black object. Shading the stored value
// instead would evacuate mid-commit — an advance inside a segment whose
// caller already observed queue state, reopening the double-delivery race —
// so the heal is deferred to the termination window. Host-side bookkeeping:
// chargeless, deterministic (appends happen in virtual-time order), and a
// no-op outside a mark.
func (vp *VProc) gcDirtyRoot(a heap.Addr) {
	g := &vp.rt.global
	if !g.marking || a == 0 || g.dirtySet[a] {
		return
	}
	if g.dirtySet == nil {
		g.dirtySet = make(map[heap.Addr]bool)
	}
	g.dirtySet[a] = true
	g.dirtyRoots = append(g.dirtyRoots, a)
}

// rescanGlobalRootObjects re-forwards the traced slots of every global-root
// object dirtied during the mark. Channel records are the motivating case:
// popping a message rewrites the record's head link with an address read out
// of the (possibly unscanned) chain node, without the write barrier, so the
// record can accumulate white references during the mark. Clean records need
// no rescan: they were evacuated gray at the snapshot and their slots were
// forwarded when the drain scanned them. Re-forwarding the dirty slots here
// heals them and seeds the reachable chain nodes gray; the termination drain
// then scans the chains themselves. Charged as one streaming read per dirty
// object plus the usual evacuation charges.
func (vp *VProc) rescanGlobalRootObjects() {
	rt := vp.rt
	for _, a := range rt.global.dirtyRoots {
		heap.ScanObject(rt.Space, rt.Descs, a, func(_ int, p heap.Addr) heap.Addr {
			return vp.globalForward(p)
		})
		n := rt.Space.ObjectLen(a)
		node := rt.Space.NodeOf(a)
		vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, n*8, numa.AccessMemory))
	}
	rt.global.dirtyRoots = nil
	rt.global.dirtySet = nil
}

// emergencyConcurrent is the memory-pressure escalation under the concurrent
// collector: chunks only return to the pool at a cycle's termination, so the
// emergency path drives the whole in-flight cycle — start one if none is
// running, take the snapshot, assist the mark to exhaustion, and run the
// termination window.
func (vp *VProc) emergencyConcurrent() {
	rt := vp.rt
	g := &rt.global
	if !g.pending && !g.marking && !g.termPending {
		rt.requestGlobalGC(vp)
	}
	if g.pending {
		vp.participateGlobal()
	}
	for g.marking && !g.termPending {
		vp.gcAssist(math.MaxInt)
		if !g.marking || g.termPending {
			break
		}
		if rt.globalScanDrained() {
			rt.requestGlobalTermination(vp)
			break
		}
		// Gray data is stuck in another vproc's current chunk; only its
		// owner can drain it. Poll until it does.
		vp.advance(rt.Cfg.PollNs)
	}
	if g.termPending {
		vp.participateTermination()
	}
}

// resolveAddr follows forwarding words to the live copy — VProc.resolve for
// host-side callers with no acting vproc (Channel.Close walks its chain
// outside any vproc). Chargeless, and the identity when no forwarding words
// exist (always, outside a collection cycle).
func (rt *Runtime) resolveAddr(a heap.Addr) heap.Addr {
	for a != 0 {
		h := rt.Space.Header(a)
		if heap.IsHeader(h) {
			return a
		}
		a = heap.ForwardTarget(h)
	}
	return a
}

// updatePacer sets the next cycle's trigger at the end of a collection
// (GOGC discipline). The goal heap is survived*(1+GCPercent/100); the
// trigger backs off from the goal by twice the allocation observed during
// the last mark (clamped to [goal/8, goal/2]) so the next cycle terminates
// near the goal instead of overshooting it. markEndAllocated is the active
// chunkage just before the from-space release.
func (rt *Runtime) updatePacer(markEndAllocated int) {
	g := &rt.global
	survived := rt.Chunks.AllocatedWords
	goal := survived + survived*rt.Cfg.GCPercent/100
	if goal < rt.Cfg.GlobalTriggerWords {
		goal = rt.Cfg.GlobalTriggerWords
	}
	headroom := 2 * (markEndAllocated - g.markStartAllocated)
	if min := goal / 8; headroom < min {
		headroom = min
	}
	if max := goal / 2; headroom > max {
		headroom = max
	}
	g.trigger = goal - headroom
	if floor := survived + goal/8; g.trigger < floor {
		g.trigger = floor
	}
}
