package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
)

// Mutable references — the extension sketched in the paper's conclusion:
// "Though some aspects of our system would need to be enhanced, for example
// with write barriers ... in the context of systems that permit and
// encourage frequent unrestricted memory mutation, we believe that these
// techniques are readily applicable to other runtimes."
//
// A Ref is a one-slot mutable cell allocated directly in the global heap.
// The write barrier preserves both heap invariants with no read barrier:
// because the cell is global, any value stored into it must first be
// promoted (otherwise the store would create a global→local pointer). Reads
// are plain loads.

// AllocGlobalVectorN allocates a vector of n nil pointers directly in the
// global heap. It is the primitive behind shared structures that are
// initialized in parallel (each writer promotes its element and stores it
// through the write barrier).
func (vp *VProc) AllocGlobalVectorN(n int) heap.Addr {
	rt := vp.rt
	dst := rt.globalAllocDst(vp, n)
	a := dst.Bump(heap.MakeHeader(heap.IDVector, n))
	node := rt.Space.NodeOf(a)
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, (n+1)*8, numa.AccessMemory))
	return a
}

// StoreGlobalPtr stores the value held in a root slot into pointer field i
// of a global vector, promoting the value first (the write barrier that
// keeps global cells from pointing into local heaps). The root slot is
// updated to the promoted address.
func (vp *VProc) StoreGlobalPtr(obj heap.Addr, i int, valSlot int) {
	rt := vp.rt
	obj = vp.resolve(obj)
	if rt.Space.Region(obj.RegionID()).Kind != heap.RegionChunk {
		panic(fmt.Sprintf("core: StoreGlobalPtr target %v is not in the global heap", obj))
	}
	val := vp.Promote(vp.roots[valSlot])
	// Concurrent-mark insertion barrier: a promoted value can pass through
	// as a still-white (from-space) global address; shade it before it
	// becomes reachable from a possibly-black object.
	val = vp.gcWriteBarrier(val)
	vp.roots[valSlot] = val
	// The promotion and barrier advances may have let an assist evacuate
	// obj; re-resolve in the same segment as the store so the write lands
	// in the live copy (identity outside a concurrent mark).
	obj = vp.resolve(obj)
	rt.Space.Payload(obj)[i] = uint64(val)
	node := rt.Space.NodeOf(obj)
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, 8, numa.AccessMemory))
}

// NewRef allocates a mutable reference initialized from a root slot. The
// initial value is promoted.
func (vp *VProc) NewRef(initSlot int) heap.Addr {
	rt := vp.rt
	init := vp.Promote(vp.roots[initSlot])
	init = vp.gcWriteBarrier(init)
	vp.roots[initSlot] = init
	dst := rt.globalAllocDst(vp, 1)
	ref := dst.Bump(heap.MakeHeader(heap.IDVector, 1))
	rt.Space.Payload(ref)[0] = uint64(init)
	node := rt.Space.NodeOf(ref)
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, 8, numa.AccessMemory))
	return ref
}

// ReadRef loads the referenced value.
func (vp *VProc) ReadRef(ref heap.Addr) heap.Addr {
	ref = vp.resolve(ref)
	if heap.HeaderID(vp.rt.Space.Header(ref)) != heap.IDVector || vp.rt.Space.ObjectLen(ref) != 1 {
		panic(fmt.Sprintf("core: ReadRef of non-ref object %v", ref))
	}
	return heap.Addr(vp.LoadWord(ref, 0))
}

// WriteRef stores the value held in a root slot into the reference. The
// write barrier promotes the value first (§5's "enhancement"): global cells
// may never point into a local heap.
func (vp *VProc) WriteRef(ref heap.Addr, valSlot int) {
	rt := vp.rt
	ref = vp.resolve(ref)
	if rt.Space.Region(ref.RegionID()).Kind != heap.RegionChunk {
		panic(fmt.Sprintf("core: WriteRef target %v is not in the global heap", ref))
	}
	val := vp.Promote(vp.roots[valSlot])
	// Same discipline as StoreGlobalPtr: shade the stored value, then
	// re-resolve the cell in the store's own segment.
	val = vp.gcWriteBarrier(val)
	vp.roots[valSlot] = val
	ref = vp.resolve(ref)
	rt.Space.Payload(ref)[0] = uint64(val)
	node := rt.Space.NodeOf(ref)
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, 8, numa.AccessMemory))
}
