package core

import (
	"testing"

	"repro/internal/heap"
)

func TestProxyOwnerDerefStaysLocal(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{11, 22})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		if !vp.IsProxy(proxy) {
			t.Fatal("NewProxy did not produce a proxy object")
		}
		got := vp.ProxyDeref(proxy)
		if rt.Space.Region(got.RegionID()).Kind != heap.RegionLocal {
			t.Error("owner deref should resolve to the local object")
		}
		if vp.LoadWord(got, 0) != 11 {
			t.Error("payload wrong through proxy")
		}
		vp.PopRoots(1)
	})
}

func TestProxyLocalSlotIsGCRoot(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{33})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		vp.PopRoots(1) // only the proxy keeps the object alive now
		churn(vp, 3000, 4)
		got := vp.ProxyDeref(proxy)
		if vp.LoadWord(got, 0) != 33 {
			t.Error("proxied object lost across collections")
		}
		if err := rt.VerifyHeap(); err != nil {
			t.Errorf("heap invariants: %v", err)
		}
	})
}

func TestProxyCrossVProcDerefPromotes(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	var crossGlobal, crossRan bool
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{55})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		ps := vp.PushRoot(proxy)

		task := vp.Spawn(func(tvp *VProc, env Env) {
			if tvp.ID == 0 {
				return // not stolen; nothing to assert
			}
			crossRan = true
			got := tvp.ProxyDeref(env.Get(tvp, 0))
			crossGlobal = tvp.rt.Space.Region(got.RegionID()).Kind == heap.RegionChunk
			if tvp.LoadWord(got, 0) != 55 {
				t.Error("cross-vproc proxy payload wrong")
			}
		}, vp.Root(ps))
		vp.Compute(1_000_000)
		vp.Join(task)
		vp.PopRoots(2)
	})
	if crossRan && !crossGlobal {
		t.Error("cross-vproc deref did not promote the proxied object")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

func TestProxyAfterUnderlyingPromotion(t *testing.T) {
	// If the proxied object gets promoted for another reason, the
	// owner's deref must follow the forwarding to the global copy, and
	// repeated derefs must agree.
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{77})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		ps := vp.PushRoot(proxy)
		vp.PromoteRoot(s)
		g1 := vp.ProxyDeref(vp.Root(ps))
		g2 := vp.ProxyDeref(vp.Root(ps))
		if g1 != g2 {
			t.Errorf("proxy resolved to different objects: %v vs %v", g1, g2)
		}
		if rt.Space.Region(g2.RegionID()).Kind != heap.RegionChunk {
			t.Error("deref should follow promotion to the global copy")
		}
		if vp.LoadWord(g2, 0) != 77 {
			t.Error("payload wrong after promotion")
		}
		vp.PopRoots(2)
	})
}

func TestMutRefRejectsNonRef(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		raw := vp.AllocRaw([]uint64{1, 2})
		defer func() {
			if recover() == nil {
				t.Error("ReadRef of a non-ref should panic")
			}
		}()
		vp.ReadRef(raw)
	})
}

func TestMutRefSurvivesGlobalGC(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	rt.Run(func(vp *VProc) {
		init := vp.AllocRaw([]uint64{9})
		is := vp.PushRoot(init)
		ref := vp.NewRef(is)
		rs := vp.PushRoot(ref)
		// Force several global collections by promoting garbage trees.
		for i := 0; i < 8; i++ {
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 500, 6)
		}
		got := vp.ReadRef(vp.Root(rs))
		if vp.LoadWord(got, 0) != 9 {
			t.Error("ref contents lost across global collections")
		}
		vp.PopRoots(2)
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Error("expected global collections during churn")
	}
}
