package core

import (
	"testing"

	"repro/internal/heap"
)

func TestProxyOwnerDerefStaysLocal(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{11, 22})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		if !vp.IsProxy(proxy) {
			t.Fatal("NewProxy did not produce a proxy object")
		}
		got := vp.ProxyDeref(proxy)
		if rt.Space.Region(got.RegionID()).Kind != heap.RegionLocal {
			t.Error("owner deref should resolve to the local object")
		}
		if vp.LoadWord(got, 0) != 11 {
			t.Error("payload wrong through proxy")
		}
		vp.PopRoots(1)
	})
}

func TestProxyLocalSlotIsGCRoot(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{33})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		vp.PopRoots(1) // only the proxy keeps the object alive now
		churn(vp, 3000, 4)
		got := vp.ProxyDeref(proxy)
		if vp.LoadWord(got, 0) != 33 {
			t.Error("proxied object lost across collections")
		}
		if err := rt.VerifyHeap(); err != nil {
			t.Errorf("heap invariants: %v", err)
		}
	})
}

func TestProxyCrossVProcDerefPromotes(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	var crossGlobal, crossRan bool
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{55})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		ps := vp.PushRoot(proxy)

		task := vp.Spawn(func(tvp *VProc, env Env) {
			if tvp.ID == 0 {
				return // not stolen; nothing to assert
			}
			crossRan = true
			got := tvp.ProxyDeref(env.Get(tvp, 0))
			crossGlobal = tvp.rt.Space.Region(got.RegionID()).Kind == heap.RegionChunk
			if tvp.LoadWord(got, 0) != 55 {
				t.Error("cross-vproc proxy payload wrong")
			}
		}, vp.Root(ps))
		vp.Compute(1_000_000)
		vp.Join(task)
		vp.PopRoots(2)
	})
	if crossRan && !crossGlobal {
		t.Error("cross-vproc deref did not promote the proxied object")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

func TestProxyAfterUnderlyingPromotion(t *testing.T) {
	// If the proxied object gets promoted for another reason, the
	// owner's deref must follow the forwarding to the global copy, and
	// repeated derefs must agree.
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{77})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		ps := vp.PushRoot(proxy)
		vp.PromoteRoot(s)
		g1 := vp.ProxyDeref(vp.Root(ps))
		g2 := vp.ProxyDeref(vp.Root(ps))
		if g1 != g2 {
			t.Errorf("proxy resolved to different objects: %v vs %v", g1, g2)
		}
		if rt.Space.Region(g2.RegionID()).Kind != heap.RegionChunk {
			t.Error("deref should follow promotion to the global copy")
		}
		if vp.LoadWord(g2, 0) != 77 {
			t.Error("payload wrong after promotion")
		}
		vp.PopRoots(2)
	})
}

func TestMutRefRejectsNonRef(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		raw := vp.AllocRaw([]uint64{1, 2})
		defer func() {
			if recover() == nil {
				t.Error("ReadRef of a non-ref should panic")
			}
		}()
		vp.ReadRef(raw)
	})
}

func TestMutRefSurvivesGlobalGC(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	rt.Run(func(vp *VProc) {
		init := vp.AllocRaw([]uint64{9})
		is := vp.PushRoot(init)
		ref := vp.NewRef(is)
		rs := vp.PushRoot(ref)
		// Force several global collections by promoting garbage trees.
		for i := 0; i < 8; i++ {
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 500, 6)
		}
		got := vp.ReadRef(vp.Root(rs))
		if vp.LoadWord(got, 0) != 9 {
			t.Error("ref contents lost across global collections")
		}
		vp.PopRoots(2)
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Error("expected global collections during churn")
	}
}

func TestProxyCrossVProcDerefAfterMajorGC(t *testing.T) {
	// A major collection can promote the proxied object before anyone
	// dereferences the proxy, leaving a forwarding pointer in the owner's
	// local heap and (after the slot is forwarded) a global address in the
	// proxy's local slot. A later cross-vproc deref must follow that to
	// the promoted copy instead of re-promoting garbage.
	rt := MustNewRuntime(stressConfig(2))
	var got uint64
	var crossRan, wasGlobal bool
	rt.Run(func(vp *VProc) {
		obj := vp.AllocRaw([]uint64{0xF00D, 0xCAFE})
		s := vp.PushRoot(obj)
		proxy := vp.NewProxy(s)
		vp.PopRoots(1) // the proxy's local slot keeps the object live
		ps := vp.PushRoot(proxy)

		// Drive the owner through majors: the live list grows past the
		// local heap, forcing old data (including the proxied object)
		// into the global heap.
		listSlot := vp.PushRoot(0)
		for i := uint64(1); i <= 400; i++ {
			pushList(vp, listSlot, i)
			if i%10 == 0 {
				churn(vp, 40, 4)
			}
		}
		if vp.Stats.MajorGCs == 0 {
			t.Error("expected major collections")
		}

		task := vp.Spawn(func(tvp *VProc, env Env) {
			if tvp.ID == 0 {
				return // not stolen; nothing to assert
			}
			crossRan = true
			a := tvp.ProxyDeref(env.Get(tvp, 0))
			wasGlobal = tvp.rt.Space.Region(a.RegionID()).Kind == heap.RegionChunk
			got = tvp.LoadWord(a, 0)
		}, vp.Root(ps))
		vp.Compute(1_000_000)
		vp.Join(task)
		vp.PopRoots(2)
	})
	if crossRan {
		if got != 0xF00D {
			t.Errorf("payload through proxy after major GC = %#x, want 0xF00D", got)
		}
		if !wasGlobal {
			t.Error("deref should resolve to the (already promoted) global copy")
		}
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

func TestDropProxySwapRemoveConsistency(t *testing.T) {
	// Resolve proxies in an order that exercises every swap-remove case
	// (middle, last, first) and verify the registry and index stay in
	// sync and the survivors still protect their objects.
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		const n = 16
		proxies := make([]heap.Addr, n)
		for i := 0; i < n; i++ {
			obj := vp.AllocRaw([]uint64{uint64(100 + i)})
			s := vp.PushRoot(obj)
			proxies[i] = vp.NewProxy(s)
			vp.PopRoots(1) // only the proxy roots the object now
		}
		// Promote each proxied object (the owner-side path that calls
		// dropProxy is the cross-vproc one; promotion + deref resolves
		// through the global slot without dropping, so drop explicitly
		// through the registry by simulating resolution).
		order := []int{7, 15, 0, 8, 3, 14, 1}
		for _, i := range order {
			// Force the cross-vproc resolution bookkeeping by hand:
			// promote, record, drop.
			p := vp.rt.Space.Payload(vp.Resolve(proxies[i]))
			local := heap.Addr(p[heap.ProxyLocalSlot])
			g := vp.Promote(local)
			p[heap.ProxyGlobalSlot] = uint64(g)
			p[heap.ProxyLocalSlot] = 0
			vp.dropProxy(vp.Resolve(proxies[i]))
		}
		if got := len(vp.proxies); got != n-len(order) {
			t.Fatalf("registry holds %d proxies, want %d", got, n-len(order))
		}
		if got := len(vp.proxyIdx); got != n-len(order) {
			t.Fatalf("index holds %d entries, want %d", got, n-len(order))
		}
		for pa, i := range vp.proxyIdx {
			if vp.proxies[i] != pa {
				t.Fatalf("index entry %v -> %d disagrees with registry %v", pa, i, vp.proxies[i])
			}
		}
		// Survivors must still keep their objects alive through churn.
		churn(vp, 3000, 4)
		for i := 0; i < n; i++ {
			dropped := false
			for _, d := range order {
				if d == i {
					dropped = true
				}
			}
			got := vp.ProxyDeref(proxies[i])
			if vp.LoadWord(got, 0) != uint64(100+i) {
				t.Errorf("proxy %d (dropped=%v): payload %d, want %d", i, dropped, vp.LoadWord(got, 0), 100+i)
			}
		}
	})
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}
