package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
)

// majorGC performs a major collection (§3.3, Figure 3): live objects in the
// old-data area are copied to the vproc's dedicated chunk in the global
// heap. To avoid premature promotion the old-data area is partitioned: the
// young data (copied by the immediately preceding minor collection, hence
// guaranteed live) stays in the local heap and is slid down to the bottom.
// Synchronization is needed only when the current chunk is exhausted.
//
// Preconditions: a minor collection has just completed (the nursery is
// empty).
func (vp *VProc) majorGC() {
	rt := vp.rt
	lh := vp.Local
	start := vp.Now()
	vp.heapBusy = true
	rt.localGCActive++
	vp.Stats.MajorGCs++

	region := lh.Region
	words := region.Words

	// From-space is the old partition [1, youngStart); with the
	// young-data partition disabled (ablation) everything below OldTop
	// is evacuated, including the guaranteed-live young data.
	youngStart := lh.YoungStart
	if !rt.Cfg.YoungPartition {
		youngStart = lh.OldTop
	}
	var copied int64

	// Evacuation charges always write the metered global heap, so they
	// flush through the batch at their exact instants (pending is empty
	// whenever globalAllocDst can reach the engine); only the young-data
	// slide at the end can fuse.
	batch := chargeBatch{vp: vp}

	// forward evacuates an old-partition object into the global heap.
	var forward func(a heap.Addr) heap.Addr
	forward = func(a heap.Addr) heap.Addr {
		if a == 0 || a.RegionID() != region.ID || a.Word() >= youngStart {
			return a
		}
		h := words[a.Word()-1]
		if !heap.IsHeader(h) {
			return heap.ForwardTarget(h)
		}
		n := heap.HeaderLen(h)
		dst := rt.globalAllocDst(vp, n)
		na := dst.Bump(h)
		dpay := rt.Space.Payload(na)
		copy(dpay, words[a.Word():a.Word()+n])
		words[a.Word()-1] = heap.MakeForward(na)
		copied += int64(n + 1)

		srcNode := rt.Space.NodeOf(a)
		dstNode := rt.Space.NodeOf(na)
		batch.copyStream(srcNode, dstNode, (n+1)*8, numa.AccessCache, numa.AccessMemory)

		// Cheney-scan the copy immediately (recursive formulation is
		// fine here: object graphs in the local heap are bounded by
		// the local heap size).
		heap.ScanObject(rt.Space, rt.Descs, na, func(_ int, p heap.Addr) heap.Addr {
			return forward(p)
		})
		return na
	}

	// Roots: shadow stack, queued task environments, proxy local slots.
	vp.forwardLocalRoots(forward)

	// The young data is live by construction; its pointers into the old
	// partition must be forwarded. Walk it sequentially (skipping
	// forwarding words left by earlier promotions).
	for scan := youngStart; scan < lh.OldTop; {
		h := words[scan]
		var n int
		if heap.IsHeader(h) {
			obj := heap.MakeAddr(region.ID, scan+1)
			heap.ScanObject(rt.Space, rt.Descs, obj, func(_ int, p heap.Addr) heap.Addr {
				return forward(p)
			})
			n = heap.HeaderLen(h)
		} else {
			// A promotion left a forwarding pointer here; the
			// object length is preserved at the target.
			n = rt.Space.ObjectLen(heap.ForwardTarget(h))
		}
		scan += n + 1
	}

	// Figure 3 "reclaim space": slide the young data down to the bottom
	// of the heap. Intra-young pointers shift by delta; pointers to the
	// evacuated old partition were already rewritten to global addresses.
	delta := youngStart - 1
	youngLen := lh.OldTop - youngStart
	if delta > 0 && youngLen > 0 {
		copy(words[1:1+youngLen], words[youngStart:lh.OldTop])
		// Charge the slide as a local-heap copy.
		node := rt.Space.NodeOf(heap.MakeAddr(region.ID, 1))
		batch.copyStream(node, node, youngLen*8, numa.AccessCache, numa.AccessCache)
	}
	adjust := func(a heap.Addr) heap.Addr {
		if a != 0 && a.RegionID() == region.ID && a.Word() >= youngStart && a.Word() < lh.OldTop {
			return heap.MakeAddr(region.ID, a.Word()-delta)
		}
		return a
	}
	if delta > 0 && youngLen > 0 {
		for scan := 1; scan < 1+youngLen; {
			h := words[scan]
			var n int
			if heap.IsHeader(h) {
				obj := heap.MakeAddr(region.ID, scan+1)
				heap.ScanObject(rt.Space, rt.Descs, obj, func(_ int, p heap.Addr) heap.Addr {
					return adjust(p)
				})
				n = heap.HeaderLen(h)
			} else {
				n = rt.Space.ObjectLen(heap.ForwardTarget(h))
			}
			scan += n + 1
		}
		vp.forwardLocalRoots(adjust)
	}

	batch.flush()

	lh.OldTop = 1 + youngLen
	lh.YoungStart = lh.OldTop // young becomes old; next minor repopulates
	lh.ResetNursery()

	vp.Stats.MajorCopied += copied
	vp.Stats.GCNs += vp.Now() - start
	vp.heapBusy = false
	rt.localGCActive--

	if rt.Cfg.Debug && rt.localGCActive == 0 {
		if err := rt.VerifyHeap(); err != nil {
			panic(fmt.Sprintf("core: after major GC on vproc %d: %v", vp.ID, err))
		}
	}
	rt.emit(GCEvent{Kind: EvMajor, VProc: vp.ID, At: vp.Now(), Ns: vp.Now() - start, Words: copied})
	// The global-collection trigger (§3.4) is checked in getChunk, which
	// observes every growth of the global heap including this major's
	// chunk requests.
}
