package core

import "repro/internal/numa"

// chargeBatch fuses the engine advances of a run of modelled memory charges
// issued back-to-back by one vproc — the GC copy loops — without changing
// any simulated result.
//
// Exactness contract (README "The batched-charge contract"): a charge may
// join the batch only when it is meterless — own-cache traffic on a
// node-local path — because such a charge (a) has a cost that depends on
// nothing but its size, not on virtual time and not on any contention-meter
// state, and (b) during a collection the vproc holds heapBusy, so no other
// vproc can observe the intermediate heap or clock states the fused window
// skips over. Totals are preserved bit-identically because every fused
// transfer keeps its own per-transfer int64 truncation. Any metered charge
// first flushes the pending fused cost, so every meter mutation still
// happens at the exact virtual instant — and in the exact engine-serialized
// order — it would have without batching.
//
// The caller must flush before any engine interaction (barriers, wakes,
// chunk synchronization) and before reading vp.Now() for bookkeeping.
type chargeBatch struct {
	vp      *VProc
	pending int64
}

// copyStream charges Machine.CopyStreamCost for one object copy, fusing
// the advance when both sides are meterless.
func (b *chargeBatch) copyStream(srcNode, dstNode, bytes int, srcKind, dstKind numa.AccessKind) {
	vp := b.vp
	m := vp.rt.Machine
	if m.Meterless(vp.Core, srcNode, srcKind) && m.Meterless(vp.Core, dstNode, dstKind) {
		b.pending += m.CacheStreamCost(bytes) + m.CacheStreamCost(bytes)
		return
	}
	b.flush()
	vp.advance(m.CopyStreamCost(vp.Now(), vp.Core, srcNode, dstNode, bytes, srcKind, dstKind))
}

// flush charges the fused cost to the engine in a single advance.
func (b *chargeBatch) flush() {
	if b.pending != 0 {
		b.vp.advance(b.pending)
		b.pending = 0
	}
}
