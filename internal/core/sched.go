package core

import "repro/internal/heap"

// Env gives task code GC-safe access to its captured heap references: the
// addresses live in the executing vproc's root stack, which every
// collection rewrites, so Get always yields the object's current address.
type Env struct {
	base, n int
}

// Len returns the number of captured references.
func (e Env) Len() int { return e.n }

// Get reads captured reference i at its current (post-GC) address.
func (e Env) Get(vp *VProc, i int) heap.Addr {
	if i < 0 || i >= e.n {
		panic("core: Env.Get out of range")
	}
	return vp.roots[e.base+i]
}

// Set overwrites captured reference i.
func (e Env) Set(vp *VProc, i int, a heap.Addr) {
	if i < 0 || i >= e.n {
		panic("core: Env.Set out of range")
	}
	vp.roots[e.base+i] = a
}

// Task is a unit of parallel work (§2.3): a continuation pushed onto a
// vproc-local work queue. Env carries the heap references the continuation
// captured; while the task sits in its owner's queue these are local-GC
// roots, and when the task is stolen they are promoted to the global heap
// first (lazy promotion), preserving the heap invariants without write
// barriers.
type Task struct {
	// Fn runs the task on the executing vproc; env exposes the captured
	// references through the executing vproc's root stack.
	Fn func(vp *VProc, env Env)
	// resFn, if set instead of Fn, produces a heap result. When the task
	// executes on a vproc other than its owner, the result is promoted
	// before being handed back — the same rule the language runtime
	// applies to values returned from migrated work.
	resFn func(vp *VProc, env Env) heap.Addr
	// env holds the captured heap references while the task is queued
	// (scanned as local-GC roots of the owner).
	env []heap.Addr
	// owner is the vproc that spawned the task.
	owner int
	// executor ran the task; its collections keep result current until
	// JoinResult detaches it.
	executor *VProc
	// result is the produced value; a GC root of the executor while
	// registered.
	result heap.Addr
	// done is set after Fn returns; Join polls it.
	done bool
	// lost is set instead of a real completion when the executing (or
	// holding) vproc crashed: the task is done in the Join sense — waiting
	// longer cannot help — but produced nothing.
	lost bool
}

// Result returns the task's produced value; valid only after Done and
// normally consumed through JoinResult.
func (t *Task) Result() heap.Addr { return t.result }

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.done }

// Lost reports whether the task was lost to a vproc crash instead of
// completing. Join on a lost task returns immediately; JoinResult yields 0.
func (t *Task) Lost() bool { return t.lost }

// deque is the vproc-local work queue: the owner pushes and pops at the
// bottom (LIFO, for locality); thieves steal from the top (FIFO, stealing
// the oldest — typically largest — task). The virtual-time engine
// serializes all access.
//
// The storage is a ring buffer: popTop advances the head index instead of
// re-slicing, so stolen tasks are released immediately rather than pinned
// in the backing array, and long-lived queues stop retaining garbage.
type deque struct {
	buf  []*Task
	head int // ring index of the top (oldest) task
	n    int // number of queued tasks
}

// at returns the i'th queued task, counting from the top (oldest).
func (d *deque) at(i int) *Task { return d.buf[(d.head+i)%len(d.buf)] }

func (d *deque) grow() {
	cap := 2 * len(d.buf)
	if cap < 8 {
		cap = 8
	}
	nb := make([]*Task, cap)
	for i := 0; i < d.n; i++ {
		nb[i] = d.at(i)
	}
	d.buf = nb
	d.head = 0
}

func (d *deque) pushBottom(t *Task) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = t
	d.n++
}

func (d *deque) popBottom() *Task {
	if d.n == 0 {
		return nil
	}
	d.n--
	i := (d.head + d.n) % len(d.buf)
	t := d.buf[i]
	d.buf[i] = nil
	return t
}

func (d *deque) popTop() *Task {
	if d.n == 0 {
		return nil
	}
	t := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return t
}

// removeTask unlinks a specific task (for inline joins); returns false if
// the task is no longer queued (it was stolen). Relative order of the
// remaining tasks is preserved.
func (d *deque) removeTask(t *Task) bool {
	for i := 0; i < d.n; i++ {
		if d.at(i) != t {
			continue
		}
		for j := i; j < d.n-1; j++ {
			d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j+1)%len(d.buf)]
		}
		d.n--
		d.buf[(d.head+d.n)%len(d.buf)] = nil
		return true
	}
	return false
}

func (d *deque) size() int { return d.n }

// each visits every queued task, top (oldest) first — the same order the
// former slice layout iterated in, which collections rely on for
// deterministic root forwarding.
func (d *deque) each(f func(*Task)) {
	for i := 0; i < d.n; i++ {
		f(d.at(i))
	}
}

// MakeEnv pushes the given addresses as roots and returns an Env over them;
// the caller pops len(addrs) roots when done. It lets embedding code (and
// tests) call task bodies directly with GC-safe captures.
func (vp *VProc) MakeEnv(addrs ...heap.Addr) Env {
	base := len(vp.roots)
	vp.roots = append(vp.roots, addrs...)
	return Env{base: base, n: len(addrs)}
}

// Spawn pushes a task onto this vproc's queue and returns it. The captured
// addresses are snapshotted into the task; they remain GC roots of this
// vproc while queued. Under eager promotion (the ablation of the paper's
// lazy scheme) the environment is promoted immediately; under lazy
// promotion it stays local until stolen.
func (vp *VProc) Spawn(fn func(vp *VProc, env Env), env ...heap.Addr) *Task {
	t := &Task{Fn: fn, env: append([]heap.Addr(nil), env...), owner: vp.ID}
	if !vp.rt.Cfg.LazyPromotion {
		for i, a := range t.env {
			t.env[i] = vp.Promote(a)
		}
	}
	vp.queue.pushBottom(t)
	vp.rt.outstanding++
	return t
}

// runTask executes a task on this vproc: the environment is moved onto the
// executing vproc's root stack so collections keep it current.
func (vp *VProc) runTask(t *Task) {
	if t.done {
		panic("core: task run twice")
	}
	base := len(vp.roots)
	vp.roots = append(vp.roots, t.env...)
	e := Env{base: base, n: len(t.env)}
	// The running stack makes in-flight tasks visible to crash cleanup
	// (tasks nest through inline Join); a crash mid-body reports every
	// frame lost. Popped on the normal path only — the crash unwind never
	// returns here.
	vp.running = append(vp.running, t)
	if t.resFn != nil {
		r := t.resFn(vp, e)
		if vp.ID != t.owner {
			// The result crosses vprocs: promote it out of our
			// local heap before publishing.
			r = vp.Promote(r)
		}
		t.result = r
		t.executor = vp
		vp.resultTasks = append(vp.resultTasks, t)
	} else {
		t.Fn(vp, e)
	}
	vp.roots = vp.roots[:base]
	vp.running = vp.running[:len(vp.running)-1]
	t.done = true
	vp.Stats.TasksRun++
	vp.rt.outstanding--
}

// SpawnResult spawns a result-producing task.
func (vp *VProc) SpawnResult(fn func(vp *VProc, env Env) heap.Addr, env ...heap.Addr) *Task {
	t := &Task{resFn: fn, env: append([]heap.Addr(nil), env...), owner: vp.ID}
	if !vp.rt.Cfg.LazyPromotion {
		for i, a := range t.env {
			t.env[i] = vp.Promote(a)
		}
	}
	vp.queue.pushBottom(t)
	vp.rt.outstanding++
	return t
}

// JoinResult joins a result-producing task and returns its result, valid
// for use by this (owning) vproc: either a value in this vproc's own local
// heap (the task ran inline) or a promoted global value (the task was
// stolen). The caller must root the result before its next allocation.
func (vp *VProc) JoinResult(t *Task) heap.Addr {
	if t.owner != vp.ID {
		panic("core: JoinResult by non-owner")
	}
	vp.Join(t)
	// Detach the result from the executor's root set.
	ex := t.executor
	for i, q := range ex.resultTasks {
		if q == t {
			ex.resultTasks = append(ex.resultTasks[:i], ex.resultTasks[i+1:]...)
			break
		}
	}
	return t.result
}

// stealFrom takes the top task from a victim observed to be stealable at
// the current virtual instant (the observation and the heapBusy lock are in
// the same engine-scheduled segment, so no collection can intervene).
func (vp *VProc) stealFrom(victim *VProc) *Task {
	rt := vp.rt
	// Lock out the victim's collections BEFORE unlinking the task:
	// once popped, the environment is no longer in the victim's
	// root set, so the victim must not collect until the thief has
	// promoted it.
	victim.heapBusy = true
	t := victim.queue.popTop()
	vp.advance(rt.Cfg.StealHitNs)
	vp.Stats.Steals++
	// Lazy promotion: the stolen environment must move to the
	// global heap before it crosses vprocs (§3.1). The thief
	// performs the copy out of the victim's heap.
	if rt.Cfg.LazyPromotion {
		for i, a := range t.env {
			t.env[i] = vp.promoteFrom(victim, a)
		}
	}
	victim.heapBusy = false
	return t
}

// Idle-sweep outcomes: what the engine-stepped idle machine observed, to be
// acted on by the vproc's own goroutine at the same virtual instant.
const (
	sweepSteal     = iota // a victim with a stealable task
	sweepRunLocal         // own queue became non-empty
	sweepPreempt          // a pending global collection
	sweepQuiesce          // no outstanding tasks after a failed sweep
	sweepJoinDone         // the joined task completed
	sweepExhausted        // one-shot sweep found nothing (trySteal)
	sweepFault            // a fault-plan event came due (run it off-machine)
	sweepTimer            // a timer deadline was reached (fire it off-machine, re-enter)
	sweepMark             // a concurrent mark needs assist work (run it off-machine)
)

// sweep runs the vproc's steal-probe machine — and, unless oneShot, the
// whole idle cycle of poll ticks and loop-top preemption/work checks —
// inside the engine's inline-step path, parking the goroutine until
// something to act on is observed. The charge/observe sequence is exactly
// that of the same loops built on plain Advance: probes charge
// StealAttemptNs before observing each victim, a failed sweep charges
// PollNs, and loop-top checks (join completion, preemption signal, due
// timers, own queue) re-run after every poll.
//
// Timer exactness: every idle charge is clamped to the vproc's earliest
// pending timer deadline (sweepCharge); a clamped charge lands exactly on
// the deadline and sends the machine back to its loop top, which fires the
// due timer and finds its continuation in the queue. With no timers armed
// the machine is bit-identical to its pre-timer form.
//
// join, when non-nil, is the task whose completion ends the wait (Join's
// loop); when nil, a failed multi-round sweep checks for quiescence instead
// (schedulerLoop). oneShot ends the machine after a single failed sweep
// (trySteal's contract).
//
// The machine enters at sweep-start: the caller has already performed the
// current iteration's loop-top checks on its own goroutine.
//
// Span safety: the machine parks via SpanWhile — every observation it makes
// (join.done, the preemption flag, timer deadlines, fault and queue sizes,
// victims' heapBusy/queue) is of state only goroutine-bound procs mutate,
// which is frozen while a window runs; every write (k, outcome, victim, the
// failed-steal counter, the limit restore) is vproc-private and covered by
// the save/restore checkpoint. The one loop-top action that mutates shared
// state, firing a due timer (it enqueues into vp.queue, which other vprocs'
// steal probes observe), is hoisted out of the machine: the step exits with
// sweepTimer at the exact deadline instant, the timer fires on the vproc's
// own goroutine, and the machine re-enters at its loop top at the same
// instant — the same charge/observe sequence as firing inline, since firing
// only enqueues (it cannot complete joins, raise preemption, or zero
// limits).
func (vp *VProc) sweep(join *Task, oneShot bool) (outcome int, victim *VProc) {
	rt := vp.rt
	n := len(rt.VProcs)
	k := 0
	fn := func() (int64, bool) {
		if k < 0 {
			// Loop top, reached after a poll charge: the same checks
			// the goroutine loop performs between iterations.
			if join != nil && join.done {
				outcome = sweepJoinDone
				return 0, true
			}
			if vp.Local.LimitZeroed() {
				vp.Local.RestoreLimit()
			}
			if rt.global.pending || rt.global.termPending {
				outcome = sweepPreempt
				return 0, true
			}
			if dl, ok := vp.timers.NextDeadline(); ok && dl <= vp.Now() {
				outcome = sweepTimer
				return 0, true
			}
			if len(vp.pendingFaults) != 0 {
				// Fault bodies advance and allocate, which is illegal
				// inside this step function; exit the machine so the
				// caller's next checkPreempt runs them.
				outcome = sweepFault
				return 0, true
			}
			if vp.queue.size() > 0 {
				outcome = sweepRunLocal
				return 0, true
			}
			if vp.gcMarkAttention() {
				// A concurrent mark has gray work (or is ready to
				// terminate) and this vproc is idle: assists advance and
				// mutate shared scan state, which is illegal inside this
				// step function; exit so the caller runs them.
				outcome = sweepMark
				return 0, true
			}
			k = 1
			return vp.sweepCharge(rt.Cfg.StealAttemptNs, &k), false
		}
		if k > 0 {
			v := rt.VProcs[(vp.ID+k)%n]
			if !v.heapBusy && v.queue.size() > 0 {
				outcome = sweepSteal
				victim = v
				return 0, true
			}
		}
		k++
		if k < n {
			return vp.sweepCharge(rt.Cfg.StealAttemptNs, &k), false
		}
		vp.Stats.FailedSteals++
		if oneShot {
			outcome = sweepExhausted
			return 0, true
		}
		if join == nil && rt.outstanding == 0 {
			outcome = sweepQuiesce
			return 0, true
		}
		k = -1
		return vp.sweepCharge(rt.Cfg.PollNs, &k), false
	}
	var savedK, savedOutcome, savedLimit int
	var savedVictim *VProc
	var savedFailed int64
	save := func() {
		savedK, savedOutcome, savedVictim = k, outcome, victim
		savedFailed = vp.Stats.FailedSteals
		savedLimit = vp.Local.Limit
	}
	restore := func() {
		k, outcome, victim = savedK, savedOutcome, savedVictim
		vp.Stats.FailedSteals = savedFailed
		vp.Local.Limit = savedLimit
	}
	for {
		vp.proc.SpanWhile(fn, save, restore)
		if outcome != sweepTimer {
			return outcome, victim
		}
		// A deadline was reached mid-sweep: fire it here, off-machine,
		// then re-enter at the loop top at the same virtual instant to
		// re-run the remaining checks and find the continuation in the
		// queue.
		vp.fireDueTimers()
		k = -1
	}
}

// sweepCharge clamps an idle-machine charge to the vproc's earliest timer
// deadline. When it clamps, the machine's next turn is redirected to the
// loop top (k = -1) so the due timer fires exactly at its deadline; the
// abandoned partial probe stays charged as idle time. With no timers armed
// this is the identity.
func (vp *VProc) sweepCharge(d int64, k *int) int64 {
	if cd, clamped := vp.timerClamp(d); clamped {
		*k = -1
		return cd
	}
	return d
}

// idleSweep is the multi-round sweep used by schedulerLoop and Join.
func (vp *VProc) idleSweep(join *Task) (int, *VProc) {
	return vp.sweep(join, false)
}

// trySteal attempts to steal one task, rotating over victims starting after
// this vproc. On success the stolen task's environment is promoted out of
// the victim's heap (lazy promotion at steal time). The probe loop runs
// through the engine's inline-step path (see sweep). A one-shot sweep only
// reaches its loop top when a timer deadline interrupted it, so the extra
// outcomes are timer-only paths: a fired timer's continuation is the next
// task, and a preemption signal is left for the caller's next checkPreempt.
func (vp *VProc) trySteal() *Task {
	out, victim := vp.sweep(nil, true)
	switch out {
	case sweepSteal:
		return vp.stealFrom(victim)
	case sweepRunLocal:
		return vp.queue.popBottom()
	}
	return nil
}

// findWork returns the next task to run: own queue first, then stealing.
func (vp *VProc) findWork() *Task {
	if t := vp.queue.popBottom(); t != nil {
		return t
	}
	return vp.trySteal()
}

// checkPreempt services a pending preemption signal outside allocation
// sites (scheduler loop, join spins). The pending flag is consulted
// directly as well as the limit pointer so that no interleaving of local
// collections with a global request can drop the signal. Due timers fire
// afterwards, so a deadline passed during the collection is serviced
// immediately.
func (vp *VProc) checkPreempt() {
	if vp.Local.LimitZeroed() {
		vp.Local.RestoreLimit()
	}
	if vp.rt.global.pending {
		vp.participateGlobal()
	}
	if vp.rt.global.termPending {
		vp.participateTermination()
	} else if vp.rt.global.marking {
		vp.gcMarkPoint()
	}
	if vp.timers.Len() != 0 {
		vp.fireDueTimers()
	}
	if len(vp.pendingFaults) != 0 {
		vp.runPendingFaults()
	}
}

// ServiceScheduler lets mutator code that is waiting on an external
// condition (e.g. a channel receive) make progress: it services pending
// preemption signals and due timers, runs one available task if any, and
// otherwise advances one poll interval (clamped to the next timer deadline
// so the following iteration fires it exactly on time). Spin loops built on
// it cannot stall the stop-the-world protocol.
func (vp *VProc) ServiceScheduler() {
	vp.checkPreempt()
	if t := vp.findWork(); t != nil {
		vp.runTask(t)
		return
	}
	d, _ := vp.timerClamp(vp.rt.Cfg.PollNs)
	vp.advance(d)
}

// schedulerLoop drives the vproc until the runtime has no outstanding
// tasks. Every iteration is a safepoint for pending global collections.
// Idle iterations (steal sweeps and poll ticks) run through idleSweep, so
// an idle vproc costs the engine inline step calls, not goroutine handoffs.
func (vp *VProc) schedulerLoop() {
	rt := vp.rt
	for {
		vp.checkPreempt()
	work:
		if t := vp.queue.popBottom(); t != nil {
			vp.runTask(t)
			continue
		}
		out, victim := vp.idleSweep(nil)
		switch out {
		case sweepSteal:
			vp.runTask(vp.stealFrom(victim))
		case sweepFault:
			continue // loop-top checkPreempt drains the pending faults
		case sweepMark:
			// Idle vproc during a concurrent mark: drain gray chunks
			// (or trigger termination) and re-run the loop-top checks.
			vp.gcMarkIdle()
			continue
		case sweepRunLocal, sweepPreempt:
			// The sweep's loop-top already performed this
			// iteration's preemption checks; service the signal (if
			// any) and go straight to the work queue, as the plain
			// loop's checkPreempt→findWork sequence would.
			if out == sweepPreempt {
				vp.participateGC()
			}
			goto work
		case sweepQuiesce:
			// Do not exit with a global collection mid-cycle: the
			// rendezvous barriers need every vproc, and a concurrent
			// mark must drain and terminate before the run ends.
			if rt.global.pending || rt.global.termPending {
				vp.participateGC()
				continue
			}
			if rt.global.marking {
				vp.gcMarkIdle()
				continue
			}
			return
		}
	}
}

// Join waits for t to complete. If the task is still in this vproc's own
// queue it is run inline (the common fork-join fast path); if it was stolen,
// the vproc works on other tasks (or polls) until the thief finishes it,
// waiting through idleSweep's inline-step path while idle.
func (vp *VProc) Join(t *Task) {
	if !t.done && vp.queue.removeTask(t) {
		vp.runTask(t)
		return
	}
	for !t.done {
		vp.checkPreempt()
	work:
		if other := vp.queue.popBottom(); other != nil {
			vp.runTask(other)
			continue
		}
		out, victim := vp.idleSweep(t)
		switch out {
		case sweepSteal:
			vp.runTask(vp.stealFrom(victim))
		case sweepFault:
			continue // loop-top checkPreempt drains the pending faults
		case sweepMark:
			vp.gcMarkIdle()
			continue
		case sweepRunLocal, sweepPreempt:
			if out == sweepPreempt {
				vp.participateGC()
			}
			goto work
		case sweepJoinDone:
			return
		}
	}
}

// ForkJoin spawns right as a stealable task, runs left inline, then joins.
// Both closures receive their captured references through Env so the
// runtime can move them safely.
func (vp *VProc) ForkJoin(left, right func(vp *VProc, env Env), leftEnv, rightEnv []heap.Addr) {
	t := vp.Spawn(right, rightEnv...)
	base := len(vp.roots)
	vp.roots = append(vp.roots, leftEnv...)
	left(vp, Env{base: base, n: len(leftEnv)})
	vp.roots = vp.roots[:base]
	vp.Join(t)
}

// ParallelRange recursively splits [lo, hi) until the range is at most
// grain, then calls body on each block. The captured references in env are
// promoted automatically when subranges are stolen.
func (vp *VProc) ParallelRange(lo, hi, grain int, env []heap.Addr, body func(vp *VProc, lo, hi int, env Env)) {
	if grain < 1 {
		grain = 1
	}
	var split func(vp *VProc, lo, hi int, e Env)
	split = func(vp *VProc, lo, hi int, e Env) {
		if hi-lo <= grain {
			body(vp, lo, hi, e)
			return
		}
		mid := lo + (hi-lo)/2
		// Snapshot current addresses for the spawned half.
		snap := make([]heap.Addr, e.n)
		for i := 0; i < e.n; i++ {
			snap[i] = e.Get(vp, i)
		}
		t := vp.Spawn(func(vp *VProc, e Env) {
			split(vp, mid, hi, e)
		}, snap...)
		split(vp, lo, mid, e)
		vp.Join(t)
	}
	base := len(vp.roots)
	vp.roots = append(vp.roots, env...)
	split(vp, lo, hi, Env{base: base, n: len(env)})
	vp.roots = vp.roots[:base]
}
