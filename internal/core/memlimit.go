package core

import "repro/internal/heap"

// Memory-pressure resilience: with a heap budget configured (§Config.
// GlobalBudgetChunks / VProcChunkBudget), allocation failure is a status,
// never a panic. The fallible TryAlloc* entry points mirror the channel
// layer's TrySend contract: before committing new mutator work to the
// heap they consult the chunk budget, walk the emergency collection
// ladder when headroom is gone, and report AllocFailed only when a full
// escalation still cannot free a chunk. Collections themselves never
// fail — they overdraft the budget (heap.ChunkManager.Overdrafts), since
// aborting a copy mid-flight would corrupt the heap.
//
// With both budgets zero every path below short-circuits to the
// corresponding infallible allocator with no extra engine charges, so
// unbounded runs are schedule-identical to the pre-budget runtime.

// AllocStatus is the outcome of a fallible allocation attempt.
type AllocStatus int

const (
	// AllocOK means the allocation succeeded.
	AllocOK AllocStatus = iota
	// AllocFailed means the heap budget is exhausted and the emergency
	// collection ladder could not free headroom; nothing was allocated.
	AllocFailed
)

// String names the status.
func (s AllocStatus) String() string {
	switch s {
	case AllocOK:
		return "ok"
	case AllocFailed:
		return "alloc-failed"
	default:
		return "unknown"
	}
}

// ensureGlobalHeadroom is the mutator allocation gate. It returns AllocOK
// immediately while the chunk budget has headroom (always, when no budget
// is set). At the budget it walks the emergency escalation ladder — force
// minor → major → global collection, then retry — by requesting a global
// collection and servicing it: the participation path (§3.4 step 3) runs
// exactly those rungs in order. If the retry still finds no headroom the
// failure is recorded and AllocFailed returned; subsequent gates then
// fail fast (no collection) until a global GC has run elsewhere, the heap
// has changed by two chunks, or EmergencyRetryNs of virtual time has
// passed, bounding the stop-the-world rate under sustained exhaustion.
func (vp *VProc) ensureGlobalHeadroom() AllocStatus {
	rt := vp.rt
	if rt.Chunks.HasHeadroom(vp.ID) {
		return AllocOK
	}
	if rt.ladderFailed &&
		rt.Stats.GlobalGCs == rt.ladderFailGlobalGCs &&
		rt.Chunks.AllocatedWords < rt.ladderFailAllocated+2*rt.Cfg.ChunkWords &&
		vp.Now() < rt.ladderFailNs+rt.Cfg.EmergencyRetryNs {
		vp.Stats.AllocFailed++
		return AllocFailed
	}

	// Emergency escalation. Requesting the collection zeroes every
	// vproc's limit pointer; participateGlobal then runs this vproc's
	// minor collection (which escalates to a major while the global is
	// pending, §3.3) and joins the parallel global phase. Under the
	// concurrent collector memory only frees at the cycle's termination,
	// so the emergency path drives the whole in-flight cycle to completion
	// instead.
	start := vp.Now()
	vp.Stats.EmergencyGCs++
	if rt.Cfg.ConcurrentGlobal {
		vp.emergencyConcurrent()
	} else {
		if !rt.global.pending {
			rt.requestGlobalGC(vp)
		}
		vp.participateGlobal()
	}
	rt.emit(GCEvent{Kind: EvEmergency, VProc: vp.ID, At: vp.Now(), Ns: vp.Now() - start})

	if rt.Chunks.HasHeadroom(vp.ID) {
		rt.ladderFailed = false
		return AllocOK
	}
	rt.ladderFailed = true
	rt.ladderFailGlobalGCs = rt.Stats.GlobalGCs
	rt.ladderFailAllocated = rt.Chunks.AllocatedWords
	rt.ladderFailNs = vp.Now()
	vp.Stats.AllocFailed++
	return AllocFailed
}

// TryAllocRaw is the fallible AllocRaw: it allocates only when the heap
// budget has (or the emergency ladder can recover) headroom for the new
// object's eventual promotion, reporting AllocFailed otherwise. With no
// budget configured it is exactly AllocRaw.
func (vp *VProc) TryAllocRaw(payload []uint64) (heap.Addr, AllocStatus) {
	if st := vp.ensureGlobalHeadroom(); st != AllocOK {
		return 0, st
	}
	return vp.AllocRaw(payload), AllocOK
}

// TryAllocRawN is the fallible AllocRawN.
func (vp *VProc) TryAllocRawN(n int) (heap.Addr, AllocStatus) {
	if st := vp.ensureGlobalHeadroom(); st != AllocOK {
		return 0, st
	}
	return vp.AllocRawN(n), AllocOK
}

// TryAllocVectorN is the fallible AllocVectorN.
func (vp *VProc) TryAllocVectorN(n int) (heap.Addr, AllocStatus) {
	if st := vp.ensureGlobalHeadroom(); st != AllocOK {
		return 0, st
	}
	return vp.AllocVectorN(n), AllocOK
}

// TryPromote is the fallible Promote: the headroom check runs before the
// copy starts, because a promotion cannot abort halfway — once underway
// it overdrafts like any collection. Global addresses and nil pass
// through unchanged without consulting the budget (no new heap growth).
func (vp *VProc) TryPromote(a heap.Addr) (heap.Addr, AllocStatus) {
	if a == 0 {
		return 0, AllocOK
	}
	if r := vp.rt.Space.Region(a.RegionID()); r.Kind != heap.RegionLocal {
		return a, AllocOK
	}
	if st := vp.ensureGlobalHeadroom(); st != AllocOK {
		return 0, st
	}
	return vp.Promote(a), AllocOK
}
