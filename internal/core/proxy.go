package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
)

// Object proxies (§3.1, footnote 1): "a special kind of object that is used
// to allow references from the global heap back into the local heap. We use
// them in the implementation of our explicit concurrency constructs."
//
// A proxy lives in the global heap and names a local-heap object of its
// owner vproc without the owner having to promote it up front: a CML send
// can enqueue a proxy for a waiting continuation, and the data is promoted
// lazily only if a different vproc ends up needing it. The owner registers
// its proxies so local collections keep the local slot current; the global
// collector traces only the proxy's global slot.

// NewProxy allocates a proxy (in the global heap) for the local object held
// in the given root slot and returns the proxy's global address.
func (vp *VProc) NewProxy(localSlot int) heap.Addr {
	rt := vp.rt
	dst := rt.globalAllocDst(vp, heap.ProxySizeWords)
	pa := dst.Bump(heap.MakeHeader(heap.IDProxy, heap.ProxySizeWords))
	p := rt.Space.Payload(pa)
	p[heap.ProxyOwnerSlot] = uint64(vp.ID)
	// Read the target only now: the chunk reservation above may advance,
	// and a thief promoting stolen work out of this heap can move the
	// object meanwhile — the root slot is kept current, a copy taken
	// before the advance is not.
	p[heap.ProxyLocalSlot] = uint64(vp.roots[localSlot])
	p[heap.ProxyGlobalSlot] = 0
	node := rt.Space.NodeOf(pa)
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, heap.ProxySizeWords*8, numa.AccessMemory))
	if vp.proxyIdx == nil {
		vp.proxyIdx = make(map[heap.Addr]int)
	}
	vp.proxyIdx[pa] = len(vp.proxies)
	vp.proxies = append(vp.proxies, pa)
	return pa
}

// IsProxy reports whether the object at a is a proxy.
func (vp *VProc) IsProxy(a heap.Addr) bool {
	return heap.HeaderID(vp.rt.Space.Header(vp.resolve(a))) == heap.IDProxy
}

// ProxyDeref resolves a proxy to an address the calling vproc may use.
// Three cases:
//   - the proxied object has already been promoted: the global copy;
//   - the caller is the proxy's owner: the local object directly;
//   - otherwise: the object must cross vprocs, so it is promoted out of the
//     owner's heap (with the same handshake a thief uses), recorded in the
//     proxy's global slot, and deregistered from the owner.
func (vp *VProc) ProxyDeref(proxy heap.Addr) heap.Addr {
	rt := vp.rt
	proxy = vp.resolve(proxy)
	p := rt.Space.Payload(proxy)
	node := rt.Space.NodeOf(proxy)
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, heap.ProxySizeWords*8, numa.AccessMemory))

	if g := heap.Addr(p[heap.ProxyGlobalSlot]); g != 0 {
		return g
	}
	owner := rt.VProcs[p[heap.ProxyOwnerSlot]]
	if owner == vp {
		// The local slot may already hold a global address if the
		// object was promoted for another reason; either way it is
		// directly usable by the owner.
		return vp.resolve(heap.Addr(p[heap.ProxyLocalSlot]))
	}
	// Cross-vproc dereference: promote out of the owner's heap.
	for owner.heapBusy {
		vp.advance(rt.Cfg.SpinNs)
	}
	// The spin (and the probe charge above) advanced, so the observation
	// must be redone before acting on it — the same observe-act discipline
	// as Send's re-checks. Two things can have changed: a third vproc may
	// have resolved this very proxy (promote again and the owner's
	// dropProxy would double-drop), and the owner's collections may have
	// moved the proxied object and reused its old space. Only the proxy's
	// own local slot is kept current by those collections; a pre-advance
	// copy of it can point at a dead forwarding word in reclaimed nursery
	// space, which promoteFrom would chase into an arbitrary — even
	// local-heap — address and cache in the global slot. (This was a real
	// corruption: the open-loop traffic harness hits it within
	// milliseconds at 48 vprocs under GC pressure.)
	if g := heap.Addr(p[heap.ProxyGlobalSlot]); g != 0 {
		return g
	}
	owner.heapBusy = true
	local := heap.Addr(p[heap.ProxyLocalSlot])
	g := vp.promoteFrom(owner, local)
	owner.heapBusy = false
	// Concurrent-mark insertion barrier: promoteFrom passes an
	// already-global address through unchanged, which during a mark can be
	// a still-white (from-space) object — and this store publishes it in a
	// proxy that may already be black. Shade before caching. (The proxy
	// itself is stable: every registered proxy is forwarded to to-space in
	// the snapshot window, so p stays valid across the advances above.)
	g = vp.gcWriteBarrier(g)
	p[heap.ProxyGlobalSlot] = uint64(g)
	p[heap.ProxyLocalSlot] = 0
	owner.dropProxy(proxy)
	return g
}

// dropProxy removes a resolved proxy from the owner's registry (its local
// slot no longer needs root treatment). Swap-remove through the index map:
// O(1) per resolution, where the former linear scan made channel-heavy
// workloads quadratic in live proxies. The registry's iteration order is
// not semantically significant — it only has to be deterministic, and
// swap-remove is a deterministic function of the operation sequence.
func (vp *VProc) dropProxy(pa heap.Addr) {
	i, ok := vp.proxyIdx[pa]
	if !ok {
		panic(fmt.Sprintf("core: proxy %v not registered with vproc %d", pa, vp.ID))
	}
	last := len(vp.proxies) - 1
	moved := vp.proxies[last]
	vp.proxies[i] = moved
	vp.proxies = vp.proxies[:last]
	delete(vp.proxyIdx, pa)
	if i != last {
		vp.proxyIdx[moved] = i
	}
}
