package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
)

// Promotion (§3.3): "the runtime system also implements object promotion,
// which is required when an object is to be shared with other vprocs.
// Promotion is essentially a major collection, where the root set is a
// pointer to the promoted object, and the synchronization requirements are
// the same as for major collection."
//
// Promotion leaves forwarding pointers in the source local heap; subsequent
// local collections of the owner resolve them.

// Promote copies the object graph rooted at a out of this vproc's local
// heap into its current global chunk and returns the global address.
// Global addresses and nil pass through unchanged.
func (vp *VProc) Promote(a heap.Addr) heap.Addr {
	return vp.promoteFrom(vp, a)
}

// PromoteRoot promotes the object held in a root slot and updates the slot.
func (vp *VProc) PromoteRoot(slot int) heap.Addr {
	na := vp.Promote(vp.roots[slot])
	vp.roots[slot] = na
	return na
}

// promoteFrom copies the object graph rooted at root out of owner's local
// heap into the executing vproc's current chunk. The executing vproc may be
// a thief performing lazy promotion of stolen work; the caller is
// responsible for the heapBusy handshake in that case.
func (vp *VProc) promoteFrom(owner *VProc, root heap.Addr) heap.Addr {
	rt := vp.rt
	if owner == vp {
		// Exclude concurrent thieves from our heap for the duration
		// (the same synchronization a major collection needs).
		for vp.heapBusy {
			vp.advance(rt.Cfg.SpinNs)
		}
		vp.heapBusy = true
		defer func() { vp.heapBusy = false }()
	}
	region := owner.Local.Region
	words := region.Words
	start := vp.Now()
	rt.localGCActive++
	defer func() { rt.localGCActive-- }()
	var promoted int64

	var work []heap.Addr
	forward := func(a heap.Addr) heap.Addr {
		if a == 0 {
			return a
		}
		if a.RegionID() != region.ID {
			// Must already be global (or a proxy): pointers into a
			// third vproc's local heap would violate the heap
			// invariant.
			if r := rt.Space.Region(a.RegionID()); r.Kind == heap.RegionLocal {
				panic(fmt.Sprintf("core: promotion from vproc %d found pointer into vproc %d's local heap",
					owner.ID, r.Owner))
			}
			return a
		}
		h := words[a.Word()-1]
		if !heap.IsHeader(h) {
			return heap.ForwardTarget(h)
		}
		n := heap.HeaderLen(h)
		dst := rt.globalAllocDst(vp, n)
		na := dst.Bump(h)
		copy(rt.Space.Payload(na), words[a.Word():a.Word()+n])
		words[a.Word()-1] = heap.MakeForward(na)
		promoted += int64(n + 1)

		srcNode := rt.Space.NodeOf(a)
		dstNode := rt.Space.NodeOf(na)
		// The source is another vproc's local heap when stealing, so
		// it is charged as a memory access unless node-local to us.
		srcKind := numa.AccessMemory
		if owner == vp {
			srcKind = numa.AccessCache
		}
		vp.advance(rt.Machine.CopyStreamCost(vp.Now(), vp.Core, srcNode, dstNode, (n+1)*8,
			srcKind, numa.AccessMemory))

		work = append(work, na)
		return na
	}

	na := forward(root)
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		heap.ScanObject(rt.Space, rt.Descs, obj, func(_ int, p heap.Addr) heap.Addr {
			return forward(p)
		})
	}

	if promoted > 0 {
		vp.Stats.Promotions++
		vp.Stats.PromotedWords += promoted
		rt.emit(GCEvent{Kind: EvPromote, VProc: vp.ID, At: vp.Now(), Ns: vp.Now() - start, Words: promoted})
	}
	return na
}
