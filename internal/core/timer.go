package core

import (
	"fmt"

	"repro/internal/heap"
)

// Virtual-time timers. Each vproc owns a deterministic deadline queue
// (vtime.TimerQueue) of parked continuations; the queue is serviced only by
// its owner, at the same safepoints that service preemption signals, so
// firing needs no synchronization beyond the engine's token discipline.
//
// Exactness: a timer's continuation is enqueued at the first safepoint at or
// after its deadline. While the owner is idle (steal sweeps, poll waits,
// blocking channel waits, SleepUntil), every idle charge is clamped to the
// earliest pending deadline (see timerClamp and its call sites in sched.go),
// so that safepoint lands exactly ON the deadline — an idle vproc fires at
// t, not at the next poll-tick after t. A vproc busy inside a task fires at
// the task's next allocation safepoint or completion, which models real
// wakeup jitter and is equally deterministic.
//
// GC safety: a parked timer continuation is a rendezvous on vp.parked —
// exactly like a parked SelectThen continuation — so its captured
// environment is forwarded by every minor, major, and global collection.
// Firing moves the continuation to the owner's task queue (also a traced
// root set), transferring the rt.outstanding count it acquired when parked.

// timerArm parks r until a deadline: when it fires, fn runs as a task with
// which = timeoutWhich and a nil message. A rendezvous armed on both a timer
// and channel rings (SelectThenTimeout) is claimed by exactly one of them:
// every claim site — sender delivery, the registrant's own pending-chain
// probe, and the timer fire — tests and sets r.claimed inside a single
// advance-free engine segment, so no interleaving can double-deliver or
// strand the continuation.
func (vp *VProc) timerArm(deadline int64, r *rendezvous) {
	r.timer = vp.timers.Add(deadline, r)
}

// timeoutWhich is the channel index delivered to a timed select's
// continuation when the timer wins.
const timeoutWhich = -1

// fireDueTimers enqueues the continuation of every timer whose deadline has
// been reached. Entries whose rendezvous was already claimed (a channel
// delivered first and retired the timer, or — if the claim and this pop
// raced at the same safepoint — left it stale) are discarded. Fault-plan
// events are not run here: fireDueTimers is called from contexts where
// advancing and allocating are illegal (StepWhile step functions), so they
// are deferred to vp.pendingFaults and executed at the next checkPreempt.
// Must run on the owning vproc.
func (vp *VProc) fireDueTimers() {
	var due []*rendezvous
	for {
		tm := vp.timers.PopDue(vp.Now())
		if tm == nil {
			break
		}
		switch d := tm.Data.(type) {
		case *FaultEvent:
			vp.pendingFaults = append(vp.pendingFaults, d)
		case *rendezvous:
			r := d
			if r.claimed {
				continue // a channel won the race; the ring entry is stale too
			}
			r.claimed = true
			r.timer = nil // popped; nothing left to cancel
			vp.removeParked(r)
			due = append(due, r)
		default:
			panic(fmt.Sprintf("core: unknown timer payload %T", tm.Data))
		}
	}
	// Queue the batch in reverse: the owner pops its deque LIFO, so this
	// runs the batch in (deadline, registration) order — two timers due at
	// the same safepoint fire FIFO, like everything else in the queue
	// discipline. Each continuation was counted in rt.outstanding when it
	// parked; queuing the task transfers that count.
	for i := len(due) - 1; i >= 0; i-- {
		r := due[i]
		vp.queue.pushBottom(timeoutTask(vp, r.env, r.fn))
		vp.Stats.TimersFired++
	}
}

// timeoutTask builds the task that resumes a timer-fired continuation: no
// message exists, so fn receives timeoutWhich and a nil address.
func timeoutTask(owner *VProc, env []heap.Addr, fn func(vp *VProc, env Env, which int, msg heap.Addr)) *Task {
	tenv := append([]heap.Addr(nil), env...)
	return &Task{owner: owner.ID, env: tenv, Fn: func(vp *VProc, e Env) {
		fn(vp, e, timeoutWhich, 0)
	}}
}

// timerClamp bounds an idle charge so the charge lands exactly on the
// earliest pending deadline when that deadline is nearer than d; clamped
// reports whether it did. With no pending timers it is the identity, which
// keeps timer-free schedules bit-identical to the pre-timer engine. It must
// be called at the virtual instant the charge starts (i.e. from the step or
// immediately before the advance that applies it).
func (vp *VProc) timerClamp(d int64) (int64, bool) {
	dl, ok := vp.timers.NextDeadline()
	if !ok {
		return d, false
	}
	rem := dl - vp.Now()
	if rem >= d {
		return d, false
	}
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// AtThen parks fn until the vproc's virtual clock reaches deadline, then
// runs it as a task on this vproc's queue with the captured env (GC roots
// while parked, exactly like a parked SelectThen continuation). A deadline
// at or before the current clock fires at the vproc's next safepoint. The
// continuation counts as outstanding work: the runtime does not quiesce
// while timers are armed.
func (vp *VProc) AtThen(deadline int64, env []heap.Addr, fn func(vp *VProc, env Env)) {
	vp.rt.outstanding++
	r := &rendezvous{
		owner: vp,
		env:   append([]heap.Addr(nil), env...),
		fn: func(vp *VProc, e Env, _ int, _ heap.Addr) {
			fn(vp, e)
		},
	}
	vp.parked = append(vp.parked, r)
	vp.timerArm(deadline, r)
}

// AfterThen is AtThen with a relative delay.
func (vp *VProc) AfterThen(delay int64, env []heap.Addr, fn func(vp *VProc, env Env)) {
	if delay < 0 {
		panic(fmt.Sprintf("core: AfterThen with negative delay %d", delay))
	}
	vp.AtThen(vp.Now()+delay, env, fn)
}

// SelectThenTimeout is SelectThen with a deadline: fn runs as a task once
// any of the channels delivers — receiving the winning index and the
// resolved message — or once the timeout elapses first, receiving which ==
// -1 and a nil message. Exactly one of the two happens: the channel
// registrations and the timer share one rendezvous, and every delivery path
// claims it in an advance-free segment. A message already pending at
// registration time wins over an already-expired timeout (the registration
// probe runs before the next timer safepoint).
func (vp *VProc) SelectThenTimeout(chans []*Channel, timeout int64, env []heap.Addr, fn func(vp *VProc, env Env, which int, msg heap.Addr)) {
	if len(chans) == 0 {
		panic("core: SelectThenTimeout over no channels")
	}
	if timeout < 0 {
		panic(fmt.Sprintf("core: SelectThenTimeout with negative timeout %d", timeout))
	}
	rt := vp.rt
	rt.outstanding++
	// Register the rendezvous on the timer and every channel BEFORE probing
	// the pending chains — the same lost-wakeup discipline as SelectThen
	// (see channel.go): a Send during a probe charge either sees the waiter
	// or enqueued before registration, in which case the probe finds it.
	r := &rendezvous{owner: vp, env: append([]heap.Addr(nil), env...), fn: fn}
	vp.parked = append(vp.parked, r)
	vp.timerArm(vp.Now()+timeout, r)
	for i, ch := range chans {
		ch.waiters.push(r, i)
	}
	vp.selectProbe(chans, r)
}

// RecvThenTimeout is the single-channel form of SelectThenTimeout: fn
// receives ok == false (and a nil message) if the timeout fires first.
func (ch *Channel) RecvThenTimeout(vp *VProc, timeout int64, env []heap.Addr, fn func(vp *VProc, env Env, msg heap.Addr, ok bool)) {
	vp.SelectThenTimeout([]*Channel{ch}, timeout, env, func(vp *VProc, e Env, which int, msg heap.Addr) {
		fn(vp, e, msg, which != timeoutWhich)
	})
}

// SleepFor parks the vproc for d virtual nanoseconds; see SleepUntil.
func (vp *VProc) SleepFor(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("core: SleepFor with negative duration %d", d))
	}
	vp.SleepUntil(vp.Now() + d)
}

// SleepUntil parks the vproc until its virtual clock reaches deadline. The
// wait is GC-safe: the sleeper keeps servicing preemption signals (it joins
// pending global collections — a sleeping vproc cannot stall the
// stop-the-world protocol) and fires its own due timers, but unlike a
// channel wait it does not run queued tasks — it is asleep, not idle; its
// queue remains stealable. The vproc resumes exactly at deadline (or later
// only if a collection it had to serve ran past it), stepping through the
// engine's inline path so a long sleep costs function calls, not goroutine
// handoffs.
func (vp *VProc) SleepUntil(deadline int64) {
	for {
		vp.checkPreempt()
		if vp.Now() >= deadline {
			return
		}
		// Step toward the deadline in poll-sized increments (bounded so a
		// preemption signal is noticed promptly), clamped to land exactly on
		// the deadline — and on any nearer timer deadline, whose firing the
		// loop top services. Span-safe: the step observes only frozen shared
		// state (limit, preemption flag, own timers) and writes nothing.
		vp.proc.SpanWhile(func() (int64, bool) {
			if vp.Local.LimitZeroed() || vp.rt.global.pending {
				return 0, true
			}
			now := vp.Now()
			if now >= deadline {
				return 0, true
			}
			d := vp.rt.Cfg.PollNs
			if now+d > deadline {
				d = deadline - now
			}
			if cd, clamped := vp.timerClamp(d); clamped {
				if cd == 0 {
					return 0, true // a timer is due; fire it from the loop top
				}
				return cd, false
			}
			return d, false
		}, nil, nil)
	}
}
