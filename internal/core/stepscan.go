package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
)

// Step-driven global collection (the scan phase of §3.4, run inline).
//
// The stop-the-world scan is where all N vprocs interleave chunk-by-chunk:
// every copy, chunk fetch, and poll is its own engine charge, and with the
// direct (Advance-based) loops nearly every charge crosses the horizon and
// costs a goroutine handoff. The machines below are the direct loops
// (global.go: globalScanRootsDirect, globalScanLoopDirect) transcribed into
// resumable form for vtime.Proc.StepWhile: each turn executes the direct
// code from one engine charge to the next — performing the same state
// mutations at the same point — and returns that charge. By the step
// contract the schedule is bit-identical (each turn runs at exactly the
// virtual instant its proc would have been scheduled); only the stack it
// runs on changes, so a 48-proc scan phase executes on a handful of
// goroutines.
//
// The decomposition leans on three mutate/charge splits in the runtime:
//
//   - getChunkStart/getChunkFinish: a chunk fetch mutates the free lists
//     before its sync charge and installs vp.curChunk after it, so a fetch
//     spans two turns exactly as the direct getChunk spans its Advance.
//   - popScanChunkStart: the pending-list pop precedes its sync charge.
//   - forwardClass/globalCopy: classification is chargeless; the
//     evacuation mutates and charges in one turn.
//
// A from-space copy therefore costs one turn when the destination chunk has
// room, or two (fetch, then copy) when it must be replaced — the same two
// Advance instants the direct code produces.

// fwPend is the shared mid-forward state of the two machines: a copy whose
// destination chunk had to be fetched first. The fetch charge was returned
// last turn; the fresh chunk still needs installing, and the copy itself is
// this turn's charge.
type fwPend struct {
	active   bool
	p        heap.Addr
	h        uint64
	newChunk *heap.Chunk
}

// forwardTurn runs one pointer site through the forwarding charges: it
// classifies p and either completes chargelessly (charged=false, with na
// the final value to store) or issues this turn's charge (charged=true) —
// a copy when the destination fits (copied=true, na valid), else a chunk
// fetch recorded in pend for the next turn.
func forwardTurn(vp *VProc, p heap.Addr, pend *fwPend) (na heap.Addr, d int64, charged, copied bool) {
	rt := vp.rt
	np, h, need := vp.forwardClass(p)
	if !need {
		return np, 0, false, false
	}
	n := heap.HeaderLen(h)
	if n+1 > rt.Cfg.ChunkWords-1 {
		panic(fmt.Sprintf("core: object of %d words exceeds chunk size %d", n, rt.Cfg.ChunkWords))
	}
	if vp.curChunk == nil || !vp.curChunk.CanAlloc(n) {
		c, d := rt.getChunkStart(vp)
		pend.active = true
		pend.p, pend.h, pend.newChunk = np, h, c
		return 0, d, true, false
	}
	na, d = vp.globalCopy(np, h, vp.curChunk)
	return na, d, true, true
}

// finish completes a pending forward: installs the fetched chunk and
// performs the copy, whose charge the caller returns from this turn —
// unless another scanner evacuated the object during the fetch turn, in
// which case copied is false, na is the forwarding target, and the caller
// continues chargelessly (exactly the direct globalForward's re-classify
// after its getChunk advance).
func (pend *fwPend) finish(vp *VProc) (na heap.Addr, d int64, copied bool) {
	pend.active = false
	vp.rt.getChunkFinish(vp, pend.newChunk)
	pend.newChunk = nil
	na, h, need := vp.forwardClass(pend.p)
	if !need {
		return na, 0, false
	}
	na, d = vp.globalCopy(na, h, vp.curChunk)
	return na, d, true
}

// --- The parallel chunk-scan loop ----------------------------------------

type scanPhase int

const (
	scanSelect      scanPhase = iota // loop top: evaluate the own-chunk drain
	scanDrainOwn                     // draining m.c, bound from vp.curChunk
	scanPop                          // own drain done; try the pending lists
	scanDrainPopped                  // fully draining a popped chunk
	scanCheck                        // progress / drained / poll decision
)

// scanMachine is globalScanLoopDirect in resumable form.
type scanMachine struct {
	vp         *VProc
	phase      scanPhase
	c          *heap.Chunk // chunk being drained
	progressed bool

	// Mid-object state (valid while scanning): the object's payload, its
	// pointer-slot layout, and the cursor into it.
	scanning bool
	payload  []uint64
	offs     []int
	all      bool
	nSlots   int
	si       int
	objLen   int

	pend fwPend
}

// globalScanLoopStep runs the scan loop through the engine's inline-step
// path.
func (vp *VProc) globalScanLoopStep() {
	m := &scanMachine{vp: vp}
	vp.proc.StepWhile(m.step)
}

func (m *scanMachine) step() (int64, bool) {
	vp := m.vp
	rt := vp.rt
	if m.pend.active {
		na, d, copied := m.pend.finish(vp)
		m.payload[m.slotOff()] = uint64(na)
		m.si++
		if copied {
			return d, false
		}
		// The object was evacuated by another scanner during our fetch
		// turn: no copy charge; continue scanning within this turn.
	}
	for {
		switch m.phase {
		case scanSelect:
			// Direct loop top: re-bind the own chunk.
			m.progressed = false
			if c := vp.curChunk; c != nil && c.Scan < c.Top {
				m.progressed = true
				m.c = c
				m.beginObject()
				m.phase = scanDrainOwn
				continue
			}
			m.phase = scanPop

		case scanDrainOwn, scanDrainPopped:
			if m.scanning {
				if d, charged := m.scanSlots(); charged {
					return d, false
				}
				m.finishObject()
				if m.phase == scanDrainOwn && vp.curChunk != m.c {
					// The chunk filled mid-scan and was replaced;
					// getChunk queued it for later completion.
					m.c = nil
					m.phase = scanPop
					continue
				}
			}
			if m.c.Scan < m.c.Top {
				m.beginObject()
				continue
			}
			m.c = nil
			if m.phase == scanDrainOwn {
				m.phase = scanPop
			} else {
				m.phase = scanCheck
			}

		case scanPop:
			c, d := vp.popScanChunkStart()
			if c == nil {
				m.phase = scanCheck
				continue
			}
			m.c = c
			m.progressed = true
			m.phase = scanDrainPopped
			return d, false

		case scanCheck:
			if m.progressed {
				m.phase = scanSelect
				continue
			}
			if rt.globalScanDrained() {
				return 0, true
			}
			m.phase = scanSelect
			return rt.Cfg.PollNs, false
		}
	}
}

// slotOff maps the slot cursor to its payload offset.
func (m *scanMachine) slotOff() int {
	if m.all {
		return m.si
	}
	return m.offs[m.si]
}

// scanSlots processes pointer slots of the in-flight object until one needs
// a charge; charged=false means the object completed chargelessly.
func (m *scanMachine) scanSlots() (int64, bool) {
	vp := m.vp
	for m.si < m.nSlots {
		off := m.slotOff()
		p := heap.Addr(m.payload[off])
		na, d, charged, copied := forwardTurn(vp, p, &m.pend)
		if !charged {
			if na != p {
				m.payload[off] = uint64(na)
			}
			m.si++
			continue
		}
		if copied {
			m.payload[off] = uint64(na)
			m.si++
		}
		return d, true
	}
	return 0, false
}

// beginObject frames the object at m.c.Scan, exactly as scanChunkStep's
// head does before its ScanObject call.
func (m *scanMachine) beginObject() {
	vp := m.vp
	rt := vp.rt
	c := m.c
	h := c.Region.Words[c.Scan]
	if !heap.IsHeader(h) {
		panic(fmt.Sprintf("core: forwarding pointer in global to-space (vproc %d, chunk r%d node %d from=%v scan=%d top=%d owner=%d word=%#x target=%v)",
			vp.ID, c.Region.ID, c.Node, c.FromSpace, c.Scan, c.Top, c.Owner, h, heap.ForwardTarget(h)))
	}
	obj := heap.MakeAddr(c.Region.ID, c.Scan+1)
	vp.scanningChunk = c
	m.objLen = heap.HeaderLen(h)
	m.payload = rt.Space.Payload(obj)
	m.offs, m.all = heap.PtrLayout(rt.Descs, h)
	m.nSlots = len(m.offs)
	if m.all {
		m.nSlots = len(m.payload)
	}
	m.si = 0
	m.scanning = true
}

// finishObject is scanChunkStep's tail: bump the scan pointer and service a
// deferred re-enqueue of the chunk this very scan was stepping through.
func (m *scanMachine) finishObject() {
	vp := m.vp
	c := m.c
	vp.scanningChunk = nil
	c.Scan += m.objLen + 1
	m.scanning = false
	m.payload = nil
	if vp.deferredEnqueue {
		vp.deferredEnqueue = false
		if c.Scan < c.Top {
			vp.rt.enqueueScan(c)
		}
	}
}

// --- The root-and-local-heap walk ----------------------------------------

type rootsPhase int

const (
	rootsRoots     rootsPhase = iota // vp.roots[i]
	rootsQueue                       // queued task envs, top (oldest) first
	rootsProxies                     // proxy addresses, then their local slots
	rootsResults                     // unjoined task results
	rootsParked                      // parked receive continuations' envs
	rootsLocalWalk                   // every pointer slot of the local heap
	rootsFinal                       // the single fused local-walk charge
	rootsDone
)

// rootsMachine is globalScanRootsDirect in resumable form: a cursor over
// the forwarding sites (host root slots, then local-heap object slots),
// with the same chargeless bookkeeping between them.
type rootsMachine struct {
	vp    *VProc
	phase rootsPhase
	i, j  int

	// withNursery extends the local walk over [NurseryStart, Alloc) after
	// [1, OldTop) — the concurrent collector's STW windows run without the
	// preceding minor/major, so the nursery is live root data there.
	// nursery marks the walk's second span.
	withNursery bool
	nursery     bool

	// Local-walk state.
	scan    int
	inObj   bool
	payload []uint64
	offs    []int
	all     bool
	nSlots  int
	si      int
	objLen  int

	pend fwPend
}

// globalScanRootsStep runs the root walk through the engine's inline-step
// path.
func (vp *VProc) globalScanRootsStep(withNursery bool) {
	m := &rootsMachine{vp: vp, withNursery: withNursery}
	m.normalize()
	vp.proc.StepWhile(m.step)
}

func (m *rootsMachine) step() (int64, bool) {
	vp := m.vp
	rt := vp.rt
	if m.pend.active {
		na, d, copied := m.pend.finish(vp)
		m.siteStore(na)
		m.advanceCursor()
		if copied {
			return d, false
		}
		// Evacuated by another scanner during our fetch turn: no copy
		// charge; continue to the next site within this turn.
	}
	for {
		switch m.phase {
		case rootsFinal:
			// Charge the local-heap walk as a single streaming read:
			// the whole walk is one fused charge (the maximal batch),
			// not one per object.
			lh := vp.Local
			node := rt.Space.NodeOf(heap.MakeAddr(lh.Region.ID, 1))
			walked := lh.OldTop - 1
			if m.withNursery {
				walked += lh.Alloc - lh.NurseryStart
			}
			m.phase = rootsDone
			return rt.Machine.AccessCost(vp.Now(), vp.Core, node, walked*8, numa.AccessCache), false
		case rootsDone:
			return 0, true
		}
		p := m.siteLoad()
		na, d, charged, copied := forwardTurn(vp, p, &m.pend)
		if !charged {
			if na != p {
				m.siteStore(na)
			}
			m.advanceCursor()
			continue
		}
		if copied {
			m.siteStore(na)
			m.advanceCursor()
		}
		return d, false
	}
}

// siteLoad reads the pointer at the cursor.
func (m *rootsMachine) siteLoad() heap.Addr {
	vp := m.vp
	switch m.phase {
	case rootsRoots:
		return vp.roots[m.i]
	case rootsQueue:
		return vp.queue.at(m.i).env[m.j]
	case rootsProxies:
		if m.j == 0 {
			return vp.proxies[m.i]
		}
		return heap.Addr(vp.rt.Space.Payload(vp.proxies[m.i])[heap.ProxyLocalSlot])
	case rootsResults:
		return vp.resultTasks[m.i].result
	case rootsParked:
		return vp.parked[m.i].env[m.j]
	case rootsLocalWalk:
		off := m.si
		if !m.all {
			off = m.offs[m.si]
		}
		return heap.Addr(m.payload[off])
	}
	panic("core: rootsMachine.siteLoad with no site")
}

// siteStore writes the forwarded pointer back to the cursor's site.
func (m *rootsMachine) siteStore(na heap.Addr) {
	vp := m.vp
	switch m.phase {
	case rootsRoots:
		vp.roots[m.i] = na
	case rootsQueue:
		vp.queue.at(m.i).env[m.j] = na
	case rootsProxies:
		if m.j == 0 {
			vp.proxies[m.i] = na
		} else {
			vp.rt.Space.Payload(vp.proxies[m.i])[heap.ProxyLocalSlot] = uint64(na)
		}
	case rootsResults:
		vp.resultTasks[m.i].result = na
	case rootsParked:
		vp.parked[m.i].env[m.j] = na
	case rootsLocalWalk:
		off := m.si
		if !m.all {
			off = m.offs[m.si]
		}
		m.payload[off] = uint64(na)
	default:
		panic("core: rootsMachine.siteStore with no site")
	}
}

// advanceCursor bumps the innermost index past a completed site, then
// normalizes to the next site.
func (m *rootsMachine) advanceCursor() {
	switch m.phase {
	case rootsRoots, rootsResults:
		m.i++
	case rootsQueue, rootsParked:
		m.j++
	case rootsProxies:
		// Per proxy: first the proxy's own address, then its local
		// slot (the pre-global major collection may have left a
		// now-from-space global address there; only the owner sees
		// the slot, so the owner forwards it).
		if m.j == 0 {
			m.j = 1
		} else {
			m.j = 0
			m.i++
		}
	case rootsLocalWalk:
		m.si++
	}
	m.normalize()
}

// normalize advances the cursor to the next pointer site, performing the
// chargeless bookkeeping the direct walk does between charges: phase
// transitions, the proxy-index rebuild, and the local walk's object framing
// (skipping raw payloads and forwarded objects).
func (m *rootsMachine) normalize() {
	vp := m.vp
	rt := vp.rt
	for {
		switch m.phase {
		case rootsRoots:
			if m.i < len(vp.roots) {
				return
			}
			m.phase, m.i, m.j = rootsQueue, 0, 0
		case rootsQueue:
			if m.i < vp.queue.size() {
				if m.j < len(vp.queue.at(m.i).env) {
					return
				}
				m.i, m.j = m.i+1, 0
				continue
			}
			m.phase, m.i, m.j = rootsProxies, 0, 0
		case rootsProxies:
			if m.i < len(vp.proxies) {
				return
			}
			if vp.proxyIdx != nil {
				// The proxies moved; rebuild the address index.
				clear(vp.proxyIdx)
				for i, pa := range vp.proxies {
					vp.proxyIdx[pa] = i
				}
			}
			m.phase, m.i = rootsResults, 0
		case rootsResults:
			if m.i < len(vp.resultTasks) {
				return
			}
			m.phase, m.i, m.j = rootsParked, 0, 0
		case rootsParked:
			if m.i < len(vp.parked) {
				if m.j < len(vp.parked[m.i].env) {
					return
				}
				m.i, m.j = m.i+1, 0
				continue
			}
			m.phase, m.scan = rootsLocalWalk, 1
		case rootsLocalWalk:
			lh := vp.Local
			if m.inObj {
				if m.si < m.nSlots {
					return
				}
				m.inObj = false
				m.payload = nil
				m.scan += m.objLen + 1
				continue
			}
			limit := lh.OldTop
			if m.nursery {
				limit = lh.Alloc
			}
			if m.scan >= limit {
				if m.withNursery && !m.nursery {
					m.nursery = true
					m.scan = lh.NurseryStart
					continue
				}
				m.phase = rootsFinal
				return
			}
			h := lh.Region.Words[m.scan]
			if !heap.IsHeader(h) {
				m.scan += rt.Space.ObjectLen(heap.ForwardTarget(h)) + 1
				continue
			}
			obj := heap.MakeAddr(lh.Region.ID, m.scan+1)
			m.objLen = heap.HeaderLen(h)
			m.payload = rt.Space.Payload(obj)
			m.offs, m.all = heap.PtrLayout(rt.Descs, h)
			m.nSlots = len(m.offs)
			if m.all {
				m.nSlots = len(m.payload)
			}
			m.si = 0
			m.inObj = true
		default:
			return
		}
	}
}
