package core

import (
	"reflect"
	"testing"
)

// faultTestWorkload spawns one allocation/compute task per vproc, long
// enough (in virtual time) for mid-run fault deadlines to land while the
// mutators are busy, with allocation safepoints dense enough that
// checkPreempt drains pending faults promptly.
func faultTestWorkload(rt *Runtime, iters int) int64 {
	return rt.Run(func(vp *VProc) {
		for v := 0; v < rt.Cfg.NumVProcs; v++ {
			vp.Spawn(func(wvp *VProc, _ Env) {
				for i := 0; i < iters; i++ {
					wvp.PushRoot(wvp.AllocRawN(32))
					wvp.Compute(500)
					wvp.PopRoots(1)
				}
			})
		}
	})
}

// TestRandomFaultPlanPure: the plan is a pure function of its arguments —
// identical inputs give identical plans, and every event respects the
// documented envelope (vproc range, deadline window, stall/burst bounds).
func TestRandomFaultPlanPure(t *testing.T) {
	const (
		seed    = 42
		nv      = 4
		horizon = 1_000_000
		stalls  = 5
		bursts  = 5
	)
	p1 := RandomFaultPlan(seed, nv, horizon, stalls, bursts)
	p2 := RandomFaultPlan(seed, nv, horizon, stalls, bursts)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same arguments produced different plans:\n%+v\n%+v", p1.Events, p2.Events)
	}
	p3 := RandomFaultPlan(seed+1, nv, horizon, stalls, bursts)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(p1.Events) != stalls+bursts {
		t.Fatalf("plan has %d events, want %d", len(p1.Events), stalls+bursts)
	}
	for i, e := range p1.Events {
		if e.VProc < 0 || e.VProc >= nv {
			t.Errorf("event %d targets vproc %d of %d", i, e.VProc, nv)
		}
		if e.At < horizon/8 || e.At >= horizon {
			t.Errorf("event %d at %d outside [%d, %d)", i, e.At, horizon/8, horizon)
		}
		switch e.Kind {
		case FaultStall:
			if e.StallNs < 20_000 || e.StallNs >= 200_000 {
				t.Errorf("event %d stall %d ns outside [20000, 200000)", i, e.StallNs)
			}
		case FaultBurst:
			if e.Words < 2048 || e.Words >= 2048+6144 {
				t.Errorf("event %d burst %d words outside [2048, 8192)", i, e.Words)
			}
		default:
			t.Errorf("event %d has unexpected kind %v", i, e.Kind)
		}
	}
}

// TestInstallFaultsValidates: malformed events must fail loudly at install
// time, not fire (or silently no-op) mid-run.
func TestInstallFaultsValidates(t *testing.T) {
	mustPanic := func(name string, p *FaultPlan) {
		t.Helper()
		rt := MustNewRuntime(stressConfig(2))
		defer func() {
			if recover() == nil {
				t.Errorf("%s: InstallFaults did not panic", name)
			}
		}()
		rt.InstallFaults(p)
	}
	mustPanic("vproc out of range", (&FaultPlan{}).Stall(2, 1_000, 50_000))
	mustPanic("negative instant", (&FaultPlan{}).Burst(0, -1, 4096))
	mustPanic("nil close channel", &FaultPlan{Events: []FaultEvent{{At: 1_000, VProc: 0, Kind: FaultClose}}})
}

// TestFaultStallAndBurstDeterministic: a stall/burst plan perturbs the run
// (virtual time lost to the stall, heap pressure from the burst) but keeps
// it bit-deterministic — two runs with the same plan agree on the makespan
// and on every statistic, and the fault counters account for exactly the
// injected events.
func TestFaultStallAndBurstDeterministic(t *testing.T) {
	const iters = 200
	plan := func() *FaultPlan {
		return (&FaultPlan{}).
			Stall(0, 20_000, 100_000).
			Burst(1, 30_000, 4096).
			Stall(1, 40_000, 50_000)
	}

	baseline := faultTestWorkload(MustNewRuntime(stressConfig(2)), iters)

	run := func() (int64, VPStats) {
		rt := MustNewRuntime(stressConfig(2))
		rt.InstallFaults(plan())
		elapsed := faultTestWorkload(rt, iters)
		if err := rt.VerifyHeap(); err != nil {
			t.Fatalf("heap invariants after faulted run: %v", err)
		}
		return elapsed, rt.TotalStats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Errorf("faulted reruns diverged: %d ns %+v vs %d ns %+v", e1, s1, e2, s2)
	}
	if s1.FaultsInjected != 3 {
		t.Errorf("FaultsInjected = %d, want 3", s1.FaultsInjected)
	}
	if s1.FaultStallNs != 150_000 {
		t.Errorf("FaultStallNs = %d, want 150000", s1.FaultStallNs)
	}
	if s1.FaultBurstWords != 4096 {
		t.Errorf("FaultBurstWords = %d, want 4096", s1.FaultBurstWords)
	}
	// The two stalls overlap in virtual wall-clock (different vprocs), so
	// the makespan grows by at least the dominant 100us stall, not the sum.
	if e1 < baseline+90_000 {
		t.Errorf("faulted makespan %d ns not slowed by the injected stalls (baseline %d ns)", e1, baseline)
	}
}

// TestFaultsPastMakespanAreInert: fault timers do not count as outstanding
// work, so a deadline beyond the run's natural end neither fires nor keeps
// the runtime from quiescing.
func TestFaultsPastMakespanAreInert(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	rt.InstallFaults((&FaultPlan{}).Stall(0, 1<<40, 100_000))
	faultTestWorkload(rt, 20)
	if s := rt.TotalStats(); s.FaultsInjected != 0 {
		t.Errorf("an event past the makespan fired: FaultsInjected = %d", s.FaultsInjected)
	}
}
