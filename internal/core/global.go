package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
	"repro/internal/vtime"
)

// Global collection (§3.4): a parallel stop-the-world copying collection of
// the global heap. The triggering vproc becomes the leader, sets the global
// flag, and signals all other vprocs by zeroing their allocation-limit
// pointers. Every vproc first performs its minor and major collections, so
// on entry all live local data is young data whose outgoing global
// references are the global roots. From-space chunks are gathered per NUMA
// node; each vproc scans to-space chunks node-locally, preserving affinity,
// and from-space chunks return to the free pool (node-affine) at the end.
type globalState struct {
	pending bool
	// scanning is true while from-space chunks exist: the whole STW scan
	// phase in legacy mode, and the whole snapshot→termination cycle in
	// concurrent mode. getChunk consults it to queue replaced chunks that
	// still hold unscanned data.
	scanning bool
	leader   int

	// Concurrent-mode cycle state (ConcurrentGlobal). marking is true
	// between the snapshot window and the termination window: mutators
	// run, the write barrier is armed, and assists drain gray chunks.
	// termPending signals the termination rendezvous the way pending
	// signals the snapshot one.
	marking     bool
	termPending bool

	entry    *vtime.Barrier
	setup    *vtime.Barrier
	scanDone *vtime.Barrier
	finish   *vtime.Barrier

	// Termination-window barriers (concurrent mode only). Separate from
	// the snapshot set so a crash mid-mark can drop the dead vproc from
	// both rendezvous independently.
	termEntry    *vtime.Barrier
	termScanDone *vtime.Barrier
	termFinish   *vtime.Barrier

	// scanByNode holds to-space chunks with unscanned data, grouped by
	// the node their pages live on.
	scanByNode [][]*heap.Chunk
	fromChunks []*heap.Chunk
	copied     int64
	startNs    int64

	// Pacer state (concurrent mode). trigger is the next cycle's start
	// threshold in active global words (0 = use Cfg.GlobalTriggerWords);
	// markStartAllocated records the active words at snapshot so the
	// cycle's concurrent allocation rate can set the next headroom.
	// windowStart times the current STW window; termStartNs stamps the
	// termination request.
	trigger            int
	markStartAllocated int
	termStartNs        int64
	windowStart        int64

	// dirtyRoots lists the registered global-root objects whose traced
	// slots were rewritten during the current mark with addresses read out
	// of unscanned data (channel records popping their head link) — the
	// one store path that can plant a from-space reference in an
	// already-black object without the insertion barrier. The termination
	// window rescans exactly these instead of every registered root.
	// Appended in virtual-time order, so the set is deterministic.
	dirtyRoots []heap.Addr
	dirtySet   map[heap.Addr]bool
}

func (g *globalState) init(rt *Runtime) {
	n := rt.Cfg.NumVProcs
	c := rt.Cfg.BarrierNs
	g.entry = vtime.NewBarrier(n, c)
	g.setup = vtime.NewBarrier(n, c)
	g.scanDone = vtime.NewBarrier(n, c)
	g.finish = vtime.NewBarrier(n, c)
	g.termEntry = vtime.NewBarrier(n, c)
	g.termScanDone = vtime.NewBarrier(n, c)
	g.termFinish = vtime.NewBarrier(n, c)
	g.scanByNode = make([][]*heap.Chunk, rt.Cfg.Topo.NumNodes())
}

// requestGlobalGC is called by the vproc that observed the trigger (§3.4
// steps 1-2): set the flag, take leadership, and signal every other vproc
// by zeroing its allocation-limit pointer.
func (rt *Runtime) requestGlobalGC(vp *VProc) {
	g := &rt.global
	g.pending = true
	g.leader = vp.ID
	g.startNs = vp.Now()
	rt.emit(GCEvent{Kind: EvGlobalStart, VProc: vp.ID, At: g.startNs})
	// Zero every vproc's limit pointer, including the requester's own, so
	// its next safepoint joins the collection even if it stops
	// allocating. Crashed vprocs are not signalled: they left the barrier
	// protocol at crash time (Barrier.Drop) and will never reach another
	// safepoint, so signalling them would charge time for a vproc that
	// cannot respond.
	for _, other := range rt.VProcs {
		if other.crashed {
			continue
		}
		other.Local.ZeroLimit()
		if other != vp {
			vp.advance(rt.Cfg.SignalVProcNs)
		}
	}
}

// participateGlobal is executed by a vproc that noticed a pending global
// collection at a safepoint: §3.4 step 3 requires it to first perform its
// minor and major collections, then join the parallel global phase.
// minorGC triggers the major automatically while global.pending is set.
//
// The heap-idle wait is load-bearing: a thief may be mid-promotion out of
// this vproc's heap (heapBusy), suspended inside one of the promotion's
// chunk-fetch or copy charges. Collecting under it would move and slide the
// very objects the thief's in-flight addresses name — the thief then writes
// forwarding words at stale offsets, splitting live objects (observed as
// duplicated and corrupted channel messages under the open-loop traffic
// harness). The allocation safepoint has always waited; the preemption
// path must too.
func (vp *VProc) participateGlobal() {
	vp.waitHeapIdle()
	if vp.rt.Cfg.ConcurrentGlobal {
		// Concurrent mode: the rendezvous is only the snapshot window —
		// no minor/major first (the root walk covers the nursery), no
		// draining scan. The mark proceeds interleaved with mutators.
		if vp.rt.global.pending {
			vp.globalSnapshot()
		}
		return
	}
	vp.minorGC()
	if vp.rt.global.pending {
		vp.globalCollect()
	}
}

// globalCollect runs the parallel phase of a global collection. All vprocs
// arrive here with empty nurseries and only young data in their local
// heaps.
func (vp *VProc) globalCollect() {
	rt := vp.rt
	g := &rt.global
	start := vp.Now()

	// Phase 1: rendezvous. After this barrier no vproc allocates in the
	// global heap until scanning starts.
	g.entry.Arrive(vp.proc)

	// Phase 2: the leader condemns the global heap: all active chunks
	// become from-space, gathered on a per-node basis.
	if vp.ID == g.leader {
		g.fromChunks = rt.Chunks.TakeActive()
		for _, c := range g.fromChunks {
			c.FromSpace = true
		}
		rt.Stats.ChunksFromSpace += len(g.fromChunks)
		// Condemning invalidates every vproc's current chunk.
		for _, o := range rt.VProcs {
			o.curChunk = nil
		}
		g.scanning = true
		vp.advance(int64(len(g.fromChunks)) * 25) // list gathering
	}
	g.setup.Arrive(vp.proc)

	// Phase 3: each vproc scans its roots and local heap, copying
	// reachable from-space objects into fresh to-space chunks obtained
	// on its own node, then participates in parallel per-node chunk
	// scanning until no unscanned chunks remain anywhere.
	vp.globalScanRoots(false)
	if vp.ID == g.leader {
		for _, pa := range rt.globalRoots {
			*pa = vp.globalForward(*pa)
		}
		// Crashed vprocs cannot scan their own retired heaps; the leader
		// adopts them (proxies, frozen local data) so messages and proxied
		// objects they left behind survive the collection.
		vp.adoptCrashedHeaps()
	}
	vp.globalScanLoop()

	// The scan is globally drained (globalScanLoop only returns once no
	// unscanned data remains anywhere), so forwarding targets are final:
	// repair this vproc's local promotion-forwarding words before the
	// barrier, while the from-space headers are still intact.
	vp.repairLocalForwarding()
	if vp.ID == g.leader {
		// Same repair for the retired heaps the leader adopted above.
		for _, dead := range rt.VProcs {
			if dead.crashed {
				dead.repairLocalForwarding()
				dead.repairNurseryForwarding()
			}
		}
	}

	g.scanDone.Arrive(vp.proc)

	// Phase 4: the leader returns the old from-space chunks to the
	// free-space chunk pool (node-affine) and clears the flag.
	if vp.ID == g.leader {
		if rt.Cfg.Debug {
			for _, c := range rt.Chunks.Active() {
				if !c.FromSpace && c.Scan < c.Top {
					panic(fmt.Sprintf("core: to-space chunk r%d (node %d, owner %d) left unscanned: scan=%d top=%d",
						c.Region.ID, c.Node, c.Owner, c.Scan, c.Top))
				}
			}
		}
		for _, c := range g.fromChunks {
			rt.Chunks.Release(c)
			vp.advance(20)
		}
		g.fromChunks = nil
		g.pending = false
		g.scanning = false
		rt.Stats.GlobalGCs++
		// Active chunkage right after a full collection is the survived
		// set — the occupancy floor no amount of collecting gets below.
		rt.Stats.LastGlobalSurvivedWords = rt.Chunks.AllocatedWords
		rt.Stats.GlobalCopied += g.copied
		rt.Stats.GlobalNs += vp.Now() - g.startNs
		rt.emit(GCEvent{Kind: EvGlobalEnd, VProc: vp.ID, At: vp.Now(), Ns: vp.Now() - g.startNs, Words: g.copied})
		g.copied = 0
		if rt.Cfg.Debug {
			if err := rt.VerifyHeap(); err != nil {
				panic(fmt.Sprintf("core: after global GC: %v", err))
			}
		}
	}
	g.finish.Arrive(vp.proc)
	vp.Stats.GlobalNs += vp.Now() - start
}

// globalForward copies a from-space global object into this vproc's
// to-space chunk and returns the new address. Local addresses and live
// to-space addresses pass through unchanged.
//
// It is assembled from forwardClass (the chargeless classification) and
// globalCopy (the evacuation plus its charge) so the step-driven collectors
// in stepscan.go can issue the identical mutation/charge sequence one turn
// at a time.
func (vp *VProc) globalForward(a heap.Addr) heap.Addr {
	rt := vp.rt
	na, h, need := vp.forwardClass(a)
	if !need {
		return na
	}
	n := heap.HeaderLen(h)
	if n+1 > rt.Cfg.ChunkWords-1 {
		panic(fmt.Sprintf("core: object of %d words exceeds chunk size %d", n, rt.Cfg.ChunkWords))
	}
	if vp.curChunk == nil || !vp.curChunk.CanAlloc(n) {
		rt.getChunk(vp)
		// The chunk fetch advanced virtual time, so another scanner may
		// have evacuated this very object meanwhile (both held a
		// reference to it). Re-classify instead of copying blindly: a
		// second copy would overwrite the forwarding pointer and fork
		// the object's identity between the two to-space copies.
		na, h, need = vp.forwardClass(a)
		if !need {
			return na
		}
	}
	na, d := vp.globalCopy(a, h, vp.curChunk)
	vp.advance(d)
	return na
}

// forwardClass classifies a pointer for global forwarding without charging:
// need is false for the pass-through cases (nil, live local-heap addresses,
// live to-space objects, already-forwarded objects), with na the final
// address; need is true when the object must be copied, with h its
// still-live from-space header (read here, before any chunk fetch, exactly
// as the direct code reads it).
//
// A local-heap address is resolved through promotion forwarding words before
// classification: when the referent was promoted, the reference's real
// target is the global copy, which may be from-space — leaving the
// reference pointing at the local forwarding word would hide the only live
// path to the object from the collector, condemning it with its chunk (the
// reference then dangles into reused from-space). Live local objects pass
// through untouched, so runs without stale promotion words are
// schedule-identical.
func (vp *VProc) forwardClass(a heap.Addr) (na heap.Addr, h uint64, need bool) {
	rt := vp.rt
	if a == 0 {
		return a, 0, false
	}
	r := rt.Space.Region(a.RegionID())
	for r.Kind != heap.RegionChunk {
		lw := r.Words[a.Word()-1]
		if heap.IsHeader(lw) {
			return a, 0, false // live local object: not the global collector's concern
		}
		a = heap.ForwardTarget(lw)
		r = rt.Space.Region(a.RegionID())
	}
	// Find the chunk: region IDs map 1:1 to chunk regions; the chunk
	// carries the from-space flag.
	c := rt.chunkOfRegion(r)
	if !c.FromSpace {
		return a, 0, false
	}
	h = rt.Space.Header(a)
	if !heap.IsHeader(h) {
		t := heap.ForwardTarget(h)
		if rt.Cfg.Debug {
			if tc := rt.Chunks.ChunkOf(t.RegionID()); tc != nil && tc.FromSpace {
				panic(fmt.Sprintf("core: forwarding target %v is itself from-space", t))
			}
		}
		return t, 0, false
	}
	return a, h, true
}

// globalCopy evacuates the from-space object at a (header h, read at
// classification time) into dst, which must have room, and returns the new
// address plus the copy charge. All mutations happen here, at the charge's
// virtual instant; the caller advances (direct style) or returns the
// duration from its step.
func (vp *VProc) globalCopy(a heap.Addr, h uint64, dst *heap.Chunk) (heap.Addr, int64) {
	rt := vp.rt
	r := rt.Space.Region(a.RegionID())
	n := heap.HeaderLen(h)
	na := dst.Bump(h)
	copy(rt.Space.Payload(na), r.Words[a.Word():a.Word()+n])
	rt.Space.SetHeader(a, heap.MakeForward(na))
	rt.global.copied += int64(n + 1)
	if rt.Cfg.Debug {
		heap.ScanObject(rt.Space, rt.Descs, na, func(slot int, p heap.Addr) heap.Addr {
			if p != 0 {
				if p.RegionID() < 0 || p.RegionID() >= rt.Space.NumRegions() {
					panic(fmt.Sprintf("core: global copy of %v has garbage pointer %v in slot %d", a, p, slot))
				}
				if pr := rt.Space.Region(p.RegionID()); pr.Kind == heap.RegionLocal {
					panic(fmt.Sprintf("core: global copy of %v points into vproc %d local heap (slot %d)", a, pr.Owner, slot))
				}
			}
			return p
		})
	}

	// Global copies always move metered DRAM traffic on both sides, so
	// there is nothing to fuse: the charge advances at its exact instant
	// (the batched-charge contract only covers meterless transfers).
	srcNode := rt.Space.NodeOf(a)
	dstNode := rt.Space.NodeOf(na)
	return na, rt.Machine.CopyStreamCost(vp.Now(), vp.Core, srcNode, dstNode, (n+1)*8,
		numa.AccessMemory, numa.AccessMemory)
}

// globalScanRoots scans the vproc's roots and entire local heap for
// pointers into from-space (§3.4: "scans the vproc's roots and local heap,
// placing any objects pointed-to into this new to-space chunk"). The walk
// normally runs as a step-driven iterator (stepscan.go) so the N vprocs'
// finely interleaved copy charges cost inline steps, not goroutine
// handoffs; the NoStepKernels ablation forces the direct form, which is
// schedule-identical.
//
// withNursery extends the local-heap walk over the live nursery
// [NurseryStart, Alloc): the concurrent collector's STW windows skip the
// minor/major collections the legacy protocol runs first, so nursery data
// is part of the root set there. The legacy path passes false and is
// untouched.
func (vp *VProc) globalScanRoots(withNursery bool) {
	if vp.rt.Cfg.NoStepKernels {
		vp.globalScanRootsDirect(withNursery)
		return
	}
	vp.globalScanRootsStep(withNursery)
}

// globalScanRootsDirect is the direct-style root walk: every copy charge is
// its own Advance.
func (vp *VProc) globalScanRootsDirect(withNursery bool) {
	rt := vp.rt
	fw := vp.globalForward
	for i, a := range vp.roots {
		vp.roots[i] = fw(a)
	}
	vp.queue.each(func(t *Task) {
		for i, a := range t.env {
			t.env[i] = fw(a)
		}
	})
	for i, pa := range vp.proxies {
		npa := fw(pa)
		vp.proxies[i] = npa
		// The proxy's local slot is normally a local-heap address (passed
		// through untouched), but the major collection that precedes this
		// phase may have promoted the proxied object, leaving a *global*
		// address in the local slot — which is from-space now. Only the
		// owner sees the slot, so the owner forwards it; the chunk
		// scanners trace just the global slot.
		p := rt.Space.Payload(npa)
		p[heap.ProxyLocalSlot] = uint64(fw(heap.Addr(p[heap.ProxyLocalSlot])))
	}
	if vp.proxyIdx != nil {
		// The proxies moved; rebuild the address index.
		clear(vp.proxyIdx)
		for i, pa := range vp.proxies {
			vp.proxyIdx[pa] = i
		}
	}
	for _, t := range vp.resultTasks {
		t.result = fw(t.result)
	}
	for _, r := range vp.parked {
		for i, a := range r.env {
			r.env[i] = fw(a)
		}
	}
	// Walk the local heap (young data only, after the preceding
	// minor+major).
	lh := vp.Local
	words := lh.Region.Words
	walkRange := func(lo, hi int) {
		for scan := lo; scan < hi; {
			h := words[scan]
			var n int
			if heap.IsHeader(h) {
				obj := heap.MakeAddr(lh.Region.ID, scan+1)
				heap.ScanObject(rt.Space, rt.Descs, obj, func(_ int, p heap.Addr) heap.Addr {
					return fw(p)
				})
				n = heap.HeaderLen(h)
			} else {
				n = rt.Space.ObjectLen(heap.ForwardTarget(h))
			}
			scan += n + 1
		}
	}
	walked := lh.OldTop - 1
	walkRange(1, lh.OldTop)
	if withNursery {
		walkRange(lh.NurseryStart, lh.Alloc)
		walked += lh.Alloc - lh.NurseryStart
	}
	// Charge the local-heap walk as a single streaming read: the whole
	// walk is one fused charge (the maximal batch), not one per object.
	node := rt.Space.NodeOf(heap.MakeAddr(lh.Region.ID, 1))
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, walked*8, numa.AccessCache))
}

// repairLocalForwarding rewrites the promotion forwarding words of this
// vproc's local heap at the end of a global collection's scan phase. A
// promotion leaves a forwarding word in the local heap whose target is about
// to be condemned with its chunk: if the promoted object was evacuated (it
// was reachable), the word is re-aimed at the to-space copy, so later
// resolutions and heap walks never chase into from-space; if it was not (the
// object is garbage — every traced reference was resolved past the word by
// forwardClass), the word is neutralized into a dead raw header of the same
// size, keeping the heap walkable without referencing the released chunk.
// The repair is collector metadata maintenance folded into the scan phase:
// it reads only state the scan already touched and is not charged, so
// schedules are unchanged.
func (vp *VProc) repairLocalForwarding() {
	vp.repairForwardingRange(1, vp.Local.OldTop)
}

// repairNurseryForwarding is the nursery half of the repair. Live vprocs
// never need it — the minor+major collections that precede the global phase
// empty their nurseries — but a crashed vproc's heap is frozen mid-mutation
// with live nursery data (and possibly promotion forwarding words there),
// so the adopting leader repairs both ranges.
func (vp *VProc) repairNurseryForwarding() {
	vp.repairForwardingRange(vp.Local.NurseryStart, vp.Local.Alloc)
}

// repairForwardingRange rewrites the promotion forwarding words in local
// words [lo, hi); see repairLocalForwarding for the protocol argument.
func (vp *VProc) repairForwardingRange(lo, hi int) {
	rt := vp.rt
	lh := vp.Local
	words := lh.Region.Words
	for scan := lo; scan < hi; {
		h := words[scan]
		var n int
		if heap.IsHeader(h) {
			n = heap.HeaderLen(h)
		} else {
			t := heap.ForwardTarget(h)
			if c := rt.Chunks.ChunkOf(t.RegionID()); c != nil && !c.FromSpace {
				// The target is already a live to-space object: a
				// promotion that ran during the concurrent mark forwarded
				// straight into to-space. The word is correct as it
				// stands. (In the legacy STW protocol every chunk is
				// condemned before any repair runs, so this arm never
				// fires there.)
				n = rt.Space.ObjectLen(t)
			} else if th := rt.Space.Header(t); heap.IsHeader(th) {
				// Unevacuated: dead with its chunk.
				n = heap.HeaderLen(th)
				words[scan] = heap.MakeHeader(heap.IDRaw, n)
			} else {
				nt := heap.ForwardTarget(th)
				words[scan] = heap.MakeForward(nt)
				n = rt.Space.ObjectLen(nt)
			}
		}
		scan += n + 1
	}
}

// enqueueScan registers a to-space chunk as holding unscanned data.
func (rt *Runtime) enqueueScan(c *heap.Chunk) {
	if rt.Cfg.Debug {
		for n, l := range rt.global.scanByNode {
			for _, q := range l {
				if q == c {
					panic(fmt.Sprintf("core: chunk r%d double-enqueued on scan list %d (scan=%d top=%d owner=%d)",
						c.Region.ID, n, c.Scan, c.Top, c.Owner))
				}
			}
		}
		for _, vp := range rt.VProcs {
			if vp.scanningChunk == c {
				panic(fmt.Sprintf("core: chunk r%d enqueued while vproc %d is mid-object in it", c.Region.ID, vp.ID))
			}
		}
	}
	node := c.Node
	if !rt.Cfg.NodeLocalScan {
		node = 0 // ablation: one shared list
	}
	rt.global.scanByNode[node] = append(rt.global.scanByNode[node], c)
}

// globalScanLoop drains unscanned to-space data: first the vproc's own
// current chunk, then pending chunks from its node's list (falling back to
// other nodes' lists only when its own is empty, charging the remote
// synchronization), until no unscanned data remains anywhere. Like the root
// walk it runs step-driven by default (the stop-the-world scan phase is
// where all N vprocs interleave chunk-by-chunk) with the direct form kept
// as the NoStepKernels ablation.
func (vp *VProc) globalScanLoop() {
	if vp.rt.Cfg.NoStepKernels {
		vp.globalScanLoopDirect()
		return
	}
	vp.globalScanLoopStep()
}

// globalScanLoopDirect is the direct-style scan loop.
func (vp *VProc) globalScanLoopDirect() {
	rt := vp.rt
	for {
		// Drain our own allocation chunk incrementally.
		progressed := false
		for c := vp.curChunk; c != nil && c.Scan < c.Top; {
			progressed = true
			vp.scanChunkStep(c)
			if vp.curChunk != c {
				// The chunk filled mid-scan and was replaced;
				// getChunk queued it for later completion.
				break
			}
		}
		// Pop a pending chunk, preferring the local node.
		if c := vp.popScanChunk(); c != nil {
			for c.Scan < c.Top {
				vp.scanChunkStep(c)
			}
			progressed = true
		}
		if progressed {
			continue
		}
		if rt.globalScanDrained() {
			return
		}
		vp.advance(rt.Cfg.PollNs)
	}
}

// scanChunkStep scans one object of the chunk, copying its from-space
// referents (which may fill the scanner's current chunk and swap it).
func (vp *VProc) scanChunkStep(c *heap.Chunk) {
	rt := vp.rt
	h := c.Region.Words[c.Scan]
	if !heap.IsHeader(h) {
		panic(fmt.Sprintf("core: forwarding pointer in global to-space (vproc %d, chunk r%d node %d from=%v scan=%d top=%d owner=%d word=%#x target=%v)",
			vp.ID, c.Region.ID, c.Node, c.FromSpace, c.Scan, c.Top, c.Owner, h, heap.ForwardTarget(h)))
	}
	obj := heap.MakeAddr(c.Region.ID, c.Scan+1)
	vp.scanningChunk = c
	heap.ScanObject(rt.Space, rt.Descs, obj, func(_ int, p heap.Addr) heap.Addr {
		return vp.globalForward(p)
	})
	vp.scanningChunk = nil
	c.Scan += heap.HeaderLen(h) + 1
	if vp.deferredEnqueue {
		vp.deferredEnqueue = false
		if c.Scan < c.Top {
			rt.enqueueScan(c)
		}
	}
}

// popScanChunk takes a pending chunk, node-local first.
func (vp *VProc) popScanChunk() *heap.Chunk {
	c, d := vp.popScanChunkStart()
	if c != nil {
		vp.advance(d)
	}
	return c
}

// popScanChunkStart is popScanChunk's pre-charge half: it pops the chunk
// and returns it with the synchronization charge, for the step-driven loop
// to return from its turn.
func (vp *VProc) popScanChunkStart() (*heap.Chunk, int64) {
	rt := vp.rt
	g := &rt.global
	take := func(node int) *heap.Chunk {
		l := g.scanByNode[node]
		if len(l) == 0 {
			return nil
		}
		c := l[len(l)-1]
		g.scanByNode[node] = l[:len(l)-1]
		return c
	}
	if c := take(nodeListFor(rt, vp.Node)); c != nil {
		return c, rt.Cfg.ChunkSyncLocalNs
	}
	for n := range g.scanByNode {
		if c := take(n); c != nil {
			// Cross-node fallback keeps the collection live when a
			// node has pending chunks but no vproc.
			rt.Stats.CrossNodeScanned++
			return c, rt.Cfg.ChunkSyncGlobalNs
		}
	}
	return nil, 0
}

// nodeListFor maps a vproc's node to its scan list, honoring the
// shared-list ablation.
func nodeListFor(rt *Runtime, node int) int {
	if !rt.Cfg.NodeLocalScan {
		return 0
	}
	return node
}

// globalScanDrained reports whether no unscanned to-space data remains.
func (rt *Runtime) globalScanDrained() bool {
	for _, l := range rt.global.scanByNode {
		if len(l) > 0 {
			return false
		}
	}
	for _, o := range rt.VProcs {
		if o.curChunk != nil && o.curChunk.Scan < o.curChunk.Top {
			return false
		}
	}
	return true
}

// chunkOfRegion finds the chunk owning a chunk region.
func (rt *Runtime) chunkOfRegion(r *heap.Region) *heap.Chunk {
	c := rt.Chunks.ChunkOf(r.ID)
	if c == nil {
		panic(fmt.Sprintf("core: region %d has no chunk", r.ID))
	}
	return c
}
