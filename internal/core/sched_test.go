package core

import (
	"testing"

	"repro/internal/heap"
)

func TestDequeOrdering(t *testing.T) {
	var d deque
	t1, t2, t3 := &Task{}, &Task{}, &Task{}
	d.pushBottom(t1)
	d.pushBottom(t2)
	d.pushBottom(t3)
	// Owner pops LIFO.
	if d.popBottom() != t3 {
		t.Error("popBottom should return the newest task")
	}
	// Thieves steal FIFO (the oldest — typically largest — task).
	if d.popTop() != t1 {
		t.Error("popTop should return the oldest task")
	}
	if d.size() != 1 {
		t.Errorf("size = %d, want 1", d.size())
	}
	if !d.removeTask(t2) {
		t.Error("removeTask failed for a queued task")
	}
	if d.removeTask(t2) {
		t.Error("removeTask succeeded twice")
	}
	if d.popBottom() != nil || d.popTop() != nil {
		t.Error("empty deque should return nil")
	}
}

func TestForkJoinRunsBothSides(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	var left, right bool
	rt.Run(func(vp *VProc) {
		vp.ForkJoin(
			func(vp *VProc, _ Env) { left = true; vp.Compute(100) },
			func(vp *VProc, _ Env) { right = true; vp.Compute(100) },
			nil, nil)
	})
	if !left || !right {
		t.Errorf("forkjoin: left=%v right=%v", left, right)
	}
}

func TestJoinResultInlineStaysLocal(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		task := vp.SpawnResult(func(vp *VProc, _ Env) heap.Addr {
			return vp.AllocRaw([]uint64{77})
		})
		r := vp.JoinResult(task)
		// Ran inline on the owner: the result must still be in the
		// owner's local heap (no gratuitous promotion).
		if rt.Space.Region(r.RegionID()).Kind != heap.RegionLocal {
			t.Error("inline task result was promoted")
		}
		rs := vp.PushRoot(r)
		if vp.LoadWord(vp.Root(rs), 0) != 77 {
			t.Error("result payload wrong")
		}
		vp.PopRoots(1)
	})
}

func TestJoinResultStolenIsPromoted(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	var stolen bool
	rt.Run(func(vp *VProc) {
		task := vp.SpawnResult(func(tvp *VProc, _ Env) heap.Addr {
			stolen = tvp.ID != 0
			return tvp.AllocRaw([]uint64{88})
		})
		vp.Compute(1_000_000) // give vproc 1 time to steal
		r := vp.JoinResult(task)
		rs := vp.PushRoot(r)
		if vp.LoadWord(vp.Root(rs), 0) != 88 {
			t.Error("result payload wrong")
		}
		if stolen && rt.Space.Region(vp.Resolve(vp.Root(rs)).RegionID()).Kind != heap.RegionChunk {
			t.Error("stolen task result was not promoted")
		}
		vp.PopRoots(1)
	})
	if !stolen {
		t.Skip("scheduler kept the task local; promotion path not exercised")
	}
}

func TestResultSurvivesExecutorGC(t *testing.T) {
	// A completed-but-unjoined result must be a GC root of its executor.
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		task := vp.SpawnResult(func(vp *VProc, _ Env) heap.Addr {
			return vp.AllocRaw([]uint64{4242})
		})
		// Run it inline via Join, then churn before reading the result.
		vp.Join(task)
		churn(vp, 2000, 4)
		r := vp.JoinResult(task)
		rs := vp.PushRoot(r)
		if got := vp.LoadWord(vp.Root(rs), 0); got != 4242 {
			t.Errorf("result after churn = %d, want 4242", got)
		}
		vp.PopRoots(1)
	})
}

func TestMakeEnv(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		a := vp.AllocRaw([]uint64{5})
		env := vp.MakeEnv(a)
		churn(vp, 1000, 4) // move a via collections
		got := vp.LoadWord(env.Get(vp, 0), 0)
		if got != 5 {
			t.Errorf("env value after GC = %d, want 5", got)
		}
		env.Set(vp, 0, 0)
		if env.Get(vp, 0) != 0 {
			t.Error("env.Set did not stick")
		}
		vp.PopRoots(1)
	})
}

func TestEnvBoundsChecks(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		env := vp.MakeEnv(0)
		defer vp.PopRoots(1)
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range Env.Get")
			}
		}()
		env.Get(vp, 1)
	})
}

func TestEagerPromotionAblation(t *testing.T) {
	cfg := stressConfig(1)
	cfg.LazyPromotion = false
	rt := MustNewRuntime(cfg)
	rt.Run(func(vp *VProc) {
		a := buildTree(vp, 3, 1)
		s := vp.PushRoot(a)
		task := vp.Spawn(func(vp *VProc, env Env) {
			// Even unstolen, eager promotion moved the environment
			// to the global heap at spawn time.
			r := vp.rt.Space.Region(vp.Resolve(env.Get(vp, 0)).RegionID())
			if r.Kind != heap.RegionChunk {
				t.Error("eager promotion did not promote at spawn")
			}
		}, vp.Root(s))
		vp.Join(task)
		vp.PopRoots(1)
	})
	if rt.TotalStats().PromotedWords == 0 {
		t.Error("eager promotion promoted nothing")
	}
}

func TestServiceSchedulerRunsTasks(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		var ran bool
		vp.Spawn(func(vp *VProc, _ Env) { ran = true })
		for !ran {
			vp.ServiceScheduler()
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	rt := MustNewRuntime(stressConfig(4))
	rt.Run(func(vp *VProc) {
		for i := 0; i < 16; i++ {
			vp.Spawn(func(vp *VProc, _ Env) {
				churn(vp, 200, 4)
			})
		}
	})
	total := rt.TotalStats()
	if total.TasksRun != 17 { // 16 + the entry task
		t.Errorf("TasksRun = %d, want 17", total.TasksRun)
	}
	if total.AllocWords == 0 || total.MinorGCs == 0 {
		t.Error("expected allocation and minor GCs")
	}
}

func TestDequeRingWrap(t *testing.T) {
	var d deque
	var ts []*Task
	for i := 0; i < 20; i++ {
		ts = append(ts, &Task{})
	}
	// Interleave pushes and top-pops so head walks around the ring across
	// several growths.
	next := 0
	var popped []*Task
	for round := 0; round < 6; round++ {
		for i := 0; i < 3 && next < len(ts); i++ {
			d.pushBottom(ts[next])
			next++
		}
		if p := d.popTop(); p != nil {
			popped = append(popped, p)
		}
	}
	for p := d.popTop(); p != nil; p = d.popTop() {
		popped = append(popped, p)
	}
	if len(popped) != next {
		t.Fatalf("popped %d tasks, pushed %d", len(popped), next)
	}
	// FIFO across the whole sequence: top-pops must come out in push order.
	for i, p := range popped {
		if p != ts[i] {
			t.Fatalf("popTop order broken at %d", i)
		}
	}
	if d.size() != 0 {
		t.Fatalf("size = %d after draining, want 0", d.size())
	}
}

func TestDequeRemoveAcrossWrap(t *testing.T) {
	var d deque
	var ts []*Task
	for i := 0; i < 8; i++ {
		ts = append(ts, &Task{})
	}
	for _, task := range ts[:6] {
		d.pushBottom(task)
	}
	// Advance head so the live window wraps the backing array.
	d.popTop()
	d.popTop()
	d.pushBottom(ts[6])
	d.pushBottom(ts[7])
	if !d.removeTask(ts[4]) {
		t.Fatal("removeTask failed for queued task")
	}
	if d.removeTask(ts[0]) {
		t.Fatal("removeTask succeeded for already-popped task")
	}
	want := []*Task{ts[2], ts[3], ts[5], ts[6], ts[7]}
	if d.size() != len(want) {
		t.Fatalf("size = %d, want %d", d.size(), len(want))
	}
	for i, w := range want {
		if got := d.popTop(); got != w {
			t.Fatalf("popTop %d: wrong task (order not preserved); want index %d", i, i)
		}
	}
}
