package core

import (
	"testing"

	"repro/internal/heap"
)

// TestSleepUntilExact: a sleeping vproc resumes exactly at its deadline, and
// repeated sleeps across vprocs interleave by the min-clock rule.
func TestSleepUntilExact(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		vp.SleepUntil(100_000)
		if vp.Now() != 100_000 {
			t.Errorf("woke at %d, want exactly 100000", vp.Now())
		}
		vp.SleepFor(2_500)
		if vp.Now() != 102_500 {
			t.Errorf("woke at %d, want exactly 102500", vp.Now())
		}
		// A deadline in the past is a no-op.
		vp.SleepUntil(50_000)
		if vp.Now() != 102_500 {
			t.Errorf("past deadline moved the clock to %d", vp.Now())
		}
	})
}

// TestSleepServicesGlobalGC: a vproc parked in SleepUntil must not stall the
// stop-the-world protocol — a global collection triggered by another vproc
// completes long before the sleeper's deadline, and the sleeper still wakes
// exactly on time.
func TestSleepServicesGlobalGC(t *testing.T) {
	cfg := stressConfig(2)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	const deadline = 80_000_000 // far beyond the mutator's run
	var gcEndAt int64
	rt.SetTracer(func(ev GCEvent) {
		if ev.Kind == EvGlobalEnd && gcEndAt == 0 {
			gcEndAt = ev.At
		}
	})
	var wokeAt int64
	rt.Run(func(vp *VProc) {
		vp.Spawn(func(mvp *VProc, _ Env) {
			// Stolen by vproc 1: force global collections while vproc 0
			// sleeps.
			for i := 0; i < 8; i++ {
				b := buildTree(mvp, 6, uint64(i))
				bs := mvp.PushRoot(b)
				mvp.PromoteRoot(bs)
				mvp.PopRoots(1)
				churn(mvp, 500, 6)
			}
		})
		vp.SleepUntil(deadline)
		wokeAt = vp.Now()
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection")
	}
	if gcEndAt == 0 || gcEndAt >= deadline {
		t.Errorf("global GC finished at %d; a sleeping vproc stalled the stop-the-world protocol (deadline %d)", gcEndAt, deadline)
	}
	if wokeAt != deadline {
		t.Errorf("sleeper woke at %d, want exactly %d", wokeAt, deadline)
	}
}

// TestAfterThenFiresExactly: timer continuations fire exactly at their
// deadlines while the owner is idle, in (deadline, registration) order.
func TestAfterThenFiresExactly(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	type firing struct {
		label string
		at    int64
	}
	var fired []firing
	var deadlines []int64
	rt.Run(func(vp *VProc) {
		base := vp.Now()
		// Registered out of deadline order; "b" and "c" share a deadline
		// and must fire in registration order.
		for _, tm := range []struct {
			label string
			delay int64
		}{{"a", 30_000}, {"b", 10_000}, {"c", 10_000}, {"d", 20_000}} {
			tm := tm
			deadlines = append(deadlines, base+tm.delay)
			vp.AfterThen(tm.delay, nil, func(vp *VProc, _ Env) {
				fired = append(fired, firing{tm.label, vp.Now()})
			})
		}
	})
	want := []string{"b", "c", "d", "a"}
	wantAt := []int64{deadlines[1], deadlines[2], deadlines[3], deadlines[0]}
	if len(fired) != len(want) {
		t.Fatalf("fired %d timers, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i].label != want[i] {
			t.Errorf("firing %d = %q, want %q", i, fired[i].label, want[i])
		}
		if fired[i].at != wantAt[i] {
			t.Errorf("firing %d (%q) ran at %d, want exactly %d", i, fired[i].label, fired[i].at, wantAt[i])
		}
	}
	total := rt.TotalStats()
	if total.TimersFired != 4 {
		t.Errorf("TimersFired = %d, want 4", total.TimersFired)
	}
}

// TestAfterThenEnvSurvivesCollections: the captured environment of a parked
// timer continuation is a GC root; it must be forwarded by minor, major and
// global collections while the timer is armed.
func TestAfterThenEnvSurvivesCollections(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	var envSum uint64
	rt.Run(func(vp *VProc) {
		captured := vp.AllocRaw([]uint64{400, 500})
		cs := vp.PushRoot(captured)
		// A deadline far past the churn below: the environment is parked
		// across every collection flavor before the timer fires.
		vp.AfterThen(60_000_000, []heap.Addr{vp.Root(cs)}, func(vp *VProc, env Env) {
			c := env.Get(vp, 0)
			envSum = vp.LoadWord(c, 0) + vp.LoadWord(c, 1)
		})
		vp.PopRoots(1) // the parked timer is now the only root

		for i := 0; i < 10; i++ {
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 400, 6)
		}
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection")
	}
	if envSum != 900 {
		t.Errorf("captured environment corrupted: sum=%d, want 900", envSum)
	}
}

// TestSelectThenTimeoutExpires: with no sender, the timeout fires exactly at
// its deadline and delivers which == -1 with a nil message.
func TestSelectThenTimeoutExpires(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	ch := rt.NewChannel()
	var which, calls int
	var msg heap.Addr
	var firedAt, deadline int64
	rt.Run(func(vp *VProc) {
		deadline = vp.Now() + 25_000
		vp.SelectThenTimeout([]*Channel{ch}, 25_000, nil, func(vp *VProc, _ Env, w int, m heap.Addr) {
			which, msg = w, m
			firedAt = vp.Now()
			calls++
		})
	})
	if calls != 1 {
		t.Fatalf("continuation ran %d times, want exactly once", calls)
	}
	if which != -1 || msg != 0 {
		t.Errorf("timeout delivered (%d, %v), want (-1, 0)", which, msg)
	}
	if firedAt != deadline {
		t.Errorf("timeout fired at %d, want exactly %d", firedAt, deadline)
	}
}

// TestSelectThenTimeoutMessageWins: a message delivered before the deadline
// claims the continuation; the timer entry goes stale and must neither
// double-run the continuation nor disturb later channel use (the lost-wakeup
// / double-wake audit of the timer-vs-ring claim protocol).
func TestSelectThenTimeoutMessageWins(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	ch := rt.NewChannel()
	var calls, which int
	var got uint64
	rt.Run(func(vp *VProc) {
		vp.SelectThenTimeout([]*Channel{ch}, 50_000_000, nil, func(vp *VProc, _ Env, w int, m heap.Addr) {
			calls++
			which = w
			if m != 0 {
				got = vp.LoadWord(m, 0)
			}
		})
		m := vp.AllocRaw([]uint64{11})
		s := vp.PushRoot(m)
		ch.Send(vp, s)
		vp.PopRoots(1)
		// Outlive the stale timer's deadline so a double-wake would be
		// observable before Run returns.
		vp.SleepFor(60_000_000)
	})
	if calls != 1 {
		t.Fatalf("continuation ran %d times, want exactly once", calls)
	}
	if which != 0 || got != 11 {
		t.Errorf("delivered (%d, %d), want (0, 11)", which, got)
	}
	if ts := rt.TotalStats(); ts.TimersFired != 0 {
		t.Errorf("stale timer fired %d continuations, want 0", ts.TimersFired)
	}
}

// TestSelectThenTimeoutLostWakeup: a message sent after the timeout expired
// must not vanish — the stale ring registration is skipped and the message
// stays on the pending chain for the next receiver.
func TestSelectThenTimeoutLostWakeup(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	ch := rt.NewChannel()
	var timeouts int
	rt.Run(func(vp *VProc) {
		vp.SelectThenTimeout([]*Channel{ch}, 10_000, nil, func(vp *VProc, _ Env, w int, _ heap.Addr) {
			if w != -1 {
				t.Errorf("which = %d, want -1 (timeout)", w)
			}
			timeouts++
		})
		vp.SleepFor(20_000) // let the timeout fire and its task run

		m := vp.AllocRaw([]uint64{23})
		s := vp.PushRoot(m)
		ch.Send(vp, s)
		vp.PopRoots(1)
		if ch.Len() != 1 {
			t.Errorf("message should enqueue past the stale registration; Len = %d", ch.Len())
		}
		got, ok := ch.TryRecv(vp)
		if !ok || vp.LoadWord(got, 0) != 23 {
			t.Error("message lost after a timed-out registration")
		}
	})
	if timeouts != 1 {
		t.Errorf("timeout continuation ran %d times, want 1", timeouts)
	}
}

// TestRecvThenTimeout: the single-channel wrapper reports ok=false on
// timeout and ok=true with the message otherwise.
func TestRecvThenTimeout(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	a, b := rt.NewChannel(), rt.NewChannel()
	var timedOut, delivered bool
	var got uint64
	rt.Run(func(vp *VProc) {
		a.RecvThenTimeout(vp, 5_000, nil, func(vp *VProc, _ Env, _ heap.Addr, ok bool) {
			timedOut = !ok
		})
		b.RecvThenTimeout(vp, 50_000_000, nil, func(vp *VProc, _ Env, m heap.Addr, ok bool) {
			if ok {
				delivered = true
				got = vp.LoadWord(m, 0)
			}
		})
		m := vp.AllocRaw([]uint64{31})
		s := vp.PushRoot(m)
		b.Send(vp, s)
		vp.PopRoots(1)
		vp.SleepFor(10_000)
	})
	if !timedOut {
		t.Error("empty channel's receive should time out")
	}
	if !delivered || got != 31 {
		t.Errorf("delivered=%v got=%d, want true, 31", delivered, got)
	}
}

// TestTimedSelectStress: many timed selects racing senders whose arrival
// instants straddle the deadlines; every continuation must run exactly once
// (no lost wakeups, no double wakes), and two runs must agree exactly — the
// claim-protocol regression test alongside the register-before-probe ones.
func TestTimedSelectStress(t *testing.T) {
	run := func() (timeouts, deliveries int, sum uint64, makespan int64) {
		cfg := stressConfig(3)
		cfg.GlobalTriggerWords = 6 * cfg.ChunkWords
		rt := MustNewRuntime(cfg)
		const n = 40
		chans := make([]*Channel, n)
		for i := range chans {
			chans[i] = rt.NewChannel()
		}
		ran := make([]int, n)
		rt.Run(func(vp *VProc) {
			for i := 0; i < n; i++ {
				i := i
				// Timeouts step across the senders' arrival times, so some
				// selects time out, some receive, and several collide near
				// the boundary.
				vp.SelectThenTimeout([]*Channel{chans[i]}, int64(1000*(i+1)), nil,
					func(vp *VProc, _ Env, w int, m heap.Addr) {
						ran[i]++
						if w == -1 {
							timeouts++
						} else {
							deliveries++
							sum += vp.LoadWord(m, 0)
						}
					})
			}
			for i := 0; i < n; i++ {
				i := i
				vp.AfterThen(int64(1000*(n-i)), nil, func(vp *VProc, _ Env) {
					m := vp.AllocRaw([]uint64{uint64(i + 1)})
					s := vp.PushRoot(m)
					chans[i].Send(vp, s)
					vp.PopRoots(1)
				})
			}
		})
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("select %d ran %d times, want exactly once", i, c)
			}
		}
		if timeouts+deliveries != n {
			t.Fatalf("timeouts %d + deliveries %d != %d", timeouts, deliveries, n)
		}
		// Undelivered messages must still be pending, not lost.
		pending := 0
		for _, ch := range chans {
			pending += ch.Len()
		}
		if pending != timeouts {
			t.Fatalf("pending = %d, want %d (one per timed-out select)", pending, timeouts)
		}
		return timeouts, deliveries, sum, rt.Eng.MaxClock()
	}
	t1, d1, s1, m1 := run()
	t2, d2, s2, m2 := run()
	if t1 != t2 || d1 != d2 || s1 != s2 || m1 != m2 {
		t.Errorf("timed-select stress not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			t1, d1, s1, m1, t2, d2, s2, m2)
	}
	if t1 == 0 || d1 == 0 {
		t.Errorf("stress should exercise both outcomes: timeouts=%d deliveries=%d", t1, d1)
	}
}

// TestTimerRetiredWhenReplyWins: a delivery that claims a timed rendezvous
// must remove its timeout from the timer queue outright (vtime.Remove), not
// merely leave a stale entry to be skipped — a retired deadline must no
// longer occupy queue space or clamp idle charges.
func TestTimerRetiredWhenReplyWins(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	ch := rt.NewChannel()
	var calls int
	var pendingAfterWin int
	rt.Run(func(vp *VProc) {
		vp.SelectThenTimeout([]*Channel{ch}, 50_000_000, nil, func(vp *VProc, _ Env, w int, m heap.Addr) {
			calls++
		})
		if vp.timers.Len() != 1 {
			t.Errorf("timeout not armed: %d timers pending", vp.timers.Len())
		}
		m := vp.AllocRaw([]uint64{7})
		s := vp.PushRoot(m)
		ch.Send(vp, s)
		vp.PopRoots(1)
		pendingAfterWin = vp.timers.Len()
	})
	if calls != 1 {
		t.Fatalf("continuation ran %d times, want exactly once", calls)
	}
	if pendingAfterWin != 0 {
		t.Errorf("%d timer(s) still pending after the reply won; want 0 (cancelled)", pendingAfterWin)
	}
	if ts := rt.TotalStats(); ts.TimersFired != 0 {
		t.Errorf("cancelled timer fired %d continuations, want 0", ts.TimersFired)
	}
}
