package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
	"repro/internal/vtime"
)

// VProc is a virtual processor (§2.2): an abstraction of a computational
// resource hosted by its own (virtual) thread pinned to a physical core,
// with a private local heap, a current global-heap chunk, and a local work
// queue.
type VProc struct {
	ID   int
	Core int
	Node int

	rt    *Runtime
	proc  *vtime.Proc
	Local *heap.LocalHeap

	// curChunk is the vproc's current global-heap chunk (§3.1).
	curChunk *heap.Chunk

	// roots is the shadow root stack. Workloads address roots by slot
	// index because collections rewrite the entries in place.
	roots []heap.Addr

	// queue is the vproc-local work deque; queued tasks' environments
	// are GC roots.
	queue deque

	// proxies holds the global-heap addresses of proxy objects owned by
	// this vproc; their local slots are additional local-GC roots.
	// proxyIdx maps each registered proxy to its index so dropProxy is
	// O(1) swap-remove instead of a linear scan (channel-heavy workloads
	// resolve proxies constantly). Global collections move proxies and
	// rebuild the map.
	proxies  []heap.Addr
	proxyIdx map[heap.Addr]int

	// parked holds this vproc's parked receive continuations (see
	// channel.go); their captured environments are local-GC roots, like
	// queued task environments.
	parked []*rendezvous

	// timers is this vproc's deadline queue of parked timer continuations
	// (see timer.go). Serviced only by the owner, at safepoints; the
	// entries' rendezvous live on vp.parked, so their environments are
	// GC roots through the same scans.
	timers vtime.TimerQueue

	// pendingFaults holds fault-plan events whose deadlines have passed but
	// which have not executed yet: fireDueTimers can run inside engine step
	// functions where advancing and allocating are illegal, so it defers
	// fault bodies here and checkPreempt drains them on the vproc's own
	// goroutine (see faults.go). inFault guards re-entry — a stall fault
	// sleeping through checkPreempt must not start draining recursively.
	pendingFaults []*FaultEvent
	inFault       bool

	// resultTasks holds completed result-producing tasks this vproc
	// executed whose results have not been joined yet; the results are
	// GC roots of this vproc.
	resultTasks []*Task

	// scanningChunk is the to-space chunk this vproc is currently
	// stepping through during a global collection; if it fills and is
	// replaced mid-step, the re-enqueue is deferred until the step
	// completes (deferredEnqueue) so no second vproc scans it
	// concurrently.
	scanningChunk   *heap.Chunk
	deferredEnqueue bool

	// heapBusy is the virtual lock coordinating thieves with local
	// collections: set while this vproc's local heap is being collected
	// or while a thief is promoting out of it.
	heapBusy bool

	// assistDebt accumulates the words this vproc allocated in the global
	// heap while a concurrent mark was in flight; the next safepoint's
	// mark assist scans proportionally (allocation-paced assists, the
	// GOGC discipline). Only nonzero under Config.ConcurrentGlobal.
	assistDebt int

	// rng is a per-vproc deterministic PRNG for workload use.
	rng uint64

	// crashed marks a vproc killed by a FaultCrash. A crashed vproc never
	// runs again: its proc ended Done, its queue/parked/timers are empty,
	// and its local heap is retired — frozen in place, still readable by
	// thieves resolving proxies, never collected again (see crash.go).
	crashed bool

	// running is the stack of tasks currently executing on this vproc
	// (nested through inline Join); a crash reports them all lost so the
	// outstanding-work count stays exact.
	running []*Task

	// blocked registers this vproc's *blocking* channel waiters (Recv and
	// Select frames, which park the whole vproc). A crash marks them
	// claimed so later senders skip the dead rendezvous instead of
	// delivering into a vproc that will never wake.
	blocked []*rendezvous

	// owned lists channels registered to die with this vproc
	// (Channel.SetOwner): a crash fails them over to SendCrashed / nil
	// wakeups through the close-as-status protocol.
	owned []*Channel

	Stats VPStats
}

// VPStats collects per-vproc runtime statistics.
type VPStats struct {
	MinorGCs        int
	MajorGCs        int
	Promotions      int
	MinorCopied     int64 // words
	MajorCopied     int64 // words
	PromotedWords   int64
	GCNs            int64 // virtual time in local collections
	GlobalNs        int64 // virtual time in global collections
	TasksRun        int64
	Steals          int64
	FailedSteals    int64
	AllocWords      int64
	ChunksRequested int64
	ChanSends       int64 // channel messages sent
	ChanRecvs       int64 // channel messages received
	ChanHandoffs    int64 // sends delivered directly to a parked receiver
	ChanSheds       int64 // sends shed (TrySend on full, or send on closed)
	TimersFired     int64 // timer continuations fired at their deadlines
	FaultsInjected  int64 // fault-plan events executed on this vproc
	FaultStallNs    int64 // virtual time spent in injected stalls
	FaultBurstWords int64 // words allocated by injected heap-pressure bursts
	AllocFailed     int64 // TryAlloc*/TryPromote failures after the emergency ladder
	EmergencyGCs    int64 // emergency collection ladders walked by this vproc
	Crashes         int   // 1 if this vproc was killed by a FaultCrash
	LostTasks       int64 // queued + in-flight tasks lost to the crash
	LostConts       int64 // parked continuations cancelled by the crash
	LostTimers      int64 // pending timer deadlines cancelled by the crash
	BarrierHits     int64 // write-barrier shades that evacuated an object (concurrent GC)
	BarrierNs       int64 // virtual time charged to write-barrier evacuations
	MarkAssistWords int64 // gray words scanned by this vproc's mark assists
	MarkAssistNs    int64 // virtual time spent in mark assists
}

// Runtimer accessors.

// Runtime returns the owning runtime.
func (vp *VProc) Runtime() *Runtime { return vp.rt }

// Now returns the vproc's virtual clock (ns).
func (vp *VProc) Now() int64 { return vp.proc.Now() }

// Crashed reports whether a FaultCrash killed this vproc.
func (vp *VProc) Crashed() bool { return vp.crashed }

// advance charges virtual time.
func (vp *VProc) advance(d int64) { vp.proc.Advance(d) }

// Compute charges ns of pure computation.
func (vp *VProc) Compute(ns int64) {
	if ns > 0 {
		vp.proc.Advance(ns)
	}
}

// Rand returns a deterministic pseudo-random uint64 (xorshift64*).
func (vp *VProc) Rand() uint64 {
	x := vp.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	vp.rng = x
	return x * 0x2545F4914F6CDD1D
}

// --- Root stack ---------------------------------------------------------

// PushRoot registers a heap address as a GC root and returns its slot.
func (vp *VProc) PushRoot(a heap.Addr) int {
	vp.roots = append(vp.roots, a)
	return len(vp.roots) - 1
}

// Root reads a root slot (collections may have rewritten it).
func (vp *VProc) Root(slot int) heap.Addr { return vp.roots[slot] }

// SetRoot overwrites a root slot.
func (vp *VProc) SetRoot(slot int, a heap.Addr) { vp.roots[slot] = a }

// PopRoots discards the top n root slots.
func (vp *VProc) PopRoots(n int) {
	if n > len(vp.roots) {
		panic("core: PopRoots underflow")
	}
	vp.roots = vp.roots[:len(vp.roots)-n]
}

// RootDepth returns the current root-stack depth, for save/restore.
func (vp *VProc) RootDepth() int { return len(vp.roots) }

// TruncateRoots resets the root stack to a saved depth.
func (vp *VProc) TruncateRoots(depth int) { vp.roots = vp.roots[:depth] }

// --- Allocation ---------------------------------------------------------

// safepoint is executed before every allocation: it services pending
// preemption signals (global collection requests, §3.4 step 2), fires due
// timers, waits out a thief that is promoting from this heap, and runs
// minor/major collections until the requested payload fits in the nursery.
func (vp *VProc) safepoint(needWords int) {
	if vp.timers.Len() != 0 {
		vp.fireDueTimers()
	}
	for {
		vp.waitHeapIdle()
		if vp.Local.LimitZeroed() {
			vp.Local.RestoreLimit()
		}
		if vp.rt.global.pending {
			vp.participateGlobal()
			// A new signal can arrive at any time; re-check from
			// the top.
			continue
		}
		if vp.rt.global.termPending {
			vp.participateTermination()
			continue
		}
		if vp.rt.global.marking {
			// Concurrent mark in flight: pay down the allocation-paced
			// assist debt before allocating more. The assist can drain
			// the mark and request termination; re-check from the top.
			vp.gcMarkPoint()
			if vp.rt.global.termPending {
				continue
			}
		}
		if vp.Local.CanAlloc(needWords) {
			return
		}
		vp.minorGC()
		// A minor collection triggers a major collection when the new
		// nursery falls below threshold or a global GC is pending
		// (§3.3); minorGC handles that. A global request arriving
		// during the collection re-zeroes the limit, so only a clean
		// post-collection failure means the object is too large.
		if !vp.Local.CanAlloc(needWords) && !vp.Local.LimitZeroed() && !vp.rt.global.pending {
			panic(fmt.Sprintf("core: object of %d words cannot fit vproc %d nursery (%d words); use smaller leaves",
				needWords, vp.ID, vp.Local.NurseryWords()))
		}
	}
}

// waitHeapIdle spins (in virtual time, through the engine's inline-step
// path) until no thief is promoting out of this vproc's heap. Every path
// that is about to collect — the allocation safepoint and the preemption
// service — must pass through it: a collection under an in-flight promotion
// moves the objects the promoter's addresses name.
func (vp *VProc) waitHeapIdle() {
	if !vp.heapBusy {
		return
	}
	// Span-safe: the spin reads heapBusy (written only by goroutine-bound
	// thieves, frozen during a window) and writes nothing.
	vp.proc.SpanWhile(func() (int64, bool) {
		if !vp.heapBusy {
			return 0, true
		}
		return vp.rt.Cfg.SpinNs, false
	}, nil, nil)
}

// chargeAllocCost accounts the memory traffic of initializing a fresh
// object in the nursery: the fixed bump-and-init cost and the access cost
// fuse into a single engine advance. Under node-local placement the access
// is meterless, so the charge resolves through the batched cache table
// without touching the machine's general entry point.
func (vp *VProc) chargeAllocCost(words int) {
	m := vp.rt.Machine
	node := vp.rt.Space.NodeOf(heap.MakeAddr(vp.Local.Region.ID, vp.Local.Alloc-1))
	var c int64
	if m.Meterless(vp.Core, node, numa.AccessCache) {
		c = m.CacheAccessCost(words * 8)
	} else {
		c = m.AccessCost(vp.Now(), vp.Core, node, words*8, numa.AccessCache)
	}
	vp.advance(vp.rt.Cfg.AllocFixedNs + c)
	vp.Stats.AllocWords += int64(words)
}

// AllocRaw allocates a raw-data object with the given payload words.
func (vp *VProc) AllocRaw(payload []uint64) heap.Addr {
	vp.safepoint(len(payload))
	a := vp.Local.Bump(heap.MakeHeader(heap.IDRaw, len(payload)))
	copy(vp.rt.Space.Payload(a), payload)
	vp.chargeAllocCost(len(payload) + 1)
	return a
}

// AllocRawN allocates a zeroed raw-data object of n words.
func (vp *VProc) AllocRawN(n int) heap.Addr {
	vp.safepoint(n)
	a := vp.Local.Bump(heap.MakeHeader(heap.IDRaw, n))
	vp.chargeAllocCost(n + 1)
	return a
}

// AllocVector allocates a vector-of-pointers object. The element addresses
// are taken from root slots (not raw addresses) because the safepoint may
// move them.
func (vp *VProc) AllocVector(rootSlots []int) heap.Addr {
	vp.safepoint(len(rootSlots))
	a := vp.Local.Bump(heap.MakeHeader(heap.IDVector, len(rootSlots)))
	p := vp.rt.Space.Payload(a)
	for i, s := range rootSlots {
		p[i] = uint64(vp.roots[s])
	}
	vp.chargeAllocCost(len(rootSlots) + 1)
	return a
}

// AllocVectorN allocates a vector of n nil pointers.
func (vp *VProc) AllocVectorN(n int) heap.Addr {
	vp.safepoint(n)
	a := vp.Local.Bump(heap.MakeHeader(heap.IDVector, n))
	vp.chargeAllocCost(n + 1)
	return a
}

// AllocMixed allocates a mixed-type object with the given descriptor ID.
// rawFields supplies the non-pointer payload; ptrSlots maps payload offsets
// to root slots for the pointer fields.
func (vp *VProc) AllocMixed(id uint16, rawFields map[int]uint64, ptrSlots map[int]int) heap.Addr {
	d := vp.rt.Descs.Lookup(id)
	vp.safepoint(d.SizeWords)
	a := vp.Local.Bump(heap.MakeHeader(id, d.SizeWords))
	p := vp.rt.Space.Payload(a)
	for i, w := range rawFields {
		p[i] = w
	}
	for i, s := range ptrSlots {
		p[i] = uint64(vp.roots[s])
	}
	vp.chargeAllocCost(d.SizeWords + 1)
	return a
}

// --- Field access -------------------------------------------------------

// isOwnLocal reports whether the address lies in this vproc's local heap.
func (vp *VProc) isOwnLocal(a heap.Addr) bool {
	return a.RegionID() == vp.Local.Region.ID
}

// accessKind classifies a load target for the cost model: the vproc's own
// local heap is sized to fit L3 and is charged at cache cost when its pages
// are node-local.
func (vp *VProc) accessKind(a heap.Addr) numa.AccessKind {
	if vp.isOwnLocal(a) {
		return numa.AccessCache
	}
	return numa.AccessMemory
}

// chase resolves forwarding: a mutator may hold a stale pointer to an
// object that was promoted (a forwarding pointer in the local heap). The
// real runtime never observes these because roots are rewritten, but
// workload code holding addresses across promotions uses Resolve.
func (vp *VProc) resolve(a heap.Addr) heap.Addr {
	for a != 0 {
		h := vp.rt.Space.Header(a)
		if heap.IsHeader(h) {
			return a
		}
		a = heap.ForwardTarget(h)
	}
	return a
}

// Resolve follows forwarding pointers to the object's current address.
func (vp *VProc) Resolve(a heap.Addr) heap.Addr { return vp.resolve(a) }

// wordCharge computes the charge of a single-word access to the resolved
// address a. It is the one cost expression behind LoadWord/LoadPtr and
// their Cost* forms, so the two execution styles cannot drift apart.
func (vp *VProc) wordCharge(a heap.Addr) int64 {
	return vp.rt.Machine.AccessCost(vp.Now(), vp.Core, vp.rt.Space.NodeOf(a), 8, vp.accessKind(a))
}

// blockCharge computes the charge of a streaming read of an n-word payload
// at the resolved address a, fused with ns of computation.
func (vp *VProc) blockCharge(a heap.Addr, n int, ns int64) int64 {
	return vp.rt.Machine.AccessCost(vp.Now(), vp.Core, vp.rt.Space.NodeOf(a), n*8, vp.accessKind(a)) + ns
}

// cachedBlockCharge is blockCharge at unconditional cache cost (the
// meterless re-read model of ReadBlockCached).
func (vp *VProc) cachedBlockCharge(n int, ns int64) int64 {
	t := vp.rt.Cfg.Topo
	return int64(t.CacheLat+float64(n*8)/t.CacheBW) + ns
}

// LoadWord reads payload word i of the object at a, charging a
// latency-bound access.
func (vp *VProc) LoadWord(a heap.Addr, i int) uint64 {
	a = vp.resolve(a)
	vp.advance(vp.wordCharge(a))
	return vp.rt.Space.Payload(a)[i]
}

// LoadPtr reads pointer field i of the object at a.
func (vp *VProc) LoadPtr(a heap.Addr, i int) heap.Addr {
	return heap.Addr(vp.LoadWord(a, i))
}

// ReadBlock charges a streaming read of the whole object payload (one
// latency plus bandwidth cost) and returns the payload slice.
//
// The returned slice aliases heap storage: it is invalidated by the
// executing vproc's next allocation (a collection may move the object and
// reuse its words). Copy it out before any allocating call.
func (vp *VProc) ReadBlock(a heap.Addr) []uint64 {
	return vp.ReadBlockCompute(a, 0)
}

// ReadBlockCached is ReadBlock charged at cache cost regardless of where
// the object lives; workloads use it to model re-reads of data that is
// resident in the local cache hierarchy (e.g. the upper levels of the
// Barnes-Hut tree, or a matrix block being reused).
func (vp *VProc) ReadBlockCached(a heap.Addr) []uint64 {
	return vp.ReadBlockCachedCompute(a, 0)
}

// ReadBlockCompute is ReadBlock fused with Compute(ns): the access and the
// computation on the fetched data are charged in a single engine advance.
// Because the caller observes nothing between the two charges, the fusion
// is schedule-identical to ReadBlock followed by Compute — it only removes
// one rescheduling point — but costs half the engine interactions on hot
// read-then-compute loops.
func (vp *VProc) ReadBlockCompute(a heap.Addr, ns int64) []uint64 {
	a = vp.resolve(a)
	n := vp.rt.Space.ObjectLen(a)
	vp.advance(vp.blockCharge(a, n, ns))
	return vp.rt.Space.Payload(a)
}

// ReadBlockCachedCompute is ReadBlockCached fused with Compute(ns), with
// the same single-advance contract as ReadBlockCompute.
func (vp *VProc) ReadBlockCachedCompute(a heap.Addr, ns int64) []uint64 {
	a = vp.resolve(a)
	n := vp.rt.Space.ObjectLen(a)
	vp.advance(vp.cachedBlockCharge(n, ns))
	return vp.rt.Space.Payload(a)
}

// ObjectLen returns the payload length of the object at a.
func (vp *VProc) ObjectLen(a heap.Addr) int { return vp.rt.Space.ObjectLen(vp.resolve(a)) }

// --- Step-kernel access forms -------------------------------------------
//
// The Cost* accessors are the "compute cost, return duration" forms of the
// direct accessors above, for use inside step functions (RunSteps), where
// calling Advance is banned: a step observes the heap and returns the
// duration to charge, and the engine applies it. Each form performs exactly
// the reads and cost-model calls of its direct counterpart — including
// contention-meter mutations, which is why it must be invoked only at the
// virtual instant the charge lands (i.e. from the step that returns it).

// RunSteps drives fn through the engine's inline-step path (see
// vtime.Proc.StepWhile): fn is invoked at every virtual instant this vproc
// is scheduled — possibly on another vproc's goroutine — and returns the
// duration to charge before its next turn, or done. fn must confine itself
// to observing and mutating simulation state; it must not call engine
// scheduling primitives (Compute, the allocators, Promote, channel
// operations, …), all of which advance or block internally.
func (vp *VProc) RunSteps(fn func() (d int64, done bool)) { vp.proc.StepWhile(fn) }

// CostLoadWord is LoadWord in cost form: it resolves a and returns payload
// word i together with the access charge.
func (vp *VProc) CostLoadWord(a heap.Addr, i int) (uint64, int64) {
	a = vp.resolve(a)
	c := vp.wordCharge(a)
	return vp.rt.Space.Payload(a)[i], c
}

// CostLoadPtr is LoadPtr in cost form.
func (vp *VProc) CostLoadPtr(a heap.Addr, i int) (heap.Addr, int64) {
	w, c := vp.CostLoadWord(a, i)
	return heap.Addr(w), c
}

// CostReadBlock is ReadBlockCompute in cost form: it returns the payload
// slice (aliasing heap storage, same caveats as ReadBlock) and the fused
// read+compute charge.
func (vp *VProc) CostReadBlock(a heap.Addr, ns int64) ([]uint64, int64) {
	a = vp.resolve(a)
	n := vp.rt.Space.ObjectLen(a)
	c := vp.blockCharge(a, n, ns)
	return vp.rt.Space.Payload(a), c
}

// CostReadBlockCached is ReadBlockCachedCompute in cost form.
func (vp *VProc) CostReadBlockCached(a heap.Addr, ns int64) ([]uint64, int64) {
	a = vp.resolve(a)
	n := vp.rt.Space.ObjectLen(a)
	c := vp.cachedBlockCharge(n, ns)
	return vp.rt.Space.Payload(a), c
}

// HeaderID returns the object ID of the object at a.
func (vp *VProc) HeaderID(a heap.Addr) uint16 {
	return heap.HeaderID(vp.rt.Space.Header(vp.resolve(a)))
}
