package core

import (
	"fmt"
	"math"

	"repro/internal/heap"
	"repro/internal/numa"
)

// Crash-fault semantics. A FaultCrash kills a vproc at a chosen virtual
// instant — the deterministic model of a node or board dying under a
// rack-scale runtime. The contract, piece by piece:
//
//   - The crash is instantaneous: cleanup is host-side bookkeeping, charged
//     no virtual time, and then the vproc's stack unwinds with the
//     vprocCrashed sentinel (recovered in Runtime.Run) so the engine
//     retires its proc normally. Crash-free runs execute zero crash code on
//     any charged path and are bit-identical to pre-crash-subsystem builds.
//
//   - Nothing is silently leaked. The entry task, every queued task, every
//     in-flight (nested) task, and every parked continuation owned by the
//     crashed vproc is reported lost: marked done+lost, its rt.outstanding
//     count released, and tallied in LostTasks/LostConts. Join on a lost
//     task returns (Task.Lost reports the loss); pending timer deadlines
//     are cancelled and counted in LostTimers.
//
//   - The global-GC barrier protocol shrinks: the crashed vproc is dropped
//     from all four barriers (vtime.Barrier.Drop), releasing any vprocs
//     already parked at the entry rendezvous, and leadership of a pending
//     collection transfers to the lowest live vproc. Later collections
//     expect one fewer participant. requestGlobalGC stops signalling the
//     corpse.
//
//   - The local heap is retired, not freed: its memory is frozen in place
//     so proxies minted by the crashed vproc stay resolvable (a thief's
//     ProxyDeref promotes out of the frozen heap exactly as before — sent
//     messages are recovered work, not lost work). The leader of each
//     subsequent global collection adopts the retired heap: it forwards the
//     crashed vproc's proxies and walks the frozen old area + nursery so
//     everything reachable from them survives, then repairs the promotion
//     forwarding words, keeping the retired heap verifier-clean.
//
//   - Owned channels (Channel.SetOwner) die with the vproc through the
//     close-as-status protocol: parked receivers wake with nil messages,
//     parked sends and later send attempts observe SendCrashed. A
//     Channel.Close racing the owner's crash at the same instant resolves
//     deterministically by engine order, and the status is delivered
//     exactly once — whichever lands first pops the waiters; the loser
//     finds the channel already closed and does nothing.
//
//   - Steal sweeps need no special case: the crashed queue is empty, so
//     the victim filter (queue.size() > 0) never selects a corpse.

// vprocCrashed is the panic sentinel that unwinds a crashed vproc's stack.
type vprocCrashed struct{}

// crash executes the FaultCrash: it runs on the dying vproc's own
// goroutine, at a checkPreempt site (so the vproc holds no collection or
// promotion locks and is not inside a barrier), performs the advance-free
// cleanup, and never returns.
func (vp *VProc) crash() {
	if vp.crashed {
		panic(fmt.Sprintf("core: vproc %d crashed twice", vp.ID))
	}
	rt := vp.rt
	vp.crashed = true
	vp.Stats.Crashes++

	// Pending timers die with the vproc. Fault events queued behind this
	// crash are dropped uncounted (they target a corpse); timer
	// continuations are counted as cancelled deadlines — the rendezvous
	// themselves are retired through vp.parked below.
	for {
		t := vp.timers.PopDue(math.MaxInt64)
		if t == nil {
			break
		}
		if r, ok := t.Data.(*rendezvous); ok && !r.claimed {
			r.timer = nil
			vp.Stats.LostTimers++
		}
	}
	vp.pendingFaults = nil

	// Parked continuations (RecvThen/SelectThen/AtThen chains) are lost:
	// each holds one outstanding count. Marking them claimed makes any
	// later sender's ring pop skip the dead registration, exactly like a
	// consumed rendezvous.
	for _, r := range vp.parked {
		if r.claimed {
			continue
		}
		r.claimed = true
		rt.outstanding--
		vp.Stats.LostConts++
	}
	vp.parked = nil

	// Blocking waiters (Recv/Select frames of the dying stack) hold no
	// outstanding count, but their ring registrations must go dead too —
	// a sender must not hand a message to a vproc that will never wake.
	for _, r := range vp.blocked {
		r.claimed = true
	}
	vp.blocked = nil

	// In-flight tasks (the running stack nests through inline Join) and
	// queued tasks are lost work: exact Join accounting requires marking
	// them done so joiners stop waiting, and lost so they can tell.
	for i := len(vp.running) - 1; i >= 0; i-- {
		loseTask(vp, vp.running[i])
	}
	vp.running = nil
	for vp.queue.size() > 0 {
		loseTask(vp, vp.queue.popBottom())
	}
	if vp.ID == 0 && !rt.entryDone {
		// The entry task's count is held by Run itself, not by any queue.
		rt.entryDone = true
		rt.outstanding--
		vp.Stats.LostTasks++
	}

	// Results this vproc computed for still-live owners are recovered, not
	// lost: hand them to the owner so global collections keep forwarding
	// them and JoinResult finds them. Results owned by a corpse die here.
	for _, t := range vp.resultTasks {
		owner := rt.VProcs[t.owner]
		if owner != vp && !owner.crashed {
			t.executor = owner
			owner.resultTasks = append(owner.resultTasks, t)
		}
	}
	vp.resultTasks = nil
	vp.roots = nil

	// Owned channels fail over to SendCrashed / nil wakeups. This runs
	// after the parked/blocked retirement above so the close path skips
	// this vproc's own dead registrations and only wakes live parties.
	for _, ch := range vp.owned {
		ch.crashClose()
	}
	vp.owned = nil

	// Leave the stop-the-world protocol. If a collection is pending (or,
	// in concurrent mode, a mark or termination is in flight) and this
	// vproc was its leader, leadership moves to the lowest live vproc
	// (which cannot have passed the entry barrier: a pending collection
	// holds everyone there until all participants — including this one —
	// arrive). Dropping the entry barrier may release the parked field.
	g := &rt.global
	if (g.pending || g.marking || g.termPending) && g.leader == vp.ID {
		for _, o := range rt.VProcs {
			if !o.crashed {
				g.leader = o.ID
				break
			}
		}
	}
	if g.marking {
		// The dead vproc's gray set is adopted like its heap: its current
		// chunk may still hold unscanned data that no assist can reach
		// through the scan lists (globalScanDrained checks curChunks, but
		// only live vprocs drain their own). Hand it to the lists and
		// detach it so the mark can terminate.
		if c := vp.curChunk; c != nil && c.Scan < c.Top {
			rt.enqueueScan(c)
		}
		vp.curChunk = nil
	}
	g.entry.Drop(vp.proc)
	g.setup.Drop(vp.proc)
	g.scanDone.Drop(vp.proc)
	g.finish.Drop(vp.proc)
	g.termEntry.Drop(vp.proc)
	g.termScanDone.Drop(vp.proc)
	g.termFinish.Drop(vp.proc)

	panic(vprocCrashed{})
}

// loseTask reports one task lost to a crash.
func loseTask(vp *VProc, t *Task) {
	t.done = true
	t.lost = true
	t.executor = vp
	t.result = 0
	vp.rt.outstanding--
	vp.Stats.LostTasks++
}

// adoptCrashedHeaps is the leader's phase-3 walk over every retired heap:
// the crashed vprocs' proxies and frozen local data are global roots nobody
// else will scan. Forwarding them preserves exactly what the dead vproc's
// own globalScanRoots would have preserved, so messages in flight at crash
// time stay deliverable. Charged like the owner's walk: per-copy evacuation
// charges plus one fused streaming read per retired heap.
func (vp *VProc) adoptCrashedHeaps() {
	rt := vp.rt
	fw := vp.globalForward
	for _, dead := range rt.VProcs {
		if !dead.crashed {
			continue
		}
		for i, pa := range dead.proxies {
			npa := fw(pa)
			dead.proxies[i] = npa
			// The proxy's local slot may hold a *global* address (the
			// proxied object was promoted before the crash) — from-space
			// now. Frozen local addresses pass through untouched.
			p := rt.Space.Payload(npa)
			p[heap.ProxyLocalSlot] = uint64(fw(heap.Addr(p[heap.ProxyLocalSlot])))
		}
		if dead.proxyIdx != nil {
			clear(dead.proxyIdx)
			for i, pa := range dead.proxies {
				dead.proxyIdx[pa] = i
			}
		}
		// The frozen heap was live mid-mutation: both the old area and the
		// nursery hold data reachable through proxies.
		lh := dead.Local
		vp.adoptScanRange(lh, 1, lh.OldTop)
		vp.adoptScanRange(lh, lh.NurseryStart, lh.Alloc)
		node := rt.Space.NodeOf(heap.MakeAddr(lh.Region.ID, 1))
		span := (lh.OldTop - 1) + (lh.Alloc - lh.NurseryStart)
		vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, span*8, numa.AccessCache))
	}
}

// adoptScanRange forwards the global references of one frozen heap range on
// behalf of its crashed owner.
func (vp *VProc) adoptScanRange(lh *heap.LocalHeap, lo, hi int) {
	rt := vp.rt
	words := lh.Region.Words
	for scan := lo; scan < hi; {
		h := words[scan]
		var n int
		if heap.IsHeader(h) {
			obj := heap.MakeAddr(lh.Region.ID, scan+1)
			heap.ScanObject(rt.Space, rt.Descs, obj, func(_ int, p heap.Addr) heap.Addr {
				return vp.globalForward(p)
			})
			n = heap.HeaderLen(h)
		} else {
			n = rt.Space.ObjectLen(heap.ForwardTarget(h))
		}
		scan += n + 1
	}
}
