package core

import "testing"

// concurrentStressConfig is stressConfig with the mostly-concurrent global
// collector enabled (the pacer inherits the same trigger floor, so cycles
// fire just as often as the STW collector's).
func concurrentStressConfig(nvprocs int) Config {
	cfg := stressConfig(nvprocs)
	cfg.ConcurrentGlobal = true
	return cfg
}

// concurrentMutators runs the promotion-heavy multi-vproc mutator of
// TestGlobalGCReclaimsAndPreserves and returns the makespan plus the
// before/after live-set checksums — the graph-preservation probe shared by
// the concurrent-mode tests.
func concurrentMutators(rt *Runtime, nv int) (int64, []uint64, []uint64) {
	wants := make([]uint64, nv)
	sums := make([]uint64, nv)
	mk := rt.Run(func(vp *VProc) {
		for i := 0; i < nv; i++ {
			i := i
			vp.Spawn(func(vp *VProc, _ Env) {
				a := buildTree(vp, 6, uint64(i+1))
				slot := vp.PushRoot(a)
				wants[i] = checksumTree(vp, vp.Root(slot))
				for round := 0; round < 6; round++ {
					vp.PromoteRoot(slot)
					b := buildTree(vp, 5, uint64(round))
					bs := vp.PushRoot(b)
					vp.PromoteRoot(bs)
					vp.PopRoots(1)
					churn(vp, 800, 6)
				}
				sums[i] = checksumTree(vp, vp.Root(slot))
				vp.PopRoots(1)
			})
		}
	})
	return mk, wants, sums
}

// TestConcurrentGCPreservesGraph: the tri-color cycle, interleaved with
// promotion-heavy mutators on every vproc, preserves the live graph; the
// Debug verifier (heap invariants after every phase plus the tri-color check
// at each mark termination) stays clean throughout.
func TestConcurrentGCPreservesGraph(t *testing.T) {
	const nv = 4
	rt := MustNewRuntime(concurrentStressConfig(nv))
	_, wants, sums := concurrentMutators(rt, nv)
	if rt.Stats.GlobalGCs == 0 {
		t.Fatalf("expected concurrent global collections (chunks active: %d)", len(rt.Chunks.Active()))
	}
	for i := range sums {
		if sums[i] != wants[i] {
			t.Errorf("vproc task %d: checksum %d, want %d", i, sums[i], wants[i])
		}
	}
	total := rt.TotalStats()
	if total.MarkAssistWords == 0 {
		t.Error("no mark-assist work recorded — the cycle was not concurrent")
	}
	if rt.Stats.SnapshotNs == 0 || rt.Stats.TermNs == 0 {
		t.Errorf("STW windows not recorded: snapshot %d ns, termination %d ns",
			rt.Stats.SnapshotNs, rt.Stats.TermNs)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants at end: %v", err)
	}
}

// TestConcurrentGCEquivalence: a concurrent-mode run reaches the same final
// live-set contents as the STW run of the identical program — the collectors
// may schedule work differently (makespans differ), but the surviving graph
// may not.
func TestConcurrentGCEquivalence(t *testing.T) {
	const nv = 4
	run := func(concurrent bool) ([]uint64, []uint64, int) {
		cfg := stressConfig(nv)
		cfg.ConcurrentGlobal = concurrent
		rt := MustNewRuntime(cfg)
		_, wants, sums := concurrentMutators(rt, nv)
		if err := rt.VerifyHeap(); err != nil {
			t.Fatalf("concurrent=%v: heap invariants: %v", concurrent, err)
		}
		return wants, sums, rt.Stats.GlobalGCs
	}
	stwWants, stwSums, stwGCs := run(false)
	conWants, conSums, conGCs := run(true)
	if stwGCs == 0 || conGCs == 0 {
		t.Fatalf("both modes must collect: stw %d cycles, concurrent %d cycles", stwGCs, conGCs)
	}
	for i := range stwSums {
		// Same program, same seed: the live set each mutator builds (and
		// still observes at the end) is collector-independent.
		if stwWants[i] != conWants[i] || stwSums[i] != conSums[i] {
			t.Errorf("task %d: live-set checksums diverge across collectors: stw %d/%d, concurrent %d/%d",
				i, stwWants[i], stwSums[i], conWants[i], conSums[i])
		}
	}
}

// TestConcurrentGCOffBitIdentical: with the flag off the concurrent machinery
// is dead weight — a run under the new code, even with the pacer knob set, is
// bit-identical to the default configuration, and every concurrent-mode
// counter stays zero.
func TestConcurrentGCOffBitIdentical(t *testing.T) {
	const nv = 4
	run := func(gcPercent int) (int64, VPStats, RTStats, []uint64) {
		cfg := stressConfig(nv)
		cfg.GCPercent = gcPercent
		rt := MustNewRuntime(cfg)
		mk, _, sums := concurrentMutators(rt, nv)
		return mk, rt.TotalStats(), rt.Stats, sums
	}
	mk1, s1, g1, c1 := run(0)
	mk2, s2, g2, c2 := run(400) // pacer knob must be inert with the flag off
	if mk1 != mk2 || s1 != s2 || g1 != g2 {
		t.Errorf("flag-off runs not bit-identical:\n  %d ns %+v %+v\n  %d ns %+v %+v",
			mk1, s1, g1, mk2, s2, g2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("task %d checksum differs flag-off: %d vs %d", i, c1[i], c2[i])
		}
	}
	if s1.BarrierHits != 0 || s1.BarrierNs != 0 || s1.MarkAssistWords != 0 || s1.MarkAssistNs != 0 {
		t.Errorf("concurrent counters nonzero with the flag off: %+v", s1)
	}
	if g1.SnapshotNs != 0 || g1.TermNs != 0 {
		t.Errorf("STW-window counters nonzero with the flag off: snapshot %d, term %d",
			g1.SnapshotNs, g1.TermNs)
	}
	if g1.GlobalGCs == 0 {
		t.Error("flag-off run exercised no global collections — the identity check is vacuous")
	}
}

// TestConcurrentGCDeterministic: concurrent-mode runs are bit-deterministic
// across reruns and across span-worker counts — the marking interleaving is
// part of the virtual schedule, not host nondeterminism.
func TestConcurrentGCDeterministic(t *testing.T) {
	const nv = 4
	run := func(par int) (int64, VPStats, RTStats, uint64) {
		cfg := concurrentStressConfig(nv)
		cfg.SpanWorkers = par
		rt := MustNewRuntime(cfg)
		mk, _, sums := concurrentMutators(rt, nv)
		var fold uint64
		for _, s := range sums {
			fold = fold*1099511628211 ^ s
		}
		return mk, rt.TotalStats(), rt.Stats, fold
	}
	mk1, s1, g1, c1 := run(1)
	for _, par := range []int{1, 2, 3} {
		mk2, s2, g2, c2 := run(par)
		if mk1 != mk2 || s1 != s2 || g1 != g2 || c1 != c2 {
			t.Errorf("par=%d diverged from serial run:\n  %d ns %+v %+v %d\n  %d ns %+v %+v %d",
				par, mk1, s1, g1, c1, mk2, s2, g2, c2)
		}
	}
	if g1.GlobalGCs == 0 {
		t.Error("no concurrent collections ran — determinism check is vacuous")
	}
}

// TestConcurrentGCCrashMidMark: a crash storm under the concurrent collector
// stays bit-deterministic and verifier-clean. The random plans land kills
// before, inside, and after marks; a dead vproc's gray current chunk must be
// adopted by the survivors (or the termination rescan) — a lost gray set
// would surface as a tri-color violation or a dangling from-space pointer.
func TestConcurrentGCCrashMidMark(t *testing.T) {
	const (
		nv      = 8
		iters   = 500
		crashes = 3
	)
	for seed := uint64(1); seed <= 5; seed++ {
		run := func() (int64, VPStats, RTStats) {
			rt := MustNewRuntime(concurrentStressConfig(nv))
			rt.InstallFaults(RandomCrashPlan(seed, nv, 1, crashes, 150_000))
			elapsed := crashTestWorkload(rt, iters)
			if err := rt.VerifyHeap(); err != nil {
				t.Fatalf("seed %d: heap invariants after crash storm: %v", seed, err)
			}
			return elapsed, rt.TotalStats(), rt.Stats
		}
		e1, s1, g1 := run()
		e2, s2, g2 := run()
		if e1 != e2 || s1 != s2 || g1 != g2 {
			t.Errorf("seed %d: crashed concurrent reruns diverged:\n  %d ns %+v %+v\n  %d ns %+v %+v",
				seed, e1, s1, g1, e2, s2, g2)
		}
		if s1.Crashes != crashes {
			t.Errorf("seed %d: Crashes = %d, want %d", seed, s1.Crashes, crashes)
		}
		if g1.GlobalGCs == 0 {
			t.Errorf("seed %d: no concurrent collections — crash storm not exercising the mark protocol", seed)
		}
	}
}

// TestConcurrentGCWriteBarrierShades: a mutator that stores freshly promoted
// values into black global cells during marks relies entirely on the
// insertion barrier; the stored graph must survive the cycle. The workload
// alternates ref writes with churn so stores land inside active marks.
func TestConcurrentGCWriteBarrierShades(t *testing.T) {
	const nv = 4
	cfg := concurrentStressConfig(nv)
	rt := MustNewRuntime(cfg)
	var finals [nv]uint64
	rt.Run(func(vp *VProc) {
		for i := 0; i < nv; i++ {
			i := i
			vp.Spawn(func(vp *VProc, _ Env) {
				// One long-lived global cell per task, rewritten many
				// times; each round's value is a fresh tree that must be
				// shaded when stored.
				s := vp.PushRoot(buildTree(vp, 3, uint64(i+1)))
				ref := vp.NewRef(s)
				rs := vp.PushRoot(ref)
				for round := 0; round < 24; round++ {
					ts := vp.PushRoot(buildTree(vp, 4, uint64(round+1)))
					vp.WriteRef(vp.Root(rs), ts)
					vp.PopRoots(1)
					churn(vp, 300, 6)
				}
				finals[i] = checksumTree(vp, vp.ReadRef(vp.Root(rs)))
				vp.PopRoots(2)
			})
		}
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("no concurrent collections ran")
	}
	// The last written tree is depth 4 with val 24 on every task.
	want := finals[0]
	for i, f := range finals {
		if f != want {
			t.Errorf("task %d final checksum %d, want %d", i, f, want)
		}
	}
	probe := MustNewRuntime(concurrentStressConfig(1))
	var expect uint64
	probe.Run(func(vp *VProc) {
		expect = checksumTree(vp, buildTree(vp, 4, 24))
	})
	if want != expect {
		t.Errorf("surviving ref contents %d, want tree(4,24) = %d", want, expect)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants at end: %v", err)
	}
}

// TestConcurrentGCChannelTraffic: cross-vproc channel traffic during
// concurrent marks — the sender-side resolve discipline and the
// termination-time global-root object rescan must keep every in-flight
// message reachable and current.
func TestConcurrentGCChannelTraffic(t *testing.T) {
	const (
		nv   = 4
		msgs = 300
	)
	cfg := concurrentStressConfig(nv)
	rt := MustNewRuntime(cfg)
	ch := rt.NewChannel()
	var got, want uint64
	rt.Run(func(vp *VProc) {
		for i := 0; i < nv-1; i++ {
			i := i
			vp.Spawn(func(svp *VProc, _ Env) {
				for m := 0; m < msgs; m++ {
					v := uint64(i*msgs + m + 1)
					s := svp.PushRoot(svp.AllocRaw([]uint64{v, v * 31}))
					ch.Send(svp, s)
					svp.PopRoots(1)
					churn(svp, 60, 8)
				}
			})
		}
		vp.Spawn(func(rvp *VProc, _ Env) {
			for m := 0; m < (nv-1)*msgs; m++ {
				a := ch.Recv(rvp)
				p := rvp.ReadBlock(a)
				if p[1] != p[0]*31 {
					t.Errorf("message %d corrupted: [%d %d]", m, p[0], p[1])
				}
				got += p[0]
				churn(rvp, 40, 8)
			}
		})
	})
	for i := 0; i < nv-1; i++ {
		for m := 0; m < msgs; m++ {
			want += uint64(i*msgs + m + 1)
		}
	}
	if got != want {
		t.Errorf("received fold %d, want %d", got, want)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("no concurrent collections ran during channel traffic")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants at end: %v", err)
	}
}
