package core

import (
	"reflect"
	"testing"

	"repro/internal/heap"
	"repro/internal/numa"
)

// TestRandomCrashPlanPure: the crash plan is a pure function of its
// arguments, every target is a distinct vproc in [keepLow, nv), and every
// instant lands in the documented [horizon/8, horizon) window.
func TestRandomCrashPlanPure(t *testing.T) {
	const (
		seed    = 7
		nv      = 16
		keepLow = 2
		crashes = 6
		horizon = 1_000_000
	)
	p1 := RandomCrashPlan(seed, nv, keepLow, crashes, horizon)
	p2 := RandomCrashPlan(seed, nv, keepLow, crashes, horizon)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("same arguments produced different plans:\n%+v\n%+v", p1.Events, p2.Events)
	}
	if reflect.DeepEqual(p1, RandomCrashPlan(seed+1, nv, keepLow, crashes, horizon)) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(p1.Events) != crashes {
		t.Fatalf("plan has %d events, want %d", len(p1.Events), crashes)
	}
	seen := map[int]bool{}
	for i, e := range p1.Events {
		if e.Kind != FaultCrash {
			t.Errorf("event %d has kind %v, want crash", i, e.Kind)
		}
		if e.VProc < keepLow || e.VProc >= nv {
			t.Errorf("event %d targets vproc %d outside [%d, %d)", i, e.VProc, keepLow, nv)
		}
		if seen[e.VProc] {
			t.Errorf("event %d crashes vproc %d twice", i, e.VProc)
		}
		seen[e.VProc] = true
		if e.At < horizon/8 || e.At >= horizon {
			t.Errorf("event %d at %d outside [%d, %d)", i, e.At, horizon/8, horizon)
		}
	}
}

// TestInstallCrashValidates: malformed crash events are rejected eagerly at
// install time — out-of-range targets, ambiguous targets, empty failure
// domains, and duplicate kills of the same vproc all panic.
func TestInstallCrashValidates(t *testing.T) {
	mustPanic := func(name string, p *FaultPlan) {
		t.Helper()
		rt := MustNewRuntime(stressConfig(2))
		defer func() {
			if recover() == nil {
				t.Errorf("%s: InstallFaults did not panic", name)
			}
		}()
		rt.InstallFaults(p)
	}
	mustPanic("negative instant", (&FaultPlan{}).CrashAt(0, -1))
	mustPanic("vproc out of range", (&FaultPlan{}).CrashAt(2, 1_000))
	mustPanic("node out of range", (&FaultPlan{}).CrashNodeAt(99, 1_000))
	mustPanic("board out of range", (&FaultPlan{}).CrashBoardAt(99, 1_000))
	mustPanic("duplicate vproc crash", (&FaultPlan{}).CrashAt(1, 1_000).CrashAt(1, 2_000))
	mustPanic("no target", &FaultPlan{Events: []FaultEvent{
		{At: 1_000, VProc: -1, Kind: FaultCrash, Node: -1, Board: -1}}})
	mustPanic("both vproc and node", &FaultPlan{Events: []FaultEvent{
		{At: 1_000, VProc: 0, Kind: FaultCrash, Node: 0, Board: -1}}})
	mustPanic("both node and board", &FaultPlan{Events: []FaultEvent{
		{At: 1_000, VProc: -1, Kind: FaultCrash, Node: 0, Board: 0}}})
	// stressConfig(2) places both vprocs on node 0 of a 4-node topology:
	// node 3 is in range but hosts no vproc — an inert kill is a plan bug.
	mustPanic("empty node domain", (&FaultPlan{}).CrashNodeAt(3, 1_000))
	// A node kill overlapping an earlier single-vproc kill is a duplicate.
	mustPanic("node overlaps vproc", (&FaultPlan{}).CrashAt(0, 1_000).CrashNodeAt(0, 2_000))
}

// crashTestWorkload is faultTestWorkload plus periodic promotion: the
// promoted words drive the global-heap trigger, so crash instants land both
// inside and around stop-the-world collections, and the run is long enough
// (in virtual time) for every planned kill to fire before quiescence.
func crashTestWorkload(rt *Runtime, iters int) int64 {
	return rt.Run(func(vp *VProc) {
		for v := 0; v < rt.Cfg.NumVProcs; v++ {
			vp.Spawn(func(wvp *VProc, _ Env) {
				for i := 0; i < iters; i++ {
					s := wvp.PushRoot(wvp.AllocRawN(32))
					if i%4 == 0 {
						wvp.Promote(wvp.Root(s))
					}
					wvp.Compute(500)
					wvp.PopRoots(1)
				}
			})
		}
	})
}

// TestCrashFaultDeterministic: a crash storm perturbs the run but keeps it
// bit-deterministic, the heap verifier stays clean (retired heaps are
// adopted and repaired by the surviving leader), and the run still exercises
// global collections after the kills. Several seeds vary where the crash
// instants land relative to the stop-the-world protocol — including inside
// a pending collection's entry rendezvous.
func TestCrashFaultDeterministic(t *testing.T) {
	const (
		nv      = 8
		iters   = 500
		crashes = 3
	)
	for seed := uint64(1); seed <= 5; seed++ {
		run := func() (int64, VPStats, RTStats) {
			rt := MustNewRuntime(stressConfig(nv))
			rt.InstallFaults(RandomCrashPlan(seed, nv, 1, crashes, 150_000))
			elapsed := crashTestWorkload(rt, iters)
			if err := rt.VerifyHeap(); err != nil {
				t.Fatalf("seed %d: heap invariants after crash storm: %v", seed, err)
			}
			return elapsed, rt.TotalStats(), rt.Stats
		}
		e1, s1, g1 := run()
		e2, s2, g2 := run()
		if e1 != e2 || s1 != s2 || g1 != g2 {
			t.Errorf("seed %d: crashed reruns diverged:\n  %d ns %+v %+v\n  %d ns %+v %+v",
				seed, e1, s1, g1, e2, s2, g2)
		}
		if s1.Crashes != crashes {
			t.Errorf("seed %d: Crashes = %d, want %d", seed, s1.Crashes, crashes)
		}
		if g1.GlobalGCs == 0 {
			t.Errorf("seed %d: no global collections — crash storm not exercising the barrier protocol", seed)
		}
	}
}

// TestCrashLostWorkAccounting: every spawned task is either run or reported
// lost — never both, never neither — and Join on a lost task returns with
// Task.Lost set and a nil result. The runtime quiesces exactly (Run
// returning proves rt.outstanding reached zero with no leak).
func TestCrashLostWorkAccounting(t *testing.T) {
	const tasks = 32
	rt := MustNewRuntime(stressConfig(8))
	rt.InstallFaults((&FaultPlan{}).CrashAt(3, 40_000).CrashNodeAt(1, 60_000))
	spawned := make([]*Task, 0, tasks)
	rt.Run(func(vp *VProc) {
		for i := 0; i < tasks; i++ {
			spawned = append(spawned, vp.Spawn(func(wvp *VProc, _ Env) {
				for j := 0; j < 120; j++ {
					wvp.PushRoot(wvp.AllocRawN(24))
					wvp.Compute(400)
					wvp.PopRoots(1)
				}
			}))
		}
		for _, tk := range spawned {
			vp.Join(tk)
		}
	})
	if err := rt.VerifyHeap(); err != nil {
		t.Fatalf("heap invariants after crashes: %v", err)
	}
	s := rt.TotalStats()
	lost := 0
	for i, tk := range spawned {
		if !tk.Done() {
			t.Errorf("task %d neither ran nor was reported lost", i)
		}
		if tk.Lost() {
			lost++
			if tk.Result() != 0 {
				t.Errorf("lost task %d has result %#x, want 0", i, tk.Result())
			}
		}
	}
	if int(s.LostTasks) != lost {
		t.Errorf("LostTasks = %d, but %d spawned tasks report Lost", s.LostTasks, lost)
	}
	// Every task (plus the entry task) was run exactly once or lost exactly
	// once; crashes mid-execution must not double-count.
	if got := int(s.TasksRun) + lost; got != tasks+1 {
		t.Errorf("TasksRun + lost = %d, want %d", got, tasks+1)
	}
	if s.Crashes != 3 { // vproc 3 plus node 1's two vprocs
		t.Errorf("Crashes = %d, want 3", s.Crashes)
	}
}

// TestChannelCrashStatus: channels owned by a crashed vproc fail over
// through the close-as-status protocol — later sends observe SendCrashed
// (distinct from SendClosed) and parked receive continuations wake exactly
// once with a nil message.
func TestChannelCrashStatus(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	reqs := rt.NewChannel()
	replies := rt.NewChannel()
	reqs.SetOwner(rt.VProcs[1])
	replies.SetOwner(rt.VProcs[1])
	rt.InstallFaults((&FaultPlan{}).CrashAt(1, 50_000))

	var nilWakes, okSends int
	var firstFail SendStatus = -1
	rt.Run(func(vp *VProc) {
		// A continuation parked on an owned channel that never delivers: the
		// only way it can resolve (and the run quiesce) is the crash close.
		replies.RecvThen(vp, nil, func(_ *VProc, _ Env, msg heap.Addr) {
			if msg != 0 {
				t.Errorf("crash wakeup delivered message %#x, want nil", msg)
			}
			nilWakes++
		})
		for i := 0; i < 10_000; i++ {
			s := vp.PushRoot(vp.AllocRawN(4))
			st := reqs.Send(vp, s)
			vp.PopRoots(1)
			if st != SendOK {
				firstFail = st
				break
			}
			okSends++
			vp.Compute(2_000)
		}
	})
	if firstFail != SendCrashed {
		t.Errorf("first failing send reported %v, want %v", firstFail, SendCrashed)
	}
	if okSends == 0 {
		t.Error("no send succeeded before the crash instant")
	}
	if nilWakes != 1 {
		t.Errorf("parked continuation woke %d times, want exactly 1", nilWakes)
	}
	if !reqs.Crashed() || !reqs.Closed() {
		t.Error("owned channel not retired as crashed+closed")
	}
	if !rt.VProcs[1].Crashed() {
		t.Error("vproc 1 not marked crashed")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Fatalf("heap invariants after crash: %v", err)
	}
}

// TestCrashWakesBoundedFullSender mirrors PR 6's TrySend-races-Close test
// for the crash path: a sender blocked on a full bounded mailbox whose owner
// crashes mid-wait must wake with SendCrashed instead of hanging in the
// capacity loop.
func TestCrashWakesBoundedFullSender(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	mb := rt.NewMailbox(1)
	mb.SetOwner(rt.VProcs[1])
	rt.InstallFaults((&FaultPlan{}).CrashAt(1, 50_000))

	var blockedStatus SendStatus = -1
	rt.Run(func(vp *VProc) {
		s := vp.PushRoot(vp.AllocRawN(4))
		if st := mb.Send(vp, s); st != SendOK {
			t.Fatalf("first send on empty mailbox: %v", st)
		}
		vp.SetRoot(s, vp.AllocRawN(4))
		// The mailbox is full and has no receiver: this blocks in virtual
		// time until the owner's crash closes the channel.
		blockedStatus = mb.Send(vp, s)
		vp.PopRoots(1)
	})
	if blockedStatus != SendCrashed {
		t.Errorf("blocked sender woke with %v, want %v", blockedStatus, SendCrashed)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Fatalf("heap invariants after crash: %v", err)
	}
}

// TestCloseRacesCrash: an orderly Close scheduled at the same virtual
// instant as the owner's crash resolves deterministically — the status is
// delivered to parked receivers exactly once, and reruns agree bit-for-bit
// on which path won (observable through Channel.Crashed).
func TestCloseRacesCrash(t *testing.T) {
	const at = 50_000
	run := func() (wakes int, crashedWon bool, stats VPStats) {
		rt := MustNewRuntime(stressConfig(2))
		ch := rt.NewChannel()
		ch.SetOwner(rt.VProcs[1])
		rt.InstallFaults((&FaultPlan{}).CloseAt(0, at, ch).CrashAt(1, at))
		rt.Run(func(vp *VProc) {
			ch.RecvThen(vp, nil, func(_ *VProc, _ Env, msg heap.Addr) {
				if msg != 0 {
					t.Errorf("close/crash race delivered message %#x", msg)
				}
				wakes++
			})
		})
		if err := rt.VerifyHeap(); err != nil {
			t.Fatalf("heap invariants after close/crash race: %v", err)
		}
		return wakes, ch.Crashed(), rt.TotalStats()
	}
	w1, c1, s1 := run()
	w2, c2, s2 := run()
	if w1 != 1 {
		t.Errorf("parked continuation woke %d times, want exactly 1", w1)
	}
	if w1 != w2 || c1 != c2 || s1 != s2 {
		t.Errorf("close/crash race not deterministic: (%d,%v,%+v) vs (%d,%v,%+v)", w1, c1, s1, w2, c2, s2)
	}
}

// TestCrashBoardKillRack: a correlated board kill on the rack topology takes
// out every vproc on the board in one event, survivors finish the workload,
// and the global-GC barrier protocol completes with the shrunken cohort.
func TestCrashBoardKillRack(t *testing.T) {
	topo := numa.Rack256()
	cfg := DefaultConfig(topo, 32)
	cfg.LocalHeapWords = 2048
	cfg.ChunkWords = 512
	cfg.GlobalTriggerWords = 16 * 512
	cfg.Debug = true
	rt := MustNewRuntime(cfg)
	// Count the board-1 vprocs so the assertion tracks the placement policy
	// rather than hard-coding it.
	onBoard := 0
	for _, vp := range rt.VProcs {
		if topo.BoardOfNode(vp.Node) == 1 {
			onBoard++
		}
	}
	if onBoard == 0 || onBoard == len(rt.VProcs) {
		t.Fatalf("placement puts %d of %d vprocs on board 1 — board kill would be trivial", onBoard, len(rt.VProcs))
	}
	rt.InstallFaults((&FaultPlan{}).CrashBoardAt(1, 60_000))
	crashTestWorkload(rt, 200)
	if err := rt.VerifyHeap(); err != nil {
		t.Fatalf("heap invariants after board kill: %v", err)
	}
	s := rt.TotalStats()
	if s.Crashes != onBoard {
		t.Errorf("Crashes = %d, want %d (every vproc on board 1)", s.Crashes, onBoard)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Error("no global collections — board kill not exercising the shrunken barrier")
	}
}
