package core

// EventKind identifies a garbage-collection phase event.
type EventKind int

const (
	// EvMinor is a completed minor collection.
	EvMinor EventKind = iota
	// EvMajor is a completed major collection.
	EvMajor
	// EvPromote is a completed object promotion.
	EvPromote
	// EvGlobalStart marks the leader initiating a global collection.
	EvGlobalStart
	// EvGlobalEnd marks the completion of a global collection.
	EvGlobalEnd
	// EvEmergency marks a vproc walking the emergency collection ladder:
	// a mutator allocation gate found no global-heap headroom and forced
	// a full minor → major → global escalation before retrying.
	EvEmergency
)

// NumEventKinds is the number of distinct event kinds, for tracers that
// aggregate counts per kind into fixed-size arrays.
const NumEventKinds = int(EvEmergency) + 1

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvMinor:
		return "minor"
	case EvMajor:
		return "major"
	case EvPromote:
		return "promote"
	case EvGlobalStart:
		return "global-start"
	case EvGlobalEnd:
		return "global-end"
	case EvEmergency:
		return "emergency"
	default:
		return "unknown"
	}
}

// GCEvent describes one collection phase, for tracing.
type GCEvent struct {
	Kind  EventKind
	VProc int
	At    int64 // virtual completion time of the phase (At-Ns is its start)
	Ns    int64 // virtual duration of the phase
	Words int64 // words copied/promoted
}

// Tracer receives GC events when installed via Runtime.SetTracer.
type Tracer func(ev GCEvent)

// SetTracer installs a GC event tracer (nil disables tracing).
func (rt *Runtime) SetTracer(t Tracer) { rt.tracer = t }

// Tracer returns the installed tracer (nil if none), letting embedding code
// chain its own recording onto an existing tracer instead of displacing it.
func (rt *Runtime) Tracer() Tracer { return rt.tracer }

// emit delivers an event to the tracer, if any.
func (rt *Runtime) emit(ev GCEvent) {
	if rt.tracer != nil {
		rt.tracer(ev)
	}
}
