package core

// EventKind identifies a garbage-collection phase event.
type EventKind int

const (
	// EvMinor is a completed minor collection.
	EvMinor EventKind = iota
	// EvMajor is a completed major collection.
	EvMajor
	// EvPromote is a completed object promotion.
	EvPromote
	// EvGlobalStart marks the leader initiating a global collection.
	EvGlobalStart
	// EvGlobalEnd marks the completion of a global collection.
	EvGlobalEnd
	// EvEmergency marks a vproc walking the emergency collection ladder:
	// a mutator allocation gate found no global-heap headroom and forced
	// a full minor → major → global escalation before retrying.
	EvEmergency
	// EvSnapshot is the concurrent collector's first STW window: all
	// vprocs rendezvous, the from-space is condemned, and every root is
	// snapshotted into to-space. Ns is the window duration.
	EvSnapshot
	// EvTermination is the concurrent collector's second STW window: the
	// mark is drained to completion, local forwarding is repaired, and
	// the from-space is released. Ns is the window duration.
	EvTermination
)

// NumEventKinds is the number of distinct event kinds, for tracers that
// aggregate counts per kind into fixed-size arrays.
const NumEventKinds = int(EvTermination) + 1

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvMinor:
		return "minor"
	case EvMajor:
		return "major"
	case EvPromote:
		return "promote"
	case EvGlobalStart:
		return "global-start"
	case EvGlobalEnd:
		return "global-end"
	case EvEmergency:
		return "emergency"
	case EvSnapshot:
		return "stw-snapshot"
	case EvTermination:
		return "stw-termination"
	default:
		return "unknown"
	}
}

// GCEvent describes one collection phase, for tracing.
type GCEvent struct {
	Kind  EventKind
	VProc int
	At    int64 // virtual completion time of the phase (At-Ns is its start)
	Ns    int64 // virtual duration of the phase
	Words int64 // words copied/promoted
}

// Tracer receives GC events when installed via Runtime.SetTracer.
type Tracer func(ev GCEvent)

// SetTracer installs a GC event tracer (nil disables tracing).
func (rt *Runtime) SetTracer(t Tracer) { rt.tracer = t }

// Tracer returns the installed tracer (nil if none), letting embedding code
// chain its own recording onto an existing tracer instead of displacing it.
func (rt *Runtime) Tracer() Tracer { return rt.tracer }

// emit delivers an event to the tracer, if any.
func (rt *Runtime) emit(ev GCEvent) {
	if rt.tracer != nil {
		rt.tracer(ev)
	}
}
