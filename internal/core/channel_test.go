package core

import (
	"testing"

	"repro/internal/heap"
)

// TestChannelMessageSurvivesGlobalGC is the regression test for the headline
// bug of this change: a sent-but-unreceived message must survive a *global*
// collection. The seed representation kept the pending proxies in a plain Go
// slice the collector never traced: globalScanRoots forwarded the owner's
// proxy registry, but the channel's copy kept naming the from-space chunk,
// which is zeroed and reused after the collection — Recv then dereferenced a
// stale address. With channel state heap-resident (and the proxy local slot
// forwarded when a preceding major collection promoted the message), the
// message is forwarded with everything else.
func TestChannelMessageSurvivesGlobalGC(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	ch := rt.NewChannel()
	rt.Run(func(vp *VProc) {
		msg := vp.AllocRaw([]uint64{0xDEAD, 0xBEEF, 42})
		s := vp.PushRoot(msg)
		ch.Send(vp, s)
		vp.PopRoots(1) // the channel is now the only path to the message

		// Force several global collections while the message is pending:
		// promote garbage trees until the trigger fires, with churn so
		// minor/major phases interleave.
		for i := 0; i < 8; i++ {
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 500, 6)
		}

		got, ok := ch.TryRecv(vp)
		if !ok {
			t.Fatal("pending message lost")
		}
		if vp.LoadWord(got, 0) != 0xDEAD || vp.LoadWord(got, 1) != 0xBEEF || vp.LoadWord(got, 2) != 42 {
			t.Error("message corrupted across global collections")
		}
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestChannelManyPendingAcrossGlobalGC stresses the heap-resident queue
// chain itself: many messages of mixed sizes pending across collections,
// received in FIFO order afterwards.
func TestChannelManyPendingAcrossGlobalGC(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	ch := rt.NewChannel()
	const n = 40
	rt.Run(func(vp *VProc) {
		for i := 0; i < n; i++ {
			words := make([]uint64, 1+i%7)
			for j := range words {
				words[j] = uint64(i)<<8 | uint64(j)
			}
			m := vp.AllocRaw(words)
			s := vp.PushRoot(m)
			ch.Send(vp, s)
			vp.PopRoots(1)
			if i%4 == 0 {
				b := buildTree(vp, 6, uint64(i))
				bs := vp.PushRoot(b)
				vp.PromoteRoot(bs)
				vp.PopRoots(1)
				churn(vp, 300, 5)
			}
		}
		if ch.Len() != n {
			t.Fatalf("pending = %d, want %d", ch.Len(), n)
		}
		// The host-side diagnostic view of the chain must agree: n live
		// proxies, all registered with the sender, in FIFO order.
		proxies := ch.PendingProxies()
		if len(proxies) != n {
			t.Fatalf("PendingProxies = %d entries, want %d", len(proxies), n)
		}
		for i, pa := range proxies {
			if _, ok := vp.proxyIdx[pa]; !ok {
				t.Fatalf("pending proxy %d (%v) not in the sender's registry", i, pa)
			}
		}
		for i := 0; i < n; i++ {
			got, ok := ch.TryRecv(vp)
			if !ok {
				t.Fatalf("message %d missing", i)
			}
			ln := vp.ObjectLen(got)
			if ln != 1+i%7 {
				t.Fatalf("message %d: length %d, want %d (FIFO order broken?)", i, ln, 1+i%7)
			}
			for j := 0; j < ln; j++ {
				if vp.LoadWord(got, j) != uint64(i)<<8|uint64(j) {
					t.Fatalf("message %d word %d corrupted", i, j)
				}
			}
		}
		if _, ok := ch.TryRecv(vp); ok {
			t.Error("channel should be empty")
		}
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection")
	}
}

// TestBlockingRecvHandoff checks the rendezvous fast path: a parked receiver
// gets the proxy handed to it directly, bypassing the pending chain.
func TestBlockingRecvHandoff(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	ch := rt.NewChannel()
	var got uint64
	var handedOff bool
	rt.Run(func(vp *VProc) {
		recv := vp.Spawn(func(rvp *VProc, _ Env) {
			m := ch.Recv(rvp)
			got = rvp.LoadWord(m, 0)
		})
		vp.Compute(1_000_000) // let vproc 1 steal the receiver and park
		msg := vp.AllocRaw([]uint64{77})
		s := vp.PushRoot(msg)
		ch.Send(vp, s)
		handedOff = vp.Stats.ChanHandoffs > 0
		vp.PopRoots(1)
		vp.Join(recv)
	})
	if got != 77 {
		t.Errorf("received %d, want 77", got)
	}
	if !handedOff {
		t.Error("send to a parked receiver should be a direct handoff")
	}
	if ch.Len() != 0 {
		t.Error("handoff must bypass the pending chain")
	}
}

// TestSelectPrefersPendingInOrder: Select takes from the first channel with
// a pending message, in argument order.
func TestSelectPrefersPendingInOrder(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	a, b := rt.NewChannel(), rt.NewChannel()
	rt.Run(func(vp *VProc) {
		m1 := vp.AllocRaw([]uint64{1})
		s1 := vp.PushRoot(m1)
		b.Send(vp, s1)
		vp.PopRoots(1)

		which, got := vp.Select(a, b)
		if which != 1 {
			t.Errorf("Select chose %d, want 1", which)
		}
		if vp.LoadWord(got, 0) != 1 {
			t.Error("wrong message")
		}

		m2 := vp.AllocRaw([]uint64{2})
		s2 := vp.PushRoot(m2)
		a.Send(vp, s2)
		m3 := vp.AllocRaw([]uint64{3})
		s3 := vp.PushRoot(m3)
		b.Send(vp, s3)
		vp.PopRoots(2)
		which, got = vp.Select(a, b)
		if which != 0 || vp.LoadWord(got, 0) != 2 {
			t.Errorf("Select = (%d, %d), want (0, 2)", which, vp.LoadWord(got, 0))
		}
	})
}

// TestSelectParkedAcrossChannels: a parked Select is claimed by whichever
// channel delivers first, and the stale registration on the other channel
// does not disturb later sends.
func TestSelectParkedAcrossChannels(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	a, b := rt.NewChannel(), rt.NewChannel()
	var which int
	var got uint64
	rt.Run(func(vp *VProc) {
		sel := vp.Spawn(func(svp *VProc, _ Env) {
			w, m := svp.Select(a, b)
			which = w
			got = svp.LoadWord(m, 0)
		})
		vp.Compute(1_000_000) // selector parks on both channels
		m := vp.AllocRaw([]uint64{9})
		s := vp.PushRoot(m)
		b.Send(vp, s)
		vp.PopRoots(1)
		vp.Join(sel)

		// The stale registration on a must be skipped: this send should
		// enqueue (no parked receiver is live anymore).
		m2 := vp.AllocRaw([]uint64{10})
		s2 := vp.PushRoot(m2)
		a.Send(vp, s2)
		vp.PopRoots(1)
		if got2, ok := a.TryRecv(vp); !ok || vp.LoadWord(got2, 0) != 10 {
			t.Error("send after a stale select registration lost its message")
		}
	})
	if which != 1 || got != 9 {
		t.Errorf("Select = (%d, %d), want (1, 9)", which, got)
	}
}

// TestMailboxCapacityBlocksSender: a bounded mailbox holds at most cap
// messages; the sender makes progress only as the receiver drains.
func TestMailboxCapacityBlocksSender(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	mb := rt.NewMailbox(2)
	const n = 10
	var sum uint64
	var maxLen int
	rt.Run(func(vp *VProc) {
		recv := vp.Spawn(func(rvp *VProc, _ Env) {
			for i := 0; i < n; i++ {
				if l := mb.Len(); l > maxLen {
					maxLen = l
				}
				m := mb.Recv(rvp)
				sum += rvp.LoadWord(m, 0)
				rvp.Compute(5000) // drain slower than the sender fills
			}
		})
		vp.Compute(500_000) // let vproc 1 steal the receiver
		for i := 1; i <= n; i++ {
			m := vp.AllocRaw([]uint64{uint64(i)})
			s := vp.PushRoot(m)
			mb.Send(vp, s)
			if l := mb.Len(); l > mb.Cap() {
				t.Errorf("mailbox holds %d > cap %d", l, mb.Cap())
			}
			vp.PopRoots(1)
		}
		vp.Join(recv)
	})
	if want := uint64(n * (n + 1) / 2); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if maxLen > 2 {
		t.Errorf("observed %d pending > capacity 2", maxLen)
	}
}

// TestRecvThenContinuationChain: continuation receives run as tasks, so a
// consumer that is "below" its producer on the same vproc cannot wedge —
// the single-vproc pipeline completes entirely through parked tasks.
func TestRecvThenContinuationChain(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	ch := rt.NewChannel()
	const n = 5
	var sum uint64
	var count int
	var pump func(vp *VProc, k int)
	pump = func(vp *VProc, k int) {
		if k == 0 {
			return
		}
		ch.RecvThen(vp, nil, func(vp *VProc, _ Env, msg heap.Addr) {
			sum += vp.LoadWord(msg, 0)
			count++
			pump(vp, k-1)
		})
	}
	rt.Run(func(vp *VProc) {
		pump(vp, n) // park the consumer before anything is sent
		for i := 1; i <= n; i++ {
			m := vp.AllocRaw([]uint64{uint64(i)})
			s := vp.PushRoot(m)
			ch.Send(vp, s)
			vp.PopRoots(1)
		}
	})
	if count != n || sum != n*(n+1)/2 {
		t.Errorf("continuation chain: count=%d sum=%d, want %d and %d", count, sum, n, n*(n+1)/2)
	}
}

// TestSelectThenEnvSurvivesCollections: the captured environment of a parked
// continuation is a GC root; it must be forwarded by minor, major and global
// collections while parked.
func TestSelectThenEnvSurvivesCollections(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	ch := rt.NewChannel()
	var envSum, msgVal uint64
	rt.Run(func(vp *VProc) {
		captured := vp.AllocRaw([]uint64{400, 500})
		cs := vp.PushRoot(captured)
		vp.SelectThen([]*Channel{ch}, []heap.Addr{vp.Root(cs)}, func(vp *VProc, env Env, _ int, msg heap.Addr) {
			c := env.Get(vp, 0)
			envSum = vp.LoadWord(c, 0) + vp.LoadWord(c, 1)
			msgVal = vp.LoadWord(msg, 0)
		})
		vp.PopRoots(1) // the parked continuation is now the only root

		// Collections of every flavor while the continuation is parked.
		for i := 0; i < 10; i++ {
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 400, 6)
		}

		m := vp.AllocRaw([]uint64{7})
		s := vp.PushRoot(m)
		ch.Send(vp, s)
		vp.PopRoots(1)
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection")
	}
	if envSum != 900 {
		t.Errorf("captured environment corrupted: sum=%d, want 900", envSum)
	}
	if msgVal != 7 {
		t.Errorf("message = %d, want 7", msgVal)
	}
}

// TestChannelCrossVProcAfterGlobalGC: a message promoted and then moved by a
// global collection is still received intact by another vproc.
func TestChannelCrossVProcAfterGlobalGC(t *testing.T) {
	cfg := stressConfig(2)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	ch := rt.NewChannel()
	var got uint64
	rt.Run(func(vp *VProc) {
		msg := vp.AllocRaw([]uint64{0xACE})
		s := vp.PushRoot(msg)
		ch.Send(vp, s)
		vp.PopRoots(1)

		recv := vp.Spawn(func(rvp *VProc, _ Env) {
			got = rvp.LoadWord(ch.Recv(rvp), 0)
		})

		// Global collections before the receiver (stolen by vproc 1, or
		// run inline later) picks the message up.
		for i := 0; i < 6; i++ {
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 400, 6)
		}
		vp.Join(recv)
	})
	if got != 0xACE {
		t.Errorf("received %#x, want 0xACE", got)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestMailboxCapacityConcurrentSenders: the capacity bound must hold with
// several senders racing for the last slot (the check and the enqueue are
// separated by charged advances; the commit re-verifies).
func TestMailboxCapacityConcurrentSenders(t *testing.T) {
	rt := MustNewRuntime(stressConfig(4))
	mb := rt.NewMailbox(2)
	const perSender = 12
	var sum uint64
	rt.Run(func(vp *VProc) {
		for s := 0; s < 2; s++ {
			salt := uint64(s+1) * 1000
			vp.Spawn(func(svp *VProc, _ Env) {
				for i := 1; i <= perSender; i++ {
					m := svp.AllocRaw([]uint64{salt + uint64(i)})
					ms := svp.PushRoot(m)
					mb.Send(svp, ms)
					if l := mb.Len(); l > mb.Cap() {
						t.Errorf("mailbox holds %d > cap %d", l, mb.Cap())
					}
					svp.PopRoots(1)
				}
			})
		}
		vp.Compute(200_000) // let both senders get stolen and race
		for i := 0; i < 2*perSender; i++ {
			if l := mb.Len(); l > mb.Cap() {
				t.Errorf("observed %d pending > cap %d", l, mb.Cap())
			}
			m := mb.Recv(vp)
			sum += vp.LoadWord(m, 0)
			vp.Compute(3000)
		}
	})
	var want uint64
	for s := 0; s < 2; s++ {
		for i := 1; i <= perSender; i++ {
			want += uint64(s+1)*1000 + uint64(i)
		}
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

// TestChannelCloseReleasesRecord: Close unpins the record so a global
// collection reclaims it; a closed channel is reusable and starts empty.
func TestChannelCloseReleasesRecord(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	rt.Run(func(vp *VProc) {
		// Dynamically created channels, used and closed.
		for i := 0; i < 10; i++ {
			ch := rt.NewChannel()
			m := vp.AllocRaw([]uint64{uint64(i)})
			s := vp.PushRoot(m)
			ch.Send(vp, s)
			vp.PopRoots(1)
			if got, ok := ch.TryRecv(vp); !ok || vp.LoadWord(got, 0) != uint64(i) {
				t.Fatalf("channel %d round trip failed", i)
			}
			ch.Close()
		}
		if n := len(rt.globalRoots); n != 0 {
			t.Errorf("closed channels left %d pinned roots", n)
		}
		// Records become garbage at the next global collection.
		for i := 0; i < 8; i++ {
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 500, 6)
		}
		// Close is permanent: later operations observe it as a status, and
		// nothing resurrects the released record.
		ch := rt.NewChannel()
		ch.Close()
		if !ch.Closed() {
			t.Error("Closed() false after Close")
		}
		if _, ok := ch.TryRecv(vp); ok {
			t.Error("closed channel should be empty")
		}
		if got := ch.Recv(vp); got != 0 {
			t.Errorf("Recv on closed channel = %#x, want 0", got)
		}
		m := vp.AllocRaw([]uint64{99})
		s := vp.PushRoot(m)
		if st := ch.Send(vp, s); st != SendClosed {
			t.Errorf("Send on closed channel = %v, want closed", st)
		}
		vp.PopRoots(1)
		if got := len(vp.proxies); got != 0 {
			t.Errorf("shed send left %d proxies registered", got)
		}
		if ch.addr != 0 {
			t.Error("closed channel re-acquired a heap record")
		}
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestBoundedSendSurvivesGlobalGCWhileWaiting: a sender blocked on a full
// mailbox services the scheduler, which can run work that forces global
// collections; the in-flight message's proxy must be re-read through the
// root stack, not a stale host-side copy.
func TestBoundedSendSurvivesGlobalGCWhileWaiting(t *testing.T) {
	cfg := stressConfig(1)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	mb := rt.NewMailbox(1)
	var first uint64
	rt.Run(func(vp *VProc) {
		m1 := vp.AllocRaw([]uint64{111})
		s1 := vp.PushRoot(m1)
		mb.Send(vp, s1)
		vp.PopRoots(1) // mailbox is now full

		// The blocked Send's ServiceScheduler runs these (LIFO): first
		// the GC forcer, then the drainer that frees the capacity slot.
		vp.Spawn(func(dvp *VProc, _ Env) {
			got, ok := mb.TryRecv(dvp)
			if !ok {
				t.Error("drainer found the mailbox empty")
				return
			}
			first = dvp.LoadWord(got, 0)
		})
		vp.Spawn(func(gvp *VProc, _ Env) {
			for i := 0; i < 10; i++ {
				b := buildTree(gvp, 6, uint64(i))
				bs := gvp.PushRoot(b)
				gvp.PromoteRoot(bs)
				gvp.PopRoots(1)
				churn(gvp, 400, 6)
			}
		})

		m2 := vp.AllocRaw([]uint64{222})
		s2 := vp.PushRoot(m2)
		mb.Send(vp, s2) // blocks until the drainer runs; GCs happen first
		vp.PopRoots(1)

		got := mb.Recv(vp)
		if vp.LoadWord(got, 0) != 222 {
			t.Errorf("second message = %d, want 222", vp.LoadWord(got, 0))
		}
	})
	if first != 111 {
		t.Errorf("first message = %d, want 111", first)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("test did not force a global collection during the wait")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestCloseDropsPendingProxies: closing a channel with unreceived messages
// deregisters their proxies from the senders, so the payloads stop being
// GC roots.
func TestCloseDropsPendingProxies(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		ch := rt.NewChannel()
		for i := 0; i < 5; i++ {
			m := vp.AllocRaw([]uint64{uint64(i)})
			s := vp.PushRoot(m)
			ch.Send(vp, s)
			vp.PopRoots(1)
		}
		if got := len(vp.proxies); got != 5 {
			t.Fatalf("registry holds %d proxies, want 5", got)
		}
		ch.Close()
		if got := len(vp.proxies); got != 0 {
			t.Errorf("registry holds %d proxies after Close, want 0", got)
		}
		if got := len(vp.proxyIdx); got != 0 {
			t.Errorf("index holds %d entries after Close, want 0", got)
		}
		churn(vp, 2000, 4) // the dropped payloads must not confuse collections
	})
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestCloseWakesParkedWaiter: Close with a parked blocking receiver is no
// longer a crash — the waiter wakes with a nil message (Recv returns 0),
// and later sends observe SendClosed instead of stranding or panicking.
func TestCloseWakesParkedWaiter(t *testing.T) {
	rt := MustNewRuntime(stressConfig(2))
	ch := rt.NewChannel()
	got := heap.Addr(0xdead)
	rt.Run(func(vp *VProc) {
		recv := vp.Spawn(func(rvp *VProc, _ Env) {
			got = ch.Recv(rvp)
		})
		vp.Compute(1_000_000) // let vproc 1 steal the receiver and park

		ch.Close()

		// The close woke the waiter; this send sheds instead of handing off.
		m := vp.AllocRaw([]uint64{55})
		s := vp.PushRoot(m)
		if st := ch.Send(vp, s); st != SendClosed {
			t.Errorf("Send after Close = %v, want closed", st)
		}
		vp.PopRoots(1)
		vp.Join(recv)
	})
	if got != 0 {
		t.Errorf("parked receiver got %#x, want 0 (close status)", got)
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestCloseWakesParkedContinuation: a parked RecvThen continuation runs with
// msg == 0 when the channel closes, and the runtime still quiesces (the
// outstanding count transfers to the close task).
func TestCloseWakesParkedContinuation(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	ch := rt.NewChannel()
	ran, sawNil := false, false
	rt.Run(func(vp *VProc) {
		ch.RecvThen(vp, nil, func(vp *VProc, _ Env, msg heap.Addr) {
			ran = true
			sawNil = msg == 0
		})
		vp.Compute(10_000)
		ch.Close()
	})
	if !ran {
		t.Fatal("parked continuation never ran after Close")
	}
	if !sawNil {
		t.Error("continuation saw a non-nil message from a closed channel")
	}
}

// TestTrySendShedsWhenFull: TrySend on a full mailbox reports SendFull
// without blocking, drops the message proxy, and leaves the pending chain
// intact; after draining one slot it succeeds again.
func TestTrySendShedsWhenFull(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	mb := rt.NewMailbox(2)
	rt.Run(func(vp *VProc) {
		for i := 0; i < 2; i++ {
			m := vp.AllocRaw([]uint64{uint64(i)})
			s := vp.PushRoot(m)
			if st := mb.TrySend(vp, s); st != SendOK {
				t.Fatalf("TrySend %d = %v, want ok", i, st)
			}
			vp.PopRoots(1)
		}
		m := vp.AllocRaw([]uint64{99})
		s := vp.PushRoot(m)
		if st := mb.TrySend(vp, s); st != SendFull {
			t.Errorf("TrySend on full mailbox = %v, want full", st)
		}
		vp.PopRoots(1)
		if got := vp.Stats.ChanSheds; got != 1 {
			t.Errorf("ChanSheds = %d, want 1", got)
		}
		if got := mb.Len(); got != 2 {
			t.Errorf("pending = %d after shed, want 2", got)
		}
		if got, ok := mb.TryRecv(vp); !ok || vp.LoadWord(got, 0) != 0 {
			t.Fatal("drain lost the FIFO head")
		}
		m = vp.AllocRaw([]uint64{3})
		s = vp.PushRoot(m)
		if st := mb.TrySend(vp, s); st != SendOK {
			t.Errorf("TrySend after drain = %v, want ok", st)
		}
		vp.PopRoots(1)
	})
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestCloseUnderLoad is the close-under-load regression test: receivers
// parked via RecvThen, senders mid-flight on bounded mailboxes, and GC
// pressure churning, while a fault-plan close lands at a chosen instant.
// Every send outcome must be a status (never a panic), every continuation
// must run (quiescence), and the books must balance: sends = deliveries +
// sheds.
func TestCloseUnderLoad(t *testing.T) {
	cfg := stressConfig(4)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	lane := rt.NewMailbox(2)
	var delivered, closedNil int64
	var okSends, fullSends, closedSends int64
	rt.Run(func(vp *VProc) {
		// Park a pool of continuation receivers.
		for i := 0; i < 8; i++ {
			lane.RecvThen(vp, nil, func(vp *VProc, _ Env, msg heap.Addr) {
				if msg == 0 {
					closedNil++
				} else {
					delivered++
				}
			})
		}
		// Senders on every vproc, racing the close.
		for i := 0; i < 16; i++ {
			vp.Spawn(func(svp *VProc, _ Env) {
				for j := 0; j < 4; j++ {
					m := svp.AllocRaw([]uint64{uint64(j)})
					s := svp.PushRoot(m)
					switch lane.TrySend(svp, s) {
					case SendOK:
						okSends++
					case SendFull:
						fullSends++
					case SendClosed:
						closedSends++
					}
					svp.PopRoots(1)
					churn(svp, 100, 5)
				}
			})
		}
		// The close lands mid-traffic via the fault plan (the workload's
		// natural makespan is ~24us; 8us is mid-flight).
		p := (&FaultPlan{}).CloseAt(0, 8_000, lane)
		rt.InstallFaults(p)
	})
	total := rt.TotalStats()
	if delivered+closedNil != 8 {
		t.Errorf("continuations ran %d+%d times, want 8", delivered, closedNil)
	}
	if okSends+fullSends+closedSends != 64 {
		t.Errorf("send statuses %d+%d+%d, want 64 total", okSends, fullSends, closedSends)
	}
	if total.ChanSheds != fullSends+closedSends {
		t.Errorf("ChanSheds = %d, want %d (full %d + closed %d)",
			total.ChanSheds, fullSends+closedSends, fullSends, closedSends)
	}
	// Every OK send was either handed to a continuation or discarded with
	// the pending chain at close time — never lost while the lane was open.
	if delivered > okSends {
		t.Errorf("delivered %d messages from %d successful sends", delivered, okSends)
	}
	if closedSends == 0 {
		t.Error("no send observed the close; move the close earlier")
	}
	if !lane.Closed() {
		t.Error("fault-plan close never fired")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

// TestCloseSkipsStaleRegistrations: stale (already claimed) ring entries do
// not block Close — only a live waiter is a programming error.
func TestCloseSkipsStaleRegistrations(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	a, b := rt.NewChannel(), rt.NewChannel()
	rt.Run(func(vp *VProc) {
		// Park a select on both channels, then deliver via b: the entry on
		// a goes stale.
		vp.SelectThen([]*Channel{a, b}, nil, func(vp *VProc, _ Env, _ int, _ heap.Addr) {})
		m := vp.AllocRaw([]uint64{1})
		s := vp.PushRoot(m)
		b.Send(vp, s)
		vp.PopRoots(1)
		vp.SleepFor(50_000) // run the continuation task

		a.Close() // must not panic: the registration on a is stale
		b.Close()
	})
}

// TestTrySendRacesClose: senders spin TrySend on a tiny lane while another
// task closes it mid-traffic — the exact race the overload harness's
// admission path runs under -race. Every outcome must be a status, the
// statuses must partition the attempts, and SendClosed must be sticky: once
// a sender observes it, every later attempt observes it too.
func TestTrySendRacesClose(t *testing.T) {
	cfg := stressConfig(4)
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	lane := rt.NewMailbox(1)
	const senders, attempts = 8, 32
	var ok, full, closed int64
	rt.Run(func(vp *VProc) {
		for i := 0; i < senders; i++ {
			vp.Spawn(func(svp *VProc, _ Env) {
				sawClosed := false
				for j := 0; j < attempts; j++ {
					m := svp.AllocRaw([]uint64{uint64(j)})
					s := svp.PushRoot(m)
					switch st := lane.TrySend(svp, s); st {
					case SendOK:
						ok++
						if sawClosed {
							t.Errorf("TrySend succeeded after this sender saw SendClosed")
						}
						// Drain our own message so the lane refills: the
						// OK/Full boundary keeps moving under the close.
						lane.TryRecv(svp)
					case SendFull:
						full++
						if sawClosed {
							t.Errorf("SendFull after SendClosed — the status went backwards")
						}
					case SendClosed:
						closed++
						sawClosed = true
						if !lane.Closed() {
							t.Errorf("SendClosed from an open lane")
						}
					default:
						t.Errorf("unknown send status %v", st)
					}
					svp.PopRoots(1)
					churn(svp, 60, 4)
				}
			})
		}
		vp.Spawn(func(cvp *VProc, _ Env) {
			cvp.SleepFor(4_000)
			lane.Close()
		})
	})
	if got := ok + full + closed; got != senders*attempts {
		t.Errorf("statuses %d+%d+%d = %d, want %d attempts", ok, full, closed, got, senders*attempts)
	}
	if closed == 0 {
		t.Error("no sender observed the close; move it earlier")
	}
	if ok == 0 {
		t.Error("no sender got through before the close; move it later")
	}
	if !lane.Closed() {
		t.Error("lane never closed")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}
