package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/vtime"
)

// Runtime is the assembled Manticore runtime system: machine model, page
// table, heap space, descriptor table, chunk manager, vprocs, scheduler
// state, and the global-collection protocol state.
type Runtime struct {
	Cfg     Config
	Machine *numa.Machine
	Pages   *mempage.Table
	Space   *heap.Space
	Descs   *heap.Table
	Chunks  *heap.ChunkManager
	Eng     *vtime.Engine
	VProcs  []*VProc

	// Scheduler state (serialized by the virtual-time engine).
	outstanding int64 // spawned but not yet completed tasks
	finished    bool
	// entryDone flips once the entry task has either returned or been
	// reported lost: the entry task holds one outstanding count that is not
	// on any queue or running stack, so a crash of vproc 0 mid-entry must
	// release it exactly once (see crash.go).
	entryDone bool

	global globalState
	tracer Tracer

	// chanDesc is the lazily registered channel-record descriptor ID
	// (0 = not yet registered); see channel.go.
	chanDesc uint16

	// localGCActive counts vprocs currently inside a local collection or
	// promotion. The Debug verifier only runs when it is zero: a
	// suspended collector legitimately has partially-scanned copies in
	// its chunk, which are unreachable by other vprocs but visible to a
	// whole-heap walk.
	localGCActive int

	// globalRoots are addresses pinned by the embedding program (shared
	// structures held in Go variables across collections); the global
	// collector updates them in place.
	globalRoots []*heap.Addr

	// Emergency-ladder fail-fast state (see ensureGlobalHeadroom): after
	// a full escalation fails to free headroom, further TryAlloc* calls
	// fail immediately until a global collection has run or the heap has
	// grown by at least two chunks — both deterministic signals that the
	// ladder might succeed now. Without this, every failed allocation
	// would re-run a stop-the-world ladder and the run would thrash.
	ladderFailed        bool
	ladderFailGlobalGCs int
	ladderFailAllocated int
	ladderFailNs        int64

	Stats RTStats
}

// RegisterGlobalRoot pins a global-heap address held outside the simulated
// heap (e.g. by a benchmark harness) so global collections keep it current.
// The referent must be in the global heap.
func (rt *Runtime) RegisterGlobalRoot(a *heap.Addr) {
	rt.globalRoots = append(rt.globalRoots, a)
}

// unregisterGlobalRoot removes a pinned root (e.g. a closed channel's
// record), preserving the order of the rest — global collections iterate
// the list, and forwarding order must stay deterministic.
func (rt *Runtime) unregisterGlobalRoot(a *heap.Addr) {
	for i, q := range rt.globalRoots {
		if q == a {
			rt.globalRoots = append(rt.globalRoots[:i], rt.globalRoots[i+1:]...)
			return
		}
	}
}

// RTStats aggregates runtime-wide statistics.
type RTStats struct {
	GlobalGCs        int
	GlobalCopied     int64 // words copied by global collections
	GlobalNs         int64 // virtual wall time spent in global collections
	ChunksFromSpace  int
	CrossNodeScanned int // chunks scanned by a vproc on another node
	// LastGlobalSurvivedWords is the active global chunkage immediately
	// after the most recent global collection — the post-GC survival
	// component of the occupancy signal. Zero until the first global GC.
	LastGlobalSurvivedWords int
	// SnapshotNs / TermNs accumulate the concurrent collector's two STW
	// window durations (leader-timed); zero under the legacy collector.
	SnapshotNs int64
	TermNs     int64
}

// MemPressure is the runtime's deterministic occupancy signal, sampled on
// demand (admission gates read it at request arrival, which is a
// safepoint-aligned instant in the simulation). All fields are exact
// counters, not estimates, so two runs of the same schedule read the same
// values.
type MemPressure struct {
	// ActiveChunks / BudgetChunks is the occupancy ratio; BudgetChunks
	// is 0 when the heap is unbounded (occupancy then has no ceiling).
	ActiveChunks int
	BudgetChunks int
	// SurvivedWords is the active chunkage right after the last global
	// collection: memory even a full collection could not reclaim.
	SurvivedWords int
	// Overdrafts counts chunk activations past the budget (collections
	// completing mid-copy); AllocFailed counts mutator allocations that
	// failed after the emergency ladder; EmergencyGCs counts ladder
	// walks.
	Overdrafts   int
	AllocFailed  int64
	EmergencyGCs int64
}

// MemPressure returns the current occupancy/pressure counters.
func (rt *Runtime) MemPressure() MemPressure {
	var failed, emerg int64
	for _, vp := range rt.VProcs {
		failed += vp.Stats.AllocFailed
		emerg += vp.Stats.EmergencyGCs
	}
	return MemPressure{
		ActiveChunks:  rt.Chunks.ActiveChunks(),
		BudgetChunks:  rt.Chunks.BudgetChunks,
		SurvivedWords: rt.Stats.LastGlobalSurvivedWords,
		Overdrafts:    rt.Chunks.Overdrafts,
		AllocFailed:   failed,
		EmergencyGCs:  emerg,
	}
}

// NewRuntime builds a runtime from the configuration. Descriptor
// registration must happen before the first allocation of the corresponding
// mixed type; use rt.Descs.Register.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		Cfg:     cfg,
		Machine: numa.NewMachine(cfg.Topo),
		Pages:   mempage.NewTable(cfg.Policy, cfg.Topo.NumNodes()),
		Descs:   heap.NewTable(),
		Eng:     vtime.NewEngine(cfg.NumVProcs),
	}
	if cfg.SpanWorkers > 1 {
		rt.Eng.SetParallel(cfg.SpanWorkers)
	}
	rt.Space = heap.NewSpace(rt.Pages)
	rt.Chunks = heap.NewChunkManager(rt.Space, cfg.ChunkWords, cfg.Topo.NumNodes())
	rt.Chunks.NodeAffine = cfg.NodeAffineChunks
	rt.Chunks.Debug = cfg.Debug
	rt.Chunks.BudgetChunks = cfg.GlobalBudgetChunks
	rt.Chunks.VProcBudget = cfg.VProcChunkBudget

	cores := cfg.Topo.SparseCoreAssignment(cfg.NumVProcs)
	for i := 0; i < cfg.NumVProcs; i++ {
		core := cores[i]
		node := cfg.Topo.NodeOfCore(core)
		vp := &VProc{
			ID:   i,
			Core: core,
			Node: node,
			rt:   rt,
			proc: rt.Eng.Proc(i),
			rng:  cfg.Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15),
		}
		// Local heap pages are placed by the policy on behalf of the
		// vproc's node: under the local policy they are node-local;
		// under interleaved/single-node they land elsewhere, which is
		// exactly the experiment of §4.3.
		r := rt.Space.NewRegion(heap.RegionLocal, i, cfg.LocalHeapWords, node)
		vp.Local = heap.NewLocalHeap(r)
		rt.VProcs = append(rt.VProcs, vp)
	}
	rt.global.init(rt)
	return rt, nil
}

// MustNewRuntime is NewRuntime, panicking on configuration errors.
func MustNewRuntime(cfg Config) *Runtime {
	rt, err := NewRuntime(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// getChunk hands the vproc a fresh current chunk and charges the
// synchronization cost: node-local for a reused chunk, global for a fresh
// system allocation (§3.3). During the scan phase of a global collection,
// a replaced chunk that still holds unscanned data is queued on its node's
// scan list.
//
// The operation is split around its engine charge so the step-driven scan
// machine (global.go) can issue the same mutations at the same virtual
// instants: getChunkStart performs every mutation the direct code issues
// before the sync advance and returns the chunk plus the charge;
// getChunkFinish performs the post-advance half (installing the chunk and
// the trigger check).
func (rt *Runtime) getChunk(vp *VProc) {
	c, d := rt.getChunkStart(vp)
	vp.advance(d)
	rt.getChunkFinish(vp, c)
}

// getChunkStart is the pre-charge half of getChunk.
func (rt *Runtime) getChunkStart(vp *VProc) (*heap.Chunk, int64) {
	if rt.global.scanning {
		if old := vp.curChunk; old != nil && old.Scan < old.Top {
			if old == vp.scanningChunk {
				// The vproc is mid-step in this very chunk;
				// enqueueing it now would let another vproc
				// advance the same scan pointer concurrently.
				vp.deferredEnqueue = true
			} else {
				rt.enqueueScan(old)
			}
		}
	}
	c, sync := rt.Chunks.Get(vp.Node, vp.ID)
	vp.Stats.ChunksRequested++
	d := rt.Cfg.ChunkSyncLocalNs
	if sync == heap.SyncGlobal {
		d = rt.Cfg.ChunkSyncGlobalNs
	}
	return c, d
}

// getChunkFinish is the post-charge half of getChunk. During a global
// collection's scan phase the trigger check is inert (global.pending is
// already set), which is what lets the scan machine run it from a step.
func (rt *Runtime) getChunkFinish(vp *VProc, c *heap.Chunk) {
	if rt.Cfg.Debug {
		for _, o := range rt.VProcs {
			if o != vp && o.curChunk == c {
				panic(fmt.Sprintf("core: chunk r%d handed to vproc %d while vproc %d still allocates into it",
					c.Region.ID, vp.ID, o.ID))
			}
		}
	}
	vp.curChunk = c

	// §3.4: global collection is triggered when the allocated global
	// chunkage exceeds the threshold. Checking here covers every growth
	// path (major collections, promotions, proxies, refs). The request
	// only raises the flag; collection starts at the next safepoint.
	// Under the concurrent collector the threshold is the pacer's moving
	// trigger, and it is inert for the whole mark (gcTrigger).
	if !rt.global.pending && rt.Chunks.AllocatedWords > rt.gcTrigger() {
		rt.requestGlobalGC(vp)
	}
}

// globalAllocDst returns the vproc's current chunk with room for
// payloadWords, fetching new chunks as needed.
func (rt *Runtime) globalAllocDst(vp *VProc, payloadWords int) *heap.Chunk {
	if payloadWords+1 > rt.Cfg.ChunkWords-1 {
		panic(fmt.Sprintf("core: object of %d words exceeds chunk size %d", payloadWords, rt.Cfg.ChunkWords))
	}
	if vp.curChunk == nil || !vp.curChunk.CanAlloc(payloadWords) {
		rt.getChunk(vp)
	}
	if rt.global.marking {
		// Allocation-paced assists: global allocation during a concurrent
		// mark accrues scan debt this vproc pays at its next safepoint.
		vp.assistDebt += payloadWords + 1
	}
	return vp.curChunk
}

// Run executes entry as the initial task on vproc 0 and drives all vprocs
// until every spawned task has completed. It returns the virtual makespan
// in nanoseconds.
func (rt *Runtime) Run(entry func(vp *VProc)) int64 {
	rt.outstanding = 1
	rt.Eng.Run(func(p *vtime.Proc) {
		vp := rt.VProcs[p.ID]
		// A crashed vproc unwinds its whole stack with the vprocCrashed
		// sentinel (see crash.go); recovering it here lets the engine
		// retire the proc normally. Everything else propagates.
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(vprocCrashed); !ok {
					panic(r)
				}
			}
		}()
		if p.ID == 0 {
			entry(vp)
			vp.Stats.TasksRun++
			rt.entryDone = true
			rt.outstanding--
		}
		vp.schedulerLoop()
	})
	return rt.Eng.MaxClock()
}

// TotalStats sums the per-vproc statistics.
func (rt *Runtime) TotalStats() VPStats {
	var t VPStats
	for _, vp := range rt.VProcs {
		t.MinorGCs += vp.Stats.MinorGCs
		t.MajorGCs += vp.Stats.MajorGCs
		t.Promotions += vp.Stats.Promotions
		t.MinorCopied += vp.Stats.MinorCopied
		t.MajorCopied += vp.Stats.MajorCopied
		t.PromotedWords += vp.Stats.PromotedWords
		t.GCNs += vp.Stats.GCNs
		t.GlobalNs += vp.Stats.GlobalNs
		t.TasksRun += vp.Stats.TasksRun
		t.Steals += vp.Stats.Steals
		t.FailedSteals += vp.Stats.FailedSteals
		t.AllocWords += vp.Stats.AllocWords
		t.ChunksRequested += vp.Stats.ChunksRequested
		t.ChanSends += vp.Stats.ChanSends
		t.ChanRecvs += vp.Stats.ChanRecvs
		t.ChanHandoffs += vp.Stats.ChanHandoffs
		t.ChanSheds += vp.Stats.ChanSheds
		t.TimersFired += vp.Stats.TimersFired
		t.FaultsInjected += vp.Stats.FaultsInjected
		t.FaultStallNs += vp.Stats.FaultStallNs
		t.FaultBurstWords += vp.Stats.FaultBurstWords
		t.AllocFailed += vp.Stats.AllocFailed
		t.EmergencyGCs += vp.Stats.EmergencyGCs
		t.Crashes += vp.Stats.Crashes
		t.LostTasks += vp.Stats.LostTasks
		t.LostConts += vp.Stats.LostConts
		t.LostTimers += vp.Stats.LostTimers
		t.BarrierHits += vp.Stats.BarrierHits
		t.BarrierNs += vp.Stats.BarrierNs
		t.MarkAssistWords += vp.Stats.MarkAssistWords
		t.MarkAssistNs += vp.Stats.MarkAssistNs
	}
	return t
}
