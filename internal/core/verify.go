package core

import (
	"fmt"

	"repro/internal/heap"
)

// VerifyHeap walks every local heap and every active global chunk and
// checks the invariants of §2.3/§3.1:
//
//  1. there are no pointers from one vproc's local heap to another's;
//  2. there are no pointers from the global heap into any vproc's local
//     heap (except through the local slot of a registered proxy);
//  3. no live pointer targets a condemned (from-space) chunk outside a
//     global collection;
//  4. every pointer targets a well-formed object (header or forwarding
//     word at the target).
//
// It is intended for Debug mode and tests; costs are not modelled.
func (rt *Runtime) VerifyHeap() error {
	// checkPtr validates a single pointer found in sourceRegion.
	checkPtr := func(src *heap.Region, p heap.Addr) error {
		if p == 0 {
			return nil
		}
		if p.RegionID() < 0 || p.RegionID() >= rt.Space.NumRegions() {
			return fmt.Errorf("pointer %v to unknown region", p)
		}
		dst := rt.Space.Region(p.RegionID())
		if dst.Kind == heap.RegionLocal {
			if src.Kind == heap.RegionChunk {
				return fmt.Errorf("global→local pointer %v", p)
			}
			if src.ID != dst.ID {
				return fmt.Errorf("cross-local pointer from vproc %d heap into vproc %d heap (%v)",
					src.Owner, dst.Owner, p)
			}
		}
		if dst.Kind == heap.RegionChunk && !rt.global.scanning {
			if c := rt.Chunks.ChunkOf(dst.ID); c != nil && c.FromSpace {
				return fmt.Errorf("pointer %v into from-space chunk", p)
			}
		}
		w := p.Word()
		if w < 1 || w > len(dst.Words) {
			return fmt.Errorf("pointer %v outside region bounds", p)
		}
		return nil
	}

	// walk scans the objects in region words [lo, hi).
	walk := func(r *heap.Region, lo, hi int) error {
		for scan := lo; scan < hi; {
			h := r.Words[scan]
			var n int
			if heap.IsHeader(h) {
				obj := heap.MakeAddr(r.ID, scan+1)
				var werr error
				heap.ScanObject(rt.Space, rt.Descs, obj, func(slot int, p heap.Addr) heap.Addr {
					if werr == nil {
						if err := checkPtr(r, p); err != nil {
							werr = fmt.Errorf("object %v (id %d, %d words) slot %d: %w",
								obj, heap.HeaderID(h), heap.HeaderLen(h), slot, err)
						}
					}
					return p
				})
				if werr != nil {
					return werr
				}
				n = heap.HeaderLen(h)
			} else {
				t := heap.ForwardTarget(h)
				if err := checkPtr(r, t); err != nil {
					return fmt.Errorf("forwarding word at r%d+%d: %w", r.ID, scan, err)
				}
				n = rt.Space.ObjectLen(t)
			}
			scan += n + 1
		}
		return nil
	}

	for _, vp := range rt.VProcs {
		lh := vp.Local
		if err := lh.CheckLayout(); err != nil {
			return err
		}
		if err := walk(lh.Region, 1, lh.OldTop); err != nil {
			return fmt.Errorf("vproc %d old area: %w", vp.ID, err)
		}
		if err := walk(lh.Region, lh.NurseryStart, lh.Alloc); err != nil {
			return fmt.Errorf("vproc %d nursery: %w", vp.ID, err)
		}
		for i, a := range vp.roots {
			if a != 0 {
				dst := rt.Space.Region(a.RegionID())
				if dst.Kind == heap.RegionLocal && dst.ID != lh.Region.ID {
					return fmt.Errorf("vproc %d root %d points into vproc %d's heap", vp.ID, i, dst.Owner)
				}
				if err := checkPtr(lh.Region, a); err != nil {
					return fmt.Errorf("vproc %d root %d: %w", vp.ID, i, err)
				}
			}
		}
	}
	for _, c := range rt.Chunks.Active() {
		if c.FromSpace {
			continue
		}
		if err := walk(c.Region, 1, c.Top); err != nil {
			return fmt.Errorf("chunk r%d (node %d): %w", c.Region.ID, c.Node, err)
		}
	}
	return nil
}

// VerifyTriColor checks the concurrent collector's tri-color invariant at
// mark termination, after the drain and the forwarding repairs but before
// the from-space is released: no root, local-heap slot, to-space chunk slot,
// or forwarding target may still reference a from-space (white) object. A
// violation is a black→white edge the write barrier or a termination rescan
// missed — exactly the lost-object failure the insertion barrier exists to
// prevent. Debug/test-only; costs are not modelled.
func (rt *Runtime) VerifyTriColor() error {
	white := func(p heap.Addr) bool {
		if p == 0 {
			return false
		}
		if rt.Space.Region(p.RegionID()).Kind != heap.RegionChunk {
			return false
		}
		c := rt.Chunks.ChunkOf(p.RegionID())
		return c != nil && c.FromSpace
	}

	// walk checks every traced slot and forwarding target in region words
	// [lo, hi).
	walk := func(r *heap.Region, lo, hi int, what string) error {
		for scan := lo; scan < hi; {
			h := r.Words[scan]
			var n int
			if heap.IsHeader(h) {
				obj := heap.MakeAddr(r.ID, scan+1)
				var werr error
				heap.ScanObject(rt.Space, rt.Descs, obj, func(slot int, p heap.Addr) heap.Addr {
					if werr == nil && white(p) {
						werr = fmt.Errorf("%s object %v slot %d holds from-space pointer %v", what, obj, slot, p)
					}
					return p
				})
				if werr != nil {
					return werr
				}
				n = heap.HeaderLen(h)
			} else {
				t := heap.ForwardTarget(h)
				if white(t) {
					return fmt.Errorf("%s forwarding word at r%d+%d targets from-space %v", what, r.ID, scan, t)
				}
				n = rt.Space.ObjectLen(t)
			}
			scan += n + 1
		}
		return nil
	}

	for _, vp := range rt.VProcs {
		lh := vp.Local
		if err := walk(lh.Region, 1, lh.OldTop, fmt.Sprintf("vproc %d old-area", vp.ID)); err != nil {
			return err
		}
		if err := walk(lh.Region, lh.NurseryStart, lh.Alloc, fmt.Sprintf("vproc %d nursery", vp.ID)); err != nil {
			return err
		}
		for i, a := range vp.roots {
			if white(a) {
				return fmt.Errorf("vproc %d root %d holds from-space pointer %v", vp.ID, i, a)
			}
		}
		for i, pa := range vp.proxies {
			if white(pa) {
				return fmt.Errorf("vproc %d proxy %d is from-space (%v)", vp.ID, i, pa)
			}
		}
		for i, t := range vp.resultTasks {
			if white(t.result) {
				return fmt.Errorf("vproc %d result %d holds from-space pointer %v", vp.ID, i, t.result)
			}
		}
	}
	for _, c := range rt.Chunks.Active() {
		if c.FromSpace {
			continue
		}
		if err := walk(c.Region, 1, c.Top, fmt.Sprintf("to-space chunk r%d", c.Region.ID)); err != nil {
			return err
		}
	}
	for i, pa := range rt.globalRoots {
		if white(*pa) {
			return fmt.Errorf("global root %d holds from-space pointer %v", i, *pa)
		}
	}
	return nil
}
