package core

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/numa"
)

// stressConfig returns a configuration with tiny heaps and a low global
// trigger so every collection phase fires many times, plus the full-heap
// invariant verifier after every phase.
func stressConfig(nvprocs int) Config {
	topo := numa.Custom("stress", 2, 2, 2, 20, 15, 6)
	cfg := DefaultConfig(topo, nvprocs)
	cfg.LocalHeapWords = 2048
	cfg.ChunkWords = 512
	cfg.GlobalTriggerWords = 8 * 512
	cfg.Debug = true
	return cfg
}

// buildTree builds a random binary tree of the given depth in the heap and
// returns its address; the caller must root it before the next allocation.
// Leaves are raw objects carrying a value; interior nodes are 2-vectors.
func buildTree(vp *VProc, depth int, val uint64) heap.Addr {
	if depth == 0 {
		return vp.AllocRaw([]uint64{val})
	}
	l := buildTree(vp, depth-1, val*2)
	ls := vp.PushRoot(l)
	r := buildTree(vp, depth-1, val*2+1)
	rs := vp.PushRoot(r)
	v := vp.AllocVector([]int{ls, rs})
	vp.PopRoots(2)
	return v
}

// checksumTree deterministically folds the tree's leaf values. It uses raw
// space access (costs do not matter for correctness checks) and resolves
// forwarding pointers, so it is valid on any root no matter how many
// collections have run.
func checksumTree(vp *VProc, a heap.Addr) uint64 {
	a = vp.Resolve(a)
	s := vp.rt.Space
	h := s.Header(a)
	switch heap.HeaderID(h) {
	case heap.IDRaw:
		return s.Payload(a)[0]
	case heap.IDVector:
		var sum uint64 = 1469598103934665603
		for _, w := range s.Payload(a) {
			sum = (sum ^ checksumTree(vp, heap.Addr(w))) * 1099511628211
		}
		return sum
	default:
		panic("unexpected object in tree")
	}
}

// churn allocates-and-drops garbage to force minor collections.
func churn(vp *VProc, objects, size int) {
	for i := 0; i < objects; i++ {
		vp.AllocRawN(size)
	}
}

func TestMinorGCPreservesGraph(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		a := buildTree(vp, 5, 1)
		slot := vp.PushRoot(a)
		want := checksumTree(vp, vp.Root(slot))
		minors := vp.Stats.MinorGCs
		churn(vp, 500, 3) // far exceeds the nursery: many minors
		if vp.Stats.MinorGCs == minors {
			t.Error("expected minor collections to run")
		}
		if got := checksumTree(vp, vp.Root(slot)); got != want {
			t.Errorf("checksum after minors = %d, want %d", got, want)
		}
	})
}

// pushList prepends a raw payload onto a cons list held in a root slot.
func pushList(vp *VProc, listSlot int, val uint64) {
	blob := vp.AllocRaw([]uint64{val, val ^ 0xABCD, val * 31})
	bs := vp.PushRoot(blob)
	cell := vp.AllocVector([]int{bs, listSlot})
	vp.PopRoots(1)
	vp.SetRoot(listSlot, cell)
}

// sumList folds the list for verification.
func sumList(vp *VProc, a heap.Addr) uint64 {
	var sum uint64
	for a != 0 {
		a = vp.Resolve(a)
		s := vp.rt.Space
		blob := vp.Resolve(heap.Addr(s.Payload(a)[0]))
		for _, w := range s.Payload(blob) {
			sum += w
		}
		a = heap.Addr(s.Payload(a)[1])
	}
	return sum
}

func TestMajorGCMovesOldDataToGlobal(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		// Grow a live list far beyond the local heap size: the old
		// generation fills, the nursery shrinks below threshold, and
		// major collections must offload old data to the global heap.
		listSlot := vp.PushRoot(0)
		var want uint64
		for i := uint64(1); i <= 600; i++ {
			pushList(vp, listSlot, i)
			want += i + (i ^ 0xABCD) + i*31
			if i%10 == 0 {
				churn(vp, 40, 4)
			}
		}
		if vp.Stats.MajorGCs == 0 {
			t.Error("expected major collections to run")
		}
		if got := sumList(vp, vp.Root(listSlot)); got != want {
			t.Errorf("list sum after majors = %d, want %d", got, want)
		}
		// The list head was just allocated, but the tail must have
		// been evacuated to the global heap.
		tail := vp.Resolve(vp.Root(listSlot))
		hops := 0
		for {
			next := heap.Addr(rt.Space.Payload(tail)[1])
			if next == 0 {
				break
			}
			tail = vp.Resolve(next)
			hops++
		}
		if rt.Space.Region(tail.RegionID()).Kind != heap.RegionChunk {
			t.Errorf("list tail (after %d hops) still in local heap after %d majors", hops, vp.Stats.MajorGCs)
		}
	})
}

func TestPromotionPreservesGraphAndInvariants(t *testing.T) {
	rt := MustNewRuntime(stressConfig(1))
	rt.Run(func(vp *VProc) {
		a := buildTree(vp, 6, 3)
		slot := vp.PushRoot(a)
		want := checksumTree(vp, vp.Root(slot))
		na := vp.PromoteRoot(slot)
		if rt.Space.Region(na.RegionID()).Kind != heap.RegionChunk {
			t.Fatal("promotion did not move the root to the global heap")
		}
		if got := checksumTree(vp, na); got != want {
			t.Errorf("checksum after promotion = %d, want %d", got, want)
		}
		if err := rt.VerifyHeap(); err != nil {
			t.Errorf("heap invariants after promotion: %v", err)
		}
		// Promotion is idempotent on already-global data.
		if again := vp.Promote(na); again != na {
			t.Errorf("re-promotion moved a global object: %v -> %v", na, again)
		}
		// The local heap still has forwarding pointers; run collections
		// over them.
		churn(vp, 3000, 4)
		if got := checksumTree(vp, vp.Root(slot)); got != want {
			t.Errorf("checksum after churn = %d, want %d", got, want)
		}
	})
}

func TestGlobalGCReclaimsAndPreserves(t *testing.T) {
	rt := MustNewRuntime(stressConfig(4))
	var sums [4]uint64
	var wants [4]uint64
	rt.Run(func(vp *VProc) {
		// Run the same mutator on all four vprocs via tasks.
		for i := 0; i < 4; i++ {
			i := i
			vp.Spawn(func(vp *VProc, _ Env) {
				a := buildTree(vp, 6, uint64(i+1))
				slot := vp.PushRoot(a)
				wants[i] = checksumTree(vp, vp.Root(slot))
				// Alternate promotion and churn so global heap
				// fills with garbage and live data.
				for round := 0; round < 6; round++ {
					vp.PromoteRoot(slot)
					b := buildTree(vp, 5, uint64(round))
					bs := vp.PushRoot(b)
					vp.PromoteRoot(bs)
					vp.PopRoots(1)
					churn(vp, 800, 6)
				}
				sums[i] = checksumTree(vp, vp.Root(slot))
				vp.PopRoots(1)
			})
		}
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatalf("expected global collections (chunks active: %d)", len(rt.Chunks.Active()))
	}
	for i := range sums {
		if sums[i] != wants[i] {
			t.Errorf("vproc task %d: checksum %d, want %d", i, sums[i], wants[i])
		}
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants at end: %v", err)
	}
}

func TestStealPromotesEnvironment(t *testing.T) {
	cfg := stressConfig(2)
	rt := MustNewRuntime(cfg)
	var got, want uint64
	var stolenWasGlobal bool
	rt.Run(func(vp *VProc) {
		a := buildTree(vp, 5, 9)
		slot := vp.PushRoot(a)
		want = checksumTree(vp, vp.Root(slot))
		t0 := vp.Spawn(func(tvp *VProc, env Env) {
			root := env.Get(tvp, 0)
			// If the task was stolen, lazy promotion must have
			// moved the environment to the global heap.
			if tvp.ID != 0 {
				r := tvp.rt.Space.Region(tvp.Resolve(root).RegionID())
				stolenWasGlobal = r.Kind == heap.RegionChunk
			}
			got = checksumTree(tvp, root)
		}, vp.Root(slot))
		// Busy-spin on compute (not the queue) so vproc 1 steals t0.
		vp.Compute(1_000_000)
		vp.Join(t0)
		vp.PopRoots(1)
	})
	if got != want {
		t.Errorf("stolen task computed %d, want %d", got, want)
	}
	total := rt.TotalStats()
	if total.Steals == 0 {
		t.Error("expected the idle vproc to steal the task")
	}
	if !stolenWasGlobal {
		t.Error("stolen environment was not promoted to the global heap")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, VPStats, uint64) {
		rt := MustNewRuntime(stressConfig(4))
		var sum uint64
		mk := rt.Run(func(vp *VProc) {
			for i := 0; i < 6; i++ {
				i := i
				vp.Spawn(func(vp *VProc, _ Env) {
					a := buildTree(vp, 5, uint64(i))
					s := vp.PushRoot(a)
					churn(vp, 400, 5)
					sum += checksumTree(vp, vp.Root(s))
					vp.PopRoots(1)
				})
			}
		})
		return mk, rt.TotalStats(), sum
	}
	mk1, st1, sum1 := run()
	mk2, st2, sum2 := run()
	if mk1 != mk2 {
		t.Errorf("virtual makespan differs across runs: %d vs %d", mk1, mk2)
	}
	if st1 != st2 {
		t.Errorf("stats differ across runs:\n%+v\n%+v", st1, st2)
	}
	if sum1 != sum2 {
		t.Errorf("checksums differ across runs: %d vs %d", sum1, sum2)
	}
}
