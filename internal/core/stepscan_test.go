package core

import "testing"

// TestStepScanEquivalence proves the step-driven global collectors
// (stepscan.go) are schedule-identical to the direct-style loops they
// transcribe: a promotion-heavy run with spawned (stealable) tasks and many
// global collections must produce the same makespan, the same surviving
// graph, and bit-identical runtime statistics under both execution styles.
// Debug mode keeps the whole-heap verifier on after every phase.
func TestStepScanEquivalence(t *testing.T) {
	type outcome struct {
		makespan int64
		sum      uint64
		vp       VPStats
		rt       RTStats
	}
	run := func(noStep bool) outcome {
		cfg := stressConfig(4)
		cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
		cfg.NoStepKernels = noStep
		rt := MustNewRuntime(cfg)
		var out outcome
		out.makespan = rt.Run(func(vp *VProc) {
			a := buildTree(vp, 6, 5)
			s := vp.PushRoot(a)
			for i := 0; i < 8; i++ {
				vp.PromoteRoot(s)
				// A stealable churn task per round so queued/stolen
				// environments participate in the root walks.
				task := vp.Spawn(func(vp *VProc, env Env) {
					churn(vp, 400, 5)
				})
				b := buildTree(vp, 6, uint64(i))
				bs := vp.PushRoot(b)
				vp.PromoteRoot(bs)
				vp.PopRoots(1)
				churn(vp, 1200, 6)
				vp.Join(task)
			}
			out.sum = checksumTree(vp, vp.Root(s))
			vp.PopRoots(1)
		})
		out.vp = rt.TotalStats()
		out.rt = rt.Stats
		if rt.Stats.GlobalGCs == 0 {
			t.Fatal("stress run triggered no global collections; the scan machines went unexercised")
		}
		return out
	}
	stepped := run(false)
	direct := run(true)
	if stepped != direct {
		t.Errorf("step-driven and direct global collection diverged:\n step:   %+v\n direct: %+v", stepped, direct)
	}
}
