package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
	"repro/internal/vtime"
)

// CML-style channels (§2.1: "language-level visible threads and synchronous
// message passing, providing a parallel implementation of Concurrent ML's
// concurrency primitives"). Channels are where object proxies earn their
// keep (§3.1 footnote 1): a send enqueues a *proxy* for the message rather
// than promoting the message up front. If the matching receive happens on
// the same vproc, the message never leaves the local heap; only a
// cross-vproc rendezvous forces the promotion.
//
// All channel state that refers to the heap lives IN the simulated global
// heap, where the collector can see it: a channel is a mixed-type record
// (count, head, tail) whose pending messages hang off a chain of queue
// nodes, every link a traced pointer. The record's address is registered as
// a global root, so global collections forward the record, the chain, and
// the message proxies together — an in-flight message survives any number
// of minor, major, and global collections. (The alternative — keeping the
// pending proxies in a host-side Go slice — breaks exactly there: the
// collector forwards the proxy through the owner's registry, but the
// untracked copy keeps naming the from-space chunk, which is zeroed and
// reused after the collection.)
//
// Host-side state on the Channel struct is restricted to things the
// collector never traces: the capacity bound and the ring of parked
// receivers, which hold root-slot indices and task environments — both
// forwarded by their owning vproc's collections — never raw addresses.

// Channel record payload layout (mixed descriptor, registered once per
// runtime on first use).
const (
	// chanCountSlot holds the number of pending messages (raw).
	chanCountSlot = 0
	// chanHeadSlot points at the oldest queue node, or nil.
	chanHeadSlot = 1
	// chanTailSlot points at the newest queue node, or nil.
	chanTailSlot = 2
	// chanSizeWords is the record payload size.
	chanSizeWords = 3

	// Queue nodes are 2-word vectors: [message proxy, next node].
	qnodeMsgSlot   = 0
	qnodeNextSlot  = 1
	qnodeSizeWords = 2
)

// Channel is a mailbox channel carrying heap objects by proxy. The zero
// capacity means unbounded; a bounded channel (NewMailbox) blocks senders
// while full. Receives are FIFO over the pending chain.
type Channel struct {
	rt *Runtime
	// cap bounds the pending-message count; 0 means unbounded.
	cap int
	// addr is the channel record in the global heap, registered as a
	// global root (collections update it in place). It stays 0 until the
	// first operation so channels can be created before Run starts.
	addr heap.Addr
	// waiters is the FIFO ring of parked receivers (blocking waiters and
	// parked continuations). Entries hold no heap addresses.
	waiters rendezvousRing
	// closed is set by Close and never cleared: every later operation
	// observes the close as a status (SendClosed, a nil receive) instead of
	// resurrecting the record.
	closed bool
	// crashed distinguishes a close forced by the owning vproc's crash from
	// an orderly Close: sends observe SendCrashed instead of SendClosed, so
	// failover policies can tell a retired replica from a drained one.
	crashed bool
	// ownedBy is the vproc whose crash retires this channel (SetOwner).
	ownedBy *VProc
}

// SendStatus is the outcome of a channel send — the recoverable-failure
// contract that lets overload-control code shed load instead of crashing.
type SendStatus int

const (
	// SendOK: the message was handed to a parked receiver or enqueued.
	SendOK SendStatus = iota
	// SendFull: TrySend on a bounded channel at capacity — the message was
	// shed (its proxy dropped) rather than waiting for a free slot.
	SendFull
	// SendClosed: the channel was closed, possibly while the send was in
	// flight — the message was dropped.
	SendClosed
	// SendCrashed: the channel's owning vproc (SetOwner) crashed — the
	// message was dropped. The close-as-status protocol is identical to
	// SendClosed; the distinct status lets routing layers treat a dead
	// replica differently from an orderly shutdown.
	SendCrashed
)

// String names the status for diagnostics.
func (s SendStatus) String() string {
	switch s {
	case SendOK:
		return "ok"
	case SendFull:
		return "full"
	case SendClosed:
		return "closed"
	case SendCrashed:
		return "crashed"
	}
	return fmt.Sprintf("SendStatus(%d)", int(s))
}

// NewChannel creates an unbounded channel (CML acceptor-queue style).
func (rt *Runtime) NewChannel() *Channel { return &Channel{rt: rt} }

// NewMailbox creates a bounded channel: Send blocks (in virtual time) while
// capacity messages are pending.
func (rt *Runtime) NewMailbox(capacity int) *Channel {
	if capacity < 1 {
		panic(fmt.Sprintf("core: mailbox capacity %d must be >= 1", capacity))
	}
	return &Channel{rt: rt, cap: capacity}
}

// channelDesc lazily registers the channel record descriptor.
func (rt *Runtime) channelDesc() uint16 {
	if rt.chanDesc == 0 {
		rt.chanDesc = rt.Descs.Register("channel", chanSizeWords, []int{chanHeadSlot, chanTailSlot})
	}
	return rt.chanDesc
}

// record returns the channel record's current address, allocating it in the
// global heap on first use. The record is pinned via the runtime's global
// roots, so its address is rewritten in place by global collections; between
// safepoints it is stable.
func (ch *Channel) record(vp *VProc) heap.Addr {
	if vp.rt != ch.rt {
		panic("core: channel used with a vproc of a different runtime")
	}
	if ch.closed {
		panic("core: record of a closed channel (callers must check closed first)")
	}
	if ch.addr == 0 {
		rt := ch.rt
		// The chunk reservation may advance time and hand control to
		// another vproc whose first operation on this same channel also
		// finds addr == 0 — without the re-check below, the loser would
		// clobber the winner's record and orphan its pending messages.
		dst := rt.globalAllocDst(vp, chanSizeWords)
		if ch.addr == 0 {
			a := dst.Bump(heap.MakeHeader(rt.channelDesc(), chanSizeWords))
			p := rt.Space.Payload(a)
			p[chanCountSlot], p[chanHeadSlot], p[chanTailSlot] = 0, 0, 0
			ch.addr = a
			rt.RegisterGlobalRoot(&ch.addr)
			// Charge only after the record is committed and visible.
			node := rt.Space.NodeOf(a)
			vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, (chanSizeWords+1)*8, numa.AccessMemory))
		}
	}
	return ch.addr
}

// Len reports the number of pending messages (diagnostic; uncharged).
func (ch *Channel) Len() int {
	if ch.addr == 0 {
		return 0
	}
	return int(ch.rt.Space.Payload(ch.addr)[chanCountSlot])
}

// Cap reports the capacity bound (0 = unbounded).
func (ch *Channel) Cap() int { return ch.cap }

// Close closes the channel and releases its heap record: the global-root
// registration is removed and the pending chain's message proxies are
// deregistered from their senders, so the record, the chain, the proxies,
// and any unreceived payloads become garbage for the collections that
// follow. Without Close, every channel ever created stays live forever
// (dynamically created channels — e.g. one reply channel per request —
// would grow the root set and the global heap without bound).
//
// Close is permanent and observable as a *status*, never a crash: every
// parked receiver — blocking waiter or parked continuation — is woken with a
// nil message (Recv returns 0, RecvThen/SelectThen callbacks run with msg ==
// 0), later receives return nil immediately, and sends (including sends
// already in flight when the close lands, e.g. from a fault plan) report
// SendClosed and drop their message. Unreceived pending messages are
// discarded.
func (ch *Channel) Close() {
	ch.closed = true
	// Wake every parked receiver with the close status. A rendezvous also
	// registered elsewhere (Select over several channels, or a pending
	// timeout) is claimed here exactly like a delivery would, retiring its
	// timer; stale already-claimed ring entries are discarded by pop.
	for {
		r, which, ok := ch.waiters.pop()
		if !ok {
			break
		}
		ch.closeDeliver(r, which)
	}
	if ch.addr == 0 {
		return
	}
	rt := ch.rt
	// Deregister the proxies of unreceived messages from their senders:
	// each was registered at Send and would otherwise stay a GC root of
	// its owner (retaining the payload) for the life of the run, even
	// though the only path to it is this dying chain.
	// During a concurrent mark the chain can mix from-space nodes with
	// evacuated copies; resolve each link so the walk reads live copies
	// (registered proxies are already to-space, but the node slots may
	// still name their old addresses). Host-side and chargeless.
	p := rt.Space.Payload(ch.addr)
	for n := rt.resolveAddr(heap.Addr(p[chanHeadSlot])); n != 0; {
		np := rt.Space.Payload(n)
		proxy := rt.resolveAddr(heap.Addr(np[qnodeMsgSlot]))
		pp := rt.Space.Payload(proxy)
		owner := rt.VProcs[pp[heap.ProxyOwnerSlot]]
		if _, ok := owner.proxyIdx[proxy]; ok {
			owner.dropProxy(proxy)
		}
		n = rt.resolveAddr(heap.Addr(np[qnodeNextSlot]))
	}
	rt.unregisterGlobalRoot(&ch.addr)
	ch.addr = 0
}

// closeDeliver wakes one parked receiver with the close status: a blocking
// waiter observes a nil proxy in its root slot; a parked continuation runs
// with msg == 0. Close is a host-side event with no acting vproc, so nothing
// is charged — the woken side pays its normal wakeup costs.
func (ch *Channel) closeDeliver(r *rendezvous, which int) {
	r.claimed = true
	r.cancelTimer()
	if r.fn == nil {
		r.vp.roots[r.slot] = 0
		r.which = which
		r.ready = true
		return
	}
	o := r.owner
	o.removeParked(r)
	// The continuation was counted in rt.outstanding when it parked;
	// queuing the close task transfers that count.
	o.queue.pushBottom(contTask(o, r.env, 0, which, r.fn))
}

// Closed reports whether Close has been called.
func (ch *Channel) Closed() bool { return ch.closed }

// Crashed reports whether the channel was retired by its owner's crash.
func (ch *Channel) Crashed() bool { return ch.crashed }

// SetOwner ties the channel's lifetime to a vproc: if the vproc crashes
// (FaultCrash), the channel is retired through the close-as-status protocol —
// parked receivers wake with nil messages and sends report SendCrashed. A
// channel without an owner survives any crash (its record lives in the global
// heap, which crashes never touch). Ownership is a failure-domain annotation,
// not a scheduling one; it must be set before Run starts or from the owning
// side, and at most once.
func (ch *Channel) SetOwner(vp *VProc) {
	if vp.rt != ch.rt {
		panic("core: channel owned by a vproc of a different runtime")
	}
	if ch.ownedBy != nil {
		panic(fmt.Sprintf("core: channel already owned by vproc %d", ch.ownedBy.ID))
	}
	ch.ownedBy = vp
	vp.owned = append(vp.owned, ch)
}

// Owner returns the vproc the channel is tied to, or nil.
func (ch *Channel) Owner() *VProc { return ch.ownedBy }

// crashClose retires the channel on its owner's crash. A Close that landed at
// an earlier instant — or at the same instant but earlier in engine order —
// wins: the status was already delivered exactly once, and the crash adds
// nothing (the record is gone, the waiters were popped). Otherwise this is a
// Close whose observable status is SendCrashed.
func (ch *Channel) crashClose() {
	if ch.closed {
		return
	}
	ch.crashed = true
	ch.Close()
}

// failStatus is the status a shedding send reports on a dead channel.
func (ch *Channel) failStatus() SendStatus {
	if ch.crashed {
		return SendCrashed
	}
	return SendClosed
}

// PendingProxies returns the addresses of the pending messages' proxies in
// FIFO order — a host-side diagnostic for tests and debugging; nothing is
// charged and no proxy is consumed.
func (ch *Channel) PendingProxies() []heap.Addr {
	if ch.addr == 0 {
		return nil
	}
	rt := ch.rt
	var out []heap.Addr
	p := rt.Space.Payload(ch.addr)
	for n := rt.resolveAddr(heap.Addr(p[chanHeadSlot])); n != 0; {
		np := rt.Space.Payload(n)
		out = append(out, rt.resolveAddr(heap.Addr(np[qnodeMsgSlot])))
		n = rt.resolveAddr(heap.Addr(np[qnodeNextSlot]))
	}
	return out
}

// Send publishes the object held in the sender's root slot. The message is
// wrapped in a proxy: no promotion happens yet. If a receiver is parked on
// the channel the proxy is handed to it directly (the rendezvous); otherwise
// it is enqueued on the heap-resident pending chain. On a bounded channel
// Send first waits, servicing scheduler obligations, until a slot is free.
// Send never panics on a racing Close: a close landing before or during the
// send drops the message and reports SendClosed.
func (ch *Channel) Send(vp *VProc, slot int) SendStatus {
	return ch.send(vp, slot, false)
}

// TrySend is the non-blocking, load-shedding form of Send: where Send would
// wait for a bounded channel's capacity slot, TrySend drops the message and
// reports SendFull — the admission-control primitive (a full mailbox is the
// queue-depth signal overload policies act on). On an unbounded channel it
// is equivalent to Send.
func (ch *Channel) TrySend(vp *VProc, slot int) SendStatus {
	return ch.send(vp, slot, true)
}

// send is the shared body of Send and TrySend. On the SendOK path it is
// charge-for-charge identical to the historical Send; the closed checks are
// free host-side observations.
func (ch *Channel) send(vp *VProc, slot int, try bool) SendStatus {
	rt := ch.rt
	if ch.closed {
		vp.Stats.ChanSheds++
		return ch.failStatus()
	}
	ch.record(vp)
	// The proxy rides in a root slot for the duration: the bounded-full
	// wait below services the scheduler, which can participate in a global
	// collection that moves the proxy — a raw Go copy of the address would
	// go stale (the exact bug class heap-resident channels exist to fix).
	ps := vp.PushRoot(vp.NewProxy(slot))
	vp.Stats.ChanSends++
	// Every observe-act pair below is advance-free: the probe charge (and
	// the queue-node chunk request) may hand control to other vprocs, so
	// the closed flag, the parked-receiver check, and the capacity check
	// are re-run after any advance, and the final commit (bump + link +
	// count) is a single unadvanced segment.
	for {
		rec := ch.addr // collections update the registered root in place
		if ch.closed || rec == 0 {
			return ch.shedInFlight(vp, ps, ch.failStatus())
		}
		vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(rec), 16, numa.AccessMemory))
		if ch.closed {
			// Closed during the probe charge: rec is a stale snapshot of
			// a dead record — committing through it would lose the
			// message silently.
			return ch.shedInFlight(vp, ps, ch.failStatus())
		}
		// Hand off to a parked receiver only while the pending chain is
		// empty: a waiter can coexist with pending messages (a Select
		// registers before it probes the chains), and handing it the NEW
		// message would overtake the queued ones, breaking FIFO. With a
		// non-empty chain the waiter's own probe finds the head.
		if rt.Space.Payload(rec)[chanHeadSlot] == 0 {
			if r, which, ok := ch.waiters.pop(); ok {
				vp.Stats.ChanHandoffs++
				proxy := vp.Root(ps)
				vp.PopRoots(1)
				ch.deliver(vp, r, which, proxy)
				return SendOK
			}
		}
		if ch.cap > 0 && int(rt.Space.Payload(rec)[chanCountSlot]) >= ch.cap {
			if try {
				return ch.shedInFlight(vp, ps, SendFull)
			}
			// Bounded mailbox full: wait in virtual time, servicing
			// scheduler obligations (a receiver must be able to run).
			vp.ServiceScheduler()
			continue
		}
		// Reserve chunk room for the queue node; the request may advance
		// (chunk-pool synchronization), so a receiver may have parked or
		// another sender may have taken the last capacity slot meanwhile
		// — re-check everything before committing.
		dst := rt.globalAllocDst(vp, qnodeSizeWords)
		rec = ch.addr
		if ch.closed || rec == 0 {
			return ch.shedInFlight(vp, ps, ch.failStatus())
		}
		p := rt.Space.Payload(rec)
		if heap.Addr(p[chanHeadSlot]) == 0 {
			if r, which, ok := ch.waiters.pop(); ok {
				vp.Stats.ChanHandoffs++
				proxy := vp.Root(ps)
				vp.PopRoots(1)
				ch.deliver(vp, r, which, proxy)
				return SendOK
			}
		}
		if ch.cap > 0 && int(p[chanCountSlot]) >= ch.cap {
			if try {
				return ch.shedInFlight(vp, ps, SendFull)
			}
			continue
		}
		// Commit: bump the node and link it, with no advance until the
		// queue is consistent.
		nd := dst.Bump(heap.MakeHeader(heap.IDVector, qnodeSizeWords))
		np := rt.Space.Payload(nd)
		np[qnodeMsgSlot] = uint64(vp.Root(ps))
		np[qnodeNextSlot] = 0
		vp.PopRoots(1)
		// Resolve the tail in the commit's own segment: during a concurrent
		// mark an assist may have evacuated the tail node, and the record's
		// slot still names the from-space copy — the link must land in the
		// live copy or the message is lost. Chargeless, and the identity
		// outside a mark.
		tail := vp.resolve(heap.Addr(p[chanTailSlot]))
		linkNode := rt.Space.NodeOf(rec)
		if tail != 0 {
			rt.Space.Payload(tail)[qnodeNextSlot] = uint64(nd)
			linkNode = rt.Space.NodeOf(tail)
		} else {
			p[chanHeadSlot] = uint64(nd)
		}
		p[chanTailSlot] = uint64(nd)
		p[chanCountSlot]++
		// One fused charge: node init, the link store, and the record
		// writeback. Nothing is observable between those stores.
		vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(nd), (qnodeSizeWords+1)*8, numa.AccessMemory) +
			rt.Machine.AccessCost(vp.Now(), vp.Core, linkNode, 8, numa.AccessMemory) +
			rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(rec), 24, numa.AccessMemory))
		return SendOK
	}
}

// shedInFlight abandons an in-flight send, reporting why: the message proxy
// riding root slot ps is deregistered from this vproc and the slot popped,
// so the payload's only send-side retainer disappears and the message
// becomes ordinary local garbage. ps must be the top root slot (send's
// invariant at every shed site).
func (ch *Channel) shedInFlight(vp *VProc, ps int, st SendStatus) SendStatus {
	proxy := vp.Root(ps)
	vp.PopRoots(1)
	vp.dropProxy(proxy)
	vp.Stats.ChanSheds++
	return st
}

// popPending unlinks the head queue node and returns its message proxy; the
// caller has already observed head != 0 with no intervening advance.
func (ch *Channel) popPending(vp *VProc, head heap.Addr) heap.Addr {
	rt := ch.rt
	rec := ch.addr
	p := rt.Space.Payload(rec)
	// The head slot can name a from-space copy during a concurrent mark
	// (the record's links are only healed at mark termination); a sender
	// that linked a successor after the node's evacuation wrote it into the
	// to-space copy, so the read must go through the live copy too.
	head = vp.resolve(head)
	np := rt.Space.Payload(head)
	proxy := heap.Addr(np[qnodeMsgSlot])
	next := heap.Addr(np[qnodeNextSlot])
	p[chanHeadSlot] = uint64(next)
	if next == 0 {
		p[chanTailSlot] = 0
	} else {
		// During a concurrent mark the successor link just read may be a
		// from-space address (the node was unscanned) now stored in a
		// possibly-black record; mark the record for the termination
		// window's rescan instead of shading here, which would advance
		// mid-commit.
		vp.gcDirtyRoot(rec)
	}
	p[chanCountSlot]--
	// Node read plus record writeback, fused (the node itself becomes
	// garbage for the next global collection).
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(head), qnodeSizeWords*8, numa.AccessMemory) +
		rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(rec), 24, numa.AccessMemory))
	return proxy
}

// TryRecv receives a message if one is pending, resolving the proxy: if the
// message was sent by this vproc it stays local; otherwise it is promoted
// out of the sender's heap on demand. Returns (0, false) when empty.
func (ch *Channel) TryRecv(vp *VProc) (heap.Addr, bool) {
	if ch.addr == 0 {
		return 0, false
	}
	rt := ch.rt
	rec := ch.record(vp)
	// Charge the probe, then observe.
	vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(rec), 16, numa.AccessMemory))
	head := heap.Addr(rt.Space.Payload(rec)[chanHeadSlot])
	if head == 0 {
		return 0, false
	}
	proxy := ch.popPending(vp, head)
	vp.Stats.ChanRecvs++
	return vp.consumeProxy(proxy), true
}

// Recv blocks (in virtual time) until a message arrives. An empty channel
// parks the receiver on the waiter ring; the next Send hands its proxy
// directly to the parked slot (the rendezvous) instead of touching the
// pending chain. While parked the vproc services its scheduler obligations
// (pending tasks, steals, global collections), so channel waits cannot
// stall the stop-the-world protocol. On a closed channel — or if the
// channel closes during the wait — Recv returns 0.
//
// The wait runs queued tasks, so a Recv whose message can only be produced
// by a task *below it on this vproc's own stack* cannot complete; deep
// nested topologies should use RecvThen/SelectThen, which park a
// continuation task instead of a stack frame.
func (ch *Channel) Recv(vp *VProc) heap.Addr {
	if a, ok := ch.TryRecv(vp); ok {
		return a
	}
	if ch.closed {
		return 0
	}
	// Park: the root slot receives the proxy; collections of this vproc
	// keep the slot current while we wait.
	slot := vp.PushRoot(0)
	r := &rendezvous{vp: vp, slot: slot}
	ch.waiters.push(r, 0)
	// The wait services the scheduler, where this vproc's own crash fault can
	// fire: registering the frame in vp.blocked lets the crash mark it
	// claimed, so no sender ever delivers into a dead vproc's root slots.
	vp.blocked = append(vp.blocked, r)
	for !r.ready {
		vp.ServiceScheduler()
	}
	vp.removeBlocked(r)
	proxy := vp.roots[slot]
	vp.PopRoots(1)
	if proxy == 0 {
		return 0 // the channel closed while we were parked
	}
	vp.Stats.ChanRecvs++
	return vp.consumeProxy(proxy)
}

// Select receives from whichever of the channels first has a message,
// returning the channel's index and the resolved message. Pending messages
// are taken in argument order; otherwise the vproc parks one rendezvous on
// every channel and the first Send claims it (stale registrations are
// skipped lazily by later sends). A closed channel delivers immediately:
// Select returns its index and a nil message. The same stack-nesting caveat
// as Recv applies; SelectThen is the continuation form.
func (vp *VProc) Select(chans ...*Channel) (int, heap.Addr) {
	if len(chans) == 0 {
		panic("core: Select over no channels")
	}
	rt := vp.rt
	// Register on every channel BEFORE probing the pending chains: a Send
	// during one channel's probe charge then either sees the waiter (and
	// delivers) or enqueued before registration — in which case the probe
	// below finds it. Probing first would open a lost-wakeup window: a
	// message enqueued on an already-probed channel while a later probe's
	// advance runs would strand the parked waiter forever.
	slot := vp.PushRoot(0)
	r := &rendezvous{vp: vp, slot: slot}
	for i, ch := range chans {
		ch.waiters.push(r, i)
	}
	for i, ch := range chans {
		if ch.closed {
			// Observe the close as an immediate nil delivery (claimed
			// advance-free, like a pending-message claim).
			r.claimed = true
			vp.PopRoots(1)
			return i, 0
		}
		if ch.addr == 0 {
			continue
		}
		rec := ch.record(vp)
		vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(rec), 16, numa.AccessMemory))
		if r.ready {
			break // a sender delivered (or a close landed) during the probe charge
		}
		head := heap.Addr(rt.Space.Payload(rec)[chanHeadSlot])
		if head == 0 {
			continue
		}
		// Claim our own rendezvous (senders skip it from here on; no
		// advance separates the claim from the pop, so no delivery can
		// interleave) and take the pending message.
		r.claimed = true
		proxy := ch.popPending(vp, head)
		vp.PopRoots(1)
		vp.Stats.ChanRecvs++
		return i, vp.consumeProxy(proxy)
	}
	// Same crash discipline as Recv: registered for the wait only — the
	// probe loop above never services the scheduler, so a crash cannot fire
	// between registration and this point.
	vp.blocked = append(vp.blocked, r)
	for !r.ready {
		vp.ServiceScheduler()
	}
	vp.removeBlocked(r)
	proxy := vp.roots[slot]
	which := r.which
	vp.PopRoots(1)
	if proxy == 0 {
		return which, 0 // woken by a close
	}
	vp.Stats.ChanRecvs++
	return which, vp.consumeProxy(proxy)
}

// RecvThen registers a continuation for the channel's next message: when it
// arrives (possibly immediately), fn runs as a task on this vproc's queue
// with the captured env and the resolved message. Unlike Recv, nothing
// blocks — the parked continuation is a task, not a stack frame, so
// arbitrarily deep request/response topologies cannot wedge the scheduler.
func (ch *Channel) RecvThen(vp *VProc, env []heap.Addr, fn func(vp *VProc, env Env, msg heap.Addr)) {
	vp.SelectThen([]*Channel{ch}, env, func(vp *VProc, e Env, _ int, msg heap.Addr) {
		fn(vp, e, msg)
	})
}

// SelectThen is the continuation form of Select: fn runs as a task once any
// of the channels delivers, receiving the winning channel's index and the
// resolved message. The captured env addresses are GC roots of this vproc
// while the continuation is parked (they are forwarded by every collection,
// exactly like a queued task's environment).
func (vp *VProc) SelectThen(chans []*Channel, env []heap.Addr, fn func(vp *VProc, env Env, which int, msg heap.Addr)) {
	if len(chans) == 0 {
		panic("core: SelectThen over no channels")
	}
	rt := vp.rt
	// The continuation is outstanding work from this instant: the runtime
	// must not quiesce while it is parked.
	rt.outstanding++
	// Register before probing — same lost-wakeup discipline as Select:
	// the captured environment is rooted (vp.parked) before the first
	// probe advance, and a message enqueued before registration is found
	// by the probe below.
	r := &rendezvous{owner: vp, env: append([]heap.Addr(nil), env...), fn: fn}
	vp.parked = append(vp.parked, r)
	for i, ch := range chans {
		ch.waiters.push(r, i)
	}
	vp.selectProbe(chans, r)
}

// selectProbe is the registered-continuation probe shared by SelectThen and
// SelectThenTimeout: it walks the channels' pending chains in argument
// order, claiming r and queuing the continuation task for the first pending
// message. No advance separates the claim from the pop, so no delivery (or
// timer fire) can interleave; if a sender delivered during a probe charge,
// the claimed flag ends the walk.
func (vp *VProc) selectProbe(chans []*Channel, r *rendezvous) {
	rt := vp.rt
	for i, ch := range chans {
		if ch.closed {
			// Observe the close immediately: the continuation runs with a
			// nil message, exactly as if the close had found it parked.
			r.claimed = true
			r.cancelTimer()
			vp.removeParked(r)
			vp.queue.pushBottom(contTask(vp, r.env, 0, i, r.fn))
			return
		}
		if ch.addr == 0 {
			continue
		}
		rec := ch.record(vp)
		vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, rt.Space.NodeOf(rec), 16, numa.AccessMemory))
		if r.claimed {
			return // a sender delivered during the probe charge
		}
		head := heap.Addr(rt.Space.Payload(rec)[chanHeadSlot])
		if head == 0 {
			continue
		}
		r.claimed = true
		vp.removeParked(r)
		proxy := ch.popPending(vp, head)
		vp.queue.pushBottom(contTask(vp, r.env, proxy, i, r.fn))
		return
	}
}

// contTask builds the task that resumes a receive continuation: the message
// proxy rides as the last environment entry (traced while queued, promoted
// if the task is stolen) and is resolved by the executing vproc.
func contTask(owner *VProc, env []heap.Addr, proxy heap.Addr, which int, fn func(vp *VProc, env Env, which int, msg heap.Addr)) *Task {
	tenv := make([]heap.Addr, len(env)+1)
	copy(tenv, env)
	tenv[len(env)] = proxy
	return &Task{owner: owner.ID, env: tenv, Fn: func(vp *VProc, e Env) {
		var msg heap.Addr
		if pa := e.Get(vp, e.n-1); pa != 0 {
			msg = vp.consumeProxy(pa)
			vp.Stats.ChanRecvs++
		}
		fn(vp, Env{base: e.base, n: e.n - 1}, which, msg)
	}}
}

// consumeProxy resolves a received message proxy, deregistering it from its
// owner: channel receives consume the proxy exactly once, so keeping it
// registered would leave the message a permanent GC root of the sender —
// same-vproc traffic would retain and re-copy every consumed payload in all
// subsequent collections. The cross-vproc path (ProxyDeref) already
// deregisters on promotion; this handles the same-vproc case.
func (vp *VProc) consumeProxy(proxy heap.Addr) heap.Addr {
	if proxy == 0 {
		return 0 // close-status wakeup: no message, nothing to consume
	}
	rt := vp.rt
	proxy = vp.resolve(proxy)
	p := rt.Space.Payload(proxy)
	owner := rt.VProcs[p[heap.ProxyOwnerSlot]]
	if owner == vp && heap.Addr(p[heap.ProxyGlobalSlot]) == 0 {
		node := rt.Space.NodeOf(proxy)
		vp.advance(rt.Machine.AccessCost(vp.Now(), vp.Core, node, heap.ProxySizeWords*8, numa.AccessMemory))
		a := vp.resolve(heap.Addr(p[heap.ProxyLocalSlot]))
		vp.dropProxy(proxy)
		return a
	}
	return vp.ProxyDeref(proxy)
}

// deliver completes a rendezvous on the sender's side: a blocking waiter
// gets the proxy deposited into its parked root slot; a parked continuation
// is unregistered and materialized as a task on its owner's queue. Both are
// charged as one vproc signal.
func (ch *Channel) deliver(vp *VProc, r *rendezvous, which int, proxy heap.Addr) {
	r.claimed = true
	r.cancelTimer()
	if r.fn == nil {
		r.vp.roots[r.slot] = proxy
		r.which = which
		r.ready = true
		vp.advance(ch.rt.Cfg.SignalVProcNs)
		return
	}
	o := r.owner
	o.removeParked(r)
	// The continuation was counted in rt.outstanding when it parked;
	// queuing the task transfers that count, it does not add to it.
	o.queue.pushBottom(contTask(o, r.env, proxy, which, r.fn))
	vp.advance(ch.rt.Cfg.SignalVProcNs)
}

// rendezvous is one parked receiver: either a blocking waiter (vp/slot set;
// the sender deposits the proxy into the root slot and flips ready) or a
// parked continuation (owner/env/fn set; the sender queues the continuation
// task on the owner). A rendezvous registered on several channels (Select)
// is claimed exactly once; stale ring entries are skipped.
type rendezvous struct {
	claimed bool

	// Blocking waiter.
	vp    *VProc
	slot  int
	which int
	ready bool

	// Parked continuation. env holds captured heap references; they are
	// local-GC roots of owner while parked (see forwardLocalRoots and
	// globalScanRoots).
	owner *VProc
	env   []heap.Addr
	fn    func(vp *VProc, env Env, which int, msg heap.Addr)

	// timer is the timeout armed beside this rendezvous, if any
	// (SelectThenTimeout/RecvThenTimeout): retired when the rendezvous is
	// claimed by a delivery or a close, so the stale deadline neither clamps
	// idle charges nor lingers in the owner's queue.
	timer *vtime.Timer
}

// cancelTimer retires the timeout armed beside this rendezvous, if any. Safe
// on the timer's own fire path: fireDueTimers clears r.timer before running
// the timeout, and Remove of an already-popped entry is a no-op regardless.
func (r *rendezvous) cancelTimer() {
	if r.timer != nil {
		r.owner.timers.Remove(r.timer)
		r.timer = nil
	}
}

// removeParked unregisters a delivered continuation, preserving the order of
// the remaining entries (collections iterate the list; order must be
// deterministic).
func (vp *VProc) removeParked(r *rendezvous) {
	for i, q := range vp.parked {
		if q == r {
			vp.parked = append(vp.parked[:i], vp.parked[i+1:]...)
			return
		}
	}
	panic("core: parked continuation not registered with its owner")
}

// removeBlocked unregisters a woken blocking waiter from the crash registry.
func (vp *VProc) removeBlocked(r *rendezvous) {
	for i, q := range vp.blocked {
		if q == r {
			vp.blocked = append(vp.blocked[:i], vp.blocked[i+1:]...)
			return
		}
	}
	panic("core: blocking waiter not registered with its vproc")
}

// rendezvousRing is a FIFO ring buffer of parked receivers. A ring (rather
// than a re-sliced Go slice) releases popped entries immediately instead of
// pinning them in the backing array — the same fix the task deque got.
type rendezvousRing struct {
	buf  []ringEntry
	head int
	n    int
}

type ringEntry struct {
	r     *rendezvous
	which int
}

func (q *rendezvousRing) push(r *rendezvous, which int) {
	if q.n == len(q.buf) {
		nb := make([]ringEntry, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = ringEntry{r, which}
	q.n++
}

// pop returns the oldest unclaimed rendezvous, discarding entries whose
// rendezvous was already claimed through another channel (or a timer).
func (q *rendezvousRing) pop() (*rendezvous, int, bool) {
	for q.n > 0 {
		e := q.buf[q.head]
		q.buf[q.head] = ringEntry{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		if !e.r.claimed {
			return e.r, e.which, true
		}
	}
	return nil, 0, false
}

// peekLive reports whether a live (unclaimed) rendezvous is registered,
// without unregistering it. Stale claimed entries at the head are discarded
// — they are dead either way — but the first live entry stays in the ring,
// still claimable by the next Send.
func (q *rendezvousRing) peekLive() (*rendezvous, bool) {
	for q.n > 0 {
		e := q.buf[q.head]
		if !e.r.claimed {
			return e.r, true
		}
		q.buf[q.head] = ringEntry{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
	}
	return nil, false
}
