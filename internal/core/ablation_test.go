package core

import (
	"testing"

	"repro/internal/heap"
)

// These tests pin down the *semantics* of the design-choice knobs that the
// ablation benchmarks measure.

// growList pushes survivors so the old generation grows and majors run.
func growList(vp *VProc, listSlot int, n int) {
	for i := 0; i < n; i++ {
		blob := vp.AllocRaw([]uint64{uint64(i), uint64(i * 3)})
		bs := vp.PushRoot(blob)
		cell := vp.AllocVector([]int{bs, listSlot})
		vp.PopRoots(1)
		vp.SetRoot(listSlot, cell)
		if i%8 == 0 {
			churn(vp, 30, 4)
		}
	}
}

func TestYoungPartitionReducesPromotion(t *testing.T) {
	run := func(young bool) int64 {
		cfg := stressConfig(1)
		cfg.Debug = false
		cfg.YoungPartition = young
		rt := MustNewRuntime(cfg)
		rt.Run(func(vp *VProc) {
			listSlot := vp.PushRoot(0)
			growList(vp, listSlot, 400)
			vp.PopRoots(1)
		})
		return rt.TotalStats().MajorCopied
	}
	with := run(true)
	without := run(false)
	if with == 0 || without == 0 {
		t.Fatalf("expected major collections in both runs (with=%d, without=%d)", with, without)
	}
	// Without the young-data partition, guaranteed-live young data is
	// evacuated prematurely, so majors copy more.
	if without <= with {
		t.Errorf("young partition off should copy more: with=%d without=%d", with, without)
	}
}

func TestLazyPromotionPromotesLessThanEager(t *testing.T) {
	run := func(lazy bool) int64 {
		cfg := stressConfig(1) // single vproc: nothing is ever stolen
		cfg.Debug = false
		cfg.LazyPromotion = lazy
		rt := MustNewRuntime(cfg)
		rt.Run(func(vp *VProc) {
			for i := 0; i < 20; i++ {
				a := buildTree(vp, 4, uint64(i))
				s := vp.PushRoot(a)
				task := vp.Spawn(func(vp *VProc, env Env) {
					_ = checksumTree(vp, env.Get(vp, 0))
				}, vp.Root(s))
				vp.Join(task)
				vp.PopRoots(1)
			}
		})
		return rt.TotalStats().PromotedWords
	}
	lazy := run(true)
	eager := run(false)
	if lazy != 0 {
		t.Errorf("lazy promotion with no steals promoted %d words, want 0", lazy)
	}
	if eager == 0 {
		t.Error("eager promotion should promote every spawned environment")
	}
}

func TestNodeLocalScanAblationStillCorrect(t *testing.T) {
	// With the shared scan list the collection must remain correct,
	// only slower; run the full graph-preservation stress.
	cfg := stressConfig(4)
	cfg.NodeLocalScan = false
	cfg.GlobalTriggerWords = 4 * cfg.ChunkWords
	rt := MustNewRuntime(cfg)
	var sum, want uint64
	rt.Run(func(vp *VProc) {
		a := buildTree(vp, 6, 5)
		s := vp.PushRoot(a)
		want = checksumTree(vp, vp.Root(s))
		for i := 0; i < 8; i++ {
			vp.PromoteRoot(s)
			b := buildTree(vp, 6, uint64(i))
			bs := vp.PushRoot(b)
			vp.PromoteRoot(bs)
			vp.PopRoots(1)
			churn(vp, 1200, 6)
		}
		sum = checksumTree(vp, vp.Root(s))
		vp.PopRoots(1)
	})
	if rt.Stats.GlobalGCs == 0 {
		t.Fatal("expected global collections")
	}
	if sum != want {
		t.Errorf("graph corrupted under shared-list scanning: %d vs %d", sum, want)
	}
}

func TestChunkAffinityAblationStillCorrect(t *testing.T) {
	cfg := stressConfig(2)
	cfg.NodeAffineChunks = false
	rt := MustNewRuntime(cfg)
	rt.Run(func(vp *VProc) {
		listSlot := vp.PushRoot(0)
		growList(vp, listSlot, 600)
		vp.PopRoots(1)
	})
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants without chunk affinity: %v", err)
	}
}

func TestVerifierCatchesCrossLocalPointer(t *testing.T) {
	// The verifier itself must detect violations: forge a pointer from
	// one vproc's heap into another's and expect a complaint.
	cfg := stressConfig(2)
	cfg.Debug = false
	rt := MustNewRuntime(cfg)
	rt.Run(func(vp *VProc) {
		if vp.ID != 0 {
			return
		}
		other := rt.VProcs[1]
		foreign := other.Local.Bump(heap.MakeHeader(heap.IDRaw, 1))
		v := vp.AllocVectorN(1)
		rt.Space.Payload(v)[0] = uint64(foreign) // forged cross-local edge
		vs := vp.PushRoot(v)
		if err := rt.VerifyHeap(); err == nil {
			t.Error("verifier missed a cross-local pointer")
		}
		// Clean up so the runtime can shut down without tripping
		// later checks.
		rt.Space.Payload(vp.Root(vs))[0] = 0
		vp.PopRoots(1)
	})
}

func TestVerifierCatchesGlobalToLocalPointer(t *testing.T) {
	cfg := stressConfig(1)
	cfg.Debug = false
	rt := MustNewRuntime(cfg)
	rt.Run(func(vp *VProc) {
		local := vp.AllocRaw([]uint64{1})
		ls := vp.PushRoot(local)
		g := vp.AllocGlobalVectorN(1)
		rt.Space.Payload(g)[0] = uint64(vp.Root(ls)) // forged global→local edge
		if err := rt.VerifyHeap(); err == nil {
			t.Error("verifier missed a global→local pointer")
		}
		rt.Space.Payload(g)[0] = 0
		vp.PopRoots(1)
	})
}

func TestConfigValidation(t *testing.T) {
	topo := stressConfig(1).Topo
	cases := []func(*Config){
		func(c *Config) { c.Topo = nil },
		func(c *Config) { c.NumVProcs = 0 },
		func(c *Config) { c.NumVProcs = topo.NumCores() + 1 },
		func(c *Config) { c.LocalHeapWords = 8 },
		func(c *Config) { c.ChunkWords = 8 },
	}
	for i, mutate := range cases {
		cfg := stressConfig(1)
		mutate(&cfg)
		if _, err := NewRuntime(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
