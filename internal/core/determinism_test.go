package core_test

// Determinism regression: the virtual-time engine contract is that a given
// workload/configuration produces bit-identical virtual results on every
// run, no matter how the Go scheduler interleaves the underlying goroutines.
// This guards the engine's horizon fast path, ready-heap scheduling, and
// inline-step optimizations (and any future perf work): those may only ever
// change wall-clock time, never virtual time.
//
// The test lives in package core_test because the workloads import core.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

type runResult struct {
	elapsedNs int64
	makespan  int64
	check     uint64
	global    core.RTStats
	perVProc  []core.VPStats
}

func runWorkloadOnce(t *testing.T, name string, nv int, policy mempage.Policy, scale float64) runResult {
	return runWorkloadPar(t, numa.AMD48(), name, nv, policy, scale, 0)
}

func runWorkloadPar(t *testing.T, topo *numa.Topology, name string, nv int, policy mempage.Policy, scale float64, spanWorkers int) runResult {
	t.Helper()
	spec, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(topo, nv)
	cfg.Policy = policy
	cfg.SpanWorkers = spanWorkers
	rt := core.MustNewRuntime(cfg)
	res := spec.Run(rt, scale)
	out := runResult{
		elapsedNs: res.ElapsedNs,
		makespan:  rt.Eng.MaxClock(),
		check:     res.Check,
		global:    rt.Stats,
	}
	for _, vp := range rt.VProcs {
		out.perVProc = append(out.perVProc, vp.Stats)
	}
	return out
}

// TestDeterministicRerun runs the same workload/config twice and asserts
// bit-identical makespan, workload result, and per-vproc statistics.
func TestDeterministicRerun(t *testing.T) {
	cases := []struct {
		name   string
		nv     int
		policy mempage.Policy
		scale  float64
	}{
		{"quicksort", 8, mempage.PolicyLocal, 0.25},
		{"barnes-hut", 16, mempage.PolicySingleNode, 0.125},
		{"synthetic", 8, mempage.PolicyInterleaved, 2},
		// Channel-heavy: rendezvous handoffs, parked continuations, and
		// lazy message promotion must all reschedule identically.
		{"server", 12, mempage.PolicyLocal, 1},
		{"server", 8, mempage.PolicyInterleaved, 0.5},
		// Timer-heavy: the open-loop traffic harness drives thousands of
		// virtual-time timers through the clamped idle machines; firing
		// instants and the resulting latencies must be bit-identical.
		{"latency", 16, mempage.PolicyLocal, 0.5},
		{"latency", 8, mempage.PolicyInterleaved, 0.25},
		// Crash-heavy: the replicated serving harness kills a lane-home
		// vproc mid-run, so barrier drops, crashed-heap adoption, owned-
		// channel SendCrashed wakeups, and lost-work accounting must all
		// replay identically.
		{"failover", 12, mempage.PolicyLocal, 0.5},
		{"failover", 8, mempage.PolicyInterleaved, 0.25},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := runWorkloadOnce(t, tc.name, tc.nv, tc.policy, tc.scale)
			b := runWorkloadOnce(t, tc.name, tc.nv, tc.policy, tc.scale)
			if a.elapsedNs != b.elapsedNs {
				t.Errorf("elapsed diverged: %d vs %d", a.elapsedNs, b.elapsedNs)
			}
			if a.makespan != b.makespan {
				t.Errorf("makespan diverged: %d vs %d", a.makespan, b.makespan)
			}
			if a.check != b.check {
				t.Errorf("workload check diverged: %#x vs %#x", a.check, b.check)
			}
			if a.global != b.global {
				t.Errorf("runtime stats diverged:\n  %+v\n  %+v", a.global, b.global)
			}
			for i := range a.perVProc {
				if a.perVProc[i] != b.perVProc[i] {
					t.Errorf("vproc %d stats diverged:\n  %+v\n  %+v", i, a.perVProc[i], b.perVProc[i])
				}
			}
		})
	}
}

// TestSpanWorkersBitIdentical runs full workloads under the serial engine
// and under the span-parallel window scheduler and asserts every virtual
// result — makespan, checksum, global and per-vproc statistics — is
// bit-identical. SpanWorkers is the one engine knob that is allowed to
// change wall-clock time only; this is the core-layer enforcement of that
// contract, including on a boarded rack topology where idle sweeps cross
// the far tier.
func TestSpanWorkersBitIdentical(t *testing.T) {
	cases := []struct {
		topo   func() *numa.Topology
		name   string
		nv     int
		policy mempage.Policy
		scale  float64
	}{
		{numa.AMD48, "barnes-hut", 24, mempage.PolicyLocal, 0.125},
		{numa.AMD48, "server", 12, mempage.PolicyInterleaved, 0.5},
		{numa.AMD48, "latency", 16, mempage.PolicyLocal, 0.25},
		{numa.Rack256, "quicksort", 64, mempage.PolicySingleNode, 0.125},
		// A crash mid-window: barrier drops and retired-heap adoption must
		// be invisible to the span scheduler's worker count.
		{numa.AMD48, "failover", 16, mempage.PolicyLocal, 0.5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := runWorkloadPar(t, tc.topo(), tc.name, tc.nv, tc.policy, tc.scale, 0)
			for _, par := range []int{2, 4} {
				got := runWorkloadPar(t, tc.topo(), tc.name, tc.nv, tc.policy, tc.scale, par)
				if serial.elapsedNs != got.elapsedNs || serial.makespan != got.makespan || serial.check != got.check {
					t.Errorf("par %d: elapsed/makespan/check diverged: (%d,%d,%#x) vs (%d,%d,%#x)",
						par, serial.elapsedNs, serial.makespan, serial.check, got.elapsedNs, got.makespan, got.check)
				}
				if serial.global != got.global {
					t.Errorf("par %d: runtime stats diverged:\n  %+v\n  %+v", par, serial.global, got.global)
				}
				for i := range serial.perVProc {
					if serial.perVProc[i] != got.perVProc[i] {
						t.Errorf("par %d: vproc %d stats diverged:\n  %+v\n  %+v", par, i, serial.perVProc[i], got.perVProc[i])
					}
				}
			}
		})
	}
}
