// Package core implements the Manticore runtime and its NUMA-aware garbage
// collector: vprocs with private Appel semi-generational local heaps, a
// chunked global heap with node affinity, minor/major/global collection
// phases, object promotion, object proxies, and a work-stealing scheduler
// with lazy promotion. This is the paper's primary contribution (§2-3).
package core

import (
	"fmt"

	"repro/internal/mempage"
	"repro/internal/numa"
)

// Config configures a Runtime. The zero value is not usable; call
// DefaultConfig and adjust.
type Config struct {
	// Topo is the machine model.
	Topo *numa.Topology
	// Policy is the physical page placement policy (§4.3).
	Policy mempage.Policy
	// NumVProcs is the number of virtual processors (§2.2). VProcs are
	// assigned sparsely across nodes when fewer than the core count.
	NumVProcs int

	// LocalHeapWords is the fixed local heap size (§3.1: "chosen so that
	// the local heaps will fit into the L3 cache").
	LocalHeapWords int
	// ChunkWords is the global-heap chunk size.
	ChunkWords int
	// GlobalTriggerWords triggers a global collection when active global
	// chunkage exceeds it (§3.4: #vprocs x 32MB in the paper; scaled
	// here). Zero means NumVProcs * 16 * ChunkWords.
	GlobalTriggerWords int
	// MinNurseryWords triggers a major collection when the post-minor
	// nursery would fall below it (§3.3). Zero means LocalHeapWords/8.
	MinNurseryWords int
	// GlobalBudgetChunks bounds the global heap at that many active
	// chunks. 0 means unbounded — the paper's model, and bit-identical
	// to every pre-budget baseline. With a budget set, mutator
	// allocation gates (TryAlloc*, TryPromote) walk the emergency
	// collection ladder when headroom runs out and report AllocFailed
	// as a status rather than growing the heap; collections themselves
	// always complete by overdrafting.
	GlobalBudgetChunks int
	// VProcChunkBudget bounds any one vproc's share of the global heap
	// (active chunks it owns). 0 means unbounded. Local heaps are
	// fixed-size by construction, so this is the per-vproc analogue of
	// GlobalBudgetChunks: it stops a single hot vproc from promoting
	// the whole budget into its own chunks.
	VProcChunkBudget int
	// EmergencyRetryNs re-arms the emergency ladder after a failed walk:
	// once a full escalation fails to free headroom, TryAlloc* fails
	// fast (no collection) until a global GC runs, the heap grows by two
	// chunks, or this much virtual time passes — bounding the
	// stop-the-world rate under sustained exhaustion at one ladder per
	// interval while still letting the heap recover when survivors die.
	// Zero means 1ms of virtual time. Only consulted when a budget is
	// set.
	EmergencyRetryNs int64

	// LazyPromotion promotes task environments only when stolen (the
	// default, after [Rai10]); disabled, environments are promoted
	// eagerly at spawn time (ablation).
	LazyPromotion bool
	// YoungPartition keeps the just-copied young data out of major
	// collections to avoid premature promotion (§3.3); disabling it is
	// an ablation.
	YoungPartition bool
	// NodeAffineChunks preserves chunk node affinity on reuse (§3.1);
	// disabling it is an ablation.
	NodeAffineChunks bool
	// NodeLocalScan makes global GC scanning prefer node-local chunk
	// lists (§3.4); disabling it uses one shared list (ablation).
	NodeLocalScan bool
	// NoStepKernels forces the direct-style (Advance-based) versions of
	// the step-converted hot loops: the global-GC scan phase, the
	// local-heap root walk, and the workload mutator kernels. The two
	// styles are schedule-identical by the step contract — this ablation
	// exists to prove it (results must match bit-for-bit) and to measure
	// the host-time cost of token handoffs.
	NoStepKernels bool

	// ConcurrentGlobal replaces the stop-the-world global collection with
	// the mostly-concurrent design: a tri-color incremental mark
	// interleaved with mutator steps, bracketed by two short STW windows
	// (root snapshot and mark termination), with a Dijkstra-style
	// insertion write barrier on global-pointer stores and mark assists
	// paced by a GOGC-style trigger. Off (the default), the legacy STW
	// collector runs and every schedule is bit-identical to the
	// pre-concurrent baselines.
	ConcurrentGlobal bool
	// GCPercent is the pacer's heap-growth goal in percent, GOGC-style:
	// the next concurrent cycle aims to finish before the active global
	// heap grows past survived*(1+GCPercent/100) words. 0 means 100.
	// Negative is rejected. Only consulted when ConcurrentGlobal is set;
	// the STW collector keeps its fixed GlobalTriggerWords trigger.
	GCPercent int

	// Debug runs the whole-heap invariant verifier after every
	// collection phase. Slow; for tests.
	Debug bool

	// Model cost constants, in virtual nanoseconds.
	AllocFixedNs      int64 // fixed cost per allocation (bump + init)
	ComputeGrainNs    int64 // reserved for workload use
	StealAttemptNs    int64 // probing a victim deque
	StealHitNs        int64 // CAS to take a task
	PollNs            int64 // idle poll interval
	ChunkSyncLocalNs  int64 // node-local chunk free-list pop
	ChunkSyncGlobalNs int64 // fresh chunk allocation + registration
	SignalVProcNs     int64 // zeroing one vproc's limit pointer
	BarrierNs         int64 // stop-the-world rendezvous
	SpinNs            int64 // heap-busy handshake spin

	// Seed makes randomized workloads deterministic.
	Seed uint64

	// SpanWorkers is the host-worker count of the engine's span-parallel
	// window scheduler (vtime.Engine.SetParallel). 0 or 1 runs the serial
	// engine; N >= 2 runs interaction-free idle machines on N host workers
	// between conservative windows. Virtual results are bit-identical for
	// every value — the knob trades host CPU for wall clock only.
	SpanWorkers int
}

// DefaultConfig returns a configuration with the paper's defaults at a
// simulation-friendly scale. Local heaps default to a size that fits the
// machine's L3 (scaled down), chunks to 64 KB, and the global trigger to
// NumVProcs x 16 chunks.
func DefaultConfig(topo *numa.Topology, nvprocs int) Config {
	return Config{
		Topo:               topo,
		Policy:             mempage.PolicyLocal,
		NumVProcs:          nvprocs,
		LocalHeapWords:     64 << 10, // 512 KB
		ChunkWords:         16 << 10, // 128 KB
		GlobalTriggerWords: 0,        // derived
		MinNurseryWords:    0,        // derived
		LazyPromotion:      true,
		YoungPartition:     true,
		NodeAffineChunks:   true,
		NodeLocalScan:      true,
		AllocFixedNs:       2,
		StealAttemptNs:     120,
		StealHitNs:         250,
		PollNs:             400,
		ChunkSyncLocalNs:   150,
		ChunkSyncGlobalNs:  900,
		SignalVProcNs:      80,
		BarrierNs:          600,
		SpinNs:             60,
		Seed:               0x9E3779B97F4A7C15,
	}
}

// normalize fills derived defaults and validates.
func (c *Config) normalize() error {
	if c.Topo == nil {
		return fmt.Errorf("core: Config.Topo is nil")
	}
	if c.NumVProcs <= 0 || c.NumVProcs > c.Topo.NumCores() {
		return fmt.Errorf("core: NumVProcs %d out of range [1,%d]", c.NumVProcs, c.Topo.NumCores())
	}
	if c.LocalHeapWords < 1024 {
		return fmt.Errorf("core: LocalHeapWords %d too small (min 1024)", c.LocalHeapWords)
	}
	if c.ChunkWords < 64 {
		return fmt.Errorf("core: ChunkWords %d too small (min 64)", c.ChunkWords)
	}
	if c.MinNurseryWords == 0 {
		c.MinNurseryWords = c.LocalHeapWords / 8
	}
	if c.GlobalTriggerWords == 0 {
		c.GlobalTriggerWords = c.NumVProcs * 16 * c.ChunkWords
	}
	if c.EmergencyRetryNs < 0 {
		return fmt.Errorf("core: EmergencyRetryNs %d negative", c.EmergencyRetryNs)
	}
	if c.EmergencyRetryNs == 0 {
		c.EmergencyRetryNs = 1_000_000
	}
	if c.GlobalBudgetChunks < 0 {
		return fmt.Errorf("core: GlobalBudgetChunks %d negative", c.GlobalBudgetChunks)
	}
	if c.VProcChunkBudget < 0 {
		return fmt.Errorf("core: VProcChunkBudget %d negative", c.VProcChunkBudget)
	}
	if c.SpanWorkers < 0 {
		return fmt.Errorf("core: SpanWorkers %d negative", c.SpanWorkers)
	}
	if c.GCPercent < 0 {
		return fmt.Errorf("core: GCPercent %d negative", c.GCPercent)
	}
	if c.GCPercent == 0 {
		c.GCPercent = 100
	}
	if c.GlobalBudgetChunks > 0 && c.GlobalBudgetChunks < c.NumVProcs {
		// Every vproc must be able to hold at least one global chunk or
		// the first round of promotions already lives in permanent
		// overdraft; reject rather than clamp.
		return fmt.Errorf("core: GlobalBudgetChunks %d below NumVProcs %d", c.GlobalBudgetChunks, c.NumVProcs)
	}
	return nil
}
