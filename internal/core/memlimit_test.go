package core

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/numa"
)

// memTestConfig is a bounded-heap configuration for the TryAlloc* tests:
// small chunks, a global trigger too high to ever fire (so the only
// collector is the emergency ladder), and a budget of budget chunks.
func memTestConfig(nv, budget int) Config {
	topo := numa.Custom("mem-test", 2, 2, 2, 20, 15, 6)
	cfg := DefaultConfig(topo, nv)
	cfg.LocalHeapWords = 8 << 10
	cfg.ChunkWords = 512
	cfg.GlobalTriggerWords = 1 << 30
	cfg.GlobalBudgetChunks = budget
	return cfg
}

// fillLive promotes rooted 60-word objects until the global heap has no
// mutator headroom, then overdrafts one more chunk's worth — so even after
// a compacting collection the live data strictly exceeds the budget. The
// addresses are pinned as global roots; the returned slice must stay alive.
func fillLive(rt *Runtime, vp *VProc) []heap.Addr {
	addrs := make([]heap.Addr, 0, 1024)
	fill := func() {
		s := vp.PushRoot(vp.AllocRawN(60))
		a := vp.Promote(vp.Root(s))
		vp.PopRoots(1)
		addrs = append(addrs, a)
		rt.RegisterGlobalRoot(&addrs[len(addrs)-1])
	}
	for rt.Chunks.HasHeadroom(vp.ID) {
		fill()
	}
	for i := 0; i < rt.Cfg.ChunkWords/61+1; i++ {
		fill()
	}
	return addrs
}

// TestTryAllocUnboundedIsAlloc: with no budget configured, the fallible
// allocators are schedule-identical to the infallible ones — same clock,
// same stats, no ladder walks — so unbounded baselines cannot drift.
func TestTryAllocUnboundedIsAlloc(t *testing.T) {
	run := func(try bool) (int64, VPStats) {
		rt := MustNewRuntime(memTestConfig(2, 0))
		mk := rt.Run(func(vp *VProc) {
			for i := 0; i < 200; i++ {
				var a heap.Addr
				if try {
					var st AllocStatus
					if a, st = vp.TryAllocRawN(60); st != AllocOK {
						t.Fatalf("TryAllocRawN on an unbounded heap = %v", st)
					}
				} else {
					a = vp.AllocRawN(60)
				}
				s := vp.PushRoot(a)
				if try {
					if _, st := vp.TryPromote(vp.Root(s)); st != AllocOK {
						t.Fatalf("TryPromote on an unbounded heap = %v", st)
					}
				} else {
					vp.Promote(vp.Root(s))
				}
				vp.PopRoots(1)
			}
		})
		return mk, rt.TotalStats()
	}
	mkTry, stTry := run(true)
	mkPlain, stPlain := run(false)
	if mkTry != mkPlain {
		t.Errorf("makespan differs: TryAlloc %d ns, Alloc %d ns", mkTry, mkPlain)
	}
	if stTry != stPlain {
		t.Errorf("stats differ:\n  try:   %+v\n  plain: %+v", stTry, stPlain)
	}
	if stTry.EmergencyGCs != 0 || stTry.AllocFailed != 0 {
		t.Errorf("unbounded run walked the ladder: emergency %d, failed %d",
			stTry.EmergencyGCs, stTry.AllocFailed)
	}
}

// TestEmergencyLadderRecovers: at the budget with only garbage in the
// global heap, one emergency ladder walk (forced collection) frees the
// headroom and the allocation succeeds — AllocFailed is never reported.
func TestEmergencyLadderRecovers(t *testing.T) {
	rt := MustNewRuntime(memTestConfig(2, 4))
	rt.Run(func(vp *VProc) {
		// Promote unrooted garbage until the budget is exhausted.
		for rt.Chunks.HasHeadroom(vp.ID) {
			s := vp.PushRoot(vp.AllocRawN(60))
			vp.Promote(vp.Root(s))
			vp.PopRoots(1)
		}
		a, st := vp.TryAllocRawN(60)
		if st != AllocOK || a == 0 {
			t.Errorf("TryAllocRawN over reclaimable garbage = %v, want ok", st)
		}
	})
	total := rt.TotalStats()
	if total.EmergencyGCs == 0 {
		t.Error("no emergency ladder walk — the gate never saw the exhausted budget")
	}
	if total.AllocFailed != 0 {
		t.Errorf("AllocFailed = %d with a fully reclaimable heap, want 0", total.AllocFailed)
	}
	if rt.Stats.GlobalGCs == 0 {
		t.Error("the ladder never escalated to a global collection")
	}
}

// TestTryAllocFailsOnLiveHeap: when live data exceeds the budget, the
// ladder runs once, fails, and reports AllocFailed as a status — then
// fails fast (no second stop-the-world) until the deterministic re-arm
// signals fire. Nothing panics and the infallible collector paths still
// work via overdraft.
func TestTryAllocFailsOnLiveHeap(t *testing.T) {
	rt := MustNewRuntime(memTestConfig(2, 4))
	var addrs []heap.Addr
	rt.Run(func(vp *VProc) {
		addrs = fillLive(rt, vp)

		gcsBefore := rt.Stats.GlobalGCs
		if _, st := vp.TryAllocRawN(60); st != AllocFailed {
			t.Errorf("TryAllocRawN over a live over-budget heap = %v, want alloc-failed", st)
		}
		if vp.Stats.EmergencyGCs != 1 {
			t.Errorf("EmergencyGCs = %d after the first failure, want 1", vp.Stats.EmergencyGCs)
		}
		if rt.Stats.GlobalGCs != gcsBefore+1 {
			t.Errorf("GlobalGCs = %d, want %d — the ladder must escalate to global",
				rt.Stats.GlobalGCs, gcsBefore+1)
		}

		// Fail-fast: an immediate retry must not run another ladder.
		if _, st := vp.TryAllocRawN(60); st != AllocFailed {
			t.Errorf("second TryAllocRawN = %v, want alloc-failed", st)
		}
		s := vp.PushRoot(vp.AllocRawN(8))
		if _, st := vp.TryPromote(vp.Root(s)); st != AllocFailed {
			t.Errorf("TryPromote = %v, want alloc-failed", st)
		}
		vp.PopRoots(1)
		if vp.Stats.EmergencyGCs != 1 {
			t.Errorf("EmergencyGCs = %d after fail-fast retries, want still 1", vp.Stats.EmergencyGCs)
		}
		if vp.Stats.AllocFailed != 3 {
			t.Errorf("AllocFailed = %d, want 3", vp.Stats.AllocFailed)
		}

		// The virtual-time re-arm: after EmergencyRetryNs the gate walks
		// the ladder again (and fails again — the data is still live).
		vp.SleepFor(rt.Cfg.EmergencyRetryNs + 1)
		if _, st := vp.TryAllocRawN(60); st != AllocFailed {
			t.Errorf("post-re-arm TryAllocRawN = %v, want alloc-failed", st)
		}
		if vp.Stats.EmergencyGCs != 2 {
			t.Errorf("EmergencyGCs = %d after the re-arm window, want 2", vp.Stats.EmergencyGCs)
		}
	})
	mp := rt.MemPressure()
	if mp.ActiveChunks <= mp.BudgetChunks {
		t.Errorf("live fill should overdraft: %d active of %d budget", mp.ActiveChunks, mp.BudgetChunks)
	}
	if mp.Overdrafts == 0 {
		t.Error("no overdraft recorded for the over-budget promotions")
	}
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants after alloc failures: %v", err)
	}
	_ = addrs
}

// TestSqueezeFaultTogglesBudget: a FaultSqueeze rewrites the budget at its
// virtual instant — clamping an unbounded heap into AllocFailed territory —
// and a second squeeze releases it; the release also re-arms the fail-fast
// ladder immediately (no EmergencyRetryNs wait).
func TestSqueezeFaultTogglesBudget(t *testing.T) {
	rt := MustNewRuntime(memTestConfig(2, 0))
	var addrs []heap.Addr
	rt.Run(func(vp *VProc) {
		// Live data first, while the heap is unbounded.
		addrs = make([]heap.Addr, 0, 1024)
		for i := 0; i < 40; i++ {
			s := vp.PushRoot(vp.AllocRawN(60))
			a := vp.Promote(vp.Root(s))
			vp.PopRoots(1)
			addrs = append(addrs, a)
			rt.RegisterGlobalRoot(&addrs[len(addrs)-1])
		}
		occupied := rt.Chunks.ActiveChunks()
		plan := (&FaultPlan{}).
			SqueezeAt(0, vp.Now()+1_000, occupied/2).
			SqueezeAt(0, vp.Now()+50_000, 0)
		rt.InstallFaults(plan)

		if _, st := vp.TryAllocRawN(60); st != AllocOK {
			t.Errorf("pre-squeeze TryAllocRawN = %v, want ok", st)
		}
		vp.SleepFor(2_000) // cross the squeeze
		if got := rt.MemPressure().BudgetChunks; got != occupied/2 {
			t.Fatalf("BudgetChunks = %d after the squeeze, want %d", got, occupied/2)
		}
		if _, st := vp.TryAllocRawN(60); st != AllocFailed {
			t.Errorf("squeezed TryAllocRawN = %v, want alloc-failed", st)
		}
		vp.SleepFor(60_000) // cross the release; well inside EmergencyRetryNs
		if got := rt.MemPressure().BudgetChunks; got != 0 {
			t.Fatalf("BudgetChunks = %d after the release, want 0", got)
		}
		if _, st := vp.TryAllocRawN(60); st != AllocOK {
			t.Errorf("released TryAllocRawN = %v, want ok — the release must re-arm the ladder", st)
		}
	})
	if err := rt.VerifyHeap(); err != nil {
		t.Errorf("heap invariants after squeeze faults: %v", err)
	}
}

// TestBudgetConfigValidated: Config.normalize rejects unusable budgets
// instead of clamping them.
func TestBudgetConfigValidated(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"negative global", func(c *Config) { c.GlobalBudgetChunks = -1 }},
		{"negative per-vproc", func(c *Config) { c.VProcChunkBudget = -2 }},
		{"global below vprocs", func(c *Config) { c.GlobalBudgetChunks = 1 }},
		{"negative retry window", func(c *Config) { c.EmergencyRetryNs = -5 }},
	} {
		cfg := memTestConfig(2, 0)
		tc.mut(&cfg)
		if _, err := NewRuntime(cfg); err == nil {
			t.Errorf("%s: NewRuntime accepted the config", tc.name)
		}
	}
	// Budget == NumVProcs is the smallest legal bounded heap.
	cfg := memTestConfig(2, 2)
	if _, err := NewRuntime(cfg); err != nil {
		t.Errorf("budget == vprocs rejected: %v", err)
	}
}
