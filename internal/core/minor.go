package core

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/numa"
)

// minorGC performs a minor collection (§3.3, Figure 2): all live data is
// copied from the nursery into the old-data area of the same local heap.
// Because there are no pointers into the local heap from outside (other
// than the roots), minor collections require no synchronization with other
// vprocs. Afterwards the remaining free space is split and the upper half
// becomes the new nursery, and a major collection is triggered if the new
// nursery falls below threshold or a global collection is pending.
func (vp *VProc) minorGC() {
	rt := vp.rt
	lh := vp.Local
	start := vp.Now()
	vp.heapBusy = true
	rt.localGCActive++
	vp.Stats.MinorGCs++

	region := lh.Region
	words := region.Words
	oldTopBefore := lh.OldTop
	nurseryStart := lh.NurseryStart
	var copied int64

	// Copy charges fuse into one engine advance per collection while the
	// local heap's pages are node-local (see chargeBatch): the collector
	// holds heapBusy, so nothing observable happens between the fused
	// instants. Metered charges (non-local pages under interleaved or
	// single-node placement) flush and advance at their exact instants.
	batch := chargeBatch{vp: vp}

	// forward copies a nursery object to the old-data area and returns
	// its new address; non-nursery addresses pass through unchanged.
	var forward func(a heap.Addr) heap.Addr
	forward = func(a heap.Addr) heap.Addr {
		if a == 0 || a.RegionID() != region.ID || a.Word() < nurseryStart {
			return a
		}
		h := words[a.Word()-1]
		if !heap.IsHeader(h) {
			// Already copied by this collection, or promoted
			// earlier; either way follow the forwarding pointer.
			// A promoted object's global copy needs no further
			// treatment here.
			return heap.ForwardTarget(h)
		}
		n := heap.HeaderLen(h)
		dst := lh.OldTop
		if dst+n+1 > lh.NurseryStart {
			panic(fmt.Sprintf("core: vproc %d minor GC overflowed reserve (dst=%d n=%d nursery=%d)",
				vp.ID, dst, n, lh.NurseryStart))
		}
		words[dst] = h
		copy(words[dst+1:dst+1+n], words[a.Word():a.Word()+n])
		na := heap.MakeAddr(region.ID, dst+1)
		words[a.Word()-1] = heap.MakeForward(na)
		lh.OldTop = dst + n + 1
		copied += int64(n + 1)

		// Charge the copy: nursery and old area are both in the local
		// heap, so with node-local pages this is an L3-resident copy.
		srcNode := rt.Space.NodeOf(a)
		dstNode := rt.Space.NodeOf(na)
		batch.copyStream(srcNode, dstNode, (n+1)*8, numa.AccessCache, numa.AccessCache)
		return na
	}

	vp.forwardLocalRoots(forward)

	// Cheney scan of the data copied into the old area.
	scan := oldTopBefore
	for scan < lh.OldTop {
		h := words[scan]
		if !heap.IsHeader(h) {
			panic("core: forwarding pointer in minor to-space")
		}
		obj := heap.MakeAddr(region.ID, scan+1)
		heap.ScanObject(rt.Space, rt.Descs, obj, func(_ int, p heap.Addr) heap.Addr {
			return forward(p)
		})
		scan += heap.HeaderLen(h) + 1
	}

	batch.flush()

	// Figure 2: reclaim the nursery, split the free space, upper half
	// becomes the new nursery. Everything copied by this collection is
	// the young-data partition for the next major collection.
	lh.YoungStart = oldTopBefore
	lh.ResetNursery()

	vp.Stats.MinorCopied += copied
	vp.Stats.GCNs += vp.Now() - start
	vp.heapBusy = false
	rt.localGCActive--

	if rt.Cfg.Debug && rt.localGCActive == 0 {
		if err := rt.VerifyHeap(); err != nil {
			panic(fmt.Sprintf("core: after minor GC on vproc %d: %v", vp.ID, err))
		}
	}
	rt.emit(GCEvent{Kind: EvMinor, VProc: vp.ID, At: vp.Now(), Ns: vp.Now() - start, Words: copied})

	// §3.3: "A minor garbage collection triggers a major garbage
	// collection when the size of the new nursery area falls below a
	// certain threshold or if a global garbage collection is pending."
	if lh.NurseryWords() < rt.Cfg.MinNurseryWords || rt.global.pending {
		vp.majorGC()
	}
}

// forwardLocalRoots applies a forwarding function to every root of this
// vproc's local heap: the shadow root stack, the environments of queued
// tasks, and the local slots of proxy objects owned by this vproc.
func (vp *VProc) forwardLocalRoots(forward func(heap.Addr) heap.Addr) {
	for i, a := range vp.roots {
		vp.roots[i] = forward(a)
	}
	vp.queue.each(func(t *Task) {
		for i, a := range t.env {
			t.env[i] = forward(a)
		}
	})
	for _, pa := range vp.proxies {
		p := vp.rt.Space.Payload(pa)
		la := heap.Addr(p[heap.ProxyLocalSlot])
		p[heap.ProxyLocalSlot] = uint64(forward(la))
	}
	for _, t := range vp.resultTasks {
		t.result = forward(t.result)
	}
	for _, r := range vp.parked {
		for i, a := range r.env {
			r.env[i] = forward(a)
		}
	}
}
