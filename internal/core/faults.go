package core

import "fmt"

// Deterministic fault injection. A FaultPlan schedules vproc stalls
// ("slow node" pauses), heap-pressure spikes (forced allocation bursts),
// and channel closes at chosen virtual instants, composable with any
// workload: the plan rides the per-vproc timer queues, so events fire with
// the same exactness guarantees as timer continuations and two runs with
// the same plan produce bit-identical schedules.
//
// Execution discipline: a due FaultEvent is *deferred*, never run from
// fireDueTimers — the pop site can be inside an engine step function
// (sweep, SleepUntil) where advancing and allocating are illegal. The
// event queues on vp.pendingFaults and checkPreempt drains it on the
// vproc's own goroutine, which is a legal context for both. The deferral
// does not cost exactness beyond a task's normal wakeup jitter: the idle
// machines exit with sweepFault at the deadline instant, and a busy vproc
// notices at its next loop-top — the same latency a timer continuation has.

// FaultKind classifies a fault-plan event.
type FaultKind int

const (
	// FaultStall pauses the vproc for StallNs of virtual time (a slow or
	// briefly unresponsive node). The stall is GC-safe: the vproc keeps
	// servicing stop-the-world signals while stalled (SleepFor).
	FaultStall FaultKind = iota
	// FaultBurst allocates Words of short-lived data and promotes it,
	// forcing local-collection and global-heap pressure (a heap spike).
	FaultBurst
	// FaultClose closes Ch at the deadline: parked receivers wake with nil
	// messages and in-flight sends observe SendClosed — the
	// recoverable-failure path under load.
	FaultClose
	// FaultSqueeze rewrites the global-heap chunk budget to Budget at the
	// deadline (0 restores an unbounded heap), injecting heap exhaustion
	// — or relief — at a chosen virtual instant. Mutator allocation
	// gates observe the new budget from the next TryAlloc* on; data
	// already in the heap stays (a squeeze below current occupancy puts
	// the heap in overdraft until collections catch up).
	FaultSqueeze
)

// String names the kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultStall:
		return "stall"
	case FaultBurst:
		return "burst"
	case FaultClose:
		return "close"
	case FaultSqueeze:
		return "squeeze"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	// At is the virtual deadline (ns) at which the fault fires.
	At int64
	// VProc is the vproc the fault executes on (the stalled/bursting
	// vproc; for FaultClose, the vproc whose timer queue carries the
	// event — the close itself is host-side).
	VProc int
	// Kind selects the fault body.
	Kind FaultKind
	// StallNs is the stall duration (FaultStall).
	StallNs int64
	// Words is the burst allocation size in payload words (FaultBurst).
	Words int
	// Ch is the channel to close (FaultClose).
	Ch *Channel
	// Budget is the global chunk budget to install (FaultSqueeze);
	// 0 restores an unbounded heap.
	Budget int
}

// FaultPlan is an ordered set of fault events. Build one with the chained
// helpers or RandomFaultPlan, then arm it with Runtime.InstallFaults.
type FaultPlan struct {
	Events []FaultEvent
}

// Stall schedules a FaultStall and returns the plan for chaining.
func (p *FaultPlan) Stall(vproc int, at, stallNs int64) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultStall, StallNs: stallNs})
	return p
}

// Burst schedules a FaultBurst and returns the plan for chaining.
func (p *FaultPlan) Burst(vproc int, at int64, words int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultBurst, Words: words})
	return p
}

// CloseAt schedules a FaultClose and returns the plan for chaining.
func (p *FaultPlan) CloseAt(vproc int, at int64, ch *Channel) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultClose, Ch: ch})
	return p
}

// SqueezeAt schedules a FaultSqueeze and returns the plan for chaining:
// at the deadline the global chunk budget becomes budgetChunks (0 =
// unbounded again). Chain a second SqueezeAt to model a transient
// squeeze-then-recover episode.
func (p *FaultPlan) SqueezeAt(vproc int, at int64, budgetChunks int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultSqueeze, Budget: budgetChunks})
	return p
}

// RandomFaultPlan builds a seeded plan of stalls and bursts spread over
// [horizon/8, horizon) across nv vprocs: the same xorshift64* generator the
// workloads use, so the plan is a pure function of its arguments. Channel
// closes are not generated here — they need channel references, which only
// the embedding workload has; compose with CloseAt.
func RandomFaultPlan(seed uint64, nv int, horizon int64, stalls, bursts int) *FaultPlan {
	if nv < 1 {
		panic(fmt.Sprintf("core: RandomFaultPlan with %d vprocs", nv))
	}
	if horizon < 16 {
		panic(fmt.Sprintf("core: RandomFaultPlan horizon %d too short", horizon))
	}
	// Scramble before forcing the state odd: a bare seed|1 would collapse
	// adjacent even/odd seeds into the same stream.
	x := seed*0x9E3779B97F4A7C15 | 1
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 0x2545F4914F6CDD1D
	}
	at := func() int64 {
		lo := horizon / 8
		return lo + int64(next()%uint64(horizon-lo))
	}
	p := &FaultPlan{}
	for i := 0; i < stalls; i++ {
		p.Stall(int(next()%uint64(nv)), at(), 20_000+int64(next()%180_000))
	}
	for i := 0; i < bursts; i++ {
		p.Burst(int(next()%uint64(nv)), at(), int(2048+next()%6144))
	}
	return p
}

// InstallFaults arms every event of the plan on its vproc's timer queue.
// Call before Run (or from workload setup code at virtual time zero);
// events whose deadline lies beyond the run's natural makespan are inert —
// fault timers do not count as outstanding work, so the runtime quiesces
// normally and unfired events are simply never popped.
func (rt *Runtime) InstallFaults(p *FaultPlan) {
	for i := range p.Events {
		e := &p.Events[i]
		if e.VProc < 0 || e.VProc >= len(rt.VProcs) {
			panic(fmt.Sprintf("core: fault event %d targets vproc %d of %d", i, e.VProc, len(rt.VProcs)))
		}
		if e.At < 0 {
			panic(fmt.Sprintf("core: fault event %d at negative instant %d", i, e.At))
		}
		if e.Kind == FaultClose && e.Ch == nil {
			panic(fmt.Sprintf("core: fault event %d closes a nil channel", i))
		}
		if e.Kind == FaultSqueeze && e.Budget < 0 {
			panic(fmt.Sprintf("core: fault event %d squeezes to negative budget %d", i, e.Budget))
		}
		rt.VProcs[e.VProc].timers.Add(e.At, e)
	}
}

// runPendingFaults drains the deferred fault events in FIFO order on the
// vproc's own goroutine. The inFault guard stops re-entry: a stall's
// SleepFor services checkPreempt, which would otherwise start draining the
// remaining events recursively (and a burst's allocations reach safepoints
// whose timer pops can append more).
func (vp *VProc) runPendingFaults() {
	if vp.inFault {
		return
	}
	vp.inFault = true
	for len(vp.pendingFaults) != 0 {
		e := vp.pendingFaults[0]
		vp.pendingFaults = vp.pendingFaults[1:]
		vp.Stats.FaultsInjected++
		switch e.Kind {
		case FaultStall:
			vp.Stats.FaultStallNs += e.StallNs
			vp.SleepFor(e.StallNs)
		case FaultBurst:
			vp.faultBurst(e.Words)
		case FaultClose:
			e.Ch.Close()
		case FaultSqueeze:
			vp.rt.Chunks.BudgetChunks = e.Budget
			// The budget changed under the fail-fast state; re-arm the
			// ladder so the next gate re-evaluates from scratch.
			vp.rt.ladderFailed = false
		default:
			panic(fmt.Sprintf("core: unknown fault kind %d", e.Kind))
		}
	}
	vp.inFault = false
}

// faultBurst allocates words of short-lived data in 64-word objects and
// promotes each, pressuring the nursery (minor collections), the global
// chunk pool, and — through the allocated-words trigger — the global
// collector, exactly like a mutator's worst-case allocation spike.
func (vp *VProc) faultBurst(words int) {
	const objWords = 64
	for words > 0 {
		n := objWords
		if words < n {
			n = words
		}
		words -= n
		s := vp.PushRoot(vp.AllocRawN(n))
		vp.Promote(vp.Root(s))
		vp.PopRoots(1)
		vp.Stats.FaultBurstWords += int64(n)
	}
}
