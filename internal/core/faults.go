package core

import "fmt"

// Deterministic fault injection. A FaultPlan schedules vproc stalls
// ("slow node" pauses), heap-pressure spikes (forced allocation bursts),
// and channel closes at chosen virtual instants, composable with any
// workload: the plan rides the per-vproc timer queues, so events fire with
// the same exactness guarantees as timer continuations and two runs with
// the same plan produce bit-identical schedules.
//
// Execution discipline: a due FaultEvent is *deferred*, never run from
// fireDueTimers — the pop site can be inside an engine step function
// (sweep, SleepUntil) where advancing and allocating are illegal. The
// event queues on vp.pendingFaults and checkPreempt drains it on the
// vproc's own goroutine, which is a legal context for both. The deferral
// does not cost exactness beyond a task's normal wakeup jitter: the idle
// machines exit with sweepFault at the deadline instant, and a busy vproc
// notices at its next loop-top — the same latency a timer continuation has.

// FaultKind classifies a fault-plan event.
type FaultKind int

const (
	// FaultStall pauses the vproc for StallNs of virtual time (a slow or
	// briefly unresponsive node). The stall is GC-safe: the vproc keeps
	// servicing stop-the-world signals while stalled (SleepFor).
	FaultStall FaultKind = iota
	// FaultBurst allocates Words of short-lived data and promotes it,
	// forcing local-collection and global-heap pressure (a heap spike).
	FaultBurst
	// FaultClose closes Ch at the deadline: parked receivers wake with nil
	// messages and in-flight sends observe SendClosed — the
	// recoverable-failure path under load.
	FaultClose
	// FaultSqueeze rewrites the global-heap chunk budget to Budget at the
	// deadline (0 restores an unbounded heap), injecting heap exhaustion
	// — or relief — at a chosen virtual instant. Mutator allocation
	// gates observe the new budget from the next TryAlloc* on; data
	// already in the heap stays (a squeeze below current occupancy puts
	// the heap in overdraft until collections catch up).
	FaultSqueeze
	// FaultCrash kills the target vproc at the deadline — permanently. The
	// crashed vproc leaves every global-GC barrier and steal sweep, its
	// local heap is retired (frozen, still readable through proxies), its
	// queued and in-flight tasks are reported lost with exact Join
	// accounting, its parked continuations and pending timers are cancelled,
	// and its owned channels fail over to SendCrashed / nil-message wakeups.
	// See crash.go for the full semantics contract.
	FaultCrash
)

// String names the kind for diagnostics.
func (k FaultKind) String() string {
	switch k {
	case FaultStall:
		return "stall"
	case FaultBurst:
		return "burst"
	case FaultClose:
		return "close"
	case FaultSqueeze:
		return "squeeze"
	case FaultCrash:
		return "crash"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	// At is the virtual deadline (ns) at which the fault fires.
	At int64
	// VProc is the vproc the fault executes on (the stalled/bursting
	// vproc; for FaultClose, the vproc whose timer queue carries the
	// event — the close itself is host-side).
	VProc int
	// Kind selects the fault body.
	Kind FaultKind
	// StallNs is the stall duration (FaultStall).
	StallNs int64
	// Words is the burst allocation size in payload words (FaultBurst).
	Words int
	// Ch is the channel to close (FaultClose).
	Ch *Channel
	// Budget is the global chunk budget to install (FaultSqueeze);
	// 0 restores an unbounded heap.
	Budget int
	// Node and Board widen a FaultCrash to every vproc on a NUMA node or
	// board (correlated failure). Exactly one of VProc/Node/Board must be
	// >= 0 for a crash event; the builders set the unused pair to -1.
	// Ignored by every other kind.
	Node  int
	Board int
}

// FaultPlan is an ordered set of fault events. Build one with the chained
// helpers or RandomFaultPlan, then arm it with Runtime.InstallFaults.
type FaultPlan struct {
	Events []FaultEvent
}

// Stall schedules a FaultStall and returns the plan for chaining.
func (p *FaultPlan) Stall(vproc int, at, stallNs int64) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultStall, StallNs: stallNs})
	return p
}

// Burst schedules a FaultBurst and returns the plan for chaining.
func (p *FaultPlan) Burst(vproc int, at int64, words int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultBurst, Words: words})
	return p
}

// CloseAt schedules a FaultClose and returns the plan for chaining.
func (p *FaultPlan) CloseAt(vproc int, at int64, ch *Channel) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultClose, Ch: ch})
	return p
}

// SqueezeAt schedules a FaultSqueeze and returns the plan for chaining:
// at the deadline the global chunk budget becomes budgetChunks (0 =
// unbounded again). Chain a second SqueezeAt to model a transient
// squeeze-then-recover episode.
func (p *FaultPlan) SqueezeAt(vproc int, at int64, budgetChunks int) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultSqueeze, Budget: budgetChunks})
	return p
}

// CrashAt schedules a FaultCrash of one vproc and returns the plan for
// chaining.
func (p *FaultPlan) CrashAt(vproc int, at int64) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: vproc, Kind: FaultCrash, Node: -1, Board: -1})
	return p
}

// CrashNodeAt schedules a correlated FaultCrash of every vproc on a NUMA
// node and returns the plan for chaining. The node is resolved against the
// machine at InstallFaults time; a node with no vproc assigned is an error
// (reject, not silently inert).
func (p *FaultPlan) CrashNodeAt(node int, at int64) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: -1, Kind: FaultCrash, Node: node, Board: -1})
	return p
}

// CrashBoardAt schedules a correlated FaultCrash of every vproc on a board
// (the rack machines' failure domain) and returns the plan for chaining.
func (p *FaultPlan) CrashBoardAt(board int, at int64) *FaultPlan {
	p.Events = append(p.Events, FaultEvent{At: at, VProc: -1, Kind: FaultCrash, Node: -1, Board: board})
	return p
}

// RandomCrashPlan extends RandomFaultPlan's stream discipline to crash
// storms: crashes single-vproc kills drawn without replacement from
// [keepLow, nv) over [horizon/8, horizon). Vprocs below keepLow are never
// crashed — harnesses keep their coordinator (vproc 0) alive so termination
// watchdogs survive. Requires crashes <= nv - keepLow.
func RandomCrashPlan(seed uint64, nv, keepLow, crashes int, horizon int64) *FaultPlan {
	if nv < 1 || keepLow < 0 || keepLow >= nv {
		panic(fmt.Sprintf("core: RandomCrashPlan with %d vprocs, keepLow %d", nv, keepLow))
	}
	if crashes < 0 || crashes > nv-keepLow {
		panic(fmt.Sprintf("core: RandomCrashPlan wants %d crashes of %d crashable vprocs", crashes, nv-keepLow))
	}
	if horizon < 16 {
		panic(fmt.Sprintf("core: RandomCrashPlan horizon %d too short", horizon))
	}
	x := seed*0x9E3779B97F4A7C15 | 1
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 0x2545F4914F6CDD1D
	}
	// Partial Fisher-Yates over the crashable vproc IDs: distinct targets by
	// construction, matching InstallFaults's no-duplicate-crash rule.
	ids := make([]int, nv-keepLow)
	for i := range ids {
		ids[i] = keepLow + i
	}
	p := &FaultPlan{}
	lo := horizon / 8
	for i := 0; i < crashes; i++ {
		j := i + int(next()%uint64(len(ids)-i))
		ids[i], ids[j] = ids[j], ids[i]
		p.CrashAt(ids[i], lo+int64(next()%uint64(horizon-lo)))
	}
	return p
}

// RandomFaultPlan builds a seeded plan of stalls and bursts spread over
// [horizon/8, horizon) across nv vprocs: the same xorshift64* generator the
// workloads use, so the plan is a pure function of its arguments. Channel
// closes are not generated here — they need channel references, which only
// the embedding workload has; compose with CloseAt.
func RandomFaultPlan(seed uint64, nv int, horizon int64, stalls, bursts int) *FaultPlan {
	if nv < 1 {
		panic(fmt.Sprintf("core: RandomFaultPlan with %d vprocs", nv))
	}
	if horizon < 16 {
		panic(fmt.Sprintf("core: RandomFaultPlan horizon %d too short", horizon))
	}
	// Scramble before forcing the state odd: a bare seed|1 would collapse
	// adjacent even/odd seeds into the same stream.
	x := seed*0x9E3779B97F4A7C15 | 1
	next := func() uint64 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		return x * 0x2545F4914F6CDD1D
	}
	at := func() int64 {
		lo := horizon / 8
		return lo + int64(next()%uint64(horizon-lo))
	}
	p := &FaultPlan{}
	for i := 0; i < stalls; i++ {
		p.Stall(int(next()%uint64(nv)), at(), 20_000+int64(next()%180_000))
	}
	for i := 0; i < bursts; i++ {
		p.Burst(int(next()%uint64(nv)), at(), int(2048+next()%6144))
	}
	return p
}

// InstallFaults arms every event of the plan on its vproc's timer queue.
// Call before Run (or from workload setup code at virtual time zero);
// events whose deadline lies beyond the run's natural makespan are inert —
// fault timers do not count as outstanding work, so the runtime quiesces
// normally and unfired events are simply never popped.
func (rt *Runtime) InstallFaults(p *FaultPlan) {
	// crashTargets: every vproc crashed by any event of the plan — a vproc
	// may crash at most once (reject, not last-wins).
	crashTargets := make(map[int]bool)
	for i := range p.Events {
		e := &p.Events[i]
		if e.At < 0 {
			panic(fmt.Sprintf("core: fault event %d at negative instant %d", i, e.At))
		}
		if e.Kind == FaultCrash {
			rt.installCrash(i, e, crashTargets)
			continue
		}
		if e.VProc < 0 || e.VProc >= len(rt.VProcs) {
			panic(fmt.Sprintf("core: fault event %d targets vproc %d of %d", i, e.VProc, len(rt.VProcs)))
		}
		if e.Kind == FaultClose && e.Ch == nil {
			panic(fmt.Sprintf("core: fault event %d closes a nil channel", i))
		}
		if e.Kind == FaultSqueeze && e.Budget < 0 {
			panic(fmt.Sprintf("core: fault event %d squeezes to negative budget %d", i, e.Budget))
		}
		rt.VProcs[e.VProc].timers.Add(e.At, e)
	}
}

// installCrash validates one FaultCrash event eagerly (reject, not clamp)
// and arms one per-vproc crash event for every vproc in its failure domain.
// Node/board targets are resolved against the machine here — the only place
// the plan meets a topology.
func (rt *Runtime) installCrash(i int, e *FaultEvent, crashTargets map[int]bool) {
	topo := rt.Cfg.Topo
	var targets []int
	switch {
	case e.VProc >= 0:
		if e.Node >= 0 || e.Board >= 0 {
			panic(fmt.Sprintf("core: crash event %d names both a vproc and a node/board", i))
		}
		if e.VProc >= len(rt.VProcs) {
			panic(fmt.Sprintf("core: crash event %d targets vproc %d of %d", i, e.VProc, len(rt.VProcs)))
		}
		targets = []int{e.VProc}
	case e.Node >= 0:
		if e.Board >= 0 {
			panic(fmt.Sprintf("core: crash event %d names both a node and a board", i))
		}
		if e.Node >= topo.NumNodes() {
			panic(fmt.Sprintf("core: crash event %d targets node %d of %d", i, e.Node, topo.NumNodes()))
		}
		for _, vp := range rt.VProcs {
			if vp.Node == e.Node {
				targets = append(targets, vp.ID)
			}
		}
		if len(targets) == 0 {
			panic(fmt.Sprintf("core: crash event %d targets node %d, which hosts no vproc", i, e.Node))
		}
	case e.Board >= 0:
		if e.Board >= topo.Boards() {
			panic(fmt.Sprintf("core: crash event %d targets board %d of %d", i, e.Board, topo.Boards()))
		}
		for _, vp := range rt.VProcs {
			if topo.BoardOfNode(vp.Node) == e.Board {
				targets = append(targets, vp.ID)
			}
		}
		if len(targets) == 0 {
			panic(fmt.Sprintf("core: crash event %d targets board %d, which hosts no vproc", i, e.Board))
		}
	default:
		panic(fmt.Sprintf("core: crash event %d names no target (vproc, node, and board all < 0)", i))
	}
	for _, id := range targets {
		if crashTargets[id] {
			panic(fmt.Sprintf("core: crash event %d crashes vproc %d twice", i, id))
		}
		crashTargets[id] = true
		// A fresh per-vproc event: the plan's event is a template for the
		// whole failure domain and may be reused across runs.
		rt.VProcs[id].timers.Add(e.At, &FaultEvent{At: e.At, VProc: id, Kind: FaultCrash, Node: -1, Board: -1})
	}
}

// runPendingFaults drains the deferred fault events in FIFO order on the
// vproc's own goroutine. The inFault guard stops re-entry: a stall's
// SleepFor services checkPreempt, which would otherwise start draining the
// remaining events recursively (and a burst's allocations reach safepoints
// whose timer pops can append more).
func (vp *VProc) runPendingFaults() {
	if vp.inFault {
		return
	}
	vp.inFault = true
	for len(vp.pendingFaults) != 0 {
		e := vp.pendingFaults[0]
		vp.pendingFaults = vp.pendingFaults[1:]
		vp.Stats.FaultsInjected++
		switch e.Kind {
		case FaultStall:
			vp.Stats.FaultStallNs += e.StallNs
			vp.SleepFor(e.StallNs)
		case FaultBurst:
			vp.faultBurst(e.Words)
		case FaultClose:
			e.Ch.Close()
		case FaultSqueeze:
			vp.rt.Chunks.BudgetChunks = e.Budget
			// The budget changed under the fail-fast state; re-arm the
			// ladder so the next gate re-evaluates from scratch.
			vp.rt.ladderFailed = false
		case FaultCrash:
			// crash never returns: it unwinds this vproc's whole stack with
			// the vprocCrashed sentinel (recovered in Runtime.Run). Any
			// events still queued behind it die with the vproc.
			vp.crash()
		default:
			panic(fmt.Sprintf("core: unknown fault kind %d", e.Kind))
		}
	}
	vp.inFault = false
}

// faultBurst allocates words of short-lived data in 64-word objects and
// promotes each, pressuring the nursery (minor collections), the global
// chunk pool, and — through the allocated-words trigger — the global
// collector, exactly like a mutator's worst-case allocation spike.
func (vp *VProc) faultBurst(words int) {
	const objWords = 64
	for words > 0 {
		n := objWords
		if words < n {
			n = words
		}
		words -= n
		s := vp.PushRoot(vp.AllocRawN(n))
		vp.Promote(vp.Root(s))
		vp.PopRoots(1)
		vp.Stats.FaultBurstWords += int64(n)
	}
}
