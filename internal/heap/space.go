package heap

import (
	"fmt"

	"repro/internal/mempage"
)

// Addr is a simulated heap address: it points at the first payload word of
// an object; the header word sits immediately below it. Addr 0 is nil.
//
// Encoding: bits 63..36 hold regionID+1, bits 35..0 hold the word index
// within the region. The +1 keeps address 0 invalid.
type Addr uint64

const (
	addrRegionShift = 36
	addrWordMask    = (1 << addrRegionShift) - 1
)

// MakeAddr builds an address from a region ID and word index.
func MakeAddr(region int, word int) Addr {
	return Addr(uint64(region+1)<<addrRegionShift | uint64(word))
}

// RegionID extracts the region ID.
func (a Addr) RegionID() int { return int(uint64(a)>>addrRegionShift) - 1 }

// Word extracts the word index within the region.
func (a Addr) Word() int { return int(uint64(a) & addrWordMask) }

// String formats the address for diagnostics.
func (a Addr) String() string {
	if a == 0 {
		return "nil"
	}
	return fmt.Sprintf("r%d+%d", a.RegionID(), a.Word())
}

// RegionKind classifies heap regions.
type RegionKind int

const (
	// RegionLocal backs one vproc's local heap.
	RegionLocal RegionKind = iota
	// RegionChunk backs one global-heap chunk.
	RegionChunk
)

// Region is a contiguous run of heap words backed by simulated physical
// pages. Word 0 of every region is kept unused so that no object payload
// starts at index 0 and every object's header index is valid.
type Region struct {
	ID       int
	Kind     RegionKind
	Owner    int // owning vproc for RegionLocal, allocating vproc for chunks
	Words    []uint64
	BasePage int

	// HomeNode caches the common NUMA node of every backing page, or -1
	// when the pages span nodes (possible only under interleaved
	// placement). Page homes are fixed at region creation, so NodeOf can
	// skip the page-table lookup for homogeneous regions.
	HomeNode int
}

// Space is the registry of all heap regions plus the simulated page table.
type Space struct {
	Pages   *mempage.Table
	regions []*Region
}

// NewSpace creates an empty heap address space over the given page table.
func NewSpace(pages *mempage.Table) *Space {
	return &Space{Pages: pages}
}

// NewRegion allocates a region of the given size in words, with backing
// pages placed by the page-table policy on behalf of reqNode.
func (s *Space) NewRegion(kind RegionKind, owner, words, reqNode int) *Region {
	if words <= 1 {
		panic("heap: region too small")
	}
	r := &Region{
		ID:       len(s.regions),
		Kind:     kind,
		Owner:    owner,
		Words:    make([]uint64, words),
		BasePage: s.Pages.Alloc(mempage.PagesFor(words), reqNode),
	}
	r.HomeNode = s.Pages.HomeOfRange(r.BasePage, mempage.PagesFor(words))
	s.regions = append(s.regions, r)
	return r
}

// Region returns the region with the given ID.
func (s *Space) Region(id int) *Region { return s.regions[id] }

// NumRegions returns the number of regions ever created.
func (s *Space) NumRegions() int { return len(s.regions) }

// RegionOf returns the region containing the address.
func (s *Space) RegionOf(a Addr) *Region {
	id := a.RegionID()
	if id < 0 || id >= len(s.regions) {
		panic(fmt.Sprintf("heap: address %v in unknown region", a))
	}
	return s.regions[id]
}

// NodeOf returns the home NUMA node of the page backing the address.
func (s *Space) NodeOf(a Addr) int {
	r := s.RegionOf(a)
	if r.HomeNode >= 0 {
		return r.HomeNode
	}
	return s.Pages.NodeOfWord(r.BasePage, a.Word())
}

// Load reads the word at the address. This is the raw accessor; cost
// accounting happens in the runtime layer.
func (s *Space) Load(a Addr) uint64 {
	return s.RegionOf(a).Words[a.Word()]
}

// Store writes the word at the address.
func (s *Space) Store(a Addr, w uint64) {
	s.RegionOf(a).Words[a.Word()] = w
}

// Header returns the header (or forwarding) word of the object at a.
func (s *Space) Header(a Addr) uint64 {
	return s.RegionOf(a).Words[a.Word()-1]
}

// SetHeader overwrites the header word of the object at a (used to install
// forwarding pointers).
func (s *Space) SetHeader(a Addr, w uint64) {
	s.RegionOf(a).Words[a.Word()-1] = w
}

// ObjectLen returns the payload length in words of the object at a,
// following a forwarding pointer if present. Forwarding is one-hop by
// construction — a collector only forwards to a freshly copied object, whose
// header word is a real header — so a chain is heap corruption, not a case
// to recurse through.
func (s *Space) ObjectLen(a Addr) int {
	h := s.Header(a)
	if !IsHeader(h) {
		h = s.Header(ForwardTarget(h))
		if !IsHeader(h) {
			panic(fmt.Sprintf("heap: forwarding chain at %v (target %v is itself forwarded)", a, ForwardTarget(s.Header(a))))
		}
	}
	return HeaderLen(h)
}

// Payload returns the object's payload words as a slice aliasing the region
// storage.
func (s *Space) Payload(a Addr) []uint64 {
	r := s.RegionOf(a)
	w := a.Word()
	h := r.Words[w-1]
	if !IsHeader(h) {
		panic(fmt.Sprintf("heap: Payload of forwarded object %v", a))
	}
	return r.Words[w : w+HeaderLen(h)]
}
