package heap

import (
	"testing"

	"repro/internal/mempage"
)

func newTestHeap(t *testing.T, words int) *LocalHeap {
	t.Helper()
	pages := mempage.NewTable(mempage.PolicyLocal, 2)
	s := NewSpace(pages)
	r := s.NewRegion(RegionLocal, 0, words, 0)
	return NewLocalHeap(r)
}

func TestLocalHeapInitialSplit(t *testing.T) {
	h := newTestHeap(t, 4096)
	if err := h.CheckLayout(); err != nil {
		t.Fatal(err)
	}
	// Empty heap: nursery should be (roughly) the upper half.
	if h.OldTop != 1 || h.YoungStart != 1 {
		t.Fatalf("fresh heap OldTop=%d YoungStart=%d, want 1,1", h.OldTop, h.YoungStart)
	}
	if n := h.NurseryWords(); n < 2040 || n > 2048 {
		t.Fatalf("nursery = %d words, want about half of 4096", n)
	}
}

func TestLocalHeapReserveAbsorbsFullNursery(t *testing.T) {
	// The reserve below the nursery must be able to hold a 100%-live
	// nursery (the minor-GC worst case), for any heap size and OldTop.
	for size := 64; size <= 1024; size += 7 {
		pages := mempage.NewTable(mempage.PolicyLocal, 1)
		s := NewSpace(pages)
		r := s.NewRegion(RegionLocal, 0, size, 0)
		h := NewLocalHeap(r)
		for oldTop := 1; oldTop < size-4; oldTop += 3 {
			h.OldTop = oldTop
			h.YoungStart = oldTop
			h.ResetNursery()
			reserve := h.NurseryStart - h.OldTop
			nursery := h.NurseryWords()
			if reserve < nursery {
				t.Fatalf("size=%d oldTop=%d: reserve %d < nursery %d", size, oldTop, reserve, nursery)
			}
		}
	}
}

func TestBumpAllocation(t *testing.T) {
	h := newTestHeap(t, 4096)
	a := h.Bump(MakeHeader(IDRaw, 3))
	if a.Word() != h.NurseryStart+1 {
		t.Fatalf("first object at word %d, want %d", a.Word(), h.NurseryStart+1)
	}
	b := h.Bump(MakeHeader(IDRaw, 2))
	if b.Word() != a.Word()+4 {
		t.Fatalf("second object at %d, want %d", b.Word(), a.Word()+4)
	}
	if !h.InNursery(a) || !h.InNursery(b) {
		t.Fatal("allocated objects should be in the nursery")
	}
	if h.InOld(a) {
		t.Fatal("nursery object reported in old area")
	}
}

func TestZeroLimitSignal(t *testing.T) {
	h := newTestHeap(t, 4096)
	if h.LimitZeroed() {
		t.Fatal("fresh heap should not be signalled")
	}
	h.ZeroLimit()
	if !h.LimitZeroed() {
		t.Fatal("ZeroLimit did not take")
	}
	if h.CanAlloc(1) {
		t.Fatal("allocation must fail while the limit is zeroed")
	}
	h.RestoreLimit()
	if h.LimitZeroed() || !h.CanAlloc(1) {
		t.Fatal("RestoreLimit did not restore")
	}
}

func TestCanAllocBoundary(t *testing.T) {
	h := newTestHeap(t, 4096)
	free := h.FreeNurseryWords()
	if !h.CanAlloc(free - 1) {
		t.Fatalf("object of %d payload words (plus header) should fit in %d free", free-1, free)
	}
	if h.CanAlloc(free) {
		t.Fatalf("object of %d payload words (plus header) must not fit in %d free", free, free)
	}
}
