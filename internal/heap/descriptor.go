package heap

import "fmt"

// Descriptor describes one mixed-type object layout. In Manticore the
// compiler emits, for every mixed-type object, an entry in an
// object-descriptor table containing pointers to object-scanning and
// forwarding functions specialized to that object's structure (§3.2). We
// mirror that: Register generates a scan closure from the pointer-field
// offsets once, so scanning an object at collection time touches only its
// pointer fields with no per-field type dispatch.
type Descriptor struct {
	Name string
	// SizeWords is the fixed payload size of objects with this
	// descriptor.
	SizeWords int
	// PtrFields lists the payload word offsets that contain pointers.
	PtrFields []int

	scan ScanFunc
}

// ScanFunc visits every pointer slot of a payload. visit receives the slot
// offset and may return a replacement pointer, which the scanner writes
// back; this is exactly the shape a copying collector's forward function
// needs.
type ScanFunc func(payload []uint64, visit func(slot int, ptr Addr) Addr)

// Table is the object-descriptor table generated "by the compiler" — in
// this reproduction, by workload setup code registering its record layouts.
type Table struct {
	descs []*Descriptor // index 0 corresponds to IDFirstMixed
}

// NewTable creates an empty descriptor table.
func NewTable() *Table { return &Table{} }

// Register adds a descriptor and returns its object ID. The scan function
// is generated here, once, from the pointer offsets.
func (t *Table) Register(name string, sizeWords int, ptrFields []int) uint16 {
	if sizeWords < 0 {
		panic("heap: negative descriptor size")
	}
	for _, f := range ptrFields {
		if f < 0 || f >= sizeWords {
			panic(fmt.Sprintf("heap: descriptor %q pointer field %d out of range [0,%d)", name, f, sizeWords))
		}
	}
	d := &Descriptor{Name: name, SizeWords: sizeWords, PtrFields: append([]int(nil), ptrFields...)}
	// The "compiled" scanning function: a closure over the fixed offsets.
	offs := d.PtrFields
	d.scan = func(payload []uint64, visit func(slot int, ptr Addr) Addr) {
		for _, i := range offs {
			p := Addr(payload[i])
			np := visit(i, p)
			if np != p {
				payload[i] = uint64(np)
			}
		}
	}
	t.descs = append(t.descs, d)
	id := uint16(len(t.descs)-1) + IDFirstMixed
	if uint64(id) > idMask {
		panic("heap: descriptor table overflow")
	}
	return id
}

// Lookup returns the descriptor for a mixed object ID.
func (t *Table) Lookup(id uint16) *Descriptor {
	if id < IDFirstMixed || int(id-IDFirstMixed) >= len(t.descs) {
		panic(fmt.Sprintf("heap: no descriptor for ID %d", id))
	}
	return t.descs[id-IDFirstMixed]
}

// Len returns the number of registered descriptors.
func (t *Table) Len() int { return len(t.descs) }

// Proxy payload layout (ID IDProxy). A proxy is a global-heap object that
// stands for a local-heap object, allowing references from the global heap
// back into a local heap (§3.1 footnote 1); used by the explicit-concurrency
// (CML) constructs.
const (
	// ProxyOwnerSlot holds the owning vproc's ID (raw).
	ProxyOwnerSlot = 0
	// ProxyLocalSlot holds the local-heap address (a pointer into the
	// owner's local heap; never traced by the global collector).
	ProxyLocalSlot = 1
	// ProxyGlobalSlot holds the promoted global copy once the proxied
	// object has been promoted, or nil. Traced by the global collector.
	ProxyGlobalSlot = 2
	// ProxySizeWords is the proxy payload size.
	ProxySizeWords = 3
)

// ScanObject visits the pointer slots of the object at a, dispatching on
// the header ID: raw objects have none, vector objects are all pointers,
// proxies expose only their global slot, and mixed objects use their
// generated descriptor scan function. The paper notes the collector handles
// raw and vector objects directly to avoid the table lookup; we follow the
// same structure.
func ScanObject(s *Space, t *Table, a Addr, visit func(slot int, ptr Addr) Addr) {
	h := s.Header(a)
	if !IsHeader(h) {
		panic(fmt.Sprintf("heap: ScanObject of forwarded object %v", a))
	}
	id := HeaderID(h)
	switch id {
	case IDRaw:
		// No pointers.
	case IDVector:
		payload := s.Payload(a)
		for i, w := range payload {
			p := Addr(w)
			np := visit(i, p)
			if np != p {
				payload[i] = uint64(np)
			}
		}
	case IDProxy:
		payload := s.Payload(a)
		p := Addr(payload[ProxyGlobalSlot])
		np := visit(ProxyGlobalSlot, p)
		if np != p {
			payload[ProxyGlobalSlot] = uint64(np)
		}
	default:
		t.Lookup(id).scan(s.Payload(a), visit)
	}
}
