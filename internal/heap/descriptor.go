package heap

import "fmt"

// Descriptor describes one mixed-type object layout. In Manticore the
// compiler emits, for every mixed-type object, an entry in an
// object-descriptor table containing pointers to object-scanning and
// forwarding functions specialized to that object's structure (§3.2). We
// mirror that: Register generates a scan closure from the pointer-field
// offsets once, so scanning an object at collection time touches only its
// pointer fields with no per-field type dispatch.
type Descriptor struct {
	Name string
	// SizeWords is the fixed payload size of objects with this
	// descriptor.
	SizeWords int
	// PtrFields lists the payload word offsets that contain pointers.
	PtrFields []int
}

// Table is the object-descriptor table generated "by the compiler" — in
// this reproduction, by workload setup code registering its record layouts.
type Table struct {
	descs []*Descriptor // index 0 corresponds to IDFirstMixed
}

// NewTable creates an empty descriptor table.
func NewTable() *Table { return &Table{} }

// Register adds a descriptor and returns its object ID. The scan function
// is generated here, once, from the pointer offsets.
func (t *Table) Register(name string, sizeWords int, ptrFields []int) uint16 {
	if sizeWords < 0 {
		panic("heap: negative descriptor size")
	}
	for _, f := range ptrFields {
		if f < 0 || f >= sizeWords {
			panic(fmt.Sprintf("heap: descriptor %q pointer field %d out of range [0,%d)", name, f, sizeWords))
		}
	}
	d := &Descriptor{Name: name, SizeWords: sizeWords, PtrFields: append([]int(nil), ptrFields...)}
	t.descs = append(t.descs, d)
	id := uint16(len(t.descs)-1) + IDFirstMixed
	if uint64(id) > idMask {
		panic("heap: descriptor table overflow")
	}
	return id
}

// Lookup returns the descriptor for a mixed object ID.
func (t *Table) Lookup(id uint16) *Descriptor {
	if id < IDFirstMixed || int(id-IDFirstMixed) >= len(t.descs) {
		panic(fmt.Sprintf("heap: no descriptor for ID %d", id))
	}
	return t.descs[id-IDFirstMixed]
}

// Len returns the number of registered descriptors.
func (t *Table) Len() int { return len(t.descs) }

// Proxy payload layout (ID IDProxy). A proxy is a global-heap object that
// stands for a local-heap object, allowing references from the global heap
// back into a local heap (§3.1 footnote 1); used by the explicit-concurrency
// (CML) constructs.
const (
	// ProxyOwnerSlot holds the owning vproc's ID (raw).
	ProxyOwnerSlot = 0
	// ProxyLocalSlot holds the local-heap address (a pointer into the
	// owner's local heap; never traced by the global collector).
	ProxyLocalSlot = 1
	// ProxyGlobalSlot holds the promoted global copy once the proxied
	// object has been promoted, or nil. Traced by the global collector.
	ProxyGlobalSlot = 2
	// ProxySizeWords is the proxy payload size.
	ProxySizeWords = 3
)

// proxyPtrOffsets is the fixed pointer layout of proxy objects.
var proxyPtrOffsets = []int{ProxyGlobalSlot}

// PtrLayout returns the pointer-slot layout of an object with header h:
// offs lists the payload offsets holding pointers, unless all is true, in
// which case every payload word is a pointer (vector objects) and offs is
// nil. It is the iterator-friendly complement of ScanObject: a resumable
// scanner (the step-driven collector) walks the offsets itself so it can
// suspend between slots, where ScanObject's callback could not.
func PtrLayout(t *Table, h uint64) (offs []int, all bool) {
	switch id := HeaderID(h); id {
	case IDRaw:
		return nil, false
	case IDVector:
		return nil, true
	case IDProxy:
		return proxyPtrOffsets, false
	default:
		return t.Lookup(id).PtrFields, false
	}
}

// ScanObject visits the pointer slots of the object at a. The layout comes
// from PtrLayout — the single source of truth shared with the resumable
// scanners — so the callback-driven and step-driven collectors can never
// scan different slots. visit may return a replacement pointer, which is
// written back; this is exactly the shape a copying collector's forward
// function needs.
func ScanObject(s *Space, t *Table, a Addr, visit func(slot int, ptr Addr) Addr) {
	h := s.Header(a)
	if !IsHeader(h) {
		panic(fmt.Sprintf("heap: ScanObject of forwarded object %v", a))
	}
	offs, all := PtrLayout(t, h)
	if !all && len(offs) == 0 {
		return // raw object: no pointers
	}
	payload := s.Payload(a)
	if all {
		for i, w := range payload {
			p := Addr(w)
			if np := visit(i, p); np != p {
				payload[i] = uint64(np)
			}
		}
		return
	}
	for _, i := range offs {
		p := Addr(payload[i])
		if np := visit(i, p); np != p {
			payload[i] = uint64(np)
		}
	}
}
