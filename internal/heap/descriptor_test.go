package heap

import (
	"testing"

	"repro/internal/mempage"
)

func newTestSpace() *Space {
	return NewSpace(mempage.NewTable(mempage.PolicyLocal, 2))
}

func TestDescriptorRegisterAndScan(t *testing.T) {
	tab := NewTable()
	id := tab.Register("pair", 4, []int{1, 3})
	if id != IDFirstMixed {
		t.Fatalf("first descriptor ID = %d, want %d", id, IDFirstMixed)
	}
	d := tab.Lookup(id)
	if d.Name != "pair" || d.SizeWords != 4 {
		t.Fatalf("descriptor mangled: %+v", d)
	}

	s := newTestSpace()
	r := s.NewRegion(RegionLocal, 0, 256, 0)
	lh := NewLocalHeap(r)
	obj := lh.Bump(MakeHeader(id, 4))
	p := s.Payload(obj)
	p[0] = 0xDEAD // raw
	p[1] = uint64(MakeAddr(r.ID, 5))
	p[2] = 0xBEEF // raw
	p[3] = uint64(MakeAddr(r.ID, 9))

	var visited []int
	ScanObject(s, tab, obj, func(slot int, ptr Addr) Addr {
		visited = append(visited, slot)
		return ptr
	})
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 3 {
		t.Errorf("scan visited slots %v, want [1 3]", visited)
	}
	// Raw fields untouched.
	if p[0] != 0xDEAD || p[2] != 0xBEEF {
		t.Error("scan modified raw fields")
	}
}

func TestDescriptorScanRewrites(t *testing.T) {
	tab := NewTable()
	id := tab.Register("one-ptr", 1, []int{0})
	s := newTestSpace()
	r := s.NewRegion(RegionLocal, 0, 128, 0)
	lh := NewLocalHeap(r)
	obj := lh.Bump(MakeHeader(id, 1))
	old := MakeAddr(r.ID, 3)
	nu := MakeAddr(r.ID, 7)
	s.Payload(obj)[0] = uint64(old)
	ScanObject(s, tab, obj, func(_ int, ptr Addr) Addr {
		if ptr == old {
			return nu
		}
		return ptr
	})
	if Addr(s.Payload(obj)[0]) != nu {
		t.Error("scan did not write back the forwarded pointer")
	}
}

func TestVectorScanVisitsEverySlot(t *testing.T) {
	tab := NewTable()
	s := newTestSpace()
	r := s.NewRegion(RegionLocal, 0, 128, 0)
	lh := NewLocalHeap(r)
	obj := lh.Bump(MakeHeader(IDVector, 5))
	var n int
	ScanObject(s, tab, obj, func(slot int, ptr Addr) Addr {
		if slot != n {
			t.Errorf("slot order: got %d want %d", slot, n)
		}
		n++
		return ptr
	})
	if n != 5 {
		t.Errorf("vector scan visited %d slots, want 5", n)
	}
}

func TestRawScanVisitsNothing(t *testing.T) {
	tab := NewTable()
	s := newTestSpace()
	r := s.NewRegion(RegionLocal, 0, 128, 0)
	lh := NewLocalHeap(r)
	obj := lh.Bump(MakeHeader(IDRaw, 6))
	ScanObject(s, tab, obj, func(slot int, ptr Addr) Addr {
		t.Errorf("raw object scanned slot %d", slot)
		return ptr
	})
}

func TestProxyScanVisitsOnlyGlobalSlot(t *testing.T) {
	tab := NewTable()
	s := newTestSpace()
	r := s.NewRegion(RegionChunk, 0, 128, 0)
	c := &Chunk{Region: r, Top: 1, Scan: 1}
	obj := c.Bump(MakeHeader(IDProxy, ProxySizeWords))
	p := s.Payload(obj)
	p[ProxyOwnerSlot] = 3
	p[ProxyLocalSlot] = uint64(MakeAddr(0, 9)) // local ref: must not be traced
	p[ProxyGlobalSlot] = 0
	var slots []int
	ScanObject(s, tab, obj, func(slot int, ptr Addr) Addr {
		slots = append(slots, slot)
		return ptr
	})
	if len(slots) != 1 || slots[0] != ProxyGlobalSlot {
		t.Errorf("proxy scan visited %v, want only slot %d", slots, ProxyGlobalSlot)
	}
}

func TestDescriptorValidation(t *testing.T) {
	tab := NewTable()
	for _, c := range []struct {
		name string
		size int
		ptrs []int
	}{
		{"neg size", -1, nil},
		{"field out of range", 2, []int{2}},
		{"negative field", 2, []int{-1}},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tab.Register(c.name, c.size, c.ptrs)
		})
	}
}

func TestLookupUnknownIDPanics(t *testing.T) {
	tab := NewTable()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown descriptor")
		}
	}()
	tab.Lookup(IDFirstMixed)
}
