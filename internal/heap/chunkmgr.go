package heap

// SyncClass describes the synchronization a chunk operation required, so
// the runtime can charge an appropriate cost (§3.3: "This synchronization
// is either node-local because it involves the reuse of a chunk of memory
// or global if a new chunk needs to be requested from the system and
// registered with the runtime").
type SyncClass int

const (
	// SyncNodeLocal is a node-local free-list pop.
	SyncNodeLocal SyncClass = iota
	// SyncGlobal is a fresh system allocation plus runtime registration.
	SyncGlobal
)

// ChunkManager owns the global heap's chunks: per-node free lists with
// node-affine reuse, the set of active (data-bearing) chunks, and the
// bookkeeping behind the global-GC trigger.
type ChunkManager struct {
	Space      *Space
	ChunkWords int
	// NodeAffine preserves node affinity on reuse (§3.1). Disabling it
	// is an ablation: reuse then takes any free chunk regardless of
	// node.
	NodeAffine bool
	// Debug enables internal consistency assertions (double-free,
	// double-activation); set by the runtime's Debug mode.
	Debug bool

	// BudgetChunks caps the number of simultaneously active chunks in
	// the global heap; 0 means unbounded (the paper's model, and the
	// behavior every existing baseline was recorded under). The budget
	// is advisory at this layer: Get never fails, it only reports the
	// overdraft, so collections — which must be able to copy survivors
	// — always complete. Enforcement happens at mutator allocation
	// gates in internal/core, which consult HasHeadroom before
	// committing new work to the heap.
	BudgetChunks int
	// VProcBudget caps the active chunks owned by any single vproc (a
	// per-vproc share of the global heap, since local heaps themselves
	// are fixed-size and cannot grow); 0 means unbounded.
	VProcBudget int

	freeByNode [][]*Chunk
	active     []*Chunk
	// ownedActive[v] counts active chunks owned by vproc v; maintained
	// only so HasHeadroom can enforce VProcBudget. Reset wholesale by
	// TakeActive and rebuilt by activate/Reactivate.
	ownedActive []int
	// byRegion maps region ID → chunk, dense: region IDs are assigned
	// sequentially by the Space, so a slice indexed by ID (nil for
	// non-chunk regions) replaces the map the global collector's
	// forwarding fast path would otherwise hash into for every pointer.
	byRegion []*Chunk

	// AllocatedWords counts words in active chunks; the global collection
	// trigger compares this against a threshold (§3.4: "the number of
	// vprocs times 32MB" in the paper, scaled in this reproduction).
	AllocatedWords int

	// Stats.
	Created  int
	Reused   int
	Released int
	// Overdrafts counts activations that pushed the active set past
	// BudgetChunks — chunks handed to collectors (which may not fail
	// mid-copy) after the mutator-visible budget was exhausted.
	Overdrafts int
}

// NewChunkManager creates a manager producing chunks of chunkWords words.
func NewChunkManager(s *Space, chunkWords, numNodes int) *ChunkManager {
	if chunkWords < 64 {
		panic("heap: chunk size too small")
	}
	return &ChunkManager{
		Space:      s,
		ChunkWords: chunkWords,
		NodeAffine: true,
		freeByNode: make([][]*Chunk, numNodes),
	}
}

// Get hands out a chunk for the vproc on reqNode, reusing a node-local free
// chunk when possible. It returns the chunk and the synchronization class
// the operation required.
func (m *ChunkManager) Get(reqNode, owner int) (*Chunk, SyncClass) {
	if fl := m.freeByNode[reqNode]; len(fl) > 0 {
		c := fl[len(fl)-1]
		m.freeByNode[reqNode] = fl[:len(fl)-1]
		c.reset(owner)
		m.activate(c)
		m.Reused++
		return c, SyncNodeLocal
	}
	if !m.NodeAffine || (m.BudgetChunks > 0 && len(m.active) >= m.BudgetChunks) {
		// Take any free chunk, ignoring node affinity. Two callers land
		// here: the NodeAffine ablation, and a bounded heap at/over its
		// budget — where reusing a remote free chunk (paying remote
		// traffic) beats growing the footprint past the budget.
		for n := range m.freeByNode {
			if fl := m.freeByNode[n]; len(fl) > 0 {
				c := fl[len(fl)-1]
				m.freeByNode[n] = fl[:len(fl)-1]
				c.reset(owner)
				m.activate(c)
				m.Reused++
				return c, SyncNodeLocal
			}
		}
	}
	// Fresh allocation: pages placed by the policy on behalf of reqNode.
	r := m.Space.NewRegion(RegionChunk, owner, m.ChunkWords, reqNode)
	c := &Chunk{Region: r, Top: 1, Scan: 1, Owner: owner}
	// The chunk's home node is where its first page actually landed
	// (under interleaved placement this differs from reqNode).
	c.Node = m.Space.Pages.NodeOfWord(r.BasePage, 0)
	for len(m.byRegion) <= r.ID {
		m.byRegion = append(m.byRegion, nil)
	}
	m.byRegion[r.ID] = c
	m.activate(c)
	m.Created++
	return c, SyncGlobal
}

// ChunkOf returns the chunk backed by the given region ID, or nil if the
// region is not a chunk region.
func (m *ChunkManager) ChunkOf(regionID int) *Chunk {
	if regionID < 0 || regionID >= len(m.byRegion) {
		return nil
	}
	return m.byRegion[regionID]
}

// activate adds a chunk to the active set and the trigger accounting.
func (m *ChunkManager) activate(c *Chunk) {
	if m.Debug {
		for _, q := range m.active {
			if q == c {
				panic("heap: chunk double-activated")
			}
		}
	}
	m.active = append(m.active, c)
	m.AllocatedWords += m.ChunkWords
	if c.Owner >= 0 {
		for len(m.ownedActive) <= c.Owner {
			m.ownedActive = append(m.ownedActive, 0)
		}
		m.ownedActive[c.Owner]++
	}
	if m.BudgetChunks > 0 && len(m.active) > m.BudgetChunks {
		m.Overdrafts++
	}
}

// HasHeadroom reports whether vproc `owner` may commit another chunk's
// worth of data to the global heap without exceeding either the global
// budget or its own per-vproc share. With both budgets at zero it is
// always true. This is the mutator-side gate: collections bypass it
// (they overdraft via Get, which never fails).
func (m *ChunkManager) HasHeadroom(owner int) bool {
	if m.BudgetChunks > 0 && len(m.active) >= m.BudgetChunks {
		return false
	}
	if m.VProcBudget > 0 && owner >= 0 && owner < len(m.ownedActive) &&
		m.ownedActive[owner] >= m.VProcBudget {
		return false
	}
	return true
}

// ActiveChunks returns the number of active (data-bearing) chunks — the
// numerator of the occupancy signal when BudgetChunks > 0.
func (m *ChunkManager) ActiveChunks() int { return len(m.active) }

// OwnedActive returns the number of active chunks owned by vproc v.
func (m *ChunkManager) OwnedActive(v int) int {
	if v < 0 || v >= len(m.ownedActive) {
		return 0
	}
	return m.ownedActive[v]
}

// Release returns a chunk to its node's free list. It is called on
// from-space chunks after a global collection, whose words were already
// removed from the trigger accounting by TakeActive.
func (m *ChunkManager) Release(c *Chunk) {
	if m.Debug {
		for _, fl := range m.freeByNode {
			for _, q := range fl {
				if q == c {
					panic("heap: chunk double-freed")
				}
			}
		}
	}
	m.freeByNode[c.Node] = append(m.freeByNode[c.Node], c)
	m.Released++
}

// Active returns the active chunk list (shared slice; callers must not
// mutate).
func (m *ChunkManager) Active() []*Chunk { return m.active }

// TakeActive removes and returns all active chunks, used by the global
// collector to form the from-space set.
func (m *ChunkManager) TakeActive() []*Chunk {
	a := m.active
	m.active = nil
	m.AllocatedWords = 0
	for i := range m.ownedActive {
		m.ownedActive[i] = 0
	}
	return a
}

// Reactivate puts surviving to-space chunks back into the active set.
func (m *ChunkManager) Reactivate(cs []*Chunk) {
	for _, c := range cs {
		m.activate(c)
	}
}

// FreeCount returns the number of free chunks per node.
func (m *ChunkManager) FreeCount() []int {
	out := make([]int, len(m.freeByNode))
	for i, fl := range m.freeByNode {
		out[i] = len(fl)
	}
	return out
}
