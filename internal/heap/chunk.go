package heap

import "fmt"

// Chunk is one allocation unit of the global heap (§3.1): "The global heap
// is organized into a collection of chunks. Each vproc has a current chunk
// that it uses when it needs to allocate in or promote an object to the
// global heap."
type Chunk struct {
	Region *Region
	// Top is the bump pointer (next free word index). Word 0 is unused.
	Top int
	// Node is the NUMA node this chunk's memory lives on; the chunk
	// manager preserves node affinity when reusing chunks.
	Node int
	// Owner is the vproc currently allocating into the chunk, or -1.
	Owner int
	// FromSpace marks the chunk as condemned during a global collection.
	FromSpace bool
	// Scan is the Cheney scan pointer used while the chunk is in
	// to-space during a global collection.
	Scan int
}

// CapWords returns the chunk capacity in words.
func (c *Chunk) CapWords() int { return len(c.Region.Words) }

// FreeWords returns the unallocated words.
func (c *Chunk) FreeWords() int { return len(c.Region.Words) - c.Top }

// CanAlloc reports whether a payload of the given size (plus header) fits.
func (c *Chunk) CanAlloc(payloadWords int) bool {
	return c.Top+payloadWords+1 <= len(c.Region.Words)
}

// Bump allocates an object with the given header and returns its address.
func (c *Chunk) Bump(header uint64) Addr {
	n := HeaderLen(header)
	if !c.CanAlloc(n) {
		panic(fmt.Sprintf("heap: chunk overflow allocating %d words (top=%d cap=%d)", n, c.Top, len(c.Region.Words)))
	}
	c.Region.Words[c.Top] = header
	a := MakeAddr(c.Region.ID, c.Top+1)
	c.Top += n + 1
	return a
}

// UsedWords returns the words holding data.
func (c *Chunk) UsedWords() int { return c.Top - 1 }

// reset prepares a recycled chunk for reuse.
func (c *Chunk) reset(owner int) {
	c.Top = 1
	c.Owner = owner
	c.FromSpace = false
	c.Scan = 1
	// Zero the words so stale pointers cannot leak across reuse. The
	// cost of this is charged by the runtime layer.
	words := c.Region.Words
	for i := range words {
		words[i] = 0
	}
}
