package heap

import (
	"testing"

	"repro/internal/mempage"
)

func newTestManager(policy mempage.Policy, nodes int) *ChunkManager {
	s := NewSpace(mempage.NewTable(policy, nodes))
	return NewChunkManager(s, 256, nodes)
}

func TestChunkGetFreshIsGlobalSync(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 4)
	c, sync := m.Get(2, 7)
	if sync != SyncGlobal {
		t.Errorf("fresh chunk sync = %v, want SyncGlobal", sync)
	}
	if c.Node != 2 {
		t.Errorf("fresh chunk node = %d, want 2 (local policy)", c.Node)
	}
	if c.Owner != 7 {
		t.Errorf("owner = %d, want 7", c.Owner)
	}
	if m.Created != 1 || m.Reused != 0 {
		t.Errorf("counters: created=%d reused=%d", m.Created, m.Reused)
	}
}

func TestChunkNodeAffineReuse(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 4)
	c, _ := m.Get(1, 0)
	m.TakeActive()
	m.Release(c)

	// Same node: reuse, node-local sync.
	r, sync := m.Get(1, 5)
	if r != c || sync != SyncNodeLocal {
		t.Errorf("same-node Get: reused=%v sync=%v", r == c, sync)
	}
	m.TakeActive()
	m.Release(r)

	// Different node with affinity on: a fresh chunk, not node 1's.
	o, sync2 := m.Get(3, 5)
	if o == c || sync2 != SyncGlobal {
		t.Error("node-affine manager reused a remote chunk")
	}
}

func TestChunkAffinityAblation(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 4)
	m.NodeAffine = false
	c, _ := m.Get(1, 0)
	m.TakeActive()
	m.Release(c)
	// Affinity off: any free chunk is fair game.
	o, sync := m.Get(3, 5)
	if o != c || sync != SyncNodeLocal {
		t.Error("non-affine manager should reuse the remote free chunk")
	}
}

func TestChunkTriggerAccounting(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 2)
	if m.AllocatedWords != 0 {
		t.Fatal("fresh manager should have zero allocation")
	}
	m.Get(0, 0)
	m.Get(1, 1)
	if m.AllocatedWords != 2*m.ChunkWords {
		t.Errorf("AllocatedWords = %d, want %d", m.AllocatedWords, 2*m.ChunkWords)
	}
	from := m.TakeActive()
	if len(from) != 2 || m.AllocatedWords != 0 {
		t.Errorf("TakeActive: %d chunks, %d words left", len(from), m.AllocatedWords)
	}
	// Releasing from-space chunks must not go below zero.
	for _, c := range from {
		m.Release(c)
	}
	if m.AllocatedWords != 0 {
		t.Errorf("Release changed trigger accounting: %d", m.AllocatedWords)
	}
}

func TestChunkResetClearsContents(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 2)
	c, _ := m.Get(0, 0)
	a := c.Bump(MakeHeader(IDRaw, 4))
	for i := range m.Space.Payload(a) {
		m.Space.Payload(a)[i] = 0xFF
	}
	c.FromSpace = true
	c.Scan = 3
	m.TakeActive()
	m.Release(c)
	r, _ := m.Get(0, 1)
	if r != c {
		t.Fatal("expected reuse")
	}
	if r.Top != 1 || r.Scan != 1 || r.FromSpace {
		t.Errorf("reset incomplete: top=%d scan=%d from=%v", r.Top, r.Scan, r.FromSpace)
	}
	for i, w := range r.Region.Words {
		if w != 0 {
			t.Fatalf("stale word %#x at %d after reset", w, i)
		}
	}
}

func TestChunkBumpAndOverflow(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 1)
	c, _ := m.Get(0, 0)
	if !c.CanAlloc(100) {
		t.Fatal("fresh 256-word chunk should fit 100 words")
	}
	a := c.Bump(MakeHeader(IDRaw, 100))
	if a.Word() != 2 {
		t.Errorf("first object payload at word %d, want 2", a.Word())
	}
	if c.CanAlloc(200) {
		t.Error("CanAlloc(200) should fail with 100+2 used of 256")
	}
	defer func() {
		if recover() == nil {
			t.Error("Bump past capacity should panic")
		}
	}()
	c.Bump(MakeHeader(IDRaw, 200))
}

func TestChunkOfRegionLookup(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 1)
	c, _ := m.Get(0, 0)
	if m.ChunkOf(c.Region.ID) != c {
		t.Error("ChunkOf failed for chunk region")
	}
	if m.ChunkOf(99999) != nil {
		t.Error("ChunkOf should return nil for unknown region")
	}
}

func TestInterleavedChunkNodeFollowsPages(t *testing.T) {
	// Under interleaved placement the chunk's home node is wherever its
	// first page landed, not the requesting node.
	m := newTestManager(mempage.PolicyInterleaved, 4)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		c, _ := m.Get(0, 0)
		seen[c.Node] = true
	}
	if len(seen) < 2 {
		t.Errorf("interleaved chunks all landed on %v; want spread", seen)
	}
}

func TestFreeCount(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 3)
	a, _ := m.Get(0, 0)
	b, _ := m.Get(2, 0)
	m.TakeActive()
	m.Release(a)
	m.Release(b)
	fc := m.FreeCount()
	if fc[0] != 1 || fc[1] != 0 || fc[2] != 1 {
		t.Errorf("FreeCount = %v, want [1 0 1]", fc)
	}
}

// TestChunkBudgetHeadroom: the global budget flips HasHeadroom exactly at
// the budget boundary, Get keeps succeeding past it (collections must
// never fail mid-copy) while counting the overdraft, and a zero budget is
// genuinely unbounded — never an off-by-one "budget of zero chunks".
func TestChunkBudgetHeadroom(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 2)
	m.BudgetChunks = 3
	for i := 0; i < 3; i++ {
		if !m.HasHeadroom(0) {
			t.Fatalf("HasHeadroom = false at %d of 3 active", m.ActiveChunks())
		}
		m.Get(0, 0)
	}
	if m.HasHeadroom(0) {
		t.Error("HasHeadroom = true with the budget exhausted")
	}
	if m.Overdrafts != 0 {
		t.Errorf("Overdrafts = %d at exactly the budget, want 0", m.Overdrafts)
	}
	// A collector-side Get past the budget succeeds and is an overdraft.
	if c, _ := m.Get(0, 0); c == nil {
		t.Fatal("Get past the budget returned nil — Get must never fail")
	}
	if m.Overdrafts != 1 {
		t.Errorf("Overdrafts = %d after one over-budget Get, want 1", m.Overdrafts)
	}

	// Releasing and re-collecting restores headroom: take the active set
	// (a global collection forming from-space), reactivate fewer chunks.
	survivors := m.TakeActive()[:2]
	m.Reactivate(survivors)
	if !m.HasHeadroom(0) {
		t.Error("HasHeadroom = false at 2 of 3 after a collection")
	}

	m.BudgetChunks = 0
	for i := 0; i < 8; i++ {
		m.Get(0, 0)
	}
	if !m.HasHeadroom(0) {
		t.Error("unbounded manager reported no headroom")
	}
	if m.Overdrafts != 1 {
		t.Errorf("Overdrafts = %d under an unbounded budget, want the old 1", m.Overdrafts)
	}
}

// TestChunkBudgetCrossNodeReuse: at the budget, a node-affine manager
// prefers reusing a remote free chunk over growing the footprint with a
// fresh allocation; under budget, affinity wins as before.
func TestChunkBudgetCrossNodeReuse(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 4)
	m.BudgetChunks = 2
	c, _ := m.Get(1, 0)
	m.Get(2, 0)
	// Free node 1's chunk; the active set is back at 1 of 2.
	active := m.TakeActive()
	m.Release(c)
	m.Reactivate(active[1:])

	// Under budget: node 3 gets a fresh chunk (affinity preserved).
	fresh, sync := m.Get(3, 0)
	if fresh == c || sync != SyncGlobal {
		t.Error("under budget, a node-affine manager should allocate fresh")
	}
	// At the budget: node 3 reuses node 1's free chunk instead of growing.
	active = m.TakeActive()
	m.Release(fresh)
	m.Reactivate(active)
	m.Get(0, 0) // back to 2 of 2 active
	r, sync := m.Get(3, 0)
	if (r != c && r != fresh) || sync != SyncNodeLocal {
		t.Error("at the budget, the manager should reuse a remote free chunk")
	}
}

// TestChunkVProcBudgetOwnedActive: the per-vproc budget gates only its
// owner, the owned-active counters follow activation, and TakeActive /
// Reactivate — a global collection's chunk churn — rebuild them exactly.
func TestChunkVProcBudgetOwnedActive(t *testing.T) {
	m := newTestManager(mempage.PolicyLocal, 2)
	m.VProcBudget = 2
	m.Get(0, 0)
	m.Get(0, 0)
	m.Get(1, 1)
	if got := m.OwnedActive(0); got != 2 {
		t.Errorf("OwnedActive(0) = %d, want 2", got)
	}
	if m.HasHeadroom(0) {
		t.Error("vproc 0 at its budget still has headroom")
	}
	if !m.HasHeadroom(1) {
		t.Error("vproc 1 under its budget has no headroom")
	}
	// An ownerless activation (owner -1, collector infrastructure) is
	// never charged to a vproc and never gated.
	m.Get(0, -1)
	if !m.HasHeadroom(-1) {
		t.Error("ownerless caller gated by a per-vproc budget")
	}

	// A global collection: all chunks leave, vproc 0's survivors return.
	all := m.TakeActive()
	if got := m.OwnedActive(0); got != 0 {
		t.Errorf("OwnedActive(0) = %d after TakeActive, want 0", got)
	}
	if !m.HasHeadroom(0) {
		t.Error("no headroom with an empty active set")
	}
	m.Reactivate(all[:1]) // one of vproc 0's chunks survived
	if got := m.OwnedActive(0); got != 1 {
		t.Errorf("OwnedActive(0) = %d after Reactivate, want 1", got)
	}
	if !m.HasHeadroom(0) || !m.HasHeadroom(1) {
		t.Error("headroom lost after the collection freed chunks")
	}
}
