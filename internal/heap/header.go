// Package heap implements the Manticore heap object model: 64-bit header
// words (Figure 1 of the paper), forwarding pointers, raw/vector/mixed
// objects with a compiler-style object-descriptor table, heap regions backed
// by simulated physical pages, Appel semi-generational local heaps
// (Figures 2-3), and global-heap chunks with NUMA node affinity (§3.1).
package heap

import "fmt"

// Figure 1: the header word of mixed-type, raw, and vector heap objects.
//
//	bits 63..16  object length (48 bits, in words)
//	bits 15..1   ID (15 bits)
//	bit  0       always 1 (distinguishes headers from forwarding pointers)
//
// A forwarding pointer overwrites the header word with the forwarded address
// shifted left one bit, so its low bit is 0.
const (
	headerTagBit = 1
	idShift      = 1
	idBits       = 15
	idMask       = (1 << idBits) - 1
	lenShift     = 16
	lenBits      = 48
	maxLen       = (1 << lenBits) - 1
)

// Reserved object IDs. The paper reserves two IDs for raw and vector data
// (§3.2); all other IDs index the object-descriptor table. We additionally
// reserve an ID for object proxies (§3.1, footnote 1).
const (
	// IDInvalid is never a valid object ID.
	IDInvalid uint16 = 0
	// IDRaw marks raw-data objects (no pointers, e.g. strings, float
	// payloads).
	IDRaw uint16 = 1
	// IDVector marks vectors of pointers: every payload word is a
	// pointer or nil.
	IDVector uint16 = 2
	// IDProxy marks object proxies, the special objects that allow
	// references from the global heap back into a local heap.
	IDProxy uint16 = 3
	// IDFirstMixed is the first ID available to mixed-type descriptors.
	IDFirstMixed uint16 = 4
)

// MakeHeader builds a header word from an object ID and payload length in
// words.
func MakeHeader(id uint16, lenWords int) uint64 {
	if id == IDInvalid || uint64(id) > idMask {
		panic(fmt.Sprintf("heap: invalid object ID %d", id))
	}
	if lenWords < 0 || uint64(lenWords) > maxLen {
		panic(fmt.Sprintf("heap: invalid object length %d", lenWords))
	}
	return uint64(lenWords)<<lenShift | uint64(id)<<idShift | headerTagBit
}

// IsHeader reports whether the word is a header (low bit set) rather than a
// forwarding pointer.
func IsHeader(w uint64) bool { return w&headerTagBit != 0 }

// HeaderID extracts the 15-bit object ID.
func HeaderID(w uint64) uint16 { return uint16(w >> idShift & idMask) }

// HeaderLen extracts the 48-bit payload length in words.
func HeaderLen(w uint64) int { return int(w >> lenShift) }

// MakeForward builds a forwarding word pointing at the object's new address.
func MakeForward(a Addr) uint64 {
	if a == 0 {
		panic("heap: forwarding to nil")
	}
	return uint64(a) << 1
}

// ForwardTarget extracts the forwarded address from a forwarding word.
func ForwardTarget(w uint64) Addr {
	if IsHeader(w) {
		panic("heap: ForwardTarget of a header word")
	}
	return Addr(w >> 1)
}
