package heap

import (
	"testing"
	"testing/quick"
)

func TestHeaderLayoutMatchesFigure1(t *testing.T) {
	// Figure 1: 48-bit length in the high bits, 15-bit ID, low bit 1.
	h := MakeHeader(IDRaw, 7)
	if h&1 != 1 {
		t.Fatalf("header low bit must be 1, got %#x", h)
	}
	if got := HeaderID(h); got != IDRaw {
		t.Fatalf("HeaderID = %d, want %d", got, IDRaw)
	}
	if got := HeaderLen(h); got != 7 {
		t.Fatalf("HeaderLen = %d, want 7", got)
	}
	// The ID occupies bits 15..1.
	h2 := MakeHeader(0x7FFF, 0)
	if got := HeaderID(h2); got != 0x7FFF {
		t.Fatalf("max ID round-trip = %#x, want 0x7fff", got)
	}
	if got := HeaderLen(h2); got != 0 {
		t.Fatalf("len bleed from max ID: %d", got)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(id uint16, ln uint32) bool {
		id = id%0x7FFE + 1 // valid IDs are 1..0x7fff
		h := MakeHeader(id, int(ln))
		return IsHeader(h) && HeaderID(h) == id && HeaderLen(h) == int(ln)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwardingWordProperty(t *testing.T) {
	f := func(region uint16, word uint32) bool {
		a := MakeAddr(int(region), int(word))
		w := MakeForward(a)
		return !IsHeader(w) && ForwardTarget(w) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeHeaderPanics(t *testing.T) {
	cases := []struct {
		name string
		id   uint16
		ln   int
	}{
		{"invalid id", IDInvalid, 1},
		{"negative len", IDRaw, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			MakeHeader(c.id, c.ln)
		})
	}
}

func TestAddrEncoding(t *testing.T) {
	f := func(region uint16, word uint32) bool {
		a := MakeAddr(int(region), int(word))
		return a != 0 && a.RegionID() == int(region) && a.Word() == int(word)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
