package heap

import "fmt"

// LocalHeap is one vproc's private heap, organized per Appel's
// semi-generational scheme (§3.3, Figures 2-3): a fixed-size region split
// into an old-data area at the bottom and a nursery at the top, with the
// old-data area further partitioned into "old" data and "young" data (the
// objects copied in by the most recent minor collection).
//
// Word layout (indices into Region.Words):
//
//	[1, YoungStart)        old data (candidates for the next major GC)
//	[YoungStart, OldTop)   young data (just copied; never promoted by the
//	                       immediately following major GC, §3.3)
//	[OldTop, NurseryStart) reserve: target space for the next minor GC
//	[NurseryStart, Alloc)  newly allocated data
//	[Alloc, Limit)         free nursery space
//
// Limit is the allocation-limit pointer; the runtime zeroes it to force the
// vproc to a safepoint (§3.4).
type LocalHeap struct {
	Region *Region

	YoungStart   int
	OldTop       int
	NurseryStart int
	Alloc        int
	Limit        int

	// realLimit preserves the nursery end while Limit is zeroed for a
	// preemption signal.
	realLimit int
}

// NewLocalHeap carves a fresh local heap out of a region: the whole free
// space is empty old area, and the nursery occupies the upper half.
func NewLocalHeap(r *Region) *LocalHeap {
	h := &LocalHeap{Region: r, YoungStart: 1, OldTop: 1}
	h.resetNursery()
	return h
}

// resetNursery recomputes the nursery as the upper half of the free space
// above OldTop (Figure 2: "the remaining free space in the local heap is
// divided in half and the upper half will be used as the new nursery").
func (h *LocalHeap) resetNursery() {
	free := len(h.Region.Words) - h.OldTop
	// The reserve (lower half) must be able to absorb a completely live
	// nursery (upper half), so round the split point up.
	h.NurseryStart = h.OldTop + (free+1)/2
	h.Alloc = h.NurseryStart
	// Preserve a pending preemption signal: a collection that finishes
	// while a global GC request is in flight must not clobber the zeroed
	// limit pointer.
	signaled := h.Limit == 0 && h.realLimit > 0
	h.realLimit = len(h.Region.Words)
	if signaled {
		h.Limit = 0
	} else {
		h.Limit = h.realLimit
	}
}

// ResetNursery recomputes the nursery split after a collection phase has
// adjusted OldTop.
func (h *LocalHeap) ResetNursery() { h.resetNursery() }

// NurseryWords returns the capacity of the current nursery in words.
func (h *LocalHeap) NurseryWords() int { return h.realLimit - h.NurseryStart }

// FreeNurseryWords returns the unallocated nursery words.
func (h *LocalHeap) FreeNurseryWords() int {
	if h.Alloc > h.realLimit {
		return 0
	}
	return h.realLimit - h.Alloc
}

// CanAlloc reports whether an object with the given payload size fits in
// the remaining nursery (header word included). It consults the true limit,
// not the possibly-zeroed signal limit.
func (h *LocalHeap) CanAlloc(payloadWords int) bool {
	return h.Alloc+payloadWords+1 <= h.Limit
}

// Bump allocates an object with the given header in the nursery and returns
// its address. The payload is zeroed: nursery words are recycled across
// collections, and unspecified pointer fields must read as nil. The caller
// must have checked CanAlloc against the true limit; allocation into a
// zeroed Limit is the safepoint trap and is the runtime layer's job to
// catch.
func (h *LocalHeap) Bump(header uint64) Addr {
	n := HeaderLen(header)
	words := h.Region.Words
	words[h.Alloc] = header
	payload := words[h.Alloc+1 : h.Alloc+1+n]
	for i := range payload {
		payload[i] = 0
	}
	a := MakeAddr(h.Region.ID, h.Alloc+1)
	h.Alloc += n + 1
	return a
}

// ZeroLimit sets the allocation-limit pointer to zero, the signal that
// forces the vproc into garbage-collection code at its next allocation
// check (§3.4 step 2).
func (h *LocalHeap) ZeroLimit() { h.Limit = 0 }

// LimitZeroed reports whether a preemption signal is pending.
func (h *LocalHeap) LimitZeroed() bool { return h.Limit == 0 }

// RestoreLimit clears the preemption signal.
func (h *LocalHeap) RestoreLimit() { h.Limit = h.realLimit }

// InNursery reports whether the address lies in the nursery.
func (h *LocalHeap) InNursery(a Addr) bool {
	return a.RegionID() == h.Region.ID && a.Word() >= h.NurseryStart
}

// InOld reports whether the address lies in the old-data area (old or
// young partition).
func (h *LocalHeap) InOld(a Addr) bool {
	return a.RegionID() == h.Region.ID && a.Word() < h.OldTop
}

// Contains reports whether the address lies anywhere in this local heap.
func (h *LocalHeap) Contains(a Addr) bool {
	return a.RegionID() == h.Region.ID
}

// LiveWords returns the words currently occupied by data.
func (h *LocalHeap) LiveWords() int {
	return (h.OldTop - 1) + (h.Alloc - h.NurseryStart)
}

// check validates the layout invariants; used by tests and debug mode.
func (h *LocalHeap) check() error {
	if !(1 <= h.YoungStart && h.YoungStart <= h.OldTop &&
		h.OldTop <= h.NurseryStart && h.NurseryStart <= h.Alloc &&
		h.Alloc <= h.realLimit && h.realLimit <= len(h.Region.Words)) {
		return fmt.Errorf("heap: local heap layout broken: young=%d oldTop=%d nursery=%d alloc=%d limit=%d size=%d",
			h.YoungStart, h.OldTop, h.NurseryStart, h.Alloc, h.realLimit, len(h.Region.Words))
	}
	return nil
}

// CheckLayout exposes the layout validation.
func (h *LocalHeap) CheckLayout() error { return h.check() }
