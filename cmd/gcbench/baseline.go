package main

// Baseline recording and comparison. Six baseline kinds share one
// write/compare mechanism: the throughput suite (BENCH_v*.json), the
// open-loop latency sweep (LATENCY_v*.json), the overload sweep
// (OVERLOAD_v*.json), the memory-pressure sweep (MEMPRESSURE_v*.json), the
// rack-scale sweep (SCALE_v*.json), and the failover sweep
// (FAILOVER_v*.json). Each kind provides a point type carrying its own
// identity (Key) and exact-equality contract (VirtualEq); the generic
// helpers own the JSON envelope, the point-by-point drift report, and the
// CI gate semantics (any virtual drift fails).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

// sweepPoint is what a baseline kind's point type must provide: a
// configuration identity and bit-exact equality over the virtual
// (deterministic) fields, host wall time excluded.
type sweepPoint[P any] interface {
	Key() string
	VirtualEq(P) bool
}

// baselineFile is the shared on-disk envelope. Scale is only meaningful for
// the throughput baseline (the others have fixed workload shapes) and is
// omitted when zero, keeping the other kinds' files unchanged.
type baselineFile[P any] struct {
	Version   int     `json:"version"`
	Scale     float64 `json:"scale,omitempty"`
	GoVersion string  `json:"go_version"`
	Date      string  `json:"date"`
	Points    []P     `json:"points"`
}

// writeBaselineFile measures nothing itself: it wraps already-measured
// points in the envelope and writes them.
func writeBaselineFile[P any](path string, version int, scale float64, pts []P) error {
	out := baselineFile[P]{
		Version:   version,
		Scale:     scale,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
		Points:    pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBaselineFile parses the stored baseline, re-measures via measure,
// and fails on any drift in the virtual fields of any point — the CI gate
// that pins the simulation's deterministic results across PRs. The scale
// check rejects a baseline recorded at a different workload scale before
// spending any measurement time.
func compareBaselineFile[P sweepPoint[P]](path, label string, scale float64, measure func() ([]P, error)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want baselineFile[P]
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if want.Scale != scale {
		return fmt.Errorf("%s records scale %g; this binary measures scale %g", path, want.Scale, scale)
	}
	got, err := measure()
	if err != nil {
		return err
	}
	wantPts := make(map[string]P, len(want.Points))
	for _, p := range want.Points {
		wantPts[p.Key()] = p
	}
	drift := 0
	for _, p := range got {
		w, ok := wantPts[p.Key()]
		if !ok {
			fmt.Fprintf(os.Stderr, "gcbench: %s missing from %s\n", p.Key(), path)
			drift++
			continue
		}
		if !p.VirtualEq(w) {
			fmt.Fprintf(os.Stderr, "gcbench: %s drifted:\n  baseline %+v\n  got      %+v\n", p.Key(), w, p)
			drift++
		}
	}
	if len(got) != len(want.Points) {
		fmt.Fprintf(os.Stderr, "gcbench: point count differs: baseline %d, got %d\n", len(want.Points), len(got))
		drift++
	}
	if drift > 0 {
		return fmt.Errorf("%d %s point(s) drifted vs %s", drift, label, path)
	}
	fmt.Printf("gcbench: all %d %s points match %s\n", len(got), label, path)
	return nil
}

// --- Throughput baseline (BENCH_v3.json) ------------------------------------

// BaselinePoint is one benchmark/policy/thread-count measurement. VirtualMs
// is the simulation result (deterministic: it must stay bit-identical across
// engine changes); WallNs is the host wall-clock per run (machine-dependent:
// the perf trajectory later PRs compare against). With -j > 1, concurrent
// points share host cores, which inflates per-point WallNs; committed
// baselines are recorded with -j 1 so wall numbers stay comparable.
type BaselinePoint struct {
	Figure    int     `json:"figure"`
	Benchmark string  `json:"benchmark"`
	Policy    string  `json:"policy"`
	Threads   int     `json:"threads"`
	VirtualMs float64 `json:"virtual_ms"`
	WallNs    int64   `json:"wall_ns"`
}

// Key identifies the point's configuration.
func (p BaselinePoint) Key() string {
	return fmt.Sprintf("figure %d %s %s p=%d", p.Figure, p.Benchmark, p.Policy, p.Threads)
}

// VirtualEq compares the virtual result; wall time is host noise.
func (p BaselinePoint) VirtualEq(q BaselinePoint) bool {
	p.WallNs, q.WallNs = 0, 0
	return p == q
}

// baselineScale matches the benchScale used by `go test -bench .` so the
// virtual-ms values in the baseline line up with the benchmark output.
const baselineScale = 0.25

// baselineThreads are the fixed per-figure thread counts of the baseline.
var baselineThreads = []int{1, 24, 48}

// measureBaseline runs the fixed Figure 5-7 suite at p=1/24/48 on a worker
// pool and returns the points in deterministic order. par is each runtime's
// span-worker count; like -j it cannot change virtual results.
func measureBaseline(workers, par int) ([]BaselinePoint, error) {
	figures := []struct {
		id     int
		policy mempage.Policy
	}{
		{5, mempage.PolicyLocal},
		{6, mempage.PolicyInterleaved},
		{7, mempage.PolicySingleNode},
	}
	var pts []BaselinePoint
	for _, fig := range figures {
		for _, name := range bench.FigureBenchmarks {
			if _, err := workload.ByName(name); err != nil {
				return nil, err
			}
			for _, p := range baselineThreads {
				pts = append(pts, BaselinePoint{
					Figure:    fig.id,
					Benchmark: name,
					Policy:    fig.policy.String(),
					Threads:   p,
				})
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			topo := numa.AMD48()
			for i := range jobs {
				pt := &pts[i]
				pol, err := mempage.ParsePolicy(pt.Policy)
				if err != nil {
					panic(err)
				}
				spec, err := workload.ByName(pt.Benchmark)
				if err != nil {
					panic(err)
				}
				cfg := core.DefaultConfig(topo, pt.Threads)
				cfg.Policy = pol
				cfg.SpanWorkers = par
				rt := core.MustNewRuntime(cfg)
				start := time.Now()
				res := spec.Run(rt, baselineScale)
				pt.WallNs = time.Since(start).Nanoseconds()
				pt.VirtualMs = float64(res.ElapsedNs) / 1e6
				fmt.Fprintf(os.Stderr, "figure %d %s %s p=%d: %.4f virtual-ms, %s wall\n",
					pt.Figure, pt.Benchmark, pt.Policy, pt.Threads, pt.VirtualMs, time.Duration(pt.WallNs))
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return pts, nil
}

// writeBaseline measures the fixed suite and writes the JSON baseline.
func writeBaseline(path string, workers, par int) error {
	pts, err := measureBaseline(workers, par)
	if err != nil {
		return err
	}
	return writeBaselineFile(path, 3, baselineScale, pts)
}

// compareBaseline re-measures the fixed suite and fails on any virtual_ms
// drift against the stored baseline.
func compareBaseline(path string, workers, par int) error {
	return compareBaselineFile(path, "virtual-time", baselineScale, func() ([]BaselinePoint, error) {
		return measureBaseline(workers, par)
	})
}

// --- Latency baselines (LATENCY_v1.json, LATENCY_v2.json) --------------------

// latencyBaselineVersion distinguishes the stw-only v1 matrix (12 points)
// from the both-collector v2 matrix (24 points, concurrent rows carrying the
// mark-assist/barrier/window attribution).
func latencyBaselineVersion(gcs []string) int {
	if len(gcs) == 1 && gcs[0] == "" {
		return 1
	}
	return 2
}

// writeLatencyBaseline measures the fixed latency sweep over the selected
// collector modes and writes the JSON baseline.
func writeLatencyBaseline(path string, gcs []string, workers, par int, progress func(string)) error {
	return writeBaselineFile(path, latencyBaselineVersion(gcs), 0, bench.MeasureLatencyGC(gcs, workers, par, progress))
}

// compareLatencyBaseline re-measures the fixed latency sweep and fails on
// any drift in the virtual fields (percentiles, attribution, checksums; for
// concurrent rows also the assist/barrier/STW-window accounting).
func compareLatencyBaseline(path string, gcs []string, workers, par int, progress func(string)) error {
	return compareBaselineFile(path, "latency", 0, func() ([]bench.LatencyPoint, error) {
		return bench.MeasureLatencyGC(gcs, workers, par, progress), nil
	})
}

// --- Overload baseline (OVERLOAD_v1.json) -----------------------------------

// writeOverloadBaseline measures the fixed overload sweep and writes the
// JSON baseline.
func writeOverloadBaseline(path string, workers, par int, progress func(string)) error {
	return writeBaselineFile(path, 1, 0, bench.MeasureOverload(bench.DefaultOverloadSweep(), workers, par, progress))
}

// compareOverloadBaseline re-measures the fixed overload sweep and fails on
// any drift in the virtual fields (goodput, shed/retry/expiry accounting,
// percentiles, checksums) — the graceful-degradation gate.
func compareOverloadBaseline(path string, workers, par int, progress func(string)) error {
	return compareBaselineFile(path, "overload", 0, func() ([]bench.OverloadPoint, error) {
		return bench.MeasureOverload(bench.DefaultOverloadSweep(), workers, par, progress), nil
	})
}

// --- Memory-pressure baseline (MEMPRESSURE_v1.json) --------------------------

// writeMempressureBaseline measures the fixed memory-pressure sweep and
// writes the JSON baseline.
func writeMempressureBaseline(path string, workers, par int, progress func(string)) error {
	return writeBaselineFile(path, 1, 0, bench.MeasureMempressure(bench.DefaultMempressureSweep(), workers, par, progress))
}

// compareMempressureBaseline re-measures the fixed memory-pressure sweep
// and fails on any drift in the virtual fields (goodput and shed
// accounting, emergency-GC/alloc-failure/overdraft counters, percentiles,
// checksums) — the heap-exhaustion graceful-degradation gate.
func compareMempressureBaseline(path string, workers, par int, progress func(string)) error {
	return compareBaselineFile(path, "memory-pressure", 0, func() ([]bench.MempressurePoint, error) {
		return bench.MeasureMempressure(bench.DefaultMempressureSweep(), workers, par, progress), nil
	})
}

// --- Rack-scale baseline (SCALE_v1.json) -------------------------------------

// writeScaleBaseline measures the fixed rack-scale sweep and writes the
// JSON baseline. The sweep's workload scale is recorded in the envelope so
// a mismatched binary fails before measuring.
func writeScaleBaseline(path string, workers, par int, progress func(string)) error {
	sw := bench.DefaultScaleSweep()
	pts, err := bench.MeasureScale(sw, workers, par, progress)
	if err != nil {
		return err
	}
	return writeBaselineFile(path, 1, sw.Scale, pts)
}

// compareScaleBaseline re-measures the fixed rack-scale sweep and fails on
// any drift in the virtual fields (makespans, checksums, and the
// local/same-package/remote/far traffic split) — the gate that pins the
// far-tier model and the span-parallel engine's bit-identical contract on
// the largest topologies.
func compareScaleBaseline(path string, workers, par int, progress func(string)) error {
	sw := bench.DefaultScaleSweep()
	return compareBaselineFile(path, "rack-scale", sw.Scale, func() ([]bench.ScalePoint, error) {
		return bench.MeasureScale(sw, workers, par, progress)
	})
}

// --- Failover baseline (FAILOVER_v1.json) ------------------------------------

// writeFailoverBaseline measures the fixed failover sweep and writes the
// JSON baseline.
func writeFailoverBaseline(path string, workers, par int, progress func(string)) error {
	pts, err := bench.MeasureFailover(bench.DefaultFailoverSweep(), workers, par, progress)
	if err != nil {
		return err
	}
	return writeBaselineFile(path, 1, 0, pts)
}

// compareFailoverBaseline re-measures the fixed failover sweep and fails on
// any drift in the virtual fields (goodput before/after the crash, lost-work
// accounting, breaker/retry/hedge counters, percentiles, checksums) — the
// partial-failure graceful-degradation gate.
func compareFailoverBaseline(path string, workers, par int, progress func(string)) error {
	return compareBaselineFile(path, "failover", 0, func() ([]bench.FailoverPoint, error) {
		return bench.MeasureFailover(bench.DefaultFailoverSweep(), workers, par, progress)
	})
}
