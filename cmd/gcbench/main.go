// Command gcbench regenerates the paper's evaluation figures: speedup
// sweeps of the five benchmarks over thread counts, machines, and page
// placement policies.
//
// Usage:
//
//	gcbench -figure 5                 # regenerate Figure 5 (AMD, local)
//	gcbench -figure 4 -scale 0.5      # Figure 4 at half workload scale
//	gcbench -machine amd48 -policy interleaved -threads 1,8,48 -bench dmm
//	gcbench -all                      # Figures 4-7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/mempage"
	"repro/internal/numa"
)

func main() {
	var (
		figure  = flag.Int("figure", 0, "paper figure to regenerate (4-7)")
		all     = flag.Bool("all", false, "regenerate all figures (4-7)")
		scale   = flag.Float64("scale", 1.0, "workload scale (1.0 = default reduced sizes)")
		machine = flag.String("machine", "amd48", "machine preset for custom sweeps (amd48, intel32)")
		policy  = flag.String("policy", "local", "page placement policy (local, interleaved, single-node)")
		threads = flag.String("threads", "", "comma-separated thread counts for custom sweeps")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: the five paper benchmarks)")
		verbose = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()

	opt := bench.Options{Scale: *scale}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	switch {
	case *all:
		for id := 4; id <= 7; id++ {
			f, err := bench.RunFigure(id, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Println(f.Render())
		}
	case *figure != 0:
		f, err := bench.RunFigure(*figure, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
	default:
		topo, err := numa.Preset(*machine)
		if err != nil {
			fatal(err)
		}
		pol, err := mempage.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		ts := bench.AMDThreads
		if topo.Name == "intel32" {
			ts = bench.IntelThreads
		}
		if *threads != "" {
			ts = nil
			for _, s := range strings.Split(*threads, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					fatal(fmt.Errorf("bad thread count %q: %w", s, err))
				}
				ts = append(ts, n)
			}
		}
		f := bench.Sweep(topo, pol, ts, opt)
		fmt.Println(f.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcbench:", err)
	os.Exit(1)
}
