// Command gcbench regenerates the paper's evaluation figures: speedup
// sweeps of the five benchmarks over thread counts, machines, and page
// placement policies. Sweep points are independent deterministic
// simulations, so they run on a worker pool (-j); results are identical
// for any worker count.
//
// Usage:
//
//	gcbench -figure 5                 # regenerate Figure 5 (AMD, local)
//	gcbench -figure 4 -scale 0.5      # Figure 4 at half workload scale
//	gcbench -machine amd48 -policy interleaved -threads 1,8,48 -bench dmm
//	gcbench -all                      # Figures 4-7
//	gcbench -all -j 8                 # ... with 8 sweep workers
//	gcbench -server                   # message-passing server sweep (both machines, all policies)
//	gcbench -latency                  # open-loop latency sweep (tail latency under GC)
//	gcbench -overload                 # overload sweep (goodput/SLO vs offered load, faulted points)
//	gcbench -overload -loads 80000,40000 -admission deadline -fault-seed 7
//	gcbench -mempressure              # memory-pressure sweep (bounded heaps, emergency GC, memory-aware admission)
//	gcbench -mempressure -budgets 0,20,16 -admission memory
//	gcbench -rackscale                # rack-scale sweep (paper machines + rack256, traffic split)
//	gcbench -rackscale -machines rack256,rack1024 -scale 0.1
//	gcbench -failover                 # failover sweep (replicated serving under crash faults)
//	gcbench -failover -crash board -replicas 2,4
//	gcbench -all -par 4               # ... with 4 span workers per simulation (bit-identical)
//	gcbench -baseline BENCH_v3.json   # record a perf baseline (JSON)
//	gcbench -compare BENCH_v3.json    # fail on any virtual-time drift
//	gcbench -latency -gc concurrent   # ... under the mostly-concurrent global collector
//	gcbench -latency -baseline LATENCY_v1.json   # record the latency baseline
//	gcbench -latency -compare LATENCY_v1.json    # latency drift gate
//	gcbench -latency -gc both -compare LATENCY_v2.json  # both-collector latency gate
//	gcbench -overload -compare OVERLOAD_v1.json  # overload drift gate
//	gcbench -mempressure -compare MEMPRESSURE_v1.json  # memory-pressure drift gate
//	gcbench -rackscale -compare SCALE_v1.json    # rack-scale drift gate
//	gcbench -failover -compare FAILOVER_v1.json  # failover drift gate
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

func main() {
	var (
		figure    = flag.Int("figure", 0, "paper figure to regenerate (4-7)")
		all       = flag.Bool("all", false, "regenerate all figures (4-7)")
		server    = flag.Bool("server", false, "sweep the message-passing server workload (both machines, all three policies)")
		latency   = flag.Bool("latency", false, "sweep the open-loop latency harness: tail latency under GC with pause attribution (fixed configuration)")
		gcMode    = flag.String("gc", "stw", "with -latency: global collector(s) to sweep (stw, concurrent, both)")
		overload  = flag.Bool("overload", false, "sweep the overload harness: goodput/SLO vs offered load per admission policy, with faulted points")
		mempress  = flag.Bool("mempressure", false, "sweep the memory-pressure harness: bounded-heap budget ladder per admission policy, with squeeze-fault points")
		rackscale = flag.Bool("rackscale", false, "sweep the rack-scale harness: full-core-count makespans and NUMA traffic split on the paper machines and rack presets")
		failover  = flag.Bool("failover", false, "sweep the failover harness: replicated serving pools under injected crash faults (single-vproc kills, correlated board kill on rack256)")
		crashes   = flag.String("crash", "", "with -failover: comma-separated crash kinds (none, vproc, board; default: the fixed schedule)")
		replicas  = flag.String("replicas", "", "with -failover: comma-separated replication levels (default: the fixed 1-4 ladder)")
		machines  = flag.String("machines", "", "with -rackscale: comma-separated machine presets (amd48, intel32, rack256, rack1024, rack4096; default: the fixed amd48,intel32,rack256 set)")
		budgets   = flag.String("budgets", "", "with -mempressure: comma-separated global chunk budgets (0 = unbounded; default: the 0/32/24/16 ladder)")
		scale     = flag.Float64("scale", 1.0, "workload scale (1.0 = default reduced sizes)")
		machine   = flag.String("machine", "amd48", "machine preset for custom sweeps (amd48, intel32, rack256, rack1024, rack4096)")
		policy    = flag.String("policy", "local", "page placement policy (local, interleaved, single-node)")
		threads   = flag.String("threads", "", "comma-separated thread counts for custom sweeps")
		benches   = flag.String("bench", "", "comma-separated benchmark subset (default: the five paper benchmarks)")
		loads     = flag.String("loads", "", "with -overload: comma-separated mean inter-arrival gaps in virtual ns (default: the 0.4x/1x/2x/4x saturation ladder)")
		admission = flag.String("admission", "", "with -overload/-mempressure: comma-separated admission policies (none, queue, deadline, memory; default: that sweep's fixed set)")
		faultSeed = flag.Uint64("fault-seed", bench.OverloadFaultSeed, "with -overload: seed of the faulted top-load points; with -mempressure: seed of the squeeze points (0 disables them)")
		verbose   = flag.Bool("v", false, "print per-run progress")
		workers   = flag.Int("j", runtime.GOMAXPROCS(0), "sweep points to run concurrently (virtual results are identical for any value)")
		par       = flag.Int("par", 1, "span workers per simulation: the engine drains interaction-free idle machines concurrently between conservative windows (virtual results are identical for any value)")
		baseline  = flag.String("baseline", "", "write a perf-baseline JSON to this file (with -latency/-overload: that sweep's baseline)")
		compare   = flag.String("compare", "", "re-run the baseline configuration and fail on any virtual drift vs this JSON file")
	)
	flag.Parse()

	// Up-front flag validation: a bad value must fail here with an
	// actionable message, not surface as a Config.Validate panic deep
	// inside a sweep — or worse, be silently clamped into a run that looks
	// like a real result (workload scaling clamps non-positive sizes to 1).
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatal(fmt.Errorf("-scale %v is not a positive workload scale", *scale))
	}
	if *workers < 1 {
		fatal(fmt.Errorf("-j %d is not a positive worker count", *workers))
	}
	if *par < 1 {
		fatal(fmt.Errorf("-par %d is not a positive span-worker count (1 = serial engine)", *par))
	}
	var benchNames []string
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			name := strings.TrimSpace(b)
			if _, err := workload.ByName(name); err != nil {
				fatal(err)
			}
			benchNames = append(benchNames, name)
		}
	}
	if *figure != 0 && (*figure < 4 || *figure > 7) {
		fatal(fmt.Errorf("-figure %d out of range: the paper's figures are 4-7", *figure))
	}
	if btoi(*latency)+btoi(*overload)+btoi(*mempress)+btoi(*rackscale)+btoi(*failover) > 1 {
		fatal(fmt.Errorf("-latency, -overload, -mempressure, -rackscale, and -failover are mutually exclusive sweeps"))
	}
	// The collector selector is validated whenever set (reject, never
	// clamp) and only means anything to the latency sweep: every other
	// sweep and baseline pins the legacy stop-the-world collector, so a
	// stray -gc must fail loudly rather than silently measure the wrong
	// collector.
	gcModes, gcErr := bench.GCModes(*gcMode)
	if gcErr != nil {
		fatal(gcErr)
	}

	// The overload/mempressure knobs are validated whenever set (reject,
	// never clamp) and only mean anything to a custom sweep: RunOverload
	// panics on a gap below 2 ns, so the CLI must catch that first with a
	// usable message, and an unknown admission name or an unusable budget
	// must not half-run a sweep before failing inside a worker.
	sweep := bench.DefaultOverloadSweep()
	sweep.FaultSeed = *faultSeed
	mpSweep := bench.DefaultMempressureSweep()
	scSweep := bench.DefaultScaleSweep()
	foSweep := bench.DefaultFailoverSweep()
	var loadsSet, budgetsSet, admSet, faultSeedSet, machinesSet, scaleSet bool
	var crashSet, replicasSet, gcSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "gc":
			gcSet = true
		case "loads":
			loadsSet = true
		case "budgets":
			budgetsSet = true
		case "admission":
			admSet = true
		case "fault-seed":
			faultSeedSet = true
		case "machines":
			machinesSet = true
		case "scale":
			scaleSet = true
		case "crash":
			crashSet = true
		case "replicas":
			replicasSet = true
		}
	})
	if loadsSet && !*overload {
		fatal(fmt.Errorf("-loads only applies to the -overload sweep"))
	}
	if budgetsSet && !*mempress {
		fatal(fmt.Errorf("-budgets only applies to the -mempressure sweep"))
	}
	if (admSet || faultSeedSet) && !*overload && !*mempress {
		fatal(fmt.Errorf("-admission/-fault-seed only apply to the -overload and -mempressure sweeps"))
	}
	if machinesSet && !*rackscale {
		fatal(fmt.Errorf("-machines only applies to the -rackscale sweep"))
	}
	if (crashSet || replicasSet) && !*failover {
		fatal(fmt.Errorf("-crash/-replicas only apply to the -failover sweep"))
	}
	if gcSet && !*latency {
		fatal(fmt.Errorf("-gc only applies to the -latency sweep; every other sweep pins the stop-the-world collector"))
	}
	if *crashes != "" {
		foSweep.Crashes = nil
		for _, s := range strings.Split(*crashes, ",") {
			kind, err := workload.ParseCrashKind(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			foSweep.Crashes = append(foSweep.Crashes, kind)
		}
	}
	if *replicas != "" {
		foSweep.Replicas = nil
		for _, s := range strings.Split(*replicas, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad -replicas value %q: %w", s, err))
			}
			if r < 1 {
				fatal(fmt.Errorf("-replicas value %d is not a positive replication level", r))
			}
			foSweep.Replicas = append(foSweep.Replicas, r)
		}
	}
	if *failover {
		// The point set must be non-empty before any worker runs: an
		// incompatible crash/replica selection (board kills with replication
		// 1, say) must fail here with the full selection in the message.
		if _, err := bench.FailoverPoints(foSweep); err != nil {
			fatal(err)
		}
	}
	if *machines != "" {
		scSweep.Machines = nil
		for _, s := range strings.Split(*machines, ",") {
			name := strings.TrimSpace(s)
			if _, err := numa.Preset(name); err != nil {
				fatal(err)
			}
			scSweep.Machines = append(scSweep.Machines, name)
		}
	}
	if scaleSet && *rackscale {
		scSweep.Scale = *scale
	}
	if faultSeedSet && *mempress {
		mpSweep.SqueezeSeed = *faultSeed
	}
	if *budgets != "" {
		mpSweep.Budgets = nil
		for _, s := range strings.Split(*budgets, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fatal(fmt.Errorf("bad -budgets value %q: %w", s, err))
			}
			if b < 0 {
				fatal(fmt.Errorf("-budgets value %d is negative (0 = unbounded)", b))
			}
			if b > 0 && b < bench.MempressureThreads {
				fatal(fmt.Errorf("-budgets value %d is below the %d-vproc pool (every vproc needs at least one chunk)", b, bench.MempressureThreads))
			}
			mpSweep.Budgets = append(mpSweep.Budgets, b)
		}
	}
	if *loads != "" {
		sweep.Loads = nil
		for _, s := range strings.Split(*loads, ",") {
			gap, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -loads gap %q: %w", s, err))
			}
			if gap < 2 {
				fatal(fmt.Errorf("-loads gap %d is not a usable inter-arrival gap (need >= 2 ns)", gap))
			}
			sweep.Loads = append(sweep.Loads, bench.OverloadLoad{Name: fmt.Sprintf("%dns", gap), MeanGapNs: gap})
		}
	}
	if *admission != "" {
		sweep.Admissions = nil
		for _, s := range strings.Split(*admission, ",") {
			adm, err := workload.ParseAdmission(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			sweep.Admissions = append(sweep.Admissions, adm)
		}
	}

	if *baseline != "" && *compare != "" {
		fatal(fmt.Errorf("-baseline and -compare are mutually exclusive"))
	}
	if *baseline != "" || *compare != "" || *latency || *overload || *mempress || *rackscale || *failover {
		// Baselines (and the latency/overload/mempressure/rackscale/failover
		// sweeps) are only comparable across PRs when they are always
		// recorded at the one fixed configuration, so reject any other
		// configuration flag rather than silently ignoring it. -j, -par and
		// -v are allowed: they do not change virtual results (the engine's
		// window scheduler is bit-identical at every -par). The sweep knobs
		// are allowed only for a custom print-mode sweep, never for a
		// baseline.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "baseline", "compare", "latency", "overload", "mempressure", "rackscale", "failover", "v", "j", "par":
			case "gc":
				// -gc selects which fixed latency matrix is measured: the
				// v1 (stw) or v2 (both-collector) baseline. It is already
				// confined to -latency above.
			case "loads", "admission", "fault-seed", "budgets", "machines", "crash", "replicas":
				if *baseline != "" || *compare != "" {
					fatal(fmt.Errorf("-baseline/-compare use that sweep's fixed configuration; remove -%s", f.Name))
				}
			case "scale":
				// -scale configures the throughput suite and the custom
				// -rackscale print mode; baselines pin their own scale.
				if *baseline != "" || *compare != "" {
					fatal(fmt.Errorf("-baseline/-compare use that sweep's fixed configuration; remove -%s", f.Name))
				}
				if !*rackscale {
					fatal(fmt.Errorf("-latency/-overload/-mempressure use a fixed configuration; remove -scale"))
				}
			default:
				fatal(fmt.Errorf("-baseline/-compare/-latency/-overload/-mempressure/-rackscale use a fixed configuration; remove -%s", f.Name))
			}
		})
		var progress func(string)
		if *verbose {
			progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		var err error
		switch {
		case *failover && *baseline != "":
			err = writeFailoverBaseline(*baseline, *workers, *par, progress)
		case *failover && *compare != "":
			err = compareFailoverBaseline(*compare, *workers, *par, progress)
		case *failover:
			var pts []bench.FailoverPoint
			if pts, err = bench.MeasureFailover(foSweep, *workers, *par, progress); err == nil {
				fmt.Println(bench.RenderFailover(pts))
			}
		case *rackscale && *baseline != "":
			err = writeScaleBaseline(*baseline, *workers, *par, progress)
		case *rackscale && *compare != "":
			err = compareScaleBaseline(*compare, *workers, *par, progress)
		case *rackscale:
			var pts []bench.ScalePoint
			if pts, err = bench.MeasureScale(scSweep, *workers, *par, progress); err == nil {
				fmt.Println(bench.RenderScale(pts))
			}
		case *mempress && *baseline != "":
			err = writeMempressureBaseline(*baseline, *workers, *par, progress)
		case *mempress && *compare != "":
			err = compareMempressureBaseline(*compare, *workers, *par, progress)
		case *mempress:
			fmt.Println(bench.RenderMempressure(mpSweep, bench.MeasureMempressure(mpSweep, *workers, *par, progress)))
		case *overload && *baseline != "":
			err = writeOverloadBaseline(*baseline, *workers, *par, progress)
		case *overload && *compare != "":
			err = compareOverloadBaseline(*compare, *workers, *par, progress)
		case *overload:
			fmt.Println(bench.RenderOverload(bench.MeasureOverload(sweep, *workers, *par, progress)))
		case *latency && *baseline != "":
			err = writeLatencyBaseline(*baseline, gcModes, *workers, *par, progress)
		case *latency && *compare != "":
			err = compareLatencyBaseline(*compare, gcModes, *workers, *par, progress)
		case *latency:
			fmt.Println(bench.RenderLatency(bench.MeasureLatencyGC(gcModes, *workers, *par, progress)))
		case *baseline != "":
			err = writeBaseline(*baseline, *workers, *par)
		default:
			err = compareBaseline(*compare, *workers, *par)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	opt := bench.Options{Scale: *scale, Workers: *workers, Par: *par}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if benchNames != nil {
		opt.Benchmarks = benchNames
	}

	switch {
	case *server:
		for _, f := range bench.RunServerFigures(opt) {
			fmt.Println(f.Render())
		}
	case *all:
		for id := 4; id <= 7; id++ {
			f, err := bench.RunFigure(id, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Println(f.Render())
		}
	case *figure != 0:
		f, err := bench.RunFigure(*figure, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
	default:
		topo, err := numa.Preset(*machine)
		if err != nil {
			fatal(err)
		}
		pol, err := mempage.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		ts := bench.AMDThreads
		if topo.Name == "intel32" {
			ts = bench.IntelThreads
		}
		if *threads != "" {
			ts = nil
			for _, s := range strings.Split(*threads, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					fatal(fmt.Errorf("bad thread count %q: %w", s, err))
				}
				if n < 1 || n > topo.NumCores() {
					fatal(fmt.Errorf("thread count %d out of range [1,%d] for machine %s", n, topo.NumCores(), topo.Name))
				}
				ts = append(ts, n)
			}
		}
		f := bench.Sweep(topo, pol, ts, opt)
		fmt.Println(f.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcbench:", err)
	os.Exit(1)
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
