// Command gcbench regenerates the paper's evaluation figures: speedup
// sweeps of the five benchmarks over thread counts, machines, and page
// placement policies.
//
// Usage:
//
//	gcbench -figure 5                 # regenerate Figure 5 (AMD, local)
//	gcbench -figure 4 -scale 0.5      # Figure 4 at half workload scale
//	gcbench -machine amd48 -policy interleaved -threads 1,8,48 -bench dmm
//	gcbench -all                      # Figures 4-7
//	gcbench -baseline BENCH_v1.json   # record a perf baseline (JSON)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

func main() {
	var (
		figure  = flag.Int("figure", 0, "paper figure to regenerate (4-7)")
		all     = flag.Bool("all", false, "regenerate all figures (4-7)")
		scale   = flag.Float64("scale", 1.0, "workload scale (1.0 = default reduced sizes)")
		machine = flag.String("machine", "amd48", "machine preset for custom sweeps (amd48, intel32)")
		policy  = flag.String("policy", "local", "page placement policy (local, interleaved, single-node)")
		threads = flag.String("threads", "", "comma-separated thread counts for custom sweeps")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: the five paper benchmarks)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		baseline = flag.String("baseline", "", "write a perf-baseline JSON (Figure 5-7 points at p=1/24/48) to this file")
	)
	flag.Parse()

	if *baseline != "" {
		// A baseline is only comparable across PRs when it is always
		// recorded at the one fixed configuration, so reject any other
		// configuration flag rather than silently ignoring it.
		flag.Visit(func(f *flag.Flag) {
			if f.Name != "baseline" && f.Name != "v" {
				fatal(fmt.Errorf("-baseline uses a fixed configuration; remove -%s", f.Name))
			}
		})
		if err := writeBaseline(*baseline); err != nil {
			fatal(err)
		}
		return
	}

	opt := bench.Options{Scale: *scale}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}

	switch {
	case *all:
		for id := 4; id <= 7; id++ {
			f, err := bench.RunFigure(id, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Println(f.Render())
		}
	case *figure != 0:
		f, err := bench.RunFigure(*figure, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
	default:
		topo, err := numa.Preset(*machine)
		if err != nil {
			fatal(err)
		}
		pol, err := mempage.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		ts := bench.AMDThreads
		if topo.Name == "intel32" {
			ts = bench.IntelThreads
		}
		if *threads != "" {
			ts = nil
			for _, s := range strings.Split(*threads, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					fatal(fmt.Errorf("bad thread count %q: %w", s, err))
				}
				ts = append(ts, n)
			}
		}
		f := bench.Sweep(topo, pol, ts, opt)
		fmt.Println(f.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcbench:", err)
	os.Exit(1)
}

// --- Baseline recording ---------------------------------------------------

// BaselinePoint is one benchmark/policy/thread-count measurement. VirtualMs
// is the simulation result (deterministic: it must stay bit-identical across
// engine changes); WallNs is the host wall-clock per run (machine-dependent:
// the perf trajectory later PRs compare against).
type BaselinePoint struct {
	Figure    int     `json:"figure"`
	Benchmark string  `json:"benchmark"`
	Policy    string  `json:"policy"`
	Threads   int     `json:"threads"`
	VirtualMs float64 `json:"virtual_ms"`
	WallNs    int64   `json:"wall_ns"`
}

// Baseline is the on-disk format of BENCH_v1.json.
type Baseline struct {
	Version   int             `json:"version"`
	Scale     float64         `json:"scale"`
	GoVersion string          `json:"go_version"`
	Date      string          `json:"date"`
	Points    []BaselinePoint `json:"points"`
}

// baselineScale matches the benchScale used by `go test -bench .` so the
// virtual-ms values in the baseline line up with the benchmark output.
const baselineScale = 0.25

// writeBaseline measures the Figure 5-7 suite at p=1/24/48 and writes the
// JSON baseline.
func writeBaseline(path string) error {
	figures := []struct {
		id     int
		policy mempage.Policy
	}{
		{5, mempage.PolicyLocal},
		{6, mempage.PolicyInterleaved},
		{7, mempage.PolicySingleNode},
	}
	out := Baseline{
		Version:   1,
		Scale:     baselineScale,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
	}
	topo := numa.AMD48()
	for _, fig := range figures {
		for _, name := range bench.FigureBenchmarks {
			spec, err := workload.ByName(name)
			if err != nil {
				return err
			}
			for _, p := range []int{1, 24, 48} {
				cfg := core.DefaultConfig(topo, p)
				cfg.Policy = fig.policy
				rt := core.MustNewRuntime(cfg)
				start := time.Now()
				res := spec.Run(rt, baselineScale)
				wall := time.Since(start)
				out.Points = append(out.Points, BaselinePoint{
					Figure:    fig.id,
					Benchmark: name,
					Policy:    fig.policy.String(),
					Threads:   p,
					VirtualMs: float64(res.ElapsedNs) / 1e6,
					WallNs:    wall.Nanoseconds(),
				})
				fmt.Fprintf(os.Stderr, "figure %d %s %s p=%d: %.4f virtual-ms, %s wall\n",
					fig.id, name, fig.policy, p, float64(res.ElapsedNs)/1e6, wall)
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
