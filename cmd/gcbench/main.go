// Command gcbench regenerates the paper's evaluation figures: speedup
// sweeps of the five benchmarks over thread counts, machines, and page
// placement policies. Sweep points are independent deterministic
// simulations, so they run on a worker pool (-j); results are identical
// for any worker count.
//
// Usage:
//
//	gcbench -figure 5                 # regenerate Figure 5 (AMD, local)
//	gcbench -figure 4 -scale 0.5      # Figure 4 at half workload scale
//	gcbench -machine amd48 -policy interleaved -threads 1,8,48 -bench dmm
//	gcbench -all                      # Figures 4-7
//	gcbench -all -j 8                 # ... with 8 sweep workers
//	gcbench -server                   # message-passing server sweep (both machines, all policies)
//	gcbench -latency                  # open-loop latency sweep (tail latency under GC)
//	gcbench -baseline BENCH_v3.json   # record a perf baseline (JSON)
//	gcbench -compare BENCH_v3.json    # fail on any virtual-time drift
//	gcbench -latency -baseline LATENCY_v1.json   # record the latency baseline
//	gcbench -latency -compare LATENCY_v1.json    # latency drift gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "paper figure to regenerate (4-7)")
		all      = flag.Bool("all", false, "regenerate all figures (4-7)")
		server   = flag.Bool("server", false, "sweep the message-passing server workload (both machines, all three policies)")
		latency  = flag.Bool("latency", false, "sweep the open-loop latency harness: tail latency under GC with pause attribution (fixed configuration)")
		scale    = flag.Float64("scale", 1.0, "workload scale (1.0 = default reduced sizes)")
		machine  = flag.String("machine", "amd48", "machine preset for custom sweeps (amd48, intel32)")
		policy   = flag.String("policy", "local", "page placement policy (local, interleaved, single-node)")
		threads  = flag.String("threads", "", "comma-separated thread counts for custom sweeps")
		benches  = flag.String("bench", "", "comma-separated benchmark subset (default: the five paper benchmarks)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		workers  = flag.Int("j", runtime.GOMAXPROCS(0), "sweep points to run concurrently (virtual results are identical for any value)")
		baseline = flag.String("baseline", "", "write a perf-baseline JSON to this file (with -latency: the latency baseline)")
		compare  = flag.String("compare", "", "re-run the baseline configuration and fail on any virtual drift vs this JSON file")
	)
	flag.Parse()

	// Up-front flag validation: a bad value must fail here with an
	// actionable message, not surface as a Config.Validate panic deep
	// inside a sweep — or worse, be silently clamped into a run that looks
	// like a real result (workload scaling clamps non-positive sizes to 1).
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatal(fmt.Errorf("-scale %v is not a positive workload scale", *scale))
	}
	if *workers < 1 {
		fatal(fmt.Errorf("-j %d is not a positive worker count", *workers))
	}
	var benchNames []string
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			name := strings.TrimSpace(b)
			if _, err := workload.ByName(name); err != nil {
				fatal(err)
			}
			benchNames = append(benchNames, name)
		}
	}
	if *figure != 0 && (*figure < 4 || *figure > 7) {
		fatal(fmt.Errorf("-figure %d out of range: the paper's figures are 4-7", *figure))
	}

	if *baseline != "" && *compare != "" {
		fatal(fmt.Errorf("-baseline and -compare are mutually exclusive"))
	}
	if *baseline != "" || *compare != "" || *latency {
		// Baselines (and the latency sweep) are only comparable across PRs
		// when they are always recorded at the one fixed configuration, so
		// reject any other configuration flag rather than silently ignoring
		// it. -j and -v are allowed: they do not change virtual results.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "baseline", "compare", "latency", "v", "j":
			default:
				fatal(fmt.Errorf("-baseline/-compare/-latency use a fixed configuration; remove -%s", f.Name))
			}
		})
		var progress func(string)
		if *verbose {
			progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
		}
		var err error
		switch {
		case *latency && *baseline != "":
			err = writeLatencyBaseline(*baseline, *workers, progress)
		case *latency && *compare != "":
			err = compareLatencyBaseline(*compare, *workers, progress)
		case *latency:
			fmt.Println(bench.RenderLatency(bench.MeasureLatency(*workers, progress)))
		case *baseline != "":
			err = writeBaseline(*baseline, *workers)
		default:
			err = compareBaseline(*compare, *workers)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	opt := bench.Options{Scale: *scale, Workers: *workers}
	if *verbose {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if benchNames != nil {
		opt.Benchmarks = benchNames
	}

	switch {
	case *server:
		for _, f := range bench.RunServerFigures(opt) {
			fmt.Println(f.Render())
		}
	case *all:
		for id := 4; id <= 7; id++ {
			f, err := bench.RunFigure(id, opt)
			if err != nil {
				fatal(err)
			}
			fmt.Println(f.Render())
		}
	case *figure != 0:
		f, err := bench.RunFigure(*figure, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f.Render())
	default:
		topo, err := numa.Preset(*machine)
		if err != nil {
			fatal(err)
		}
		pol, err := mempage.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		ts := bench.AMDThreads
		if topo.Name == "intel32" {
			ts = bench.IntelThreads
		}
		if *threads != "" {
			ts = nil
			for _, s := range strings.Split(*threads, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					fatal(fmt.Errorf("bad thread count %q: %w", s, err))
				}
				if n < 1 || n > topo.NumCores() {
					fatal(fmt.Errorf("thread count %d out of range [1,%d] for machine %s", n, topo.NumCores(), topo.Name))
				}
				ts = append(ts, n)
			}
		}
		f := bench.Sweep(topo, pol, ts, opt)
		fmt.Println(f.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcbench:", err)
	os.Exit(1)
}

// --- Baseline recording and comparison -------------------------------------

// BaselinePoint is one benchmark/policy/thread-count measurement. VirtualMs
// is the simulation result (deterministic: it must stay bit-identical across
// engine changes); WallNs is the host wall-clock per run (machine-dependent:
// the perf trajectory later PRs compare against). With -j > 1, concurrent
// points share host cores, which inflates per-point WallNs; committed
// baselines are recorded with -j 1 so wall numbers stay comparable.
type BaselinePoint struct {
	Figure    int     `json:"figure"`
	Benchmark string  `json:"benchmark"`
	Policy    string  `json:"policy"`
	Threads   int     `json:"threads"`
	VirtualMs float64 `json:"virtual_ms"`
	WallNs    int64   `json:"wall_ns"`
}

// Baseline is the on-disk format of BENCH_v*.json.
type Baseline struct {
	Version   int             `json:"version"`
	Scale     float64         `json:"scale"`
	GoVersion string          `json:"go_version"`
	Date      string          `json:"date"`
	Points    []BaselinePoint `json:"points"`
}

// baselineScale matches the benchScale used by `go test -bench .` so the
// virtual-ms values in the baseline line up with the benchmark output.
const baselineScale = 0.25

// baselineThreads are the fixed per-figure thread counts of the baseline.
var baselineThreads = []int{1, 24, 48}

// measureBaseline runs the fixed Figure 5-7 suite at p=1/24/48 on a worker
// pool and returns the points in deterministic order.
func measureBaseline(workers int) ([]BaselinePoint, error) {
	figures := []struct {
		id     int
		policy mempage.Policy
	}{
		{5, mempage.PolicyLocal},
		{6, mempage.PolicyInterleaved},
		{7, mempage.PolicySingleNode},
	}
	var pts []BaselinePoint
	for _, fig := range figures {
		for _, name := range bench.FigureBenchmarks {
			if _, err := workload.ByName(name); err != nil {
				return nil, err
			}
			for _, p := range baselineThreads {
				pts = append(pts, BaselinePoint{
					Figure:    fig.id,
					Benchmark: name,
					Policy:    fig.policy.String(),
					Threads:   p,
				})
			}
		}
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			topo := numa.AMD48()
			for i := range jobs {
				pt := &pts[i]
				pol, err := mempage.ParsePolicy(pt.Policy)
				if err != nil {
					panic(err)
				}
				spec, err := workload.ByName(pt.Benchmark)
				if err != nil {
					panic(err)
				}
				cfg := core.DefaultConfig(topo, pt.Threads)
				cfg.Policy = pol
				rt := core.MustNewRuntime(cfg)
				start := time.Now()
				res := spec.Run(rt, baselineScale)
				pt.WallNs = time.Since(start).Nanoseconds()
				pt.VirtualMs = float64(res.ElapsedNs) / 1e6
				fmt.Fprintf(os.Stderr, "figure %d %s %s p=%d: %.4f virtual-ms, %s wall\n",
					pt.Figure, pt.Benchmark, pt.Policy, pt.Threads, pt.VirtualMs, time.Duration(pt.WallNs))
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return pts, nil
}

// writeBaseline measures the fixed suite and writes the JSON baseline.
func writeBaseline(path string, workers int) error {
	pts, err := measureBaseline(workers)
	if err != nil {
		return err
	}
	out := Baseline{
		Version:   3,
		Scale:     baselineScale,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
		Points:    pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBaseline re-measures the fixed suite and fails on any virtual_ms
// drift against the stored baseline. Wall times are machine-dependent and
// are not compared. This is the CI gate that pins the simulation's
// virtual-time results across optimisation PRs.
func compareBaseline(path string, workers int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want Baseline
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if want.Scale != baselineScale {
		return fmt.Errorf("%s records scale %g; this binary measures scale %g", path, want.Scale, baselineScale)
	}
	got, err := measureBaseline(workers)
	if err != nil {
		return err
	}
	key := func(p BaselinePoint) string {
		return fmt.Sprintf("figure %d %s %s p=%d", p.Figure, p.Benchmark, p.Policy, p.Threads)
	}
	wantMs := make(map[string]float64, len(want.Points))
	for _, p := range want.Points {
		wantMs[key(p)] = p.VirtualMs
	}
	drift := 0
	for _, p := range got {
		w, ok := wantMs[key(p)]
		if !ok {
			fmt.Fprintf(os.Stderr, "gcbench: %s missing from %s\n", key(p), path)
			drift++
			continue
		}
		if w != p.VirtualMs {
			fmt.Fprintf(os.Stderr, "gcbench: %s drifted: baseline %.6f virtual-ms, got %.6f\n", key(p), w, p.VirtualMs)
			drift++
		}
	}
	if len(got) != len(want.Points) {
		fmt.Fprintf(os.Stderr, "gcbench: point count differs: baseline %d, got %d\n", len(want.Points), len(got))
		drift++
	}
	if drift > 0 {
		return fmt.Errorf("%d baseline point(s) drifted vs %s", drift, path)
	}
	fmt.Printf("gcbench: all %d virtual-time points match %s\n", len(got), path)
	return nil
}

// --- Latency baseline (LATENCY_v1.json) -------------------------------------

// LatencyBaseline is the on-disk format of LATENCY_v*.json: the open-loop
// latency sweep's percentile and pause-attribution results. Every field of
// every point except wall_ns is a deterministic virtual result and is
// compared exactly.
type LatencyBaseline struct {
	Version   int                  `json:"version"`
	GoVersion string               `json:"go_version"`
	Date      string               `json:"date"`
	Points    []bench.LatencyPoint `json:"points"`
}

// writeLatencyBaseline measures the fixed latency sweep and writes the JSON
// baseline.
func writeLatencyBaseline(path string, workers int, progress func(string)) error {
	pts := bench.MeasureLatency(workers, progress)
	out := LatencyBaseline{
		Version:   1,
		GoVersion: runtime.Version(),
		Date:      time.Now().UTC().Format("2006-01-02"),
		Points:    pts,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareLatencyBaseline re-measures the fixed latency sweep and fails on
// any drift in the virtual fields (percentiles, attribution, checksums)
// against the stored baseline — the latency twin of compareBaseline.
func compareLatencyBaseline(path string, workers int, progress func(string)) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var want LatencyBaseline
	if err := json.Unmarshal(data, &want); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	got := bench.MeasureLatency(workers, progress)
	wantPts := make(map[string]bench.LatencyPoint, len(want.Points))
	for _, p := range want.Points {
		wantPts[p.Key()] = p
	}
	drift := 0
	for _, p := range got {
		w, ok := wantPts[p.Key()]
		if !ok {
			fmt.Fprintf(os.Stderr, "gcbench: %s missing from %s\n", p.Key(), path)
			drift++
			continue
		}
		if !p.VirtualEq(w) {
			fmt.Fprintf(os.Stderr, "gcbench: %s drifted:\n  baseline %+v\n  got      %+v\n", p.Key(), w, p)
			drift++
		}
	}
	if len(got) != len(want.Points) {
		fmt.Fprintf(os.Stderr, "gcbench: point count differs: baseline %d, got %d\n", len(want.Points), len(got))
		drift++
	}
	if drift > 0 {
		return fmt.Errorf("%d latency point(s) drifted vs %s", drift, path)
	}
	fmt.Printf("gcbench: all %d latency points match %s\n", len(got), path)
	return nil
}
