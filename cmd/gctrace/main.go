// Command gctrace runs one benchmark and reports the garbage collector's
// behaviour: per-phase event counts, copied volumes, pause profile, and the
// runtime statistics behind them. With -latency it instead runs the
// open-loop traffic harness at one sweep-style configuration and prints the
// latency percentiles with the per-request GC-pause attribution breakdown —
// which collection phases overlapped the request lifetimes in each latency
// band.
//
// Usage:
//
//	gctrace -bench barnes-hut -p 24 -scale 0.5
//	gctrace -bench synthetic -events          # print every GC event
//	gctrace -latency                          # tail latency under GC, attribution table
//	gctrace -latency -gap 100000 -policy single-node
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "synthetic", "benchmark to run")
		machine   = flag.String("machine", "amd48", "machine preset")
		policy    = flag.String("policy", "local", "page placement policy")
		vprocs    = flag.Int("p", 8, "number of vprocs")
		scale     = flag.Float64("scale", 1.0, "workload scale")
		events    = flag.Bool("events", false, "print every GC event")
		latency   = flag.Bool("latency", false, "run the open-loop latency harness (GC-pressure heap shape) and print the pause-attribution breakdown")
		gap       = flag.Int64("gap", 400_000, "with -latency: mean per-client inter-arrival gap in virtual ns (offered load)")
	)
	flag.Parse()

	topo, err := numa.Preset(*machine)
	if err != nil {
		fatal(err)
	}
	pol, err := mempage.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	// Validate flags up front with actionable errors: a bad scale would
	// otherwise be silently clamped into a scale-1 run that looks like a
	// real result, and a bad -p would panic deep inside Config.normalize.
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatal(fmt.Errorf("-scale %v is not a positive workload scale", *scale))
	}
	if *vprocs < 1 || *vprocs > topo.NumCores() {
		fatal(fmt.Errorf("-p %d out of range [1,%d] for machine %s", *vprocs, topo.NumCores(), topo.Name))
	}
	if *gap < 2 {
		fatal(fmt.Errorf("-gap %d is not a usable inter-arrival gap (need >= 2 ns)", *gap))
	}
	// Reject flag combinations that would otherwise be silently ignored:
	// the latency harness has a fixed workload shape (-bench/-scale do
	// nothing under it), and -gap only means anything to the harness.
	flag.Visit(func(f *flag.Flag) {
		switch {
		case *latency && (f.Name == "bench" || f.Name == "scale"):
			fatal(fmt.Errorf("-latency runs the fixed open-loop harness; remove -%s (use -gap for load)", f.Name))
		case !*latency && f.Name == "gap":
			fatal(fmt.Errorf("-gap only applies to the -latency harness"))
		}
	})
	spec, err := workload.ByName(*benchName)
	if err != nil {
		fatal(err)
	}

	var cfg core.Config
	if *latency {
		// Mirror the gcbench -latency sweep's GC-pressure configuration so
		// the attribution printed here corresponds to the baseline points.
		cfg = bench.LatencyConfig(topo, pol, *vprocs)
	} else {
		cfg = core.DefaultConfig(topo, *vprocs)
		cfg.Policy = pol
	}
	rt := core.MustNewRuntime(cfg)

	var counts [5]int
	var words [5]int64
	var ns [5]int64
	rt.SetTracer(func(ev core.GCEvent) {
		counts[ev.Kind]++
		words[ev.Kind] += ev.Words
		ns[ev.Kind] += ev.Ns
		if *events {
			fmt.Printf("[%10d ns] vproc %-2d %-12s %8d words %8d ns\n",
				ev.At, ev.VProc, ev.Kind, ev.Words, ev.Ns)
		}
	})

	var res workload.Result
	var lat workload.LatencyResult
	if *latency {
		opt := bench.LatencyOptionsFor(*gap)
		lat = workload.RunLatency(rt, opt)
		res = lat.Result
		fmt.Printf("open-loop latency harness on %s, policy %s, %d vprocs, %d clients x %d requests, mean gap %d ns\n",
			topo.Name, pol, *vprocs, opt.Clients, opt.Requests, *gap)
	} else {
		res = spec.Run(rt, *scale)
		fmt.Printf("benchmark %s on %s, policy %s, %d vprocs, scale %.2f\n",
			spec.Name, topo.Name, pol, *vprocs, *scale)
	}
	s := res.Stats

	fmt.Printf("elapsed (virtual): %.3f ms   checksum: %#x\n\n", float64(res.ElapsedNs)/1e6, res.Check)

	fmt.Println("collection phases:")
	for _, k := range []core.EventKind{core.EvMinor, core.EvMajor, core.EvPromote, core.EvGlobalEnd} {
		label := k.String()
		if k == core.EvGlobalEnd {
			label = "global"
		}
		c := counts[k]
		if c == 0 {
			fmt.Printf("  %-10s %6d\n", label, 0)
			continue
		}
		fmt.Printf("  %-10s %6d   %10d words   avg %8.1f us\n",
			label, c, words[k], float64(ns[k])/float64(c)/1000)
	}

	if *latency {
		us := func(v int64) float64 { return float64(v) / 1e3 }
		fmt.Printf("\nrequest latency (virtual, from scheduled arrival):\n")
		fmt.Printf("  p50 %.1f us   p90 %.1f us   p99 %.1f us   p99.9 %.1f us   (%d requests, %d timers fired)\n",
			us(lat.P50), us(lat.P90), us(lat.P99), us(lat.P999), lat.Requests, s.TimersFired)
		fmt.Println("\npause attribution (mean per request in band; local pools minor/major/promote over all vprocs, normalized by vproc count):")
		fmt.Printf("  %-12s %8s %12s %14s %12s %12s\n", "band", "requests", "mean", "global-GC", "local-GC", "global-share")
		band := func(name string, b workload.AttributionBand) {
			share := 0.0
			if b.MeanNs > 0 {
				share = float64(b.Global.MeanNs) / float64(b.MeanNs)
			}
			fmt.Printf("  %-12s %8d %10.1fus %12.1fus %10.1fus %11.0f%%\n",
				name, b.Count, us(b.MeanNs), us(b.Global.MeanNs), us(b.Local.MeanNs), share*100)
		}
		band("all", lat.All)
		band(">=p99.9", lat.Tail)
		fmt.Printf("  (%d global collections overlapped tail-request lifetimes; largest single overlap %.1f us)\n",
			lat.Tail.GlobalGCs, us(lat.Tail.Global.MaxNs))
	}

	fmt.Println("\nruntime totals:")
	fmt.Printf("  tasks run          %10d\n", s.TasksRun)
	fmt.Printf("  timers fired       %10d\n", s.TimersFired)
	fmt.Printf("  steals             %10d (failed probes %d)\n", s.Steals, s.FailedSteals)
	fmt.Printf("  allocated          %10d words\n", s.AllocWords)
	fmt.Printf("  minor copied       %10d words\n", s.MinorCopied)
	fmt.Printf("  major copied       %10d words\n", s.MajorCopied)
	fmt.Printf("  promoted           %10d words in %d promotions\n", s.PromotedWords, s.Promotions)
	fmt.Printf("  global collections %10d (%d words copied)\n", rt.Stats.GlobalGCs, rt.Stats.GlobalCopied)
	fmt.Printf("  chunks created     %10d, reused %d, cross-node scans %d\n",
		rt.Chunks.Created, rt.Chunks.Reused, rt.Stats.CrossNodeScanned)
	fmt.Printf("  local GC time      %10.3f ms, global GC time %.3f ms\n",
		float64(s.GCNs)/1e6, float64(rt.Stats.GlobalNs)/1e6)

	traffic := rt.Machine.Stats()
	fmt.Println("\nmodelled traffic:")
	fmt.Printf("  local        %10.2f MB\n", float64(traffic.BytesByPath[numa.PathLocal])/1e6)
	fmt.Printf("  same-package %10.2f MB\n", float64(traffic.BytesByPath[numa.PathSamePackage])/1e6)
	fmt.Printf("  remote       %10.2f MB\n", float64(traffic.BytesByPath[numa.PathRemote])/1e6)
	fmt.Printf("  cache        %10.2f MB\n", float64(traffic.CacheBytes)/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gctrace:", err)
	os.Exit(1)
}
