// Command gctrace runs one benchmark and reports the garbage collector's
// behaviour: per-phase event counts, copied volumes, pause profile, and the
// runtime statistics behind them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "synthetic", "benchmark to run")
		machine   = flag.String("machine", "amd48", "machine preset")
		policy    = flag.String("policy", "local", "page placement policy")
		vprocs    = flag.Int("p", 8, "number of vprocs")
		scale     = flag.Float64("scale", 1.0, "workload scale")
		events    = flag.Bool("events", false, "print every GC event")
	)
	flag.Parse()

	topo, err := numa.Preset(*machine)
	if err != nil {
		fatal(err)
	}
	pol, err := mempage.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	spec, err := workload.ByName(*benchName)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig(topo, *vprocs)
	cfg.Policy = pol
	rt := core.MustNewRuntime(cfg)

	var counts [5]int
	var words [5]int64
	var ns [5]int64
	rt.SetTracer(func(ev core.GCEvent) {
		counts[ev.Kind]++
		words[ev.Kind] += ev.Words
		ns[ev.Kind] += ev.Ns
		if *events {
			fmt.Printf("[%10d ns] vproc %-2d %-12s %8d words %8d ns\n",
				0, ev.VProc, ev.Kind, ev.Words, ev.Ns)
		}
	})

	res := spec.Run(rt, *scale)
	s := res.Stats

	fmt.Printf("benchmark %s on %s, policy %s, %d vprocs, scale %.2f\n",
		spec.Name, topo.Name, pol, *vprocs, *scale)
	fmt.Printf("elapsed (virtual): %.3f ms   checksum: %#x\n\n", float64(res.ElapsedNs)/1e6, res.Check)

	fmt.Println("collection phases:")
	for _, k := range []core.EventKind{core.EvMinor, core.EvMajor, core.EvPromote, core.EvGlobalEnd} {
		label := k.String()
		if k == core.EvGlobalEnd {
			label = "global"
		}
		c := counts[k]
		if c == 0 {
			fmt.Printf("  %-10s %6d\n", label, 0)
			continue
		}
		fmt.Printf("  %-10s %6d   %10d words   avg %8.1f us\n",
			label, c, words[k], float64(ns[k])/float64(c)/1000)
	}

	fmt.Println("\nruntime totals:")
	fmt.Printf("  tasks run          %10d\n", s.TasksRun)
	fmt.Printf("  steals             %10d (failed probes %d)\n", s.Steals, s.FailedSteals)
	fmt.Printf("  allocated          %10d words\n", s.AllocWords)
	fmt.Printf("  minor copied       %10d words\n", s.MinorCopied)
	fmt.Printf("  major copied       %10d words\n", s.MajorCopied)
	fmt.Printf("  promoted           %10d words in %d promotions\n", s.PromotedWords, s.Promotions)
	fmt.Printf("  global collections %10d (%d words copied)\n", rt.Stats.GlobalGCs, rt.Stats.GlobalCopied)
	fmt.Printf("  chunks created     %10d, reused %d, cross-node scans %d\n",
		rt.Chunks.Created, rt.Chunks.Reused, rt.Stats.CrossNodeScanned)
	fmt.Printf("  local GC time      %10.3f ms, global GC time %.3f ms\n",
		float64(s.GCNs)/1e6, float64(rt.Stats.GlobalNs)/1e6)

	traffic := rt.Machine.Stats()
	fmt.Println("\nmodelled traffic:")
	fmt.Printf("  local        %10.2f MB\n", float64(traffic.BytesByPath[numa.PathLocal])/1e6)
	fmt.Printf("  same-package %10.2f MB\n", float64(traffic.BytesByPath[numa.PathSamePackage])/1e6)
	fmt.Printf("  remote       %10.2f MB\n", float64(traffic.BytesByPath[numa.PathRemote])/1e6)
	fmt.Printf("  cache        %10.2f MB\n", float64(traffic.CacheBytes)/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gctrace:", err)
	os.Exit(1)
}
