// Command gctrace runs one benchmark and reports the garbage collector's
// behaviour: per-phase event counts, copied volumes, pause profile, and the
// runtime statistics behind them. With -latency it instead runs the
// open-loop traffic harness at one sweep-style configuration and prints the
// latency percentiles with the per-request GC-pause attribution breakdown —
// which collection phases overlapped the request lifetimes in each latency
// band. With -overload it runs the overload harness at one offered load and
// admission policy (optionally with a seeded fault plan) and prints the
// goodput/SLO and shed/retry accounting behind one gcbench -overload point.
// With -mempressure it runs the same harness against a bounded heap
// (-budget chunks, optionally with a seeded transient squeeze) and adds the
// memory-pressure accounting: memory sheds, emergency-ladder walks, failed
// allocations, and budget overdrafts behind one gcbench -mempressure point.
// With -failover it runs the replicated serving harness under one injected
// crash fault and prints the partial-failure accounting: crashed vprocs,
// lost tasks/continuations/timers, goodput before and after the crash,
// breaker trips, and the reroute/retry/hedge counters behind one gcbench
// -failover point.
//
// Usage:
//
//	gctrace -bench barnes-hut -p 24 -scale 0.5
//	gctrace -bench synthetic -events          # print every GC event
//	gctrace -bench barnes-hut -p 24 -par 4 -spans  # span-parallel engine + window report
//	gctrace -bench smvm -machine rack256 -p 256 -scale 0.1
//	gctrace -latency                          # tail latency under GC, attribution table
//	gctrace -latency -gap 100000 -policy single-node
//	gctrace -latency -gc concurrent           # mostly-concurrent collector: window/assist/barrier attribution
//	gctrace -overload -p 16 -gap 80000 -admission deadline
//	gctrace -overload -p 16 -gap 40000 -admission queue -fault-seed 0xfa115afe
//	gctrace -mempressure -p 16 -gap 40000 -admission memory -budget 24
//	gctrace -mempressure -p 16 -gap 40000 -admission queue -fault-seed 0x5c0ee2e1
//	gctrace -failover -p 16 -replicas 2 -crash vproc
//	gctrace -failover -machine rack256 -p 32 -replicas 4 -crash board
//	gctrace -failover -p 16 -replicas 2 -crash vproc -hedge 30000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/mempage"
	"repro/internal/numa"
	"repro/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "synthetic", "benchmark to run")
		machine   = flag.String("machine", "amd48", "machine preset (amd48, intel32, rack256, rack1024, rack4096)")
		policy    = flag.String("policy", "local", "page placement policy")
		vprocs    = flag.Int("p", 8, "number of vprocs")
		scale     = flag.Float64("scale", 1.0, "workload scale")
		events    = flag.Bool("events", false, "print every GC event")
		latency   = flag.Bool("latency", false, "run the open-loop latency harness (GC-pressure heap shape) and print the pause-attribution breakdown")
		overload  = flag.Bool("overload", false, "run the overload harness (GC-pressure heap shape) and print the goodput/SLO and shed/retry accounting")
		mempress  = flag.Bool("mempressure", false, "run the overload harness against a bounded heap and print the memory-pressure accounting")
		failover  = flag.Bool("failover", false, "run the replicated serving harness under one injected crash fault and print the partial-failure accounting")
		replicasN = flag.Int("replicas", 2, "with -failover: replication level of the serving pool")
		crashFlag = flag.String("crash", "vproc", "with -failover: crash kind (none, vproc, board) injected at the sweep's fixed instant")
		hedge     = flag.Int64("hedge", 0, "with -failover: hedge delay in virtual ns (0 = no hedged requests)")
		gap       = flag.Int64("gap", 400_000, "with -latency/-overload/-mempressure: mean per-client inter-arrival gap in virtual ns (offered load)")
		admission = flag.String("admission", "deadline", "with -overload/-mempressure: admission policy (none, queue, deadline, memory)")
		faultSeed = flag.Uint64("fault-seed", 0, "with -overload: seed a fault plan of stalls and bursts; with -mempressure: seed a transient budget squeeze (0 = no faults)")
		budget    = flag.Int("budget", 0, "with -mempressure: global heap budget in chunks (0 = unbounded)")
		par       = flag.Int("par", 1, "span workers: the engine drains interaction-free idle machines concurrently between conservative windows (results are identical for any value)")
		spans     = flag.Bool("spans", false, "print the span-parallelism report: windows opened, span widths, and what closed each window")
		gcMode    = flag.String("gc", "stw", "global collector (stw, concurrent)")
	)
	flag.Parse()

	// Reject, never clamp: an unknown collector name must not silently run
	// the default and report numbers for the wrong collector.
	var concurrentGC bool
	switch *gcMode {
	case "stw":
	case "concurrent":
		concurrentGC = true
	default:
		fatal(fmt.Errorf("unknown -gc mode %q (stw, concurrent)", *gcMode))
	}

	topo, err := numa.Preset(*machine)
	if err != nil {
		fatal(err)
	}
	pol, err := mempage.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	// Validate flags up front with actionable errors: a bad scale would
	// otherwise be silently clamped into a scale-1 run that looks like a
	// real result, a bad -p would panic deep inside Config.normalize, and a
	// bad admission name must fail here, not half-run first.
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatal(fmt.Errorf("-scale %v is not a positive workload scale", *scale))
	}
	if *vprocs < 1 || *vprocs > topo.NumCores() {
		fatal(fmt.Errorf("-p %d out of range [1,%d] for machine %s", *vprocs, topo.NumCores(), topo.Name))
	}
	if *gap < 2 {
		fatal(fmt.Errorf("-gap %d is not a usable inter-arrival gap (need >= 2 ns)", *gap))
	}
	if *par < 1 {
		fatal(fmt.Errorf("-par %d is not a positive span-worker count (1 = serial engine)", *par))
	}
	nHarness := 0
	for _, on := range []bool{*latency, *overload, *mempress, *failover} {
		if on {
			nHarness++
		}
	}
	if nHarness > 1 {
		fatal(fmt.Errorf("-latency, -overload, -mempressure, and -failover are mutually exclusive harnesses"))
	}
	if *budget < 0 {
		fatal(fmt.Errorf("-budget %d is negative (0 = unbounded)", *budget))
	}
	if *budget > 0 && *budget < *vprocs {
		fatal(fmt.Errorf("-budget %d is below -p %d (every vproc needs at least one chunk)", *budget, *vprocs))
	}
	adm, err := workload.ParseAdmission(*admission)
	if err != nil {
		fatal(err)
	}
	crash, err := workload.ParseCrashKind(*crashFlag)
	if err != nil {
		fatal(err)
	}
	if *failover {
		// The harness panics on impossible crash targets; catch those here
		// with a usable message before any simulation time is spent.
		if *replicasN < 1 {
			fatal(fmt.Errorf("-replicas %d is not a positive replication level", *replicasN))
		}
		if *vprocs < 2 {
			fatal(fmt.Errorf("-failover needs at least 2 vprocs (vproc 0 coordinates and is never a crash target)"))
		}
		if *hedge < 0 {
			fatal(fmt.Errorf("-hedge %d is not a usable hedge delay (0 disables hedging)", *hedge))
		}
		if crash == workload.CrashBoard && topo.Boards() < 2 {
			fatal(fmt.Errorf("-crash board needs a multi-board machine (%s has %d board(s)); try -machine rack256", topo.Name, topo.Boards()))
		}
		if crash == workload.CrashBoard && *replicasN < 2 {
			fatal(fmt.Errorf("-crash board with -replicas 1 leaves no surviving replica; use -replicas >= 2"))
		}
	}
	// Reject flag combinations that would otherwise be silently ignored:
	// the traffic harnesses have fixed workload shapes (-bench/-scale do
	// nothing under them), -gap only means anything to the load-driven
	// harnesses, the admission/fault knobs only mean anything to the
	// overload and memory-pressure harnesses, the budget only to the
	// latter, and the crash/replication knobs only to -failover.
	harness := *latency || *overload || *mempress || *failover
	harnessName := "-latency"
	if *overload {
		harnessName = "-overload"
	}
	if *mempress {
		harnessName = "-mempressure"
	}
	if *failover {
		harnessName = "-failover"
	}
	flag.Visit(func(f *flag.Flag) {
		switch {
		case harness && (f.Name == "bench" || f.Name == "scale"):
			fatal(fmt.Errorf("%s runs a fixed traffic workload; remove -%s", harnessName, f.Name))
		case (!harness || *failover) && f.Name == "gap":
			fatal(fmt.Errorf("-gap only applies to the -latency/-overload/-mempressure harnesses"))
		case !*overload && !*mempress && (f.Name == "admission" || f.Name == "fault-seed"):
			fatal(fmt.Errorf("-%s only applies to the -overload/-mempressure harnesses", f.Name))
		case !*mempress && f.Name == "budget":
			fatal(fmt.Errorf("-budget only applies to the -mempressure harness"))
		case !*failover && (f.Name == "replicas" || f.Name == "crash" || f.Name == "hedge"):
			fatal(fmt.Errorf("-%s only applies to the -failover harness", f.Name))
		}
	})
	spec, err := workload.ByName(*benchName)
	if err != nil {
		fatal(err)
	}

	var cfg core.Config
	if harness {
		// Mirror the gcbench -latency/-overload/-mempressure sweeps'
		// GC-pressure configuration so the numbers printed here correspond
		// to the baseline points.
		cfg = bench.LatencyConfig(topo, pol, *vprocs)
		cfg.GlobalBudgetChunks = *budget
	} else {
		cfg = core.DefaultConfig(topo, *vprocs)
		cfg.Policy = pol
	}
	cfg.SpanWorkers = *par
	cfg.ConcurrentGlobal = concurrentGC
	rt := core.MustNewRuntime(cfg)

	var counts [core.NumEventKinds]int
	var words [core.NumEventKinds]int64
	var ns [core.NumEventKinds]int64
	rt.SetTracer(func(ev core.GCEvent) {
		counts[ev.Kind]++
		words[ev.Kind] += ev.Words
		ns[ev.Kind] += ev.Ns
		if *events {
			fmt.Printf("[%10d ns] vproc %-2d %-12s %8d words %8d ns\n",
				ev.At, ev.VProc, ev.Kind, ev.Words, ev.Ns)
		}
	})

	var res workload.Result
	var lat workload.LatencyResult
	var ov workload.OverloadResult
	var fo workload.FailoverResult
	switch {
	case *failover:
		opt := bench.FailoverOptionsFor(*replicasN, crash, bench.FailoverCrashNs, *hedge)
		fo = workload.RunFailover(rt, opt)
		res = fo.Result
		fmt.Printf("failover harness on %s, policy %s, %d vprocs, %d clients x %d requests, %d replicas x %d servers\n",
			topo.Name, pol, *vprocs, opt.Clients, opt.Requests, opt.Replicas, opt.ServersPerReplica)
		fmt.Printf("crash %s at %d ns (virtual), deadline %d ns, attempt timeout %d ns, hedge delay %d ns\n",
			crash, opt.CrashNs, opt.DeadlineNs, opt.AttemptNs, opt.HedgeDelayNs)
	case *latency:
		opt := bench.LatencyOptionsFor(*gap)
		lat = workload.RunLatency(rt, opt)
		res = lat.Result
		fmt.Printf("open-loop latency harness on %s, policy %s, %d vprocs, %d clients x %d requests, mean gap %d ns\n",
			topo.Name, pol, *vprocs, opt.Clients, opt.Requests, *gap)
	case *overload:
		opt := bench.OverloadOptionsFor(*gap)
		opt.Admission = adm
		if *faultSeed != 0 {
			opt.Faults = bench.OverloadFaultPlan(*faultSeed, *vprocs)
		}
		ov = workload.RunOverload(rt, opt)
		res = ov.Result
		fmt.Printf("overload harness on %s, policy %s, %d vprocs, %d clients x %d requests, mean gap %d ns, admission %s, SLO %d ns, fault seed %#x\n",
			topo.Name, pol, *vprocs, opt.Clients, opt.Requests, *gap, adm, opt.SLONs, *faultSeed)
	case *mempress:
		opt := bench.OverloadOptionsFor(*gap)
		opt.Admission = adm
		if *faultSeed != 0 {
			opt.Faults = bench.MempressureFaultPlan(*faultSeed, *vprocs)
		}
		ov = workload.RunOverload(rt, opt)
		res = ov.Result
		fmt.Printf("memory-pressure harness on %s, policy %s, %d vprocs, %d clients x %d requests, mean gap %d ns, admission %s, SLO %d ns\n",
			topo.Name, pol, *vprocs, opt.Clients, opt.Requests, *gap, adm, opt.SLONs)
		fmt.Printf("heap budget %d chunks (0 = unbounded), watermarks %d/%d%%, squeeze seed %#x\n",
			*budget, opt.MemLowPct, opt.MemHighPct, *faultSeed)
	default:
		res = spec.Run(rt, *scale)
		fmt.Printf("benchmark %s on %s, policy %s, %d vprocs, scale %.2f\n",
			spec.Name, topo.Name, pol, *vprocs, *scale)
	}
	s := res.Stats

	fmt.Printf("elapsed (virtual): %.3f ms   checksum: %#x\n\n", float64(res.ElapsedNs)/1e6, res.Check)

	fmt.Println("collection phases:")
	for _, k := range []core.EventKind{core.EvMinor, core.EvMajor, core.EvPromote, core.EvGlobalEnd, core.EvSnapshot, core.EvTermination, core.EvEmergency} {
		label := k.String()
		if k == core.EvGlobalEnd {
			label = "global"
			if concurrentGC {
				// The concurrent cycle's span is mutator-interleaved
				// mark time, not a pause; the two window rows below
				// carry the actual stop-the-world durations.
				label = "global-cycle"
			}
		}
		if (k == core.EvSnapshot || k == core.EvTermination) && !concurrentGC {
			// The STW collector never emits window events; keep its
			// phase table byte-identical to the classic views.
			continue
		}
		if k == core.EvEmergency && !*mempress {
			// Emergency ladder walks only exist under a bounded heap;
			// keep the classic views' phase table unchanged.
			continue
		}
		c := counts[k]
		if c == 0 {
			fmt.Printf("  %-10s %6d\n", label, 0)
			continue
		}
		fmt.Printf("  %-10s %6d   %10d words   avg %8.1f us\n",
			label, c, words[k], float64(ns[k])/float64(c)/1000)
	}

	if *latency {
		us := func(v int64) float64 { return float64(v) / 1e3 }
		fmt.Printf("\nrequest latency (virtual, from scheduled arrival):\n")
		fmt.Printf("  p50 %.1f us   p90 %.1f us   p99 %.1f us   p99.9 %.1f us   (%d requests, %d timers fired)\n",
			us(lat.P50), us(lat.P90), us(lat.P99), us(lat.P999), lat.Requests, s.TimersFired)
		fmt.Println("\npause attribution (mean per request in band; local pools minor/major/promote over all vprocs, normalized by vproc count):")
		fmt.Printf("  %-12s %8s %12s %14s %12s %12s\n", "band", "requests", "mean", "global-GC", "local-GC", "global-share")
		band := func(name string, b workload.AttributionBand) {
			share := 0.0
			if b.MeanNs > 0 {
				share = float64(b.Global.MeanNs) / float64(b.MeanNs)
			}
			fmt.Printf("  %-12s %8d %10.1fus %12.1fus %10.1fus %11.0f%%\n",
				name, b.Count, us(b.MeanNs), us(b.Global.MeanNs), us(b.Local.MeanNs), share*100)
		}
		band("all", lat.All)
		band(">=p99.9", lat.Tail)
		fmt.Printf("  (%d global collections overlapped tail-request lifetimes; largest single overlap %.1f us)\n",
			lat.Tail.GlobalGCs, us(lat.Tail.Global.MaxNs))
	}

	if *overload || *mempress {
		us := func(v int64) float64 { return float64(v) / 1e3 }
		offered := float64(ov.Offered) / float64(ov.WindowNs) * 1e3
		goodput := float64(ov.GoodSLO) / float64(res.ElapsedNs) * 1e3
		fmt.Printf("\noverload accounting (every offered request resolves exactly once):\n")
		fmt.Printf("  offered   %6d requests over a %.1f us arrival window (%.2f/us)\n",
			ov.Offered, us(ov.WindowNs), offered)
		fmt.Printf("  completed %6d (%d within the SLO; goodput %.2f/us, SLO attainment %.0f%%)\n",
			ov.Completed, ov.GoodSLO, goodput, float64(ov.GoodSLO)/float64(ov.Offered)*100)
		fmt.Printf("  expired   %6d (nacked server-side: deadline unmeetable)\n", ov.Expired)
		fmt.Printf("  shed      %6d at admission (retry budget exhausted), %d to fault closes, %d to memory pressure\n",
			ov.ShedAdmission, ov.ShedFault, ov.ShedMemory)
		fmt.Printf("  retries   %6d re-attempts after a full lane (%d lane sheds total)\n",
			ov.Retries, s.ChanSheds)
		fmt.Printf("  latency   p50 %.1f us   p99 %.1f us (completed requests, from scheduled arrival)\n",
			us(ov.P50), us(ov.P99))
		if *overload && *faultSeed != 0 {
			fmt.Printf("  faults    %d injected: %.1f us stalled, %d words burst-allocated (seed %#x)\n",
				s.FaultsInjected, us(s.FaultStallNs), s.FaultBurstWords, *faultSeed)
		}
	}

	if *mempress {
		mp := rt.MemPressure()
		fmt.Printf("\nmemory pressure (deterministic occupancy counters):\n")
		fmt.Printf("  occupancy  %6d of %d active chunks at exit (0 budget = unbounded)\n",
			mp.ActiveChunks, mp.BudgetChunks)
		fmt.Printf("  survived   %6d words active after the last global collection\n", mp.SurvivedWords)
		fmt.Printf("  emergency  %6d ladder walks (minor -> major -> global, then retry)\n", mp.EmergencyGCs)
		fmt.Printf("  allocfail  %6d mutator allocations failed after the ladder\n", mp.AllocFailed)
		fmt.Printf("  overdraft  %6d chunk activations past the budget (collections mid-copy)\n", mp.Overdrafts)
		if *faultSeed != 0 {
			fmt.Printf("  squeezes   %d fault events injected (seed %#x)\n", s.FaultsInjected, *faultSeed)
		}
	}

	if *failover {
		us := func(v int64) float64 { return float64(v) / 1e3 }
		fmt.Printf("\nfailover accounting (every offered request resolves exactly once):\n")
		fmt.Printf("  offered   %6d requests over a %.1f us arrival window\n", fo.Offered, us(fo.WindowNs))
		fmt.Printf("  completed %6d (%d within the SLO deadline)\n", fo.Completed, fo.GoodSLO)
		fmt.Printf("  expired   %6d deadline budgets exhausted client-side, %d shed to memory pressure\n",
			fo.FailedDeadline, fo.ShedMemory)
		fmt.Printf("  lost      %6d requests whose client chain died with a crashed vproc (%d pre-crash, %d post)\n",
			fo.LostClient, fo.LostPre, fo.LostPost)
		fmt.Printf("  routing   %6d retries, %d rerouted off a crashed lane, %d hedged (%d hedge wins)\n",
			fo.Retries, fo.Rerouted, fo.Hedged, fo.HedgeWins)
		fmt.Printf("  breakers  %6d open transitions, %d fast-fails while all replicas were open, %d late replies dropped\n",
			fo.BreakerTrips, fo.FastFails, fo.LateReplies)
		fmt.Printf("  latency   p50 %.1f us   p99 %.1f us (completed requests, from scheduled arrival)\n",
			us(fo.P50), us(fo.P99))
		num, den := fo.ServingGoodputPost()
		preNum, preDen := fo.GoodPre, fo.OfferedPre
		pct := func(n, d int) float64 {
			if d == 0 {
				return 0
			}
			return float64(n) / float64(d) * 100
		}
		fmt.Printf("\ncrash impact (%d vproc(s) crashed):\n", fo.Crashes)
		if crash != workload.CrashNone {
			fmt.Printf("  goodput   %.0f%% of offered load served pre-crash (%d/%d), %.0f%% of surviving-client load post (%d/%d)\n",
				pct(preNum, preDen), preNum, preDen, pct(num, den), num, den)
		}
		fmt.Printf("  lost work %6d tasks, %d parked continuations, %d pending timers retired with crashed vprocs\n",
			s.LostTasks, s.LostConts, s.LostTimers)
	}

	fmt.Println("\nruntime totals:")
	fmt.Printf("  tasks run          %10d\n", s.TasksRun)
	fmt.Printf("  timers fired       %10d\n", s.TimersFired)
	fmt.Printf("  steals             %10d (failed probes %d)\n", s.Steals, s.FailedSteals)
	fmt.Printf("  allocated          %10d words\n", s.AllocWords)
	fmt.Printf("  minor copied       %10d words\n", s.MinorCopied)
	fmt.Printf("  major copied       %10d words\n", s.MajorCopied)
	fmt.Printf("  promoted           %10d words in %d promotions\n", s.PromotedWords, s.Promotions)
	fmt.Printf("  global collections %10d (%d words copied)\n", rt.Stats.GlobalGCs, rt.Stats.GlobalCopied)
	fmt.Printf("  chunks created     %10d, reused %d, cross-node scans %d\n",
		rt.Chunks.Created, rt.Chunks.Reused, rt.Stats.CrossNodeScanned)
	fmt.Printf("  local GC time      %10.3f ms, global GC time %.3f ms\n",
		float64(s.GCNs)/1e6, float64(rt.Stats.GlobalNs)/1e6)
	if concurrentGC {
		fmt.Printf("  mark assists       %10d words scanned in %.3f ms of mutator assist time\n",
			s.MarkAssistWords, float64(s.MarkAssistNs)/1e6)
		fmt.Printf("  write barrier      %10d shades that evacuated (%.3f ms charged)\n",
			s.BarrierHits, float64(s.BarrierNs)/1e6)
		fmt.Printf("  stw windows        %10.3f ms snapshot + %.3f ms termination across %d cycles\n",
			float64(rt.Stats.SnapshotNs)/1e6, float64(rt.Stats.TermNs)/1e6, rt.Stats.GlobalGCs)
	}

	traffic := rt.Machine.Stats()
	fmt.Println("\nmodelled traffic:")
	fmt.Printf("  local        %10.2f MB\n", float64(traffic.BytesByPath[numa.PathLocal])/1e6)
	fmt.Printf("  same-package %10.2f MB\n", float64(traffic.BytesByPath[numa.PathSamePackage])/1e6)
	fmt.Printf("  remote       %10.2f MB\n", float64(traffic.BytesByPath[numa.PathRemote])/1e6)
	if topo.Boards() > 1 {
		fmt.Printf("  far (board)  %10.2f MB\n", float64(traffic.BytesByPath[numa.PathFar])/1e6)
	}
	fmt.Printf("  cache        %10.2f MB\n", float64(traffic.CacheBytes)/1e6)

	if *spans {
		st := rt.Eng.SpanStats()
		fmt.Println("\nspan parallelism (window scheduler; all figures deterministic for any -par >= 2):")
		fmt.Printf("  span workers  %10d\n", *par)
		fmt.Printf("  windows       %10d opened\n", st.Windows)
		width := 0.0
		if st.Windows > 0 {
			width = float64(st.Spans) / float64(st.Windows)
		}
		fmt.Printf("  spans         %10d dispatched (mean width %.2f procs/window)\n", st.Spans, width)
		fmt.Printf("  span turns    %10d machine steps run on host workers\n", st.SpanTurns)
		fmt.Printf("  window closes %10d at an edge step, %d at an edge proc, %d by a span event\n",
			st.CloseEdgeStep, st.CloseEdgeProc, st.CloseExit)
		if *par < 2 {
			fmt.Println("  (the serial engine never opens windows; rerun with -par >= 2)")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gctrace:", err)
	os.Exit(1)
}
