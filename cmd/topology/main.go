// Command topology prints the modelled NUMA machines: the node/core layout
// (Figures 8 and 9 of the paper) and the theoretical bandwidth table
// (Table 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/numa"
)

func main() {
	machine := flag.String("machine", "amd48", "machine preset (amd48, intel32, rack256, rack1024, rack4096)")
	ascii := flag.Bool("ascii", true, "render the interconnect diagram")
	flag.Parse()

	topo, err := numa.Preset(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topology:", err)
		os.Exit(1)
	}
	m := numa.NewMachine(topo)

	fmt.Printf("Machine %s: %d packages x %d nodes x %d cores = %d cores @ %.3f GHz\n",
		topo.Name, topo.Packages, topo.NodesPerPackage, topo.CoresPerNode, topo.NumCores(), topo.GHz)
	if topo.Boards() > 1 {
		fmt.Printf("Boards: %d x %d packages, linked at %.1f GB/s / %.0f ns (the far tier)\n",
			topo.Boards(), topo.PackagesPerBoard, topo.FarBW, topo.FarLat)
	}
	fmt.Printf("L3 per node: %d MB (usable)\n\n", topo.L3Bytes>>20)
	fmt.Println(m.BandwidthTable())

	if *ascii {
		fmt.Println(renderDiagram(topo))
	}
}

// renderDiagram draws the package/node/core layout with link bandwidths,
// the textual analogue of the paper's Figures 8 (AMD) and 9 (Intel).
func renderDiagram(t *numa.Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interconnect (one %s package):\n\n", t.Name)
	if t.NodesPerPackage > 1 {
		fmt.Fprintf(&b, "  RAM ==%4.1f GB/s== [node 2k  : %d cores] ==%4.1f GB/s== [node 2k+1: %d cores] ==%4.1f GB/s== RAM\n",
			t.LocalBW, t.CoresPerNode, t.SamePkgBW, t.CoresPerNode, t.LocalBW)
		fmt.Fprintf(&b, "                       |                               |\n")
		fmt.Fprintf(&b, "                 %4.1f GB/s links                 %4.1f GB/s links\n", t.RemoteBW, t.RemoteBW)
		fmt.Fprintf(&b, "                  to other packages              to other packages\n")
	} else {
		fmt.Fprintf(&b, "  RAM ==%4.1f GB/s== [node k: %d cores]\n", t.LocalBW, t.CoresPerNode)
		fmt.Fprintf(&b, "                       |\n")
		fmt.Fprintf(&b, "                 %4.1f GB/s QPI links, fully connected to the other %d packages\n",
			t.RemoteBW, t.Packages-1)
	}
	if t.Boards() > 1 {
		fmt.Fprintf(&b, "\n  %d boards of %d packages each, joined by a %4.1f GB/s switched link (%.0f ns):\n",
			t.Boards(), t.PackagesPerBoard, t.FarBW, t.FarLat)
		fmt.Fprintf(&b, "  cross-board accesses ride the local controller, the remote ingress, and the board ingress.\n")
	}
	b.WriteString("\nNode map:\n")
	for _, n := range t.Nodes() {
		if t.Boards() > 1 {
			fmt.Fprintf(&b, "  node %d (board %d, package %d): cores %v\n", n.ID, t.BoardOfNode(n.ID), n.Package, n.Cores)
		} else {
			fmt.Fprintf(&b, "  node %d (package %d): cores %v\n", n.ID, n.Package, n.Cores)
		}
	}
	return b.String()
}
