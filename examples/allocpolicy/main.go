// allocpolicy reproduces the paper's central experiment (§4.3) in miniature:
// the same parallel workload under the three physical page-placement
// strategies — local (the paper's design), interleaved (GHC-style), and
// socket-zero (the naive default) — showing how placement alone changes
// scalability on a NUMA machine.
package main

import (
	"fmt"

	manticore "repro"
	"repro/internal/core"
	"repro/internal/numa"
	"repro/internal/workload"
)

func main() {
	spec, err := workload.ByName("synthetic")
	if err != nil {
		panic(err)
	}
	policies := []manticore.Policy{
		manticore.PolicyLocal,
		manticore.PolicyInterleaved,
		manticore.PolicySingleNode,
	}
	threads := []int{1, 8, 24, 48}

	fmt.Println("synthetic allocation churn on the AMD 48-core model")
	fmt.Printf("%-14s", "policy")
	for _, p := range threads {
		fmt.Printf("  p=%-7d", p)
	}
	fmt.Println("  (virtual ms)")

	baselines := map[int]float64{}
	for _, pol := range policies {
		fmt.Printf("%-14s", pol.String())
		for _, p := range threads {
			cfg := core.DefaultConfig(numa.AMD48(), p)
			cfg.Policy = pol
			rt := core.MustNewRuntime(cfg)
			res := spec.Run(rt, 1.0)
			ms := float64(res.ElapsedNs) / 1e6
			if pol == manticore.PolicyLocal {
				baselines[p] = ms
			}
			fmt.Printf("  %7.3f", ms)
		}
		fmt.Println()
	}

	fmt.Println("\nLower is better; under socket-zero placement every vproc's")
	fmt.Println("heap lives on node 0 and the run stops scaling once its")
	fmt.Println("memory controller saturates — the paper's Figure 7 effect.")
}
