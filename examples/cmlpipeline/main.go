// cmlpipeline demonstrates the explicit-concurrency side of the runtime
// (§2.1, §3.1): CML-style channels whose messages are passed by *object
// proxy*. A proxy lets the global heap refer back into the sender's local
// heap, so a message is promoted only if the receiver turns out to be a
// different vproc — same-vproc rendezvous never touches the global heap.
// Channel state itself (the pending-message queue) lives in the simulated
// global heap, so in-flight messages survive any collection.
//
// Two phases:
//
//  1. a blocking request/reply pipeline (Send / Recv), the classic shape;
//  2. a small server pool driven by continuation receives (SelectThen over
//     a high- and a low-priority mailbox): receivers park *tasks*, not
//     stack frames, so the topology is deadlock-free at any vproc count.
//     The pool shuts down by close-as-status: once every ack is in, the
//     producer closes both lanes — parked workers wake with a nil message
//     (their drain signal, never a panic) and a straggler send observes
//     SendClosed as an ordinary status.
package main

import (
	"fmt"

	manticore "repro"
)

func main() {
	cfg := manticore.Defaults(manticore.AMD48(), 4)
	rt := manticore.MustNew(cfg)

	requests := rt.NewChannel()
	replies := rt.NewChannel()
	const jobs = 64

	// Phase 2 channels: a bounded high-priority lane and an unbounded
	// low-priority lane, served by a Select that prefers the former.
	hi := rt.NewMailbox(8)
	lo := rt.NewChannel()
	done := rt.NewChannel()
	const poolJobs = 32

	var sum, poolSum uint64
	var drained int
	var lateStatus manticore.SendStatus
	rt.Run(func(w *manticore.Worker) {
		// Phase 1 — a server task: receives a boxed number, replies with
		// its square. Runs wherever the scheduler places it — typically
		// stolen by an idle vproc, which is what forces promotion.
		server := w.Spawn(func(w *manticore.Worker, _ manticore.Env) {
			for i := 0; i < jobs; i++ {
				req := requests.Recv(w)
				v := w.LoadWord(req, 0)
				out := w.AllocRaw([]uint64{v * v})
				os := w.PushRoot(out)
				replies.Send(w, os)
				w.PopRoots(1)
			}
		})

		for i := 0; i < jobs; i++ {
			msg := w.AllocRaw([]uint64{uint64(i + 1)})
			ms := w.PushRoot(msg)
			requests.Send(w, ms)
			w.PopRoots(1)

			got := replies.Recv(w)
			sum += w.LoadWord(got, 0)
		}
		w.Join(server)

		// Phase 2 — a two-worker pool, each worker a continuation chain:
		// Select a job (high-priority lane first), accumulate, ack. The
		// workers have no job quota — they serve until their lanes close
		// and the nil-message wakeup tells them to drain.
		var serve func(w *manticore.Worker)
		serve = func(w *manticore.Worker) {
			w.SelectThen([]*manticore.Channel{hi, lo}, nil,
				func(w *manticore.Worker, _ manticore.Env, which int, msg manticore.Addr) {
					if msg == 0 {
						// Closed lanes: a clean shutdown signal, delivered
						// exactly once per parked worker.
						drained++
						return
					}
					v := w.LoadWord(msg, 0)
					if which == 0 {
						v *= 10 // high-priority jobs count tenfold
					}
					ack := w.AllocRaw([]uint64{v})
					as := w.PushRoot(ack)
					done.Send(w, as)
					w.PopRoots(1)
					serve(w)
				})
		}
		for s := 0; s < 2; s++ {
			w.Spawn(func(sw *manticore.Worker, _ manticore.Env) {
				serve(sw)
			})
		}
		for i := 0; i < poolJobs; i++ {
			msg := w.AllocRaw([]uint64{uint64(i + 1)})
			ms := w.PushRoot(msg)
			if i%4 == 0 {
				hi.Send(w, ms)
			} else {
				lo.Send(w, ms)
			}
			w.PopRoots(1)
		}
		var collect func(w *manticore.Worker, remaining int)
		collect = func(w *manticore.Worker, remaining int) {
			if remaining == 0 {
				// Every ack is in: close the lanes. The parked workers wake
				// with nil messages and drain; a straggler send after the
				// close observes SendClosed as a status, not a panic.
				hi.Close()
				lo.Close()
				late := w.AllocRaw([]uint64{999})
				ls := w.PushRoot(late)
				lateStatus = hi.TrySend(w, ls)
				w.PopRoots(1)
				return
			}
			done.RecvThen(w, nil, func(w *manticore.Worker, _ manticore.Env, msg manticore.Addr) {
				poolSum += w.LoadWord(msg, 0)
				collect(w, remaining-1)
			})
		}
		collect(w, poolJobs)
	})

	stats := rt.TotalStats()
	fmt.Printf("sum of squares 1..%d = %d\n", jobs, sum)
	fmt.Printf("pool sum (hi-priority x10) = %d over %d jobs\n", poolSum, poolJobs)
	fmt.Printf("shutdown: %d workers drained on nil-message wakeups; late send status %q\n",
		drained, lateStatus)
	fmt.Printf("promotions: %d (%d words) — messages crossed vprocs %d times\n",
		stats.Promotions, stats.PromotedWords, stats.Promotions)
	fmt.Printf("channel traffic: %d sends, %d receives, %d direct handoffs\n",
		stats.ChanSends, stats.ChanRecvs, stats.ChanHandoffs)
	fmt.Printf("steals: %d, minor GCs: %d\n", stats.Steals, stats.MinorGCs)
}
