// cmlpipeline demonstrates the explicit-concurrency side of the runtime
// (§2.1, §3.1): CML-style synchronous channels whose messages are passed by
// *object proxy*. A proxy lets the global heap refer back into the sender's
// local heap, so a message is promoted only if the receiver turns out to be
// a different vproc — same-vproc rendezvous never touches the global heap.
package main

import (
	"fmt"

	manticore "repro"
)

func main() {
	cfg := manticore.Defaults(manticore.AMD48(), 4)
	rt := manticore.MustNew(cfg)

	requests := rt.NewChannel()
	replies := rt.NewChannel()
	const jobs = 64

	var sum uint64
	rt.Run(func(w *manticore.Worker) {
		// A server task: receives a boxed number, replies with its
		// square. Runs wherever the scheduler places it — typically
		// stolen by an idle vproc, which is what forces promotion.
		server := w.Spawn(func(w *manticore.Worker, _ manticore.Env) {
			for i := 0; i < jobs; i++ {
				req := requests.Recv(w)
				v := w.LoadWord(req, 0)
				out := w.AllocRaw([]uint64{v * v})
				os := w.PushRoot(out)
				replies.Send(w, os)
				w.PopRoots(1)
			}
		})

		for i := 0; i < jobs; i++ {
			msg := w.AllocRaw([]uint64{uint64(i + 1)})
			ms := w.PushRoot(msg)
			requests.Send(w, ms)
			w.PopRoots(1)

			got := replies.Recv(w)
			sum += w.LoadWord(got, 0)
		}
		w.Join(server)
	})

	stats := rt.TotalStats()
	fmt.Printf("sum of squares 1..%d = %d\n", jobs, sum)
	fmt.Printf("promotions: %d (%d words) — messages crossed vprocs %d times\n",
		stats.Promotions, stats.PromotedWords, stats.Promotions)
	fmt.Printf("steals: %d, minor GCs: %d\n", stats.Steals, stats.MinorGCs)
}
