// Quickstart: build a runtime on the paper's 48-core AMD machine model,
// allocate data through a vproc, fork parallel work, and read the GC
// statistics.
package main

import (
	"fmt"

	manticore "repro"
)

func main() {
	// A runtime for the 48-core AMD Opteron model with 8 vprocs,
	// default (node-local) page placement.
	cfg := manticore.Defaults(manticore.AMD48(), 8)
	rt := manticore.MustNew(cfg)

	var total uint64
	elapsed := rt.Run(func(w *manticore.Worker) {
		// Allocate an array of boxed counters in the simulated heap.
		const n = 10000
		vec := w.AllocGlobalVectorN(n)
		vs := w.PushRoot(vec)

		// Fill it in parallel; each element is allocated in the
		// building vproc's local heap and promoted on publication.
		w.ParallelRange(0, n, 64, []manticore.Addr{w.Root(vs)},
			func(w *manticore.Worker, lo, hi int, env manticore.Env) {
				for i := lo; i < hi; i++ {
					cell := w.AllocRaw([]uint64{uint64(i * i)})
					cs := w.PushRoot(cell)
					w.StoreGlobalPtr(env.Get(w, 0), i, cs)
					w.PopRoots(1)
				}
			})

		// Sum it back.
		for i := 0; i < n; i++ {
			cell := w.LoadPtr(w.Root(vs), i)
			total += w.LoadWord(cell, 0)
		}
		w.PopRoots(1)
	})

	stats := rt.TotalStats()
	fmt.Printf("sum of squares below 10000: %d\n", total)
	fmt.Printf("virtual time: %.3f ms on %d vprocs\n", float64(elapsed)/1e6, cfg.NumVProcs)
	fmt.Printf("minor GCs: %d, major GCs: %d, promotions: %d, steals: %d\n",
		stats.MinorGCs, stats.MajorGCs, stats.Promotions, stats.Steals)
}
